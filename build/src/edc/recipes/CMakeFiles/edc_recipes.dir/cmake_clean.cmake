file(REMOVE_RECURSE
  "CMakeFiles/edc_recipes.dir/coord.cpp.o"
  "CMakeFiles/edc_recipes.dir/coord.cpp.o.d"
  "CMakeFiles/edc_recipes.dir/recipes.cpp.o"
  "CMakeFiles/edc_recipes.dir/recipes.cpp.o.d"
  "libedc_recipes.a"
  "libedc_recipes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_recipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
