file(REMOVE_RECURSE
  "CMakeFiles/edc_sim.dir/cpu.cpp.o"
  "CMakeFiles/edc_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/edc_sim.dir/event_loop.cpp.o"
  "CMakeFiles/edc_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/edc_sim.dir/network.cpp.o"
  "CMakeFiles/edc_sim.dir/network.cpp.o.d"
  "libedc_sim.a"
  "libedc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
