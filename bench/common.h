// Shared helpers for the figure-reproduction benches.

#ifndef EDC_BENCH_COMMON_H_
#define EDC_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "edc/harness/driver.h"
#include "edc/harness/fixture.h"
#include "edc/recipes/recipes.h"

namespace edc {

inline const std::vector<SystemKind>& AllSystems() {
  static const std::vector<SystemKind> kSystems{
      SystemKind::kZooKeeper, SystemKind::kExtensibleZooKeeper, SystemKind::kDepSpace,
      SystemKind::kExtensibleDepSpace};
  return kSystems;
}

// Paper sweep: 1-50 clients (Fig. 6/8), 2-50 (Fig. 10/12).
inline std::vector<size_t> ClientSweep(size_t first) { return {first, 10, 20, 30, 40, 50}; }

// Runs the simulator until `flag` is true (bounded); dies loudly otherwise.
inline void WaitFor(CoordFixture& fixture, const bool& flag, const char* what,
                    Duration max = Seconds(10)) {
  SimTime deadline = fixture.loop().now() + max;
  while (!flag && fixture.loop().now() < deadline) {
    fixture.Settle(Millis(100));
  }
  if (!flag) {
    std::fprintf(stderr, "FATAL: timed out waiting for %s\n", what);
    std::exit(1);
  }
}

// Builds a fixture and per-client recipe objects; runs Setup on client 0 and
// Attach on the rest.
template <typename Recipe, typename... Args>
std::vector<std::unique_ptr<Recipe>> SetupRecipe(CoordFixture& fixture, bool ext,
                                                 Args... args) {
  std::vector<std::unique_ptr<Recipe>> recipes;
  for (size_t i = 0; i < fixture.num_clients(); ++i) {
    recipes.push_back(std::make_unique<Recipe>(fixture.coord(i), ext, args...));
  }
  bool ready = false;
  recipes[0]->Setup([&](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "FATAL: setup failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    ready = true;
  });
  WaitFor(fixture, ready, "recipe setup");
  size_t attached = 1;
  bool all_attached = fixture.num_clients() == 1;
  for (size_t i = 1; i < fixture.num_clients(); ++i) {
    recipes[i]->Attach([&, i](Status s) {
      if (!s.ok()) {
        std::fprintf(stderr, "FATAL: attach %zu failed: %s\n", i, s.ToString().c_str());
        std::exit(1);
      }
      if (++attached == fixture.num_clients()) {
        all_attached = true;
      }
    });
  }
  WaitFor(fixture, all_attached, "recipe attach");
  return recipes;
}

// Sharded variant of SetupRecipe (docs/sharding.md): one recipe instance per
// client, namespaced under a subtree pinned to the client's shard
// (round-robin, client i -> shard i % num_shards). The first client on each
// shard runs Setup; the rest Attach. With one shard this degenerates to the
// unsharded layout (empty prefix, shared namespace).
template <typename Recipe>
std::vector<std::unique_ptr<Recipe>> SetupShardedRecipe(CoordFixture& fixture, bool ext,
                                                        const std::string& stem) {
  size_t shards = fixture.num_shards();
  std::vector<std::string> prefixes;
  for (size_t s = 0; s < shards; ++s) {
    prefixes.push_back(shards > 1 ? fixture.shard_map().SubtreeForShard(stem, s)
                                  : std::string());
  }
  std::vector<std::unique_ptr<Recipe>> recipes;
  for (size_t i = 0; i < fixture.num_clients(); ++i) {
    recipes.push_back(
        std::make_unique<Recipe>(fixture.coord(i), ext, prefixes[i % shards]));
  }
  for (size_t s = 0; s < shards && s < fixture.num_clients(); ++s) {
    bool ready = false;
    recipes[s]->Setup([&](Status st) {
      if (!st.ok()) {
        std::fprintf(stderr, "FATAL: shard %zu setup failed: %s\n", s,
                     st.ToString().c_str());
        std::exit(1);
      }
      ready = true;
    });
    // Registration fans out to every shard (sub-sessions are created on
    // demand), so give it more headroom than the single-ensemble setup.
    WaitFor(fixture, ready, "sharded recipe setup", Seconds(30));
  }
  size_t attached = std::min(shards, fixture.num_clients());
  bool all_attached = attached >= fixture.num_clients();
  for (size_t i = attached; i < fixture.num_clients(); ++i) {
    recipes[i]->Attach([&, i](Status st) {
      if (!st.ok()) {
        std::fprintf(stderr, "FATAL: attach %zu failed: %s\n", i, st.ToString().c_str());
        std::exit(1);
      }
      if (++attached == fixture.num_clients()) {
        all_attached = true;
      }
    });
  }
  WaitFor(fixture, all_attached, "sharded recipe attach", Seconds(30));
  return recipes;
}

struct SeededAverages {
  RunAggregate throughput;  // ops/s
  RunAggregate latency_ms;
  RunAggregate kb_per_op;
};

// Machine-readable bench output: one row per (system, clients, seed) run,
// written to bench_results/BENCH_<name>.json next to the human table so
// plotting and CI-trend scripts don't have to scrape stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void AddRow(SystemKind system, size_t clients, uint64_t seed, const RunStats& stats) {
    Row row;
    row.system = SystemName(system);
    row.clients = clients;
    row.seed = seed;
    row.ops_per_s = stats.ThroughputOpsPerSec();
    row.p50_ms = static_cast<double>(stats.latency.Percentile(0.5)) / 1e6;
    row.p99_ms = static_cast<double>(stats.latency.Percentile(0.99)) / 1e6;
    row.kb_per_op = stats.KbPerOp();
    row.queue_ms = stats.stages.MeanMs(Stage::kQueue);
    row.cpu_ms = stats.stages.MeanMs(Stage::kCpu);
    row.network_ms = stats.stages.MeanMs(Stage::kNetwork);
    row.fsync_ms = stats.stages.MeanMs(Stage::kFsync);
    row.other_ms = stats.stages.MeanMs(Stage::kOther);
    rows_.push_back(row);
  }

  // For benches whose metric isn't a ClosedLoop RunStats (barrier waves,
  // election convergence, google-benchmark micro runs): supply the scalar
  // columns directly; the breakdown columns stay 0 unless `stages` is given.
  void AddCustomRow(const std::string& system, size_t clients, uint64_t seed,
                    double ops_per_s, double p50_ms, double p99_ms, double kb_per_op,
                    const StageSums* stages = nullptr) {
    Row row;
    row.system = system;
    row.clients = clients;
    row.seed = seed;
    row.ops_per_s = ops_per_s;
    row.p50_ms = p50_ms;
    row.p99_ms = p99_ms;
    row.kb_per_op = kb_per_op;
    if (stages != nullptr) {
      row.queue_ms = stages->MeanMs(Stage::kQueue);
      row.cpu_ms = stages->MeanMs(Stage::kCpu);
      row.network_ms = stages->MeanMs(Stage::kNetwork);
      row.fsync_ms = stages->MeanMs(Stage::kFsync);
      row.other_ms = stages->MeanMs(Stage::kOther);
    }
    rows_.push_back(row);
  }

  // Writes bench_results/BENCH_<name>.json; failures warn and continue (the
  // table on stdout is still the primary output).
  void Write() const {
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    std::string path = "bench_results/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    {\"system\": \"%s\", \"clients\": %zu, \"seed\": %llu, "
                    "\"ops_per_s\": %.3f, \"p50_ms\": %.6f, \"p99_ms\": %.6f, "
                    "\"kb_per_op\": %.6f, "
                    "\"queue_ms\": %.6f, \"cpu_ms\": %.6f, \"network_ms\": %.6f, "
                    "\"fsync_ms\": %.6f, \"other_ms\": %.6f}%s\n",
                    r.system.c_str(), r.clients, static_cast<unsigned long long>(r.seed),
                    r.ops_per_s, r.p50_ms, r.p99_ms, r.kb_per_op, r.queue_ms, r.cpu_ms,
                    r.network_ms, r.fsync_ms, r.other_ms,
                    i + 1 < rows_.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string system;
    size_t clients = 0;
    uint64_t seed = 0;
    double ops_per_s = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double kb_per_op = 0;
    double queue_ms = 0;
    double cpu_ms = 0;
    double network_ms = 0;
    double fsync_ms = 0;
    double other_ms = 0;
  };
  std::string name_;
  std::vector<Row> rows_;
};

// True when the user asked for Perfetto trace dumps (EDC_TRACE_DIR set);
// benches use this to turn on span retention, which is otherwise off to
// bound memory.
inline bool TraceExportRequested() {
  const char* dir = std::getenv("EDC_TRACE_DIR");
  return dir != nullptr && *dir != '\0';
}

// Optional trace export for any bench: when EDC_TRACE_DIR is set, dumps the
// fixture's retained spans as Chrome trace_event JSON (openable in Perfetto)
// to $EDC_TRACE_DIR/TRACE_<name>.json.
inline void MaybeExportTrace(CoordFixture& fixture, const std::string& name) {
  const char* dir = std::getenv("EDC_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string path = std::string(dir) + "/TRACE_" + name + ".json";
  if (fixture.obs().tracer.ExportJson(path)) {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace edc

#endif  // EDC_BENCH_COMMON_H_
