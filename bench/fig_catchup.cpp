// Joiner catch-up vs. log length (docs/reconfig.md): a fresh observer is
// added to a 3-node ZK ensemble after L committed writes; the bench measures
// the sim-time from its boot until it reaches the commit frontier that was
// current at the join, and the bytes the ensemble shipped to it. Two
// configurations:
//   full-replay    — compaction off; the joiner replays the entire log.
//   snapshot-ship  — the leader compacts every 16 commits, so the joiner's
//                    zxid predates the log floor and it receives a DataTree
//                    snapshot plus only the post-snapshot suffix.
//
// Expected shape: full-replay traffic grows linearly with L while
// snapshot-ship converges to snapshot-size + bounded suffix — the usual
// justification for shipping state instead of history. Catch-up time follows
// the bytes through the modeled link bandwidth.

#include "bench/common.h"

namespace edc {
namespace {

constexpr int kSeeds = 3;
constexpr NodeId kJoiner = 4;

// The backlog is L overwrites round-robin over a small key set, so state
// stays O(keys) while history grows O(L) — the regime where shipping a
// snapshot beats replaying the log. (With create-only traffic the tree is
// the same data as the log and both modes ship O(L) bytes.)
constexpr size_t kKeys = 16;

// Sequential sync write; dies loudly on failure (bench precondition).
void MustWrite(CoordFixture& fx, size_t i) {
  bool done = false;
  auto check = [&done, i](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "FATAL: write %zu failed: %s\n", i, s.ToString().c_str());
      std::exit(1);
    }
    done = true;
  };
  std::string path = "/n" + std::to_string(i % kKeys);
  std::string value = "v" + std::to_string(i);
  if (i < kKeys) {
    fx.zk_client(0)->Create(path, value, false, false, [check](Result<std::string> r) {
      check(r.ok() ? Status::Ok() : r.status());
    });
  } else {
    fx.zk_client(0)->SetData(path, value, -1, check);
  }
  WaitFor(fx, done, "backlog write");
}

struct CatchupRun {
  double catchup_ms = 0;
  double joiner_kb = 0;
};

CatchupRun RunOne(bool snapshot_ship, size_t log_len, uint64_t seed) {
  FixtureOptions options;
  options.system = SystemKind::kZooKeeper;
  options.num_clients = 1;
  options.seed = seed;
  options.zk_server.zab_snapshot_every = snapshot_ship ? 16 : 0;
  // A constrained link (10 Mbit/s) so the shipped bytes show up in the
  // catch-up time instead of disappearing into LAN serialization slack.
  options.link.bandwidth_bps = 1e7;
  CoordFixture fixture(options);
  fixture.Start();

  for (size_t i = 0; i < log_len; ++i) {
    MustWrite(fixture, i);
  }

  ZkServer* leader = nullptr;
  for (auto& s : fixture.zk_servers) {
    if (s->running() && s->IsLeader()) {
      leader = s.get();
    }
  }
  if (leader == nullptr) {
    std::fprintf(stderr, "FATAL: no leader after backlog\n");
    std::exit(1);
  }
  uint64_t frontier = leader->zab().last_committed();
  // Warm the admin session outside the measured window (the spec fails
  // validation but forces the connect).
  (void)fixture.AdminReconfig("remove 999", Seconds(5));

  SimTime start = fixture.loop().now();
  fixture.BootExtraZkReplica(kJoiner);
  Status added = fixture.AdminReconfig("add_observer " + std::to_string(kJoiner),
                                       Seconds(30));
  if (!added.ok()) {
    std::fprintf(stderr, "FATAL: add_observer failed: %s\n", added.ToString().c_str());
    std::exit(1);
  }
  ZkServer* joiner = fixture.ZkServerById(kJoiner);
  SimTime deadline = fixture.loop().now() + Seconds(120);
  while (joiner->zab().last_committed() < frontier && fixture.loop().now() < deadline) {
    fixture.Settle(Millis(1));
  }
  if (joiner->zab().last_committed() < frontier) {
    std::fprintf(stderr, "FATAL: joiner never caught up at log_len=%zu\n", log_len);
    std::exit(1);
  }
  CatchupRun out;
  out.catchup_ms = static_cast<double>(fixture.loop().now() - start) / 1e6;
  out.joiner_kb =
      static_cast<double>(fixture.net().StatsFor(kJoiner).bytes_received) / 1024.0;
  return out;
}

void Main() {
  BenchTable table({"mode", "log_len", "catchup_ms", "joiner_kb"});
  BenchJson json("fig_catchup");
  for (bool snapshot_ship : {false, true}) {
    const char* mode = snapshot_ship ? "snapshot-ship" : "full-replay";
    for (size_t log_len : {25u, 50u, 100u, 200u, 400u}) {
      RunAggregate catchup;
      RunAggregate kb;
      for (int seed = 0; seed < kSeeds; ++seed) {
        uint64_t s = 9100 + static_cast<uint64_t>(seed);
        CatchupRun run = RunOne(snapshot_ship, log_len, s);
        catchup.Add(run.catchup_ms);
        kb.Add(run.joiner_kb);
        // Columns: "clients" doubles as the swept log length; ops_per_s is
        // the catch-up rate in log entries per second; p50 the raw time;
        // kb_per_op the bytes shipped to the joiner.
        json.AddCustomRow(mode, log_len, s,
                          static_cast<double>(log_len) / (run.catchup_ms / 1e3),
                          run.catchup_ms, 0.0, run.joiner_kb);
      }
      table.AddRow({mode, std::to_string(log_len), Fmt(catchup.Mean()), Fmt(kb.Mean())});
    }
  }
  std::printf("=== Joiner catch-up: snapshot-ship vs full replay (avg of %d runs) ===\n",
              kSeeds);
  table.Print();
  json.Write();
}

}  // namespace
}  // namespace edc

int main() {
  edc::Main();
  return 0;
}
