#include "edc/ext/zk_binding.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tests/zk/zk_cluster.h"

namespace edc {
namespace {

constexpr char kCounterExt[] = R"(
extension ctr_increment {
  on op read "/ctr-increment";
  fn read(oid) {
    let obj = read_object("/ctr");
    if (obj == null) { return error("no counter"); }
    let c = parse_int(get(obj, "data"));
    update("/ctr", str(c + 1));
    return c + 1;
  }
}
)";

constexpr char kQueueExt[] = R"(
extension queue_remove {
  on op read "/queue-head";
  fn read(oid) {
    let objs = sub_objects("/queue");
    if (len(objs) == 0) { return error("empty queue"); }
    let head = min_by(objs, "ctime");
    delete_object(get(head, "path"));
    return get(head, "data");
  }
}
)";

// Extensible cluster: every server gets a ZkExtensionManager.
class EzkCluster : public ZkCluster {
 public:
  explicit EzkCluster(ExtensionLimits limits = ExtensionLimits{}) {
    for (auto& server : servers) {
      managers.push_back(std::make_unique<ZkExtensionManager>(server.get(), limits));
    }
  }

  std::vector<std::unique_ptr<ZkExtensionManager>> managers;
};

Status RegisterAndWait(EzkCluster& cluster, ZkClient* client, const std::string& name,
                       const std::string& code) {
  Status status = Status(ErrorCode::kInternal);
  client->RegisterExtension(name, code, [&](Status s) { status = s; });
  cluster.Settle();
  return status;
}

// Sends the request the counter recipe sends and returns the extension
// result (the reply's value field).
Result<std::string> Increment(EzkCluster& cluster, ZkClient* client) {
  Result<std::string> result = Status(ErrorCode::kInternal);
  ZkOp op;
  op.type = ZkOpType::kGetData;
  op.path = "/ctr-increment";
  client->Request(op, [&](const ZkReplyMsg& reply) {
    if (reply.code != ErrorCode::kOk) {
      result = Status(reply.code, reply.value);
    } else {
      result = reply.value;
    }
  });
  cluster.Settle();
  return result;
}

TEST(EzkExtensionTest, RegistersVerifiesAndExecutesCounter) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  client->Create("/ctr", "0", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "ctr_increment", kCounterExt).ok());
  // Registration is replicated: every replica's manager knows the extension.
  for (auto& mgr : cluster.managers) {
    EXPECT_TRUE(mgr->registry().Contains("ctr_increment"));
  }
  auto r1 = Increment(cluster, client);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(*r1, "1");
  auto r2 = Increment(cluster, client);
  EXPECT_EQ(*r2, "2");
  // The state change went through replication: all trees agree.
  for (auto& server : cluster.servers) {
    EXPECT_EQ(server->tree().Get("/ctr")->data, "2");
  }
}

TEST(EzkExtensionTest, SingleRpcPerIncrement) {
  EzkCluster cluster;
  cluster.Start();
  ZkClientOptions quiet;
  quiet.ping_interval = Seconds(100);  // keep pings out of the packet count
  ZkClient* client = cluster.AddClient(1, quiet);
  client->Create("/ctr", "0", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "ctr_increment", kCounterExt).ok());
  cluster.net->ResetStats();
  ASSERT_TRUE(Increment(cluster, client).ok());
  // One request packet (plus the reply); pings are 1s apart so none land in
  // this window.
  EXPECT_EQ(cluster.net->StatsFor(client->id()).packets_sent, 1);
}

TEST(EzkExtensionTest, MalformedExtensionRejectedAtRegistration) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  Status s = RegisterAndWait(cluster, client, "bad", "extension bad { fn read(o) {");
  EXPECT_EQ(s.code(), ErrorCode::kExtensionRejected);
  EXPECT_FALSE(cluster.Leader()->tree().Exists("/em/bad"));
  for (auto& mgr : cluster.managers) {
    EXPECT_FALSE(mgr->registry().Contains("bad"));
  }
}

TEST(EzkExtensionTest, WhitelistViolationRejected) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  Status s = RegisterAndWait(cluster, client, "evil", R"(
    extension evil { on op read "/x"; fn read(o) { return open_socket("evil.com"); } })");
  EXPECT_EQ(s.code(), ErrorCode::kExtensionRejected);
}

TEST(EzkExtensionTest, NondeterministicFunctionsAllowedUnderPrimaryBackup) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  Status s = RegisterAndWait(cluster, client, "stamps", R"(
    extension stamps {
      on op read "/stamp";
      fn read(oid) { return now(); }
    })");
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(EzkExtensionTest, EmSubscriptionsForbidden) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  Status s = RegisterAndWait(cluster, client, "sneaky", R"(
    extension sneaky { on op read "/em/*"; fn read(o) { return read_object(o); } })");
  EXPECT_EQ(s.code(), ErrorCode::kExtensionRejected);
}

TEST(EzkExtensionTest, OnlyRegistrantTriggersUntilAcknowledged) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* owner = cluster.AddClient(1);
  ZkClient* other = cluster.AddClient(2);
  owner->Create("/ctr", "0", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, owner, "ctr_increment", kCounterExt).ok());

  // The other client's read is NOT intercepted: plain GetData -> kNoNode.
  auto miss = Increment(cluster, other);
  EXPECT_EQ(miss.code(), ErrorCode::kNoNode);

  // After acknowledging, the extension fires for it too (§3.6).
  Status ack = Status(ErrorCode::kInternal);
  other->AcknowledgeExtension("ctr_increment", [&](Status s) { ack = s; });
  cluster.Settle();
  ASSERT_TRUE(ack.ok()) << ack.ToString();
  auto hit = Increment(cluster, other);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(*hit, "1");
}

TEST(EzkExtensionTest, DeregistrationRestoresNormalBehavior) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  client->Create("/ctr", "0", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "ctr_increment", kCounterExt).ok());
  ASSERT_TRUE(Increment(cluster, client).ok());
  Status dereg = Status(ErrorCode::kInternal);
  client->DeregisterExtension("ctr_increment", [&](Status s) { dereg = s; });
  cluster.Settle();
  ASSERT_TRUE(dereg.ok()) << dereg.ToString();
  for (auto& mgr : cluster.managers) {
    EXPECT_FALSE(mgr->registry().Contains("ctr_increment"));
  }
  EXPECT_EQ(Increment(cluster, client).code(), ErrorCode::kNoNode);
}

TEST(EzkExtensionTest, OnlyOwnerMayDeregister) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* owner = cluster.AddClient();
  ZkClient* other = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, owner, "ctr_increment", kCounterExt).ok());
  Status s = Status(ErrorCode::kInternal);
  other->Delete("/em/ctr_increment", -1, [&](Status st) { s = st; });
  cluster.Settle();
  EXPECT_EQ(s.code(), ErrorCode::kAccessDenied);
  EXPECT_TRUE(cluster.managers[0]->registry().Contains("ctr_increment"));
}

TEST(EzkExtensionTest, QueueExtensionRemovesHeadAtomically) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  client->Create("/queue", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "queue_remove", kQueueExt).ok());
  for (int i = 0; i < 3; ++i) {
    client->Create("/queue/e-", "payload" + std::to_string(i), false, true,
                   [](Result<std::string>) {});
  }
  cluster.Settle();
  for (int i = 0; i < 3; ++i) {
    std::string data;
    ZkOp op;
    op.type = ZkOpType::kGetData;
    op.path = "/queue-head";
    client->Request(op, [&](const ZkReplyMsg& reply) {
      ASSERT_EQ(reply.code, ErrorCode::kOk);
      data = reply.value;
    });
    cluster.Settle();
    EXPECT_EQ(data, "payload" + std::to_string(i));  // FIFO
  }
  // Empty queue: the extension's error() surfaces as an extension error.
  ErrorCode code = ErrorCode::kOk;
  ZkOp op;
  op.type = ZkOpType::kGetData;
  op.path = "/queue-head";
  client->Request(op, [&](const ZkReplyMsg& reply) { code = reply.code; });
  cluster.Settle();
  EXPECT_EQ(code, ErrorCode::kExtensionError);
  EXPECT_TRUE(cluster.Leader()->tree().GetChildren("/queue")->empty());
}

TEST(EzkExtensionTest, FailedExtensionLeavesNoPartialState) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "partial", R"(
    extension partial {
      on op read "/go";
      fn read(oid) {
        create("/half-done", "x");
        error("abort after first write");
        return 1;
      }
    })").ok());
  ErrorCode code = ErrorCode::kOk;
  ZkOp op;
  op.type = ZkOpType::kGetData;
  op.path = "/go";
  client->Request(op, [&](const ZkReplyMsg& reply) { code = reply.code; });
  cluster.Settle();
  EXPECT_EQ(code, ErrorCode::kExtensionError);
  // Atomicity: the create before the failure was rolled up into a txn that
  // was never proposed.
  EXPECT_FALSE(cluster.Leader()->tree().Exists("/half-done"));
}

TEST(EzkExtensionTest, StateOpBudgetEnforced) {
  ExtensionLimits limits;
  limits.max_state_ops = 3;
  EzkCluster cluster(limits);
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "greedy", R"(
    extension greedy {
      on op read "/go";
      fn read(oid) {
        foreach (i in [1, 2, 3, 4, 5, 6]) { create("/greedy-" + i, ""); }
        return 1;
      }
    })").ok());
  ErrorCode code = ErrorCode::kOk;
  ZkOp op;
  op.type = ZkOpType::kGetData;
  op.path = "/go";
  client->Request(op, [&](const ZkReplyMsg& reply) { code = reply.code; });
  cluster.Settle();
  EXPECT_EQ(code, ErrorCode::kExtensionLimit);
  EXPECT_FALSE(cluster.Leader()->tree().Exists("/greedy-1"));
}

TEST(EzkExtensionTest, StrikeLimitEvictsCrashLoopingExtension) {
  ExtensionLimits limits;
  limits.strike_limit = 3;
  EzkCluster cluster(limits);
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "crashy", R"(
    extension crashy {
      on op read "/boom";
      fn read(oid) { return error("always fails"); }
    })").ok());
  ZkOp op;
  op.type = ZkOpType::kGetData;
  op.path = "/boom";
  for (int i = 0; i < 3; ++i) {
    client->Request(op, [](const ZkReplyMsg&) {});
    cluster.Settle();
  }
  cluster.Settle();
  for (auto& mgr : cluster.managers) {
    EXPECT_FALSE(mgr->registry().Contains("crashy"));
  }
  EXPECT_FALSE(cluster.Leader()->tree().Exists("/em/crashy"));
}

TEST(EzkExtensionTest, ExtensionsSurviveReplicaRestart) {
  EzkCluster cluster;
  cluster.Start();
  ZkServer* follower = cluster.Follower();
  size_t follower_idx = 0;
  for (size_t i = 0; i < cluster.servers.size(); ++i) {
    if (cluster.servers[i].get() == follower) {
      follower_idx = i;
    }
  }
  ZkClient* client = cluster.AddClient(cluster.Leader()->id());
  client->Create("/ctr", "0", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "ctr_increment", kCounterExt).ok());
  cluster.CrashServer(follower);
  cluster.Settle();
  cluster.RestartServer(follower);
  cluster.Settle(Seconds(3));
  // The restarted replica's manager reloaded the extension from the
  // replicated /em state (§3.8).
  EXPECT_TRUE(cluster.managers[follower_idx]->registry().Contains("ctr_increment"));
}

TEST(EzkExtensionTest, BlockHostFunctionDefersReplyUntilCreation) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* waiter = cluster.AddClient(1);
  ZkClient* creator = cluster.AddClient(2);
  ASSERT_TRUE(RegisterAndWait(cluster, waiter, "gate", R"(
    extension gate {
      on op block "/gate/*";
      fn block(oid) {
        block("/gate-open");
        return null;
      }
    })").ok());
  bool unblocked = false;
  ZkOp op;
  op.type = ZkOpType::kExists;
  op.path = "/gate/w1";
  op.watch = true;
  waiter->Request(op, [&](const ZkReplyMsg& reply) {
    unblocked = reply.code == ErrorCode::kOk;
  });
  cluster.Settle();
  EXPECT_FALSE(unblocked);  // reply deferred server-side, zero extra RPCs
  creator->Create("/gate-open", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  EXPECT_TRUE(unblocked);
}

TEST(EzkExtensionTest, EventExtensionReactsToDeletions) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  client->Create("/members", "", false, false, [](Result<std::string>) {});
  client->Create("/tomb", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  // On every deletion under /members, record a tombstone.
  ASSERT_TRUE(RegisterAndWait(cluster, client, "grave", R"(
    extension grave {
      on event deleted "/members/*";
      fn on_deleted(oid) {
        let objs = sub_objects("/members");
        create("/tomb/count-" + len(objs), oid);
        return null;
      }
    })").ok());
  client->Create("/members/a", "", false, false, [](Result<std::string>) {});
  client->Create("/members/b", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  client->Delete("/members/a", -1, [](Status) {});
  cluster.Settle();
  auto tombs = cluster.Leader()->tree().GetChildren("/tomb");
  ASSERT_TRUE(tombs.ok());
  ASSERT_EQ(tombs->size(), 1u);
  EXPECT_EQ((*tombs)[0], "count-1");
  EXPECT_EQ(cluster.Leader()->tree().Get("/tomb/count-1")->data, "/members/a");
}

TEST(EzkExtensionTest, EventChainDepthIsBounded) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  client->Create("/chain", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  // Each created node under /chain creates another one: would run forever
  // without the depth cap.
  ASSERT_TRUE(RegisterAndWait(cluster, client, "runaway", R"(
    extension runaway {
      on event created "/chain/*";
      fn on_created(oid) {
        let objs = sub_objects("/chain");
        create("/chain/n-" + len(objs), "");
        return null;
      }
    })").ok());
  client->Create("/chain/seed", "", false, false, [](Result<std::string>) {});
  cluster.Settle(Seconds(2));
  auto children = cluster.Leader()->tree().GetChildren("/chain");
  ASSERT_TRUE(children.ok());
  EXPECT_LE(children->size(), ZkExtensionManager::kMaxEventDepth + 1u);
  EXPECT_GT(children->size(), 1u);  // the chain did run
}

TEST(EzkExtensionTest, NotificationSuppressedWhenEventExtensionMatches) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  client->Create("/obs", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "absorb", R"(
    extension absorb {
      on event deleted "/obs/*";
      fn on_deleted(oid) { return null; }
    })").ok());
  client->Create("/obs/x", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  int notifications = 0;
  client->SetWatchHandler([&](const ZkWatchEventMsg&) { ++notifications; });
  client->Exists("/obs/x", true, [](Result<ZkClient::ExistsResult>) {});
  cluster.Settle();
  client->Delete("/obs/x", -1, [](Status) {});
  cluster.Settle();
  // The event extension took responsibility: the raw notification to the
  // registrant was suppressed (§5.1.2).
  EXPECT_EQ(notifications, 0);
}

TEST(EzkExtensionTest, RegularClientsUnaffectedByOthersExtensions) {
  EzkCluster cluster;
  cluster.Start();
  ZkClient* power = cluster.AddClient(1);
  ZkClient* regular = cluster.AddClient(2);
  power->Create("/ctr", "0", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, power, "ctr_increment", kCounterExt).ok());
  // A regular client reading and writing unrelated nodes sees plain
  // ZooKeeper semantics.
  Result<std::string> created = Status(ErrorCode::kInternal);
  regular->Create("/plain", "v", false, false, [&](Result<std::string> r) { created = r; });
  cluster.Settle();
  ASSERT_TRUE(created.ok());
  Result<ZkClient::NodeResult> read = Status(ErrorCode::kInternal);
  regular->GetData("/plain", false, [&](Result<ZkClient::NodeResult> r) { read = r; });
  cluster.Settle();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data, "v");
}

}  // namespace
}  // namespace edc
