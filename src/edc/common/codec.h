// Binary wire codec.
//
// Every message that crosses a simulated network link is serialized with
// Encoder and parsed with Decoder, so the byte counts the benchmarks report
// (e.g. "KB sent per queue operation", paper Fig. 8/10) are measured on real
// encoded frames rather than estimated.
//
// Format: little-endian fixed-width integers, unsigned LEB128 varints, and
// length-prefixed byte strings. Decoder is bounds-checked and never reads past
// the underlying buffer; all failures surface as kDecodeError.

#ifndef EDC_COMMON_CODEC_H_
#define EDC_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "edc/common/result.h"

namespace edc {

class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }

  // Unsigned LEB128.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  // Varint length prefix followed by raw bytes.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void PutBytes(const std::vector<uint8_t>& b) {
    PutVarint(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

  // Drops the contents but keeps the allocation, so a hot path can reuse one
  // encoder as a per-batch arena without reallocating per message.
  void Clear() { buf_.clear(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));  // host is little-endian (x86/ARM64)
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  std::vector<uint8_t> buf_;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& buf) : data_(buf.data()), size_(buf.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > size_) {
      return Fail();
    }
    return data_[pos_++];
  }
  Result<bool> GetBool() {
    auto v = GetU8();
    if (!v.ok()) {
      return v.status();
    }
    return *v != 0;
  }
  Result<uint16_t> GetU16() { return GetFixed<uint16_t>(); }
  Result<uint32_t> GetU32() { return GetFixed<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetFixed<uint64_t>(); }
  Result<int64_t> GetI64() {
    auto v = GetFixed<uint64_t>();
    if (!v.ok()) {
      return v.status();
    }
    return static_cast<int64_t>(*v);
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_ || shift > 63) {
        return Fail();
      }
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        return v;
      }
      shift += 7;
    }
  }

  Result<std::string> GetString() {
    auto n = GetVarint();
    if (!n.ok()) {
      return n.status();
    }
    if (pos_ + *n > size_) {
      return Fail();
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), *n);
    pos_ += *n;
    return s;
  }

  Result<std::vector<uint8_t>> GetBytes() {
    auto n = GetVarint();
    if (!n.ok()) {
      return n.status();
    }
    if (pos_ + *n > size_) {
      return Fail();
    }
    std::vector<uint8_t> b(data_ + pos_, data_ + pos_ + *n);
    pos_ += *n;
    return b;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Fail() const { return Status(ErrorCode::kDecodeError, "truncated buffer"); }

  template <typename T>
  Result<T> GetFixed() {
    if (pos_ + sizeof(T) > size_) {
      return Fail();
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace edc

#endif  // EDC_COMMON_CODEC_H_
