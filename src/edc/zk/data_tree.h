// Hierarchical data tree of the ZooKeeper-like service.
//
// Pure deterministic state machine: every mutation takes the zxid and leader
// timestamp that the replication layer assigned, so applying the same
// transaction sequence on any replica produces a bit-identical tree
// (including Serialize() output, which state transfer relies on).

#ifndef EDC_ZK_DATA_TREE_H_
#define EDC_ZK_DATA_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/zk/types.h"

namespace edc {

struct ZkNodeView {
  std::string data;
  ZkStat stat;
};

class DataTree {
 public:
  DataTree();

  DataTree(const DataTree&) = delete;
  DataTree& operator=(const DataTree&) = delete;

  // Creates `path` (parent must exist and not be ephemeral). For sequential
  // nodes the stored name is path + 10-digit counter taken from the parent.
  // Returns the actual path created.
  Result<std::string> Create(const std::string& path, const std::string& data,
                             uint64_t ephemeral_owner, bool sequential, uint64_t zxid,
                             SimTime time);

  // Deletes `path` if version matches (-1 = any) and it has no children.
  Status Delete(const std::string& path, int32_t version, uint64_t zxid);

  // Sets data if version matches (-1 = any).
  Status SetData(const std::string& path, const std::string& data, int32_t version,
                 uint64_t zxid, SimTime time);

  bool Exists(const std::string& path) const;
  Result<ZkNodeView> Get(const std::string& path) const;
  Result<std::vector<std::string>> GetChildren(const std::string& path) const;

  // The sequence number the next sequential child of `parent` would get.
  Result<uint64_t> NextSequence(const std::string& parent) const;

  // All paths whose ephemeral owner is `session`, sorted.
  std::vector<std::string> EphemeralsOf(uint64_t session) const;

  size_t node_count() const { return node_count_; }

  std::vector<uint8_t> Serialize() const;
  Status Load(const std::vector<uint8_t>& snapshot);

  // Framed snapshot codec for state transfer, using the LogStore's on-disk
  // record convention: u32 payload length + u64 FNV-1a checksum + payload
  // (the Serialize() bytes), little-endian. RestoreImage verifies the frame,
  // decodes into a scratch tree and swaps only on full success — a truncated
  // or corrupted image (any byte, any offset) fails with kDecodeError and
  // leaves this tree exactly as it was. Never half-applies.
  std::vector<uint8_t> SerializeImage() const;
  Status RestoreImage(const std::vector<uint8_t>& image);

 private:
  struct Node {
    std::string data;
    ZkStat stat;
    uint64_t next_seq = 0;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  Node* Find(const std::string& path);
  const Node* Find(const std::string& path) const;
  Node* FindParent(const std::string& path, std::string* name) ;

  static void SerializeNode(Encoder& enc, const std::string& path, const Node& node);
  Status LoadNode(Decoder& dec);
  static void CollectEphemerals(const std::string& path, const Node& node, uint64_t session,
                                std::vector<std::string>* out);

  Node root_;
  size_t node_count_ = 1;
};

}  // namespace edc

#endif  // EDC_ZK_DATA_TREE_H_
