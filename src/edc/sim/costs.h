// Per-operation CPU service costs charged to simulated server cores.
//
// These numbers are the calibration knobs of the reproduction: they were
// tuned (see EXPERIMENTS.md) so that the baseline systems land in the same
// operating regime as the paper's 4-core/GbE testbed — ZooKeeper-like write
// throughput in the tens of kOps/s, BFT ordering a few times more expensive
// than primary-backup, sub-millisecond uncontended request latency. The
// *shapes* the benchmarks reproduce (contention retries, RPC counts, bytes
// per op) do not depend on the exact values.

#ifndef EDC_SIM_COSTS_H_
#define EDC_SIM_COSTS_H_

#include "edc/sim/time.h"

namespace edc {

struct CostModel {
  // Generic request handling.
  Duration rpc_decode_cpu = Micros(2);    // parse + dispatch an incoming packet
  Duration read_cpu = Micros(6);          // serve a read from local state
  Duration prep_cpu = Micros(4);          // validate an update, build the txn
  Duration apply_txn_cpu = Micros(5);     // apply one state delta
  Duration watch_fire_cpu = Micros(2);    // per triggered watch/notification

  // Zab-style primary-backup broadcast.
  // Proposal handling dropped from 3us to 2us when the propose path moved to
  // the single-pass arena codec (PR 7): the txn is serialized once for wire
  // and log together, and followers slice the log record straight out of the
  // received frame instead of re-encoding (see bench/micro_substrate.cpp).
  Duration zab_propose_cpu = Micros(2);   // leader, per proposal sent
  Duration zab_ack_cpu = Micros(1);
  Duration zab_commit_cpu = Micros(2);

  // PBFT-style BFT ordering (per protocol message handled).
  Duration bft_msg_cpu = Micros(4);
  Duration bft_execute_cpu = Micros(6);  // tuple-space op execution

  // Extension machinery.
  Duration ext_match_cpu = Nanos(400);    // subscription check per request
  Duration ext_invoke_cpu = Micros(1);    // sandbox setup per invocation
  Duration ext_step_cpu = Nanos(80);     // per interpreter step
  Duration ext_verify_cpu_per_byte = Nanos(60);  // registration-time verify+compile

  // Client-side CPU is not modeled (clients in the paper run on separate,
  // never-saturated machines).
};

}  // namespace edc

#endif  // EDC_SIM_COSTS_H_
