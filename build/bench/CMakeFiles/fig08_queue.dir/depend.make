# Empty dependencies file for fig08_queue.
# This may be replaced when dependencies are built.
