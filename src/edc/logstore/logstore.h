// Simulated durable write-ahead log with group commit.
//
// Real coordination services bound write throughput with the fsync path;
// ZooKeeper batches concurrent appends into one sync. We reproduce that
// shape: appends arriving within `group_commit_window` share a single
// simulated fsync whose latency is `fsync_latency` plus a size-proportional
// disk-bandwidth term. The log's contents survive simulated crashes (the
// in-memory image models the on-disk file), which is what lets a recovering
// replica replay its history during state transfer.

#ifndef EDC_LOGSTORE_LOGSTORE_H_
#define EDC_LOGSTORE_LOGSTORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "edc/common/result.h"
#include "edc/obs/obs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/time.h"

namespace edc {

struct LogStoreConfig {
  Duration fsync_latency = Micros(60);
  Duration group_commit_window = Micros(20);
  double disk_bandwidth_bps = 2e9;  // bits/s sequential write
};

class LogStore {
 public:
  using DurableCallback = std::function<void()>;

  LogStore(EventLoop* loop, LogStoreConfig config) : loop_(loop), config_(config) {}

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  // Appends a record; `on_durable` fires once the shared fsync completes.
  void Append(std::vector<uint8_t> record, DurableCallback on_durable);

  // Durable records, in append order. Records that have been appended but not
  // yet synced are NOT visible here (a crash would lose them).
  const std::vector<std::vector<uint8_t>>& records() const { return records_; }

  // Drops durable records with index >= first_removed (log truncation after
  // snapshot or divergence repair).
  void Truncate(size_t first_removed);

  // Drops the first `count` durable records (checkpoint + log rotation).
  void DropHead(size_t count);

  // Drops in-flight (unsynced) appends, modeling a crash before fsync.
  void DropUnsynced();

  // On-disk image of the durable records: each record framed as u32 length +
  // u64 FNV-1a checksum + payload, little-endian, concatenated in append
  // order. This is the file a crash may tear mid-write.
  std::vector<uint8_t> SerializeImage() const;

  // Replaces the durable records with the contents of `image`. A truncated
  // trailing record (torn write — the image simply ends early) is discarded
  // and the clean prefix is restored; a record whose checksum does not match
  // its payload (corruption, not truncation) rejects the whole image with
  // kDecodeError and leaves the store unchanged. Returns the number of
  // records restored.
  Result<size_t> RestoreImage(const std::vector<uint8_t>& image);

  int64_t syncs() const { return syncs_; }
  int64_t appended_bytes() const { return appended_bytes_; }

  // Observability (nullable): each append gets a kFsync span covering
  // append-to-durable (group-commit wait + fsync + disk write), its durable
  // callback runs under the appender's captured trace context, and the
  // registry gets sync counts + batch-size/queue-depth histograms. `track`
  // is the owning node's id.
  void SetObs(Obs* obs, uint32_t track);

 private:
  struct Pending {
    std::vector<uint8_t> record;
    DurableCallback cb;
    TraceContext ctx;   // appender's context (inactive when obs is off)
    SimTime at = 0;     // append time, for the fsync span
  };

  void Flush();

  EventLoop* loop_;
  LogStoreConfig config_;
  std::vector<std::vector<uint8_t>> records_;
  std::vector<Pending> pending_;
  bool flush_scheduled_ = false;
  SimTime disk_free_at_ = 0;
  int64_t syncs_ = 0;
  int64_t appended_bytes_ = 0;
  uint64_t flush_epoch_ = 0;  // invalidates scheduled flushes after DropUnsynced
  Obs* obs_ = nullptr;
  uint32_t track_ = 0;
  Counter* m_syncs_ = nullptr;
  Counter* m_bytes_ = nullptr;
  Recorder* m_batch_records_ = nullptr;
  Recorder* m_batch_bytes_ = nullptr;
  Recorder* m_queue_depth_ = nullptr;
};

}  // namespace edc

#endif  // EDC_LOGSTORE_LOGSTORE_H_
