#include "edc/script/analysis/diagnostics.h"

#include <algorithm>

namespace edc {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string FormatDiagnostic(const std::string& unit, const Diagnostic& diag) {
  std::string out = unit + ":" + std::to_string(diag.line) + ":" +
                    std::to_string(diag.col) + ": " + SeverityName(diag.severity) +
                    ": " + diag.message + " [" + diag.code + "]";
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      return true;
    }
  }
  return false;
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) {
                       return a.line < b.line;
                     }
                     if (a.col != b.col) {
                       return a.col < b.col;
                     }
                     return a.code < b.code;
                   });
}

}  // namespace edc
