// Minimal leveled logging.
//
// The simulator runs millions of events per benchmark; logging must cost
// nothing when disabled. EDC_LOG(level) expands to a short-circuited stream
// whose right-hand side is not evaluated unless the level is active.

#ifndef EDC_COMMON_LOGGING_H_
#define EDC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace edc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global threshold; messages below it are discarded. Defaults to kWarn so
// benchmarks stay quiet; tests raise verbosity selectively.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define EDC_LOG_ENABLED(level) (static_cast<int>(level) >= static_cast<int>(::edc::GetLogLevel()))

#define EDC_LOG(level)                                              \
  if (!EDC_LOG_ENABLED(::edc::LogLevel::level)) {                   \
  } else                                                            \
    ::edc::log_internal::LogMessage(::edc::LogLevel::level, __FILE__, __LINE__).stream()

}  // namespace edc

#endif  // EDC_COMMON_LOGGING_H_
