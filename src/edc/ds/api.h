// Abstract client-side surface of the DepSpace-like service.
//
// Mirrors zk/api.h for the tuple-space side: recipes and the harness program
// against DsApi; DsClient implements it by multicasting to one replica
// ensemble, DsShardRouter (edc/route) by routing each operation to the shard
// its first field hashes to (docs/sharding.md).

#ifndef EDC_DS_API_H_
#define EDC_DS_API_H_

#include <cstdint>
#include <string>

#include "edc/common/client_api.h"
#include "edc/ds/types.h"

namespace edc {

class DsApi {
 public:
  using ReplyCb = ResultCb<DsReply>;

  virtual ~DsApi() = default;

  virtual void Out(DsTuple tuple, ReplyCb done) = 0;
  // Lease tuple (monitor primitive); auto-renewed until ReleaseLease/crash.
  virtual void OutLease(DsTuple tuple, ReplyCb done) = 0;
  virtual void ReleaseLease(const DsTemplate& templ) = 0;
  virtual void Rdp(DsTemplate templ, ReplyCb done) = 0;
  virtual void Inp(DsTemplate templ, ReplyCb done) = 0;
  virtual void Rd(DsTemplate templ, ReplyCb done) = 0;  // blocking
  virtual void In(DsTemplate templ, ReplyCb done) = 0;  // blocking
  virtual void Cas(DsTemplate templ, DsTuple tuple, ReplyCb done) = 0;
  virtual void Replace(DsTemplate templ, DsTuple tuple, ReplyCb done) = 0;
  virtual void RdAll(DsTemplate templ, ReplyCb done) = 0;

  virtual void CallExtension(const std::string& trigger_path, const std::string& args,
                             ExtensionCb done) = 0;
  virtual void RegisterExtension(const std::string& name, const std::string& code,
                                 ReplyCb done) = 0;
  virtual void DeregisterExtension(const std::string& name, ReplyCb done) = 0;
  virtual void AcknowledgeExtension(const std::string& name, ReplyCb done) = 0;

  virtual void EnableAutoRenewAll() = 0;

  virtual NodeId id() const = 0;
};

}  // namespace edc

#endif  // EDC_DS_API_H_
