#include "edc/script/analysis/cost.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "edc/script/analysis/domains.h"

namespace edc {

namespace {

// Builtin dispatch set (builtins.cpp): calls to any other whitelisted name go
// to the host and take the ingest-capped host transfer function instead.
bool IsBuiltinName(const std::string& name) {
  static const std::set<std::string> kBuiltins = {
      "len",    "str",       "parse_int", "abs",      "min",         "max",
      "concat", "substr",    "starts_with", "ends_with", "contains", "index_of",
      "split",  "append",    "get",       "has",      "keys",        "min_by",
      "max_by", "sort_by",   "error"};
  return kBuiltins.count(name) > 0;
}

// 1 = provably truthy, 0 = provably falsy, -1 = unknown. Mirrors
// Value::Truthy(): null/false/0/""/empty-collection are falsy.
int DefiniteTruth(const AbsValue& v) {
  if (v.Only(kTNull)) {
    return 0;
  }
  if (v.Only(kTBool | kTInt) && !v.num.IsTop()) {
    if (v.num.lo > 0 || v.num.hi < 0) {
      return 1;
    }
    if (v.num.lo == 0 && v.num.hi == 0) {
      return 0;
    }
  }
  if (v.Only(kTStr) && v.str_len == AffBound::Const(0)) {
    return 0;
  }
  if (v.Only(kTList | kTMap) && v.card == AffBound::Const(0)) {
    return 0;
  }
  return -1;
}

// Scoped environment mapping variable names to abstract values. Mirrors the
// interpreter's scope stack so shadowing resolves identically.
class AbsEnv {
 public:
  void Push() { scopes_.emplace_back(); }
  void Pop() { scopes_.pop_back(); }

  void Declare(const std::string& name, const AbsValue& v) {
    scopes_.back()[name] = v;
  }

  void Assign(const std::string& name, const AbsValue& v) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        found->second = v;
        return;
      }
    }
    scopes_.back()[name] = v;
  }

  AbsValue Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return found->second;
      }
    }
    return AbsValue::Any();
  }

  // Joins two environments of identical shape (both sides of an if).
  static AbsEnv Join(const AbsEnv& a, const AbsEnv& b) {
    AbsEnv out = a;
    for (size_t i = 0; i < out.scopes_.size() && i < b.scopes_.size(); ++i) {
      for (auto& [name, v] : out.scopes_[i]) {
        auto it = b.scopes_[i].find(name);
        if (it != b.scopes_[i].end()) {
          v = AbsValue::Join(v, it->second);
        }
      }
      for (const auto& [name, v] : b.scopes_[i]) {
        if (out.scopes_[i].count(name) == 0) {
          out.scopes_[i][name] = v;
        }
      }
    }
    return out;
  }

  // Widens every variable whose value changed across a loop-body pass to the
  // widening target. Returns true if the environment still differs from
  // `before` afterwards (i.e. another fixpoint iteration is needed).
  bool WidenAgainst(const AbsEnv& before, const AbsValue& widened) {
    bool changed = false;
    for (size_t i = 0; i < scopes_.size() && i < before.scopes_.size(); ++i) {
      for (auto& [name, v] : scopes_[i]) {
        auto it = before.scopes_[i].find(name);
        if (it == before.scopes_[i].end()) {
          continue;
        }
        if (v != it->second) {
          v = widened;
          changed = changed || widened != it->second;
        }
      }
    }
    return changed;
  }

 private:
  std::vector<std::map<std::string, AbsValue>> scopes_;
};

struct ExprResult {
  AffBound cost;
  AbsValue val;
};

class CostAnalyzer {
 public:
  explicit CostAnalyzer(const CostContext& ctx) : ctx_(ctx) {
    dom_.max_value_bytes = ctx.max_value_bytes;
    dom_.max_input_bytes = ctx.max_input_bytes;
    dom_.collection_cap = ctx.collection_cap;
    dom_.collection_functions = &ctx.collection_functions;
  }

  CostResult Run(const Handler& handler) {
    handler_ = handler.name;
    env_ = AbsEnv();
    env_.Push();
    for (const std::string& param : handler.params) {
      env_.Declare(param, SeedParam(dom_));
    }
    bounded_ = true;
    diags_on_ = true;
    AffBound total = BlockCost(handler.body);
    CostResult out;
    out.bounded = bounded_ && !total.IsInf();
    out.steps = out.bounded ? total.EvalAt(0) : 0;
    SortDiagnostics(&diags_);
    out.diags = std::move(diags_);
    return out;
  }

 private:
  void Emit(const char* code, int line, int col, const std::string& message) {
    if (!diags_on_) {
      return;
    }
    std::string key = std::string(code) + "|" + std::to_string(line) + "|" +
                      std::to_string(col) + "|" + message;
    if (!emitted_.insert(key).second) {
      return;
    }
    Diagnostic d;
    d.code = code;
    d.severity = Severity::kWarning;
    d.line = line;
    d.col = col;
    d.handler = handler_;
    d.message = message;
    diags_.push_back(std::move(d));
  }

  AffBound BlockCost(const Block& block) {
    env_.Push();
    AffBound total = BlockCostFrom(block, 0);
    env_.Pop();
    return total;
  }

  // True iff executing the block always exits the handler via return.
  static bool AlwaysReturns(const Block& block) {
    for (const StmtPtr& stmt : block) {
      if (stmt->kind == Stmt::Kind::kReturn) {
        return true;
      }
      if (stmt->kind == Stmt::Kind::kIf && !stmt->else_body.empty() &&
          AlwaysReturns(stmt->body) && AlwaysReturns(stmt->else_body)) {
        return true;
      }
    }
    return false;
  }

  // Cost of block[i..]; splits guard-style statements — `if (c) { ...return }`
  // with no else — into max(then, rest) instead of then + rest: when the
  // then-branch runs it returns, so the rest of the block never executes.
  // two_phase's three trigger branches would otherwise be *summed*.
  AffBound BlockCostFrom(const Block& block, size_t i) {
    if (i >= block.size()) {
      return AffBound::Const(0);
    }
    const Stmt& stmt = *block[i];
    if (stmt.kind == Stmt::Kind::kIf && stmt.else_body.empty() &&
        AlwaysReturns(stmt.body)) {
      ExprResult cond = ExprCost(*stmt.expr);
      CheckDeadBranch(stmt, cond.val);
      AbsEnv base = env_;
      AffBound then_cost = BlockCost(stmt.body);
      env_ = base;  // the then-branch returned; the rest sees the guard-false env
      AffBound rest = BlockCostFrom(block, i + 1);
      return AffBound::Add(AffBound::AddConst(cond.cost, 1),
                           AffBound::Max(then_cost, rest));
    }
    AffBound c = StmtCost(stmt);
    return AffBound::Add(c, BlockCostFrom(block, i + 1));
  }

  void CheckDeadBranch(const Stmt& stmt, const AbsValue& cond) {
    int truth = DefiniteTruth(cond);
    if (truth == 0 && !stmt.body.empty()) {
      const Stmt& first = *stmt.body.front();
      Emit(kDiagDeadBranch, first.line, first.col,
           "condition at line " + std::to_string(stmt.line) +
               " is provably false; this branch is dead");
    }
    if (truth == 1 && !stmt.else_body.empty()) {
      const Stmt& first = *stmt.else_body.front();
      Emit(kDiagDeadBranch, first.line, first.col,
           "condition at line " + std::to_string(stmt.line) +
               " is provably true; the else branch is dead");
    }
  }

  AffBound StmtCost(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kLet: {
        ExprResult r = ExprCost(*stmt.expr);
        env_.Declare(stmt.name, r.val);
        return AffBound::AddConst(r.cost, 1);
      }
      case Stmt::Kind::kAssign: {
        ExprResult r = ExprCost(*stmt.expr);
        env_.Assign(stmt.name, r.val);
        return AffBound::AddConst(r.cost, 1);
      }
      case Stmt::Kind::kIf: {
        ExprResult cond = ExprCost(*stmt.expr);
        CheckDeadBranch(stmt, cond.val);
        AbsEnv base = env_;
        AffBound then_cost = BlockCost(stmt.body);
        AbsEnv then_env = env_;
        env_ = base;
        AffBound else_cost = BlockCost(stmt.else_body);
        env_ = AbsEnv::Join(then_env, env_);
        return AffBound::Add(AffBound::AddConst(cond.cost, 1),
                             AffBound::Max(then_cost, else_cost));
      }
      case Stmt::Kind::kForEach:
        return ForEachCost(stmt);
      case Stmt::Kind::kReturn: {
        if (!stmt.expr) {
          return AffBound::Const(1);
        }
        return AffBound::AddConst(ExprCost(*stmt.expr).cost, 1);
      }
      case Stmt::Kind::kExpr:
        return AffBound::AddConst(ExprCost(*stmt.expr).cost, 1);
    }
    return AffBound::Const(1);
  }

  // Runs the loop body to a fixpoint with widening under element value
  // `elem`, leaving env_ at the stable post-loop state. Returns the body
  // cost derived from the final (conservative) environment.
  AffBound LoopBodyFixpoint(const Stmt& stmt, const AbsValue& elem) {
    AffBound body_cost = AffBound::Const(0);
    AbsValue widened = AbsValue::Widened(ctx_.max_value_bytes);
    for (int iter = 0; iter < 64; ++iter) {
      AbsEnv before = env_;
      env_.Push();
      env_.Declare(stmt.name, elem);
      body_cost = BlockCost(stmt.body);
      env_.Pop();
      // Drop the loop-variable scope, compare the surviving outer scopes.
      if (!env_.WidenAgainst(before, widened)) {
        break;
      }
    }
    return body_cost;
  }

  AffBound ForEachCost(const Stmt& stmt) {
    ExprResult list = ExprCost(*stmt.expr);
    const AbsValue& lv = list.val;
    if (lv.card.IsInf()) {
      bounded_ = false;
    }

    // All candidate passes run diagnostics-off: intermediate fixpoint
    // iterations see not-yet-widened environments and would report
    // spuriously. A final pass over the stable environment re-enables them.
    bool outer_diags = diags_on_;
    diags_on_ = false;

    // Candidate A (concrete): N iterations, each costing the body bound under
    // the element's concrete length bound.
    AbsValue elem = ElementOf(lv, dom_, /*symbolic=*/false);
    AffBound body_a = LoopBodyFixpoint(stmt, elem);
    AffBound cost_a = AffBound::Mul(lv.card, body_a);

    // Candidate B (amortized): re-derive the body cost as an affine form
    // c + k*len(element) in the element length symbol and charge
    // Sum_i (c + k*len_i) <= N*c + k*total_len. Only one amortization symbol
    // can be live at a time — inner loops inside an active pass contribute
    // affine forms to candidate A of the *outer* loop instead.
    AffBound cost_b = AffBound::Inf();
    if (!sym_active_ && lv.card.IsConst() && !lv.total_len.IsInf()) {
      sym_active_ = true;
      AbsEnv stable = env_;
      AffBound body_b = LoopBodyFixpoint(stmt, ElementOf(lv, dom_, /*symbolic=*/true));
      env_ = stable;
      sym_active_ = false;
      if (!body_b.IsInf() && lv.total_len.IsConst()) {
        cost_b = AffBound::Const(AbsSatAdd(AbsSatMul(lv.card.c, body_b.c),
                                           AbsSatMul(body_b.k, lv.total_len.c)));
      }
    }

    // Final diagnostics pass over the stable environment (cost discarded).
    if (outer_diags) {
      diags_on_ = true;
      AbsEnv stable = env_;
      env_.Push();
      env_.Declare(stmt.name, elem);
      (void)BlockCost(stmt.body);
      env_.Pop();
      env_ = stable;
    }
    diags_on_ = outer_diags;

    AffBound iterations_cost =
        AffBound::PickMin(cost_a, cost_b, ctx_.max_input_bytes);
    return AffBound::Add(AffBound::AddConst(list.cost, 1), iterations_cost);
  }

  ExprResult ExprCost(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        return {AffBound::Const(1), AbsValue::OfLiteral(expr.literal)};
      case Expr::Kind::kVar:
        return {AffBound::Const(1), env_.Lookup(expr.name)};
      case Expr::Kind::kUnary: {
        ExprResult r = ExprCost(*expr.lhs);
        AffBound cost = AffBound::AddConst(r.cost, 1);
        if (expr.unary_op == UnaryOp::kNot) {
          int truth = DefiniteTruth(r.val);
          if (truth >= 0) {
            return {cost, AbsValue::BoolExact(truth == 0)};
          }
          return {cost, AbsValue::Bool()};
        }
        if (r.val.Only(kTInt)) {
          return {cost, AbsValue::Int(Interval::Neg(r.val.num))};
        }
        return {cost, AbsValue::Int(Interval::Top())};
      }
      case Expr::Kind::kBinary:
        return BinaryCost(expr);
      case Expr::Kind::kIndex: {
        ExprResult base = ExprCost(*expr.lhs);
        ExprResult idx = ExprCost(*expr.rhs);
        AffBound cost = AffBound::AddConst(AffBound::Add(base.cost, idx.cost), 1);
        CheckIndexRange(base.val, idx.val, expr.line, expr.col);
        return {cost, IndexValue(base.val, idx.val)};
      }
      case Expr::Kind::kListLit: {
        AffBound cost = AffBound::Const(1);
        AbsValue v = AbsValue::OfType(kTList);
        v.card = AffBound::Const(static_cast<int64_t>(expr.args.size()));
        AffBound elem_len = AffBound::Const(0);
        AffBound total = AffBound::Const(0);
        for (const ExprPtr& item : expr.args) {
          ExprResult r = ExprCost(*item);
          cost = AffBound::Add(cost, r.cost);
          AffBound il = ItemStrBound(r.val);
          elem_len = AffBound::Max(elem_len, il);
          total = AffBound::Add(total, il);
        }
        v.elem_len = elem_len;
        v.total_len = total;
        return {cost, ClampResult(v, dom_)};
      }
      case Expr::Kind::kCall: {
        AffBound cost = AffBound::Const(1);
        std::vector<AbsValue> arg_vals;
        arg_vals.reserve(expr.args.size());
        for (const ExprPtr& arg : expr.args) {
          ExprResult r = ExprCost(*arg);
          cost = AffBound::Add(cost, r.cost);
          arg_vals.push_back(std::move(r.val));
        }
        AbsValue out;
        if (IsBuiltinName(expr.name)) {
          if (expr.name == "get" && arg_vals.size() == 2) {
            CheckIndexRange(arg_vals[0], arg_vals[1], expr.line, expr.col);
          }
          out = TransferBuiltin(expr.name, arg_vals, dom_);
        } else {
          out = TransferHost(expr.name, dom_);
        }
        return {cost, out};
      }
    }
    return {AffBound::Const(1), AbsValue::Any()};
  }

  // Upper bound on any string reachable in a value used as a list item.
  static AffBound ItemStrBound(const AbsValue& v) {
    AffBound out = AffBound::Const(0);
    if (v.May(kTStr)) {
      out = AffBound::Max(out, v.str_len);
    }
    if (v.May(kTList) || v.May(kTMap)) {
      out = AffBound::Max(out, v.elem_len);
    }
    return out;
  }

  AbsValue IndexValue(const AbsValue& base, const AbsValue& idx) {
    AbsValue out;
    bool first = true;
    auto accumulate = [&](const AbsValue& v) {
      out = first ? v : AbsValue::Join(out, v);
      first = false;
    };
    if (base.May(kTList)) {
      accumulate(ElementOf(base, dom_, /*symbolic=*/false));
    }
    if (base.May(kTMap)) {
      AbsValue v = ElementOf(base, dom_, /*symbolic=*/false);
      v.types |= kTNull;  // missing key yields null
      accumulate(v);
    }
    if (base.May(kTStr)) {
      accumulate(AbsValue::Str(AffBound::Const(1)));
    }
    (void)idx;
    return first ? AbsValue::Any() : out;
  }

  // EDC-W008: a list access whose index interval provably misses the list.
  void CheckIndexRange(const AbsValue& base, const AbsValue& idx, int line, int col) {
    if (!base.Only(kTList) || !idx.Only(kTInt) || idx.num.IsTop()) {
      return;
    }
    if (idx.num.hi < 0) {
      Emit(kDiagIndexOutOfRange, line, col,
           "index is provably negative (at most " + std::to_string(idx.num.hi) +
               ")");
      return;
    }
    if (base.card.IsConst() && idx.num.lo >= base.card.c) {
      Emit(kDiagIndexOutOfRange, line, col,
           "index is provably out of range (at least " +
               std::to_string(idx.num.lo) + ", list has at most " +
               std::to_string(base.card.c) + " item(s))");
    }
  }

  ExprResult BinaryCost(const Expr& expr) {
    ExprResult l = ExprCost(*expr.lhs);
    ExprResult r = ExprCost(*expr.rhs);
    AffBound cost = AffBound::AddConst(AffBound::Add(l.cost, r.cost), 1);
    const AbsValue& a = l.val;
    const AbsValue& b = r.val;

    switch (expr.binary_op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        // Short-circuiting only ever evaluates fewer nodes than charged.
        return {cost, AbsValue::Bool()};
      case BinaryOp::kAdd: {
        bool may_int = a.May(kTInt) && b.May(kTInt);
        bool may_str = a.May(kTStr) || b.May(kTStr);
        AbsValue out;
        out.types = (may_int ? kTInt : 0u) | (may_str ? kTStr : 0u);
        if (out.types == 0) {
          out.types = kTInt | kTStr;  // error-only path; stay conservative
        }
        out.num = Interval::Add(a.num, b.num);
        out.str_len = AffBound::MinConst(
            AffBound::Add(StrishLen(a, dom_), StrishLen(b, dom_)),
            ctx_.max_value_bytes);
        out.card = AffBound::Inf();
        out.elem_len = AffBound::Inf();
        out.total_len = AffBound::Inf();
        if (out.types == kTInt) {
          return {cost, AbsValue::Int(out.num)};
        }
        if (out.types == kTStr) {
          return {cost, AbsValue::Str(out.str_len)};
        }
        return {cost, out};
      }
      case BinaryOp::kSub:
        return {cost, AbsValue::Int(Interval::Sub(a.num, b.num))};
      case BinaryOp::kMul:
        return {cost, AbsValue::Int(Interval::Mul(a.num, b.num))};
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        // EDC-W007: the divisor's interval is known and admits zero. A top
        // interval stays quiet — parse_int()/host results would otherwise
        // flag every division.
        if (b.May(kTInt) && !b.num.IsTop() && b.num.Contains(0)) {
          Emit(kDiagDivByZero, expr.line, expr.col,
               std::string(expr.binary_op == BinaryOp::kDiv ? "division" : "modulo") +
                   " by zero: divisor is in [" + std::to_string(b.num.lo) + ", " +
                   std::to_string(b.num.hi) + "]");
        }
        Interval iv = expr.binary_op == BinaryOp::kDiv ? Interval::Div(a.num, b.num)
                                                       : Interval::Mod(a.num, b.num);
        return {cost, AbsValue::Int(iv)};
      }
      case BinaryOp::kEq:
      case BinaryOp::kNe: {
        if (a.Only(kTInt) && b.Only(kTInt) && !a.num.IsTop() && !b.num.IsTop()) {
          bool eq = expr.binary_op == BinaryOp::kEq;
          if (a.num.IsExact() && b.num.IsExact() && a.num.lo == b.num.lo) {
            return {cost, AbsValue::BoolExact(eq)};
          }
          if (a.num.hi < b.num.lo || b.num.hi < a.num.lo) {
            return {cost, AbsValue::BoolExact(!eq)};
          }
        }
        return {cost, AbsValue::Bool()};
      }
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        if (a.Only(kTInt) && b.Only(kTInt) && !a.num.IsTop() && !b.num.IsTop()) {
          bool definitely = false;
          bool never = false;
          switch (expr.binary_op) {
            case BinaryOp::kLt:
              definitely = a.num.hi < b.num.lo;
              never = a.num.lo >= b.num.hi;
              break;
            case BinaryOp::kLe:
              definitely = a.num.hi <= b.num.lo;
              never = a.num.lo > b.num.hi;
              break;
            case BinaryOp::kGt:
              definitely = a.num.lo > b.num.hi;
              never = a.num.hi <= b.num.lo;
              break;
            default:  // kGe
              definitely = a.num.lo >= b.num.hi;
              never = a.num.hi < b.num.lo;
              break;
          }
          if (definitely) {
            return {cost, AbsValue::BoolExact(true)};
          }
          if (never) {
            return {cost, AbsValue::BoolExact(false)};
          }
        }
        return {cost, AbsValue::Bool()};
      }
    }
    return {cost, AbsValue::Any()};
  }

  const CostContext& ctx_;
  DomainContext dom_;
  AbsEnv env_;
  bool bounded_ = true;
  bool sym_active_ = false;
  bool diags_on_ = true;
  std::string handler_;
  std::vector<Diagnostic> diags_;
  std::set<std::string> emitted_;
};

}  // namespace

CostResult BoundHandlerCost(const Handler& handler, const CostContext& ctx) {
  CostAnalyzer analyzer(ctx);
  return analyzer.Run(handler);
}

}  // namespace edc
