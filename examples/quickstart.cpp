// Quickstart: boot an EXTENSIBLE ZOOKEEPER ensemble in the simulator,
// register the shared-counter extension, and bump the counter with single
// RPCs — the paper's headline use case in ~60 lines.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "edc/harness/fixture.h"
#include "edc/recipes/recipes.h"

using namespace edc;  // NOLINT: example brevity

int main() {
  // Three-replica EZK ensemble plus two clients, simulated on a LAN.
  FixtureOptions options;
  options.system = SystemKind::kExtensibleZooKeeper;
  options.num_clients = 2;
  CoordFixture fixture(options);
  fixture.Start();

  // Client 0 creates the counter object and registers the extension (plain
  // create operations on the /em namespace — the kernel API is unchanged).
  SharedCounter owner(fixture.coord(0), /*use_extension=*/true);
  bool ready = false;
  owner.Setup([&](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    ready = true;
  });
  while (!ready) {
    fixture.Settle(Millis(100));
  }

  // Client 1 acknowledges the extension, then both increment concurrently.
  SharedCounter user(fixture.coord(1), /*use_extension=*/true);
  bool acked = false;
  user.Attach([&](Status s) { acked = s.ok(); });
  while (!acked) {
    fixture.Settle(Millis(100));
  }

  int done = 0;
  for (int i = 0; i < 5; ++i) {
    owner.Increment([&](Result<int64_t> v) {
      std::printf("owner  incremented -> %lld\n", static_cast<long long>(*v));
      ++done;
    });
    user.Increment([&](Result<int64_t> v) {
      std::printf("client incremented -> %lld\n", static_cast<long long>(*v));
      ++done;
    });
  }
  while (done < 10) {
    fixture.Settle(Millis(100));
  }
  std::printf("10 atomic increments, one RPC each; no retries under contention.\n");
  return 0;
}
