// Ablation (§4.2): registration-time verification vs execution-time cost.
// The paper's design verifies once at registration so execution pays
// nothing; this microbenchmark quantifies both sides: parse+verify cost of a
// realistic extension vs a single sandboxed invocation, plus the per-request
// subscription-match check every operation pays.

#include <benchmark/benchmark.h>

#include "bench/gbench_json.h"
#include "edc/ext/registry.h"
#include "edc/script/analysis/analyzer.h"
#include "edc/recipes/scripts.h"
#include "edc/script/builtins.h"
#include "edc/script/interpreter.h"
#include "edc/script/parser.h"
#include "edc/script/verifier.h"

namespace edc {
namespace {

VerifierConfig BenchConfig() {
  VerifierConfig cfg;
  cfg.allowed_functions = CoreAllowedFunctions();
  for (const char* fn : {"create", "create_ephemeral", "create_sequential", "delete_object",
                         "update", "cas", "read_object", "exists", "children",
                         "sub_objects", "block", "monitor", "client_id"}) {
    cfg.allowed_functions[fn] = true;
  }
  return cfg;
}

// A host returning canned objects so the interpreter can run the real queue
// extension without a server.
class CannedHost : public ScriptHost {
 public:
  bool HasFunction(const std::string& name) const override {
    return name == "sub_objects" || name == "delete_object" || name == "read_object" ||
           name == "update";
  }
  Result<Value> Call(const std::string& name, std::vector<Value>& args) override {
    (void)args;
    if (name == "sub_objects") {
      ValueList objs;
      for (int i = 0; i < 10; ++i) {
        objs.push_back(Value::Map({{"path", Value("/queue/e" + std::to_string(i))},
                                   {"data", Value("payload")},
                                   {"ctime", Value(int64_t{100 + i})}}));
      }
      return Value::List(std::move(objs));
    }
    if (name == "read_object") {
      return Value::Map({{"path", Value("/ctr")}, {"data", Value("41")}});
    }
    return Value(true);
  }
};

void BM_ParseAndVerify(benchmark::State& state) {
  VerifierConfig cfg = BenchConfig();
  for (auto _ : state) {
    auto program = ParseProgram(kQueueExtension);
    benchmark::DoNotOptimize(program);
    Status s = VerifyProgram(**program, cfg);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ParseAndVerify);

void BM_AnalyzeProgram(benchmark::State& state) {
  // The full registration-time analysis: CFG + dataflow + cost bounding +
  // determinism taint (docs/static_analysis.md). This is the one-time price
  // whose payoff is measured by BM_CertifiedInvocation below.
  VerifierConfig cfg = BenchConfig();
  cfg.collection_functions = {"children", "sub_objects"};
  auto program = ParseProgram(kQueueExtension);
  for (auto _ : state) {
    AnalysisReport report = AnalyzeProgram(**program, cfg);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AnalyzeProgram);

void BM_RegistryLoad(benchmark::State& state) {
  VerifierConfig cfg = BenchConfig();
  for (auto _ : state) {
    ExtensionRegistry registry;
    Status s = registry.Load("queue_remove", 1, kQueueExtension, cfg);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_RegistryLoad);

void BM_ExtensionInvocation(benchmark::State& state) {
  auto program = ParseProgram(kQueueExtension);
  CannedHost host;
  for (auto _ : state) {
    Interpreter interp(program->get(), &host, ExecBudget{});
    auto out = interp.Invoke("read", {Value("/queue/head")});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ExtensionInvocation);

void BM_CertifiedInvocation(benchmark::State& state) {
  // Same invocation with the metering the analyzer's certificate makes
  // redundant elided; delta vs BM_ExtensionInvocation is the recurring
  // per-request payoff of verifying once at registration.
  auto program = ParseProgram(kQueueExtension);
  CannedHost host;
  ExecBudget elided;
  elided.metered = false;
  for (auto _ : state) {
    Interpreter interp(program->get(), &host, elided);
    auto out = interp.Invoke("read", {Value("/queue/head")});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CertifiedInvocation);

void BM_SubscriptionMatch(benchmark::State& state) {
  // The per-request cost every operation pays on an extensible server.
  ExtensionRegistry registry;
  VerifierConfig cfg = BenchConfig();
  for (int i = 0; i < state.range(0); ++i) {
    (void)registry.Load("ext" + std::to_string(i), 1,
                        "extension e { on op read \"/p" + std::to_string(i) +
                            "\"; fn read(o) { return 1; } }",
                        cfg);
  }
  for (auto _ : state) {
    auto* match = registry.MatchOperation(1, "read", "/p0");
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_SubscriptionMatch)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace edc

int main(int argc, char** argv) { return edc::GBenchMainWithJson("abl_verify", argc, argv); }
