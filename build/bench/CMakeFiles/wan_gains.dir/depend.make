# Empty dependencies file for wan_gains.
# This may be replaced when dependencies are built.
