# CMake generated Testfile for 
# Source directory: /root/repo/src/edc/zab
# Build directory: /root/repo/build/src/edc/zab
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
