# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/zab_test[1]_include.cmake")
include("/root/repo/build/tests/bft_test[1]_include.cmake")
include("/root/repo/build/tests/zk_test[1]_include.cmake")
include("/root/repo/build/tests/ds_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/recipes_test[1]_include.cmake")
