#include "edc/script/analysis/determinism.h"

#include <algorithm>
#include <utility>

#include "edc/script/builtins.h"

namespace edc {

namespace {

// Scoped taint environment (true = possibly nondeterministic).
class TaintEnv {
 public:
  void Push() { scopes_.emplace_back(); }
  void Pop() { scopes_.pop_back(); }

  void Declare(const std::string& name, bool tainted) {
    scopes_.back()[name] = tainted;
  }

  void Assign(const std::string& name, bool tainted) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        found->second = tainted;
        return;
      }
    }
    scopes_.back()[name] = tainted;
  }

  bool Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return found->second;
      }
    }
    return false;
  }

  static TaintEnv Join(const TaintEnv& a, const TaintEnv& b) {
    TaintEnv out = a;
    for (size_t i = 0; i < out.scopes_.size() && i < b.scopes_.size(); ++i) {
      for (auto& [name, tainted] : out.scopes_[i]) {
        auto it = b.scopes_[i].find(name);
        if (it != b.scopes_[i].end()) {
          tainted = tainted || it->second;
        }
      }
      for (const auto& [name, tainted] : b.scopes_[i]) {
        out.scopes_[i].emplace(name, tainted);
      }
    }
    return out;
  }

  bool Equals(const TaintEnv& other) const { return scopes_ == other.scopes_; }

 private:
  std::vector<std::map<std::string, bool>> scopes_;
};

class TaintAnalyzer {
 public:
  TaintAnalyzer(const DeterminismContext& ctx, const std::string& handler_name)
      : ctx_(ctx), handler_(handler_name) {}

  DeterminismResult Run(const Handler& handler) {
    env_ = TaintEnv();
    env_.Push();
    for (const std::string& param : handler.params) {
      // Handler arguments are part of the replicated request: deterministic.
      env_.Declare(param, false);
    }
    WalkBlock(handler.body, /*control_tainted=*/false);
    DeterminismResult out;
    out.deterministic = diags_.empty() && !tainted_sink_;
    out.diags = std::move(diags_);
    return out;
  }

 private:
  void WalkBlock(const Block& block, bool control_tainted) {
    env_.Push();
    for (const StmtPtr& stmt : block) {
      WalkStmt(*stmt, control_tainted);
    }
    env_.Pop();
  }

  void WalkStmt(const Stmt& stmt, bool control_tainted) {
    switch (stmt.kind) {
      case Stmt::Kind::kLet: {
        bool t = ExprTaint(*stmt.expr, control_tainted);
        env_.Declare(stmt.name, t || control_tainted);
        return;
      }
      case Stmt::Kind::kAssign: {
        bool t = ExprTaint(*stmt.expr, control_tainted);
        env_.Assign(stmt.name, t || control_tainted);
        return;
      }
      case Stmt::Kind::kIf: {
        bool cond = ExprTaint(*stmt.expr, control_tainted);
        bool inner_control = control_tainted || cond;
        TaintEnv base = env_;
        WalkBlock(stmt.body, inner_control);
        TaintEnv then_env = env_;
        env_ = base;
        WalkBlock(stmt.else_body, inner_control);
        env_ = TaintEnv::Join(then_env, env_);
        return;
      }
      case Stmt::Kind::kForEach: {
        bool list_taint = ExprTaint(*stmt.expr, control_tainted);
        bool inner_control = control_tainted || list_taint;
        // Fixpoint: taint can flow between iterations through assignments to
        // outer variables. Iterate silently until the environment stabilizes
        // (the lattice is finite and monotone), then do one reporting pass.
        suppress_ += 1;
        for (int iter = 0; iter < 64; ++iter) {
          TaintEnv before = env_;
          WalkLoopBody(stmt, inner_control, list_taint);
          env_ = TaintEnv::Join(before, env_);
          if (env_.Equals(before)) {
            break;
          }
        }
        suppress_ -= 1;
        WalkLoopBody(stmt, inner_control, list_taint);
        return;
      }
      case Stmt::Kind::kReturn: {
        bool t = stmt.expr ? ExprTaint(*stmt.expr, control_tainted) : false;
        if (t || control_tainted) {
          Sink(stmt.line, stmt.col,
               "nondeterministic value reaches the handler's return value");
        }
        return;
      }
      case Stmt::Kind::kExpr:
        // Result discarded: only sinks inside the expression matter, which
        // ExprTaint reports itself. This is the flow-sensitivity win over the
        // legacy call-site check.
        (void)ExprTaint(*stmt.expr, control_tainted);
        return;
    }
  }

  void WalkLoopBody(const Stmt& stmt, bool inner_control, bool list_taint) {
    env_.Push();
    env_.Declare(stmt.name, list_taint || inner_control);
    WalkBlock(stmt.body, inner_control);
    env_.Pop();
  }

  bool ExprTaint(const Expr& expr, bool control_tainted) {
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        return false;
      case Expr::Kind::kVar:
        return env_.Lookup(expr.name);
      case Expr::Kind::kUnary:
        return ExprTaint(*expr.lhs, control_tainted);
      case Expr::Kind::kBinary:
      case Expr::Kind::kIndex: {
        bool l = ExprTaint(*expr.lhs, control_tainted);
        bool r = ExprTaint(*expr.rhs, control_tainted);
        return l || r;
      }
      case Expr::Kind::kListLit: {
        bool t = false;
        for (const ExprPtr& item : expr.args) {
          t = ExprTaint(*item, control_tainted) || t;
        }
        return t;
      }
      case Expr::Kind::kCall: {
        bool arg_taint = false;
        for (const ExprPtr& arg : expr.args) {
          arg_taint = ExprTaint(*arg, control_tainted) || arg_taint;
        }
        bool source = false;
        if (ctx_.allowed_functions != nullptr) {
          auto it = ctx_.allowed_functions->find(expr.name);
          if (it != ctx_.allowed_functions->end() && !it->second) {
            source = true;
          }
        }
        if (IsMutatingHostFn(expr.name) && (arg_taint || control_tainted)) {
          Sink(expr.line, expr.col,
               arg_taint
                   ? "nondeterministic value flows into state-mutating function '" +
                         expr.name + "'"
                   : "state-mutating function '" + expr.name +
                         "' called under a nondeterministic condition");
        }
        return source || arg_taint;
      }
    }
    return false;
  }

  bool IsMutatingHostFn(const std::string& name) const {
    if (ctx_.allowed_functions == nullptr ||
        ctx_.allowed_functions->count(name) == 0) {
      return false;  // not whitelisted: rejected elsewhere (EDC-E012)
    }
    if (CoreBuiltins().count(name) > 0) {
      return false;  // pure builtins have no state effects
    }
    return ctx_.read_only_functions.count(name) == 0;
  }

  void Sink(int line, int col, const std::string& what) {
    tainted_sink_ = true;
    if (!ctx_.enforce || suppress_ > 0) {
      return;
    }
    // Dedupe: the reporting pass after a loop fixpoint can re-visit a site.
    for (const Diagnostic& d : diags_) {
      if (d.line == line && d.col == col) {
        return;
      }
    }
    diags_.push_back(Diagnostic{
        kDiagNondeterminism, Severity::kError, line, col, handler_,
        what + " in handler '" + handler_ + "' (forbidden under active replication)"});
  }

  const DeterminismContext& ctx_;
  std::string handler_;
  TaintEnv env_;
  std::vector<Diagnostic> diags_;
  bool tainted_sink_ = false;
  int suppress_ = 0;
};

}  // namespace

std::set<std::string> DefaultReadOnlyFunctions() {
  return {"read_object", "exists",    "children", "sub_objects",
          "client_id",   "now",       "random"};
}

DeterminismResult CheckDeterminism(const Handler& handler, const DeterminismContext& ctx) {
  TaintAnalyzer analyzer(ctx, handler.name);
  return analyzer.Run(handler);
}

}  // namespace edc
