// Safety invariants checked during and after chaos runs (see
// docs/fault_model.md).
//
// Three checks cover the properties §5.1's crash-recovery story depends on:
//   * Single primary per epoch — at no sampled instant do two Zab nodes both
//     believe they are the active leader of the same epoch.
//   * Prefix-consistent logs — any two replicas' applied transaction
//     sequences agree on every zxid both of them applied (snapshot-installed
//     replicas legitimately miss a prefix; divergence on the overlap is the
//     bug).
//   * Matching EDS digests — after a heal, all running DepSpace replicas
//     converge to byte-identical tuple spaces.
//   * Bounded EDS logs — checkpointing and log GC keep every running
//     replica's ordering log within the watermark window; an entry count or
//     checkpoint lag beyond it means GC regressed (the pre-checkpoint
//     unbounded-log behaviour).

#ifndef EDC_HARNESS_INVARIANTS_H_
#define EDC_HARNESS_INVARIANTS_H_

#include <memory>
#include <string>
#include <vector>

#include "edc/ds/server.h"
#include "edc/sim/event_loop.h"
#include "edc/zk/server.h"

namespace edc {

// Continuous checker: samples leadership across the ensemble on a repeating
// timer between Start() and Stop() (a repeating timer would keep an
// otherwise-idle EventLoop::Run from terminating, hence the explicit stop).
// Violations accumulate in violations().
class InvariantMonitor {
 public:
  InvariantMonitor(EventLoop* loop, const std::vector<std::unique_ptr<ZkServer>>* servers,
                   Duration interval = Millis(25));
  ~InvariantMonitor();

  void Start();
  void Stop();

  const std::vector<std::string>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }

 private:
  void Sample();

  EventLoop* loop_;
  const std::vector<std::unique_ptr<ZkServer>>* servers_;
  Duration interval_;
  TimerId timer_ = kInvalidTimer;
  bool running_ = false;
  std::vector<std::string> violations_;
};

// One-shot: true when every pair of replicas agrees on the transactions at
// every zxid both applied. `why` (optional) receives the first divergence.
// The raw-pointer overloads exist for sharded fixtures, which group a flat
// server vector per shard before checking — cross-shard comparisons are
// meaningless (each shard orders an independent history, docs/sharding.md).
bool PrefixConsistentLogs(const std::vector<ZkServer*>& servers, std::string* why = nullptr);
bool PrefixConsistentLogs(const std::vector<std::unique_ptr<ZkServer>>& servers,
                          std::string* why = nullptr);

// One-shot: true when all running DepSpace replicas hold identical tuple
// spaces (same Digest()).
bool EdsDigestsMatch(const std::vector<DsServer*>& servers, std::string* why = nullptr);
bool EdsDigestsMatch(const std::vector<std::unique_ptr<DsServer>>& servers,
                     std::string* why = nullptr);

// One-shot: true when every running DepSpace replica's BFT log is bounded by
// its watermark window — both the stored entry count and the distance from
// the last stable checkpoint to the execution point.
bool EdsLogBounded(const std::vector<DsServer*>& servers, std::string* why = nullptr);
bool EdsLogBounded(const std::vector<std::unique_ptr<DsServer>>& servers,
                   std::string* why = nullptr);

}  // namespace edc

#endif  // EDC_HARNESS_INVARIANTS_H_
