#include "edc/script/lexer.h"

#include <gtest/gtest.h>

namespace edc {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& toks) {
  std::vector<TokenKind> out;
  for (const Token& t : toks) {
    out.push_back(t.kind);
  }
  return out;
}

TEST(LexerTest, KeywordsAndIdents) {
  auto toks = Lex("extension foo fn let if else foreach in return");
  ASSERT_TRUE(toks.ok());
  auto kinds = Kinds(*toks);
  EXPECT_EQ(kinds[0], TokenKind::kExtension);
  EXPECT_EQ(kinds[1], TokenKind::kIdent);
  EXPECT_EQ((*toks)[1].text, "foo");
  EXPECT_EQ(kinds[2], TokenKind::kFn);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
}

TEST(LexerTest, IntegerLiterals) {
  auto toks = Lex("0 42 1234567890123");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].int_value, 0);
  EXPECT_EQ((*toks)[1].int_value, 42);
  EXPECT_EQ((*toks)[2].int_value, 1234567890123LL);
}

TEST(LexerTest, IntegerOverflowRejected) {
  EXPECT_FALSE(Lex("99999999999999999999999").ok());
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto toks = Lex(R"("hello" "a\nb" "q\"q" "back\\slash" "")");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "hello");
  EXPECT_EQ((*toks)[1].text, "a\nb");
  EXPECT_EQ((*toks)[2].text, "q\"q");
  EXPECT_EQ((*toks)[3].text, "back\\slash");
  EXPECT_EQ((*toks)[4].text, "");
}

TEST(LexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Lex("\"abc").ok());
  EXPECT_FALSE(Lex("\"abc\nxyz\"").ok());
  EXPECT_FALSE(Lex("\"abc\\").ok());
  EXPECT_FALSE(Lex("\"bad\\q\"").ok());
}

TEST(LexerTest, OperatorsTwoChar) {
  auto toks = Lex("== != <= >= && || = < > !");
  ASSERT_TRUE(toks.ok());
  auto kinds = Kinds(*toks);
  EXPECT_EQ(kinds[0], TokenKind::kEq);
  EXPECT_EQ(kinds[1], TokenKind::kNe);
  EXPECT_EQ(kinds[2], TokenKind::kLe);
  EXPECT_EQ(kinds[3], TokenKind::kGe);
  EXPECT_EQ(kinds[4], TokenKind::kAndAnd);
  EXPECT_EQ(kinds[5], TokenKind::kOrOr);
  EXPECT_EQ(kinds[6], TokenKind::kAssign);
  EXPECT_EQ(kinds[7], TokenKind::kLt);
  EXPECT_EQ(kinds[8], TokenKind::kGt);
  EXPECT_EQ(kinds[9], TokenKind::kBang);
}

TEST(LexerTest, SingleAmpersandOrPipeRejected) {
  EXPECT_FALSE(Lex("a & b").ok());
  EXPECT_FALSE(Lex("a | b").ok());
}

TEST(LexerTest, CommentsIgnored) {
  auto toks = Lex("a // this is a comment\nb");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);  // a, b, eof
  EXPECT_EQ((*toks)[1].text, "b");
  EXPECT_EQ((*toks)[1].line, 2);
}

TEST(LexerTest, LineNumbersTracked) {
  auto toks = Lex("a\nb\n\nc");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[2].line, 4);
}

TEST(LexerTest, UnknownCharacterRejected) {
  EXPECT_FALSE(Lex("a $ b").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto toks = Lex("");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 1u);
  EXPECT_EQ((*toks)[0].kind, TokenKind::kEof);
}

}  // namespace
}  // namespace edc
