#include "edc/common/histogram.h"

#include <gtest/gtest.h>

namespace edc {
namespace {

TEST(RecorderTest, EmptyIsSafe) {
  Recorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Mean(), 0.0);
  EXPECT_EQ(r.Min(), 0);
  EXPECT_EQ(r.Max(), 0);
  EXPECT_EQ(r.Percentile(0.5), 0);
  EXPECT_EQ(r.StdDev(), 0.0);
}

TEST(RecorderTest, BasicStats) {
  Recorder r;
  for (int64_t v : {1, 2, 3, 4, 5}) {
    r.Record(v);
  }
  EXPECT_EQ(r.count(), 5u);
  EXPECT_DOUBLE_EQ(r.Mean(), 3.0);
  EXPECT_EQ(r.Min(), 1);
  EXPECT_EQ(r.Max(), 5);
  EXPECT_EQ(r.Percentile(0.5), 3);
  EXPECT_NEAR(r.StdDev(), 1.5811, 1e-3);
}

TEST(RecorderTest, PercentileEdges) {
  Recorder r;
  for (int64_t i = 1; i <= 100; ++i) {
    r.Record(i);
  }
  EXPECT_EQ(r.Percentile(0.0), 1);
  EXPECT_EQ(r.Percentile(1.0), 100);
  EXPECT_NEAR(static_cast<double>(r.Percentile(0.99)), 99.0, 1.0);
}

TEST(RecorderTest, SingleSampleAllPercentiles) {
  Recorder r;
  r.Record(42);
  EXPECT_EQ(r.Percentile(0.0), 42);
  EXPECT_EQ(r.Percentile(0.5), 42);
  EXPECT_EQ(r.Percentile(0.99), 42);
  EXPECT_EQ(r.Percentile(1.0), 42);
}

TEST(RecorderTest, TwoSamplesInterpolateMidpoint) {
  Recorder r;
  r.Record(100);
  r.Record(200);
  EXPECT_EQ(r.Percentile(0.5), 150);
  EXPECT_EQ(r.Percentile(0.25), 125);
  EXPECT_EQ(r.Percentile(0.99), 199);
}

TEST(RecorderTest, SmallSamplePercentileDoesNotSaturateToMax) {
  // Regression: the old nearest-rank rounding mapped p99 of any n<=50 sample
  // set to Max(). With 50 samples 1..50, p99 should interpolate between the
  // 49th and 50th order statistics, not saturate.
  Recorder r;
  for (int64_t i = 1; i <= 50; ++i) {
    r.Record(i * 10);
  }
  int64_t p99 = r.Percentile(0.99);
  EXPECT_LT(p99, r.Max());
  EXPECT_GT(p99, 490);
  // p50 of an even-sized set interpolates between the two middle samples.
  EXPECT_EQ(r.Percentile(0.5), 255);
}

TEST(RecorderTest, HundredSamplesInterpolated) {
  Recorder r;
  for (int64_t i = 1; i <= 100; ++i) {
    r.Record(i);
  }
  // pos = q*(n-1): p50 -> 49.5 -> 50.5 truncated to 50; p90 -> 90.1 -> 90.
  EXPECT_EQ(r.Percentile(0.5), 50);
  EXPECT_EQ(r.Percentile(0.9), 90);
  EXPECT_EQ(r.Percentile(0.99), 99);
  EXPECT_EQ(r.Percentile(1.0), 100);
}

TEST(RecorderTest, RecordAfterQueryResorts) {
  Recorder r;
  r.Record(10);
  EXPECT_EQ(r.Max(), 10);
  r.Record(20);
  EXPECT_EQ(r.Max(), 20);
  r.Record(5);
  EXPECT_EQ(r.Min(), 5);
}

TEST(RecorderTest, SummaryMentionsCount) {
  Recorder r;
  r.Record(1000000);
  EXPECT_NE(r.SummaryNs().find("n=1"), std::string::npos);
}

TEST(RunAggregateTest, MeanAndStdDev) {
  RunAggregate agg;
  agg.Add(10.0);
  agg.Add(20.0);
  agg.Add(30.0);
  EXPECT_DOUBLE_EQ(agg.Mean(), 20.0);
  EXPECT_NEAR(agg.StdDev(), 10.0, 1e-9);
  EXPECT_EQ(agg.count(), 3u);
}

TEST(RunAggregateTest, SingleValueHasZeroDev) {
  RunAggregate agg;
  agg.Add(5.0);
  EXPECT_DOUBLE_EQ(agg.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(agg.StdDev(), 0.0);
}

}  // namespace
}  // namespace edc
