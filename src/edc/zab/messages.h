// Wire messages of the Zab-style atomic broadcast protocol.
//
// zxid layout follows ZooKeeper: high 32 bits epoch, low 32 bits counter.

#ifndef EDC_ZAB_MESSAGES_H_
#define EDC_ZAB_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "edc/common/codec.h"
#include "edc/common/result.h"
#include "edc/sim/network.h"

namespace edc {

// Packet type range reserved for Zab traffic.
constexpr uint32_t kZabTypeBase = 100;

enum class ZabMsgType : uint32_t {
  kElection = kZabTypeBase + 0,   // vote exchange while LOOKING
  kLeaderInfo = kZabTypeBase + 1, // settled node tells a looking node who leads
  kFollowerInfo = kZabTypeBase + 2,  // follower -> new leader: my last zxid
  kDiff = kZabTypeBase + 3,       // leader -> follower: missing proposals
  kTrunc = kZabTypeBase + 4,      // leader -> follower: drop entries after zxid
  kSnap = kZabTypeBase + 5,       // leader -> follower: full snapshot
  kNewLeader = kZabTypeBase + 6,  // leader -> follower: end of sync
  kAckNewLeader = kZabTypeBase + 7,
  kUpToDate = kZabTypeBase + 8,   // leader -> follower: broadcast phase open
  kPropose = kZabTypeBase + 9,
  kAck = kZabTypeBase + 10,
  kCommit = kZabTypeBase + 11,
  kHeartbeat = kZabTypeBase + 12,
  kHeartbeatAck = kZabTypeBase + 13,  // follower -> leader: I am alive
  kMax = kZabTypeBase + 14,
};

inline bool IsZabPacket(uint32_t type) {
  return type >= kZabTypeBase && type < static_cast<uint32_t>(ZabMsgType::kMax);
}

inline uint64_t MakeZxid(uint32_t epoch, uint32_t counter) {
  return (static_cast<uint64_t>(epoch) << 32) | counter;
}
inline uint32_t ZxidEpoch(uint64_t zxid) { return static_cast<uint32_t>(zxid >> 32); }
inline uint32_t ZxidCounter(uint64_t zxid) { return static_cast<uint32_t>(zxid); }

// Proposal flag bits. A reconfiguration proposal carries an encoded
// ZabMembership as its txn; it is activated by the protocol layer at commit
// and never delivered to the state machine callbacks.
constexpr uint8_t kReconfigFlag = 0x1;

struct ZabProposal {
  uint64_t zxid = 0;
  uint8_t flags = 0;
  std::vector<uint8_t> txn;

  bool is_reconfig() const { return (flags & kReconfigFlag) != 0; }

  void Encode(Encoder& enc) const {
    enc.PutU64(zxid);
    enc.PutU8(flags);
    enc.PutBytes(txn);
  }
  static Result<ZabProposal> Decode(Decoder& dec) {
    ZabProposal p;
    auto zxid = dec.GetU64();
    if (!zxid.ok()) {
      return zxid.status();
    }
    p.zxid = *zxid;
    auto flags = dec.GetU8();
    if (!flags.ok()) {
      return flags.status();
    }
    p.flags = *flags;
    auto txn = dec.GetBytes();
    if (!txn.ok()) {
      return txn.status();
    }
    p.txn = std::move(*txn);
    return p;
  }
};

// An ensemble membership: the voter set (quorums are majorities of it) plus
// the observer set (receive the proposal/commit stream, never vote, never
// count toward acks, never lead). Reconfiguration replicates the *full* next
// membership through the log — activation is therefore idempotent and a new
// leader taking over an in-flight reconfig needs no delta reconstruction.
// `version` is the zxid of the reconfig entry that activated this membership
// (0 for the boot configuration); it is runtime state, not encoded.
struct ZabMembership {
  uint64_t version = 0;
  std::vector<NodeId> voters;
  std::vector<NodeId> observers;

  bool IsVoter(NodeId id) const {
    for (NodeId v : voters) {
      if (v == id) return true;
    }
    return false;
  }
  bool IsObserver(NodeId id) const {
    for (NodeId o : observers) {
      if (o == id) return true;
    }
    return false;
  }
  bool Contains(NodeId id) const { return IsVoter(id) || IsObserver(id); }
};

std::vector<uint8_t> EncodeZabMembership(const ZabMembership& m);
Result<ZabMembership> DecodeZabMembership(const std::vector<uint8_t>& buf);

// Snapshot wire/durable wrapper: the service-layer state image plus the
// membership in force at the snapshot frontier, so a joiner installing a
// snapshot (and a node recovering one from its log store) also recovers the
// correct quorum definition.
struct ZabSnapshot {
  ZabMembership membership;
  std::vector<uint8_t> state;
};

std::vector<uint8_t> EncodeZabSnapshot(const ZabSnapshot& s);
Result<ZabSnapshot> DecodeZabSnapshot(const std::vector<uint8_t>& buf);

// kElection payload.
struct ElectionVote {
  uint64_t election_round = 0;
  NodeId vote_for = 0;
  uint64_t vote_zxid = 0;
  uint32_t vote_epoch = 0;  // currentEpoch of the candidate
  NodeId from = 0;
  bool from_looking = true;
};

// kLeaderInfo payload: current leader as known by a settled node.
struct LeaderInfo {
  NodeId leader = 0;
  uint32_t epoch = 0;
};

// kFollowerInfo / kAckNewLeader payload.
struct FollowerInfo {
  uint64_t last_zxid = 0;
};

// kDiff payload: proposals after the follower's last zxid, plus the commit
// frontier so the follower can deliver immediately.
struct DiffMsg {
  uint64_t committed_zxid = 0;
  std::vector<ZabProposal> proposals;
};

// kSnap payload.
struct SnapMsg {
  uint64_t snapshot_zxid = 0;
  uint32_t epoch = 0;
  std::vector<uint8_t> snapshot;
};

// kNewLeader / kUpToDate / kHeartbeat / kHeartbeatAck share this shape.
struct EpochMsg {
  uint32_t epoch = 0;
  uint64_t committed_zxid = 0;
};

// kPropose payload.
struct ProposeMsg {
  uint32_t epoch = 0;
  ZabProposal proposal;
};

// Byte offset of the embedded proposal frame inside a kPropose payload (the
// u32 epoch header precedes it). The durable log record for a proposal is
// exactly the payload suffix starting here — the replication hot path relies
// on that to serialize each transaction once (arena encode on the leader,
// frame slicing on followers) instead of once per consumer.
constexpr size_t kProposeHeaderBytes = 4;

// Zero-copy view of a kPropose payload: all pointers borrow the packet
// buffer, which must outlive the view. `record` spans the proposal frame
// (zxid + txn), i.e. the bytes a follower appends to its log verbatim.
struct ProposeFrameView {
  uint32_t epoch = 0;
  uint64_t zxid = 0;
  uint8_t flags = 0;
  const uint8_t* txn = nullptr;
  size_t txn_size = 0;
  const uint8_t* record = nullptr;
  size_t record_size = 0;
};

// kAck / kCommit payload.
struct ZxidMsg {
  uint32_t epoch = 0;
  uint64_t zxid = 0;
};

// Encoding helpers (free functions so messages stay aggregates).
std::vector<uint8_t> EncodeElectionVote(const ElectionVote& m);
Result<ElectionVote> DecodeElectionVote(const std::vector<uint8_t>& buf);
std::vector<uint8_t> EncodeLeaderInfo(const LeaderInfo& m);
Result<LeaderInfo> DecodeLeaderInfo(const std::vector<uint8_t>& buf);
std::vector<uint8_t> EncodeFollowerInfo(const FollowerInfo& m);
Result<FollowerInfo> DecodeFollowerInfo(const std::vector<uint8_t>& buf);
std::vector<uint8_t> EncodeDiffMsg(const DiffMsg& m);
Result<DiffMsg> DecodeDiffMsg(const std::vector<uint8_t>& buf);
std::vector<uint8_t> EncodeSnapMsg(const SnapMsg& m);
Result<SnapMsg> DecodeSnapMsg(const std::vector<uint8_t>& buf);
std::vector<uint8_t> EncodeEpochMsg(const EpochMsg& m);
Result<EpochMsg> DecodeEpochMsg(const std::vector<uint8_t>& buf);
std::vector<uint8_t> EncodeProposeMsg(const ProposeMsg& m);
// Arena variant: appends the frame to `enc` (typically a reused per-batch
// encoder) instead of allocating a fresh buffer per message.
void EncodeProposeMsgInto(const ProposeMsg& m, Encoder& enc);
Result<ProposeMsg> DecodeProposeMsg(const std::vector<uint8_t>& buf);
// Zero-copy variant: validates the frame and returns borrowed spans into
// `buf` (no txn copy); see ProposeFrameView.
Result<ProposeFrameView> DecodeProposeMsgView(const std::vector<uint8_t>& buf);
std::vector<uint8_t> EncodeZxidMsg(const ZxidMsg& m);
Result<ZxidMsg> DecodeZxidMsg(const std::vector<uint8_t>& buf);

}  // namespace edc

#endif  // EDC_ZAB_MESSAGES_H_
