# Empty compiler generated dependencies file for edc_harness.
# This may be replaced when dependencies are built.
