#include "edc/check/conformance.h"

#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "edc/check/ds_model.h"
#include "edc/check/zk_model.h"
#include "edc/common/strings.h"

namespace edc {

namespace {

bool StatEq(const ZkStat& a, const ZkStat& b) {
  return a.czxid == b.czxid && a.mzxid == b.mzxid && a.pzxid == b.pzxid &&
         a.ctime == b.ctime && a.mtime == b.mtime && a.version == b.version &&
         a.cversion == b.cversion && a.ephemeral_owner == b.ephemeral_owner &&
         a.num_children == b.num_children;
}

// One state a path passed through, as projected from the model after a
// committed transaction touched it.
struct PathState {
  bool exists = false;
  std::string data;
  ZkStat stat;
  std::vector<std::string> children;
};

bool PathStateEq(const PathState& a, const PathState& b) {
  return a.exists == b.exists && a.data == b.data && StatEq(a.stat, b.stat) &&
         a.children == b.children;
}

bool IsTreeOp(ZkTxnOpType t) {
  return t == ZkTxnOpType::kCreate || t == ZkTxnOpType::kDelete ||
         t == ZkTxnOpType::kSetData;
}

bool IsWriteOp(ZkOpType t) {
  return t == ZkOpType::kCreate || t == ZkOpType::kDelete ||
         t == ZkOpType::kSetData || t == ZkOpType::kMulti;
}

// Validates that the committed transaction is the prepped image of the
// client's operation: same tree ops in order, sequential creates resolving to
// a name under the requested prefix.
void CheckWriteTxnShape(NodeId client, uint64_t req_id, const ZkOp& op, const ZkTxn& txn,
                        std::vector<std::string>* violations) {
  auto fail = [&](const std::string& why) {
    std::ostringstream os;
    os << "client " << client << " req " << req_id << ": committed txn does not match call ("
       << why << ")";
    violations->push_back(os.str());
  };
  std::vector<const ZkTxnOp*> tree;
  for (const ZkTxnOp& t : txn.ops) {
    if (IsTreeOp(t.type)) {
      tree.push_back(&t);
    }
  }
  std::vector<const ZkOp*> body;
  if (op.type == ZkOpType::kMulti) {
    for (const ZkOp& o : op.ops) {
      body.push_back(&o);
    }
  } else {
    body.push_back(&op);
  }
  if (tree.size() != body.size()) {
    fail("op count " + std::to_string(tree.size()) + " != " + std::to_string(body.size()));
    return;
  }
  for (size_t i = 0; i < body.size(); ++i) {
    const ZkOp& o = *body[i];
    const ZkTxnOp& t = *tree[i];
    switch (o.type) {
      case ZkOpType::kCreate:
        if (t.type != ZkTxnOpType::kCreate) {
          fail("op " + std::to_string(i) + " type");
        } else if (o.sequential ? t.path.compare(0, o.path.size(), o.path) != 0
                                : t.path != o.path) {
          fail("create path " + t.path + " vs " + o.path);
        } else if (t.data != o.data) {
          fail("create data for " + o.path);
        }
        break;
      case ZkOpType::kDelete:
        if (t.type != ZkTxnOpType::kDelete || t.path != o.path) {
          fail("delete path " + o.path);
        }
        break;
      case ZkOpType::kSetData:
        if (t.type != ZkTxnOpType::kSetData || t.path != o.path) {
          fail("setData path " + o.path);
        } else if (t.data != o.data) {
          fail("setData data for " + o.path);
        }
        break;
      default:
        fail("op " + std::to_string(i) + " is not a tree op");
        break;
    }
  }
}

}  // namespace

std::string CheckReport::ToString() const {
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) {
      out += '\n';
    }
    out += v;
  }
  return out;
}

CheckReport CheckZkHistory(const HistoryRecorder& history) {
  CheckReport report;
  auto violation = [&report](const std::string& v) { report.violations.push_back(v); };

  // --- 1. Merge per-replica commit streams into one total order by zxid. ---
  std::map<uint64_t, const ZkCommitRecord*> commits;
  for (const ZkCommitRecord& c : history.zk_commits) {
    auto [it, inserted] = commits.emplace(c.zxid, &c);
    if (!inserted && it->second->txn_hash != c.txn_hash) {
      std::ostringstream os;
      os << "zxid " << c.zxid << ": replicas " << it->second->replica << " and " << c.replica
         << " committed different transactions";
      violation(os.str());
    }
  }

  // --- 2. Replay through the sequential model, building per-path state
  //        histories and the (session, req_id) -> commit index. ---
  ZkModel model;
  std::map<std::string, std::vector<PathState>> path_histories;
  auto snapshot = [&model](const std::string& path) {
    PathState st;
    const ZkModelNode* node = model.Get(path);
    if (node != nullptr) {
      st.exists = true;
      st.data = node->data;
      st.stat = node->stat;
      st.children = model.Children(path);
    }
    return st;
  };
  auto record_path = [&](const std::string& path) {
    PathState st = snapshot(path);
    auto& states = path_histories[path];
    if (states.empty() || !PathStateEq(states.back(), st)) {
      states.push_back(std::move(st));
    }
  };
  record_path("/");
  record_path("/em");

  struct CommitInfo {
    uint64_t zxid = 0;
    const ZkTxn* txn = nullptr;
  };
  std::map<std::pair<uint64_t, uint64_t>, CommitInfo> client_commits;
  for (const auto& [zxid, rec] : commits) {
    ZkModelApplyResult applied = model.Apply(zxid, rec->txn);
    for (const std::string& f : applied.failures) {
      std::ostringstream os;
      os << "zxid " << zxid << ": committed op failed to apply (" << f << ")";
      violation(os.str());
    }
    for (const std::string& p : applied.touched) {
      record_path(p);
    }
    bool has_tree_op = false;
    bool internal = false;
    for (const ZkTxnOp& op : rec->txn.ops) {
      has_tree_op = has_tree_op || IsTreeOp(op.type);
      internal = internal || op.type == ZkTxnOpType::kCreateSession ||
                 op.type == ZkTxnOpType::kCloseSession;
    }
    if (!has_tree_op || internal || rec->txn.session == 0) {
      continue;  // session bookkeeping / ephemeral cleanup, not a client write
    }
    std::pair<uint64_t, uint64_t> key{rec->txn.session, rec->txn.req_id};
    auto [it, inserted] = client_commits.emplace(key, CommitInfo{zxid, &rec->txn});
    if (!inserted) {
      std::ostringstream os;
      os << "session " << key.first << " req " << key.second << ": committed twice (zxid "
         << it->second.zxid << " and " << zxid << ")";
      violation(os.str());
    }
  }

  // --- 3. Index calls; validate the response stream in receive order. ---
  std::map<std::pair<NodeId, uint64_t>, const ZkCallRecord*> calls;
  for (const ZkCallRecord& c : history.zk_calls) {
    calls.emplace(std::make_pair(c.client, c.req_id), &c);
  }

  auto absence_plausible = [&path_histories](const std::string& path) {
    auto it = path_histories.find(path);
    if (it == path_histories.end()) {
      return true;  // never existed during the run
    }
    if (path != "/" && path != "/em") {
      return true;  // initial state of every run-created path is "absent"
    }
    for (const PathState& st : it->second) {
      if (!st.exists) {
        return true;
      }
    }
    return false;
  };
  auto match_state = [&path_histories](const std::string& path, auto&& pred) {
    auto it = path_histories.find(path);
    if (it == path_histories.end()) {
      return false;
    }
    for (const PathState& st : it->second) {
      if (st.exists && pred(st)) {
        return true;
      }
    }
    return false;
  };

  std::set<std::pair<NodeId, uint64_t>> responded;
  std::map<uint64_t, uint64_t> last_commit_zxid;                       // session -> zxid
  std::map<std::pair<uint64_t, std::string>, uint64_t> last_mzxid;     // (session, path)
  std::map<std::pair<NodeId, std::string>, uint64_t> data_watch_arms;  // (client, path)
  std::map<std::pair<NodeId, std::string>, uint64_t> child_watch_arms;

  for (const ZkResponseRecord& r : history.zk_responses) {
    auto call_it = calls.find({r.client, r.req_id});
    if (call_it == calls.end()) {
      std::ostringstream os;
      os << "client " << r.client << " req " << r.req_id << ": response without a call";
      violation(os.str());
      continue;
    }
    if (!responded.insert({r.client, r.req_id}).second) {
      std::ostringstream os;
      os << "client " << r.client << " req " << r.req_id << ": duplicate response";
      violation(os.str());
      continue;
    }
    const ZkCallRecord& call = *call_it->second;
    const ZkOp& op = call.op;
    auto fail = [&](const std::string& why) {
      std::ostringstream os;
      os << "client " << r.client << " req " << r.req_id << " ("
         << static_cast<int>(op.type) << " " << op.path << "): " << why;
      violation(os.str());
    };

    if (r.synthetic) {
      if (r.reply.code == ErrorCode::kOk) {
        fail("synthetic response with OK code");
      }
      continue;  // no commit-existence claim either way
    }
    if (op.type == ZkOpType::kPing || op.type == ZkOpType::kCloseSession ||
        op.type == ZkOpType::kSessionCreate) {
      continue;
    }
    // Map-version protocol (docs/sharding.md): a kShardMapStale rejection is
    // an admission bounce that claims nothing about node state, so reads are
    // exempt from the state-matching checks. Writes need no carve-out — an
    // error reply without a commit is already accepted below, and a stale
    // reply WITH a commit stays a violation (that is exactly the duplicated-
    // op bug the chaos test hunts).
    if (IsReadOp(op.type) && r.reply.code == ErrorCode::kShardMapStale) {
      continue;
    }

    if (IsReadOp(op.type)) {
      if (op.type == ZkOpType::kExists) {
        if (r.reply.code != ErrorCode::kOk) {
          fail("exists returned error " + std::to_string(static_cast<int>(r.reply.code)));
        } else if (r.reply.value == "1") {
          if (!r.reply.has_stat) {
            fail("exists=1 without stat");
          } else if (!match_state(op.path, [&](const PathState& st) {
                       return StatEq(st.stat, r.reply.stat);
                     })) {
            fail("exists stat matches no state the node passed through");
          }
        } else if (!absence_plausible(op.path)) {
          fail("exists=0 for a node that always existed");
        }
      } else if (op.type == ZkOpType::kGetData) {
        if (r.reply.code == ErrorCode::kNoNode) {
          if (!absence_plausible(op.path)) {
            fail("getData NoNode for a node that always existed");
          }
        } else if (r.reply.code != ErrorCode::kOk) {
          fail("getData returned error " + std::to_string(static_cast<int>(r.reply.code)));
        } else if (!r.reply.has_stat) {
          fail("getData without stat");
        } else if (!match_state(op.path, [&](const PathState& st) {
                     return st.data == r.reply.value && StatEq(st.stat, r.reply.stat);
                   })) {
          fail("getData (data, stat) matches no state the node passed through");
        }
      } else {  // kGetChildren
        if (r.reply.code == ErrorCode::kNoNode) {
          if (!absence_plausible(op.path)) {
            fail("getChildren NoNode for a node that always existed");
          }
        } else if (r.reply.code != ErrorCode::kOk) {
          fail("getChildren returned error " +
               std::to_string(static_cast<int>(r.reply.code)));
        } else if (!match_state(op.path, [&](const PathState& st) {
                     return st.children == r.reply.children;
                   })) {
          fail("getChildren matches no state the node passed through");
        }
      }
      // Per-(session, path) read monotonicity: one session is pinned to one
      // replica whose applied state only moves forward, so the node's mzxid
      // as observed by that session must never decrease.
      if (r.reply.code == ErrorCode::kOk && r.reply.has_stat) {
        uint64_t& last = last_mzxid[{call.session, op.path}];
        if (r.reply.stat.mzxid < last) {
          std::ostringstream os;
          os << "time went backwards: mzxid " << r.reply.stat.mzxid << " after " << last;
          fail(os.str());
        } else {
          last = r.reply.stat.mzxid;
        }
      }
      // Watch arming happens when the replica serves the read (exists arms
      // on either outcome; getData/getChildren only on success — and they
      // only succeed with kOk here).
      if (op.watch && r.reply.code == ErrorCode::kOk) {
        if (op.type == ZkOpType::kGetChildren) {
          child_watch_arms[{r.client, op.path}] += 1;
        } else {
          data_watch_arms[{r.client, op.path}] += 1;
        }
      }
      continue;
    }

    if (!IsWriteOp(op.type)) {
      continue;
    }
    auto commit_it = client_commits.find({call.session, r.req_id});
    if (r.reply.code == ErrorCode::kOk) {
      if (commit_it == client_commits.end()) {
        fail("OK response but no committed transaction");
        continue;
      }
      const CommitInfo& info = commit_it->second;
      if (info.txn->has_result && r.reply.value != info.txn->result) {
        fail("response value '" + r.reply.value + "' != committed result '" +
             info.txn->result + "'");
      }
      CheckWriteTxnShape(r.client, r.req_id, op, *info.txn, &report.violations);
      uint64_t& last = last_commit_zxid[call.session];
      if (info.zxid <= last) {
        std::ostringstream os;
        os << "session FIFO broken: commit zxid " << info.zxid
           << " acknowledged after zxid " << last;
        fail(os.str());
      } else {
        last = info.zxid;
      }
    } else if (commit_it != client_commits.end()) {
      std::ostringstream os;
      os << "error response (code " << static_cast<int>(r.reply.code)
         << ") but the operation committed at zxid " << commit_it->second.zxid;
      fail(os.str());
    }
  }

  // --- 4. One-shot watch accounting: fires never exceed arms. A deletion
  //        pops BOTH the data and the child watch on the deleted path
  //        (WatchManager::Trigger), so deleted events draw from either
  //        budget; the other event kinds draw from exactly one. ---
  struct Fires {
    uint64_t created_or_changed = 0;  // data watches only
    uint64_t children = 0;            // child watches only
    uint64_t deleted = 0;             // either kind
  };
  std::map<std::pair<NodeId, std::string>, Fires> fires;
  for (const ZkWatchRecord& w : history.zk_watches) {
    Fires& f = fires[{w.client, w.event.path}];
    switch (w.event.type) {
      case ZkEventType::kNodeChildrenChanged:
        f.children += 1;
        break;
      case ZkEventType::kNodeDeleted:
        f.deleted += 1;
        break;
      default:
        f.created_or_changed += 1;
        break;
    }
  }
  for (const auto& [key, f] : fires) {
    uint64_t data_armed = 0;
    uint64_t child_armed = 0;
    if (auto it = data_watch_arms.find(key); it != data_watch_arms.end()) {
      data_armed = it->second;
    }
    if (auto it = child_watch_arms.find(key); it != child_watch_arms.end()) {
      child_armed = it->second;
    }
    bool over = f.created_or_changed > data_armed || f.children > child_armed ||
                f.created_or_changed + f.children + f.deleted > data_armed + child_armed;
    if (over) {
      std::ostringstream os;
      os << "client " << key.first << " path " << key.second << ": "
         << (f.created_or_changed + f.children + f.deleted)
         << " watch events delivered (" << f.created_or_changed << " data, " << f.children
         << " child, " << f.deleted << " deleted) but only " << data_armed
         << " data + " << child_armed << " child watches armed (one-shot violated)";
      violation(os.str());
    }
  }

  return report;
}

CheckReport CheckDsHistory(const HistoryRecorder& history) {
  CheckReport report;
  auto violation = [&report](const std::string& v) { report.violations.push_back(v); };

  // --- 1. Merge per-replica execution streams into one total order. ---
  std::map<uint64_t, const DsExecRecord*> execs;
  for (const DsExecRecord& e : history.ds_execs) {
    auto [it, inserted] = execs.emplace(e.seq, &e);
    if (!inserted) {
      const DsExecRecord& first = *it->second;
      if (first.ts != e.ts || first.client != e.client || first.req_id != e.req_id ||
          first.payload != e.payload) {
        std::ostringstream os;
        os << "seq " << e.seq << ": replicas " << first.replica << " and " << e.replica
           << " executed different requests";
        violation(os.str());
      }
    }
  }

  // --- 2. Replay through the sequential model. ---
  DsModel model;
  std::map<std::pair<NodeId, uint64_t>, DsReply> model_replies;
  for (const auto& [seq, e] : execs) {
    for (DsModelReply& mr : model.Execute(e->ts, e->client, e->req_id, e->payload)) {
      auto [it, inserted] =
          model_replies.emplace(std::make_pair(mr.client, mr.req_id), std::move(mr.reply));
      if (!inserted) {
        std::ostringstream os;
        os << "client " << mr.client << " req " << mr.req_id
           << ": executed stream produces two replies";
        violation(os.str());
      }
    }
  }

  // --- 3. Validate accepted client responses against the model's replies. ---
  std::map<std::pair<NodeId, uint64_t>, const DsCallRecord*> calls;
  for (const DsCallRecord& c : history.ds_calls) {
    calls.emplace(std::make_pair(c.client, c.req_id), &c);
  }
  std::set<std::pair<NodeId, uint64_t>> responded;
  for (const DsResponseRecord& r : history.ds_responses) {
    std::pair<NodeId, uint64_t> key{r.client, r.req_id};
    auto fail = [&](const std::string& why) {
      std::ostringstream os;
      os << "client " << r.client << " req " << r.req_id << ": " << why;
      violation(os.str());
    };
    if (calls.find(key) == calls.end()) {
      fail("response without a call");
      continue;
    }
    if (!responded.insert(key).second) {
      fail("duplicate response");
      continue;
    }
    if (!r.result.ok() && r.result.code() == ErrorCode::kConnectionLoss) {
      continue;  // synthetic client-side failure (retransmit exhaustion)
    }
    auto mit = model_replies.find(key);
    if (mit == model_replies.end()) {
      fail("client accepted a reply the ordered execution never produced");
      continue;
    }
    const DsReply& m = mit->second;
    if (r.result.ok()) {
      if (m.code != ErrorCode::kOk) {
        fail("client got OK but the model replies error code " +
             std::to_string(static_cast<int>(m.code)));
      } else if (r.result->tuples != m.tuples || r.result->value != m.value) {
        fail("reply payload differs from the model's reply");
      }
    } else {
      if (m.code != r.result.code()) {
        fail("error code " + std::to_string(static_cast<int>(r.result.code())) +
             " but the model replies code " + std::to_string(static_cast<int>(m.code)));
      } else if (m.value != r.result.status().message()) {
        fail("error message '" + r.result.status().message() + "' != model's '" + m.value +
             "'");
      }
    }
  }

  return report;
}

}  // namespace edc
