#include "edc/zab/node.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "edc/common/rng.h"
#include "edc/logstore/logstore.h"
#include "edc/sim/cpu.h"
#include "edc/sim/network.h"

namespace edc {
namespace {

std::vector<uint8_t> Txn(const std::string& s) { return std::vector<uint8_t>(s.begin(), s.end()); }
std::string TxnStr(const std::vector<uint8_t>& b) { return std::string(b.begin(), b.end()); }

// A minimal replica shell: routes packets to the Zab node and records
// deliveries. Snapshots are the concatenation of delivered strings, so state
// transfer is observable.
class TestReplica : public NetworkNode, public ZabCallbacks {
 public:
  TestReplica(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> members)
      : cpu(loop, 1), log(loop, LogStoreConfig{}) {
    ZabConfig cfg;
    cfg.members = std::move(members);
    cfg.self = id;
    zab = std::make_unique<ZabNode>(loop, net, &cpu, &log, CostModel{}, cfg, this);
    net->Register(id, this);
  }

  void HandlePacket(Packet&& pkt) override {
    if (IsZabPacket(pkt.type)) {
      zab->HandlePacket(std::move(pkt));
    }
  }

  void OnDeliver(uint64_t zxid, const std::vector<uint8_t>& txn) override {
    delivered.push_back(TxnStr(txn));
    delivered_zxids.push_back(zxid);
    state += TxnStr(txn) + ";";
  }

  void OnRoleChange(bool leader, NodeId leader_id, uint32_t epoch) override {
    is_leader = leader;
    known_leader = leader_id;
    last_epoch = epoch;
  }

  std::vector<uint8_t> TakeSnapshot() override { return Txn(state); }

  bool InstallSnapshot(uint64_t zxid, const std::vector<uint8_t>& snap) override {
    if (reject_installs) {
      return false;
    }
    state = TxnStr(snap);
    snapshot_installs++;
    (void)zxid;
    return true;
  }

  void ResetServiceState() {
    state.clear();
    delivered.clear();
    delivered_zxids.clear();
  }

  CpuQueue cpu;
  LogStore log;
  std::unique_ptr<ZabNode> zab;
  std::vector<std::string> delivered;
  std::vector<uint64_t> delivered_zxids;
  std::string state;
  bool is_leader = false;
  NodeId known_leader = 0;
  uint32_t last_epoch = 0;
  int snapshot_installs = 0;
  // Test hook: fail every InstallSnapshot, modeling a joiner that crashes (or
  // receives a torn image) mid-install; the node must re-request transfer.
  bool reject_installs = false;
};

class ZabClusterTest : public ::testing::Test {
 protected:
  void Boot(size_t n) {
    net_ = std::make_unique<Network>(&loop_, Rng(7), LinkParams{});
    std::vector<NodeId> members;
    for (size_t i = 1; i <= n; ++i) {
      members.push_back(static_cast<NodeId>(i));
    }
    for (NodeId id : members) {
      replicas_.push_back(std::make_unique<TestReplica>(&loop_, net_.get(), id, members));
    }
    for (auto& r : replicas_) {
      r->zab->Start();
    }
    loop_.RunUntil(loop_.now() + Seconds(2));
  }

  TestReplica* Leader() {
    for (auto& r : replicas_) {
      if (r->zab->is_leader()) {
        return r.get();
      }
    }
    return nullptr;
  }

  TestReplica* AnyFollower() {
    for (auto& r : replicas_) {
      if (r->zab->running() && !r->zab->is_leader()) {
        return r.get();
      }
    }
    return nullptr;
  }

  void Crash(TestReplica* r, NodeId id) {
    r->zab->Crash();
    net_->SetNodeUp(id, false);
  }

  void Restart(TestReplica* r, NodeId id) {
    net_->SetNodeUp(id, true);
    r->ResetServiceState();
    r->zab->Restart();
  }

  void Settle(Duration d = Seconds(2)) { loop_.RunUntil(loop_.now() + d); }

  EventLoop loop_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<TestReplica>> replicas_;
};

TEST_F(ZabClusterTest, ElectsExactlyOneLeader) {
  Boot(3);
  int leaders = 0;
  for (auto& r : replicas_) {
    if (r->zab->is_leader()) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);
  // Everyone agrees on who leads.
  NodeId leader_id = Leader()->zab->leader();
  for (auto& r : replicas_) {
    EXPECT_EQ(r->zab->leader(), leader_id);
  }
}

TEST_F(ZabClusterTest, SingleNodeEnsembleLeadsItself) {
  Boot(1);
  ASSERT_NE(Leader(), nullptr);
  EXPECT_TRUE(Leader()->zab->Broadcast(Txn("solo")));
  Settle(Millis(500));
  EXPECT_EQ(Leader()->delivered, (std::vector<std::string>{"solo"}));
}

TEST_F(ZabClusterTest, BroadcastDeliversEverywhereInOrder) {
  Boot(3);
  TestReplica* leader = Leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(leader->zab->Broadcast(Txn("t" + std::to_string(i))));
  }
  Settle();
  for (auto& r : replicas_) {
    ASSERT_EQ(r->delivered.size(), 20u) << "replica missing deliveries";
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(r->delivered[static_cast<size_t>(i)], "t" + std::to_string(i));
    }
    // zxids strictly increase.
    for (size_t i = 1; i < r->delivered_zxids.size(); ++i) {
      EXPECT_LT(r->delivered_zxids[i - 1], r->delivered_zxids[i]);
    }
  }
}

TEST_F(ZabClusterTest, NonLeaderCannotBroadcast) {
  Boot(3);
  TestReplica* follower = AnyFollower();
  ASSERT_NE(follower, nullptr);
  EXPECT_FALSE(follower->zab->Broadcast(Txn("nope")));
}

TEST_F(ZabClusterTest, LeaderCrashTriggersFailoverPreservingCommits) {
  Boot(3);
  TestReplica* old_leader = Leader();
  ASSERT_NE(old_leader, nullptr);
  NodeId old_id = old_leader->zab->leader();
  for (int i = 0; i < 5; ++i) {
    old_leader->zab->Broadcast(Txn("pre" + std::to_string(i)));
  }
  Settle();
  Crash(old_leader, old_id);
  Settle(Seconds(3));
  TestReplica* new_leader = Leader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader, old_leader);
  // Committed entries survive.
  ASSERT_GE(new_leader->delivered.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(new_leader->delivered[static_cast<size_t>(i)], "pre" + std::to_string(i));
  }
  // New leader can commit with the remaining quorum.
  EXPECT_TRUE(new_leader->zab->Broadcast(Txn("post")));
  Settle();
  EXPECT_EQ(new_leader->delivered.back(), "post");
  EXPECT_GT(new_leader->zab->epoch(), 0u);
}

TEST_F(ZabClusterTest, FollowerCrashDoesNotBlockCommits) {
  Boot(3);
  TestReplica* leader = Leader();
  TestReplica* follower = AnyFollower();
  ASSERT_NE(follower, nullptr);
  NodeId follower_id = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    if (replicas_[id - 1].get() == follower) {
      follower_id = id;
    }
  }
  Crash(follower, follower_id);
  for (int i = 0; i < 10; ++i) {
    leader->zab->Broadcast(Txn("x" + std::to_string(i)));
  }
  Settle();
  EXPECT_EQ(leader->delivered.size(), 10u);
}

TEST_F(ZabClusterTest, RestartedFollowerCatchesUpViaDiff) {
  Boot(3);
  TestReplica* leader = Leader();
  TestReplica* follower = AnyFollower();
  NodeId follower_id = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    if (replicas_[id - 1].get() == follower) {
      follower_id = id;
    }
  }
  Crash(follower, follower_id);
  for (int i = 0; i < 15; ++i) {
    leader->zab->Broadcast(Txn("d" + std::to_string(i)));
  }
  Settle();
  Restart(follower, follower_id);
  Settle(Seconds(3));
  ASSERT_EQ(follower->delivered.size(), 15u);
  EXPECT_EQ(follower->delivered.front(), "d0");
  EXPECT_EQ(follower->delivered.back(), "d14");
  EXPECT_EQ(follower->snapshot_installs, 0);
}

TEST_F(ZabClusterTest, CompactedLogForcesSnapshotTransfer) {
  Boot(3);
  TestReplica* leader = Leader();
  TestReplica* follower = AnyFollower();
  NodeId follower_id = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    if (replicas_[id - 1].get() == follower) {
      follower_id = id;
    }
  }
  Crash(follower, follower_id);
  for (int i = 0; i < 10; ++i) {
    leader->zab->Broadcast(Txn("s" + std::to_string(i)));
  }
  Settle();
  leader->zab->CompactLog();
  Restart(follower, follower_id);
  Settle(Seconds(3));
  EXPECT_GE(follower->snapshot_installs, 1);
  // Snapshot carried the pre-compaction state.
  EXPECT_NE(follower->state.find("s9"), std::string::npos);
  // And the follower keeps up with post-restart broadcasts.
  leader->zab->Broadcast(Txn("after"));
  Settle();
  EXPECT_NE(follower->state.find("after"), std::string::npos);
}

TEST_F(ZabClusterTest, MinorityPartitionedLeaderStepsDown) {
  Boot(3);
  TestReplica* leader = Leader();
  ASSERT_NE(leader, nullptr);
  NodeId leader_id = leader->zab->leader();
  // Cut the leader off from both followers.
  for (NodeId id = 1; id <= 3; ++id) {
    if (id != leader_id) {
      net_->Disconnect(leader_id, id);
    }
  }
  Settle(Seconds(4));
  // Majority side elected a new leader.
  TestReplica* new_leader = nullptr;
  for (auto& r : replicas_) {
    if (r->zab->is_leader() && r.get() != leader) {
      new_leader = r.get();
    }
  }
  ASSERT_NE(new_leader, nullptr);
  EXPECT_TRUE(new_leader->zab->Broadcast(Txn("majority")));
  // Old leader cannot commit anything on its own.
  leader->zab->Broadcast(Txn("minority"));
  Settle(Seconds(2));
  for (auto& r : replicas_) {
    for (const std::string& d : r->delivered) {
      EXPECT_NE(d, "minority");
    }
  }
  // Heal: old leader rejoins and converges.
  for (NodeId id = 1; id <= 3; ++id) {
    if (id != leader_id) {
      net_->Reconnect(leader_id, id);
    }
  }
  Settle(Seconds(4));
  EXPECT_EQ(leader->zab->leader(), new_leader->zab->leader());
  bool saw_majority = false;
  for (const std::string& d : leader->delivered) {
    saw_majority = saw_majority || d == "majority";
  }
  EXPECT_TRUE(saw_majority);
}

TEST_F(ZabClusterTest, FiveNodeEnsembleToleratesTwoCrashes) {
  Boot(5);
  TestReplica* leader = Leader();
  ASSERT_NE(leader, nullptr);
  int crashed = 0;
  for (NodeId id = 1; id <= 5 && crashed < 2; ++id) {
    TestReplica* r = replicas_[id - 1].get();
    if (r != leader) {
      Crash(r, id);
      ++crashed;
    }
  }
  for (int i = 0; i < 5; ++i) {
    leader->zab->Broadcast(Txn("f" + std::to_string(i)));
  }
  Settle();
  EXPECT_EQ(leader->delivered.size(), 5u);
}

TEST_F(ZabClusterTest, DeterministicAcrossIdenticalRuns) {
  Boot(3);
  TestReplica* leader = Leader();
  for (int i = 0; i < 8; ++i) {
    leader->zab->Broadcast(Txn("r" + std::to_string(i)));
  }
  Settle();
  std::vector<uint64_t> zxids_a = leader->delivered_zxids;
  SimTime end_a = loop_.now();

  // Fresh, identically seeded second run.
  replicas_.clear();
  EventLoop loop2;
  Network net2(&loop2, Rng(7), LinkParams{});
  std::vector<NodeId> members{1, 2, 3};
  std::vector<std::unique_ptr<TestReplica>> reps2;
  for (NodeId id : members) {
    reps2.push_back(std::make_unique<TestReplica>(&loop2, &net2, id, members));
  }
  for (auto& r : reps2) {
    r->zab->Start();
  }
  loop2.RunUntil(loop2.now() + Seconds(2));
  TestReplica* leader2 = nullptr;
  for (auto& r : reps2) {
    if (r->zab->is_leader()) {
      leader2 = r.get();
    }
  }
  ASSERT_NE(leader2, nullptr);
  for (int i = 0; i < 8; ++i) {
    leader2->zab->Broadcast(Txn("r" + std::to_string(i)));
  }
  loop2.RunUntil(loop2.now() + Seconds(2));
  EXPECT_EQ(leader2->delivered_zxids, zxids_a);
  EXPECT_EQ(loop2.now(), end_a);
}

}  // namespace
}  // namespace edc
