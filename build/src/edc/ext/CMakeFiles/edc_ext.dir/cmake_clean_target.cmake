file(REMOVE_RECURSE
  "libedc_ext.a"
)
