// Shared main() for the google-benchmark micros: runs with the usual console
// output AND writes bench_results/BENCH_<name>.json (google-benchmark's JSON
// schema) so every bench binary in this repo leaves a machine-readable
// artifact, figure benches and micros alike. Implemented by injecting
// --benchmark_out flags, so an explicit --benchmark_out on the command line
// still wins (later flags take precedence).

#ifndef EDC_BENCH_GBENCH_JSON_H_
#define EDC_BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace edc {

inline int GBenchMainWithJson(const char* name, int argc, char** argv) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::string path = std::string("bench_results/BENCH_") + name + ".json";
  std::string out_flag = "--benchmark_out=" + path;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) {
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  std::printf("wrote %s\n", path.c_str());
  benchmark::Shutdown();
  return 0;
}

}  // namespace edc

#endif  // EDC_BENCH_GBENCH_JSON_H_
