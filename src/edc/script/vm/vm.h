// Register-machine executor for compiled CoordScript handlers.
//
// Drop-in replacement for the tree-walking Interpreter on certified
// handlers: same Invoke contract, same ExecStats, byte-identical error
// Statuses, and steps_used that agrees with the interpreter at every exit
// (each instruction charges the steps its folded AST nodes would have cost
// *before* executing — see bytecode.h).
//
// The step-limit check is defense in depth only: every handler that reaches
// the VM was certified by the static analyzer, so its proven worst-case
// bound fits the budget and the limit cannot fire. (An instruction carrying
// several folded node charges reports the limit at instruction granularity,
// which is why uncertified code must not be run metered-to-the-edge here.)

#ifndef EDC_SCRIPT_VM_VM_H_
#define EDC_SCRIPT_VM_VM_H_

#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/script/interpreter.h"
#include "edc/script/value.h"
#include "edc/script/vm/bytecode.h"

namespace edc {

class Vm {
 public:
  // `module` and `host` must outlive the VM.
  Vm(const CompiledModule* module, ScriptHost* host, ExecBudget budget)
      : module_(module), host_(host), budget_(budget) {}

  // Runs compiled handler `name` with `args` (missing parameters become
  // null, extra args are dropped), mirroring Interpreter::Invoke.
  Result<Value> Invoke(const std::string& name, std::vector<Value> args);

  // Runs an already-resolved handler (the bindings resolve once per dispatch
  // via CompiledModule::Find and skip the by-name lookup here).
  Result<Value> Run(const CompiledHandler& handler, std::vector<Value> args);

  const ExecStats& stats() const { return stats_; }

 private:
  const CompiledModule* module_;
  ScriptHost* host_;
  ExecBudget budget_;
  ExecStats stats_;
};

}  // namespace edc

#endif  // EDC_SCRIPT_VM_VM_H_
