// Deterministic fault-injection subsystem.
//
// A FaultInjector sits between a test/harness and the simulated cluster and
// turns "chaos" into a replayable schedule: every fault — crash, restart,
// partition, heal, lossy/duplicating/slow links — is an event on the shared
// EventLoop, and every probabilistic decision is drawn from the Network's
// seeded Rng. Two runs with the same seed and the same FaultPlan therefore
// produce byte-identical event traces; TraceDigest() folds the trace (and,
// when packet tracing is on, every delivered packet) into a single uint64
// that tests compare across runs.
//
// Processes register under their NodeId with crash/restart closures; the
// injector does not know whether a node is a Zab replica, a BFT replica or a
// client — the closures encapsulate the type-specific recovery path (log
// replay, re-election, state transfer).

#ifndef EDC_SIM_FAULTS_H_
#define EDC_SIM_FAULTS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"
#include "edc/sim/time.h"

namespace edc {

// Per-link fault knobs applied on top of the network's default LinkParams.
struct LinkFaults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  Duration extra_delay = 0;
};

// A scheduled sequence of fault events, built fluently and executed by
// FaultInjector::Run. Times are absolute sim times (ns).
class FaultPlan {
 public:
  FaultPlan& CrashAt(SimTime at, NodeId node);
  FaultPlan& RestartAt(SimTime at, NodeId node);
  // Partitions every node in `group_a` from every node in `group_b`.
  FaultPlan& PartitionAt(SimTime at, std::vector<NodeId> group_a, std::vector<NodeId> group_b);
  // Heals all partitions installed on the network (not just this plan's).
  FaultPlan& HealAt(SimTime at);
  FaultPlan& LinkFaultsAt(SimTime at, NodeId a, NodeId b, LinkFaults faults);
  FaultPlan& ClearLinkFaultsAt(SimTime at, NodeId a, NodeId b);

 private:
  friend class FaultInjector;

  enum class Kind : uint8_t {
    kCrash,
    kRestart,
    kPartition,
    kHeal,
    kLinkFaults,
    kClearLinkFaults,
  };
  struct Step {
    SimTime at = 0;
    Kind kind = Kind::kCrash;
    NodeId node = 0;       // crash/restart; link endpoint a
    NodeId peer = 0;       // link endpoint b
    std::vector<NodeId> group_a;  // partition
    std::vector<NodeId> group_b;
    LinkFaults faults;
  };
  std::vector<Step> steps_;
};

class FaultInjector {
 public:
  FaultInjector(EventLoop* loop, Network* net) : loop_(loop), net_(net) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Registers the crash/restart closures for a process. Both must be safe to
  // invoke repeatedly (Crash on a crashed node is a no-op, etc.).
  void RegisterProcess(NodeId id, std::function<void()> crash, std::function<void()> restart);

  // Immediate fault actions (also usable directly from tests). Each appends
  // a line to the trace.
  void Crash(NodeId id);
  void Restart(NodeId id);
  void Partition(const std::vector<NodeId>& group_a, const std::vector<NodeId>& group_b);
  void Heal();
  void SetLinkFaults(NodeId a, NodeId b, const LinkFaults& faults);
  void ClearLinkFaults(NodeId a, NodeId b);

  // Schedules every step of `plan` on the event loop. Call before loop->Run().
  void Run(const FaultPlan& plan);

  // Appends an arbitrary event line to the trace (and digest). Harness-level
  // actions that perturb the cluster but are not faults — membership joins,
  // removals, promotions — record themselves here so TraceDigest() stays a
  // whole-run fingerprint.
  void Note(const std::string& line) { Record(line); }

  // Folds every delivered packet (time, src, dst, type, payload hash) into
  // the digest. Off by default: packet tracing is what makes the digest a
  // whole-run fingerprint, but it touches every delivery, so tests opt in.
  void EnablePacketTrace();

  bool IsUp(NodeId id) const { return net_->IsNodeUp(id); }

  // Human-readable fault log, one line per event, in execution order.
  const std::vector<std::string>& trace() const { return trace_; }
  // Order-sensitive FNV-1a fold of the trace (and packet stream when packet
  // tracing is enabled). Equal digests => identical runs.
  uint64_t TraceDigest() const { return digest_; }

  // Time-free, order-insensitive companion to TraceDigest(): a commutative
  // (wrapping-sum) fold of per-packet FNV hashes over (src, dst, type,
  // payload) only. Two runs that deliver the same multiset of packets — e.g.
  // a depth-1 vs pipelined replication run whose delivery timing shifts but
  // whose protocol traffic is byte-identical — compare equal here even
  // though the time-stamped TraceDigest() differs. Requires
  // EnablePacketTrace().
  uint64_t SemanticPacketDigest() const { return semantic_digest_; }

 private:
  void Record(const std::string& line);

  EventLoop* loop_;
  Network* net_;
  struct Process {
    std::function<void()> crash;
    std::function<void()> restart;
  };
  std::unordered_map<NodeId, Process> procs_;
  std::vector<std::string> trace_;
  uint64_t digest_ = 0xcbf29ce484222325ULL;  // kFnvOffset
  uint64_t semantic_digest_ = 0;
  bool packet_trace_ = false;
};

}  // namespace edc

#endif  // EDC_SIM_FAULTS_H_
