#include "edc/zk/data_tree.h"

#include <gtest/gtest.h>

namespace edc {
namespace {

class DataTreeTest : public ::testing::Test {
 protected:
  DataTree tree_;
};

TEST_F(DataTreeTest, CreateAndGet) {
  auto path = tree_.Create("/a", "hello", 0, false, 5, 1000);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/a");
  auto node = tree_.Get("/a");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->data, "hello");
  EXPECT_EQ(node->stat.czxid, 5u);
  EXPECT_EQ(node->stat.ctime, 1000);
  EXPECT_EQ(node->stat.version, 0);
  EXPECT_EQ(tree_.node_count(), 2u);
}

TEST_F(DataTreeTest, CreateRequiresParent) {
  EXPECT_EQ(tree_.Create("/a/b", "", 0, false, 1, 0).code(), ErrorCode::kNoNode);
  ASSERT_TRUE(tree_.Create("/a", "", 0, false, 1, 0).ok());
  EXPECT_TRUE(tree_.Create("/a/b", "", 0, false, 2, 0).ok());
}

TEST_F(DataTreeTest, CreateDuplicateFails) {
  ASSERT_TRUE(tree_.Create("/a", "", 0, false, 1, 0).ok());
  EXPECT_EQ(tree_.Create("/a", "", 0, false, 2, 0).code(), ErrorCode::kNodeExists);
}

TEST_F(DataTreeTest, CreateRejectsBadPaths) {
  EXPECT_EQ(tree_.Create("a", "", 0, false, 1, 0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(tree_.Create("/a/", "", 0, false, 1, 0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(tree_.Create("/", "", 0, false, 1, 0).code(), ErrorCode::kNodeExists);
}

TEST_F(DataTreeTest, SequentialNamesIncrease) {
  ASSERT_TRUE(tree_.Create("/q", "", 0, false, 1, 0).ok());
  auto a = tree_.Create("/q/e-", "", 0, true, 2, 0);
  auto b = tree_.Create("/q/e-", "", 0, true, 3, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, "/q/e-0000000000");
  EXPECT_EQ(*b, "/q/e-0000000001");
  // Counter survives deletion of earlier elements (no reuse).
  ASSERT_TRUE(tree_.Delete(*a, -1, 4).ok());
  auto c = tree_.Create("/q/e-", "", 0, true, 5, 0);
  EXPECT_EQ(*c, "/q/e-0000000002");
}

TEST_F(DataTreeTest, EphemeralCannotHaveChildren) {
  ASSERT_TRUE(tree_.Create("/e", "", 42, false, 1, 0).ok());
  EXPECT_EQ(tree_.Create("/e/x", "", 0, false, 2, 0).code(),
            ErrorCode::kNoChildrenForEphemerals);
}

TEST_F(DataTreeTest, DeleteChecksVersionAndChildren) {
  ASSERT_TRUE(tree_.Create("/a", "", 0, false, 1, 0).ok());
  ASSERT_TRUE(tree_.Create("/a/b", "", 0, false, 2, 0).ok());
  EXPECT_EQ(tree_.Delete("/a", -1, 3).code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(tree_.Delete("/a/b", 7, 3).code(), ErrorCode::kBadVersion);
  EXPECT_TRUE(tree_.Delete("/a/b", 0, 3).ok());
  EXPECT_TRUE(tree_.Delete("/a", -1, 4).ok());
  EXPECT_EQ(tree_.Delete("/a", -1, 5).code(), ErrorCode::kNoNode);
  EXPECT_EQ(tree_.node_count(), 1u);
}

TEST_F(DataTreeTest, SetDataBumpsVersion) {
  ASSERT_TRUE(tree_.Create("/a", "v0", 0, false, 1, 10).ok());
  EXPECT_TRUE(tree_.SetData("/a", "v1", 0, 2, 20).ok());
  EXPECT_EQ(tree_.SetData("/a", "v2", 0, 3, 30).code(), ErrorCode::kBadVersion);
  EXPECT_TRUE(tree_.SetData("/a", "v2", 1, 3, 30).ok());
  EXPECT_TRUE(tree_.SetData("/a", "v3", -1, 4, 40).ok());
  auto node = tree_.Get("/a");
  EXPECT_EQ(node->data, "v3");
  EXPECT_EQ(node->stat.version, 3);
  EXPECT_EQ(node->stat.mzxid, 4u);
  EXPECT_EQ(node->stat.mtime, 40);
  EXPECT_EQ(node->stat.ctime, 10);
}

TEST_F(DataTreeTest, ChildrenSortedAndCounted) {
  ASSERT_TRUE(tree_.Create("/p", "", 0, false, 1, 0).ok());
  for (const char* name : {"/p/c", "/p/a", "/p/b"}) {
    ASSERT_TRUE(tree_.Create(name, "", 0, false, 2, 0).ok());
  }
  auto children = tree_.GetChildren("/p");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(tree_.Get("/p")->stat.num_children, 3u);
  EXPECT_EQ(tree_.Get("/p")->stat.cversion, 3);
}

TEST_F(DataTreeTest, EphemeralsOfSession) {
  ASSERT_TRUE(tree_.Create("/d", "", 0, false, 1, 0).ok());
  ASSERT_TRUE(tree_.Create("/d/e1", "", 7, false, 2, 0).ok());
  ASSERT_TRUE(tree_.Create("/d/e2", "", 8, false, 3, 0).ok());
  ASSERT_TRUE(tree_.Create("/d/e3", "", 7, false, 4, 0).ok());
  auto paths = tree_.EphemeralsOf(7);
  EXPECT_EQ(paths, (std::vector<std::string>{"/d/e1", "/d/e3"}));
  EXPECT_TRUE(tree_.EphemeralsOf(99).empty());
}

TEST_F(DataTreeTest, SerializeLoadRoundTrip) {
  ASSERT_TRUE(tree_.Create("/a", "da", 0, false, 1, 10).ok());
  ASSERT_TRUE(tree_.Create("/a/b", "db", 5, false, 2, 20).ok());
  ASSERT_TRUE(tree_.Create("/a/s-", "", 0, true, 3, 30).ok());
  auto bytes = tree_.Serialize();

  DataTree copy;
  ASSERT_TRUE(copy.Load(bytes).ok());
  EXPECT_EQ(copy.node_count(), tree_.node_count());
  EXPECT_EQ(copy.Get("/a")->data, "da");
  EXPECT_EQ(copy.Get("/a/b")->stat.ephemeral_owner, 5u);
  EXPECT_EQ(copy.Get("/a/s-0000000000")->stat.ctime, 30);
  // Sequence counters survive, so new sequential names do not collide.
  EXPECT_EQ(*copy.NextSequence("/a"), 1u);
  // Byte-identical re-serialization (replicas must agree).
  EXPECT_EQ(copy.Serialize(), bytes);
}

TEST_F(DataTreeTest, LoadRejectsGarbage) {
  std::vector<uint8_t> junk{1, 2, 3};
  EXPECT_FALSE(tree_.Load(junk).ok());
}

TEST_F(DataTreeTest, RootAlwaysPresent) {
  EXPECT_TRUE(tree_.Exists("/"));
  EXPECT_TRUE(tree_.GetChildren("/")->empty());
  EXPECT_EQ(tree_.Delete("/", -1, 1).code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace edc
