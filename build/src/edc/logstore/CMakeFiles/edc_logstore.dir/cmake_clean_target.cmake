file(REMOVE_RECURSE
  "libedc_logstore.a"
)
