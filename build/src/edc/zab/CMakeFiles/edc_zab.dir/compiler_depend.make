# Empty compiler generated dependencies file for edc_zab.
# This may be replaced when dependencies are built.
