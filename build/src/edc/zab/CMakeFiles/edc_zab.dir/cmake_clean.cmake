file(REMOVE_RECURSE
  "CMakeFiles/edc_zab.dir/messages.cpp.o"
  "CMakeFiles/edc_zab.dir/messages.cpp.o.d"
  "CMakeFiles/edc_zab.dir/node.cpp.o"
  "CMakeFiles/edc_zab.dir/node.cpp.o.d"
  "libedc_zab.a"
  "libedc_zab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_zab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
