file(REMOVE_RECURSE
  "libedc_sim.a"
)
