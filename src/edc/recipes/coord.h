// Abstract coordination-service API (paper Table 2) and its two concrete
// mappings.
//
// The recipes in recipes.h are written once against CoordClient; the
// ZkCoordClient and DsCoordClient adapters implement each method with the
// exact operation sequences of Table 2 (e.g. cas = read-version + setData on
// ZooKeeper, content-pinned replace on DepSpace; block = exists-watch + wait
// on ZooKeeper, blocking rd on DepSpace; monitor = ephemeral node vs lease
// tuple). That keeps the traditional/extension comparison apples-to-apples
// across the two systems, exactly like the paper's §6.1.

#ifndef EDC_RECIPES_COORD_H_
#define EDC_RECIPES_COORD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edc/ds/api.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/time.h"
#include "edc/zk/api.h"

namespace edc {

struct CoordObject {
  std::string path;
  std::string data;
  SimTime ctime = 0;
};

class CoordClient {
 public:
  using Cb = std::function<void(Status)>;
  using ValueCb = std::function<void(Result<std::string>)>;
  using ListCb = std::function<void(Result<std::vector<CoordObject>>)>;

  virtual ~CoordClient() = default;

  virtual void Create(const std::string& path, const std::string& data, ValueCb done) = 0;
  virtual void Delete(const std::string& path, Cb done) = 0;
  virtual void Read(const std::string& path, ValueCb done) = 0;
  virtual void Update(const std::string& path, const std::string& data, Cb done) = 0;
  // Conditional update: succeeds only if the current content is `expected`
  // (kBadVersion / kNoNode otherwise). On ZooKeeper this uses the version
  // observed by the last Read of `path` (Table 2).
  virtual void Cas(const std::string& path, const std::string& expected,
                   const std::string& next, Cb done) = 0;
  virtual void SubObjects(const std::string& path, ListCb done) = 0;
  // Completes once `path` exists (immediately if it already does). The value
  // is the object's data.
  virtual void Block(const std::string& path, ValueCb done) = 0;
  // Creates `path` tied to this client's liveness: the service removes it if
  // the client terminates or fails.
  virtual void Monitor(const std::string& path, Cb done) = 0;
  // One-shot: runs `fired` when `path` disappears (ZooKeeper: watch;
  // DepSpace: poll — it has no deletion notifications).
  virtual void OnDeleted(const std::string& path, std::function<void()> fired) = 0;

  // Hint that server-side monitors may exist for this client: DepSpace
  // clients start renewing all lease tuples they own (ZooKeeper sessions are
  // already kept alive by pings).
  virtual void EnsureLivenessRenewal() {}

  virtual void RegisterExtension(const std::string& name, const std::string& code,
                                 Cb done) = 0;
  virtual void AcknowledgeExtension(const std::string& name, Cb done) = 0;

  // Unique client tag for path construction, and the network node id for
  // byte accounting.
  virtual std::string tag() const = 0;
  virtual NodeId node() const = 0;
};

// ---------------------------------------------------------------------- ZK

class ZkCoordClient : public CoordClient {
 public:
  // `ext_mode` tells Block() that a server-side extension will hold the
  // request (single RPC) instead of the exists-watch protocol. The client
  // may be a plain ZkClient or a ZkShardRouter (edc/route) — recipes are
  // topology-blind.
  ZkCoordClient(ZkApi* client, bool ext_mode);

  void Create(const std::string& path, const std::string& data, ValueCb done) override;
  void Delete(const std::string& path, Cb done) override;
  void Read(const std::string& path, ValueCb done) override;
  void Update(const std::string& path, const std::string& data, Cb done) override;
  void Cas(const std::string& path, const std::string& expected, const std::string& next,
           Cb done) override;
  void SubObjects(const std::string& path, ListCb done) override;
  void Block(const std::string& path, ValueCb done) override;
  void Monitor(const std::string& path, Cb done) override;
  void OnDeleted(const std::string& path, std::function<void()> fired) override;
  void RegisterExtension(const std::string& name, const std::string& code, Cb done) override;
  void AcknowledgeExtension(const std::string& name, Cb done) override;
  std::string tag() const override;
  NodeId node() const override { return client_->id(); }

  ZkApi* raw() { return client_; }

 private:
  void DispatchWatchEvent(const ZkWatchEventMsg& event);

  ZkApi* client_;
  bool ext_mode_;
  std::map<std::string, int32_t> last_read_version_;
  std::map<std::string, std::vector<ValueCb>> block_waiters_;
  std::map<std::string, std::vector<std::function<void()>>> deletion_waiters_;
};

// ---------------------------------------------------------------------- DS

class DsCoordClient : public CoordClient {
 public:
  DsCoordClient(EventLoop* loop, DsApi* client);

  void Create(const std::string& path, const std::string& data, ValueCb done) override;
  void Delete(const std::string& path, Cb done) override;
  void Read(const std::string& path, ValueCb done) override;
  void Update(const std::string& path, const std::string& data, Cb done) override;
  void Cas(const std::string& path, const std::string& expected, const std::string& next,
           Cb done) override;
  void SubObjects(const std::string& path, ListCb done) override;
  void Block(const std::string& path, ValueCb done) override;
  void Monitor(const std::string& path, Cb done) override;
  void OnDeleted(const std::string& path, std::function<void()> fired) override;
  void RegisterExtension(const std::string& name, const std::string& code, Cb done) override;
  void AcknowledgeExtension(const std::string& name, Cb done) override;
  void EnsureLivenessRenewal() override { client_->EnableAutoRenewAll(); }
  std::string tag() const override { return std::to_string(client_->id()); }
  NodeId node() const override { return client_->id(); }

  DsApi* raw() { return client_; }

  // DepSpace has no deletion notifications; OnDeleted polls at this period.
  static constexpr Duration kDeletionPollInterval = Millis(50);

 private:
  EventLoop* loop_;
  DsApi* client_;
};

}  // namespace edc

#endif  // EDC_RECIPES_COORD_H_
