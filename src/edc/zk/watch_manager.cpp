#include "edc/zk/watch_manager.h"

namespace edc {

std::vector<uint64_t> WatchManager::Pop(std::map<std::string, std::set<uint64_t>>& watches,
                                        const std::string& path) {
  auto it = watches.find(path);
  if (it == watches.end()) {
    return {};
  }
  std::vector<uint64_t> sessions(it->second.begin(), it->second.end());
  watches.erase(it);
  return sessions;
}

std::vector<uint64_t> WatchManager::Trigger(ZkEventType type, const std::string& path) {
  switch (type) {
    case ZkEventType::kNodeCreated:
    case ZkEventType::kNodeDataChanged:
      return Pop(data_watches_, path);
    case ZkEventType::kNodeDeleted: {
      std::vector<uint64_t> sessions = Pop(data_watches_, path);
      for (uint64_t s : Pop(child_watches_, path)) {
        sessions.push_back(s);
      }
      return sessions;
    }
    case ZkEventType::kNodeChildrenChanged:
      return Pop(child_watches_, path);
  }
  return {};
}

void WatchManager::RemoveSession(uint64_t session) {
  for (auto& [path, sessions] : data_watches_) {
    sessions.erase(session);
  }
  for (auto& [path, sessions] : child_watches_) {
    sessions.erase(session);
  }
}

size_t WatchManager::data_watch_count() const {
  size_t n = 0;
  for (const auto& [path, sessions] : data_watches_) {
    n += sessions.size();
  }
  return n;
}

size_t WatchManager::child_watch_count() const {
  size_t n = 0;
  for (const auto& [path, sessions] : child_watches_) {
    n += sessions.size();
  }
  return n;
}

}  // namespace edc
