file(REMOVE_RECURSE
  "CMakeFiles/abl_verify.dir/abl_verify.cpp.o"
  "CMakeFiles/abl_verify.dir/abl_verify.cpp.o.d"
  "abl_verify"
  "abl_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
