file(REMOVE_RECURSE
  "CMakeFiles/fig10_barrier.dir/fig10_barrier.cpp.o"
  "CMakeFiles/fig10_barrier.dir/fig10_barrier.cpp.o.d"
  "fig10_barrier"
  "fig10_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
