#include "edc/zk/prep.h"

#include <gtest/gtest.h>

#include <deque>

namespace edc {
namespace {

class PrepSessionTest : public ::testing::Test {
 protected:
  PrepSessionTest() {
    (void)tree_.Create("/a", "v0", 0, false, 1, 10);
    (void)tree_.Create("/q", "", 0, false, 2, 20);
  }

  PrepSession Make(uint64_t session = 7, uint64_t req = 1) {
    return PrepSession(&tree_, &outstanding_, session, req, 1000);
  }

  DataTree tree_;
  std::deque<PendingDelta> outstanding_;
};

TEST_F(PrepSessionTest, ReadsFallThroughToTree) {
  PrepSession prep = Make();
  EXPECT_TRUE(prep.Exists("/a"));
  EXPECT_FALSE(prep.Exists("/nope"));
  auto node = prep.Get("/a");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->data, "v0");
  EXPECT_EQ(node->version, 0);
}

TEST_F(PrepSessionTest, OwnWritesVisibleWithinSession) {
  PrepSession prep = Make();
  ASSERT_TRUE(prep.Create("/a/new", "x", false, false).ok());
  EXPECT_TRUE(prep.Exists("/a/new"));
  EXPECT_EQ(prep.Get("/a/new")->data, "x");
  ASSERT_TRUE(prep.SetData("/a/new", "y", -1).ok());
  EXPECT_EQ(prep.Get("/a/new")->data, "y");
  EXPECT_EQ(prep.Get("/a/new")->version, 1);
  ASSERT_TRUE(prep.Delete("/a/new", -1).ok());
  EXPECT_FALSE(prep.Exists("/a/new"));
  // Tree untouched until the txn applies.
  EXPECT_FALSE(tree_.Exists("/a/new"));
  EXPECT_EQ(prep.ops().size(), 3u);
}

TEST_F(PrepSessionTest, OutstandingDeltasShadowTree) {
  // Simulate a proposed-but-uncommitted setData from an earlier request.
  {
    PrepSession first = Make(7, 1);
    ASSERT_TRUE(first.SetData("/a", "v1", 0).ok());
    outstanding_.push_back(first.TakeDelta());
  }
  PrepSession second = Make(7, 2);
  auto node = second.Get("/a");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->data, "v1");
  EXPECT_EQ(node->version, 1);
  // The version check runs against the overlay, not the stale tree.
  EXPECT_EQ(second.SetData("/a", "v2", 0).code(), ErrorCode::kBadVersion);
  EXPECT_TRUE(second.SetData("/a", "v2", 1).ok());
}

TEST_F(PrepSessionTest, PipelinedCasChainsSeeEachOther) {
  // Three counter increments prepped back-to-back (none committed) must
  // produce 1, 2, 3 — the lost-update hazard the overlay exists to prevent.
  for (int i = 0; i < 3; ++i) {
    PrepSession prep = Make(7, static_cast<uint64_t>(i + 1));
    auto node = prep.Get("/a");
    ASSERT_TRUE(node.ok());
    ASSERT_TRUE(prep.SetData("/a", "inc" + std::to_string(node->version + 1),
                             node->version)
                    .ok());
    outstanding_.push_back(prep.TakeDelta());
  }
  PrepSession check = Make();
  EXPECT_EQ(check.Get("/a")->data, "inc3");
  EXPECT_EQ(check.Get("/a")->version, 3);
}

TEST_F(PrepSessionTest, ChildrenMergeTreeAndOverlay) {
  (void)tree_.Create("/q/tree-child", "", 0, false, 3, 0);
  {
    PrepSession first = Make(7, 1);
    ASSERT_TRUE(first.Create("/q/pending-child", "", false, false).ok());
    ASSERT_TRUE(first.Delete("/q/tree-child", -1).ok());
    outstanding_.push_back(first.TakeDelta());
  }
  PrepSession second = Make(7, 2);
  auto children = second.Children("/q");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"pending-child"}));
}

TEST_F(PrepSessionTest, SequentialCountersChainAcrossDeltas) {
  {
    PrepSession first = Make(7, 1);
    auto a = first.Create("/q/e-", "", false, true);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a, "/q/e-0000000000");
    outstanding_.push_back(first.TakeDelta());
  }
  PrepSession second = Make(7, 2);
  auto b = second.Create("/q/e-", "", false, true);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "/q/e-0000000001");
}

TEST_F(PrepSessionTest, CreateValidatesLikeTheTree) {
  PrepSession prep = Make();
  EXPECT_EQ(prep.Create("/a", "", false, false).code(), ErrorCode::kNodeExists);
  EXPECT_EQ(prep.Create("/ghost/child", "", false, false).code(), ErrorCode::kNoNode);
  EXPECT_EQ(prep.Create("bad-path", "", false, false).code(),
            ErrorCode::kInvalidArgument);
  // Ephemeral parents cannot have children.
  ASSERT_TRUE(prep.Create("/eph", "", true, false).ok());
  EXPECT_EQ(prep.Create("/eph/kid", "", false, false).code(),
            ErrorCode::kNoChildrenForEphemerals);
}

TEST_F(PrepSessionTest, DeleteValidatesChildrenThroughOverlay) {
  PrepSession prep = Make();
  ASSERT_TRUE(prep.Create("/a/kid", "", false, false).ok());
  EXPECT_EQ(prep.Delete("/a", -1).code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(prep.Delete("/a/kid", -1).ok());
  EXPECT_TRUE(prep.Delete("/a", -1).ok());
}

TEST_F(PrepSessionTest, EphemeralOwnerIsSession) {
  PrepSession prep = Make(42);
  ASSERT_TRUE(prep.Create("/mine", "", true, false).ok());
  EXPECT_EQ(prep.Get("/mine")->ephemeral_owner, 42u);
  ASSERT_EQ(prep.ops().size(), 1u);
  EXPECT_EQ(prep.ops()[0].ephemeral_owner, 42u);
}

TEST_F(PrepSessionTest, CloseSessionRemovesEphemeralsFromView) {
  (void)tree_.Create("/e1", "", 42, false, 5, 0);
  {
    PrepSession first = Make(42, 1);
    ASSERT_TRUE(first.Create("/e2", "", true, false).ok());
    outstanding_.push_back(first.TakeDelta());
  }
  PrepSession closing = Make(42, 2);
  closing.CloseSession(42);
  EXPECT_FALSE(closing.Exists("/e1"));
  EXPECT_FALSE(closing.Exists("/e2"));
}

TEST_F(PrepSessionTest, BlockRecordsSessionAndRequest) {
  PrepSession prep = Make(9, 77);
  prep.Block("/gate");
  ASSERT_EQ(prep.ops().size(), 1u);
  EXPECT_EQ(prep.ops()[0].type, ZkTxnOpType::kBlock);
  EXPECT_EQ(prep.ops()[0].session, 9u);
  EXPECT_EQ(prep.ops()[0].req_id, 77u);
}

TEST_F(PrepSessionTest, StateOpsCounted) {
  PrepSession prep = Make();
  (void)prep.Create("/x1", "", false, false);
  (void)prep.SetData("/a", "z", -1);
  (void)prep.Delete("/x1", -1);
  EXPECT_EQ(prep.state_ops_performed(), 3u);
}

}  // namespace
}  // namespace edc
