
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scfs_metadata.cpp" "examples/CMakeFiles/scfs_metadata.dir/scfs_metadata.cpp.o" "gcc" "examples/CMakeFiles/scfs_metadata.dir/scfs_metadata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/edc/harness/CMakeFiles/edc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/recipes/CMakeFiles/edc_recipes.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/ext/CMakeFiles/edc_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/zk/CMakeFiles/edc_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/ds/CMakeFiles/edc_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/common/CMakeFiles/edc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/script/CMakeFiles/edc_script.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/zab/CMakeFiles/edc_zab.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/logstore/CMakeFiles/edc_logstore.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/bft/CMakeFiles/edc_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/edc/sim/CMakeFiles/edc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
