// PBFT checkpointing, log GC and state transfer under crash/restart and
// partition faults (docs/bft_recovery.md).
//
// The EDS-cluster tests drive the full DepSpace stack through ClusterFixture
// so recovery is proven end-to-end: a replica that slept through a stable
// checkpoint must rejoin via STATE-REQUEST/STATE-RESPONSE and converge to a
// byte-identical TupleSpace::Digest() with its log truncated below the low
// watermark. The raw-BFT test checks the transferred dedup summary: a
// retransmitted pre-restart request must not re-execute on the recovered
// replica.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edc/bft/replica.h"
#include "edc/common/rng.h"
#include "edc/harness/fixture.h"
#include "edc/harness/invariants.h"
#include "edc/sim/cpu.h"
#include "edc/sim/network.h"

namespace edc {
namespace {

// ------------------------------------------------------- EDS cluster tests

ClusterFixture MakeEdsCluster() {
  FixtureOptions fo;
  fo.system = SystemKind::kExtensibleDepSpace;
  fo.num_clients = 2;
  fo.seed = 42;
  fo.ds_client.reconnect = ReconnectOptions{Millis(300), Seconds(2), 0};
  return ClusterFixture(fo);
}

// Issues `n` distinct out() ops from client 0 and settles until all replied.
void RunOuts(ClusterFixture& fx, int n, const std::string& tag) {
  int done = 0;
  for (int i = 0; i < n; ++i) {
    DsTuple tuple{DsField{std::string("/r")}, DsField{tag + std::to_string(i)},
                  DsField{static_cast<int64_t>(i)}};
    fx.ds_client(0)->Out(std::move(tuple), [&done](Result<DsReply>) { ++done; });
  }
  SimTime deadline = fx.loop().now() + Seconds(20);
  while (done < n && fx.loop().now() < deadline) {
    fx.Settle(Millis(100));
  }
  ASSERT_EQ(done, n);
}

void ExpectCaughtUp(ClusterFixture& fx, size_t node_index) {
  const BftReplica& bft = fx.ds_servers[node_index]->bft();
  EXPECT_GE(bft.state_transfers(), 1);
  EXPECT_GT(bft.low_watermark(), 0u);
  // Log truncated below the low watermark: either empty or holding only
  // entries above it.
  if (bft.log_entries() > 0) {
    EXPECT_GT(bft.min_entry_seq(), bft.low_watermark());
  }
  uint64_t reference = fx.ds_servers[0]->space().Digest();
  EXPECT_EQ(fx.ds_servers[node_index]->space().Digest(), reference);
  std::string why;
  EXPECT_TRUE(fx.CheckEdsInvariants(&why)) << why;
}

TEST(BftRecovery, SleeperCatchesUpViaStateTransfer) {
  ClusterFixture fx = MakeEdsCluster();
  fx.Start();
  // Node 2 sleeps through 20 executed ops (>= 2 checkpoint boundaries at the
  // default interval of 8): on restart its log is empty and the cluster's
  // pre-prepares for those seqs are gone, so only state transfer can help.
  fx.faults().Crash(2);
  RunOuts(fx, 20, "a");
  EXPECT_GT(fx.ds_servers[0]->bft().low_watermark(), 0u);
  fx.faults().Restart(2);
  fx.Settle(Seconds(5));
  ExpectCaughtUp(fx, 1);
}

TEST(BftRecovery, PrimaryCrashMidWorkloadCheckpointSurvivesViewChange) {
  ClusterFixture fx = MakeEdsCluster();
  fx.Start();
  // Node 1 is the view-0 primary: its crash forces a view change, and the
  // new primary's ensemble must still take stable checkpoints.
  fx.faults().Crash(1);
  RunOuts(fx, 20, "b");
  for (size_t i = 1; i < fx.ds_servers.size(); ++i) {
    EXPECT_GT(fx.ds_servers[i]->bft().view(), 0u);
    EXPECT_GT(fx.ds_servers[i]->bft().low_watermark(), 0u);
  }
  fx.faults().Restart(1);
  fx.Settle(Seconds(5));
  ExpectCaughtUp(fx, 0);
  // The rejoined ex-primary adopted the post-view-change view from the f+1
  // views carried on checkpoint traffic instead of fighting for view 0.
  EXPECT_GT(fx.ds_servers[0]->bft().view(), 0u);
}

TEST(BftRecovery, PartitionedReplicaTruncatesStaleLogBelowWatermark) {
  ClusterFixture fx = MakeEdsCluster();
  fx.Start();
  // Node 4 stays up but isolated: it buffers client requests and may start
  // lone view changes while the majority executes past several checkpoints.
  // After the heal it must discard its stale log and install the checkpoint.
  fx.faults().Partition({4}, {1, 2, 3});
  RunOuts(fx, 24, "c");
  fx.faults().Heal();
  fx.Settle(Seconds(6));
  ExpectCaughtUp(fx, 3);
  const BftReplica& bft = fx.ds_servers[3]->bft();
  EXPECT_GE(bft.low_watermark(), 8u);  // at least the first boundary
}

TEST(BftRecovery, RepliesAfterTransferStayConverged) {
  // Client replies must keep matching across all four replicas after one of
  // them rejoined via state transfer (f+1 identical replies per op is the
  // client acceptance rule, so divergence would hang the workload).
  ClusterFixture fx = MakeEdsCluster();
  fx.Start();
  fx.faults().Crash(3);
  RunOuts(fx, 12, "d");
  fx.faults().Restart(3);
  fx.Settle(Seconds(5));
  ExpectCaughtUp(fx, 2);
  RunOuts(fx, 12, "e");  // post-recovery ops execute on all four replicas
  std::string why;
  EXPECT_TRUE(fx.CheckEdsInvariants(&why)) << why;
}

// --------------------------------------------------------- raw BFT dedup

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Counter state machine with snapshot support: the transferred state must
// carry the dedup summary, so a retransmission of a pre-crash request is not
// re-executed by the recovered replica.
class SnapCounter : public NetworkNode, public BftCallbacks {
 public:
  SnapCounter(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> members)
      : cpu(loop, 1) {
    BftConfig cfg;
    cfg.members = std::move(members);
    cfg.self = id;
    cfg.f = 1;
    replica = std::make_unique<BftReplica>(loop, net, &cpu, CostModel{}, cfg, this);
    net->Register(id, this);
  }

  void HandlePacket(Packet&& pkt) override {
    if (IsBftPacket(pkt.type)) {
      replica->HandlePacket(std::move(pkt));
    }
  }

  BftExecOutcome Execute(uint64_t seq, SimTime ts, const BftRequest& request) override {
    (void)seq;
    (void)ts;
    std::string body(request.payload.begin(), request.payload.end());
    if (body.rfind("add:", 0) == 0) {
      counter += std::stoll(body.substr(4));
    }
    ++executions;
    replica->SendReply(request.client, request.req_id, Bytes(std::to_string(counter)));
    return BftExecOutcome{};
  }

  std::vector<uint8_t> TakeSnapshot() override {
    Encoder enc;
    enc.PutI64(counter);
    return enc.Release();
  }

  Status RestoreSnapshot(const std::vector<uint8_t>& snapshot) override {
    Decoder dec(snapshot);
    auto value = dec.GetI64();
    if (!value.ok()) {
      return value.status();
    }
    counter = *value;
    return Status::Ok();
  }

  CpuQueue cpu;
  std::unique_ptr<BftReplica> replica;
  int64_t counter = 0;
  int executions = 0;
};

// Absorbs replica replies so the test's synthetic client is a live node in
// the network (packets from unregistered/down sources are dropped).
struct ReplySink : NetworkNode {
  void HandlePacket(Packet&&) override {}
};

TEST(BftRecovery, TransferredDedupBlocksReexecution) {
  EventLoop loop;
  Network net(&loop, Rng(7), LinkParams{});
  ReplySink client_node;
  net.Register(100, &client_node);
  std::vector<NodeId> members{1, 2, 3, 4};
  std::vector<std::unique_ptr<SnapCounter>> replicas;
  for (NodeId id : members) {
    replicas.push_back(std::make_unique<SnapCounter>(&loop, &net, id, members));
  }
  for (auto& r : replicas) {
    r->replica->Start();
  }

  auto send = [&](uint64_t req_id, const std::string& body) {
    BftRequest req;
    req.client = 100;
    req.req_id = req_id;
    req.payload = Bytes(body);
    for (NodeId r : members) {
      Packet pkt;
      pkt.src = 100;
      pkt.dst = r;
      pkt.type = static_cast<uint32_t>(BftMsgType::kRequest);
      pkt.payload = EncodeBftRequest(req);
      net.Send(std::move(pkt));
    }
  };
  auto settle = [&](Duration d) { loop.RunUntil(loop.now() + d); };

  // Request 1 executes everywhere, then replica 4 sleeps through enough
  // further requests to cross a checkpoint boundary (interval 8).
  send(1, "add:1");
  settle(Seconds(1));
  ASSERT_EQ(replicas[3]->counter, 1);
  replicas[3]->replica->Crash();
  net.SetNodeUp(4, false);
  for (uint64_t id = 2; id <= 16; ++id) {
    send(id, "add:1");
    settle(Millis(200));
  }
  ASSERT_EQ(replicas[0]->counter, 16);
  ASSERT_GT(replicas[0]->replica->low_watermark(), 0u);

  net.SetNodeUp(4, true);
  replicas[3]->replica->Restart();
  settle(Seconds(4));
  EXPECT_GE(replicas[3]->replica->state_transfers(), 1);
  EXPECT_EQ(replicas[3]->counter, 16);
  EXPECT_EQ(replicas[3]->replica->last_executed(), replicas[0]->replica->last_executed());

  // Retransmit request 1 to the recovered replica only: its transferred
  // dedup summary must classify it as already executed (req ids at or below
  // the client's floor count as executed even after GC).
  int executions_before = replicas[3]->executions;
  BftRequest dup;
  dup.client = 100;
  dup.req_id = 1;
  dup.payload = Bytes("add:1");
  Packet pkt;
  pkt.src = 100;
  pkt.dst = 4;
  pkt.type = static_cast<uint32_t>(BftMsgType::kRequest);
  pkt.payload = EncodeBftRequest(dup);
  net.Send(std::move(pkt));
  settle(Seconds(2));
  EXPECT_EQ(replicas[3]->executions, executions_before);
  EXPECT_EQ(replicas[3]->counter, 16);
}

}  // namespace
}  // namespace edc
