// End-to-end recipe tests across all four systems (Table 2 conformance +
// recipe correctness in both traditional and extension-based variants).

#include "edc/recipes/recipes.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "edc/harness/fixture.h"

namespace edc {
namespace {

struct SystemParam {
  SystemKind kind;
  const char* name;
};

class RecipeTest : public ::testing::TestWithParam<SystemParam> {
 protected:
  std::unique_ptr<CoordFixture> MakeFixture(size_t clients, uint64_t seed = 5) {
    FixtureOptions options;
    options.system = GetParam().kind;
    options.num_clients = clients;
    options.seed = seed;
    auto fixture = std::make_unique<CoordFixture>(options);
    fixture->Start();
    return fixture;
  }

  bool ext() const { return IsExtensible(GetParam().kind); }
};

INSTANTIATE_TEST_SUITE_P(
    AllSystems, RecipeTest,
    ::testing::Values(SystemParam{SystemKind::kZooKeeper, "ZooKeeper"},
                      SystemParam{SystemKind::kExtensibleZooKeeper, "EZK"},
                      SystemParam{SystemKind::kDepSpace, "DepSpace"},
                      SystemParam{SystemKind::kExtensibleDepSpace, "EDS"}),
    [](const ::testing::TestParamInfo<SystemParam>& info) { return info.param.name; });

TEST_P(RecipeTest, CoordApiConformance) {
  auto fixture = MakeFixture(1);
  CoordClient* c = fixture->coord(0);

  // create / read / update / cas / subObjects / delete (Table 2 semantics).
  Status status = Status(ErrorCode::kInternal);
  c->Create("/t", "v0", [&](Result<std::string> r) { status = r.status(); });
  fixture->Settle(Seconds(1));
  ASSERT_TRUE(status.ok()) << status.ToString();

  Result<std::string> read = Status(ErrorCode::kInternal);
  c->Read("/t", [&](Result<std::string> r) { read = r; });
  fixture->Settle(Seconds(1));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v0");

  c->Cas("/t", "v0", "v1", [&](Status s) { status = s; });
  fixture->Settle(Seconds(1));
  EXPECT_TRUE(status.ok()) << status.ToString();

  // A cas conditioned on stale content fails.
  c->Read("/t", [](Result<std::string>) {});
  fixture->Settle(Seconds(1));
  c->Update("/t", "v2", [&](Status s) { status = s; });
  fixture->Settle(Seconds(1));
  ASSERT_TRUE(status.ok());
  c->Cas("/t", "v1", "v3", [&](Status s) { status = s; });
  fixture->Settle(Seconds(1));
  EXPECT_FALSE(status.ok());

  c->Create("/t-kids", "", [](Result<std::string>) {});
  fixture->Settle(Seconds(1));
  for (int i = 0; i < 3; ++i) {
    c->Create("/t-kids/k" + std::to_string(i), "d", [](Result<std::string>) {});
  }
  fixture->Settle(Seconds(1));
  Result<std::vector<CoordObject>> subs = Status(ErrorCode::kInternal);
  c->SubObjects("/t-kids", [&](Result<std::vector<CoordObject>> r) { subs = r; });
  fixture->Settle(Seconds(1));
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ(subs->size(), 3u);

  c->Delete("/t", [&](Status s) { status = s; });
  fixture->Settle(Seconds(1));
  EXPECT_TRUE(status.ok());
  Result<std::string> gone = Status(ErrorCode::kInternal);
  c->Read("/t", [&](Result<std::string> r) { gone = r; });
  fixture->Settle(Seconds(1));
  EXPECT_EQ(gone.code(), ErrorCode::kNoNode);
}

TEST_P(RecipeTest, BlockCompletesOnCreation) {
  auto fixture = MakeFixture(2);
  // Block must work without extensions in every system (Table 2).
  CoordClient* waiter = fixture->coord(0);
  CoordClient* creator = fixture->coord(1);
  bool unblocked = false;
  waiter->Block("/signal", [&](Result<std::string> r) { unblocked = r.ok(); });
  fixture->Settle(Seconds(1));
  EXPECT_FALSE(unblocked);
  creator->Create("/signal", "go", [](Result<std::string>) {});
  fixture->Settle(Seconds(1));
  EXPECT_TRUE(unblocked);
}

TEST_P(RecipeTest, SharedCounterIsLinear) {
  auto fixture = MakeFixture(4);
  std::vector<std::unique_ptr<SharedCounter>> counters;
  for (size_t i = 0; i < 4; ++i) {
    counters.push_back(std::make_unique<SharedCounter>(fixture->coord(i), ext()));
  }
  Status setup = Status(ErrorCode::kInternal);
  counters[0]->Setup([&](Status s) { setup = s; });
  fixture->Settle(Seconds(1));
  ASSERT_TRUE(setup.ok()) << setup.ToString();
  int attached = 0;
  for (size_t i = 1; i < 4; ++i) {
    counters[i]->Attach([&](Status s) { attached += s.ok(); });
  }
  fixture->Settle(Seconds(1));
  ASSERT_EQ(attached, 3);

  // Each client increments 5 times concurrently; values must form a
  // permutation of 1..20 (no lost updates, no duplicates).
  std::set<int64_t> values;
  int completed = 0;
  struct Chain {
    SharedCounter* counter;
    int remaining;
  };
  auto chains = std::make_shared<std::vector<Chain>>();
  for (size_t i = 0; i < 4; ++i) {
    chains->push_back(Chain{counters[i].get(), 5});
  }
  std::function<void(size_t)> drive = [&, chains](size_t i) {
    if ((*chains)[i].remaining == 0) {
      return;
    }
    --(*chains)[i].remaining;
    (*chains)[i].counter->Increment([&, i](Result<int64_t> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      values.insert(*r);
      ++completed;
      drive(i);
    });
  };
  for (size_t i = 0; i < 4; ++i) {
    drive(i);
  }
  fixture->Settle(Seconds(20));
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(values.size(), 20u);
  EXPECT_EQ(*values.begin(), 1);
  EXPECT_EQ(*values.rbegin(), 20);
}

TEST_P(RecipeTest, QueueIsFifoPerProducerAndLossless) {
  auto fixture = MakeFixture(2);
  DistributedQueue producer(fixture->coord(0), ext());
  DistributedQueue consumer(fixture->coord(1), ext());
  Status setup = Status(ErrorCode::kInternal);
  producer.Setup([&](Status s) { setup = s; });
  fixture->Settle(Seconds(1));
  ASSERT_TRUE(setup.ok()) << setup.ToString();
  consumer.Attach([](Status) {});
  fixture->Settle(Seconds(1));

  for (int i = 0; i < 5; ++i) {
    producer.Add("e" + std::to_string(i), "m" + std::to_string(i), [](Status s) {
      ASSERT_TRUE(s.ok());
    });
    fixture->Settle(Millis(300));  // distinct creation timestamps
  }
  std::vector<std::string> received;
  for (int i = 0; i < 5; ++i) {
    consumer.Remove([&](Result<std::string> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      received.push_back(*r);
    });
    fixture->Settle(Seconds(1));
  }
  ASSERT_EQ(received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], "m" + std::to_string(i));
  }
}

TEST_P(RecipeTest, BarrierReleasesAllTogether) {
  constexpr size_t kParty = 4;
  auto fixture = MakeFixture(kParty);
  std::vector<std::unique_ptr<DistributedBarrier>> barriers;
  for (size_t i = 0; i < kParty; ++i) {
    barriers.push_back(std::make_unique<DistributedBarrier>(
        fixture->coord(i), ext(), static_cast<int>(kParty)));
  }
  Status setup = Status(ErrorCode::kInternal);
  barriers[0]->Setup([&](Status s) { setup = s; });
  fixture->Settle(Seconds(1));
  ASSERT_TRUE(setup.ok()) << setup.ToString();
  for (size_t i = 1; i < kParty; ++i) {
    barriers[i]->Attach([](Status) {});
  }
  fixture->Settle(Seconds(1));

  int released = 0;
  // First three enter: nobody may pass yet.
  for (size_t i = 0; i + 1 < kParty; ++i) {
    barriers[i]->Enter([&](Status s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      ++released;
    });
    fixture->Settle(Millis(400));
  }
  EXPECT_EQ(released, 0);
  // Last participant completes the group: everyone unblocks.
  barriers[kParty - 1]->Enter([&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    ++released;
  });
  fixture->Settle(Seconds(2));
  EXPECT_EQ(released, static_cast<int>(kParty));
}

TEST_P(RecipeTest, LeaderElectionRotatesOnAbdication) {
  constexpr size_t kCandidates = 3;
  auto fixture = MakeFixture(kCandidates);
  std::vector<std::unique_ptr<LeaderElection>> elections;
  for (size_t i = 0; i < kCandidates; ++i) {
    elections.push_back(std::make_unique<LeaderElection>(fixture->coord(i), ext()));
  }
  Status setup = Status(ErrorCode::kInternal);
  elections[0]->Setup([&](Status s) { setup = s; });
  fixture->Settle(Seconds(1));
  ASSERT_TRUE(setup.ok()) << setup.ToString();
  for (size_t i = 1; i < kCandidates; ++i) {
    elections[i]->Attach([](Status) {});
  }
  fixture->Settle(Seconds(1));

  std::vector<size_t> leadership_order;
  for (size_t i = 0; i < kCandidates; ++i) {
    elections[i]->BecomeLeader([&, i](Status s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      leadership_order.push_back(i);
    });
    fixture->Settle(Millis(400));  // deterministic registration order
  }
  fixture->Settle(Seconds(2));
  // Exactly one leader (the first registrant).
  ASSERT_EQ(leadership_order.size(), 1u);
  EXPECT_EQ(leadership_order[0], 0u);

  // The leader abdicates; leadership passes to the next candidate.
  elections[0]->Abdicate([](Status s) { ASSERT_TRUE(s.ok()) << s.ToString(); });
  fixture->Settle(Seconds(2));
  ASSERT_EQ(leadership_order.size(), 2u);
  EXPECT_EQ(leadership_order[1], 1u);

  elections[1]->Abdicate([](Status) {});
  fixture->Settle(Seconds(2));
  ASSERT_EQ(leadership_order.size(), 3u);
  EXPECT_EQ(leadership_order[2], 2u);
}

}  // namespace
}  // namespace edc
