// Pure (stateless) builtin functions available to CoordScript programs.
//
// This is the white list of §4.1.1: basic math, boolean, string and list
// operations, all deterministic. Service-state access (create/read/update/…)
// and environment functions (now/random, EZK-only) are *host* functions
// supplied by the sandbox, not listed here.

#ifndef EDC_SCRIPT_BUILTINS_H_
#define EDC_SCRIPT_BUILTINS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/script/value.h"

namespace edc {

using BuiltinFn = std::function<Result<Value>(std::vector<Value>&)>;

struct BuiltinInfo {
  BuiltinFn fn;
  bool deterministic = true;
};

// Name -> implementation for every core builtin.
const std::map<std::string, BuiltinInfo>& CoreBuiltins();

// Dense index view of CoreBuiltins() for the bytecode VM: the compiler
// resolves a builtin call to its index once, and kCallBuiltin dispatches
// straight into this vector — no per-call map lookup. Indices are stable for
// the process lifetime (CoreBuiltins() is immutable after first use).
const std::vector<const BuiltinInfo*>& BuiltinsByIndex();

// Index of `name` in BuiltinsByIndex(), or -1 if it is not a core builtin.
int BuiltinIndexOf(const std::string& name);

// Convenience for error construction inside builtins and host functions.
Status ScriptError(const std::string& message);

}  // namespace edc

#endif  // EDC_SCRIPT_BUILTINS_H_
