#include "edc/sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace edc {

CpuQueue::CpuQueue(EventLoop* loop, int cores) : loop_(loop) {
  assert(cores >= 1);
  free_at_.assign(static_cast<size_t>(cores), 0);
}

void CpuQueue::Submit(Duration cost, std::function<void()> done) {
  if (cost < 0) {
    cost = 0;
  }
  // Earliest-free core wins; ties go to the lowest index, deterministically.
  size_t best = 0;
  for (size_t i = 1; i < free_at_.size(); ++i) {
    if (free_at_[i] < free_at_[best]) {
      best = i;
    }
  }
  SimTime start = std::max(loop_->now(), free_at_[best]);
  SimTime finish = start + cost;
  free_at_[best] = finish;
  busy_ns_ += cost;
  if (obs_ != nullptr) {
    m_submits_->Increment();
    m_busy_->Add(cost);
    m_queue_wait_->Record(start - loop_->now());
    const TraceContext& ctx = obs_->tracer.current();
    if (start > loop_->now()) {
      obs_->tracer.RecordSpanIn(ctx, "cpu.wait", Stage::kQueue, track_, loop_->now(), start);
    }
    if (cost > 0) {
      obs_->tracer.RecordSpanIn(ctx, "cpu.run", Stage::kCpu, track_, start, finish);
    }
  }
  loop_->ScheduleAt(finish, std::move(done));
}

void CpuQueue::SetObs(Obs* obs, uint32_t track) {
  obs_ = obs;
  track_ = track;
  if (obs_ != nullptr) {
    m_queue_wait_ = obs_->metrics.GetHistogram("cpu.queue_wait_ns");
    m_busy_ = obs_->metrics.GetCounter("cpu.busy_ns");
    m_submits_ = obs_->metrics.GetCounter("cpu.submits");
  } else {
    m_queue_wait_ = nullptr;
    m_busy_ = nullptr;
    m_submits_ = nullptr;
  }
}

Duration CpuQueue::QueueDelay() const {
  SimTime earliest = free_at_[0];
  for (SimTime t : free_at_) {
    earliest = std::min(earliest, t);
  }
  return std::max<Duration>(0, earliest - loop_->now());
}

}  // namespace edc
