#include "edc/common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace edc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fa.NextU64(), fb.NextU64());
  }
}

TEST(RngTest, RoughlyUniformMean) {
  Rng rng(123);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

}  // namespace
}  // namespace edc
