// Ablation: 2PC participant throughput, tree walker vs bytecode VM.
//
// The two_phase recipe (prepare/commit/abort over split()-encoded op lists)
// was the one built-in handler the pre-interval cost pass could not certify:
// it stayed on the fully metered interpreter while every other recipe ran
// elided or compiled. The interval/length abstract domain's amortized
// total-length accounting now proves a 66,882-step bound (docs/
// static_analysis.md), so the handler certifies, compiles, and dispatches to
// the register VM. These rows measure what that buys per transaction:
//
//   BM_MeteredInterpreterPrepareCommit  pre-PR reality: metered tree walk
//   BM_ElidedInterpreterPrepareCommit   certification only (no limit checks)
//   BM_VmPrepareCommit                  certification + bytecode dispatch
//   BM_VmPrepareAbort                   abort path on the VM, for symmetry
//
// The host is a plain in-memory map mirroring the binding's read_object/
// exists/create/update/delete_object contract, so the numbers isolate script
// execution from consensus and networking.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>

#include "bench/gbench_json.h"
#include "edc/recipes/scripts.h"
#include "edc/script/interpreter.h"
#include "edc/script/parser.h"
#include "edc/script/vm/compiler.h"
#include "edc/script/vm/vm.h"

namespace edc {
namespace {

// Minimal coordination-state host: the same observable behavior the EZK
// binding gives the two_phase handler, minus consensus.
class MapHost : public ScriptHost {
 public:
  bool HasFunction(const std::string& name) const override {
    return name == "exists" || name == "create" || name == "update" ||
           name == "delete_object" || name == "read_object";
  }

  Result<Value> Call(const std::string& name, std::vector<Value>& args) override {
    const std::string& path = args[0].AsStr();
    if (name == "exists") {
      return Value(store_.count(path) > 0);
    }
    if (name == "read_object") {
      auto it = store_.find(path);
      if (it == store_.end()) {
        return Value();  // missing object reads as null
      }
      ValueMap node;
      node.emplace("path", Value(it->first));
      node.emplace("data", Value(it->second));
      return Value::Map(std::move(node));
    }
    if (name == "create" || name == "update") {
      store_[path] = args.size() > 1 && args[1].is_str() ? args[1].AsStr() : "";
      return Value(true);
    }
    // delete_object
    store_.erase(path);
    return Value(true);
  }

 private:
  std::map<std::string, std::string> store_;
};

// One cross-object transaction: two creates and a delete, paths deep enough
// that the lock-flattening inner loops (split by '/') do real work.
constexpr char kPrepareSpec[] =
    "t42|c:/app/accounts/alice:90;c:/app/accounts/bob:110;d:/app/pending/x1";
constexpr char kTxid[] = "t42";

CompiledModule CompileTwoPhase() {
  auto program = ParseProgram(kTwoPhaseExtension);
  CompiledModule module;
  for (const auto& [name, handler] : (*program)->handlers) {
    CompiledHandler compiled;
    if (!CompileHandler(handler, CompileOptions{}, 0, &compiled)) {
      std::abort();  // the 2PC handler must stay compilable
    }
    module.handlers.emplace(name, std::move(compiled));
  }
  return module;
}

// Runs prepare+commit (or prepare+abort) cycles. The same txid repeats:
// commit/abort release every lock and delete the stage entry, so each cycle
// sees the same state and the loop is steady-state by construction.
template <typename Engine>
int64_t RunCycle(Engine& engine, const char* finish_oid, const char* finish_spec) {
  auto prep = engine.Invoke(
      "update", {Value("/2pc-prepare"), Value(std::string(kPrepareSpec))});
  if (!prep.ok() || prep->AsStr() != "prepared") {
    std::abort();
  }
  auto fin = engine.Invoke(
      "update", {Value(std::string(finish_oid)), Value(std::string(finish_spec))});
  if (!fin.ok()) {
    std::abort();
  }
  return engine.stats().steps_used;
}

void BM_MeteredInterpreterPrepareCommit(benchmark::State& state) {
  auto program = ParseProgram(kTwoPhaseExtension);
  MapHost host;
  int64_t steps = 0;
  int64_t txns = 0;
  for (auto _ : state) {
    Interpreter interp(program->get(), &host, ExecBudget{});
    steps += RunCycle(interp, "/2pc-commit", kTxid);
    ++txns;
  }
  state.counters["txns_per_s"] =
      benchmark::Counter(static_cast<double>(txns), benchmark::Counter::kIsRate);
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeteredInterpreterPrepareCommit);

void BM_ElidedInterpreterPrepareCommit(benchmark::State& state) {
  auto program = ParseProgram(kTwoPhaseExtension);
  MapHost host;
  ExecBudget elided;
  elided.metered = false;
  int64_t steps = 0;
  int64_t txns = 0;
  for (auto _ : state) {
    Interpreter interp(program->get(), &host, elided);
    steps += RunCycle(interp, "/2pc-commit", kTxid);
    ++txns;
  }
  state.counters["txns_per_s"] =
      benchmark::Counter(static_cast<double>(txns), benchmark::Counter::kIsRate);
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ElidedInterpreterPrepareCommit);

void BM_VmPrepareCommit(benchmark::State& state) {
  CompiledModule module = CompileTwoPhase();
  MapHost host;
  ExecBudget elided;
  elided.metered = false;
  int64_t steps = 0;
  int64_t txns = 0;
  for (auto _ : state) {
    Vm vm(&module, &host, elided);
    steps += RunCycle(vm, "/2pc-commit", kTxid);
    ++txns;
  }
  state.counters["txns_per_s"] =
      benchmark::Counter(static_cast<double>(txns), benchmark::Counter::kIsRate);
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmPrepareCommit);

void BM_VmPrepareAbort(benchmark::State& state) {
  CompiledModule module = CompileTwoPhase();
  MapHost host;
  ExecBudget elided;
  elided.metered = false;
  int64_t txns = 0;
  for (auto _ : state) {
    Vm vm(&module, &host, elided);
    RunCycle(vm, "/2pc-abort", kTxid);
    ++txns;
  }
  state.counters["txns_per_s"] =
      benchmark::Counter(static_cast<double>(txns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmPrepareAbort);

}  // namespace
}  // namespace edc

int main(int argc, char** argv) {
  return edc::GBenchMainWithJson("abl_two_phase", argc, argv);
}
