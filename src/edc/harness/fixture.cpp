#include "edc/harness/fixture.h"

#include <cassert>

#include "edc/harness/invariants.h"

namespace edc {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kZooKeeper:
      return "ZooKeeper";
    case SystemKind::kExtensibleZooKeeper:
      return "EZK";
    case SystemKind::kDepSpace:
      return "DepSpace";
    case SystemKind::kExtensibleDepSpace:
      return "EDS";
  }
  return "?";
}

bool IsExtensible(SystemKind kind) {
  return kind == SystemKind::kExtensibleZooKeeper || kind == SystemKind::kExtensibleDepSpace;
}

bool IsZkFamily(SystemKind kind) {
  return kind == SystemKind::kZooKeeper || kind == SystemKind::kExtensibleZooKeeper;
}

CoordFixture::CoordFixture(FixtureOptions options) : options_(options) {
  net_ = std::make_unique<Network>(&loop_, Rng(options_.seed), options_.link);
  faults_ = std::make_unique<FaultInjector>(&loop_, net_.get());
}

CoordFixture::~CoordFixture() = default;

void CoordFixture::WireObservability() {
  obs_.tracer.Enable(options_.retain_spans);
  // Carry the active trace context across every scheduled callback: capture
  // it when an event is scheduled, re-activate it around the callback. The
  // hooks only move a 16-byte value — they never touch the schedule itself.
  loop_.SetContextHooks(
      [this]() {
        TraceContext c = obs_.tracer.current();
        return EventLoop::EventContext{c.trace, c.span};
      },
      [this](const EventLoop::EventContext& ctx) {
        obs_.tracer.SetCurrent(TraceContext{ctx.a, ctx.b});
      });
  net_->SetObs(&obs_);
}

void CoordFixture::CollectMetrics() {
  if (!options_.observability) {
    return;
  }
  net_->DumpLinkMetrics(&obs_.metrics);
  for (const auto& server : zk_servers) {
    obs_.metrics.SetGauge("server." + std::to_string(server->id()) + ".cpu_busy_ns",
                          server->cpu().busy_ns());
  }
  for (const auto& server : ds_servers) {
    obs_.metrics.SetGauge("server." + std::to_string(server->id()) + ".cpu_busy_ns",
                          server->cpu().busy_ns());
  }
}

void CoordFixture::Start() {
  if (options_.observability) {
    WireObservability();
  }
  if (options_.num_shards > 1) {
    StartSharded();
    return;
  }
  if (IsZkFamily(options_.system)) {
    std::vector<NodeId> members{1, 2, 3};
    for (NodeId id : members) {
      auto server = std::make_unique<ZkServer>(&loop_, net_.get(), id, members,
                                               options_.costs, options_.zk_server);
      if (options_.observability) {
        server->SetObs(&obs_);
      }
      net_->Register(id, server.get());
      ZkServer* raw = server.get();
      faults_->RegisterProcess(
          id,
          [this, raw, id]() {
            raw->Crash();
            net_->SetNodeUp(id, false);
          },
          [this, raw, id]() {
            net_->SetNodeUp(id, true);
            raw->Restart();
          });
      zk_servers.push_back(std::move(server));
    }
    if (IsExtensible(options_.system)) {
      for (auto& server : zk_servers) {
        zk_managers_.push_back(
            std::make_unique<ZkExtensionManager>(server.get(), options_.limits));
      }
    }
    for (auto& server : zk_servers) {
      server->Start();
    }
    loop_.RunUntil(loop_.now() + Seconds(2));  // leader election

    size_t connected = 0;
    for (size_t i = 0; i < options_.num_clients; ++i) {
      NodeId node = client_node(i);
      // Full ensemble list so fixture clients fail over during chaos runs;
      // preferred index keeps the historical round-robin initial placement.
      ServerList ensemble{members, i % members.size()};
      auto client = std::make_unique<ZkClient>(&loop_, net_.get(), node,
                                               ShardView::Standalone(std::move(ensemble)),
                                               options_.zk_client);
      if (options_.observability) {
        client->SetObs(&obs_);
      }
      client->Connect([&connected](Status s) {
        if (s.ok()) {
          ++connected;
        }
      });
      coords_.push_back(std::make_unique<ZkCoordClient>(client.get(),
                                                        IsExtensible(options_.system)));
      zk_clients_.push_back(std::move(client));
    }
    loop_.RunUntil(loop_.now() + Seconds(2));
    assert(connected == options_.num_clients && "zk clients failed to connect");
    (void)connected;
    return;
  }

  std::vector<NodeId> members{1, 2, 3, 4};
  for (NodeId id : members) {
    auto server = std::make_unique<DsServer>(&loop_, net_.get(), id, members,
                                             options_.costs, options_.ds_server);
    if (options_.observability) {
      server->SetObs(&obs_);
    }
    net_->Register(id, server.get());
    DsServer* raw = server.get();
    faults_->RegisterProcess(
        id,
        [this, raw, id]() {
          raw->Crash();
          net_->SetNodeUp(id, false);
        },
        [this, raw, id]() {
          net_->SetNodeUp(id, true);
          raw->Restart();
        });
    ds_servers.push_back(std::move(server));
  }
  if (IsExtensible(options_.system)) {
    for (auto& server : ds_servers) {
      ds_managers_.push_back(
          std::make_unique<DsExtensionManager>(server.get(), options_.limits));
    }
  }
  for (auto& server : ds_servers) {
    server->Start();
  }
  for (size_t i = 0; i < options_.num_clients; ++i) {
    auto client = std::make_unique<DsClient>(&loop_, net_.get(), client_node(i),
                                             ShardView::Standalone(ServerList{members}),
                                             options_.ds_client);
    if (options_.observability) {
      client->SetObs(&obs_);
    }
    coords_.push_back(std::make_unique<DsCoordClient>(&loop_, client.get()));
    ds_clients_.push_back(std::move(client));
  }
  loop_.RunUntil(loop_.now() + Millis(500));
}

void CoordFixture::BootShard(size_t s) {
  NodeId base = static_cast<NodeId>(1 + 10 * s);
  if (IsZkFamily(options_.system)) {
    std::vector<NodeId> members{base, base + 1, base + 2};
    size_t first = zk_servers.size();
    for (NodeId id : members) {
      auto server = std::make_unique<ZkServer>(&loop_, net_.get(), id, members,
                                               options_.costs, options_.zk_server);
      if (options_.observability) {
        server->SetObs(&obs_);
      }
      net_->Register(id, server.get());
      ZkServer* raw = server.get();
      faults_->RegisterProcess(
          id,
          [this, raw, id]() {
            raw->Crash();
            net_->SetNodeUp(id, false);
          },
          [this, raw, id]() {
            net_->SetNodeUp(id, true);
            raw->Restart();
          });
      zk_servers.push_back(std::move(server));
    }
    for (size_t i = first; i < zk_servers.size(); ++i) {
      if (IsExtensible(options_.system)) {
        zk_managers_.push_back(
            std::make_unique<ZkExtensionManager>(zk_servers[i].get(), options_.limits));
      }
      zk_servers[i]->Start();
    }
    shard_map_.AddShard(static_cast<uint32_t>(s), ServerList{members});
    return;
  }

  std::vector<NodeId> members{base, base + 1, base + 2, base + 3};
  size_t first = ds_servers.size();
  for (NodeId id : members) {
    auto server = std::make_unique<DsServer>(&loop_, net_.get(), id, members,
                                             options_.costs, options_.ds_server);
    if (options_.observability) {
      server->SetObs(&obs_);
    }
    net_->Register(id, server.get());
    DsServer* raw = server.get();
    faults_->RegisterProcess(
        id,
        [this, raw, id]() {
          raw->Crash();
          net_->SetNodeUp(id, false);
        },
        [this, raw, id]() {
          net_->SetNodeUp(id, true);
          raw->Restart();
        });
    ds_servers.push_back(std::move(server));
  }
  for (size_t i = first; i < ds_servers.size(); ++i) {
    if (IsExtensible(options_.system)) {
      ds_managers_.push_back(
          std::make_unique<DsExtensionManager>(ds_servers[i].get(), options_.limits));
    }
    ds_servers[i]->Start();
  }
  // Per-shard admin client for the ordered kSetMapVersion op; version 0 in
  // its own view so it is never rejected as stale itself.
  ds_admins_.push_back(std::make_unique<DsClient>(
      &loop_, net_.get(), static_cast<NodeId>(70000 + s),
      ShardView::Standalone(ServerList{members}), options_.ds_client));
  shard_map_.AddShard(static_cast<uint32_t>(s), ServerList{members});
}

void CoordFixture::PushShardVersions() {
  uint64_t version = shard_map_.version();
  // ZK: admission-level configuration, set directly on every replica.
  for (auto& server : zk_servers) {
    server->SetShardInfo(ServerShardOf(server->id()), version);
  }
  // DepSpace: replicated state — an ordered admin op per shard so all
  // replicas of a group flip at the same execution point.
  for (auto& admin : ds_admins_) {
    DsOp op;
    op.type = DsOpType::kSetMapVersion;
    op.map_version = version;
    admin->Call(std::move(op), [](Result<DsReply>) {});
  }
  if (!ds_admins_.empty()) {
    loop_.RunUntil(loop_.now() + Millis(500));
  }
}

void CoordFixture::StartSharded() {
  for (size_t s = 0; s < options_.num_shards; ++s) {
    BootShard(s);
  }
  if (IsZkFamily(options_.system)) {
    loop_.RunUntil(loop_.now() + Seconds(2));  // per-shard leader elections
  }
  PushShardVersions();

  if (IsZkFamily(options_.system)) {
    size_t connected = 0;
    for (size_t i = 0; i < options_.num_clients; ++i) {
      ZkShardRouterOptions ropts;
      ropts.client = options_.zk_client;
      auto router = std::make_unique<ZkShardRouter>(
          &loop_, net_.get(), client_node(i), shard_map_,
          [this]() { return shard_map_; }, ropts);
      if (options_.observability) {
        router->SetObs(&obs_);
      }
      router->Connect([&connected](Status s) {
        if (s.ok()) {
          ++connected;
        }
      });
      coords_.push_back(std::make_unique<ZkCoordClient>(router.get(),
                                                        IsExtensible(options_.system)));
      zk_routers_.push_back(std::move(router));
    }
    loop_.RunUntil(loop_.now() + Seconds(2));
    assert(connected == options_.num_clients && "zk routers failed to connect");
    (void)connected;
    return;
  }

  for (size_t i = 0; i < options_.num_clients; ++i) {
    DsShardRouterOptions ropts;
    ropts.client = options_.ds_client;
    auto router = std::make_unique<DsShardRouter>(
        &loop_, net_.get(), client_node(i), shard_map_,
        [this]() { return shard_map_; }, ropts);
    if (options_.observability) {
      router->SetObs(&obs_);
    }
    coords_.push_back(std::make_unique<DsCoordClient>(&loop_, router.get()));
    ds_routers_.push_back(std::move(router));
  }
  loop_.RunUntil(loop_.now() + Millis(500));
}

void CoordFixture::AddShard() {
  assert(options_.num_shards > 1 && "AddShard requires a sharded fixture");
  BootShard(shard_map_.size());
  options_.num_shards = shard_map_.size();
  PushShardVersions();
}

std::vector<NodeId> CoordFixture::CurrentZkVoters() const {
  // Prefer a running voter's view (authoritative for the active quorum);
  // fall back to any running replica (e.g. only observers are left).
  for (const auto& server : zk_servers) {
    if (server->running() && server->zab().is_voter()) {
      return server->zab().membership().voters;
    }
  }
  for (const auto& server : zk_servers) {
    if (server->running()) {
      return server->zab().membership().voters;
    }
  }
  return {};
}

ZkServer* CoordFixture::ZkServerById(NodeId id) {
  for (const auto& server : zk_servers) {
    if (server->id() == id) {
      return server.get();
    }
  }
  return nullptr;
}

ZkServer* CoordFixture::BootExtraZkReplica(NodeId id) {
  assert(IsZkFamily(options_.system) && options_.num_shards == 1 &&
         "BootExtraZkReplica: single-ensemble ZK fixtures only");
  ZkServerOptions opts = options_.zk_server;
  opts.observer = true;
  auto server = std::make_unique<ZkServer>(&loop_, net_.get(), id, CurrentZkVoters(),
                                           options_.costs, opts);
  if (options_.observability) {
    server->SetObs(&obs_);
  }
  net_->Register(id, server.get());
  ZkServer* raw = server.get();
  faults_->RegisterProcess(
      id,
      [this, raw, id]() {
        raw->Crash();
        net_->SetNodeUp(id, false);
      },
      [this, raw, id]() {
        net_->SetNodeUp(id, true);
        raw->Restart();
      });
  zk_servers.push_back(std::move(server));
  faults_->Note("boot-observer " + std::to_string(id));
  raw->Start();
  return raw;
}

ZkClient* CoordFixture::AdminZk() {
  if (admin_zk_) {
    return admin_zk_.get();
  }
  std::vector<NodeId> voters = CurrentZkVoters();
  if (voters.empty()) {
    return nullptr;
  }
  admin_zk_ = std::make_unique<ZkClient>(&loop_, net_.get(), 90001,
                                         ShardView::Standalone(ServerList{std::move(voters)}),
                                         options_.zk_client);
  bool done = false;
  admin_zk_->Connect([&done](Status) { done = true; });
  SimTime deadline = loop_.now() + Seconds(5);
  while (!done && loop_.now() < deadline) {
    loop_.RunUntil(loop_.now() + Millis(1));  // fine slices: don't quantize timings
  }
  return admin_zk_.get();
}

Status CoordFixture::AdminReconfig(const std::string& spec, Duration timeout) {
  ZkClient* admin = AdminZk();
  if (admin == nullptr) {
    return Status(ErrorCode::kConnectionLoss, "no admin session (no running replica)");
  }
  bool done = false;
  Status out;
  admin->Reconfig(spec, [&done, &out](Status s) {
    done = true;
    out = s;
  });
  SimTime deadline = loop_.now() + timeout;
  while (!done && loop_.now() < deadline) {
    loop_.RunUntil(loop_.now() + Millis(1));  // fine slices: don't quantize timings
  }
  if (!done) {
    return Status(ErrorCode::kTimeout, "reconfig reply timed out: " + spec);
  }
  faults_->Note("reconfig '" + spec + "' -> " + (out.ok() ? "ok" : out.message()));
  return out;
}

Status CoordFixture::JoinReplica(NodeId id, Duration timeout) {
  SimTime deadline = loop_.now() + timeout;
  if (ZkServerById(id) == nullptr) {
    BootExtraZkReplica(id);
  }
  // Register the joiner as an observer first so it starts receiving the
  // commit stream; retry while an earlier reconfig is still in flight.
  Status s;
  do {
    s = AdminReconfig("add_observer " + std::to_string(id));
    if (!s.ok() && s.code() != ErrorCode::kNotReady) {
      return s;
    }
    if (!s.ok()) {
      Settle(Millis(200));
    }
  } while (!s.ok() && loop_.now() < deadline);
  if (!s.ok()) {
    return Status(ErrorCode::kTimeout, "add_observer never accepted");
  }
  // Catch-up happens via snapshot-ship + log suffix; the leader rejects the
  // promotion (kNotReady) while the joiner still lags the commit frontier by
  // more than promote_lag, so retry until it lands or we time out.
  while (loop_.now() < deadline) {
    Settle(Millis(200));
    s = AdminReconfig("promote " + std::to_string(id));
    if (s.ok()) {
      return Status::Ok();
    }
    if (s.code() != ErrorCode::kNotReady && s.code() != ErrorCode::kTimeout &&
        s.code() != ErrorCode::kConnectionLoss) {
      return s;
    }
  }
  return Status(ErrorCode::kTimeout, "joiner " + std::to_string(id) + " never promoted");
}

Status CoordFixture::RemoveReplica(NodeId id, Duration timeout) {
  SimTime deadline = loop_.now() + timeout;
  Status s;
  do {
    s = AdminReconfig("remove " + std::to_string(id));
    if (s.ok()) {
      return Status::Ok();
    }
    if (s.code() != ErrorCode::kNotReady && s.code() != ErrorCode::kTimeout &&
        s.code() != ErrorCode::kConnectionLoss) {
      return s;
    }
    Settle(Millis(200));
  } while (loop_.now() < deadline);
  return Status(ErrorCode::kTimeout, "remove " + std::to_string(id) + " never accepted");
}

std::vector<ZkServer*> CoordFixture::ZkShardServers(uint32_t shard) const {
  std::vector<ZkServer*> out;
  for (const auto& server : zk_servers) {
    if (ServerShardOf(server->id()) == shard) {
      out.push_back(server.get());
    }
  }
  return out;
}

std::vector<DsServer*> CoordFixture::DsShardServers(uint32_t shard) const {
  std::vector<DsServer*> out;
  for (const auto& server : ds_servers) {
    if (ServerShardOf(server->id()) == shard) {
      out.push_back(server.get());
    }
  }
  return out;
}

int64_t CoordFixture::ClientBytesSent() const {
  int64_t total = 0;
  if (options_.num_shards > 1) {
    for (const auto& router : zk_routers_) {
      for (NodeId id : router->sub_client_ids()) {
        total += net_->StatsFor(id).bytes_sent;
      }
    }
    for (const auto& router : ds_routers_) {
      for (NodeId id : router->sub_client_ids()) {
        total += net_->StatsFor(id).bytes_sent;
      }
    }
    return total;
  }
  for (size_t i = 0; i < coords_.size(); ++i) {
    total += net_->StatsFor(client_node(i)).bytes_sent;
  }
  return total;
}

bool CoordFixture::CheckEdsInvariants(std::string* why) const {
  if (options_.num_shards > 1) {
    // Each shard orders an independent history; digests are only comparable
    // within one replica group.
    for (const ShardEntry& entry : shard_map_.entries()) {
      std::vector<DsServer*> group = DsShardServers(entry.shard_id);
      if (!EdsDigestsMatch(group, why) || !EdsLogBounded(group, why)) {
        return false;
      }
    }
    return true;
  }
  return EdsDigestsMatch(ds_servers, why) && EdsLogBounded(ds_servers, why);
}

}  // namespace edc
