file(REMOVE_RECURSE
  "CMakeFiles/scfs_metadata.dir/scfs_metadata.cpp.o"
  "CMakeFiles/scfs_metadata.dir/scfs_metadata.cpp.o.d"
  "scfs_metadata"
  "scfs_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scfs_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
