// Reproduces paper Fig. 10: distributed-barrier latency and client data per
// enter operation vs group size (2-50 clients).
//
// Expected shape: the extension variant needs a single blocking RPC per
// participant and the release notification goes out the instant the last
// participant arrives, so both latency and bytes stay well below the
// traditional recipe (which needs create + subObjects + block/create, plus a
// fetch after the unblock notification).

#include "bench/common.h"

namespace edc {
namespace {

constexpr int kSeeds = 3;
constexpr int kRounds = 20;  // measured barrier rounds per run

struct BarrierRun {
  double latency_ms = 0;      // mean time from round start to last release
  double latency_p99_ms = 0;  // tail across the measured rounds
  double kb_per_op = 0;       // client bytes per enter operation
  double rounds_per_sec = 0;
  StageSums stages;           // one breakdown per round (round = the "op")
};

BarrierRun RunOne(SystemKind system, size_t clients, uint64_t seed) {
  FixtureOptions options;
  options.system = system;
  options.num_clients = clients;
  options.seed = seed;
  options.observability = true;
  CoordFixture fixture(options);
  fixture.Start();
  auto barriers =
      SetupRecipe<DistributedBarrier>(fixture, IsExtensible(system),
                                      static_cast<int>(clients));

  Recorder round_latency;
  int64_t bytes_before = fixture.ClientBytesSent();
  int64_t enters = 0;
  StageSums stages;
  Tracer& tracer = fixture.obs().tracer;
  SimTime run_start = fixture.loop().now();

  for (int round = 0; round < kRounds; ++round) {
    SimTime start = fixture.loop().now();
    SimTime last_release = start;
    size_t released = 0;
    bool all_released = false;
    // One trace per round: every participant's enter lands under it, and the
    // breakdown covers start -> last release.
    TraceContext prev = tracer.current();
    TraceContext root;
    if (tracer.enabled()) {
      root = tracer.BeginTrace("barrier.round", 0, start);
    }
    for (size_t i = 0; i < clients; ++i) {
      barriers[i]->Enter([&](Status s) {
        if (!s.ok()) {
          std::fprintf(stderr, "FATAL: barrier enter failed: %s\n", s.ToString().c_str());
          std::exit(1);
        }
        if (++released == clients) {
          all_released = true;
          last_release = fixture.loop().now();
        }
      });
      ++enters;
    }
    if (root.active()) {
      tracer.SetCurrent(prev);
    }
    WaitFor(fixture, all_released, "barrier round", Seconds(30));
    round_latency.Record(last_release - start);
    if (root.active()) {
      stages.Add(tracer.FinishTrace(root, last_release));
    }
    bool reset_done = false;
    barriers[0]->Reset([&](Status) { reset_done = true; });
    WaitFor(fixture, reset_done, "barrier reset", Seconds(30));
  }

  BarrierRun out;
  out.latency_ms = round_latency.Mean() / 1e6;
  out.latency_p99_ms = static_cast<double>(round_latency.Percentile(0.99)) / 1e6;
  out.kb_per_op = static_cast<double>(fixture.ClientBytesSent() - bytes_before) / 1024.0 /
                  static_cast<double>(enters);
  Duration elapsed = fixture.loop().now() - run_start;
  out.rounds_per_sec =
      elapsed > 0 ? static_cast<double>(kRounds) / ToSeconds(elapsed) : 0.0;
  out.stages = stages;
  return out;
}

void Main() {
  BenchTable table({"system", "clients", "avg_lat_ms", "client_kb_per_op"});
  BenchJson json("fig10_barrier");
  for (SystemKind system : AllSystems()) {
    for (size_t clients : ClientSweep(2)) {
      RunAggregate latency;
      RunAggregate kb;
      for (int seed = 0; seed < kSeeds; ++seed) {
        uint64_t s = 3000 + static_cast<uint64_t>(seed);
        BarrierRun run = RunOne(system, clients, s);
        latency.Add(run.latency_ms);
        kb.Add(run.kb_per_op);
        json.AddCustomRow(SystemName(system), clients, s, run.rounds_per_sec,
                          run.latency_ms, run.latency_p99_ms, run.kb_per_op,
                          &run.stages);
      }
      table.AddRow({SystemName(system), std::to_string(clients), Fmt(latency.Mean()),
                    Fmt(kb.Mean(), 3)});
    }
  }
  std::printf("=== Fig. 10: distributed barrier (avg of %d runs, %d rounds each) ===\n",
              kSeeds, kRounds);
  table.Print();
  json.Write();
}

}  // namespace
}  // namespace edc

int main() {
  edc::Main();
  return 0;
}
