// Causal tracing for the simulator (Dapper-style spans over simulated time).
//
// A trace is a tree of spans rooted at one client operation. The current
// TraceContext is a piece of ambient state the event loop snapshots at
// Schedule() time and restores around each callback (see
// EventLoop::SetContextHooks), so causality follows the event graph — client
// issue -> network link -> server dispatch -> Zab/BFT ordering -> group-commit
// fsync -> extension sandbox -> reply — with zero changes to what the
// simulation does: the tracer only reads clocks, never schedules events or
// draws randomness. The determinism-under-observation test pins that.
//
// Every span carries a Stage used by StageBreakdown to attribute each instant
// of an operation's latency to exactly one bucket (queue-wait / cpu / network
// / fsync / other), via a priority sweep over the span intervals: at any
// instant the highest-priority active stage wins, and the root span keeps
// "other" active throughout, so the buckets sum exactly to the measured
// latency.

#ifndef EDC_OBS_TRACE_H_
#define EDC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "edc/sim/time.h"

namespace edc {

using TraceId = uint64_t;
using SpanId = uint64_t;

// The ambient causal context: which trace (client op) the currently running
// code is working for, and under which parent span. trace == 0 means "not
// inside any traced operation" and all instrumentation no-ops.
struct TraceContext {
  TraceId trace = 0;
  SpanId span = 0;
  bool active() const { return trace != 0; }
};

// Latency attribution bucket. Order is the sweep priority, lowest to highest:
// when spans overlap (e.g. a cpu span inside the root), the later enum wins.
enum class Stage : uint8_t {
  kOther = 0,    // in-protocol waiting not covered below (commit quorum, ...)
  kNetwork = 1,  // packet in flight (propagation + serialization + FIFO)
  kQueue = 2,    // waiting for a CPU core
  kCpu = 3,      // occupying a CPU core
  kFsync = 4,    // waiting for the group-commit fsync
};
constexpr size_t kStageCount = 5;
const char* StageName(Stage stage);

struct SpanRec {
  SpanId id = 0;
  TraceId trace = 0;
  SpanId parent = 0;
  const char* name = "";  // static string; spans never own their name
  Stage stage = Stage::kOther;
  uint32_t track = 0;  // Perfetto tid; we use the NodeId doing the work
  SimTime start = 0;
  SimTime end = -1;  // -1 while open
};

// Per-stage attribution of one operation's latency; ns[] sums to total.
struct StageBreakdown {
  int64_t ns[kStageCount] = {};
  int64_t total = 0;
  int64_t of(Stage stage) const { return ns[static_cast<size_t>(stage)]; }

  StageBreakdown& operator+=(const StageBreakdown& o) {
    for (size_t i = 0; i < kStageCount; ++i) {
      ns[i] += o.ns[i];
    }
    total += o.total;
    return *this;
  }
};

class Tracer {
 public:
  // Disabled tracers make every call a cheap no-op (BeginTrace returns an
  // inactive context, so downstream spans are skipped too).
  void Enable(bool retain_spans = false) {
    enabled_ = true;
    retain_ = retain_spans;
  }
  bool enabled() const { return enabled_; }
  // Keep spans of finished traces for ExportJson (otherwise FinishTrace
  // frees them after computing the breakdown, bounding memory).
  void SetRetain(bool retain) { retain_ = retain; }

  const TraceContext& current() const { return current_; }
  void SetCurrent(const TraceContext& ctx) { current_ = ctx; }

  // Opens a new trace with a root span and makes it the current context.
  TraceContext BeginTrace(const char* name, uint32_t track, SimTime now);

  // Opens a child span under `ctx` (or under current() for BeginSpan) and
  // returns its id; EndSpan closes it. Inactive contexts return 0 / no-op.
  SpanId BeginSpanIn(const TraceContext& ctx, const char* name, Stage stage, uint32_t track,
                     SimTime now);
  SpanId BeginSpan(const char* name, Stage stage, uint32_t track, SimTime now) {
    return BeginSpanIn(current_, name, stage, track, now);
  }
  void EndSpan(const TraceContext& ctx, SpanId span, SimTime now);

  // Records a fully-formed child span in one call — for stages whose end is
  // already known at creation time (network arrival, cpu start/finish).
  void RecordSpanIn(const TraceContext& ctx, const char* name, Stage stage, uint32_t track,
                    SimTime start, SimTime end);

  // Closes the root (and any span still open, e.g. a request cut short by a
  // fault) at `now`, computes the stage breakdown, and releases the trace's
  // spans unless retention is on.
  StageBreakdown FinishTrace(const TraceContext& root, SimTime now);

  // Chrome trace_event JSON ("X" complete events, ts/dur in microseconds),
  // loadable directly in Perfetto / chrome://tracing. Covers retained
  // finished traces plus any still-open ones. Returns false on I/O error.
  bool ExportJson(const std::string& path) const;

  size_t live_traces() const { return live_.size(); }
  size_t retained_spans() const { return retained_.size(); }

 private:
  SpanRec* FindSpan(TraceId trace, SpanId span);

  bool enabled_ = false;
  bool retain_ = false;
  TraceContext current_;
  uint64_t next_id_ = 1;  // shared trace/span id counter; 0 stays invalid
  std::unordered_map<TraceId, std::vector<SpanRec>> live_;  // [0] is the root
  std::vector<SpanRec> retained_;
};

}  // namespace edc

#endif  // EDC_OBS_TRACE_H_
