// Tuple-space types and wire protocol of the DepSpace-like service.
//
// The data model is an augmented tuple space (Linda heritage): tuples are
// sequences of int/string fields; templates match them field-wise with
// exact, wildcard (ANY) and prefix (SUB_ANY-style, for hierarchical names)
// entries. The coordination-object mapping used by the recipes stores each
// object as the pair <path, data>.
//
// Client requests ride inside BftRequest payloads (packet types are the BFT
// range); this header defines their encoding.

#ifndef EDC_DS_TYPES_H_
#define EDC_DS_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "edc/common/codec.h"
#include "edc/common/result.h"
#include "edc/sim/time.h"

namespace edc {

using DsField = std::variant<int64_t, std::string>;

struct DsTField {
  enum class Kind : uint8_t { kExact = 0, kAny = 1, kPrefix = 2 };
  Kind kind = Kind::kAny;
  DsField value;  // kExact: full match; kPrefix: string path prefix

  static DsTField Exact(DsField v) { return DsTField{Kind::kExact, std::move(v)}; }
  static DsTField Any() { return DsTField{Kind::kAny, int64_t{0}}; }
  static DsTField Prefix(std::string p) { return DsTField{Kind::kPrefix, std::move(p)}; }
};

using DsTuple = std::vector<DsField>;
using DsTemplate = std::vector<DsTField>;

bool FieldMatches(const DsTField& tf, const DsField& f);
// A template matches a tuple of the same arity whose every field matches.
bool TupleMatches(const DsTemplate& templ, const DsTuple& tuple);

std::string FieldToString(const DsField& f);
std::string TupleToString(const DsTuple& t);

// Coordination-object helpers (Table 2 mapping: object = <path, data>).
DsTuple ObjectTuple(const std::string& path, const std::string& data);
DsTemplate ObjectTemplate(const std::string& path);          // exact path, ANY data
DsTemplate ObjectPrefixTemplate(const std::string& prefix);  // path prefix, ANY data

void EncodeField(Encoder& enc, const DsField& f);
Result<DsField> DecodeField(Decoder& dec);
void EncodeTuple(Encoder& enc, const DsTuple& t);
Result<DsTuple> DecodeTuple(Decoder& dec);
void EncodeTemplate(Encoder& enc, const DsTemplate& t);
Result<DsTemplate> DecodeTemplate(Decoder& dec);

enum class DsOpType : uint8_t {
  kOut = 0,      // insert tuple (lease > 0: lease tuple, the monitor primitive)
  kRdp = 1,      // read, non-blocking (null if no match)
  kInp = 2,      // remove, non-blocking
  kRd = 3,       // read, BLOCKS until a match exists
  kIn = 4,       // remove, BLOCKS until a match exists
  kCas = 5,      // out(tuple) iff no tuple matches templ (DepSpace cas)
  kReplace = 6,  // atomically inp(templ) + out(tuple)
  kRdAll = 7,    // read all matches
  kRenew = 8,    // extend leases of matching tuples owned by the caller
  // Administrative (docs/sharding.md): raise the replica group's replicated
  // shard-map version to this op's map_version. Ordered like any other op so
  // every replica flips to rejecting stale clients at the same point in the
  // execution sequence — a per-replica check would split votes.
  kSetMapVersion = 9,
};

struct DsOp {
  DsOpType type = DsOpType::kRdp;
  DsTuple tuple;
  DsTemplate templ;
  Duration lease = 0;
  // Shard-map version the client routed with; replicas whose replicated
  // version is newer reject with kShardMapStale. 0 = standalone client.
  uint64_t map_version = 0;

  std::vector<uint8_t> Encode() const;
  static Result<DsOp> Decode(const std::vector<uint8_t>& buf);
};

struct DsReply {
  ErrorCode code = ErrorCode::kOk;
  std::vector<DsTuple> tuples;  // rdp/inp/rd/in: 0 or 1; rdAll: n
  std::string value;            // extension result / error message

  std::vector<uint8_t> Encode() const;
  static Result<DsReply> Decode(const std::vector<uint8_t>& buf);
};

}  // namespace edc

#endif  // EDC_DS_TYPES_H_
