// Cross-shard atomic multi (recipes/two_phase.h) on a live sharded EZK
// fixture: commit across shards, abort on a lock conflict with no partial
// state, retry after the conflict clears — plus the prefix-parameterized
// counter/queue recipes pinned to a chosen shard via SubtreeForShard.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "edc/harness/fixture.h"
#include "edc/recipes/recipes.h"
#include "edc/recipes/two_phase.h"
#include "edc/route/shard_router.h"

namespace edc {
namespace {

FixtureOptions ShardedEzk(size_t shards, size_t clients) {
  FixtureOptions options;
  options.system = SystemKind::kExtensibleZooKeeper;
  options.num_clients = clients;
  options.num_shards = shards;
  return options;
}

// Registers + acknowledges the participant extension on every shard.
void SetupTwoPhase(CoordFixture& fixture, ZkTwoPhase& tp) {
  Status setup = Status(ErrorCode::kInternal, "unset");
  tp.Setup([&](Status s) { setup = s; });
  fixture.Settle(Seconds(3));
  ASSERT_TRUE(setup.ok()) << setup.ToString();
  Status attach = Status(ErrorCode::kInternal, "unset");
  tp.Attach([&](Status s) { attach = s; });
  fixture.Settle(Seconds(2));
  ASSERT_TRUE(attach.ok()) << attach.ToString();
}

std::string ReadVia(CoordFixture& fixture, ZkShardRouter* router, const std::string& path,
                    bool* exists = nullptr) {
  std::string data = "<unset>";
  bool found = false;
  bool done = false;
  router->GetData(path, false, [&](Result<ZkApi::NodeResult> r) {
    done = true;
    found = r.ok();
    if (r.ok()) {
      data = r->data;
    }
  });
  fixture.Settle(Seconds(2));
  EXPECT_TRUE(done);
  if (exists != nullptr) {
    *exists = found;
  }
  return found ? data : "";
}

TEST(TwoPhaseTest, CrossShardCommitIsAtomicAndVisible) {
  CoordFixture fixture(ShardedEzk(4, 1));
  fixture.Start();
  ZkShardRouter* router = fixture.zk_router(0);
  ZkTwoPhase tp(router);
  SetupTwoPhase(fixture, tp);

  const ShardMap& map = fixture.shard_map();
  std::string a = map.SubtreeForShard("/ta", 0);
  std::string b = map.SubtreeForShard("/tb", 1);
  std::string c = map.SubtreeForShard("/tc", 2);
  ASSERT_NE(map.IndexFor(CoordKey::ForPath(a)), map.IndexFor(CoordKey::ForPath(b)));

  Status multi = Status(ErrorCode::kInternal, "unset");
  tp.Multi({TwoPhaseOp::Create(a, "va"), TwoPhaseOp::Create(b, "vb"),
            TwoPhaseOp::Create(c, "vc")},
           [&](Status s) { multi = s; });
  fixture.Settle(Seconds(5));
  ASSERT_TRUE(multi.ok()) << multi.ToString();
  EXPECT_EQ(tp.transactions(), 1);

  EXPECT_EQ(ReadVia(fixture, router, a), "va");
  EXPECT_EQ(ReadVia(fixture, router, b), "vb");
  EXPECT_EQ(ReadVia(fixture, router, c), "vc");

  // Second round: update + delete across the same shards, same atomicity.
  Status round2 = Status(ErrorCode::kInternal, "unset");
  tp.Multi({TwoPhaseOp::Update(a, "va2"), TwoPhaseOp::Delete(b)},
           [&](Status s) { round2 = s; });
  fixture.Settle(Seconds(5));
  ASSERT_TRUE(round2.ok()) << round2.ToString();

  EXPECT_EQ(ReadVia(fixture, router, a), "va2");
  bool b_exists = true;
  ReadVia(fixture, router, b, &b_exists);
  EXPECT_FALSE(b_exists);
  EXPECT_EQ(ReadVia(fixture, router, c), "vc");
}

TEST(TwoPhaseTest, LockConflictAbortsWithoutPartialState) {
  CoordFixture fixture(ShardedEzk(4, 1));
  fixture.Start();
  ZkShardRouter* router = fixture.zk_router(0);
  ZkTwoPhase tp(router);
  SetupTwoPhase(fixture, tp);

  const ShardMap& map = fixture.shard_map();
  std::string free_path = map.SubtreeForShard("/fa", 0);
  std::string locked_path = map.SubtreeForShard("/fb", 1);

  // Plant a foreign lock for locked_path directly on its owning shard (the
  // participant flattens "/fb<salt>" to "_fb<salt>" under /2pc-locks). This
  // is exactly the state a concurrent coordinator's prepare leaves behind.
  uint32_t owner_shard = map.entry(map.IndexFor(CoordKey::ForPath(locked_path))).shard_id;
  ZkClient* sub = router->shard_client(owner_shard);
  ASSERT_NE(sub, nullptr);
  std::string flat = "_" + locked_path.substr(1);  // single component
  Status planted = Status(ErrorCode::kInternal, "unset");
  sub->Create("/2pc-locks", "", false, false, [](Result<std::string>) {});
  sub->Create("/2pc-locks/" + flat, "t9999-1", false, false,
              [&](Result<std::string> r) { planted = r.status(); });
  fixture.Settle(Seconds(2));
  ASSERT_TRUE(planted.ok()) << planted.ToString();

  // The transaction must abort everywhere: no created nodes on either shard,
  // no staged bodies left behind, and the foreign lock untouched.
  Status multi = Status::Ok();
  tp.Multi({TwoPhaseOp::Create(free_path, "x"), TwoPhaseOp::Create(locked_path, "y")},
           [&](Status s) { multi = s; });
  fixture.Settle(Seconds(5));
  EXPECT_FALSE(multi.ok());

  bool exists = true;
  ReadVia(fixture, router, free_path, &exists);
  EXPECT_FALSE(exists) << "aborted txn leaked a node on the unlocked shard";
  ReadVia(fixture, router, locked_path, &exists);
  EXPECT_FALSE(exists);
  EXPECT_EQ(ReadVia(fixture, router, "/2pc-locks/" + flat), "t9999-1");

  // No staged slice may survive the abort on any shard.
  for (size_t s = 0; s < map.size(); ++s) {
    ZkClient* shard_sub = router->shard_client(map.entry(s).shard_id);
    if (shard_sub == nullptr) {
      continue;
    }
    std::vector<std::string> staged;
    bool listed = false;
    shard_sub->GetChildren("/2pc-stage", false,
                           [&](Result<std::vector<std::string>> r) {
                             listed = true;
                             if (r.ok()) {
                               staged = *r;
                             }
                           });
    fixture.Settle(Seconds(1));
    EXPECT_TRUE(listed);
    EXPECT_TRUE(staged.empty()) << "shard " << s << " kept a staged txn";
  }

  // Once the foreign lock clears, the same ops go through.
  Status unlock = Status(ErrorCode::kInternal, "unset");
  sub->Delete("/2pc-locks/" + flat, -1, [&](Status s) { unlock = s; });
  fixture.Settle(Seconds(1));
  ASSERT_TRUE(unlock.ok()) << unlock.ToString();

  Status retry = Status(ErrorCode::kInternal, "unset");
  tp.Multi({TwoPhaseOp::Create(free_path, "x"), TwoPhaseOp::Create(locked_path, "y")},
           [&](Status s) { retry = s; });
  fixture.Settle(Seconds(5));
  ASSERT_TRUE(retry.ok()) << retry.ToString();
  EXPECT_EQ(ReadVia(fixture, router, free_path), "x");
  EXPECT_EQ(ReadVia(fixture, router, locked_path), "y");
}

TEST(TwoPhaseTest, SingleShardTransactionWorks) {
  CoordFixture fixture(ShardedEzk(2, 1));
  fixture.Start();
  ZkShardRouter* router = fixture.zk_router(0);
  ZkTwoPhase tp(router);
  SetupTwoPhase(fixture, tp);

  const ShardMap& map = fixture.shard_map();
  std::string p1 = map.SubtreeForShard("/sa", 1);
  std::string p2 = map.SubtreeForShard("/sb", 1);

  Status multi = Status(ErrorCode::kInternal, "unset");
  tp.Multi({TwoPhaseOp::Create(p1, "one"), TwoPhaseOp::Create(p2, "two")},
           [&](Status s) { multi = s; });
  fixture.Settle(Seconds(5));
  ASSERT_TRUE(multi.ok()) << multi.ToString();
  EXPECT_EQ(ReadVia(fixture, router, p1), "one");
  EXPECT_EQ(ReadVia(fixture, router, p2), "two");
}

// The participant handler's certification is what the interval/length
// analysis layer exists for: every 2PC prepare/commit on every shard must be
// a certified invocation dispatched to the bytecode VM, not the metered tree
// walker (docs/static_analysis.md). A precision regression that decertifies
// the handler shows up here as vm_dispatches < invocations.
TEST(TwoPhaseTest, ParticipantHandlerIsCertifiedAndRunsOnVm) {
  FixtureOptions options = ShardedEzk(4, 1);
  options.observability = true;
  CoordFixture fixture(options);
  fixture.Start();
  ZkShardRouter* router = fixture.zk_router(0);
  ZkTwoPhase tp(router);
  SetupTwoPhase(fixture, tp);

  const ShardMap& map = fixture.shard_map();
  std::string a = map.SubtreeForShard("/ma", 0);
  std::string b = map.SubtreeForShard("/mb", 1);
  Status multi = Status(ErrorCode::kInternal, "unset");
  tp.Multi({TwoPhaseOp::Create(a, "va"), TwoPhaseOp::Create(b, "vb")},
           [&](Status s) { multi = s; });
  fixture.Settle(Seconds(5));
  ASSERT_TRUE(multi.ok()) << multi.ToString();

  // Registration compiled the handler on every shard, and every invocation
  // (prepare + commit on two shards) was certified and VM-dispatched.
  int64_t invocations = fixture.obs().metrics.CounterValue("ext.invocations");
  EXPECT_GT(fixture.obs().metrics.CounterValue("ext.compiled"), 0);
  EXPECT_GT(invocations, 0);
  EXPECT_EQ(fixture.obs().metrics.CounterValue("ext.certified"), invocations);
  EXPECT_EQ(fixture.obs().metrics.CounterValue("ext.vm_dispatches"), invocations);
}

// --- Prefix-parameterized recipes pinned to a shard ----------------------

TEST(ShardedRecipesTest, PrefixedCountersRunIndependentlyPerShard) {
  CoordFixture fixture(ShardedEzk(4, 2));
  fixture.Start();
  const ShardMap& map = fixture.shard_map();

  // One counter per shard, each namespaced under a subtree pinned to that
  // shard; increments on one never touch the others.
  std::vector<std::unique_ptr<SharedCounter>> counters;
  for (size_t s = 0; s < 2; ++s) {
    std::string prefix = map.SubtreeForShard("/g" + std::to_string(s), s);
    counters.push_back(std::make_unique<SharedCounter>(fixture.coord(0), true, prefix));
    Status setup = Status(ErrorCode::kInternal, "unset");
    counters[s]->Setup([&](Status st) { setup = st; });
    fixture.Settle(Seconds(3));
    ASSERT_TRUE(setup.ok()) << "shard " << s << ": " << setup.ToString();
  }

  std::vector<int64_t> finals(2, 0);
  for (size_t s = 0; s < 2; ++s) {
    int target = s == 0 ? 5 : 3;
    for (int i = 0; i < target; ++i) {
      counters[s]->Increment([&, s](Result<int64_t> r) {
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        finals[s] = *r;
      });
    }
    fixture.Settle(Seconds(3));
  }
  EXPECT_EQ(finals[0], 5);
  EXPECT_EQ(finals[1], 3);

  // A second client attaches to shard 0's counter and continues the count —
  // the extension is shared per-namespace, not per-client.
  std::string prefix0 = map.SubtreeForShard("/g0", 0);
  SharedCounter other(fixture.coord(1), true, prefix0);
  Status attach = Status(ErrorCode::kInternal, "unset");
  other.Attach([&](Status st) { attach = st; });
  fixture.Settle(Seconds(2));
  ASSERT_TRUE(attach.ok()) << attach.ToString();
  int64_t value = 0;
  other.Increment([&](Result<int64_t> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    value = *r;
  });
  fixture.Settle(Seconds(2));
  EXPECT_EQ(value, 6);
}

TEST(ShardedRecipesTest, PrefixedQueueOnPinnedShard) {
  CoordFixture fixture(ShardedEzk(2, 2));
  fixture.Start();
  const ShardMap& map = fixture.shard_map();
  std::string prefix = map.SubtreeForShard("/q", 1);

  DistributedQueue producer(fixture.coord(0), true, prefix);
  Status setup = Status(ErrorCode::kInternal, "unset");
  producer.Setup([&](Status st) { setup = st; });
  fixture.Settle(Seconds(3));
  ASSERT_TRUE(setup.ok()) << setup.ToString();

  for (int i = 0; i < 3; ++i) {
    producer.Add("e" + std::to_string(i), "item" + std::to_string(i), [](Status st) {
      ASSERT_TRUE(st.ok()) << st.ToString();
    });
    fixture.Settle(Millis(300));  // distinct creation timestamps
  }
  fixture.Settle(Seconds(2));

  DistributedQueue consumer(fixture.coord(1), true, prefix);
  Status attach = Status(ErrorCode::kInternal, "unset");
  consumer.Attach([&](Status st) { attach = st; });
  fixture.Settle(Seconds(2));
  ASSERT_TRUE(attach.ok()) << attach.ToString();

  std::vector<std::string> drained;
  for (int i = 0; i < 3; ++i) {
    consumer.Remove([&](Result<std::string> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      drained.push_back(*r);
    });
    fixture.Settle(Seconds(2));
  }
  EXPECT_EQ(drained, (std::vector<std::string>{"item0", "item1", "item2"}));
}

}  // namespace
}  // namespace edc
