// Replicated state transactions.
//
// The leader's preprocessor resolves every request into a deterministic
// transaction (sequential names expanded, versions checked) which followers
// apply blindly — exactly ZooKeeper's split. A ZkTxn may batch several
// TxnOps; EZK's extension manager uses this "multi-transaction" form to make
// an extension's whole write set atomic and to piggyback the extension's
// result back to the client-owning replica (paper §5.1.2).

#ifndef EDC_ZK_TXN_H_
#define EDC_ZK_TXN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "edc/common/codec.h"
#include "edc/common/result.h"
#include "edc/sim/time.h"

namespace edc {

enum class ZkTxnOpType : uint8_t {
  kCreate = 0,        // path (final), data, ephemeral_owner
  kDelete = 1,        // path
  kSetData = 2,       // path, data
  kCreateSession = 3, // session + session_owner (replica holding the connection)
  kCloseSession = 4,  // session; apply deletes all its ephemerals
  kBlock = 5,         // path, session, req_id: reply when path gets created
};

struct ZkTxnOp {
  ZkTxnOpType type = ZkTxnOpType::kCreate;
  std::string path;
  std::string data;
  uint64_t ephemeral_owner = 0;  // kCreate
  uint64_t session = 0;          // kCreateSession/kCloseSession/kBlock
  uint32_t session_owner = 0;    // kCreateSession: replica owning the connection
  uint64_t req_id = 0;           // kBlock

  void Encode(Encoder& enc) const;
  static Result<ZkTxnOp> Decode(Decoder& dec);
};

struct ZkTxn {
  uint64_t session = 0;  // originating session (0 = internal, e.g. event extension)
  uint64_t req_id = 0;
  SimTime time = 0;  // leader-assigned, used for ctime/mtime
  std::vector<ZkTxnOp> ops;
  // Extension result piggybacked to the replica owning `session` (§5.1.2).
  bool has_result = false;
  std::string result;
  // Length of the event-extension chain that produced this transaction
  // (0 = client request); bounds extension-triggered cascades.
  uint8_t ext_depth = 0;

  std::vector<uint8_t> Encode() const;
  static Result<ZkTxn> Decode(const std::vector<uint8_t>& buf);
};

}  // namespace edc

#endif  // EDC_ZK_TXN_H_
