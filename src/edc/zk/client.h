// Asynchronous client library for the ZooKeeper-like service.
//
// One client object = one session against one replica. All calls are
// callback-based (the simulator is a single event loop). The EZK extension
// conveniences follow §5.1.2: registration and deregistration map to plain
// create/delete operations on the extension manager's /em subtree — the
// coordination kernel itself is unchanged.

#ifndef EDC_ZK_CLIENT_H_
#define EDC_ZK_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"
#include "edc/zk/types.h"

namespace edc {

struct ZkClientOptions {
  Duration session_timeout = Seconds(5);
  Duration ping_interval = Seconds(1);
  Duration connect_retry = Millis(200);
};

class ZkClient : public NetworkNode {
 public:
  struct NodeResult {
    std::string data;
    ZkStat stat;
  };
  struct ExistsResult {
    bool exists = false;
    ZkStat stat;
  };

  using VoidCb = std::function<void(Status)>;
  using StringCb = std::function<void(Result<std::string>)>;
  using NodeCb = std::function<void(Result<NodeResult>)>;
  using ExistsCb = std::function<void(Result<ExistsResult>)>;
  using ChildrenCb = std::function<void(Result<std::vector<std::string>>)>;
  using ReplyCb = std::function<void(const ZkReplyMsg&)>;
  using WatchCb = std::function<void(const ZkWatchEventMsg&)>;

  ZkClient(EventLoop* loop, Network* net, NodeId id, NodeId server, ZkClientOptions options);

  ZkClient(const ZkClient&) = delete;
  ZkClient& operator=(const ZkClient&) = delete;

  void Connect(VoidCb done);
  void Close(VoidCb done);

  void Create(const std::string& path, const std::string& data, bool ephemeral,
              bool sequential, StringCb done);
  void Delete(const std::string& path, int32_t version, VoidCb done);
  void Exists(const std::string& path, bool watch, ExistsCb done);
  void GetData(const std::string& path, bool watch, NodeCb done);
  void SetData(const std::string& path, const std::string& data, int32_t version,
               VoidCb done);
  void GetChildren(const std::string& path, bool watch, ChildrenCb done);
  void Multi(std::vector<ZkOp> ops, VoidCb done);

  // Low-level escape hatch: send any op, get the raw reply (extension-based
  // recipes use this for ops whose replies carry extension results).
  void Request(ZkOp op, ReplyCb done);

  // Watch notifications for this session (one handler; recipes demultiplex).
  void SetWatchHandler(WatchCb handler) { watch_handler_ = std::move(handler); }

  // EZK conveniences (§5.1.2).
  void RegisterExtension(const std::string& name, const std::string& code, VoidCb done);
  void DeregisterExtension(const std::string& name, VoidCb done);
  void AcknowledgeExtension(const std::string& name, VoidCb done);

  bool connected() const { return session_ != 0; }
  uint64_t session() const { return session_; }
  NodeId id() const { return id_; }

  // NetworkNode.
  void HandlePacket(Packet&& pkt) override;

 private:
  void SendConnect();
  void SendPing();
  void SendRequest(ZkOp op, ReplyCb done);
  static Status StatusOf(const ZkReplyMsg& reply);

  EventLoop* loop_;
  Network* net_;
  NodeId id_;
  NodeId server_;
  ZkClientOptions options_;

  uint64_t session_ = 0;
  uint64_t next_req_ = 0;
  VoidCb connect_cb_;
  std::map<uint64_t, ReplyCb> pending_;
  WatchCb watch_handler_;
  TimerId ping_timer_ = kInvalidTimer;
  bool closing_ = false;
};

}  // namespace edc

#endif  // EDC_ZK_CLIENT_H_
