// AST -> register bytecode compiler for certified CoordScript handlers.
//
// Lowering performed here (docs/bytecode_vm.md):
//   * static scope resolution — every variable becomes a register; shadowing
//     and block lifetimes mirror the interpreter's scope stack exactly
//   * constant folding of pure literal subtrees, carrying the interpreter's
//     dynamic step count for the folded nodes (short-circuit aware) so
//     accounting is unchanged
//   * builtin calls resolved to BuiltinsByIndex() indices at compile time
//   * short-circuit && / || lowered to conditional jumps
//   * foreach lowered to cached-iterator instructions, annotated with the
//     loop bound the analyzer proved (literal list length or the sandbox's
//     collection cap) and type-check-free when the source is a list literal
//
// The compiler refuses anything it cannot lower with bit-identical semantics
// and step accounting (e.g. a variable the scoping passes could not resolve,
// which the interpreter reports lazily at runtime): the handler is then
// simply absent from the CompiledModule and the binding keeps interpreting
// it. Compilation never changes behavior, only speed.

#ifndef EDC_SCRIPT_VM_COMPILER_H_
#define EDC_SCRIPT_VM_COMPILER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "edc/script/analysis/analyzer.h"
#include "edc/script/ast.h"
#include "edc/script/vm/bytecode.h"

namespace edc {

struct CompileOptions {
  // Host functions whose result size the sandbox caps (children,
  // sub_objects, ...): feeds the foreach loop-bound annotation.
  std::set<std::string> collection_functions;
  int64_t max_collection_items = 256;
};

// Compiles one handler. Returns false (leaving *out unspecified) on any
// construct the compiler cannot lower faithfully.
bool CompileHandler(const Handler& handler, const CompileOptions& options,
                    int64_t step_bound, CompiledHandler* out);

// Compiles every handler the analyzer certified (reports[name].certified).
// Handlers that are uncertified or fail to compile are absent from the
// returned module and fall back to the interpreter.
CompiledModule CompileProgram(const Program& program,
                              const std::map<std::string, HandlerReport>& reports,
                              const CompileOptions& options);

}  // namespace edc

#endif  // EDC_SCRIPT_VM_COMPILER_H_
