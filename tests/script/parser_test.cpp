#include "edc/script/parser.h"

#include <gtest/gtest.h>

namespace edc {
namespace {

constexpr char kCounter[] = R"(
extension ctr_increment {
  on op read "/ctr-increment";
  fn read(oid) {
    let c = parse_int(get(read_object("/ctr"), "data"));
    update("/ctr", str(c + 1));
    return c + 1;
  }
}
)";

TEST(ParserTest, ParsesCounterExtension) {
  auto prog = ParseProgram(kCounter);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ((*prog)->name, "ctr_increment");
  ASSERT_EQ((*prog)->subscriptions.size(), 1u);
  EXPECT_FALSE((*prog)->subscriptions[0].is_event);
  EXPECT_EQ((*prog)->subscriptions[0].kind, "read");
  EXPECT_EQ((*prog)->subscriptions[0].pattern, "/ctr-increment");
  EXPECT_FALSE((*prog)->subscriptions[0].prefix);
  ASSERT_EQ((*prog)->handlers.size(), 1u);
  EXPECT_EQ((*prog)->handlers.begin()->second.params.size(), 1u);
}

TEST(ParserTest, PrefixPatternStripsStar) {
  auto prog = ParseProgram(R"(
    extension q { on op read "/queue/*"; fn read(oid) { return null; } })");
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE((*prog)->subscriptions[0].prefix);
  EXPECT_EQ((*prog)->subscriptions[0].pattern, "/queue");
}

TEST(ParserTest, EventSubscription) {
  auto prog = ParseProgram(R"(
    extension e { on event deleted "/clients/*"; fn on_deleted(oid) { return null; } })");
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE((*prog)->subscriptions[0].is_event);
  EXPECT_EQ((*prog)->subscriptions[0].kind, "deleted");
}

TEST(ParserTest, AllStatementForms) {
  auto prog = ParseProgram(R"(
    extension s {
      on op any "/x";
      fn handle_op(req) {
        let a = 1;
        a = a + 1;
        if (a > 1) { a = 2; } else if (a == 0) { a = 3; } else { a = 4; }
        foreach (x in [1, 2, 3]) { a = a + x; }
        len("side effect");
        return a;
      }
    })");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const Handler& h = (*prog)->handlers.begin()->second;
  EXPECT_EQ(h.body.size(), 6u);
  EXPECT_EQ(h.body[0]->kind, Stmt::Kind::kLet);
  EXPECT_EQ(h.body[1]->kind, Stmt::Kind::kAssign);
  EXPECT_EQ(h.body[2]->kind, Stmt::Kind::kIf);
  EXPECT_EQ(h.body[3]->kind, Stmt::Kind::kForEach);
  EXPECT_EQ(h.body[4]->kind, Stmt::Kind::kExpr);
  EXPECT_EQ(h.body[5]->kind, Stmt::Kind::kReturn);
}

TEST(ParserTest, PrecedenceMulBeforeAdd) {
  auto prog = ParseProgram(R"(
    extension p { on op any "/x"; fn handle_op(r) { return 1 + 2 * 3; } })");
  ASSERT_TRUE(prog.ok());
  const Stmt& ret = *(*prog)->handlers.begin()->second.body[0];
  ASSERT_EQ(ret.expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(ret.expr->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(ret.expr->rhs->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, IndexingAndCalls) {
  auto prog = ParseProgram(R"(
    extension p { on op any "/x"; fn handle_op(r) { return r["a"][0]; } })");
  ASSERT_TRUE(prog.ok());
  const Stmt& ret = *(*prog)->handlers.begin()->second.body[0];
  EXPECT_EQ(ret.expr->kind, Expr::Kind::kIndex);
  EXPECT_EQ(ret.expr->lhs->kind, Expr::Kind::kIndex);
}

struct BadCase {
  const char* name;
  const char* src;
};

class ParserRejectTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserRejectTest, Rejects) {
  auto prog = ParseProgram(GetParam().src);
  EXPECT_FALSE(prog.ok()) << GetParam().name;
  if (!prog.ok()) {
    EXPECT_EQ(prog.code(), ErrorCode::kExtensionRejected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserRejectTest,
    ::testing::Values(
        BadCase{"empty", ""},
        BadCase{"no_handlers", "extension e { on op read \"/x\"; }"},
        BadCase{"missing_brace", "extension e { fn read(o) { return 1; }"},
        BadCase{"missing_semicolon", "extension e { fn read(o) { return 1 } }"},
        BadCase{"while_keyword_absent", "extension e { fn read(o) { while (1) {} } }"},
        BadCase{"duplicate_handler",
                "extension e { fn read(o) { return 1; } fn read(o) { return 2; } }"},
        BadCase{"trailing_garbage", "extension e { fn read(o) { return 1; } } extra"},
        BadCase{"bad_subscription", "extension e { on banana read \"/x\"; fn read(o){return 1;} }"},
        BadCase{"unclosed_paren", "extension e { fn read(o) { return (1 + 2; } }"},
        BadCase{"unclosed_list", "extension e { fn read(o) { return [1, 2; } }"}),
    [](const ::testing::TestParamInfo<BadCase>& info) { return info.param.name; });

TEST(ParserTest, RecordsSourceSize) {
  std::string src = "extension e { on op read \"/x\"; fn read(o) { return 1; } }";
  auto prog = ParseProgram(src);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ((*prog)->source_bytes, src.size());
}

}  // namespace
}  // namespace edc
