// Token stream for the CoordScript lexer.

#ifndef EDC_SCRIPT_TOKEN_H_
#define EDC_SCRIPT_TOKEN_H_

#include <cstdint>
#include <string>

namespace edc {

enum class TokenKind {
  // Literals / identifiers.
  kInt,
  kString,
  kIdent,
  // Keywords.
  kExtension,
  kOn,
  kOp,
  kEvent,
  kFn,
  kLet,
  kIf,
  kElse,
  kForeach,
  kIn,
  kReturn,
  kTrue,
  kFalse,
  kNull,
  // Punctuation.
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kAssign,
  // Operators.
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kBang,
  // Sentinel.
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // identifier name or string literal contents
  int64_t int_value = 0;
  int line = 0;
  int col = 0;  // 1-based column of the token's first character
};

const char* TokenKindName(TokenKind kind);

}  // namespace edc

#endif  // EDC_SCRIPT_TOKEN_H_
