// CoordScript sources of the extension-based recipes (paper Figs. 5/7/9/11).
//
// The same sources register unchanged against EZK and EDS: they only use
// deterministic white-listed functions. Path prefix lengths are hardcoded in
// substr() calls ("/enter/" = 7, "/leader/" = 8, "/clients/" = 9).

#ifndef EDC_RECIPES_SCRIPTS_H_
#define EDC_RECIPES_SCRIPTS_H_

namespace edc {

// Fig. 5: shared counter. One RPC to /ctr-increment reads, bumps and returns
// the counter atomically.
inline constexpr char kCounterExtension[] = R"(
extension ctr_increment {
  on op read "/ctr-increment";
  fn read(oid) {
    let obj = read_object("/ctr");
    if (obj == null) { return error("no counter object"); }
    let c = parse_int(get(obj, "data"));
    update("/ctr", str(c + 1));
    return c + 1;
  }
}
)";

// Fig. 7: distributed queue. One RPC to /queue/head removes and returns the
// oldest element atomically.
inline constexpr char kQueueExtension[] = R"(
extension queue_remove {
  on op read "/queue/head";
  fn read(oid) {
    let objs = sub_objects("/queue");
    if (len(objs) == 0) { return error("empty"); }
    let head = min_by(objs, "ctime");
    delete_object(get(head, "path"));
    return get(head, "data");
  }
}
)";

// Fig. 9: distributed barrier. A single blocking RPC registers the caller
// and releases everyone when the group (size in /barrier-size) is complete.
inline constexpr char kBarrierExtension[] = R"(
extension barrier_enter {
  on op block "/enter/*";
  fn block(oid) {
    let cid = substr(oid, 7, len(oid) - 7);
    if (!exists("/barrier/" + cid)) {
      create("/barrier/" + cid, "");
    }
    let objs = sub_objects("/barrier");
    let size_obj = read_object("/barrier-size");
    if (size_obj == null) { return error("no barrier size"); }
    let n = parse_int(get(size_obj, "data"));
    if (len(objs) < n) {
      block("/barrier-ready");
    } else {
      if (!exists("/barrier-ready")) {
        create("/barrier-ready", "");
      }
    }
    return null;
  }
}
)";

// Fig. 11: leader election. becomeLeader blocks on /leader/<cid>; the
// extension monitors the caller and appoints successors when a leader's id
// object disappears (combined operation + event extension).
inline constexpr char kElectionExtension[] = R"(
extension leader_elect {
  on op block "/leader/*";
  on event deleted "/clients/*";
  fn block(oid) {
    let cid = substr(oid, 8, len(oid) - 8);
    if (!exists("/clients/" + cid)) {
      monitor(cid, "/clients/" + cid);
    }
    let objs = sub_objects("/clients");
    let ldr = min_by(objs, "ctime");
    let lpath = get(ldr, "path");
    let lid = substr(lpath, 9, len(lpath) - 9);
    if (lid == cid && !exists("/leader/" + cid)) {
      create("/leader/" + cid, "");
    }
    block(oid);
    return null;
  }
  fn on_deleted(oid) {
    let cid = substr(oid, 9, len(oid) - 9);
    if (exists("/leader/" + cid)) {
      delete_object("/leader/" + cid);
    }
    let objs = sub_objects("/clients");
    if (len(objs) > 0) {
      let ldr = min_by(objs, "ctime");
      let lpath = get(ldr, "path");
      let lid = substr(lpath, 9, len(lpath) - 9);
      if (!exists("/leader/" + lid)) {
        create("/leader/" + lid, "");
      }
    }
    return null;
  }
}
)";

// §7.2: SCFS-style atomic rename. Updating /scfs-rename with "old|new"
// atomically rewrites a directory object and every child's parent pointer —
// impossible to express as client-side operations without extensions.
inline constexpr char kRenameExtension[] = R"(
extension scfs_rename {
  on op update "/scfs-rename";
  fn update(oid, spec) {
    let sep = index_of(spec, "|");
    if (sep < 1) { return error("rename spec must be old|new"); }
    let old_path = substr(spec, 0, sep);
    let new_path = substr(spec, sep + 1, len(spec) - sep - 1);
    let obj = read_object(old_path);
    if (obj == null) { return error("no such object"); }
    if (exists(new_path)) { return error("target exists"); }
    create(new_path, get(obj, "data"));
    foreach (child in sub_objects(old_path)) {
      let child_path = get(child, "path");
      let name = substr(child_path, len(old_path) + 1,
                        len(child_path) - len(old_path) - 1);
      create(new_path + "/" + name, get(child, "data"));
      delete_object(child_path);
    }
    delete_object(old_path);
    return new_path;
  }
}
)";

// Cross-shard atomic multi (docs/sharding.md): each shard runs this handler
// as the participant of a two-phase commit driven by the ZkTwoPhase
// coordinator (two_phase.h). The trigger paths are prefix subscriptions
// because the coordinator salts them per shard ("/2pc-prepare<salt>") to pin
// each leg onto its participant shard's consistent-hash arc.
//
// prepare spec: "txid|op;op;..." with op = "kind:path[:data]", kind one of
//   c (create/upsert), u (update/upsert), d (delete-if-present).
// Paths and data must not contain ':' ';' or '|'. Lock check runs before any
// mutation, so a conflicting prepare leaves no state behind; locks record the
// owning txid, making prepare/commit/abort idempotent under coordinator
// retries. commit/abort spec: the bare txid.
inline constexpr char kTwoPhaseExtension[] = R"(
extension two_phase {
  on op update "/2pc-prepare*";
  on op update "/2pc-commit*";
  on op update "/2pc-abort*";
  fn update(oid, spec) {
    if (!exists("/2pc-locks")) { create("/2pc-locks", ""); }
    if (!exists("/2pc-stage")) { create("/2pc-stage", ""); }
    if (starts_with(oid, "/2pc-prepare")) {
      let sep = index_of(spec, "|");
      if (sep < 1) { return error("prepare spec must be txid|ops"); }
      let txid = substr(spec, 0, sep);
      let body = substr(spec, sep + 1, len(spec) - sep - 1);
      if (exists("/2pc-stage/" + txid)) { return "prepared"; }
      foreach (item in split(body, ";")) {
        let fields = split(item, ":");
        if (len(fields) < 2) { return error("bad op " + item); }
        let flat = "";
        foreach (seg in split(get(fields, 1), "/")) {
          if (len(seg) > 0) { flat = flat + "_" + seg; }
        }
        let lock = read_object("/2pc-locks/" + flat);
        if (lock != null && get(lock, "data") != txid) {
          return error("locked " + get(fields, 1));
        }
      }
      foreach (item in split(body, ";")) {
        let fields = split(item, ":");
        let flat = "";
        foreach (seg in split(get(fields, 1), "/")) {
          if (len(seg) > 0) { flat = flat + "_" + seg; }
        }
        if (!exists("/2pc-locks/" + flat)) {
          create("/2pc-locks/" + flat, txid);
        }
      }
      create("/2pc-stage/" + txid, body);
      return "prepared";
    }
    if (starts_with(oid, "/2pc-commit")) {
      let stage = read_object("/2pc-stage/" + spec);
      if (stage == null) { return "committed"; }
      foreach (item in split(get(stage, "data"), ";")) {
        let fields = split(item, ":");
        let kind = get(fields, 0);
        let path = get(fields, 1);
        let data = "";
        if (len(fields) > 2) { data = get(fields, 2); }
        if (kind == "c" || kind == "u") {
          if (exists(path)) { update(path, data); } else { create(path, data); }
        }
        if (kind == "d") {
          if (exists(path)) { delete_object(path); }
        }
        let flat = "";
        foreach (seg in split(path, "/")) {
          if (len(seg) > 0) { flat = flat + "_" + seg; }
        }
        let lock = read_object("/2pc-locks/" + flat);
        if (lock != null && get(lock, "data") == spec) {
          delete_object("/2pc-locks/" + flat);
        }
      }
      delete_object("/2pc-stage/" + spec);
      return "committed";
    }
    if (starts_with(oid, "/2pc-abort")) {
      let stage = read_object("/2pc-stage/" + spec);
      if (stage == null) { return "aborted"; }
      foreach (item in split(get(stage, "data"), ";")) {
        let fields = split(item, ":");
        let flat = "";
        foreach (seg in split(get(fields, 1), "/")) {
          if (len(seg) > 0) { flat = flat + "_" + seg; }
        }
        let lock = read_object("/2pc-locks/" + flat);
        if (lock != null && get(lock, "data") == spec) {
          delete_object("/2pc-locks/" + flat);
        }
      }
      delete_object("/2pc-stage/" + spec);
      return "aborted";
    }
    return error("unknown 2pc trigger");
  }
}
)";

}  // namespace edc

#endif  // EDC_RECIPES_SCRIPTS_H_
