file(REMOVE_RECURSE
  "CMakeFiles/zab_test.dir/zab/zab_test.cpp.o"
  "CMakeFiles/zab_test.dir/zab/zab_test.cpp.o.d"
  "zab_test"
  "zab_test.pdb"
  "zab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
