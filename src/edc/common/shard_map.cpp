#include "edc/common/shard_map.h"

#include <algorithm>
#include <cassert>

#include "edc/common/hash.h"

namespace edc {

namespace {

// First path component: "/app/x/y" -> "app", "/app" -> "app", "/" -> "".
std::string SubtreeKey(const std::string& path) {
  size_t start = 0;
  while (start < path.size() && path[start] == '/') {
    ++start;
  }
  size_t end = path.find('/', start);
  if (end == std::string::npos) {
    end = path.size();
  }
  return path.substr(start, end - start);
}

uint64_t VnodePoint(uint32_t shard_id, int vnode) {
  std::string label = "shard:" + std::to_string(shard_id) + "#" + std::to_string(vnode);
  return MixBits(Fnv1a64(label));
}

}  // namespace

CoordKey CoordKey::ForPath(const std::string& path) { return CoordKey(SubtreeKey(path)); }

CoordKey CoordKey::ForField(const std::string& field) {
  if (!field.empty() && field[0] == '/') {
    return CoordKey(SubtreeKey(field));
  }
  return CoordKey(field);
}

uint64_t CoordKey::RingPoint() const { return MixBits(Fnv1a64("key:" + key_)); }

ShardMap ShardMap::Single(ServerList ensemble) {
  ShardMap map;
  map.AddShard(0, std::move(ensemble));
  return map;
}

void ShardMap::AddShard(uint32_t shard_id, ServerList ensemble) {
  for (const ShardEntry& e : entries_) {
    assert(e.shard_id != shard_id && "duplicate shard id");
    (void)e;
  }
  entries_.push_back(ShardEntry{shard_id, std::move(ensemble)});
  ++version_;
  RebuildRing();
}

void ShardMap::RemoveShard(uint32_t shard_id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const ShardEntry& e) { return e.shard_id == shard_id; }),
                 entries_.end());
  ++version_;
  RebuildRing();
}

void ShardMap::RebuildRing() {
  ring_.clear();
  ring_.reserve(entries_.size() * kVnodesPerShard);
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    for (int v = 0; v < kVnodesPerShard; ++v) {
      ring_.emplace_back(VnodePoint(entries_[i].shard_id, v), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t ShardMap::IndexFor(const CoordKey& key) const {
  assert(key.routable() && "routing an unroutable key");
  assert(!ring_.empty() && "routing on an empty shard map");
  uint64_t point = key.RingPoint();
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, uint32_t{0xffffffff}));
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around
  }
  return it->second;
}

std::string ShardMap::SubtreeForShard(const std::string& stem, size_t target) const {
  assert(target < entries_.size());
  for (int salt = 0;; ++salt) {
    std::string path = stem + std::to_string(salt);
    if (IndexFor(CoordKey::ForPath(path)) == target) {
      return path;
    }
  }
}

}  // namespace edc
