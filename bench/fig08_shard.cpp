// Sharded variant of the Fig. 8 distributed-queue bench (docs/sharding.md):
// one independent queue per shard, clients assigned round-robin (client i
// drives shard i % N's queue, alternating add / remove as in Fig. 8).
// Queues are pinned via prefix namespaces found with SubtreeForShard, so
// each shard's ensemble serves only its own queue traffic; the aggregate
// add+remove throughput should scale with the shard count until the fixed
// 64-client offered load becomes the bottleneck.

#include "bench/common.h"

namespace edc {
namespace {

constexpr Duration kWarmup = Seconds(1);
constexpr Duration kMeasure = Seconds(2);
constexpr int kSeeds = 2;
constexpr size_t kClients = 64;

const std::vector<size_t>& ShardSweep() {
  static const std::vector<size_t> kShards{1, 4, 8, 16};
  return kShards;
}

void Main() {
  BenchTable table(
      {"system", "shards", "clients", "kops_per_s", "client_kb_per_op", "vs_1sh"});
  BenchJson json("fig08_shard");
  std::vector<SystemKind> systems{SystemKind::kExtensibleZooKeeper,
                                  SystemKind::kExtensibleDepSpace};
  double ezk_speedup4 = 0;
  double eds_speedup4 = 0;
  for (SystemKind system : systems) {
    double base = 0;
    for (size_t shards : ShardSweep()) {
      SeededAverages avg;
      for (int seed = 0; seed < kSeeds; ++seed) {
        FixtureOptions options;
        options.system = system;
        options.num_clients = kClients;
        options.num_shards = shards;
        options.seed = 8000 + static_cast<uint64_t>(seed);
        options.observability = true;
        options.retain_spans = TraceExportRequested();
        CoordFixture fixture(options);
        fixture.Start();
        auto queues = SetupShardedRecipe<DistributedQueue>(fixture, true, "/q");
        auto op_counters = std::make_shared<std::vector<int64_t>>(kClients, 0);
        ClosedLoop driver(&fixture, [&, op_counters](size_t i,
                                                     std::function<void()> done) {
          std::string id =
              "c" + std::to_string(i) + "-" + std::to_string(++(*op_counters)[i]);
          queues[i]->Add(id, "", [&, i, done = std::move(done)](Status) {
            queues[i]->Remove([done = std::move(done)](Result<std::string>) { done(); });
          });
        });
        RunStats stats = driver.Run(kWarmup, kMeasure);
        // One completed iteration = 2 operations (add + remove).
        double ops = static_cast<double>(stats.ops) * 2.0;
        double ops_per_s = ops / ToSeconds(kMeasure);
        double kb_per_op =
            ops > 0 ? static_cast<double>(stats.client_bytes) / 1024.0 / ops : 0.0;
        std::string label =
            std::string(SystemName(system)) + "-" + std::to_string(shards) + "sh";
        json.AddCustomRow(label, kClients, options.seed, ops_per_s,
                          static_cast<double>(stats.latency.Percentile(0.5)) / 1e6,
                          static_cast<double>(stats.latency.Percentile(0.99)) / 1e6,
                          kb_per_op, &stats.stages);
        MaybeExportTrace(fixture, "fig08_shard_" + label + "_s" + std::to_string(seed));
        avg.throughput.Add(ops_per_s);
        avg.kb_per_op.Add(kb_per_op);
      }
      double tput = avg.throughput.Mean();
      if (shards == 1) {
        base = tput;
      }
      double speedup = base > 0 ? tput / base : 0;
      if (shards == 4 && system == SystemKind::kExtensibleZooKeeper) {
        ezk_speedup4 = speedup;
      }
      if (shards == 4 && system == SystemKind::kExtensibleDepSpace) {
        eds_speedup4 = speedup;
      }
      table.AddRow({std::string(SystemName(system)) + "-" + std::to_string(shards) + "sh",
                    std::to_string(shards), std::to_string(kClients),
                    Fmt(tput / 1000.0), Fmt(avg.kb_per_op.Mean()), Fmt(speedup)});
    }
  }
  std::printf("=== Fig. 8 (sharded): distributed queue, %zu clients (avg of %d runs) ===\n",
              kClients, kSeeds);
  table.Print();
  json.Write();
  std::printf("\nshape check: 1->4 shard aggregate speedup EZK = %.1fx, EDS = %.1fx "
              "(target: >= 3x)\n",
              ezk_speedup4, eds_speedup4);
}

}  // namespace
}  // namespace edc

int main() {
  edc::Main();
  return 0;
}
