// Benchmark fixture: boots one of the four evaluated systems (ZooKeeper,
// EXTENSIBLE ZOOKEEPER, DepSpace, EXTENSIBLE DEPSPACE) inside the simulator
// with the paper's fault threshold (f=1: three ZK replicas / four DepSpace
// replicas) and connects N coordination clients.

#ifndef EDC_HARNESS_FIXTURE_H_
#define EDC_HARNESS_FIXTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "edc/common/rng.h"
#include "edc/common/shard_map.h"
#include "edc/ds/client.h"
#include "edc/ds/server.h"
#include "edc/obs/obs.h"
#include "edc/ext/ds_binding.h"
#include "edc/ext/zk_binding.h"
#include "edc/recipes/coord.h"
#include "edc/route/shard_router.h"
#include "edc/sim/costs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/faults.h"
#include "edc/sim/network.h"
#include "edc/zk/client.h"
#include "edc/zk/server.h"

namespace edc {

enum class SystemKind {
  kZooKeeper,
  kExtensibleZooKeeper,
  kDepSpace,
  kExtensibleDepSpace,
};

const char* SystemName(SystemKind kind);
bool IsExtensible(SystemKind kind);
bool IsZkFamily(SystemKind kind);

struct FixtureOptions {
  SystemKind system = SystemKind::kZooKeeper;
  size_t num_clients = 1;
  uint64_t seed = 1;
  LinkParams link;  // LAN defaults; override for the WAN experiment
  CostModel costs;
  ExtensionLimits limits;
  // Server/client knobs forwarded verbatim to every node of the matching
  // family (conformance tests tighten timeouts and plant test-only bugs).
  ZkServerOptions zk_server;
  ZkClientOptions zk_client;
  DsServerOptions ds_server;
  DsClientOptions ds_client;
  // Observability: when true, Start() wires a shared Obs (tracer + metrics
  // registry) through the network, every server and every client, and
  // installs the event-loop context hooks that carry trace contexts across
  // scheduled callbacks. Instrumentation only reads the simulated clock —
  // enabling it never changes schedules, packet traces or applied logs.
  bool observability = false;
  // Keep finished spans in memory for ExportJson (Perfetto); off = only
  // per-op breakdowns survive.
  bool retain_spans = false;
  // Sharded coordination plane (docs/sharding.md). 1 = the exact legacy
  // single-ensemble topology: raw clients, no ShardMap, no map-version
  // stamping — byte-identical to pre-shard fixtures. >1 boots that many
  // independent ensembles (shard s: ZK replicas {1+10s..3+10s}, DepSpace
  // {1+10s..4+10s}) behind a ShardMap, and every coord(i) drives a
  // ZkShardRouter/DsShardRouter instead of a raw client.
  size_t num_shards = 1;
};

class CoordFixture {
 public:
  explicit CoordFixture(FixtureOptions options);
  ~CoordFixture();

  // Boots servers and connects every client; runs the sim until ready.
  void Start();

  size_t num_clients() const { return coords_.size(); }
  CoordClient* coord(size_t i) { return coords_[i].get(); }
  // Sharded clients are routers owning one sub-client per shard, so their
  // node ids are spaced a ZkShardRouterOptions::id_stride apart.
  NodeId client_node(size_t i) const {
    return options_.num_shards > 1 ? 1000 + static_cast<NodeId>(i) * 64
                                   : 100 + static_cast<NodeId>(i);
  }

  // Raw clients for observer attachment (history recording); index matches
  // coord(i). Null for the other family — and null in sharded mode, where
  // zk_router(i)/ds_router(i) expose the per-shard sub-clients instead.
  ZkClient* zk_client(size_t i) { return i < zk_clients_.size() ? zk_clients_[i].get() : nullptr; }
  DsClient* ds_client(size_t i) { return i < ds_clients_.size() ? ds_clients_[i].get() : nullptr; }

  // Sharded topology (null/empty when num_shards == 1).
  size_t num_shards() const { return options_.num_shards; }
  const ShardMap& shard_map() const { return shard_map_; }
  ZkShardRouter* zk_router(size_t i) {
    return i < zk_routers_.size() ? zk_routers_[i].get() : nullptr;
  }
  DsShardRouter* ds_router(size_t i) {
    return i < ds_routers_.size() ? ds_routers_[i].get() : nullptr;
  }
  // Which shard a SERVER node id belongs to (boot scheme above).
  static uint32_t ServerShardOf(NodeId server_id) {
    return static_cast<uint32_t>((server_id - 1) / 10);
  }
  // This shard's slice of the flat zk_servers/ds_servers vectors.
  std::vector<ZkServer*> ZkShardServers(uint32_t shard) const;
  std::vector<DsServer*> DsShardServers(uint32_t shard) const;

  // Mid-run topology change: boots one more ensemble, adds it to the map
  // (bumping the version) and pushes the new expected version to every
  // replica — ZK admission config directly, DepSpace via the ordered
  // kSetMapVersion admin op. Routers keep using their old map until a
  // replica rejects them as stale; the refresh then re-routes onto the new
  // shard. ZK callers should Settle ~2s afterwards for the new ensemble's
  // election. Requires num_shards > 1 at construction.
  void AddShard();

  EventLoop& loop() { return loop_; }
  Network& net() { return *net_; }
  void Settle(Duration d) { loop_.RunUntil(loop_.now() + d); }

  // --- Dynamic ZK membership (docs/reconfig.md); single-ensemble ZK only ---
  // Boots a brand-new replica as a non-voting observer whose Zab contact list
  // is the current voter set, registers it with the network and the fault
  // injector, and starts it. Does not change the membership itself — pair
  // with AdminReconfig("add_observer N") or use JoinReplica for the full
  // flow. The new replica catches up by snapshot + log suffix as needed.
  ZkServer* BootExtraZkReplica(NodeId id);
  // Issues a single-change reconfig spec ("add_observer 4", "promote 4",
  // "remove 2", ...) through a dedicated admin session and runs the sim
  // until the activation reply arrives. kTimeout if it never does.
  Status AdminReconfig(const std::string& spec, Duration timeout = Seconds(5));
  // Full join flow, safe under concurrent client load: add the node as an
  // observer, boot it, let it catch up (snapshot-ship + log replay), then
  // promote it to voter — retrying while the leader still judges it lagging.
  Status JoinReplica(NodeId id, Duration timeout = Seconds(30));
  // Removes a member (voter or observer). The removed replica retires itself
  // when the change activates; its clients fail over via membership pushes.
  Status RemoveReplica(NodeId id, Duration timeout = Seconds(10));
  // The voter list as seen by any running replica (empty for non-ZK).
  std::vector<NodeId> CurrentZkVoters() const;
  ZkServer* ZkServerById(NodeId id);

  // Fault injection: every server is registered with crash/restart closures
  // at Start(), so plans and direct calls work on either system family.
  FaultInjector& faults() { return *faults_; }
  void RunPlan(const FaultPlan& plan) { faults_->Run(plan); }

  // Total bytes clients have sent so far (request side of "data sent by
  // client", Fig. 8/10).
  int64_t ClientBytesSent() const;

  // Shared observability sinks (valid whether or not observability is on;
  // metrics/spans only accumulate when it is).
  Obs& obs() { return obs_; }
  // Snapshots gauge-style state into the registry: per-link packet/byte
  // totals and per-server CPU busy time. Call before exporting metrics.
  void CollectMetrics();

  // Both one-shot EDS invariants (EdsDigestsMatch + EdsLogBounded) in one
  // call; `why` receives the first violation. Vacuously true for ZK-family
  // fixtures.
  bool CheckEdsInvariants(std::string* why = nullptr) const;

  // Direct server access for special benches (fault injection, CPU stats).
  std::vector<std::unique_ptr<ZkServer>> zk_servers;
  std::vector<std::unique_ptr<DsServer>> ds_servers;

 private:
  void WireObservability();
  void StartSharded();
  // Lazily-connected admin session used by AdminReconfig (node id 90001).
  ZkClient* AdminZk();
  // Boots shard `s`'s ensemble (servers + extension managers + fault
  // closures), starts it, and adds it to shard_map_ (bumps the version).
  void BootShard(size_t s);
  // Pushes shard_map_.version() to every replica as its expected version.
  void PushShardVersions();

  FixtureOptions options_;
  EventLoop loop_;
  Obs obs_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<FaultInjector> faults_;
  std::vector<std::unique_ptr<ZkExtensionManager>> zk_managers_;
  std::vector<std::unique_ptr<DsExtensionManager>> ds_managers_;
  std::vector<std::unique_ptr<ZkClient>> zk_clients_;
  std::vector<std::unique_ptr<DsClient>> ds_clients_;
  std::vector<std::unique_ptr<CoordClient>> coords_;
  std::unique_ptr<ZkClient> admin_zk_;  // AdminReconfig session
  // Sharded mode only.
  ShardMap shard_map_;  // authoritative copy; routers pull it via their source
  std::vector<std::unique_ptr<ZkShardRouter>> zk_routers_;
  std::vector<std::unique_ptr<DsShardRouter>> ds_routers_;
  std::vector<std::unique_ptr<DsClient>> ds_admins_;  // per-shard kSetMapVersion senders
};

// Chaos/fault tests read better against this name: a fixture-as-cluster with
// FaultPlan execution and registered crash/restart closures.
using ClusterFixture = CoordFixture;

}  // namespace edc

#endif  // EDC_HARNESS_FIXTURE_H_
