// Simulated durable write-ahead log with pipelined group commit.
//
// Real coordination services bound write throughput with the fsync path;
// ZooKeeper batches concurrent appends into one sync. We reproduce that
// shape: appends arriving within the group-commit window share a single
// simulated fsync whose latency is `fsync_latency` plus a size-proportional
// disk-bandwidth term. Since PR 7 the device models `pipeline_depth`
// concurrent fsync channels: while one batch's fsync is in flight the next
// batch accumulates and is submitted without waiting, so the log is no
// longer limited to one batch per fsync. Batches may complete out of order
// across channels, but records_, durability callbacks and spans are always
// published strictly in submission order (see docs/replication_pipeline.md
// for the ordering invariants). The group-commit window itself adapts to
// load when `adaptive_window` is set: it doubles when batches fill up and
// halves when they run near-empty, deterministically, so two runs of the
// same schedule see the same window trajectory.
//
// The log's contents survive simulated crashes (the in-memory image models
// the on-disk file), which is what lets a recovering replica replay its
// history during state transfer. A crash (DropUnsynced) loses every batch
// that has not yet been *published* — including batches whose fsync already
// completed at the device but that are still waiting behind an earlier
// in-flight batch — so recovery always truncates to the published durable
// prefix.

#ifndef EDC_LOGSTORE_LOGSTORE_H_
#define EDC_LOGSTORE_LOGSTORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "edc/common/result.h"
#include "edc/obs/obs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/time.h"

namespace edc {

struct LogStoreConfig {
  Duration fsync_latency = Micros(60);
  Duration group_commit_window = Micros(20);
  double disk_bandwidth_bps = 2e9;  // bits/s sequential write

  // Number of fsync batches that may be in flight at the device at once.
  // 1 reproduces the pre-pipelining serial group commit exactly (every batch
  // waits for the previous one's fsync); clamped up to 1.
  size_t pipeline_depth = 4;

  // Adaptive group-commit sizing: the live window starts at
  // group_commit_window and, at each batch submission, doubles when the batch
  // had >= window_grow_records entries (queue pressure: trade latency for
  // fewer, larger fsyncs) and halves when it had <= window_shrink_records
  // (idle: stop making lone appends wait), clamped to
  // [min_window, max_window]. Off = fixed window, legacy behaviour.
  bool adaptive_window = true;
  Duration min_window = Micros(5);
  Duration max_window = Micros(160);
  size_t window_grow_records = 8;
  size_t window_shrink_records = 2;
};

// Legacy (pre-pipelining) configuration: serial fsyncs, fixed window. The
// determinism suite runs the same schedule under this and the pipelined
// default and asserts identical record contents and callback order.
inline LogStoreConfig LegacyLogStoreConfig() {
  LogStoreConfig cfg;
  cfg.pipeline_depth = 1;
  cfg.adaptive_window = false;
  return cfg;
}

class LogStore {
 public:
  using DurableCallback = std::function<void()>;

  LogStore(EventLoop* loop, LogStoreConfig config)
      : loop_(loop), config_(config), window_(InitialWindow(config)) {
    channel_free_at_.assign(config_.pipeline_depth > 0 ? config_.pipeline_depth : 1, 0);
  }

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  // Appends a record; `on_durable` fires once the record's batch is durable
  // AND every earlier batch has been published (record-order semantics).
  void Append(std::vector<uint8_t> record, DurableCallback on_durable);

  // Fires once after every publication run that completed at least one batch
  // (i.e. once per group of in-order durable callbacks), after those
  // callbacks. Replication uses it to send one cumulative ACK per durable
  // batch instead of one per record.
  void SetBatchDurableCallback(std::function<void()> cb) { batch_cb_ = std::move(cb); }

  // Durable records, in append order. Records that have been appended but not
  // yet synced-and-published are NOT visible here (a crash would lose them).
  const std::vector<std::vector<uint8_t>>& records() const { return records_; }

  // Drops durable records with index >= first_removed (log truncation after
  // snapshot or divergence repair).
  void Truncate(size_t first_removed);

  // Drops the first `count` durable records (checkpoint + log rotation).
  void DropHead(size_t count);

  // Drops in-flight appends, modeling a crash before fsync: the accumulating
  // batch and every submitted-but-unpublished batch are lost, even if their
  // device-level fsync had already completed — only the published prefix
  // (records()) survives. The adaptive window resets to its initial value,
  // as a restarted process would rebuild it from scratch.
  void DropUnsynced();

  // On-disk image of the durable records: each record framed as u32 length +
  // u64 FNV-1a checksum + payload, little-endian, concatenated in append
  // order. This is the file a crash may tear mid-write.
  std::vector<uint8_t> SerializeImage() const;

  // Replaces the durable records with the contents of `image`. A truncated
  // trailing record (torn write — the image simply ends early) is discarded
  // and the clean prefix is restored; a record whose checksum does not match
  // its payload (corruption, not truncation) rejects the whole image with
  // kDecodeError and leaves the store unchanged. Returns the number of
  // records restored.
  Result<size_t> RestoreImage(const std::vector<uint8_t>& image);

  // Durable snapshot section (models the fsynced snapshot file that sits next
  // to the log): a single opaque state image covering every transaction up to
  // and including `zxid`. Written atomically (rename-into-place semantics),
  // so it survives DropUnsynced; the caller is responsible for only storing a
  // snapshot after a successful install/serialize. Records() then holds only
  // the log suffix after `zxid` — snapshot_zxid() is the log floor a recovery
  // or a state-transfer donor must respect.
  void StoreSnapshot(uint64_t zxid, std::vector<uint8_t> image) {
    snapshot_zxid_ = zxid;
    snapshot_ = std::move(image);
    has_snapshot_ = true;
  }
  bool has_snapshot() const { return has_snapshot_; }
  uint64_t snapshot_zxid() const { return snapshot_zxid_; }
  const std::vector<uint8_t>& snapshot() const { return snapshot_; }
  void ClearSnapshot() {
    has_snapshot_ = false;
    snapshot_zxid_ = 0;
    snapshot_.clear();
  }

  int64_t syncs() const { return syncs_; }
  int64_t appended_bytes() const { return appended_bytes_; }
  // Submitted-but-unpublished batches (pipeline occupancy right now).
  size_t inflight_batches() const { return inflight_.size(); }
  // Live adaptive group-commit window.
  Duration current_window() const { return window_; }

  // Observability (nullable): each append gets kFsync spans covering
  // append-to-submission (group-commit wait) and submission-to-publication
  // (fsync + disk write + in-order publication wait), its durable callback
  // runs under the appender's captured trace context, and the registry gets
  // sync counts + batch-size/queue-depth/pipeline-depth/window histograms.
  // `track` is the owning node's id.
  void SetObs(Obs* obs, uint32_t track);

 private:
  struct Pending {
    std::vector<uint8_t> record;
    DurableCallback cb;
    TraceContext ctx;   // appender's context (inactive when obs is off)
    SimTime at = 0;     // append time, for the group-commit wait span
  };

  struct Batch {
    uint64_t seq = 0;
    std::vector<Pending> entries;
    SimTime submitted_at = 0;
    bool durable = false;  // device fsync done; publication may still wait
  };

  static Duration InitialWindow(const LogStoreConfig& config);

  void Flush();
  void AdaptWindow(size_t batch_records);
  void PublishDurablePrefix();

  EventLoop* loop_;
  LogStoreConfig config_;
  std::vector<std::vector<uint8_t>> records_;
  std::vector<Pending> pending_;
  std::deque<Batch> inflight_;          // submission order; front = oldest
  std::vector<SimTime> channel_free_at_;  // per-channel device availability
  Duration window_;                     // live adaptive window
  uint64_t next_batch_seq_ = 0;
  bool flush_scheduled_ = false;
  int64_t syncs_ = 0;
  int64_t appended_bytes_ = 0;
  uint64_t flush_epoch_ = 0;  // invalidates scheduled flushes after DropUnsynced
  bool has_snapshot_ = false;
  uint64_t snapshot_zxid_ = 0;
  std::vector<uint8_t> snapshot_;
  std::function<void()> batch_cb_;
  Obs* obs_ = nullptr;
  uint32_t track_ = 0;
  Counter* m_syncs_ = nullptr;
  Counter* m_bytes_ = nullptr;
  Recorder* m_batch_records_ = nullptr;
  Recorder* m_batch_bytes_ = nullptr;
  Recorder* m_queue_depth_ = nullptr;
  Recorder* m_inflight_ = nullptr;
  Recorder* m_window_us_ = nullptr;
};

}  // namespace edc

#endif  // EDC_LOGSTORE_LOGSTORE_H_
