// Service-level dynamic membership (docs/reconfig.md): the client-visible
// reconfig operation, membership pushes that refresh a session's failover
// list (the ServerList-never-refreshed bugfix pin), snapshot-shipped joiner
// catch-up under live traffic with applied-log equality, removing the live
// leader without losing acknowledged writes, and trace-digest stability of
// the whole flow across identical reruns.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "edc/common/hash.h"
#include "edc/common/rng.h"
#include "edc/harness/fixture.h"
#include "edc/harness/invariants.h"
#include "edc/sim/network.h"
#include "edc/zk/client.h"
#include "edc/zk/server.h"

namespace edc {
namespace {

// Runs `op` and drives `loop` until its callback fires (or `timeout`).
Status SyncOp(EventLoop& loop, const std::function<void(ZkApi::VoidCb)>& op,
              Duration timeout = Seconds(5)) {
  bool done = false;
  Status out;
  op([&](Status s) {
    done = true;
    out = s;
  });
  SimTime deadline = loop.now() + timeout;
  while (!done && loop.now() < deadline) {
    loop.RunUntil(loop.now() + Millis(50));
  }
  return done ? out : Status(ErrorCode::kTimeout, "op timed out");
}

Result<std::string> SyncGet(EventLoop& loop, ZkClient* client, const std::string& path,
                            Duration timeout = Seconds(5)) {
  bool done = false;
  Result<std::string> out = Status(ErrorCode::kTimeout, "get timed out");
  client->GetData(path, false, [&](Result<ZkApi::NodeResult> r) {
    done = true;
    out = r.ok() ? Result<std::string>(r->data) : Result<std::string>(r.status());
  });
  SimTime deadline = loop.now() + timeout;
  while (!done && loop.now() < deadline) {
    loop.RunUntil(loop.now() + Millis(50));
  }
  return out;
}

// Retries a reconfig spec across leadership churn / admin failover until it
// lands or the deadline passes.
Status RetryReconfig(EventLoop& loop, ZkClient* client, const std::string& spec,
                     Duration timeout = Seconds(15)) {
  SimTime deadline = loop.now() + timeout;
  Status last;
  do {
    last = SyncOp(loop, [&](ZkApi::VoidCb cb) { client->Reconfig(spec, std::move(cb)); });
    if (last.ok() || last.code() == ErrorCode::kInvalidArgument) {
      return last;
    }
    loop.RunUntil(loop.now() + Millis(300));
  } while (loop.now() < deadline);
  return last;
}

// Manual cluster with observer support and ServerList clients — the
// harness-free half of the suite, where servers are added/removed directly.
class ReconfigServiceTest : public ::testing::Test {
 protected:
  void Boot(ZkServerOptions opts = ZkServerOptions{}) {
    opts_ = opts;
    net_ = std::make_unique<Network>(&loop_, Rng(13), LinkParams{});
    std::vector<NodeId> members{1, 2, 3};
    for (NodeId id : members) {
      AddServerNode(id, members, /*observer=*/false);
    }
    for (auto& s : servers_) {
      s->Start();
    }
    Settle(Seconds(2));
  }

  ZkServer* AddServerNode(NodeId id, std::vector<NodeId> members, bool observer) {
    ZkServerOptions opts = opts_;
    opts.observer = observer;
    auto server =
        std::make_unique<ZkServer>(&loop_, net_.get(), id, std::move(members), CostModel{}, opts);
    net_->Register(id, server.get());
    servers_.push_back(std::move(server));
    return servers_.back().get();
  }

  // Boots a brand-new observer whose contact list is the current voter set.
  ZkServer* BootObserver(NodeId id) {
    ZkServer* s = AddServerNode(id, Leader()->zab().membership().voters, true);
    s->Start();
    return s;
  }

  ZkServer* Leader() {
    for (auto& s : servers_) {
      if (s->running() && s->IsLeader()) {
        return s.get();
      }
    }
    return nullptr;
  }

  ZkServer* ById(NodeId id) {
    for (auto& s : servers_) {
      if (s->id() == id) {
        return s.get();
      }
    }
    return nullptr;
  }

  ZkClient* AddClient(ServerList list) {
    auto client = std::make_unique<ZkClient>(&loop_, net_.get(), next_client_id_++,
                                             ShardView::Standalone(std::move(list)),
                                             ZkClientOptions{});
    ZkClient* raw = client.get();
    clients_.push_back(std::move(client));
    Status s = SyncOp(loop_, [raw](ZkApi::VoidCb cb) { raw->Connect(std::move(cb)); });
    EXPECT_TRUE(s.ok()) << s.message();
    return raw;
  }

  void Settle(Duration d = Millis(500)) { loop_.RunUntil(loop_.now() + d); }

  EventLoop loop_;
  ZkServerOptions opts_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<ZkServer>> servers_;
  std::vector<std::unique_ptr<ZkClient>> clients_;
  NodeId next_client_id_ = 100;
};

TEST_F(ReconfigServiceTest, ClientReconfigAddsObserverAndPushesMembership) {
  Boot();
  ZkClient* client = AddClient(ServerList{1, 2, 3});
  int membership_events = 0;
  client->SetSessionEventHandler([&](SessionEvent e) {
    if (e == SessionEvent::kMembershipChanged) {
      ++membership_events;
    }
  });

  BootObserver(4);
  Status s = SyncOp(loop_, [&](ZkApi::VoidCb cb) { client->Reconfig("add_observer 4", cb); });
  ASSERT_TRUE(s.ok()) << s.message();
  Settle();

  // Every member (including the new observer) activated the change...
  for (auto& server : servers_) {
    EXPECT_TRUE(server->zab().membership().IsObserver(4)) << "server " << server->id();
  }
  // ...and the session's failover list was refreshed by the push.
  EXPECT_GE(membership_events, 1);
  EXPECT_GT(client->membership_version(), 0u);
  const auto& list = client->servers().servers;
  EXPECT_NE(std::find(list.begin(), list.end(), 4u), list.end())
      << "client failover list missing the new observer";
}

TEST_F(ReconfigServiceTest, MalformedSpecsRejected) {
  Boot();
  ZkClient* client = AddClient(ServerList{1, 2, 3});
  auto reconfig = [&](const std::string& spec) {
    return SyncOp(loop_, [&](ZkApi::VoidCb cb) { client->Reconfig(spec, cb); });
  };
  EXPECT_EQ(reconfig("add_voter 1").code(), ErrorCode::kInvalidArgument);  // already a voter
  EXPECT_EQ(reconfig("promote 9").code(), ErrorCode::kInvalidArgument);   // not an observer
  EXPECT_EQ(reconfig("remove 9").code(), ErrorCode::kInvalidArgument);    // not a member
  EXPECT_EQ(reconfig("frobnicate 2").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(reconfig("add_observer").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(reconfig("add_observer x").code(), ErrorCode::kInvalidArgument);
}

// Regression pin for the session-layer bug where a client's ServerList was
// set once at construction and never refreshed: after the entire original
// ensemble {1,2,3} is rolled over to {4,5,6}, a client created against
// {1,2,3} must keep working — without membership pushes it would spin on
// dead/retired replicas forever.
TEST_F(ReconfigServiceTest, RollingReplacementKeepsClientConnected) {
  Boot();
  ZkClient* client = AddClient(ServerList{1, 2, 3});
  ASSERT_TRUE(SyncOp(loop_, [&](ZkApi::VoidCb cb) {
                client->Create("/pin", "v0", false, false, [cb](Result<std::string> r) {
                  cb(r.ok() ? Status::Ok() : r.status());
                });
              }).ok());

  for (NodeId joiner : {4u, 5u, 6u}) {
    BootObserver(joiner);
    Status added = RetryReconfig(loop_, client, "add_observer " + std::to_string(joiner));
    ASSERT_TRUE(added.ok()) << "add_observer " << joiner << ": " << added.message();
    Settle(Seconds(1));
    Status promoted = RetryReconfig(loop_, client, "promote " + std::to_string(joiner));
    ASSERT_TRUE(promoted.ok()) << "promote " << joiner << ": " << promoted.message();
  }
  for (NodeId retiree : {1u, 2u, 3u}) {
    Status removed = RetryReconfig(loop_, client, "remove " + std::to_string(retiree));
    if (!removed.ok()) {
      // The retiree may be the client's own session host: it stops serving
      // the moment the removal activates, so the ack can be lost and the
      // retry reports "not a member". The durable outcome is what counts.
      ZkServer* leader = Leader();
      ASSERT_NE(leader, nullptr);
      ASSERT_FALSE(leader->zab().membership().Contains(retiree))
          << "remove " << retiree << ": " << removed.message();
    }
    Settle(Seconds(2));  // failover if the client's replica just retired
  }
  Settle(Seconds(2));

  // The original ensemble is fully retired.
  for (NodeId retiree : {1u, 2u, 3u}) {
    EXPECT_FALSE(ById(retiree)->running()) << "server " << retiree;
  }
  // The client's failover list is the new ensemble — and the session works.
  std::vector<NodeId> list = client->servers().servers;
  std::sort(list.begin(), list.end());
  EXPECT_EQ(list, (std::vector<NodeId>{4, 5, 6}));
  SimTime deadline = loop_.now() + Seconds(10);
  while (!client->connected() && loop_.now() < deadline) {
    Settle(Millis(200));
  }
  ASSERT_TRUE(client->connected()) << "client never failed over to the new ensemble";
  Result<std::string> v = SyncGet(loop_, client, "/pin");
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_EQ(*v, "v0");
}

// --- Harness-driven acceptance scenarios --------------------------------

Status FixtureWrite(CoordFixture& fx, ZkClient* c, const std::string& path,
                    const std::string& value) {
  return SyncOp(fx.loop(), [&](ZkApi::VoidCb cb) {
    c->Create(path, value, false, false, [c, path, value, cb](Result<std::string> r) {
      if (r.ok()) {
        cb(Status::Ok());
        return;
      }
      c->SetData(path, value, -1, cb);  // already exists: overwrite
    });
  });
}

TEST(ReconfigAcceptance, JoinerCatchesUpViaSnapshotUnderTrafficAndMatchesIncumbents) {
  FixtureOptions fo;
  fo.system = SystemKind::kZooKeeper;
  fo.num_clients = 1;
  fo.seed = 21;
  fo.zk_server.zab_snapshot_every = 12;  // compaction forces the SNAP path
  CoordFixture fx(fo);
  fx.Start();
  ZkClient* c = fx.zk_client(0);

  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(FixtureWrite(fx, c, "/d" + std::to_string(i), "v" + std::to_string(i)).ok())
        << "write " << i;
  }
  // Join mid-traffic: replica 4 must snapshot-install (its zxid 0 predates
  // the compacted log floor), replay the suffix, and get promoted to voter.
  Status join = fx.JoinReplica(4);
  ASSERT_TRUE(join.ok()) << join.message();
  for (int i = 25; i < 35; ++i) {
    ASSERT_TRUE(FixtureWrite(fx, c, "/d" + std::to_string(i), "v" + std::to_string(i)).ok())
        << "write " << i;
  }
  fx.Settle(Seconds(3));

  ZkServer* joiner = fx.ZkServerById(4);
  ASSERT_NE(joiner, nullptr);
  EXPECT_TRUE(joiner->zab().is_voter());
  ASSERT_FALSE(fx.zk_servers.empty());
  ZkServer* incumbent = fx.zk_servers[0].get();
  ASSERT_NE(incumbent->id(), joiner->id());

  // Applied-state equality: identical trees, and identical applied-log
  // (zxid, txn-hash) tails over the post-snapshot overlap.
  EXPECT_EQ(joiner->tree().Serialize(), incumbent->tree().Serialize());
  ASSERT_FALSE(joiner->applied_log().empty());
  ASSERT_FALSE(incumbent->applied_log().empty());
  EXPECT_EQ(joiner->applied_log().back(), incumbent->applied_log().back());
  std::string why;
  EXPECT_TRUE(PrefixConsistentLogs(fx.zk_servers, &why)) << why;
}

TEST(ReconfigAcceptance, RemovingLiveLeaderLosesNoAcknowledgedWrites) {
  FixtureOptions fo;
  fo.system = SystemKind::kZooKeeper;
  fo.num_clients = 1;
  fo.seed = 22;
  CoordFixture fx(fo);
  fx.Start();
  ZkClient* c = fx.zk_client(0);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(FixtureWrite(fx, c, "/k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  NodeId leader_id = 0;
  for (auto& s : fx.zk_servers) {
    if (s->running() && s->IsLeader()) {
      leader_id = s->id();
    }
  }
  ASSERT_NE(leader_id, 0u);

  Status removed = fx.RemoveReplica(leader_id);
  ASSERT_TRUE(removed.ok()) << removed.message();
  fx.Settle(Seconds(3));  // re-election among the survivors
  EXPECT_FALSE(fx.ZkServerById(leader_id)->running());

  for (int i = 10; i < 15; ++i) {
    ASSERT_TRUE(FixtureWrite(fx, c, "/k" + std::to_string(i), "v" + std::to_string(i)).ok())
        << "write " << i << " after leader removal";
  }
  // Every acknowledged write — before and after the removal — is readable.
  for (int i = 0; i < 15; ++i) {
    Result<std::string> v = SyncGet(fx.loop(), c, "/k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << "/k" << i << ": " << v.status().message();
    EXPECT_EQ(*v, "v" + std::to_string(i)) << "/k" << i;
  }
  std::string why;
  EXPECT_TRUE(PrefixConsistentLogs(fx.zk_servers, &why)) << why;
}

// Determinism: the full join + remove-leader flow, rerun with an identical
// configuration, produces an identical whole-run trace digest and identical
// final applied state.
TEST(ReconfigAcceptance, TraceAndStateDigestsStableAcrossReruns) {
  auto run = [] {
    FixtureOptions fo;
    fo.system = SystemKind::kZooKeeper;
    fo.num_clients = 1;
    fo.seed = 23;
    fo.zk_server.zab_snapshot_every = 12;
    CoordFixture fx(fo);
    fx.Start();
    fx.faults().EnablePacketTrace();
    ZkClient* c = fx.zk_client(0);
    for (int i = 0; i < 20; ++i) {
      FixtureWrite(fx, c, "/t" + std::to_string(i), "v" + std::to_string(i));
    }
    fx.JoinReplica(4);
    NodeId leader_id = 0;
    for (auto& s : fx.zk_servers) {
      if (s->running() && s->IsLeader()) {
        leader_id = s->id();
      }
    }
    if (leader_id != 0) {
      fx.RemoveReplica(leader_id);
    }
    fx.Settle(Seconds(4));
    FixtureWrite(fx, c, "/t-final", "done");
    fx.Settle(Seconds(2));

    std::string state;
    for (auto& s : fx.zk_servers) {
      if (s->running()) {
        std::vector<uint8_t> tree = s->tree().Serialize();
        state += std::to_string(s->id()) + ":" +
                 std::to_string(Fnv1a64(tree.data(), tree.size())) + ";";
      }
    }
    return std::make_pair(fx.faults().TraceDigest(), state);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first) << "trace digest diverged across identical reruns";
  EXPECT_EQ(a.second, b.second) << "final applied state diverged";
  EXPECT_NE(a.second.find(":"), std::string::npos);
}

}  // namespace
}  // namespace edc
