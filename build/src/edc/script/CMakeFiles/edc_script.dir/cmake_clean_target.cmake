file(REMOVE_RECURSE
  "libedc_script.a"
)
