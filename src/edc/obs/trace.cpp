#include "edc/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace edc {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kOther:
      return "other";
    case Stage::kNetwork:
      return "network";
    case Stage::kQueue:
      return "queue";
    case Stage::kCpu:
      return "cpu";
    case Stage::kFsync:
      return "fsync";
  }
  return "?";
}

TraceContext Tracer::BeginTrace(const char* name, uint32_t track, SimTime now) {
  if (!enabled_) {
    return TraceContext{};
  }
  TraceId trace = next_id_++;
  SpanId root = next_id_++;
  SpanRec rec;
  rec.id = root;
  rec.trace = trace;
  rec.parent = 0;
  rec.name = name;
  rec.stage = Stage::kOther;
  rec.track = track;
  rec.start = now;
  live_[trace].push_back(rec);
  current_ = TraceContext{trace, root};
  return current_;
}

SpanId Tracer::BeginSpanIn(const TraceContext& ctx, const char* name, Stage stage,
                           uint32_t track, SimTime now) {
  if (!enabled_ || !ctx.active()) {
    return 0;
  }
  auto it = live_.find(ctx.trace);
  if (it == live_.end()) {
    return 0;  // trace already finished (straggler work after the reply)
  }
  SpanRec rec;
  rec.id = next_id_++;
  rec.trace = ctx.trace;
  rec.parent = ctx.span;
  rec.name = name;
  rec.stage = stage;
  rec.track = track;
  rec.start = now;
  it->second.push_back(rec);
  return rec.id;
}

void Tracer::EndSpan(const TraceContext& ctx, SpanId span, SimTime now) {
  if (span == 0) {
    return;
  }
  if (SpanRec* rec = FindSpan(ctx.trace, span)) {
    rec->end = now;
  }
}

void Tracer::RecordSpanIn(const TraceContext& ctx, const char* name, Stage stage,
                          uint32_t track, SimTime start, SimTime end) {
  SpanId id = BeginSpanIn(ctx, name, stage, track, start);
  if (id != 0) {
    live_[ctx.trace].back().end = end;
  }
}

SpanRec* Tracer::FindSpan(TraceId trace, SpanId span) {
  auto it = live_.find(trace);
  if (it == live_.end()) {
    return nullptr;
  }
  for (SpanRec& rec : it->second) {
    if (rec.id == span) {
      return &rec;
    }
  }
  return nullptr;
}

StageBreakdown Tracer::FinishTrace(const TraceContext& root, SimTime now) {
  StageBreakdown out;
  if (!root.active()) {
    return out;
  }
  auto it = live_.find(root.trace);
  if (it == live_.end()) {
    return out;
  }
  std::vector<SpanRec>& spans = it->second;
  for (SpanRec& rec : spans) {
    if (rec.end < 0) {
      rec.end = now;  // root, plus anything cut short by a fault
    }
  }
  const SimTime t0 = spans.front().start;
  const SimTime t1 = spans.front().end;
  out.total = t1 - t0;

  // Priority sweep: at every instant of [t0, t1] the highest-priority stage
  // with an active span owns that instant. The root keeps kOther active for
  // the whole interval, so the buckets partition the total exactly.
  struct Edge {
    SimTime at;
    int delta;  // +1 open, -1 close
    Stage stage;
  };
  std::vector<Edge> edges;
  edges.reserve(spans.size() * 2);
  for (const SpanRec& rec : spans) {
    SimTime s = std::max(rec.start, t0);
    SimTime e = std::min(rec.end, t1);
    if (s >= e) {
      continue;  // clipped away (work that outlived the reply)
    }
    edges.push_back(Edge{s, +1, rec.stage});
    edges.push_back(Edge{e, -1, rec.stage});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.at < b.at; });
  int active[kStageCount] = {};
  SimTime prev = t0;
  size_t i = 0;
  while (i < edges.size()) {
    SimTime at = edges[i].at;
    if (at > prev) {
      for (size_t s = kStageCount; s-- > 0;) {
        if (active[s] > 0) {
          out.ns[s] += at - prev;
          break;
        }
      }
      prev = at;
    }
    while (i < edges.size() && edges[i].at == at) {
      active[static_cast<size_t>(edges[i].stage)] += edges[i].delta;
      ++i;
    }
  }

  if (retain_) {
    retained_.insert(retained_.end(), spans.begin(), spans.end());
  }
  live_.erase(it);
  if (current_.trace == root.trace) {
    current_ = TraceContext{};
  }
  return out;
}

bool Tracer::ExportJson(const std::string& path) const {
  std::vector<SpanRec> all = retained_;
  for (const auto& [trace, spans] : live_) {
    all.insert(all.end(), spans.begin(), spans.end());
  }
  // unordered_map iteration order is not deterministic; sort so same-seed
  // runs export byte-identical files.
  std::sort(all.begin(), all.end(), [](const SpanRec& a, const SpanRec& b) {
    if (a.start != b.start) {
      return a.start < b.start;
    }
    if (a.track != b.track) {
      return a.track < b.track;
    }
    return a.id < b.id;
  });

  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const SpanRec& rec : all) {
    SimTime end = rec.end < 0 ? rec.start : rec.end;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                  "\"args\": {\"trace\": %llu, \"span\": %llu, \"parent\": %llu}}",
                  first ? "" : ",\n", rec.name, StageName(rec.stage),
                  static_cast<double>(rec.start) / 1e3,
                  static_cast<double>(end - rec.start) / 1e3, rec.track,
                  static_cast<unsigned long long>(rec.trace),
                  static_cast<unsigned long long>(rec.id),
                  static_cast<unsigned long long>(rec.parent));
    out << buf;
    first = false;
  }
  out << "\n]}\n";
  return out.good();
}

}  // namespace edc
