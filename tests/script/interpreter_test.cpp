#include "edc/script/interpreter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "edc/script/parser.h"

namespace edc {
namespace {

// Host exposing a tiny key->string store plus a call trace.
class FakeHost : public ScriptHost {
 public:
  bool HasFunction(const std::string& name) const override {
    return name == "read_object" || name == "update" || name == "now" ||
           name == "blob";
  }

  Result<Value> Call(const std::string& name, std::vector<Value>& args) override {
    calls.push_back(name);
    if (name == "now") {
      return Value(static_cast<int64_t>(12345));
    }
    if (name == "blob") {
      return Value(std::string(1 << 20, 'x'));
    }
    if (name == "read_object") {
      auto it = store.find(args[0].AsStr());
      if (it == store.end()) {
        return Value();
      }
      return Value::Map({{"path", Value(it->first)}, {"data", Value(it->second)}});
    }
    if (name == "update") {
      store[args[0].AsStr()] = args[1].AsStr();
      return Value(true);
    }
    return Status(ErrorCode::kExtensionError, "unknown host fn");
  }

  std::map<std::string, std::string> store;
  std::vector<std::string> calls;
};

Result<Value> RunScript(const char* src, const char* handler, std::vector<Value> args,
                  FakeHost* host, ExecBudget budget = ExecBudget{}) {
  auto prog = ParseProgram(src);
  if (!prog.ok()) {
    return prog.status();
  }
  Interpreter interp(prog->get(), host, budget);
  auto out = interp.Invoke(handler, std::move(args));
  return out;
}

TEST(InterpreterTest, CounterIncrementEndToEnd) {
  FakeHost host;
  host.store["/ctr"] = "41";
  auto out = RunScript(R"(
    extension ctr {
      on op read "/ctr-increment";
      fn read(oid) {
        let c = parse_int(get(read_object("/ctr"), "data"));
        update("/ctr", str(c + 1));
        return c + 1;
      }
    })", "read", {Value("/ctr-increment")}, &host);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->AsInt(), 42);
  EXPECT_EQ(host.store["/ctr"], "42");
}

TEST(InterpreterTest, ArithmeticAndPrecedence) {
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) { return (2 + 3) * 4 - 10 / 2 % 3; } })", "handle_op", {}, &host);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->AsInt(), 18);  // 20 - (5 % 3) = 20 - 2
}

TEST(InterpreterTest, StringConcatenation) {
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) { return "/queue/" + r + "-" + 7; } })", "handle_op",
                 {Value("item")}, &host);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->AsStr(), "/queue/item-7");
}

TEST(InterpreterTest, ShortCircuitAvoidsRhsEvaluation) {
  FakeHost host;
  // read_object("missing") returns null; get(null, ...) would error, but &&
  // must short-circuit before evaluating it.
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let o = read_object("/missing");
        if (o != null && get(o, "data") == "x") { return 1; }
        return 0;
      } })", "handle_op", {}, &host);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->AsInt(), 0);
}

TEST(InterpreterTest, ForeachAccumulates) {
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let sum = 0;
        foreach (x in [1, 2, 3, 4, 5]) { sum = sum + x; }
        return sum;
      } })", "handle_op", {}, &host);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->AsInt(), 15);
}

TEST(InterpreterTest, ReturnInsideForeachExitsHandler) {
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        foreach (x in [1, 2, 3]) { if (x == 2) { return x * 10; } }
        return -1;
      } })", "handle_op", {}, &host);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->AsInt(), 20);
}

TEST(InterpreterTest, IfElseChains) {
  FakeHost host;
  const char* src = R"(
    extension m { on op any "/x";
      fn handle_op(n) {
        if (n < 0) { return "neg"; }
        else if (n == 0) { return "zero"; }
        else { return "pos"; }
      } })";
  EXPECT_EQ(RunScript(src, "handle_op", {Value(-5)}, &host)->AsStr(), "neg");
  EXPECT_EQ(RunScript(src, "handle_op", {Value(0)}, &host)->AsStr(), "zero");
  EXPECT_EQ(RunScript(src, "handle_op", {Value(3)}, &host)->AsStr(), "pos");
}

TEST(InterpreterTest, MissingHandlerFails) {
  FakeHost host;
  auto out = RunScript(R"(extension m { on op any "/x"; fn handle_op(r) { return 1; } })",
                 "no_such_handler", {}, &host);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionError);
}

TEST(InterpreterTest, MissingArgsBecomeNull) {
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(a, b) { if (b == null) { return "null"; } return "set"; } })",
                 "handle_op", {Value(1)}, &host);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->AsStr(), "null");
}

TEST(InterpreterTest, DivisionByZeroIsError) {
  FakeHost host;
  auto out = RunScript(R"(extension m { on op any "/x"; fn handle_op(r) { return 1 / 0; } })",
                 "handle_op", {}, &host);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionError);
}

TEST(InterpreterTest, TypeErrorsAreReported) {
  FakeHost host;
  auto out = RunScript(R"(extension m { on op any "/x"; fn handle_op(r) { return 1 - "x"; } })",
                 "handle_op", {}, &host);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionError);
}

TEST(InterpreterTest, IndexOutOfRangeIsError) {
  FakeHost host;
  auto out = RunScript(R"(extension m { on op any "/x"; fn handle_op(r) { return [1][5]; } })",
                 "handle_op", {}, &host);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionError);
}

TEST(InterpreterTest, StepBudgetEnforced) {
  FakeHost host;
  ExecBudget tight;
  tight.max_steps = 20;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let sum = 0;
        foreach (x in [1,2,3,4,5,6,7,8,9,10]) { sum = sum + x; }
        return sum;
      } })", "handle_op", {}, &host, tight);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionLimit);
}

TEST(InterpreterTest, ValueSizeBudgetEnforced) {
  FakeHost host;
  ExecBudget tiny;
  tiny.max_value_bytes = 64;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let s = "0123456789";
        s = s + s; s = s + s; s = s + s; s = s + s;
        return s;
      } })", "handle_op", {}, &host, tiny);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionLimit);
}

TEST(InterpreterTest, UnaryNegationAtInt64MinWraps) {
  // Regression: `-x` used to negate the signed value directly, which is UB
  // when x == INT64_MIN. The interpreter now wraps via unsigned negation.
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x"; fn handle_op(r) { return -r; } })",
                 "handle_op", {Value(INT64_MIN)}, &host);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->AsInt(), INT64_MIN);
}

TEST(InterpreterTest, OversizedHostResultIsRejected) {
  // Regression: host-function return values used to skip the value-size
  // check that every builtin result and concatenation already went through.
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x"; fn handle_op(r) { return blob(); } })",
                 "handle_op", {}, &host);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionLimit);
  EXPECT_NE(out.status().message().find("value size limit exceeded"),
            std::string::npos);
}

TEST(InterpreterTest, StepsUsedReported) {
  auto prog = ParseProgram(R"(
    extension m { on op any "/x"; fn handle_op(r) { return 1 + 1; } })");
  ASSERT_TRUE(prog.ok());
  FakeHost host;
  Interpreter interp(prog->get(), &host, ExecBudget{});
  ASSERT_TRUE(interp.Invoke("handle_op", {}).ok());
  EXPECT_GT(interp.stats().steps_used, 0);
  EXPECT_LT(interp.stats().steps_used, 20);
}

TEST(InterpreterTest, HostFunctionErrorPropagates) {
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x"; fn handle_op(r) { return unknown_host(); } })",
                 "handle_op", {}, &host);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionError);
}

TEST(InterpreterTest, ErrorBuiltinAborts) {
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) { error("queue empty"); return 1; } })", "handle_op", {}, &host);
  EXPECT_EQ(out.code(), ErrorCode::kExtensionError);
  EXPECT_NE(out.status().message().find("queue empty"), std::string::npos);
}

TEST(InterpreterTest, FallOffEndReturnsNull) {
  FakeHost host;
  auto out = RunScript(R"(extension m { on op any "/x"; fn handle_op(r) { let a = 1; } })",
                 "handle_op", {}, &host);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->is_null());
}

TEST(InterpreterTest, ScopesShadowAndRestore) {
  FakeHost host;
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let x = 1;
        if (true) { let x = 2; }
        foreach (x in [9]) { let y = x; }
        return x;
      } })", "handle_op", {}, &host);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->AsInt(), 1);
}

TEST(InterpreterTest, MapIndexMissingKeyIsNull) {
  FakeHost host;
  host.store["/o"] = "d";
  auto out = RunScript(R"(
    extension m { on op any "/x";
      fn handle_op(r) { return read_object("/o")["nope"] == null; } })",
                 "handle_op", {}, &host);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->AsBool());
}

}  // namespace
}  // namespace edc
