// Executable sequential model of the DepSpace-like service.
//
// The model consumes the totally ordered request stream (seq, ts, client,
// req_id, payload) the BFT layer executes and mirrors DsServer::Execute for
// the plain (extension-free) configuration: deterministic lease expiry at the
// ordered timestamp, the default /em access rule, every operation of
// ExecuteNormal including its quirks (RdAll returning an empty OK reply on
// ACL denial, Renew skipping ACL, Replace never unblocking waiters), and the
// waiter-unblock pass of ProcessEvents. Each step yields the replies a
// correct replica must have sent; the conformance checker matches them
// against what clients actually accepted.

#ifndef EDC_CHECK_DS_MODEL_H_
#define EDC_CHECK_DS_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "edc/ds/types.h"
#include "edc/sim/network.h"
#include "edc/sim/time.h"

namespace edc {

struct DsModelReply {
  NodeId client = 0;
  uint64_t req_id = 0;
  DsReply reply;
};

class DsModel {
 public:
  // Executes one ordered request; returns every reply it generates (the
  // request's own plus any waiter unblocks).
  std::vector<DsModelReply> Execute(SimTime ts, NodeId client, uint64_t req_id,
                                    const std::vector<uint8_t>& payload);

  size_t space_size() const { return entries_.size(); }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Entry {
    DsTuple tuple;
    SimTime deadline = 0;  // 0 = no lease
    NodeId owner = 0;
  };
  struct Waiter {
    DsTemplate templ;
    NodeId client = 0;
    uint64_t req_id = 0;
    bool consume = false;
    uint64_t order = 0;
  };

  static Status CheckAccess(const DsTuple* tuple, const DsTemplate* templ);
  bool HasMatch(const DsTemplate& templ) const;
  // First match in insertion order; removes it when `consume`.
  int FindMatch(const DsTemplate& templ) const;  // index or -1
  void Expire(SimTime ts);
  // Waiter-unblock pass for one created tuple (ProcessEvents semantics).
  void Unblock(const DsTuple& created, std::vector<DsModelReply>* replies);

  std::vector<Entry> entries_;
  std::vector<Waiter> waiters_;
  uint64_t map_version_ = 0;  // mirrors DsServer's replicated shard-map version
  uint64_t next_waiter_order_ = 1;
};

}  // namespace edc

#endif  // EDC_CHECK_DS_MODEL_H_
