// ZkShardRouter / DsShardRouter behavior on a live sharded fixture: routing
// correctness (ops land only on the owning ensemble), cross-shard Multi
// rejection, the map-version stale-refresh protocol, per-shard failover and
// the DS scatter-gather/unroutable rules (docs/sharding.md).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "edc/common/shard_map.h"
#include "edc/harness/fixture.h"
#include "edc/route/shard_router.h"

namespace edc {
namespace {

FixtureOptions ShardedZk(size_t shards, size_t clients) {
  FixtureOptions options;
  options.system = SystemKind::kZooKeeper;
  options.num_clients = clients;
  options.num_shards = shards;
  return options;
}

FixtureOptions ShardedDs(size_t shards, size_t clients) {
  FixtureOptions options;
  options.system = SystemKind::kDepSpace;
  options.num_clients = clients;
  options.num_shards = shards;
  return options;
}

size_t AppliedTotal(const std::vector<ZkServer*>& servers) {
  size_t total = 0;
  for (ZkServer* s : servers) {
    total += s->applied_log().size();
  }
  return total;
}

TEST(ShardRouterTest, WritesLandOnlyOnTheOwningShard) {
  CoordFixture fixture(ShardedZk(4, 1));
  fixture.Start();
  ZkShardRouter* router = fixture.zk_router(0);
  ASSERT_NE(router, nullptr);
  ASSERT_EQ(router->shard_count(), 4u);

  // Pin a subtree to shard 2 and write under it; only shard 2's ensemble
  // should apply new transactions (modulo session bookkeeping on the shard
  // holding the router's already-open sessions, hence: snapshot only the
  // quiesced non-target shards that have no open session).
  const ShardMap& map = fixture.shard_map();
  std::string pinned = map.SubtreeForShard("/pin", 2);
  uint32_t target = map.entry(2).shard_id;

  // Let sessions/pings quiesce, then snapshot every shard's applied totals.
  fixture.Settle(Seconds(1));
  std::vector<size_t> before;
  for (uint32_t s = 0; s < 4; ++s) {
    before.push_back(AppliedTotal(fixture.ZkShardServers(s)));
  }

  int ok = 0;
  router->Create(pinned, "root", false, false,
                 [&](Result<std::string> r) { ok += r.ok(); });
  for (int i = 0; i < 5; ++i) {
    router->Create(pinned + "/n" + std::to_string(i), "v", false, false,
                   [&](Result<std::string> r) { ok += r.ok(); });
  }
  fixture.Settle(Seconds(2));
  EXPECT_EQ(ok, 6);

  for (uint32_t s = 0; s < 4; ++s) {
    size_t delta = AppliedTotal(fixture.ZkShardServers(s)) - before[s];
    if (s == target) {
      // 6 writes x 3 replicas, plus possibly a session-create.
      EXPECT_GE(delta, 18u) << "shard " << s;
    } else {
      // Non-target shards may only see session bookkeeping (a session-create
      // txn per replica if this was the shard's first contact), never 6
      // client writes.
      EXPECT_LT(delta, 18u) << "shard " << s;
    }
  }
}

TEST(ShardRouterTest, ReadsSeeWritesAcrossManyKeys) {
  CoordFixture fixture(ShardedZk(4, 2));
  fixture.Start();
  ZkShardRouter* w = fixture.zk_router(0);
  ZkShardRouter* r = fixture.zk_router(1);

  int created = 0;
  for (int i = 0; i < 24; ++i) {
    w->Create("/mk" + std::to_string(i), "v" + std::to_string(i), false, false,
              [&](Result<std::string> res) { created += res.ok(); });
  }
  fixture.Settle(Seconds(3));
  ASSERT_EQ(created, 24);

  int read_ok = 0;
  for (int i = 0; i < 24; ++i) {
    r->GetData("/mk" + std::to_string(i), false, [&, i](Result<ZkApi::NodeResult> res) {
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_EQ(res->data, "v" + std::to_string(i));
      ++read_ok;
    });
  }
  fixture.Settle(Seconds(3));
  EXPECT_EQ(read_ok, 24);
  // 24 distinct top-level keys over 4 shards: every shard's sub-client
  // should have been created.
  EXPECT_EQ(r->sub_client_ids().size(), 4u);
}

TEST(ShardRouterTest, CrossShardMultiRejectedSameShardAccepted) {
  CoordFixture fixture(ShardedZk(4, 1));
  fixture.Start();
  ZkShardRouter* router = fixture.zk_router(0);
  const ShardMap& map = fixture.shard_map();

  // Find two top-level keys on different shards.
  std::string a = map.SubtreeForShard("/ma", 0);
  std::string b = map.SubtreeForShard("/mb", 1);

  auto create_op = [](const std::string& path) {
    ZkOp op;
    op.type = ZkOpType::kCreate;
    op.path = path;
    op.data = "m";
    return op;
  };

  Status cross = Status::Ok();
  bool cross_done = false;
  router->Multi({create_op(a), create_op(b)}, [&](Status s) {
    cross = s;
    cross_done = true;
  });
  fixture.Settle(Seconds(1));
  ASSERT_TRUE(cross_done);
  EXPECT_EQ(cross.code(), ErrorCode::kInvalidArgument) << cross.ToString();

  Status same = Status(ErrorCode::kInternal, "unset");
  router->Multi({create_op(a), create_op(a + "/x")}, [&](Status s) { same = s; });
  fixture.Settle(Seconds(2));
  EXPECT_TRUE(same.ok()) << same.ToString();
}

TEST(ShardRouterTest, StaleRejectionRefreshesMapAndRetries) {
  CoordFixture fixture(ShardedZk(2, 1));
  fixture.Start();
  ZkShardRouter* router = fixture.zk_router(0);
  uint64_t v_before = router->map_version();

  // Grow the topology behind the router's back: every existing replica now
  // expects a newer version, so the next op bounces with kShardMapStale and
  // the router must refresh + retry transparently.
  fixture.AddShard();
  ASSERT_GT(fixture.shard_map().version(), v_before);
  fixture.Settle(Seconds(3));  // new ensemble's leader election

  int ok = 0;
  for (int i = 0; i < 12; ++i) {
    router->Create("/st" + std::to_string(i), "v", false, false,
                   [&](Result<std::string> r) { ok += r.ok(); });
  }
  fixture.Settle(Seconds(10));
  EXPECT_EQ(ok, 12);
  EXPECT_GE(router->stale_refreshes(), 1);
  EXPECT_EQ(router->map_version(), fixture.shard_map().version());
  EXPECT_EQ(router->shard_count(), 3u);
}

TEST(ShardRouterTest, PreferredReplicaSpreadAcrossRouters) {
  CoordFixture fixture(ShardedZk(2, 3));
  fixture.Start();
  // Different routers should open their shard-0 session against different
  // replicas of the ensemble (read load spreads without any balancer).
  std::set<NodeId> servers;
  for (size_t i = 0; i < 3; ++i) {
    ZkClient* sub = fixture.zk_router(i)->shard_client(0);
    ASSERT_NE(sub, nullptr);
    servers.insert(sub->current_server());
  }
  EXPECT_EQ(servers.size(), 3u);
}

TEST(ShardRouterTest, ShardFailoverKeepsRouterUsable) {
  CoordFixture fixture(ShardedZk(2, 1));
  fixture.Start();
  ZkShardRouter* router = fixture.zk_router(0);
  const ShardMap& map = fixture.shard_map();
  std::string pinned = map.SubtreeForShard("/fo", 1);

  bool seeded = false;
  router->Create(pinned, "v", false, false, [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    seeded = true;
  });
  fixture.Settle(Seconds(2));
  ASSERT_TRUE(seeded);

  // Crash the replica that shard 1's sub-client is connected to; the
  // sub-client fails over inside its ensemble and the router needs no map
  // change at all.
  ZkClient* sub = router->shard_client(map.entry(1).shard_id);
  ASSERT_NE(sub, nullptr);
  NodeId victim = sub->current_server();
  fixture.faults().Crash(victim);
  fixture.Settle(Seconds(8));  // silence detection + reconnect

  Status after = Status(ErrorCode::kInternal, "unset");
  router->SetData(pinned, "v2", -1, [&](Status s) { after = s; });
  fixture.Settle(Seconds(5));
  EXPECT_TRUE(after.ok()) << after.ToString();
  EXPECT_NE(sub->current_server(), victim);
}

// --- DepSpace ------------------------------------------------------------

DsTuple Tup(const std::string& a, const std::string& b) {
  return DsTuple{DsField{a}, DsField{b}};
}

TEST(DsShardRouterTest, TuplesRouteByFirstField) {
  CoordFixture fixture(ShardedDs(4, 1));
  fixture.Start();
  DsShardRouter* router = fixture.ds_router(0);
  ASSERT_NE(router, nullptr);

  int ok = 0;
  for (int i = 0; i < 16; ++i) {
    router->Out(Tup("k" + std::to_string(i), "v"), [&](Result<DsReply> r) {
      ok += r.ok() && r->code == ErrorCode::kOk;
    });
  }
  fixture.Settle(Seconds(3));
  ASSERT_EQ(ok, 16);

  // Exact-first-field templates find their tuples on whatever shard they
  // hashed to.
  int found = 0;
  for (int i = 0; i < 16; ++i) {
    DsTemplate t{DsTField::Exact("k" + std::to_string(i)), DsTField::Any()};
    router->Rdp(t, [&](Result<DsReply> r) {
      found += r.ok() && r->code == ErrorCode::kOk && r->tuples.size() == 1;
    });
  }
  fixture.Settle(Seconds(3));
  EXPECT_EQ(found, 16);
}

TEST(DsShardRouterTest, WildcardSingleTupleOpsRejectedRdAllGathers) {
  CoordFixture fixture(ShardedDs(4, 1));
  fixture.Start();
  DsShardRouter* router = fixture.ds_router(0);

  int ok = 0;
  for (int i = 0; i < 12; ++i) {
    router->Out(Tup("g" + std::to_string(i), "payload"), [&](Result<DsReply> r) {
      ok += r.ok() && r->code == ErrorCode::kOk;
    });
  }
  fixture.Settle(Seconds(3));
  ASSERT_EQ(ok, 12);

  // A wildcard first field cannot be routed: Inp would consume one tuple per
  // shard, so it is rejected outright.
  Status inp_status = Status::Ok();
  router->Inp(DsTemplate{DsTField::Any(), DsTField::Exact("payload")},
              [&](Result<DsReply> r) {
                inp_status = r.ok() ? Status::Ok() : r.status();
              });
  fixture.Settle(Seconds(1));
  EXPECT_EQ(inp_status.code(), ErrorCode::kInvalidArgument) << inp_status.ToString();

  // RdAll is read-only, so it scatter-gathers and merges all shards' matches.
  size_t gathered = 0;
  router->RdAll(DsTemplate{DsTField::Any(), DsTField::Exact("payload")},
                [&](Result<DsReply> r) {
                  ASSERT_TRUE(r.ok()) << r.status().ToString();
                  gathered = r->tuples.size();
                });
  fixture.Settle(Seconds(3));
  EXPECT_EQ(gathered, 12u);
  // The workload really did span several shards.
  EXPECT_GT(router->sub_client_ids().size(), 1u);
}

TEST(DsShardRouterTest, StaleRejectionRefreshesMap) {
  CoordFixture fixture(ShardedDs(2, 1));
  fixture.Start();
  DsShardRouter* router = fixture.ds_router(0);
  uint64_t v_before = router->map_version();

  fixture.AddShard();  // pushes the new version into every replica group
  ASSERT_GT(fixture.shard_map().version(), v_before);

  int ok = 0;
  for (int i = 0; i < 12; ++i) {
    router->Out(Tup("s" + std::to_string(i), "v"), [&](Result<DsReply> r) {
      ok += r.ok() && r->code == ErrorCode::kOk;
    });
  }
  fixture.Settle(Seconds(5));
  EXPECT_EQ(ok, 12);
  EXPECT_GE(router->stale_refreshes(), 1);
  EXPECT_EQ(router->map_version(), fixture.shard_map().version());
  EXPECT_EQ(router->shard_count(), 3u);
}

}  // namespace
}  // namespace edc
