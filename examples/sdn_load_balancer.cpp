// §7.1 use case: round-robin flow assignment in a distributed SDN
// controller. Each controller node grabs a globally unique sequence number
// from the coordination service and maps it onto a backend server. Without
// extensions the shared counter bottlenecks below ~2k flows/s under
// contention; with the counter extension the same EZK ensemble sustains an
// order of magnitude more — enough to put the coordination service ON the
// flow-setup path.

#include <cstdio>
#include <vector>

#include "edc/harness/fixture.h"
#include "edc/recipes/recipes.h"

using namespace edc;  // NOLINT: example brevity

namespace {

constexpr size_t kControllers = 8;
constexpr int kBackends = 4;
constexpr Duration kRun = Seconds(2);

double AssignFlows(SystemKind system) {
  FixtureOptions options;
  options.system = system;
  options.num_clients = kControllers;
  CoordFixture fixture(options);
  fixture.Start();

  std::vector<std::unique_ptr<SharedCounter>> counters;
  for (size_t i = 0; i < kControllers; ++i) {
    counters.push_back(
        std::make_unique<SharedCounter>(fixture.coord(i), IsExtensible(system)));
  }
  bool ready = false;
  counters[0]->Setup([&](Status) { ready = true; });
  while (!ready) {
    fixture.Settle(Millis(100));
  }
  int attached = 1;
  for (size_t i = 1; i < kControllers; ++i) {
    counters[i]->Attach([&](Status) { ++attached; });
  }
  while (attached < static_cast<int>(kControllers)) {
    fixture.Settle(Millis(100));
  }

  // Every controller node assigns flows in a closed loop.
  std::vector<int64_t> per_backend(kBackends, 0);
  int64_t assigned = 0;
  SimTime end = fixture.loop().now() + kRun;
  std::function<void(size_t)> assign = [&](size_t node) {
    if (fixture.loop().now() >= end) {
      return;
    }
    counters[node]->Increment([&, node](Result<int64_t> seq) {
      if (seq.ok()) {
        ++per_backend[static_cast<size_t>(*seq % kBackends)];
        ++assigned;
      }
      assign(node);
    });
  };
  for (size_t i = 0; i < kControllers; ++i) {
    assign(i);
  }
  fixture.loop().RunUntil(end);

  std::printf("%-10s assigned %6lld flows in %.0fs (%.0f flows/s); backend spread:",
              SystemName(system), static_cast<long long>(assigned), ToSeconds(kRun),
              static_cast<double>(assigned) / ToSeconds(kRun));
  for (int b = 0; b < kBackends; ++b) {
    std::printf(" %lld", static_cast<long long>(per_backend[static_cast<size_t>(b)]));
  }
  std::printf("\n");
  return static_cast<double>(assigned) / ToSeconds(kRun);
}

}  // namespace

int main() {
  std::printf("SDN load balancing via a shared sequence number (%zu controller nodes)\n\n",
              kControllers);
  double base = AssignFlows(SystemKind::kZooKeeper);
  double ext = AssignFlows(SystemKind::kExtensibleZooKeeper);
  std::printf("\nextension speedup: %.1fx — the paper argues >2k flows/s is out of reach\n"
              "without extensions, while EZK reaches the ~25k increments/s regime (§7.1).\n",
              ext / base);
  return 0;
}
