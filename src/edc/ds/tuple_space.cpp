#include "edc/ds/tuple_space.h"

#include <algorithm>
#include <utility>

#include "edc/common/hash.h"

namespace edc {

void TupleSpace::Out(DsTuple tuple, SimTime now, NodeId owner, Duration lease) {
  DsEntry entry;
  entry.tuple = std::move(tuple);
  entry.seq = next_seq_++;
  entry.ctime = now;
  entry.deadline = lease > 0 ? now + lease : 0;
  entry.owner = owner;
  entries_.push_back(std::move(entry));
}

Result<DsTuple> TupleSpace::Rdp(const DsTemplate& templ) const {
  for (const DsEntry& e : entries_) {
    if (TupleMatches(templ, e.tuple)) {
      return e.tuple;
    }
  }
  return Status(ErrorCode::kNoNode, "no matching tuple");
}

Result<DsTuple> TupleSpace::Inp(const DsTemplate& templ) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (TupleMatches(templ, it->tuple)) {
      DsTuple t = std::move(it->tuple);
      entries_.erase(it);
      return t;
    }
  }
  return Status(ErrorCode::kNoNode, "no matching tuple");
}

std::vector<DsEntry> TupleSpace::RdAll(const DsTemplate& templ) const {
  std::vector<DsEntry> out;
  for (const DsEntry& e : entries_) {
    if (TupleMatches(templ, e.tuple)) {
      out.push_back(e);
    }
  }
  return out;
}

Status TupleSpace::Cas(const DsTemplate& templ, DsTuple tuple, SimTime now, NodeId owner,
                       Duration lease) {
  if (HasMatch(templ)) {
    return Status(ErrorCode::kNodeExists, "template already matched");
  }
  Out(std::move(tuple), now, owner, lease);
  return Status::Ok();
}

Status TupleSpace::Replace(const DsTemplate& templ, DsTuple tuple, SimTime now, NodeId owner,
                           DsTuple* removed) {
  auto old = Inp(templ);
  if (!old.ok()) {
    return old.status();
  }
  if (removed != nullptr) {
    *removed = std::move(*old);
  }
  Out(std::move(tuple), now, owner, 0);
  return Status::Ok();
}

size_t TupleSpace::Renew(const DsTemplate& templ, NodeId owner, SimTime now, Duration lease) {
  size_t renewed = 0;
  for (DsEntry& e : entries_) {
    if (e.deadline != 0 && e.owner == owner && TupleMatches(templ, e.tuple)) {
      e.deadline = now + lease;
      ++renewed;
    }
  }
  return renewed;
}

std::vector<DsTuple> TupleSpace::Expire(SimTime now) {
  std::vector<DsTuple> expired;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if (it->deadline != 0 && it->deadline <= now) {
      expired.push_back(std::move(it->tuple));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

bool TupleSpace::HasMatch(const DsTemplate& templ) const {
  for (const DsEntry& e : entries_) {
    if (TupleMatches(templ, e.tuple)) {
      return true;
    }
  }
  return false;
}

std::vector<uint8_t> TupleSpace::Serialize() const {
  Encoder enc;
  enc.PutU64(next_seq_);
  enc.PutVarint(entries_.size());
  for (const DsEntry& e : entries_) {
    EncodeTuple(enc, e.tuple);
    enc.PutU64(e.seq);
    enc.PutI64(e.ctime);
    enc.PutI64(e.deadline);
    enc.PutU32(e.owner);
  }
  return enc.Release();
}

uint64_t TupleSpace::Digest() const { return Fnv1a64(Serialize()); }

Status TupleSpace::Load(const std::vector<uint8_t>& snapshot) {
  entries_.clear();
  next_seq_ = 1;
  if (snapshot.empty()) {
    return Status::Ok();
  }
  Decoder dec(snapshot);
  auto next_seq = dec.GetU64();
  auto n = dec.GetVarint();
  if (!next_seq.ok() || !n.ok()) {
    return Status(ErrorCode::kDecodeError, "tuple space header");
  }
  next_seq_ = *next_seq;
  for (uint64_t i = 0; i < *n; ++i) {
    DsEntry e;
    auto tuple = DecodeTuple(dec);
    auto seq = dec.GetU64();
    auto ctime = dec.GetI64();
    auto deadline = dec.GetI64();
    auto owner = dec.GetU32();
    if (!tuple.ok() || !seq.ok() || !ctime.ok() || !deadline.ok() || !owner.ok()) {
      return Status(ErrorCode::kDecodeError, "tuple space entry");
    }
    e.tuple = std::move(*tuple);
    e.seq = *seq;
    e.ctime = *ctime;
    e.deadline = *deadline;
    e.owner = *owner;
    entries_.push_back(std::move(e));
  }
  return Status::Ok();
}

}  // namespace edc
