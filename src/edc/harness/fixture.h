// Benchmark fixture: boots one of the four evaluated systems (ZooKeeper,
// EXTENSIBLE ZOOKEEPER, DepSpace, EXTENSIBLE DEPSPACE) inside the simulator
// with the paper's fault threshold (f=1: three ZK replicas / four DepSpace
// replicas) and connects N coordination clients.

#ifndef EDC_HARNESS_FIXTURE_H_
#define EDC_HARNESS_FIXTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "edc/common/rng.h"
#include "edc/ds/client.h"
#include "edc/ds/server.h"
#include "edc/obs/obs.h"
#include "edc/ext/ds_binding.h"
#include "edc/ext/zk_binding.h"
#include "edc/recipes/coord.h"
#include "edc/sim/costs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/faults.h"
#include "edc/sim/network.h"
#include "edc/zk/client.h"
#include "edc/zk/server.h"

namespace edc {

enum class SystemKind {
  kZooKeeper,
  kExtensibleZooKeeper,
  kDepSpace,
  kExtensibleDepSpace,
};

const char* SystemName(SystemKind kind);
bool IsExtensible(SystemKind kind);
bool IsZkFamily(SystemKind kind);

struct FixtureOptions {
  SystemKind system = SystemKind::kZooKeeper;
  size_t num_clients = 1;
  uint64_t seed = 1;
  LinkParams link;  // LAN defaults; override for the WAN experiment
  CostModel costs;
  ExtensionLimits limits;
  // Server/client knobs forwarded verbatim to every node of the matching
  // family (conformance tests tighten timeouts and plant test-only bugs).
  ZkServerOptions zk_server;
  ZkClientOptions zk_client;
  DsServerOptions ds_server;
  DsClientOptions ds_client;
  // Observability: when true, Start() wires a shared Obs (tracer + metrics
  // registry) through the network, every server and every client, and
  // installs the event-loop context hooks that carry trace contexts across
  // scheduled callbacks. Instrumentation only reads the simulated clock —
  // enabling it never changes schedules, packet traces or applied logs.
  bool observability = false;
  // Keep finished spans in memory for ExportJson (Perfetto); off = only
  // per-op breakdowns survive.
  bool retain_spans = false;
};

class CoordFixture {
 public:
  explicit CoordFixture(FixtureOptions options);
  ~CoordFixture();

  // Boots servers and connects every client; runs the sim until ready.
  void Start();

  size_t num_clients() const { return coords_.size(); }
  CoordClient* coord(size_t i) { return coords_[i].get(); }
  NodeId client_node(size_t i) const { return 100 + static_cast<NodeId>(i); }

  // Raw clients for observer attachment (history recording); index matches
  // coord(i). Null for the other family.
  ZkClient* zk_client(size_t i) { return i < zk_clients_.size() ? zk_clients_[i].get() : nullptr; }
  DsClient* ds_client(size_t i) { return i < ds_clients_.size() ? ds_clients_[i].get() : nullptr; }

  EventLoop& loop() { return loop_; }
  Network& net() { return *net_; }
  void Settle(Duration d) { loop_.RunUntil(loop_.now() + d); }

  // Fault injection: every server is registered with crash/restart closures
  // at Start(), so plans and direct calls work on either system family.
  FaultInjector& faults() { return *faults_; }
  void RunPlan(const FaultPlan& plan) { faults_->Run(plan); }

  // Total bytes clients have sent so far (request side of "data sent by
  // client", Fig. 8/10).
  int64_t ClientBytesSent() const;

  // Shared observability sinks (valid whether or not observability is on;
  // metrics/spans only accumulate when it is).
  Obs& obs() { return obs_; }
  // Snapshots gauge-style state into the registry: per-link packet/byte
  // totals and per-server CPU busy time. Call before exporting metrics.
  void CollectMetrics();

  // Both one-shot EDS invariants (EdsDigestsMatch + EdsLogBounded) in one
  // call; `why` receives the first violation. Vacuously true for ZK-family
  // fixtures.
  bool CheckEdsInvariants(std::string* why = nullptr) const;

  // Direct server access for special benches (fault injection, CPU stats).
  std::vector<std::unique_ptr<ZkServer>> zk_servers;
  std::vector<std::unique_ptr<DsServer>> ds_servers;

 private:
  void WireObservability();

  FixtureOptions options_;
  EventLoop loop_;
  Obs obs_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<FaultInjector> faults_;
  std::vector<std::unique_ptr<ZkExtensionManager>> zk_managers_;
  std::vector<std::unique_ptr<DsExtensionManager>> ds_managers_;
  std::vector<std::unique_ptr<ZkClient>> zk_clients_;
  std::vector<std::unique_ptr<DsClient>> ds_clients_;
  std::vector<std::unique_ptr<CoordClient>> coords_;
};

// Chaos/fault tests read better against this name: a fixture-as-cluster with
// FaultPlan execution and registered crash/restart closures.
using ClusterFixture = CoordFixture;

}  // namespace edc

#endif  // EDC_HARNESS_FIXTURE_H_
