#include "edc/route/shard_router.h"

#include <cassert>
#include <memory>
#include <utility>

namespace edc {

// ------------------------------------------------------------- ZkShardRouter

ZkShardRouter::ZkShardRouter(EventLoop* loop, Network* net, NodeId base_id, ShardMap map,
                             ShardMapSource source, ZkShardRouterOptions options)
    : loop_(loop),
      net_(net),
      base_id_(base_id),
      map_(std::move(map)),
      source_(std::move(source)),
      options_(std::move(options)) {
  assert(!map_.empty() && "router needs at least one shard");
}

ZkShardRouter::~ZkShardRouter() = default;

ZkShardRouter::Sub& ZkShardRouter::EnsureSub(size_t entry_idx) {
  const ShardEntry& e = map_.entry(entry_idx);
  auto it = subs_.find(e.shard_id);
  if (it != subs_.end()) {
    return it->second;
  }
  ShardView view{e.shard_id, map_.version(), e.ensemble};
  // Spread the initial replica placement of a shard's many routers across the
  // ensemble instead of dog-piling replica 0.
  if (!view.ensemble.empty()) {
    view.ensemble.preferred =
        (base_id_ / options_.id_stride + e.shard_id) % view.ensemble.size();
  }
  Sub& sub = subs_[e.shard_id];
  sub.client = std::make_unique<ZkClient>(loop_, net_, base_id_ + e.shard_id,
                                          std::move(view), options_.client);
  if (obs_ != nullptr) {
    sub.client->SetObs(obs_);
  }
  if (watch_handler_) {
    sub.client->SetWatchHandler(watch_handler_);
  }
  if (session_cb_) {
    sub.client->SetSessionEventHandler(session_cb_);
  }
  if (sub_hook_) {
    sub_hook_(e.shard_id, sub.client.get());
  }
  uint32_t shard_id = e.shard_id;
  sub.connecting = true;
  sub.client->Connect([this, shard_id](Status) {
    Sub& s = subs_[shard_id];
    s.connecting = false;
    // Flush even on a (rare, attempts-bounded) connect failure: the queued
    // ops then fail through the sub-client with an honest error instead of
    // hanging forever.
    s.connected = s.client->connected();
    std::vector<std::function<void(ZkClient*)>> waiting;
    waiting.swap(s.waiting);
    for (auto& fn : waiting) {
      fn(s.client.get());
    }
  });
  return sub;
}

void ZkShardRouter::WhenReady(size_t entry_idx, std::function<void(ZkClient*)> fn) {
  Sub& sub = EnsureSub(entry_idx);
  if (sub.connected || sub.client->connected()) {
    fn(sub.client.get());
    return;
  }
  sub.waiting.push_back(std::move(fn));
}

bool ZkShardRouter::RefreshMap() {
  if (!source_) {
    return false;
  }
  ShardMap fresh = source_();
  if (fresh.version() <= map_.version()) {
    return false;
  }
  map_ = std::move(fresh);
  ++stale_refreshes_;
  for (auto& [shard_id, sub] : subs_) {
    sub.client->set_map_version(map_.version());
  }
  return true;
}

void ZkShardRouter::Connect(VoidCb done) {
  WhenReady(0, [done](ZkClient* c) {
    if (done) {
      done(c->connected() ? Status() : Status(ErrorCode::kConnectionLoss, "connect failed"));
    }
  });
}

void ZkShardRouter::Close(VoidCb done) {
  auto remaining = std::make_shared<size_t>(subs_.size());
  if (*remaining == 0) {
    if (done) {
      done(Status());
    }
    return;
  }
  for (auto& [shard_id, sub] : subs_) {
    sub.client->Close([remaining, done](Status) {
      if (--*remaining == 0 && done) {
        done(Status());
      }
    });
  }
}

void ZkShardRouter::IssueV(const CoordKey& key,
                           std::function<void(ZkClient*, VoidCb)> issue, VoidCb done,
                           int attempt) {
  uint64_t issued = map_.version();
  WhenReady(map_.IndexFor(key), [this, key, issue, done, attempt, issued](ZkClient* c) {
    issue(c, [this, key, issue, done, attempt, issued](Status s) {
      if (Stale(s) && attempt < options_.stale_retry_limit &&
          (RefreshMap() || map_.version() > issued)) {
        IssueV(key, issue, done, attempt + 1);
        return;
      }
      if (done) {
        done(s);
      }
    });
  });
}

void ZkShardRouter::Create(const std::string& path, const std::string& data,
                           bool ephemeral, bool sequential, StringCb done) {
  Issue<std::string>(
      CoordKey::ForPath(path),
      [path, data, ephemeral, sequential](ZkClient* c, StringCb cb) {
        c->Create(path, data, ephemeral, sequential, std::move(cb));
      },
      std::move(done));
}

void ZkShardRouter::Delete(const std::string& path, int32_t version, VoidCb done) {
  IssueV(
      CoordKey::ForPath(path),
      [path, version](ZkClient* c, VoidCb cb) { c->Delete(path, version, std::move(cb)); },
      std::move(done));
}

void ZkShardRouter::Exists(const std::string& path, bool watch, ExistsCb done) {
  Issue<ExistsResult>(
      CoordKey::ForPath(path),
      [path, watch](ZkClient* c, ExistsCb cb) { c->Exists(path, watch, std::move(cb)); },
      std::move(done));
}

void ZkShardRouter::GetData(const std::string& path, bool watch, NodeCb done) {
  Issue<NodeResult>(
      CoordKey::ForPath(path),
      [path, watch](ZkClient* c, NodeCb cb) { c->GetData(path, watch, std::move(cb)); },
      std::move(done));
}

void ZkShardRouter::SetData(const std::string& path, const std::string& data,
                            int32_t version, VoidCb done) {
  IssueV(
      CoordKey::ForPath(path),
      [path, data, version](ZkClient* c, VoidCb cb) {
        c->SetData(path, data, version, std::move(cb));
      },
      std::move(done));
}

void ZkShardRouter::GetChildren(const std::string& path, bool watch, ChildrenCb done) {
  Issue<std::vector<std::string>>(
      CoordKey::ForPath(path),
      [path, watch](ZkClient* c, ChildrenCb cb) {
        c->GetChildren(path, watch, std::move(cb));
      },
      std::move(done));
}

void ZkShardRouter::Multi(std::vector<ZkOp> ops, VoidCb done) {
  if (ops.empty()) {
    if (done) {
      done(Status(ErrorCode::kInvalidArgument, "empty multi"));
    }
    return;
  }
  CoordKey key = CoordKey::ForPath(ops[0].path);
  size_t shard = map_.IndexFor(key);
  for (const ZkOp& op : ops) {
    if (map_.IndexFor(CoordKey::ForPath(op.path)) != shard) {
      if (done) {
        done(Status(ErrorCode::kInvalidArgument,
                    "multi spans shards; use the TwoPhaseMulti recipe"));
      }
      return;
    }
  }
  auto shared_ops = std::make_shared<std::vector<ZkOp>>(std::move(ops));
  IssueV(
      key,
      [shared_ops](ZkClient* c, VoidCb cb) { c->Multi(*shared_ops, std::move(cb)); },
      std::move(done));
}

void ZkShardRouter::Reconfig(size_t entry_idx, const std::string& spec, VoidCb done) {
  if (entry_idx >= map_.size()) {
    if (done) {
      done(Status(ErrorCode::kInvalidArgument, "no such shard"));
    }
    return;
  }
  WhenReady(entry_idx, [spec, done = std::move(done)](ZkClient* c) {
    c->Reconfig(spec, done);
  });
}

void ZkShardRouter::CallExtension(const std::string& trigger_path, const std::string& args,
                                  ExtensionCb done) {
  Issue<ExtensionResult>(
      CoordKey::ForPath(trigger_path),
      [trigger_path, args](ZkClient* c, ExtensionCb cb) {
        c->CallExtension(trigger_path, args, std::move(cb));
      },
      std::move(done));
}

void ZkShardRouter::FanOut(std::function<void(ZkClient*, VoidCb)> issue, VoidCb done) {
  size_t n = map_.size();
  auto remaining = std::make_shared<size_t>(n);
  auto first_error = std::make_shared<Status>();
  for (size_t i = 0; i < n; ++i) {
    WhenReady(i, [issue, remaining, first_error, done](ZkClient* c) {
      issue(c, [remaining, first_error, done](Status s) {
        if (!s.ok() && first_error->ok()) {
          *first_error = s;
        }
        if (--*remaining == 0 && done) {
          done(*first_error);
        }
      });
    });
  }
}

void ZkShardRouter::RegisterExtension(const std::string& name, const std::string& code,
                                      VoidCb done) {
  FanOut(
      [name, code](ZkClient* c, VoidCb cb) {
        c->RegisterExtension(name, code, std::move(cb));
      },
      std::move(done));
}

void ZkShardRouter::DeregisterExtension(const std::string& name, VoidCb done) {
  FanOut([name](ZkClient* c, VoidCb cb) { c->DeregisterExtension(name, std::move(cb)); },
         std::move(done));
}

void ZkShardRouter::AcknowledgeExtension(const std::string& name, VoidCb done) {
  FanOut([name](ZkClient* c, VoidCb cb) { c->AcknowledgeExtension(name, std::move(cb)); },
         std::move(done));
}

void ZkShardRouter::SetWatchHandler(WatchCb handler) {
  watch_handler_ = std::move(handler);
  for (auto& [shard_id, sub] : subs_) {
    sub.client->SetWatchHandler(watch_handler_);
  }
}

void ZkShardRouter::SetSessionEventHandler(SessionEventCb handler) {
  session_cb_ = std::move(handler);
  for (auto& [shard_id, sub] : subs_) {
    sub.client->SetSessionEventHandler(session_cb_);
  }
}

bool ZkShardRouter::connected() const {
  auto it = subs_.find(map_.entry(0).shard_id);
  return it != subs_.end() && it->second.client->connected();
}

uint64_t ZkShardRouter::session() const {
  auto it = subs_.find(map_.entry(0).shard_id);
  return it == subs_.end() ? 0 : it->second.client->session();
}

ZkClient* ZkShardRouter::shard_client(uint32_t shard_id) const {
  auto it = subs_.find(shard_id);
  return it == subs_.end() ? nullptr : it->second.client.get();
}

std::vector<NodeId> ZkShardRouter::sub_client_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(subs_.size());
  for (const auto& [shard_id, sub] : subs_) {
    ids.push_back(sub.client->id());
  }
  return ids;
}

void ZkShardRouter::SetSubClientHook(std::function<void(uint32_t, ZkClient*)> hook) {
  sub_hook_ = std::move(hook);
  if (!sub_hook_) {
    return;
  }
  for (auto& [shard_id, sub] : subs_) {
    sub_hook_(shard_id, sub.client.get());
  }
}

void ZkShardRouter::SetObs(Obs* obs) {
  obs_ = obs;
  for (auto& [shard_id, sub] : subs_) {
    sub.client->SetObs(obs);
  }
}

// ------------------------------------------------------------- DsShardRouter

DsShardRouter::DsShardRouter(EventLoop* loop, Network* net, NodeId base_id, ShardMap map,
                             ShardMapSource source, DsShardRouterOptions options)
    : loop_(loop),
      net_(net),
      base_id_(base_id),
      map_(std::move(map)),
      source_(std::move(source)),
      options_(std::move(options)) {
  assert(!map_.empty() && "router needs at least one shard");
}

DsShardRouter::~DsShardRouter() = default;

CoordKey DsShardRouter::KeyOf(const DsTuple& tuple) {
  if (tuple.empty()) {
    return CoordKey::Unroutable();
  }
  return CoordKey::ForField(FieldToString(tuple[0]));
}

CoordKey DsShardRouter::KeyOf(const DsTemplate& templ) {
  if (templ.empty() || templ[0].kind == DsTField::Kind::kAny) {
    return CoordKey::Unroutable();
  }
  // kPrefix first fields are path prefixes; ForField reduces paths to their
  // subtree key, so a prefix template colocates with every tuple it matches.
  return CoordKey::ForField(FieldToString(templ[0].value));
}

DsClient* DsShardRouter::EnsureSub(size_t entry_idx) {
  const ShardEntry& e = map_.entry(entry_idx);
  auto it = subs_.find(e.shard_id);
  if (it != subs_.end()) {
    return it->second.get();
  }
  ShardView view{e.shard_id, map_.version(), e.ensemble};
  auto client = std::make_unique<DsClient>(loop_, net_, base_id_ + e.shard_id,
                                           std::move(view), options_.client);
  DsClient* raw = client.get();
  if (obs_ != nullptr) {
    raw->SetObs(obs_);
  }
  if (auto_renew_all_) {
    raw->EnableAutoRenewAll();
  }
  if (sub_hook_) {
    sub_hook_(e.shard_id, raw);
  }
  subs_[e.shard_id] = std::move(client);
  return raw;
}

bool DsShardRouter::RefreshMap() {
  if (!source_) {
    return false;
  }
  ShardMap fresh = source_();
  if (fresh.version() <= map_.version()) {
    return false;
  }
  map_ = std::move(fresh);
  ++stale_refreshes_;
  for (auto& [shard_id, sub] : subs_) {
    sub->set_map_version(map_.version());
  }
  return true;
}

namespace {

bool RejectUnroutable(const CoordKey& key, const char* op, const DsApi::ReplyCb& done) {
  if (key.routable()) {
    return false;
  }
  if (done) {
    done(Status(ErrorCode::kInvalidArgument,
                std::string(op) +
                    ": wildcard first field cannot be routed to one shard; "
                    "pin the first field (RdAll scatter-gathers)"));
  }
  return true;
}

}  // namespace

void DsShardRouter::Out(DsTuple tuple, ReplyCb done) {
  CoordKey key = KeyOf(tuple);
  if (RejectUnroutable(key, "out", done)) {
    return;
  }
  auto shared = std::make_shared<DsTuple>(std::move(tuple));
  Issue<DsReply>(
      key, [shared](DsClient* c, ReplyCb cb) { c->Out(*shared, std::move(cb)); },
      std::move(done));
}

void DsShardRouter::OutLease(DsTuple tuple, ReplyCb done) {
  CoordKey key = KeyOf(tuple);
  if (RejectUnroutable(key, "outLease", done)) {
    return;
  }
  auto shared = std::make_shared<DsTuple>(std::move(tuple));
  Issue<DsReply>(
      key, [shared](DsClient* c, ReplyCb cb) { c->OutLease(*shared, std::move(cb)); },
      std::move(done));
}

void DsShardRouter::ReleaseLease(const DsTemplate& templ) {
  CoordKey key = KeyOf(templ);
  if (key.routable()) {
    EnsureSub(map_.IndexFor(key))->ReleaseLease(templ);
    return;
  }
  // Wildcard release: leases only live on shards this router has touched.
  for (auto& [shard_id, sub] : subs_) {
    sub->ReleaseLease(templ);
  }
}

void DsShardRouter::Rdp(DsTemplate templ, ReplyCb done) {
  CoordKey key = KeyOf(templ);
  if (RejectUnroutable(key, "rdp", done)) {
    return;
  }
  auto shared = std::make_shared<DsTemplate>(std::move(templ));
  Issue<DsReply>(
      key, [shared](DsClient* c, ReplyCb cb) { c->Rdp(*shared, std::move(cb)); },
      std::move(done));
}

void DsShardRouter::Inp(DsTemplate templ, ReplyCb done) {
  CoordKey key = KeyOf(templ);
  if (RejectUnroutable(key, "inp", done)) {
    return;
  }
  auto shared = std::make_shared<DsTemplate>(std::move(templ));
  Issue<DsReply>(
      key, [shared](DsClient* c, ReplyCb cb) { c->Inp(*shared, std::move(cb)); },
      std::move(done));
}

void DsShardRouter::Rd(DsTemplate templ, ReplyCb done) {
  CoordKey key = KeyOf(templ);
  if (RejectUnroutable(key, "rd", done)) {
    return;
  }
  auto shared = std::make_shared<DsTemplate>(std::move(templ));
  Issue<DsReply>(
      key, [shared](DsClient* c, ReplyCb cb) { c->Rd(*shared, std::move(cb)); },
      std::move(done));
}

void DsShardRouter::In(DsTemplate templ, ReplyCb done) {
  CoordKey key = KeyOf(templ);
  if (RejectUnroutable(key, "in", done)) {
    return;
  }
  auto shared = std::make_shared<DsTemplate>(std::move(templ));
  Issue<DsReply>(
      key, [shared](DsClient* c, ReplyCb cb) { c->In(*shared, std::move(cb)); },
      std::move(done));
}

void DsShardRouter::Cas(DsTemplate templ, DsTuple tuple, ReplyCb done) {
  CoordKey tkey = KeyOf(templ);
  CoordKey vkey = KeyOf(tuple);
  CoordKey key = tkey.routable() ? tkey : vkey;
  if (RejectUnroutable(key, "cas", done)) {
    return;
  }
  if (tkey.routable() && vkey.routable() &&
      map_.IndexFor(tkey) != map_.IndexFor(vkey)) {
    if (done) {
      done(Status(ErrorCode::kInvalidArgument,
                  "cas template and tuple route to different shards"));
    }
    return;
  }
  auto st = std::make_shared<DsTemplate>(std::move(templ));
  auto sv = std::make_shared<DsTuple>(std::move(tuple));
  Issue<DsReply>(
      key, [st, sv](DsClient* c, ReplyCb cb) { c->Cas(*st, *sv, std::move(cb)); },
      std::move(done));
}

void DsShardRouter::Replace(DsTemplate templ, DsTuple tuple, ReplyCb done) {
  CoordKey tkey = KeyOf(templ);
  CoordKey vkey = KeyOf(tuple);
  CoordKey key = tkey.routable() ? tkey : vkey;
  if (RejectUnroutable(key, "replace", done)) {
    return;
  }
  if (tkey.routable() && vkey.routable() &&
      map_.IndexFor(tkey) != map_.IndexFor(vkey)) {
    if (done) {
      done(Status(ErrorCode::kInvalidArgument,
                  "replace template and tuple route to different shards"));
    }
    return;
  }
  auto st = std::make_shared<DsTemplate>(std::move(templ));
  auto sv = std::make_shared<DsTuple>(std::move(tuple));
  Issue<DsReply>(
      key, [st, sv](DsClient* c, ReplyCb cb) { c->Replace(*st, *sv, std::move(cb)); },
      std::move(done));
}

void DsShardRouter::RdAll(DsTemplate templ, ReplyCb done) {
  CoordKey key = KeyOf(templ);
  auto shared = std::make_shared<DsTemplate>(std::move(templ));
  if (key.routable()) {
    Issue<DsReply>(
        key, [shared](DsClient* c, ReplyCb cb) { c->RdAll(*shared, std::move(cb)); },
        std::move(done));
    return;
  }
  // Scatter-gather over every shard; merged tuples come back in shard-index
  // order so same-seed runs stay byte-identical.
  size_t n = map_.size();
  auto legs = std::make_shared<std::vector<Result<DsReply>>>(n, Result<DsReply>(DsReply{}));
  auto remaining = std::make_shared<size_t>(n);
  for (size_t i = 0; i < n; ++i) {
    DsClient* c = EnsureSub(i);
    c->RdAll(*shared, [i, legs, remaining, done](Result<DsReply> r) {
      (*legs)[i] = std::move(r);
      if (--*remaining != 0) {
        return;
      }
      DsReply merged;
      for (Result<DsReply>& leg : *legs) {
        if (!leg.ok()) {
          if (done) {
            done(std::move(leg));
          }
          return;
        }
        if (leg->code != ErrorCode::kOk && merged.code == ErrorCode::kOk) {
          merged.code = leg->code;
          merged.value = leg->value;
        }
        for (DsTuple& t : leg->tuples) {
          merged.tuples.push_back(std::move(t));
        }
      }
      if (done) {
        done(std::move(merged));
      }
    });
  }
}

void DsShardRouter::CallExtension(const std::string& trigger_path, const std::string& args,
                                  ExtensionCb done) {
  Issue<ExtensionResult>(
      CoordKey::ForPath(trigger_path),
      [trigger_path, args](DsClient* c, ExtensionCb cb) {
        c->CallExtension(trigger_path, args, std::move(cb));
      },
      std::move(done));
}

namespace {

// Joins a DS fan-out: first failed leg (transport error or reply error code)
// wins; otherwise the last ok reply is delivered.
struct DsFanJoin {
  size_t remaining;
  Result<DsReply> outcome{DsReply{}};
  bool failed = false;
};

}  // namespace

void DsShardRouter::RegisterExtension(const std::string& name, const std::string& code,
                                      ReplyCb done) {
  size_t n = map_.size();
  auto join = std::make_shared<DsFanJoin>();
  join->remaining = n;
  for (size_t i = 0; i < n; ++i) {
    EnsureSub(i)->RegisterExtension(name, code, [join, done](Result<DsReply> r) {
      bool bad = !r.ok() || r->code != ErrorCode::kOk;
      if (bad && !join->failed) {
        join->failed = true;
        join->outcome = std::move(r);
      } else if (!join->failed) {
        join->outcome = std::move(r);
      }
      if (--join->remaining == 0 && done) {
        done(std::move(join->outcome));
      }
    });
  }
}

void DsShardRouter::DeregisterExtension(const std::string& name, ReplyCb done) {
  size_t n = map_.size();
  auto join = std::make_shared<DsFanJoin>();
  join->remaining = n;
  for (size_t i = 0; i < n; ++i) {
    EnsureSub(i)->DeregisterExtension(name, [join, done](Result<DsReply> r) {
      bool bad = !r.ok() || r->code != ErrorCode::kOk;
      if (bad && !join->failed) {
        join->failed = true;
        join->outcome = std::move(r);
      } else if (!join->failed) {
        join->outcome = std::move(r);
      }
      if (--join->remaining == 0 && done) {
        done(std::move(join->outcome));
      }
    });
  }
}

void DsShardRouter::AcknowledgeExtension(const std::string& name, ReplyCb done) {
  size_t n = map_.size();
  auto join = std::make_shared<DsFanJoin>();
  join->remaining = n;
  for (size_t i = 0; i < n; ++i) {
    EnsureSub(i)->AcknowledgeExtension(name, [join, done](Result<DsReply> r) {
      bool bad = !r.ok() || r->code != ErrorCode::kOk;
      if (bad && !join->failed) {
        join->failed = true;
        join->outcome = std::move(r);
      } else if (!join->failed) {
        join->outcome = std::move(r);
      }
      if (--join->remaining == 0 && done) {
        done(std::move(join->outcome));
      }
    });
  }
}

void DsShardRouter::EnableAutoRenewAll() {
  auto_renew_all_ = true;
  for (auto& [shard_id, sub] : subs_) {
    sub->EnableAutoRenewAll();
  }
}

DsClient* DsShardRouter::shard_client(uint32_t shard_id) const {
  auto it = subs_.find(shard_id);
  return it == subs_.end() ? nullptr : it->second.get();
}

std::vector<NodeId> DsShardRouter::sub_client_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(subs_.size());
  for (const auto& [shard_id, sub] : subs_) {
    ids.push_back(sub->id());
  }
  return ids;
}

void DsShardRouter::Kill() {
  for (auto& [shard_id, sub] : subs_) {
    sub->Kill();
  }
}

void DsShardRouter::SetSubClientHook(std::function<void(uint32_t, DsClient*)> hook) {
  sub_hook_ = std::move(hook);
  if (!sub_hook_) {
    return;
  }
  for (auto& [shard_id, sub] : subs_) {
    sub_hook_(shard_id, sub.get());
  }
}

void DsShardRouter::SetObs(Obs* obs) {
  obs_ = obs;
  for (auto& [shard_id, sub] : subs_) {
    sub->SetObs(obs);
  }
}

}  // namespace edc
