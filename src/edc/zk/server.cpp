#include "edc/zk/server.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "edc/common/hash.h"
#include "edc/common/logging.h"
#include "edc/common/strings.h"

namespace edc {

namespace {
// Paths present in a freshly initialized service: the extension-manager data
// object (§3.5) exists from the start on every replica.
constexpr char kEmPath[] = "/em";
}  // namespace

ZkServer::ZkServer(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> members,
                   const CostModel& costs, ZkServerOptions options)
    : loop_(loop),
      net_(net),
      id_(id),
      costs_(costs),
      options_(options),
      cpu_(loop, options.cpu_cores),
      log_(loop, options.log) {
  ZabConfig zcfg;
  zcfg.members = std::move(members);
  zcfg.self = id;
  zcfg.heartbeat_interval = options.zab_heartbeat;
  zcfg.leader_timeout = options.zab_leader_timeout;
  zcfg.election_retry = options.zab_election_retry;
  zcfg.ack_aggregation = options.zab_ack_aggregation;
  zcfg.observer = options.observer;
  zcfg.snapshot_every = options.zab_snapshot_every;
  zcfg.promote_lag = options.zab_promote_lag;
  zab_ = std::make_unique<ZabNode>(loop, net, &cpu_, &log_, costs, zcfg, this);
}

void ZkServer::Start() {
  ++generation_;
  running_ = true;
  sessions_.clear();
  block_table_.clear();
  outstanding_.clear();
  watch_mgr_.Clear();
  client_nodes_.clear();
  pending_connects_.clear();
  expiring_sessions_.clear();
  pending_reconfig_ = PendingReconfig{};
  txns_applied_ = 0;
  applied_log_.clear();
  tree_.Load({});  // empty tree
  (void)tree_.Create(kEmPath, "", 0, false, 0, 0);
  if (hooks_ != nullptr) {
    hooks_->OnStateReloaded();
  }
  zab_->Start();
  StartSessionTimer();
}

void ZkServer::Crash() {
  ++generation_;
  running_ = false;
  zab_->Crash();
  loop_->Cancel(session_timer_);
  session_timer_ = kInvalidTimer;
}

void ZkServer::Restart() {
  ++generation_;
  running_ = true;
  sessions_.clear();
  block_table_.clear();
  outstanding_.clear();
  watch_mgr_.Clear();
  client_nodes_.clear();
  pending_connects_.clear();
  expiring_sessions_.clear();
  pending_reconfig_ = PendingReconfig{};
  applied_log_.clear();
  tree_.Load({});
  (void)tree_.Create(kEmPath, "", 0, false, 0, 0);
  if (hooks_ != nullptr) {
    hooks_->OnStateReloaded();
  }
  zab_->Restart();
  StartSessionTimer();
}

void ZkServer::StartSessionTimer() {
  uint64_t gen = generation_;
  session_timer_ = loop_->Schedule(options_.session_check_interval, [this, gen]() {
    if (gen != generation_ || !running_) {
      return;
    }
    CheckSessions();
    StartSessionTimer();
  });
}

bool ZkServer::OwnerReplicaDead(const SessionInfo& info) const {
  // Leader-side liveness judgment for the replica owning a session: acks and
  // heartbeat-acks keep PeerLastSeen fresh on a live follower, so silence for
  // a whole session timeout means the owner is down (or partitioned away —
  // indistinguishable, and either way its clients cannot be pinging it from
  // inside our partition). leader_since_ grounds the judgment right after an
  // election, before any ack has arrived.
  SimTime heard = std::max(zab_->PeerLastSeen(info.owner), leader_since_);
  return heard + info.timeout < loop_->now();
}

void ZkServer::CheckSessions() {
  for (const auto& [session, info] : sessions_) {
    if (info.timeout <= 0 || expiring_sessions_.count(session) > 0) {
      continue;
    }
    bool expire = false;
    if (info.owner == id_) {
      expire = info.last_seen + info.timeout < loop_->now();
    } else if (zab_->is_leader()) {
      // §5.1: sessions owned by a crashed replica must still expire so their
      // ephemerals and extension registrations are cleaned up; the owner will
      // never do it, so the leader does.
      expire = OwnerReplicaDead(info);
    }
    if (expire) {
      expiring_sessions_.insert(session);
      ZkRequestMsg msg;
      msg.session = session;
      msg.req_id = AllocInternalReqId();
      msg.op.type = ZkOpType::kCloseSession;
      EDC_LOG(kDebug) << "server " << id_ << " expiring session " << session
                      << (info.owner == id_ ? "" : " (dead owner)");
      RouteToLeader(id_, msg);
    }
  }
}

void ZkServer::SendPacket(NodeId dst, ZkMsgType type, std::vector<uint8_t> payload) {
  Packet pkt;
  pkt.src = id_;
  pkt.dst = dst;
  pkt.type = static_cast<uint32_t>(type);
  pkt.payload = std::move(payload);
  net_->Send(std::move(pkt));
}

void ZkServer::HandlePacket(Packet&& pkt) {
  if (!running_) {
    return;
  }
  if (IsZabPacket(pkt.type)) {
    zab_->HandlePacket(std::move(pkt));
    return;
  }
  if (!IsZkPacket(pkt.type)) {
    return;
  }
  uint64_t gen = generation_;
  auto shared = std::make_shared<Packet>(std::move(pkt));
  cpu_.Submit(costs_.rpc_decode_cpu, [this, gen, shared]() {
    if (gen != generation_ || !running_) {
      return;
    }
    ProcessClientPacket(std::move(*shared));
  });
}

void ZkServer::ProcessClientPacket(Packet&& pkt) {
  switch (static_cast<ZkMsgType>(pkt.type)) {
    case ZkMsgType::kConnect:
      OnConnect(std::move(pkt));
      break;
    case ZkMsgType::kRequest:
      OnClientRequest(std::move(pkt));
      break;
    case ZkMsgType::kForward: {
      auto m = DecodeZkForward(pkt.payload);
      if (m.ok()) {
        PrepAndPropose(m->origin, std::move(m->request));
      }
      break;
    }
    case ZkMsgType::kForwardReply: {
      auto m = DecodeZkForwardReply(pkt.payload);
      if (m.ok()) {
        SendReplyToClient(m->session, m->reply);
      }
      break;
    }
    default:
      break;
  }
}

void ZkServer::OnConnect(Packet&& pkt) {
  auto m = DecodeZkConnect(pkt.payload);
  if (!m.ok()) {
    return;
  }
  uint64_t session = (static_cast<uint64_t>(id_) << 40) | ++session_counter_;
  pending_connects_[session] = PendingConnect{pkt.src, m->old_session};
  client_nodes_[session] = pkt.src;
  ZkRequestMsg msg;
  msg.session = session;
  msg.req_id = 0;
  msg.op.type = ZkOpType::kSessionCreate;
  msg.op.data = std::to_string(m->session_timeout);
  RouteToLeader(id_, msg);
}

void ZkServer::OnClientRequest(Packet&& pkt) {
  auto m = DecodeZkRequest(pkt.payload);
  if (!m.ok()) {
    return;
  }
  ZkRequestMsg& msg = *m;
  auto session_it = sessions_.find(msg.session);
  if (session_it == sessions_.end()) {
    ZkReplyMsg reply;
    reply.req_id = msg.req_id;
    reply.code = ErrorCode::kSessionExpired;
    SendPacket(pkt.src, ZkMsgType::kReply, EncodeZkReply(reply));
    return;
  }
  client_nodes_[msg.session] = pkt.src;
  if (session_it->second.owner == id_) {
    session_it->second.last_seen = loop_->now();
  }

  if (msg.op.type == ZkOpType::kPing) {
    ZkReplyMsg reply;
    reply.req_id = msg.req_id;
    SendPacket(pkt.src, ZkMsgType::kReply, EncodeZkReply(reply));
    return;
  }

  // Map-version protocol (docs/sharding.md): reject clients routing with a
  // stale shard map before the request touches the tree or the ordering
  // pipeline. The expected version rides back in `value` so the client can
  // tell how far behind it is. Session closes stay admissible — a stale
  // client must still be able to leave cleanly.
  if (expected_map_version_ > 0 && msg.map_version < expected_map_version_ &&
      msg.op.type != ZkOpType::kCloseSession) {
    ZkReplyMsg reply;
    reply.req_id = msg.req_id;
    reply.code = ErrorCode::kShardMapStale;
    reply.value = std::to_string(expected_map_version_);
    SendPacket(pkt.src, ZkMsgType::kReply, EncodeZkReply(reply));
    return;
  }

  // Extension-subscribed operations take the leader path even when they are
  // reads; the subscription check itself is the §6.2 "overhead" hot path.
  bool matched = false;
  if (hooks_ != nullptr) {
    cpu_.Submit(costs_.ext_match_cpu, []() {});
    matched = hooks_->MatchesOperation(msg.session, msg.op);
  }
  if (!matched && IsReadOp(msg.op.type)) {
    uint64_t gen = generation_;
    NodeId client = pkt.src;
    auto shared = std::make_shared<ZkRequestMsg>(std::move(msg));
    cpu_.Submit(costs_.read_cpu, [this, gen, shared, client]() {
      if (gen != generation_ || !running_) {
        return;
      }
      ServeRead(shared->session, *shared, client);
    });
    return;
  }
  RouteToLeader(id_, msg);
}

void ZkServer::ServeRead(uint64_t session, const ZkRequestMsg& msg, NodeId client) {
  ZkReplyMsg reply;
  reply.req_id = msg.req_id;
  switch (msg.op.type) {
    case ZkOpType::kExists: {
      bool exists = tree_.Exists(msg.op.path);
      reply.value = exists ? "1" : "0";
      if (exists) {
        auto node = tree_.Get(msg.op.path);
        reply.has_stat = true;
        reply.stat = node->stat;
      }
      if (msg.op.watch) {
        watch_mgr_.AddDataWatch(msg.op.path, session);
      }
      break;
    }
    case ZkOpType::kGetData: {
      auto node = tree_.Get(msg.op.path);
      if (!node.ok()) {
        reply.code = node.status().code();
        break;
      }
      reply.value = node->data;
      reply.has_stat = true;
      reply.stat = node->stat;
      if (msg.op.watch) {
        watch_mgr_.AddDataWatch(msg.op.path, session);
      }
      break;
    }
    case ZkOpType::kGetChildren: {
      auto children = tree_.GetChildren(msg.op.path);
      if (!children.ok()) {
        reply.code = children.status().code();
        break;
      }
      reply.children = std::move(*children);
      if (msg.op.watch) {
        watch_mgr_.AddChildWatch(msg.op.path, session);
      }
      break;
    }
    default:
      reply.code = ErrorCode::kInvalidArgument;
      break;
  }
  SendPacket(client, ZkMsgType::kReply, EncodeZkReply(reply));
}

void ZkServer::RouteToLeader(uint32_t origin, const ZkRequestMsg& msg) {
  if (zab_->is_leader()) {
    PrepAndPropose(origin, msg);
    return;
  }
  NodeId leader = zab_->leader();
  if (leader == 0 || leader == id_) {
    ZkReplyMsg reply;
    reply.req_id = msg.req_id;
    reply.code = ErrorCode::kNotReady;
    RouteReply(origin, msg.session, std::move(reply));
    return;
  }
  ZkForwardMsg fwd;
  fwd.origin = origin;
  fwd.request = msg;
  SendPacket(leader, ZkMsgType::kForward, EncodeZkForward(fwd));
}

void ZkServer::PrepAndPropose(uint32_t origin, ZkRequestMsg msg) {
  uint64_t gen = generation_;
  auto shared = std::make_shared<ZkRequestMsg>(std::move(msg));
  cpu_.Submit(costs_.prep_cpu, [this, gen, origin, shared]() {
    if (gen != generation_ || !running_) {
      return;
    }
    DoPrep(origin, std::move(*shared));
  });
}

void ZkServer::DoPrep(uint32_t origin, ZkRequestMsg msg) {
  auto fail = [&](const Status& status) {
    ZkReplyMsg reply;
    reply.req_id = msg.req_id;
    reply.code = status.code();
    reply.value = status.message();
    RouteReply(origin, msg.session, std::move(reply));
  };

  if (!zab_->is_leader()) {
    fail(Status(ErrorCode::kNotReady, "not leader"));
    return;
  }

  // Ensemble reconfiguration is an administrative operation that bypasses the
  // prep pipeline: it is replicated as a flagged Zab entry, never becomes a
  // ZkTxn, and its reply is sent at activation (OnMembershipChange).
  if (msg.op.type == ZkOpType::kReconfig) {
    DoReconfig(origin, msg);
    return;
  }

  // Registration-time hook (verify + rewrite of /em creates).
  if (hooks_ != nullptr && !IsReadOp(msg.op.type)) {
    Duration extra = 0;
    Status s = hooks_->PreprocessUpdate(msg.session, &msg.op, &extra);
    if (extra > 0) {
      cpu_.Submit(extra, []() {});
    }
    if (!s.ok()) {
      fail(s);
      return;
    }
  }

  PrepSession prep(&tree_, &outstanding_, msg.session, msg.req_id, loop_->now());
  bool has_result = false;
  std::string result;
  bool handled = false;

  if (hooks_ != nullptr && hooks_->MatchesOperation(msg.session, msg.op)) {
    ZkPrepOutcome outcome = hooks_->HandleOperation(&prep, msg.session, msg.op);
    if (outcome.extra_cpu > 0) {
      cpu_.Submit(outcome.extra_cpu, []() {});
    }
    handled = outcome.handled;
    if (handled) {
      if (!outcome.status.ok()) {
        fail(outcome.status);
        return;
      }
      has_result = outcome.has_result;
      result = std::move(outcome.result);
    }
  }

  if (!handled) {
    switch (msg.op.type) {
      case ZkOpType::kCreate: {
        auto actual = prep.Create(msg.op.path, msg.op.data, msg.op.ephemeral,
                                  msg.op.sequential);
        if (!actual.ok()) {
          fail(actual.status());
          return;
        }
        has_result = true;
        result = *actual;
        break;
      }
      case ZkOpType::kDelete: {
        auto s = prep.Delete(msg.op.path, msg.op.version);
        if (!s.ok()) {
          fail(s);
          return;
        }
        break;
      }
      case ZkOpType::kSetData: {
        auto s = prep.SetData(msg.op.path, msg.op.data, msg.op.version);
        if (!s.ok()) {
          fail(s);
          return;
        }
        break;
      }
      case ZkOpType::kMulti: {
        for (const ZkOp& sub : msg.op.ops) {
          Status s;
          switch (sub.type) {
            case ZkOpType::kCreate: {
              auto r = prep.Create(sub.path, sub.data, sub.ephemeral, sub.sequential);
              s = r.ok() ? Status::Ok() : r.status();
              break;
            }
            case ZkOpType::kDelete:
              s = prep.Delete(sub.path, sub.version);
              break;
            case ZkOpType::kSetData:
              s = prep.SetData(sub.path, sub.data, sub.version);
              break;
            default:
              s = Status(ErrorCode::kInvalidArgument, "bad op in multi");
              break;
          }
          if (!s.ok()) {
            fail(s);
            return;
          }
        }
        break;
      }
      case ZkOpType::kCloseSession:
        prep.CloseSession(msg.session);
        break;
      case ZkOpType::kSessionCreate: {
        auto timeout = ParseInt64(msg.op.data);
        prep.CreateSession(msg.session, origin, timeout.value_or(0));
        break;
      }
      case ZkOpType::kExists:
      case ZkOpType::kGetData:
      case ZkOpType::kGetChildren: {
        // An extension-routed read that no extension ultimately handled:
        // serve it linearizably from the leader's view.
        ZkReplyMsg reply;
        reply.req_id = msg.req_id;
        auto node = prep.Get(msg.op.path);
        if (msg.op.type == ZkOpType::kExists) {
          reply.value = node.ok() ? "1" : "0";
        } else if (msg.op.type == ZkOpType::kGetData) {
          if (!node.ok()) {
            reply.code = node.status().code();
          } else {
            reply.value = node->data;
          }
        } else {
          auto children = prep.Children(msg.op.path);
          if (!children.ok()) {
            reply.code = children.status().code();
          } else {
            reply.children = std::move(*children);
          }
        }
        RouteReply(origin, msg.session, std::move(reply));
        return;
      }
      default:
        fail(Status(ErrorCode::kInvalidArgument, "unsupported op"));
        return;
    }
  }

  if (prep.ops().empty()) {
    // Read-only extension execution: reply directly from the leader.
    ZkReplyMsg reply;
    reply.req_id = msg.req_id;
    reply.value = std::move(result);
    RouteReply(origin, msg.session, std::move(reply));
    return;
  }

  ZkTxn txn;
  txn.session = msg.session;
  txn.req_id = msg.req_id;
  txn.time = loop_->now();
  txn.ops = std::move(prep.ops());
  txn.has_result = has_result;
  txn.result = std::move(result);
  outstanding_.push_back(prep.TakeDelta());
  if (!zab_->Broadcast(txn.Encode())) {
    outstanding_.pop_back();
    fail(Status(ErrorCode::kNotReady, "broadcast failed"));
  }
}

Status ZkServer::ParseReconfigSpec(const std::string& spec, ZabMembership* next) const {
  size_t space = spec.find(' ');
  if (space == std::string::npos) {
    return Status(ErrorCode::kInvalidArgument, "reconfig spec: '<verb> <node>'");
  }
  std::string verb = spec.substr(0, space);
  auto id = ParseInt64(spec.substr(space + 1));
  if (!id.ok() || *id <= 0) {
    return Status(ErrorCode::kInvalidArgument, "reconfig spec: bad node id");
  }
  NodeId node = static_cast<NodeId>(*id);
  const ZabMembership& cur = zab_->membership();
  next->voters = cur.voters;
  next->observers = cur.observers;
  auto erase = [](std::vector<NodeId>& v, NodeId n) {
    v.erase(std::remove(v.begin(), v.end(), n), v.end());
  };
  if (verb == "add_observer") {
    if (cur.Contains(node)) {
      return Status(ErrorCode::kInvalidArgument, "already a member");
    }
    next->observers.push_back(node);
  } else if (verb == "add_voter") {
    if (cur.IsVoter(node)) {
      return Status(ErrorCode::kInvalidArgument, "already a voter");
    }
    erase(next->observers, node);
    next->voters.push_back(node);
  } else if (verb == "promote") {
    if (!cur.IsObserver(node)) {
      return Status(ErrorCode::kInvalidArgument, "not an observer");
    }
    erase(next->observers, node);
    next->voters.push_back(node);
  } else if (verb == "remove") {
    if (!cur.Contains(node)) {
      return Status(ErrorCode::kInvalidArgument, "not a member");
    }
    erase(next->voters, node);
    erase(next->observers, node);
  } else {
    return Status(ErrorCode::kInvalidArgument, "unknown reconfig verb: " + verb);
  }
  return Status::Ok();
}

void ZkServer::DoReconfig(uint32_t origin, const ZkRequestMsg& msg) {
  auto fail = [&](const Status& status) {
    ZkReplyMsg reply;
    reply.req_id = msg.req_id;
    reply.code = status.code();
    reply.value = status.message();
    RouteReply(origin, msg.session, std::move(reply));
  };
  if (pending_reconfig_.active) {
    fail(Status(ErrorCode::kNotReady, "a reconfiguration is already in flight"));
    return;
  }
  ZabMembership next;
  if (auto s = ParseReconfigSpec(msg.op.data, &next); !s.ok()) {
    fail(s);
    return;
  }
  if (auto s = zab_->ProposeReconfig(std::move(next)); !s.ok()) {
    fail(s);
    return;
  }
  pending_reconfig_ = PendingReconfig{true, origin, msg.session, msg.req_id};
}

bool ZkServer::ProposeFromPrep(PrepSession* prep, bool has_result, std::string result,
                               Duration extra_cpu, uint8_t ext_depth) {
  if (!zab_->is_leader()) {
    return false;
  }
  if (extra_cpu > 0) {
    cpu_.Submit(extra_cpu, []() {});
  }
  if (prep->ops().empty()) {
    return true;
  }
  ZkTxn txn;
  txn.session = prep->session();
  txn.req_id = prep->req_id();
  txn.time = loop_->now();
  txn.ops = std::move(prep->ops());
  txn.has_result = has_result;
  txn.result = std::move(result);
  txn.ext_depth = ext_depth;
  outstanding_.push_back(prep->TakeDelta());
  if (!zab_->Broadcast(txn.Encode())) {
    outstanding_.pop_back();
    return false;
  }
  return true;
}

std::unique_ptr<PrepSession> ZkServer::BeginInternalPrep(uint64_t session) {
  return std::make_unique<PrepSession>(&tree_, &outstanding_, session, AllocInternalReqId(),
                                       loop_->now());
}

bool ZkServer::TxnIsDeferred(const ZkTxn& txn) {
  for (const ZkTxnOp& op : txn.ops) {
    if (op.type == ZkTxnOpType::kBlock && op.session == txn.session &&
        op.req_id == txn.req_id) {
      return true;
    }
  }
  return false;
}

void ZkServer::OnDeliver(uint64_t zxid, const std::vector<uint8_t>& txn_bytes) {
  uint64_t txn_hash = Fnv1a64(txn_bytes);
  applied_log_.emplace_back(zxid, txn_hash);
  auto txn = ZkTxn::Decode(txn_bytes);
  if (!txn.ok()) {
    EDC_LOG(kError) << "server " << id_ << ": undecodable txn at zxid " << zxid;
    return;
  }
  if (commit_observer_) {
    commit_observer_(zxid, *txn, txn_hash);
  }
  if (!outstanding_.empty() && outstanding_.front().session == txn->session &&
      outstanding_.front().req_id == txn->req_id) {
    outstanding_.pop_front();
  }
  ApplyTxn(zxid, *txn);
}

void ZkServer::ApplyTxn(uint64_t zxid, const ZkTxn& txn) {
  ++txns_applied_;
  std::vector<ZkEvent> events;
  std::vector<std::string> block_candidates;

  for (const ZkTxnOp& op : txn.ops) {
    switch (op.type) {
      case ZkTxnOpType::kCreate: {
        auto r = tree_.Create(op.path, op.data, op.ephemeral_owner, false, zxid, txn.time);
        if (!r.ok()) {
          EDC_LOG(kError) << "server " << id_ << ": apply create failed: "
                          << r.status().ToString();
          break;
        }
        events.push_back(ZkEvent{ZkEventType::kNodeCreated, op.path});
        events.push_back(ZkEvent{ZkEventType::kNodeChildrenChanged, ParentPath(op.path)});
        block_candidates.push_back(op.path);
        break;
      }
      case ZkTxnOpType::kDelete: {
        auto s = tree_.Delete(op.path, -1, zxid);
        if (!s.ok()) {
          EDC_LOG(kError) << "server " << id_ << ": apply delete failed: " << s.ToString();
          break;
        }
        events.push_back(ZkEvent{ZkEventType::kNodeDeleted, op.path});
        events.push_back(ZkEvent{ZkEventType::kNodeChildrenChanged, ParentPath(op.path)});
        break;
      }
      case ZkTxnOpType::kSetData: {
        auto s = tree_.SetData(op.path, op.data, -1, zxid, txn.time);
        if (!s.ok()) {
          EDC_LOG(kError) << "server " << id_ << ": apply setData failed: " << s.ToString();
          break;
        }
        events.push_back(ZkEvent{ZkEventType::kNodeDataChanged, op.path});
        break;
      }
      case ZkTxnOpType::kCreateSession: {
        SessionInfo info;
        info.owner = op.session_owner;
        info.timeout = static_cast<Duration>(op.req_id);
        info.last_seen = loop_->now();
        sessions_[op.session] = info;
        if (op.session_owner == id_) {
          session_counter_ =
              std::max(session_counter_, op.session & ((uint64_t{1} << 40) - 1));
          auto it = pending_connects_.find(op.session);
          if (it != pending_connects_.end()) {
            ZkConnectReplyMsg reply{op.session, ErrorCode::kOk};
            // The session table at this zxid is replicated state: the old
            // session being gone means a close/expiry already committed, so
            // the client's parked calls can never complete.
            reply.old_session_expired = it->second.old_session != 0 &&
                                        sessions_.count(it->second.old_session) == 0;
            SendPacket(it->second.client, ZkMsgType::kConnectReply,
                       EncodeZkConnectReply(reply));
            pending_connects_.erase(it);
          }
        }
        break;
      }
      case ZkTxnOpType::kCloseSession: {
        for (const std::string& path : tree_.EphemeralsOf(op.session)) {
          if (tree_.Delete(path, -1, zxid).ok()) {
            events.push_back(ZkEvent{ZkEventType::kNodeDeleted, path});
            events.push_back(
                ZkEvent{ZkEventType::kNodeChildrenChanged, ParentPath(path)});
          }
        }
        sessions_.erase(op.session);
        expiring_sessions_.erase(op.session);
        watch_mgr_.RemoveSession(op.session);
        client_nodes_.erase(op.session);
        for (auto& [path, waiters] : block_table_) {
          waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                       [&op](const std::pair<uint64_t, uint64_t>& w) {
                                         return w.first == op.session;
                                       }),
                        waiters.end());
        }
        break;
      }
      case ZkTxnOpType::kBlock: {
        block_table_[op.path].emplace_back(op.session, op.req_id);
        block_candidates.push_back(op.path);
        break;
      }
    }
  }

  cpu_.Submit(static_cast<Duration>(txn.ops.size()) * costs_.apply_txn_cpu, []() {});

  // Reply to the originating client at its owner replica (results are
  // piggybacked on the transaction, §5.1.2). Deferred if the client now
  // waits on a server-side block.
  if (txn.session != 0 && txn.req_id != 0 && !TxnIsDeferred(txn)) {
    auto it = sessions_.find(txn.session);
    if (it != sessions_.end() && it->second.owner == id_) {
      ZkReplyMsg reply;
      reply.req_id = txn.req_id;
      reply.value = txn.result;
      SendReplyToClient(txn.session, reply);
    }
  }

  // Server-side unblocks: any block entry whose path now exists fires. This
  // runs after all ops so a transaction that both registers a block and
  // creates the node (barrier's last participant) resolves consistently.
  for (const std::string& path : block_candidates) {
    auto waiters = block_table_.find(path);
    if (waiters == block_table_.end() || !tree_.Exists(path)) {
      continue;
    }
    auto node = tree_.Get(path);
    for (const auto& [session, req_id] : waiters->second) {
      auto owner = sessions_.find(session);
      if (owner != sessions_.end() && owner->second.owner == id_) {
        ZkReplyMsg reply;
        reply.req_id = req_id;
        reply.value = node.ok() ? node->data : "";
        SendReplyToClient(session, reply);
      }
    }
    block_table_.erase(waiters);
  }

  // Watches (volatile, connection-local) and notification suppression.
  for (const ZkEvent& event : events) {
    std::vector<uint64_t> watchers = watch_mgr_.Trigger(event.type, event.path);
    for (uint64_t session : watchers) {
      if (hooks_ != nullptr && hooks_->SuppressNotification(session, event)) {
        continue;
      }
      auto it = client_nodes_.find(session);
      if (it != client_nodes_.end()) {
        cpu_.Submit(costs_.watch_fire_cpu, []() {});
        ZkWatchEventMsg ev{event.type, event.path};
        int copies = options_.test_double_fire_watches ? 2 : 1;
        for (int c = 0; c < copies; ++c) {
          SendPacket(it->second, ZkMsgType::kWatchEvent, EncodeZkWatchEvent(ev));
        }
      }
    }
  }

  if (hooks_ != nullptr) {
    hooks_->AfterApply(txn, events, zab_->is_leader());
  }
}

void ZkServer::OnRoleChange(bool leader, NodeId leader_id, uint32_t epoch) {
  (void)leader_id;
  (void)epoch;
  outstanding_.clear();
  if (pending_reconfig_.active) {
    // The proposal may still commit under the next leader, but this replica
    // can no longer promise activation; the admin retries idempotently.
    ZkReplyMsg reply;
    reply.req_id = pending_reconfig_.req_id;
    reply.code = ErrorCode::kNotReady;
    reply.value = "leadership changed during reconfig";
    RouteReply(pending_reconfig_.origin, pending_reconfig_.session, std::move(reply));
    pending_reconfig_ = PendingReconfig{};
  }
  if (leader) {
    leader_since_ = loop_->now();
  }
  EDC_LOG(kDebug) << "server " << id_ << (leader ? " is now leader" : " follows")
                  << " epoch " << epoch;
}

std::vector<uint8_t> ZkServer::TakeSnapshot() {
  Encoder enc;
  // The tree section is itself framed (length + FNV) so truncation or
  // corruption anywhere inside it is detected before a byte is applied.
  enc.PutBytes(tree_.SerializeImage());
  enc.PutVarint(sessions_.size());
  for (const auto& [session, info] : sessions_) {
    enc.PutU64(session);
    enc.PutU32(info.owner);
    enc.PutI64(info.timeout);
  }
  enc.PutVarint(block_table_.size());
  for (const auto& [path, waiters] : block_table_) {
    enc.PutString(path);
    enc.PutVarint(waiters.size());
    for (const auto& [session, req_id] : waiters) {
      enc.PutU64(session);
      enc.PutU64(req_id);
    }
  }
  return enc.Release();
}

bool ZkServer::InstallSnapshot(uint64_t zxid, const std::vector<uint8_t>& snapshot) {
  // Decode every section into temporaries first: a snapshot that fails
  // anywhere — truncated tree image, torn session table, trailing garbage —
  // must leave the replica exactly as it was so the Zab layer can re-request
  // state transfer (the joiner re-sends FollowerInfo and the leader re-offers
  // the snapshot).
  Decoder dec(snapshot);
  auto tree_bytes = dec.GetBytes();
  if (!tree_bytes.ok()) {
    EDC_LOG(kError) << "server " << id_ << ": snapshot tree section missing";
    return false;
  }
  std::map<uint64_t, SessionInfo> fresh_sessions;
  auto n_sessions = dec.GetVarint();
  if (!n_sessions.ok()) {
    return false;
  }
  for (uint64_t i = 0; i < *n_sessions; ++i) {
    auto session = dec.GetU64();
    auto owner = dec.GetU32();
    auto timeout = dec.GetI64();
    if (!session.ok() || !owner.ok() || !timeout.ok()) {
      EDC_LOG(kError) << "server " << id_ << ": snapshot session table truncated";
      return false;
    }
    SessionInfo info;
    info.owner = *owner;
    info.timeout = *timeout;
    info.last_seen = loop_->now();
    fresh_sessions[*session] = info;
  }
  std::map<std::string, std::vector<std::pair<uint64_t, uint64_t>>> fresh_blocks;
  auto n_blocks = dec.GetVarint();
  if (!n_blocks.ok()) {
    return false;
  }
  for (uint64_t i = 0; i < *n_blocks; ++i) {
    auto path = dec.GetString();
    auto n_waiters = dec.GetVarint();
    if (!path.ok() || !n_waiters.ok()) {
      EDC_LOG(kError) << "server " << id_ << ": snapshot block table truncated";
      return false;
    }
    auto& waiters = fresh_blocks[*path];
    for (uint64_t j = 0; j < *n_waiters; ++j) {
      auto session = dec.GetU64();
      auto req_id = dec.GetU64();
      if (!session.ok() || !req_id.ok()) {
        return false;
      }
      waiters.emplace_back(*session, *req_id);
    }
  }
  if (!dec.AtEnd()) {
    EDC_LOG(kError) << "server " << id_ << ": snapshot has trailing bytes";
    return false;
  }
  // The framed tree image is validated (length + checksum + structure) and
  // swapped in atomically by RestoreImage; it is the last fallible step.
  if (auto s = tree_.RestoreImage(*tree_bytes); !s.ok()) {
    EDC_LOG(kError) << "server " << id_ << ": snapshot tree load failed: " << s.ToString();
    return false;
  }
  sessions_ = std::move(fresh_sessions);
  block_table_ = std::move(fresh_blocks);
  for (const auto& [session, info] : sessions_) {
    if (info.owner == id_) {
      session_counter_ = std::max(session_counter_, session & ((uint64_t{1} << 40) - 1));
    }
  }
  applied_log_.clear();  // state is now the snapshot at `zxid`, not per-txn application
  (void)zxid;
  watch_mgr_.Clear();
  if (hooks_ != nullptr) {
    hooks_->OnStateReloaded();
  }
  return true;
}

void ZkServer::OnMembershipChange(uint64_t zxid, const ZabMembership& membership) {
  // Push the new ensemble to every connected client so failover lists stay
  // live (satellite: clients historically kept the boot-time ServerList
  // forever and could fail over into removed replicas).
  ZkMembershipEventMsg ev;
  ev.version = zxid;
  ev.voters = membership.voters;
  ev.observers = membership.observers;
  std::set<NodeId> clients;
  for (const auto& [session, node] : client_nodes_) {
    clients.insert(node);
  }
  for (NodeId c : clients) {
    SendPacket(c, ZkMsgType::kMembershipEvent, EncodeZkMembershipEvent(ev));
  }
  if (pending_reconfig_.active) {
    ZkReplyMsg reply;
    reply.req_id = pending_reconfig_.req_id;
    reply.value = "ok";
    RouteReply(pending_reconfig_.origin, pending_reconfig_.session, std::move(reply));
    pending_reconfig_ = PendingReconfig{};
  }
  if (!membership.Contains(id_) && zab_->admitted()) {
    // Removed from the ensemble: the Zab node retires itself right after this
    // callback; stop serving clients too. The durable log is kept. A joiner
    // that was never admitted is just replaying configs that predate its own
    // add — it keeps running and waits for the entry that admits it.
    EDC_LOG(kInfo) << "server " << id_ << " removed from ensemble at zxid " << zxid
                   << "; retiring";
    ++generation_;
    running_ = false;
    loop_->Cancel(session_timer_);
    session_timer_ = kInvalidTimer;
  }
}

void ZkServer::RouteReply(uint32_t origin, uint64_t session, ZkReplyMsg reply) {
  if (origin == id_) {
    SendReplyToClient(session, reply);
    return;
  }
  ZkForwardReplyMsg msg;
  msg.session = session;
  msg.reply = std::move(reply);
  SendPacket(origin, ZkMsgType::kForwardReply, EncodeZkForwardReply(msg));
}

void ZkServer::SendReplyToClient(uint64_t session, const ZkReplyMsg& reply) {
  auto it = client_nodes_.find(session);
  if (it == client_nodes_.end()) {
    auto pending = pending_connects_.find(session);
    if (pending == pending_connects_.end()) {
      return;
    }
    SendPacket(pending->second.client, ZkMsgType::kReply, EncodeZkReply(reply));
    return;
  }
  SendPacket(it->second, ZkMsgType::kReply, EncodeZkReply(reply));
}

}  // namespace edc
