file(REMOVE_RECURSE
  "CMakeFiles/zk_test.dir/zk/data_tree_test.cpp.o"
  "CMakeFiles/zk_test.dir/zk/data_tree_test.cpp.o.d"
  "CMakeFiles/zk_test.dir/zk/prep_test.cpp.o"
  "CMakeFiles/zk_test.dir/zk/prep_test.cpp.o.d"
  "CMakeFiles/zk_test.dir/zk/zk_service_test.cpp.o"
  "CMakeFiles/zk_test.dir/zk/zk_service_test.cpp.o.d"
  "zk_test"
  "zk_test.pdb"
  "zk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
