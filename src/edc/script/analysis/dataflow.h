// Classic dataflow passes over the per-handler CFG.
//
// - Liveness (backward may): powers dead-store (EDC-W002) and
//   unused-variable (EDC-W001) warnings.
// - Reaching definitions (forward may): powers the use-before-def check
//   (EDC-W004). CoordScript's lexical scoping makes a use of a never-defined
//   variable structurally impossible in programs that pass resolution (every
//   `let` both declares and initializes), so this pass is defense in depth:
//   it validates the CFG machinery and would catch regressions if the
//   grammar ever grows uninitialized declarations.

#ifndef EDC_SCRIPT_ANALYSIS_DATAFLOW_H_
#define EDC_SCRIPT_ANALYSIS_DATAFLOW_H_

#include <vector>

#include "edc/script/analysis/cfg.h"
#include "edc/script/analysis/diagnostics.h"
#include "edc/script/ast.h"

namespace edc {

// Runs liveness + reaching definitions over `cfg` and appends the derived
// warnings (unused variable, dead store, use before def) to `diags`.
void RunDataflowChecks(const Handler& handler, const Cfg& cfg,
                       const ResolvedNames& names, std::vector<Diagnostic>* diags);

}  // namespace edc

#endif  // EDC_SCRIPT_ANALYSIS_DATAFLOW_H_
