# Empty dependencies file for fig13_regular.
# This may be replaced when dependencies are built.
