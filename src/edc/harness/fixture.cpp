#include "edc/harness/fixture.h"

#include <cassert>

#include "edc/harness/invariants.h"

namespace edc {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kZooKeeper:
      return "ZooKeeper";
    case SystemKind::kExtensibleZooKeeper:
      return "EZK";
    case SystemKind::kDepSpace:
      return "DepSpace";
    case SystemKind::kExtensibleDepSpace:
      return "EDS";
  }
  return "?";
}

bool IsExtensible(SystemKind kind) {
  return kind == SystemKind::kExtensibleZooKeeper || kind == SystemKind::kExtensibleDepSpace;
}

bool IsZkFamily(SystemKind kind) {
  return kind == SystemKind::kZooKeeper || kind == SystemKind::kExtensibleZooKeeper;
}

CoordFixture::CoordFixture(FixtureOptions options) : options_(options) {
  net_ = std::make_unique<Network>(&loop_, Rng(options_.seed), options_.link);
  faults_ = std::make_unique<FaultInjector>(&loop_, net_.get());
}

CoordFixture::~CoordFixture() = default;

void CoordFixture::WireObservability() {
  obs_.tracer.Enable(options_.retain_spans);
  // Carry the active trace context across every scheduled callback: capture
  // it when an event is scheduled, re-activate it around the callback. The
  // hooks only move a 16-byte value — they never touch the schedule itself.
  loop_.SetContextHooks(
      [this]() {
        TraceContext c = obs_.tracer.current();
        return EventLoop::EventContext{c.trace, c.span};
      },
      [this](const EventLoop::EventContext& ctx) {
        obs_.tracer.SetCurrent(TraceContext{ctx.a, ctx.b});
      });
  net_->SetObs(&obs_);
}

void CoordFixture::CollectMetrics() {
  if (!options_.observability) {
    return;
  }
  net_->DumpLinkMetrics(&obs_.metrics);
  for (const auto& server : zk_servers) {
    obs_.metrics.SetGauge("server." + std::to_string(server->id()) + ".cpu_busy_ns",
                          server->cpu().busy_ns());
  }
  for (const auto& server : ds_servers) {
    obs_.metrics.SetGauge("server." + std::to_string(server->id()) + ".cpu_busy_ns",
                          server->cpu().busy_ns());
  }
}

void CoordFixture::Start() {
  if (options_.observability) {
    WireObservability();
  }
  if (IsZkFamily(options_.system)) {
    std::vector<NodeId> members{1, 2, 3};
    for (NodeId id : members) {
      auto server = std::make_unique<ZkServer>(&loop_, net_.get(), id, members,
                                               options_.costs, options_.zk_server);
      if (options_.observability) {
        server->SetObs(&obs_);
      }
      net_->Register(id, server.get());
      ZkServer* raw = server.get();
      faults_->RegisterProcess(
          id,
          [this, raw, id]() {
            raw->Crash();
            net_->SetNodeUp(id, false);
          },
          [this, raw, id]() {
            net_->SetNodeUp(id, true);
            raw->Restart();
          });
      zk_servers.push_back(std::move(server));
    }
    if (IsExtensible(options_.system)) {
      for (auto& server : zk_servers) {
        zk_managers_.push_back(
            std::make_unique<ZkExtensionManager>(server.get(), options_.limits));
      }
    }
    for (auto& server : zk_servers) {
      server->Start();
    }
    loop_.RunUntil(loop_.now() + Seconds(2));  // leader election

    size_t connected = 0;
    for (size_t i = 0; i < options_.num_clients; ++i) {
      NodeId node = client_node(i);
      // Full ensemble list so fixture clients fail over during chaos runs;
      // preferred index keeps the historical round-robin initial placement.
      ServerList ensemble{members, i % members.size()};
      auto client = std::make_unique<ZkClient>(&loop_, net_.get(), node, ensemble,
                                               options_.zk_client);
      if (options_.observability) {
        client->SetObs(&obs_);
      }
      client->Connect([&connected](Status s) {
        if (s.ok()) {
          ++connected;
        }
      });
      coords_.push_back(std::make_unique<ZkCoordClient>(client.get(),
                                                        IsExtensible(options_.system)));
      zk_clients_.push_back(std::move(client));
    }
    loop_.RunUntil(loop_.now() + Seconds(2));
    assert(connected == options_.num_clients && "zk clients failed to connect");
    (void)connected;
    return;
  }

  std::vector<NodeId> members{1, 2, 3, 4};
  for (NodeId id : members) {
    auto server = std::make_unique<DsServer>(&loop_, net_.get(), id, members,
                                             options_.costs, options_.ds_server);
    if (options_.observability) {
      server->SetObs(&obs_);
    }
    net_->Register(id, server.get());
    DsServer* raw = server.get();
    faults_->RegisterProcess(
        id,
        [this, raw, id]() {
          raw->Crash();
          net_->SetNodeUp(id, false);
        },
        [this, raw, id]() {
          net_->SetNodeUp(id, true);
          raw->Restart();
        });
    ds_servers.push_back(std::move(server));
  }
  if (IsExtensible(options_.system)) {
    for (auto& server : ds_servers) {
      ds_managers_.push_back(
          std::make_unique<DsExtensionManager>(server.get(), options_.limits));
    }
  }
  for (auto& server : ds_servers) {
    server->Start();
  }
  for (size_t i = 0; i < options_.num_clients; ++i) {
    auto client = std::make_unique<DsClient>(&loop_, net_.get(), client_node(i), members,
                                             options_.ds_client);
    if (options_.observability) {
      client->SetObs(&obs_);
    }
    coords_.push_back(std::make_unique<DsCoordClient>(&loop_, client.get()));
    ds_clients_.push_back(std::move(client));
  }
  loop_.RunUntil(loop_.now() + Millis(500));
}

int64_t CoordFixture::ClientBytesSent() const {
  int64_t total = 0;
  for (size_t i = 0; i < coords_.size(); ++i) {
    total += net_->StatsFor(client_node(i)).bytes_sent;
  }
  return total;
}

bool CoordFixture::CheckEdsInvariants(std::string* why) const {
  return EdsDigestsMatch(ds_servers, why) && EdsLogBounded(ds_servers, why);
}

}  // namespace edc
