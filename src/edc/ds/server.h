// Replica of the DepSpace-like coordination service.
//
// Stack (paper Fig. 4, bottom-up): BFT ordering (edc/bft) -> extension
// manager hooks -> policy enforcement -> access control -> tuple space.
// Every request, including reads, is totally ordered and executed by every
// replica; clients multicast to all 3f+1 replicas and vote on f+1 matching
// replies (that asymmetry versus ZooKeeper's read fast path is exactly what
// the paper's KB/op measurements show in Fig. 8/10).
//
// Blocking semantics: rd/in with no match register a waiter and defer the
// reply; an out that produces a match unblocks all matching rd waiters and
// the single oldest in waiter (which consumes the tuple). Lease tuples
// expire deterministically against the ordered timestamp carried by each
// request.

#ifndef EDC_DS_SERVER_H_
#define EDC_DS_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edc/bft/replica.h"
#include "edc/ds/hooks.h"
#include "edc/ds/tuple_space.h"
#include "edc/ds/types.h"
#include "edc/sim/cpu.h"
#include "edc/sim/costs.h"

namespace edc {

class DsServer;

// Access-control layer: per-operation admission by client id. The default
// denies regular access to the extension manager's /em namespace and allows
// everything else.
struct DsAccessControl {
  using CheckFn =
      std::function<Status(NodeId client, DsOpType type, const DsTuple* tuple,
                           const DsTemplate* templ)>;
  CheckFn check;  // empty = default rule
};

// Policy-enforcement layer: structural constraints on operations (e.g. tuple
// arity/size limits), applied after access control.
struct DsPolicy {
  using CheckFn = std::function<Status(const DsOp& op, size_t space_size)>;
  CheckFn check;  // empty = accept all
};

struct DsServerOptions {
  int cpu_cores = 1;
  int f = 1;
  Duration request_timeout = Millis(300);
  DsAccessControl access;
  DsPolicy policy;
  size_t max_event_rounds = 8;  // unblock/event-extension cascade cap
  // Passed through to BftConfig (see replica.h for the constraints).
  uint64_t checkpoint_interval = 8;
  uint64_t watermark_window = 32;
  uint64_t dedup_window = 64;
};

// State-access facade handed to normal execution, extensions and event
// extensions alike: enforces access control + policy and records events.
class DsExecContext {
 public:
  DsExecContext(DsServer* server, NodeId client, uint64_t req_id, SimTime ts);

  Status Out(DsTuple tuple, Duration lease);
  Result<DsTuple> Rdp(const DsTemplate& templ);
  Result<DsTuple> Inp(const DsTemplate& templ);
  std::vector<DsEntry> RdAll(const DsTemplate& templ);
  Status Cas(const DsTemplate& templ, DsTuple tuple, Duration lease);
  Status Replace(const DsTemplate& templ, DsTuple tuple);
  size_t Renew(const DsTemplate& templ, Duration lease);
  // Defer the reply of (client, req_id) until a tuple matching `templ`
  // appears; `consume` = in semantics (remove on unblock).
  void Block(DsTemplate templ, bool consume);

  NodeId client() const { return client_; }
  uint64_t req_id() const { return req_id_; }
  SimTime ts() const { return ts_; }
  std::vector<DsEvent>& events() { return events_; }
  size_t state_ops() const { return state_ops_; }

  // Privileged (extension-manager layer) access, bypassing ACL: used for the
  // /em registry tuples regular clients must not touch.
  Status PrivilegedOut(DsTuple tuple);
  Result<DsTuple> PrivilegedInp(const DsTemplate& templ);

 private:
  DsServer* server_;
  NodeId client_;
  uint64_t req_id_;
  SimTime ts_;
  std::vector<DsEvent> events_;
  size_t state_ops_ = 0;

  friend class DsServer;
};

class DsServer : public NetworkNode, public BftCallbacks {
 public:
  DsServer(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> members,
           const CostModel& costs, DsServerOptions options);

  void SetHooks(DsServerHooks* hooks) { hooks_ = hooks; }

  // Observability (nullable): forwards to the CPU queue and the BFT replica,
  // both reporting into the shared registry/tracer.
  void SetObs(Obs* obs) {
    obs_ = obs;
    cpu_.SetObs(obs, static_cast<uint32_t>(id_));
    bft_->SetObs(obs);
  }
  Obs* obs() const { return obs_; }

  void Start();
  void Crash();
  void Restart();

  // NetworkNode.
  void HandlePacket(Packet&& pkt) override;

  // BftCallbacks. The snapshot covers everything replicated execution
  // mutates: the tuple space, the blocked rd/in waiters (they consume tuples
  // when unblocked, so a transferred replica must carry them to stay digest-
  // identical), and the waiter ordering counter.
  BftExecOutcome Execute(uint64_t seq, SimTime ts, const BftRequest& request) override;
  std::vector<uint8_t> TakeSnapshot() override;
  Status RestoreSnapshot(const std::vector<uint8_t>& snapshot) override;

  NodeId id() const { return id_; }
  bool running() const { return running_; }
  // Replicated shard-map version (docs/sharding.md): raised only by an
  // ordered kSetMapVersion op, carried in snapshots, and rebuilt by log
  // replay — so every replica starts rejecting stale clients at the same
  // sequence number and execution digests stay identical across the group.
  uint64_t map_version() const { return map_version_; }
  const TupleSpace& space() const { return space_; }
  BftReplica& bft() { return *bft_; }
  CpuQueue& cpu() { return cpu_; }
  int64_t ops_executed() const { return ops_executed_; }

  // Fault injection passthrough.
  void SetEquivocate(bool on) { bft_->SetEquivocate(on); }

  // History observation for the model-conformance checker: invoked for every
  // ordered request this replica executes, in sequence order (noops
  // included). The checker merges execution streams across replicas by seq;
  // any divergence in (ts, request) at the same seq is a violation.
  using ExecObserver =
      std::function<void(uint64_t seq, SimTime ts, const BftRequest& request)>;
  void SetExecObserver(ExecObserver observer) { exec_observer_ = std::move(observer); }

 private:
  friend class DsExecContext;

  struct Waiter {
    DsTemplate templ;
    NodeId client = 0;
    uint64_t req_id = 0;
    bool consume = false;
    uint64_t order = 0;
  };

  Status CheckAccess(NodeId client, DsOpType type, const DsTuple* tuple,
                     const DsTemplate* templ) const;
  Status CheckPolicy(const DsOp& op) const;

  DsExecOutcome ExecuteNormal(DsExecContext* ctx, const DsOp& op);
  // Unblock waiters + run event extensions until quiescent (capped rounds).
  void ProcessEvents(DsExecContext* ctx, Duration* extra_cpu);
  void Reply(NodeId client, uint64_t req_id, const DsReply& reply);

  EventLoop* loop_;
  NodeId id_;
  CostModel costs_;
  DsServerOptions options_;
  CpuQueue cpu_;
  std::unique_ptr<BftReplica> bft_;
  DsServerHooks* hooks_ = nullptr;
  Obs* obs_ = nullptr;

  bool running_ = false;
  TupleSpace space_;
  std::vector<Waiter> waiters_;
  uint64_t map_version_ = 0;  // replicated; see map_version()
  uint64_t next_waiter_order_ = 1;
  int64_t ops_executed_ = 0;
  ExecObserver exec_observer_;
};

}  // namespace edc

#endif  // EDC_DS_SERVER_H_
