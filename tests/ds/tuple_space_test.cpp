#include "edc/ds/tuple_space.h"

#include <gtest/gtest.h>

namespace edc {
namespace {

DsTuple T(const std::string& path, const std::string& data) { return ObjectTuple(path, data); }

TEST(TupleMatchTest, ExactAnyPrefix) {
  DsTuple t = T("/q/e1", "payload");
  EXPECT_TRUE(TupleMatches(ObjectTemplate("/q/e1"), t));
  EXPECT_FALSE(TupleMatches(ObjectTemplate("/q/e2"), t));
  EXPECT_TRUE(TupleMatches(ObjectPrefixTemplate("/q"), t));
  EXPECT_FALSE(TupleMatches(ObjectPrefixTemplate("/qq"), t));
  EXPECT_FALSE(TupleMatches(ObjectPrefixTemplate("/q/e1"), t));  // strict prefix
  EXPECT_TRUE(TupleMatches(DsTemplate{DsTField::Any(), DsTField::Any()}, t));
}

TEST(TupleMatchTest, ArityMustAgree) {
  DsTuple t{DsField{int64_t{1}}};
  EXPECT_FALSE(TupleMatches(DsTemplate{DsTField::Any(), DsTField::Any()}, t));
  EXPECT_TRUE(TupleMatches(DsTemplate{DsTField::Any()}, t));
}

TEST(TupleMatchTest, IntFields) {
  DsTuple t{DsField{int64_t{42}}, DsField{std::string("x")}};
  DsTemplate exact{DsTField::Exact(DsField{int64_t{42}}), DsTField::Any()};
  DsTemplate wrong{DsTField::Exact(DsField{int64_t{41}}), DsTField::Any()};
  EXPECT_TRUE(TupleMatches(exact, t));
  EXPECT_FALSE(TupleMatches(wrong, t));
  // Prefix never matches an int field.
  DsTemplate prefix{DsTField::Prefix("/a"), DsTField::Any()};
  EXPECT_FALSE(TupleMatches(prefix, t));
}

TEST(TupleSpaceTest, OutRdpInp) {
  TupleSpace space;
  space.Out(T("/a", "1"), 10, 100, 0);
  auto read = space.Rdp(ObjectTemplate("/a"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(space.size(), 1u);  // rdp does not remove
  auto removed = space.Inp(ObjectTemplate("/a"));
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(space.size(), 0u);
  EXPECT_EQ(space.Rdp(ObjectTemplate("/a")).code(), ErrorCode::kNoNode);
}

TEST(TupleSpaceTest, MultisetAndInsertionOrder) {
  TupleSpace space;
  space.Out(T("/a", "first"), 10, 1, 0);
  space.Out(T("/a", "second"), 20, 1, 0);
  auto first = space.Inp(ObjectTemplate("/a"));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(std::get<std::string>((*first)[1]), "first");
  auto second = space.Inp(ObjectTemplate("/a"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(std::get<std::string>((*second)[1]), "second");
}

TEST(TupleSpaceTest, RdAllPreservesOrderAndCtime) {
  TupleSpace space;
  space.Out(T("/q/b", ""), 20, 1, 0);
  space.Out(T("/q/a", ""), 10, 1, 0);
  space.Out(T("/x", ""), 30, 1, 0);
  auto all = space.RdAll(ObjectPrefixTemplate("/q"));
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].ctime, 20);
  EXPECT_EQ(all[1].ctime, 10);
}

TEST(TupleSpaceTest, CasInsertsOnlyWhenAbsent) {
  TupleSpace space;
  EXPECT_TRUE(space.Cas(ObjectTemplate("/c"), T("/c", "v1"), 10, 1, 0).ok());
  EXPECT_EQ(space.Cas(ObjectTemplate("/c"), T("/c", "v2"), 20, 1, 0).code(),
            ErrorCode::kNodeExists);
  EXPECT_EQ(space.size(), 1u);
}

TEST(TupleSpaceTest, ReplaceSwapsAtomically) {
  TupleSpace space;
  space.Out(T("/r", "old"), 10, 1, 0);
  DsTuple removed;
  ASSERT_TRUE(space.Replace(ObjectTemplate("/r"), T("/r", "new"), 20, 1, &removed).ok());
  EXPECT_EQ(std::get<std::string>(removed[1]), "old");
  EXPECT_EQ(std::get<std::string>((*space.Rdp(ObjectTemplate("/r")))[1]), "new");
  EXPECT_EQ(space.size(), 1u);
  EXPECT_EQ(space.Replace(ObjectTemplate("/ghost"), T("/g", ""), 30, 1, nullptr).code(),
            ErrorCode::kNoNode);
}

TEST(TupleSpaceTest, ConditionalReplaceViaDataTemplate) {
  // Table 2's cas(o, cc, nc): template pins both path and expected content.
  TupleSpace space;
  space.Out(T("/ctr", "5"), 10, 1, 0);
  DsTemplate expect_5{DsTField::Exact(DsField{std::string("/ctr")}),
                      DsTField::Exact(DsField{std::string("5")})};
  DsTemplate expect_9{DsTField::Exact(DsField{std::string("/ctr")}),
                      DsTField::Exact(DsField{std::string("9")})};
  EXPECT_EQ(space.Replace(expect_9, T("/ctr", "10"), 20, 1, nullptr).code(),
            ErrorCode::kNoNode);
  EXPECT_TRUE(space.Replace(expect_5, T("/ctr", "6"), 20, 1, nullptr).ok());
}

TEST(TupleSpaceTest, LeaseExpiryAndRenewal) {
  TupleSpace space;
  space.Out(T("/lease", ""), 100, 7, 50);   // deadline 150
  space.Out(T("/stable", ""), 100, 7, 0);   // no lease
  EXPECT_TRUE(space.Expire(149).empty());
  // Renewal by the owner extends the deadline.
  EXPECT_EQ(space.Renew(ObjectTemplate("/lease"), 7, 140, 50), 1u);  // deadline 190
  EXPECT_TRUE(space.Expire(160).empty());
  // A different client cannot renew.
  EXPECT_EQ(space.Renew(ObjectTemplate("/lease"), 8, 180, 50), 0u);
  auto expired = space.Expire(200);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(std::get<std::string>(expired[0][0]), "/lease");
  EXPECT_EQ(space.size(), 1u);  // /stable survives
}

TEST(TupleSpaceTest, SerializeLoadRoundTrip) {
  TupleSpace space;
  space.Out(T("/a", "x"), 10, 1, 0);
  space.Out(DsTuple{DsField{int64_t{7}}, DsField{std::string("y")}}, 20, 2, 99);
  auto bytes = space.Serialize();
  TupleSpace copy;
  ASSERT_TRUE(copy.Load(bytes).ok());
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.Serialize(), bytes);
  EXPECT_TRUE(copy.HasMatch(ObjectTemplate("/a")));
}

}  // namespace
}  // namespace edc
