# Empty compiler generated dependencies file for fig12_election.
# This may be replaced when dependencies are built.
