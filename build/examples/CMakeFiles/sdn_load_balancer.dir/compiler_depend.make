# Empty compiler generated dependencies file for sdn_load_balancer.
# This may be replaced when dependencies are built.
