// Client library for the DepSpace-like service.
//
// Requests are multicast to all 3f+1 replicas (this is why a DepSpace client
// sends ~4x the bytes a ZooKeeper client sends per operation — the paper's
// Fig. 8/10 measure exactly that); a result is accepted once f+1 replicas
// returned byte-identical replies. Lease tuples created through OutLease are
// renewed automatically until ReleaseLease — stopping renewal (client crash)
// makes them expire server-side, which is the failure-detection primitive
// the leader-election recipe builds on.

#ifndef EDC_DS_CLIENT_H_
#define EDC_DS_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "edc/bft/messages.h"
#include "edc/common/client_api.h"
#include "edc/common/rng.h"
#include "edc/common/shard_map.h"
#include "edc/ds/api.h"
#include "edc/ds/types.h"
#include "edc/obs/obs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"

namespace edc {

struct DsClientOptions {
  int f = 1;
  Duration lease = Seconds(2);
  Duration renew_interval = Millis(500);
  // Retransmit policy: initial_backoff is the first retransmit delay (loss
  // and primary failover are covered by retrying, replicas deduplicate),
  // doubling up to max_backoff; max_attempts > 0 gives up with
  // kConnectionLoss after that many retransmits.
  ReconnectOptions reconnect{Seconds(1), Seconds(8), 0};
};

// Observation hooks for the model-conformance checker (src/edc/check): every
// operation submitted and every result delivered to a callback (vote
// completion or retransmit exhaustion). Unset members cost nothing.
struct DsClientObserver {
  std::function<void(uint64_t req_id, const DsOp& op)> on_call;
  std::function<void(uint64_t req_id, const Result<DsReply>& result)> on_reply;
};

class DsClient : public NetworkNode, public DsApi {
 public:
  using ReplyCb = ResultCb<DsReply>;

  // The one entry point: a ShardView names the replica ensemble to multicast
  // to plus the shard-map version to stamp on every operation
  // (ShardView::Standalone(ServerList{...}) for unsharded deployments).
  DsClient(EventLoop* loop, Network* net, NodeId id, ShardView view,
           DsClientOptions options);

  DsClient(const DsClient&) = delete;
  DsClient& operator=(const DsClient&) = delete;

  void Out(DsTuple tuple, ReplyCb done) override;
  // Lease tuple (monitor primitive); auto-renewed until ReleaseLease/crash.
  void OutLease(DsTuple tuple, ReplyCb done) override;
  void ReleaseLease(const DsTemplate& templ) override;
  void Rdp(DsTemplate templ, ReplyCb done) override;
  void Inp(DsTemplate templ, ReplyCb done) override;
  void Rd(DsTemplate templ, ReplyCb done) override;   // blocking
  void In(DsTemplate templ, ReplyCb done) override;   // blocking
  void Cas(DsTemplate templ, DsTuple tuple, ReplyCb done) override;
  void Replace(DsTemplate templ, DsTuple tuple, ReplyCb done) override;
  void RdAll(DsTemplate templ, ReplyCb done) override;
  void Call(DsOp op, ReplyCb done);

  // Invokes the extension listening on `trigger_path` (§5.2.2): a blocking
  // rd on the trigger object the extension intercepts. DepSpace extensions
  // read their arguments from the tuple space, so `args` is unused here; it
  // exists for API parity with ZkClient::CallExtension.
  void CallExtension(const std::string& trigger_path, const std::string& args,
                     ExtensionCb done) override;

  // EDS conveniences (§5.2.2): registration/ack/deregistration are ordinary
  // tuple operations on the extension manager's dedicated namespace.
  void RegisterExtension(const std::string& name, const std::string& code,
                         ReplyCb done) override;
  void DeregisterExtension(const std::string& name, ReplyCb done) override;
  void AcknowledgeExtension(const std::string& name, ReplyCb done) override;

  // Periodically renews EVERY lease tuple this client owns (universal
  // template) — needed when a server-side extension created lease tuples on
  // the client's behalf (monitor inside an extension): the client is the
  // owner and must keep them alive.
  void EnableAutoRenewAll() override;

  // Simulate process death: stop renewing leases and drop pending calls.
  void Kill();

  // History observation (conformance checking); pass {} to detach.
  void SetObserver(DsClientObserver observer) { observer_ = std::move(observer); }
  // Observability (nullable): retransmit / give-up counters in the shared
  // registry.
  void SetObs(Obs* obs);

  NodeId id() const override { return id_; }
  size_t outstanding() const { return calls_.size(); }

  // Map-version protocol (docs/sharding.md): the version stamped on every
  // outgoing operation; raised by the router after a map refresh.
  uint64_t map_version() const { return map_version_; }
  void set_map_version(uint64_t v) {
    if (v > map_version_) {
      map_version_ = v;
    }
  }
  uint32_t shard_id() const { return shard_id_; }

  // NetworkNode.
  void HandlePacket(Packet&& pkt) override;

 private:
  struct PendingCall {
    DsOp op;
    ReplyCb done;
    std::map<std::string, int> votes;  // encoded reply -> count
    int attempts = 0;
    Duration backoff = 0;  // next retransmit delay
  };

  void Transmit(uint64_t req_id);
  void ArmRetry(uint64_t req_id);
  void RenewTick();

  EventLoop* loop_;
  Network* net_;
  NodeId id_;
  ServerList replicas_;
  uint32_t shard_id_ = 0;
  uint64_t map_version_ = 0;
  DsClientOptions options_;

  uint64_t next_req_ = 0;
  std::map<uint64_t, PendingCall> calls_;
  DsClientObserver observer_;
  std::vector<DsTemplate> leases_;
  Rng jitter_rng_;  // private backoff-jitter stream (seeded per client)
  bool alive_ = true;
  bool auto_renew_all_ = false;
  TimerId renew_timer_ = kInvalidTimer;
  Obs* obs_ = nullptr;
  Counter* m_retransmits_ = nullptr;
  Counter* m_give_ups_ = nullptr;
};

}  // namespace edc

#endif  // EDC_DS_CLIENT_H_
