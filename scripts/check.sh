#!/usr/bin/env bash
# Full local gate: configure + build, then run the three test tiers the CI
# presets select — the plain suite, the chaos fault-injection scenarios, and
# the model-conformance sweeps (docs/model_checking.md). Any failure aborts.
#
# Usage: scripts/check.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"

cd "$BUILD_DIR"
echo "== tier-1 tests =="
ctest --output-on-failure -j "$JOBS" -LE 'chaos|model'
echo "== chaos tests =="
ctest --output-on-failure -j "$JOBS" -L chaos
echo "== model-conformance tests =="
ctest --output-on-failure -j "$JOBS" -L model
echo "All checks passed."
