file(REMOVE_RECURSE
  "libedc_common.a"
)
