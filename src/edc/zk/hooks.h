// Extension hook points of the ZooKeeper-like server.
//
// The zk module knows nothing about CoordScript; the extension manager
// (edc/ext) plugs in through this interface at exactly the places §5.1.2 of
// the paper modifies ZooKeeper: request interception at the preprocessor
// stage, result piggybacking on the multi-transaction, and notification
// suppression for event extensions. A server without hooks is plain
// ZooKeeper — the §6.2 overhead benchmark compares the two.

#ifndef EDC_ZK_HOOKS_H_
#define EDC_ZK_HOOKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/sim/time.h"
#include "edc/zk/prep.h"
#include "edc/zk/txn.h"
#include "edc/zk/types.h"

namespace edc {

struct ZkEvent {
  ZkEventType type = ZkEventType::kNodeCreated;
  std::string path;
};

struct ZkPrepOutcome {
  bool handled = false;   // extension consumed the request
  Status status;          // non-OK: error reply, nothing broadcast
  bool has_result = false;
  std::string result;     // piggybacked extension result
  Duration extra_cpu = 0; // interpreter + sandbox time to charge
};

class ZkServerHooks {
 public:
  virtual ~ZkServerHooks() = default;

  // Replica-side routing: does any extension (registered or acknowledged by
  // `session`) subscribe to this operation? Matching requests take the
  // leader path even if they are reads.
  virtual bool MatchesOperation(uint64_t session, const ZkOp& op) const = 0;

  // Leader prep: registration-time processing of update ops (verify and
  // rewrite extension registrations under /em). Non-OK rejects the request.
  virtual Status PreprocessUpdate(uint64_t session, ZkOp* op, Duration* extra_cpu) = 0;

  // Leader prep: run the matching operation extension against `prep`.
  virtual ZkPrepOutcome HandleOperation(PrepSession* prep, uint64_t session,
                                        const ZkOp& op) = 0;

  // Every replica, after a transaction applied (`events` are the tree events
  // it produced). The leader additionally dispatches event extensions here,
  // which may propose follow-up transactions.
  virtual void AfterApply(const ZkTxn& txn, const std::vector<ZkEvent>& events,
                          bool is_leader) = 0;

  // Owner-replica side: suppress the watch notification for `session`?
  // (true when an event extension took responsibility for the event, §5.1.2.)
  virtual bool SuppressNotification(uint64_t session, const ZkEvent& event) const = 0;

  // Full state was replaced (snapshot install / restart); rebuild any state
  // derived from the tree.
  virtual void OnStateReloaded() = 0;
};

}  // namespace edc

#endif  // EDC_ZK_HOOKS_H_
