// Client library for the DepSpace-like service.
//
// Requests are multicast to all 3f+1 replicas (this is why a DepSpace client
// sends ~4x the bytes a ZooKeeper client sends per operation — the paper's
// Fig. 8/10 measure exactly that); a result is accepted once f+1 replicas
// returned byte-identical replies. Lease tuples created through OutLease are
// renewed automatically until ReleaseLease — stopping renewal (client crash)
// makes them expire server-side, which is the failure-detection primitive
// the leader-election recipe builds on.

#ifndef EDC_DS_CLIENT_H_
#define EDC_DS_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "edc/bft/messages.h"
#include "edc/common/client_api.h"
#include "edc/common/rng.h"
#include "edc/ds/types.h"
#include "edc/obs/obs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"

namespace edc {

struct DsClientOptions {
  int f = 1;
  Duration lease = Seconds(2);
  Duration renew_interval = Millis(500);
  // Retransmit policy: initial_backoff is the first retransmit delay (loss
  // and primary failover are covered by retrying, replicas deduplicate),
  // doubling up to max_backoff; max_attempts > 0 gives up with
  // kConnectionLoss after that many retransmits.
  ReconnectOptions reconnect{Seconds(1), Seconds(8), 0};
};

// Observation hooks for the model-conformance checker (src/edc/check): every
// operation submitted and every result delivered to a callback (vote
// completion or retransmit exhaustion). Unset members cost nothing.
struct DsClientObserver {
  std::function<void(uint64_t req_id, const DsOp& op)> on_call;
  std::function<void(uint64_t req_id, const Result<DsReply>& result)> on_reply;
};

class DsClient : public NetworkNode {
 public:
  using ReplyCb = ResultCb<DsReply>;

  DsClient(EventLoop* loop, Network* net, NodeId id, ServerList replicas,
           DsClientOptions options);
  DsClient(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> replicas,
           DsClientOptions options)
      : DsClient(loop, net, id, ServerList{std::move(replicas)}, options) {}

  DsClient(const DsClient&) = delete;
  DsClient& operator=(const DsClient&) = delete;

  void Out(DsTuple tuple, ReplyCb done);
  // Lease tuple (monitor primitive); auto-renewed until ReleaseLease/crash.
  void OutLease(DsTuple tuple, ReplyCb done);
  void ReleaseLease(const DsTemplate& templ);
  void Rdp(DsTemplate templ, ReplyCb done);
  void Inp(DsTemplate templ, ReplyCb done);
  void Rd(DsTemplate templ, ReplyCb done);   // blocking
  void In(DsTemplate templ, ReplyCb done);   // blocking
  void Cas(DsTemplate templ, DsTuple tuple, ReplyCb done);
  void Replace(DsTemplate templ, DsTuple tuple, ReplyCb done);
  void RdAll(DsTemplate templ, ReplyCb done);
  void Call(DsOp op, ReplyCb done);

  // Invokes the extension listening on `trigger_path` (§5.2.2): a blocking
  // rd on the trigger object the extension intercepts. DepSpace extensions
  // read their arguments from the tuple space, so `args` is unused here; it
  // exists for API parity with ZkClient::CallExtension.
  void CallExtension(const std::string& trigger_path, const std::string& args,
                     ExtensionCb done);

  // EDS conveniences (§5.2.2): registration/ack/deregistration are ordinary
  // tuple operations on the extension manager's dedicated namespace.
  void RegisterExtension(const std::string& name, const std::string& code, ReplyCb done);
  void DeregisterExtension(const std::string& name, ReplyCb done);
  void AcknowledgeExtension(const std::string& name, ReplyCb done);

  // Periodically renews EVERY lease tuple this client owns (universal
  // template) — needed when a server-side extension created lease tuples on
  // the client's behalf (monitor inside an extension): the client is the
  // owner and must keep them alive.
  void EnableAutoRenewAll();

  // Simulate process death: stop renewing leases and drop pending calls.
  void Kill();

  // History observation (conformance checking); pass {} to detach.
  void SetObserver(DsClientObserver observer) { observer_ = std::move(observer); }
  // Observability (nullable): retransmit / give-up counters in the shared
  // registry.
  void SetObs(Obs* obs);

  NodeId id() const { return id_; }
  size_t outstanding() const { return calls_.size(); }

  // NetworkNode.
  void HandlePacket(Packet&& pkt) override;

 private:
  struct PendingCall {
    DsOp op;
    ReplyCb done;
    std::map<std::string, int> votes;  // encoded reply -> count
    int attempts = 0;
    Duration backoff = 0;  // next retransmit delay
  };

  void Transmit(uint64_t req_id);
  void ArmRetry(uint64_t req_id);
  void RenewTick();

  EventLoop* loop_;
  Network* net_;
  NodeId id_;
  ServerList replicas_;
  DsClientOptions options_;

  uint64_t next_req_ = 0;
  std::map<uint64_t, PendingCall> calls_;
  DsClientObserver observer_;
  std::vector<DsTemplate> leases_;
  Rng jitter_rng_;  // private backoff-jitter stream (seeded per client)
  bool alive_ = true;
  bool auto_renew_all_ = false;
  TimerId renew_timer_ = kInvalidTimer;
  Obs* obs_ = nullptr;
  Counter* m_retransmits_ = nullptr;
  Counter* m_give_ups_ = nullptr;
};

}  // namespace edc

#endif  // EDC_DS_CLIENT_H_
