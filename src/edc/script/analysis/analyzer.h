// Registration-time static analysis driver for CoordScript (paper §4.1.1).
//
// AnalyzeProgram runs every pass — structural limits, lexical scoping,
// whitelist, CFG dataflow (liveness, reaching defs, dead store, unused
// variable, unreachable code), worst-case cost bounding, and determinism
// taint — and accumulates diagnostics instead of stopping at the first
// violation. Per-handler results carry the certification verdict the
// extension registry stores and the bindings use for metering elision:
// a certified handler has a proven step bound within the execution budget,
// so the interpreter can skip the per-node limit check (§4.2, "verification
// pays once").

#ifndef EDC_SCRIPT_ANALYSIS_ANALYZER_H_
#define EDC_SCRIPT_ANALYSIS_ANALYZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/script/analysis/diagnostics.h"
#include "edc/script/ast.h"
#include "edc/script/verifier.h"

namespace edc {

struct HandlerReport {
  bool cost_bounded = false;
  int64_t step_bound = 0;     // valid only when cost_bounded
  bool certified = false;     // cost_bounded && step_bound <= certify_max_steps
  bool deterministic = true;  // no nondeterministic taint reaches a sink
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;  // sorted by line/col/code
  std::map<std::string, HandlerReport> handlers;

  bool ok() const { return !HasErrors(diagnostics); }
  const Diagnostic* first_error() const;
};

AnalysisReport AnalyzeProgram(const Program& program, const VerifierConfig& config);

// Legacy accept/reject view of a report: Ok when error-free, otherwise
// kExtensionRejected with "verification failed at line N: <message> [CODE]"
// (the format VerifyProgram has always produced).
Status ToVerifierStatus(const AnalysisReport& report);

}  // namespace edc

#endif  // EDC_SCRIPT_ANALYSIS_ANALYZER_H_
