# Empty dependencies file for abl_sandbox.
# This may be replaced when dependencies are built.
