# Empty dependencies file for edc_ds.
# This may be replaced when dependencies are built.
