#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/ds/ds_cluster.h"

namespace edc {
namespace {

std::string DataOf(const DsReply& reply) {
  if (reply.tuples.empty()) {
    return "";
  }
  return FieldToString(reply.tuples[0][1]);
}

TEST(DsServiceTest, OutThenRdpOnAllReplicas) {
  DsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  bool out_ok = false;
  client->Out(ObjectTuple("/a", "v"), [&](Result<DsReply> r) { out_ok = r.ok(); });
  cluster.Settle();
  EXPECT_TRUE(out_ok);
  for (auto& server : cluster.servers) {
    EXPECT_TRUE(server->space().HasMatch(ObjectTemplate("/a")));
  }
  std::string data;
  client->Rdp(ObjectTemplate("/a"), [&](Result<DsReply> r) {
    ASSERT_TRUE(r.ok());
    data = DataOf(*r);
  });
  cluster.Settle();
  EXPECT_EQ(data, "v");
}

TEST(DsServiceTest, RdpMissIsNoNode) {
  DsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  ErrorCode code = ErrorCode::kOk;
  client->Rdp(ObjectTemplate("/ghost"), [&](Result<DsReply> r) { code = r.code(); });
  cluster.Settle();
  EXPECT_EQ(code, ErrorCode::kNoNode);
}

TEST(DsServiceTest, InpRemovesExactlyOnce) {
  DsCluster cluster;
  cluster.Start();
  DsClient* a = cluster.AddClient();
  DsClient* b = cluster.AddClient();
  a->Out(ObjectTuple("/once", "x"), [](Result<DsReply>) {});
  cluster.Settle();
  int successes = 0;
  int misses = 0;
  auto count = [&](Result<DsReply> r) {
    if (r.ok()) {
      ++successes;
    } else if (r.code() == ErrorCode::kNoNode) {
      ++misses;
    }
  };
  a->Inp(ObjectTemplate("/once"), count);
  b->Inp(ObjectTemplate("/once"), count);
  cluster.Settle();
  EXPECT_EQ(successes, 1);
  EXPECT_EQ(misses, 1);
}

TEST(DsServiceTest, BlockingRdUnblocksOnOut) {
  DsCluster cluster;
  cluster.Start();
  DsClient* reader = cluster.AddClient();
  DsClient* writer = cluster.AddClient();
  std::string seen;
  reader->Rd(ObjectTemplate("/later"), [&](Result<DsReply> r) {
    ASSERT_TRUE(r.ok());
    seen = DataOf(*r);
  });
  cluster.Settle();
  EXPECT_EQ(seen, "");  // still blocked
  writer->Out(ObjectTuple("/later", "arrived"), [](Result<DsReply>) {});
  cluster.Settle();
  EXPECT_EQ(seen, "arrived");
}

TEST(DsServiceTest, BlockingInConsumesForOneWaiterOnly) {
  DsCluster cluster;
  cluster.Start();
  DsClient* w1 = cluster.AddClient();
  DsClient* w2 = cluster.AddClient();
  DsClient* writer = cluster.AddClient();
  int unblocked = 0;
  w1->In(ObjectTemplate("/job"), [&](Result<DsReply> r) { unblocked += r.ok(); });
  cluster.Settle(Millis(100));
  w2->In(ObjectTemplate("/job"), [&](Result<DsReply> r) { unblocked += r.ok(); });
  cluster.Settle();
  writer->Out(ObjectTuple("/job", "payload"), [](Result<DsReply>) {});
  cluster.Settle();
  EXPECT_EQ(unblocked, 1);  // only the first waiter got it
  for (auto& server : cluster.servers) {
    EXPECT_FALSE(server->space().HasMatch(ObjectTemplate("/job")));
  }
  // Second waiter fires on the next out.
  writer->Out(ObjectTuple("/job", "payload2"), [](Result<DsReply>) {});
  cluster.Settle();
  EXPECT_EQ(unblocked, 2);
}

TEST(DsServiceTest, MultipleRdWaitersAllUnblock) {
  DsCluster cluster;
  cluster.Start();
  std::vector<DsClient*> readers;
  int unblocked = 0;
  for (int i = 0; i < 5; ++i) {
    DsClient* c = cluster.AddClient();
    readers.push_back(c);
    c->Rd(ObjectTemplate("/sig"), [&](Result<DsReply> r) { unblocked += r.ok(); });
  }
  cluster.Settle();
  cluster.AddClient()->Out(ObjectTuple("/sig", ""), [](Result<DsReply>) {});
  cluster.Settle();
  EXPECT_EQ(unblocked, 5);
}

TEST(DsServiceTest, CasSemantics) {
  DsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  bool first = false;
  ErrorCode second = ErrorCode::kOk;
  client->Cas(ObjectTemplate("/c"), ObjectTuple("/c", "1"),
              [&](Result<DsReply> r) { first = r.ok(); });
  client->Cas(ObjectTemplate("/c"), ObjectTuple("/c", "2"),
              [&](Result<DsReply> r) { second = r.code(); });
  cluster.Settle();
  EXPECT_TRUE(first);
  EXPECT_EQ(second, ErrorCode::kNodeExists);
}

TEST(DsServiceTest, ReplaceConditionalOnContent) {
  DsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  client->Out(ObjectTuple("/ctr", "5"), [](Result<DsReply>) {});
  cluster.Settle();
  DsTemplate expect5{DsTField::Exact(DsField{std::string("/ctr")}),
                     DsTField::Exact(DsField{std::string("5")})};
  DsTemplate expect9{DsTField::Exact(DsField{std::string("/ctr")}),
                     DsTField::Exact(DsField{std::string("9")})};
  ErrorCode bad = ErrorCode::kOk;
  bool good = false;
  client->Replace(expect9, ObjectTuple("/ctr", "10"),
                  [&](Result<DsReply> r) { bad = r.code(); });
  client->Replace(expect5, ObjectTuple("/ctr", "6"),
                  [&](Result<DsReply> r) { good = r.ok(); });
  cluster.Settle();
  EXPECT_EQ(bad, ErrorCode::kNoNode);
  EXPECT_TRUE(good);
}

TEST(DsServiceTest, RdAllReturnsAllMatches) {
  DsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  for (int i = 0; i < 4; ++i) {
    client->Out(ObjectTuple("/set/e" + std::to_string(i), ""), [](Result<DsReply>) {});
  }
  cluster.Settle();
  size_t n = 0;
  client->RdAll(ObjectPrefixTemplate("/set"), [&](Result<DsReply> r) {
    ASSERT_TRUE(r.ok());
    n = r->tuples.size();
  });
  cluster.Settle();
  EXPECT_EQ(n, 4u);
}

TEST(DsServiceTest, LeaseExpiresWhenClientDies) {
  DsCluster cluster;
  cluster.Start();
  DsClientOptions opt;
  opt.lease = Millis(400);
  opt.renew_interval = Millis(150);
  DsClient* mortal = cluster.AddClient(opt);
  DsClient* observer = cluster.AddClient();
  mortal->OutLease(ObjectTuple("/alive/m", ""), [](Result<DsReply>) {});
  cluster.Settle(Seconds(1));
  // Still present: renewals keep it alive well past the base lease.
  bool present = false;
  observer->Rdp(ObjectTemplate("/alive/m"), [&](Result<DsReply> r) { present = r.ok(); });
  cluster.Settle();
  EXPECT_TRUE(present);
  // Client dies; lease eventually lapses (observer polls drive expiry).
  mortal->Kill();
  cluster.Settle(Seconds(1));
  bool still_present = true;
  observer->Rdp(ObjectTemplate("/alive/m"),
                [&](Result<DsReply> r) { still_present = r.ok(); });
  cluster.Settle();
  EXPECT_FALSE(still_present);
}

TEST(DsServiceTest, EmNamespaceDeniedToRegularOps) {
  DsCluster cluster;  // no hooks installed: /em must be inaccessible
  cluster.Start();
  DsClient* client = cluster.AddClient();
  ErrorCode out_code = ErrorCode::kOk;
  ErrorCode rd_code = ErrorCode::kOk;
  client->Out(ObjectTuple("/em/sneaky", "code"),
              [&](Result<DsReply> r) { out_code = r.code(); });
  client->Rdp(ObjectTemplate("/em/sneaky"), [&](Result<DsReply> r) { rd_code = r.code(); });
  cluster.Settle();
  EXPECT_EQ(out_code, ErrorCode::kAccessDenied);
  EXPECT_EQ(rd_code, ErrorCode::kAccessDenied);
}

TEST(DsServiceTest, PolicyLayerRejectsOversizedTuples) {
  DsServerOptions options;
  options.policy.check = [](const DsOp& op, size_t) -> Status {
    size_t bytes = 0;
    for (const DsField& f : op.tuple) {
      bytes += FieldToString(f).size();
    }
    if (bytes > 100) {
      return Status(ErrorCode::kPolicyViolation, "tuple too large");
    }
    return Status::Ok();
  };
  DsCluster cluster(21, options);
  cluster.Start();
  DsClient* client = cluster.AddClient();
  ErrorCode code = ErrorCode::kOk;
  client->Out(ObjectTuple("/big", std::string(200, 'x')),
              [&](Result<DsReply> r) { code = r.code(); });
  cluster.Settle();
  EXPECT_EQ(code, ErrorCode::kPolicyViolation);
  bool small_ok = false;
  client->Out(ObjectTuple("/small", "x"), [&](Result<DsReply> r) { small_ok = r.ok(); });
  cluster.Settle();
  EXPECT_TRUE(small_ok);
}

TEST(DsServiceTest, CustomAccessControlDeniesClient) {
  DsServerOptions options;
  options.access.check = [](NodeId client, DsOpType type, const DsTuple*,
                            const DsTemplate*) -> Status {
    if (client == 100 && type == DsOpType::kOut) {
      return Status(ErrorCode::kAccessDenied, "client 100 is read-only");
    }
    return Status::Ok();
  };
  DsCluster cluster(21, options);
  cluster.Start();
  DsClient* readonly = cluster.AddClient();  // gets id 100
  DsClient* normal = cluster.AddClient();
  ErrorCode denied = ErrorCode::kOk;
  bool allowed = false;
  readonly->Out(ObjectTuple("/x", ""), [&](Result<DsReply> r) { denied = r.code(); });
  normal->Out(ObjectTuple("/y", ""), [&](Result<DsReply> r) { allowed = r.ok(); });
  cluster.Settle();
  EXPECT_EQ(denied, ErrorCode::kAccessDenied);
  EXPECT_TRUE(allowed);
}

TEST(DsServiceTest, SurvivesPrimaryCrash) {
  DsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  bool before = false;
  client->Out(ObjectTuple("/pre", ""), [&](Result<DsReply> r) { before = r.ok(); });
  cluster.Settle();
  ASSERT_TRUE(before);
  cluster.servers[0]->Crash();
  cluster.net->SetNodeUp(1, false);
  bool after = false;
  client->Out(ObjectTuple("/post", ""), [&](Result<DsReply> r) { after = r.ok(); });
  cluster.Settle(Seconds(6));
  EXPECT_TRUE(after);
  EXPECT_TRUE(cluster.servers[1]->space().HasMatch(ObjectTemplate("/pre")));
  EXPECT_TRUE(cluster.servers[1]->space().HasMatch(ObjectTemplate("/post")));
}

TEST(DsServiceTest, AllReplicasConvergeToIdenticalSpaces) {
  DsCluster cluster;
  cluster.Start();
  DsClient* a = cluster.AddClient();
  DsClient* b = cluster.AddClient();
  for (int i = 0; i < 10; ++i) {
    a->Out(ObjectTuple("/m/" + std::to_string(i), "a"), [](Result<DsReply>) {});
    b->Replace(ObjectPrefixTemplate("/m"), ObjectTuple("/m/r" + std::to_string(i), "b"),
               [](Result<DsReply>) {});
  }
  cluster.Settle(Seconds(2));
  auto reference = cluster.servers[0]->space().Serialize();
  for (auto& server : cluster.servers) {
    EXPECT_EQ(server->space().Serialize(), reference) << "replica " << server->id();
  }
}

}  // namespace
}  // namespace edc
