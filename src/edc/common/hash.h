// FNV-1a hashing, used for message digests inside the BFT ordering protocol.
// (A cryptographic hash in production; collision resistance is irrelevant to
// the protocol logic exercised here.)

#ifndef EDC_COMMON_HASH_H_
#define EDC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace edc {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t Fnv1a64(const std::vector<uint8_t>& data, uint64_t seed = kFnvOffset) {
  return Fnv1a64(data.data(), data.size(), seed);
}

inline uint64_t Fnv1a64(std::string_view s, uint64_t seed = kFnvOffset) {
  return Fnv1a64(reinterpret_cast<const uint8_t*>(s.data()), s.size(), seed);
}

// Murmur3 fmix64 finalizer. Raw FNV-1a clusters inputs that differ only in
// their final byte or two (those bytes pass through just one or two prime
// multiplies, so the hashes sit within ~2^41 of each other — one vnode gap
// on a 2^64 ring). Anything placing FNV output on a ring or bucketing it
// must run it through this first.
inline uint64_t MixBits(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace edc

#endif  // EDC_COMMON_HASH_H_
