#include "edc/ds/server.h"

#include <algorithm>
#include <utility>

#include "edc/common/logging.h"

namespace edc {

namespace {

bool TouchesEmNamespace(const DsTuple* tuple, const DsTemplate* templ) {
  auto path_is_em = [](const DsField& f) {
    return std::holds_alternative<std::string>(f) &&
           std::get<std::string>(f).rfind("/em", 0) == 0;
  };
  if (tuple != nullptr && !tuple->empty() && path_is_em((*tuple)[0])) {
    return true;
  }
  if (templ != nullptr && !templ->empty()) {
    const DsTField& tf = (*templ)[0];
    if (tf.kind != DsTField::Kind::kAny && path_is_em(tf.value)) {
      return true;
    }
  }
  return false;
}

}  // namespace

// ------------------------------------------------------------ exec context

DsExecContext::DsExecContext(DsServer* server, NodeId client, uint64_t req_id, SimTime ts)
    : server_(server), client_(client), req_id_(req_id), ts_(ts) {}

Status DsExecContext::Out(DsTuple tuple, Duration lease) {
  ++state_ops_;
  if (auto s = server_->CheckAccess(client_, DsOpType::kOut, &tuple, nullptr); !s.ok()) {
    return s;
  }
  events_.push_back(DsEvent{DsEvent::Type::kCreated, tuple});
  server_->space_.Out(std::move(tuple), ts_, client_, lease);
  return Status::Ok();
}

Result<DsTuple> DsExecContext::Rdp(const DsTemplate& templ) {
  ++state_ops_;
  if (auto s = server_->CheckAccess(client_, DsOpType::kRdp, nullptr, &templ); !s.ok()) {
    return s;
  }
  return server_->space_.Rdp(templ);
}

Result<DsTuple> DsExecContext::Inp(const DsTemplate& templ) {
  ++state_ops_;
  if (auto s = server_->CheckAccess(client_, DsOpType::kInp, nullptr, &templ); !s.ok()) {
    return s;
  }
  auto removed = server_->space_.Inp(templ);
  if (removed.ok()) {
    events_.push_back(DsEvent{DsEvent::Type::kDeleted, *removed});
  }
  return removed;
}

std::vector<DsEntry> DsExecContext::RdAll(const DsTemplate& templ) {
  ++state_ops_;
  if (auto s = server_->CheckAccess(client_, DsOpType::kRdAll, nullptr, &templ); !s.ok()) {
    return {};
  }
  return server_->space_.RdAll(templ);
}

Status DsExecContext::Cas(const DsTemplate& templ, DsTuple tuple, Duration lease) {
  ++state_ops_;
  if (auto s = server_->CheckAccess(client_, DsOpType::kCas, &tuple, &templ); !s.ok()) {
    return s;
  }
  DsTuple copy = tuple;
  Status s = server_->space_.Cas(templ, std::move(tuple), ts_, client_, lease);
  if (s.ok()) {
    events_.push_back(DsEvent{DsEvent::Type::kCreated, std::move(copy)});
  }
  return s;
}

Status DsExecContext::Replace(const DsTemplate& templ, DsTuple tuple) {
  ++state_ops_;
  if (auto s = server_->CheckAccess(client_, DsOpType::kReplace, &tuple, &templ); !s.ok()) {
    return s;
  }
  DsTuple copy = tuple;
  DsTuple removed;
  Status s = server_->space_.Replace(templ, std::move(tuple), ts_, client_, &removed);
  if (s.ok()) {
    events_.push_back(DsEvent{DsEvent::Type::kChanged, std::move(copy)});
  }
  return s;
}

size_t DsExecContext::Renew(const DsTemplate& templ, Duration lease) {
  ++state_ops_;
  return server_->space_.Renew(templ, client_, ts_, lease);
}

void DsExecContext::Block(DsTemplate templ, bool consume) {
  DsServer::Waiter waiter;
  waiter.templ = std::move(templ);
  waiter.client = client_;
  waiter.req_id = req_id_;
  waiter.consume = consume;
  waiter.order = server_->next_waiter_order_++;
  server_->waiters_.push_back(std::move(waiter));
}

Status DsExecContext::PrivilegedOut(DsTuple tuple) {
  events_.push_back(DsEvent{DsEvent::Type::kCreated, tuple});
  server_->space_.Out(std::move(tuple), ts_, client_, 0);
  return Status::Ok();
}

Result<DsTuple> DsExecContext::PrivilegedInp(const DsTemplate& templ) {
  auto removed = server_->space_.Inp(templ);
  if (removed.ok()) {
    events_.push_back(DsEvent{DsEvent::Type::kDeleted, *removed});
  }
  return removed;
}

// ------------------------------------------------------------------ server

DsServer::DsServer(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> members,
                   const CostModel& costs, DsServerOptions options)
    : loop_(loop),
      id_(id),
      costs_(costs),
      options_(std::move(options)),
      cpu_(loop, options_.cpu_cores) {
  BftConfig cfg;
  cfg.members = std::move(members);
  cfg.self = id;
  cfg.f = options_.f;
  cfg.request_timeout = options_.request_timeout;
  cfg.checkpoint_interval = options_.checkpoint_interval;
  cfg.watermark_window = options_.watermark_window;
  cfg.dedup_window = options_.dedup_window;
  bft_ = std::make_unique<BftReplica>(loop, net, &cpu_, costs, cfg, this);
}

void DsServer::Start() {
  running_ = true;
  space_.Load({});
  waiters_.clear();
  map_version_ = 0;
  ops_executed_ = 0;
  if (hooks_ != nullptr) {
    hooks_->OnStateReloaded();
  }
  bft_->Start();
}

void DsServer::Crash() {
  running_ = false;
  bft_->Crash();
}

void DsServer::Restart() {
  running_ = true;
  space_.Load({});
  waiters_.clear();
  map_version_ = 0;  // rebuilt by log replay / state transfer
  if (hooks_ != nullptr) {
    hooks_->OnStateReloaded();
  }
  bft_->Restart();
}

void DsServer::HandlePacket(Packet&& pkt) {
  if (!running_) {
    return;
  }
  if (IsBftPacket(pkt.type)) {
    bft_->HandlePacket(std::move(pkt));
  }
}

std::vector<uint8_t> DsServer::TakeSnapshot() {
  Encoder enc;
  enc.PutBytes(space_.Serialize());
  enc.PutU64(next_waiter_order_);
  enc.PutVarint(waiters_.size());
  for (const Waiter& w : waiters_) {
    EncodeTemplate(enc, w.templ);
    enc.PutU32(w.client);
    enc.PutU64(w.req_id);
    enc.PutBool(w.consume);
    enc.PutU64(w.order);
  }
  enc.PutVarint(map_version_);
  return enc.Release();
}

Status DsServer::RestoreSnapshot(const std::vector<uint8_t>& snapshot) {
  Decoder dec(snapshot);
  auto image = dec.GetBytes();
  auto order = dec.GetU64();
  auto n = dec.GetVarint();
  if (!image.ok() || !order.ok() || !n.ok()) {
    return Status(ErrorCode::kDecodeError, "snapshot header");
  }
  std::vector<Waiter> waiters;
  for (uint64_t i = 0; i < *n; ++i) {
    Waiter w;
    auto templ = DecodeTemplate(dec);
    auto client = dec.GetU32();
    auto req_id = dec.GetU64();
    auto consume = dec.GetBool();
    auto worder = dec.GetU64();
    if (!templ.ok() || !client.ok() || !req_id.ok() || !consume.ok() || !worder.ok()) {
      return Status(ErrorCode::kDecodeError, "snapshot waiter");
    }
    w.templ = std::move(*templ);
    w.client = *client;
    w.req_id = *req_id;
    w.consume = *consume;
    w.order = *worder;
    waiters.push_back(std::move(w));
  }
  auto map_version = dec.GetVarint();
  if (!map_version.ok()) {
    return Status(ErrorCode::kDecodeError, "snapshot map version");
  }
  if (auto s = space_.Load(*image); !s.ok()) {
    return s;
  }
  next_waiter_order_ = *order;
  waiters_ = std::move(waiters);
  map_version_ = *map_version;
  if (hooks_ != nullptr) {
    hooks_->OnStateReloaded();  // rebuild the extension registry from /em tuples
  }
  return Status::Ok();
}

Status DsServer::CheckAccess(NodeId client, DsOpType type, const DsTuple* tuple,
                             const DsTemplate* templ) const {
  if (options_.access.check) {
    return options_.access.check(client, type, tuple, templ);
  }
  // Default rule: the extension manager's namespace is off limits to regular
  // operations (§5.2.2: "a tuple space dedicated to the extension manager
  // and not accessible via regular operations").
  if (TouchesEmNamespace(tuple, templ)) {
    return Status(ErrorCode::kAccessDenied, "extension-manager namespace");
  }
  return Status::Ok();
}

Status DsServer::CheckPolicy(const DsOp& op) const {
  if (options_.policy.check) {
    return options_.policy.check(op, space_.size());
  }
  return Status::Ok();
}

void DsServer::Reply(NodeId client, uint64_t req_id, const DsReply& reply) {
  bft_->SendReply(client, req_id, reply.Encode());
}

BftExecOutcome DsServer::Execute(uint64_t seq, SimTime ts, const BftRequest& request) {
  if (exec_observer_) {
    exec_observer_(seq, ts, request);
  }
  ++ops_executed_;
  Duration extra_cpu = costs_.bft_execute_cpu;

  DsExecContext ctx(this, request.client, request.req_id, ts);

  // Deterministic lease expiry against the ordered timestamp.
  for (DsTuple& expired : space_.Expire(ts)) {
    ctx.events().push_back(DsEvent{DsEvent::Type::kDeleted, std::move(expired)});
  }

  auto op = DsOp::Decode(request.payload);
  if (!op.ok()) {
    DsReply reply;
    reply.code = ErrorCode::kDecodeError;
    Reply(request.client, request.req_id, reply);
    ProcessEvents(&ctx, &extra_cpu);
    return BftExecOutcome{extra_cpu};
  }

  // Map-version protocol (docs/sharding.md). Both branches are part of the
  // replicated state machine: the version only changes at an ordered
  // kSetMapVersion and the staleness check reads that replicated version, so
  // all correct replicas accept/reject the same requests and vote
  // identically. The current version rides back in `value` either way.
  if (op->type == DsOpType::kSetMapVersion) {
    if (op->map_version > map_version_) {
      map_version_ = op->map_version;
    }
    DsReply reply;
    reply.value = std::to_string(map_version_);
    Reply(request.client, request.req_id, reply);
    ProcessEvents(&ctx, &extra_cpu);
    return BftExecOutcome{extra_cpu};
  }
  if (map_version_ > 0 && op->map_version < map_version_) {
    DsReply reply;
    reply.code = ErrorCode::kShardMapStale;
    reply.value = std::to_string(map_version_);
    Reply(request.client, request.req_id, reply);
    ProcessEvents(&ctx, &extra_cpu);
    return BftExecOutcome{extra_cpu};
  }

  DsExecOutcome outcome;
  if (hooks_ != nullptr && hooks_->MatchesOperation(request.client, *op)) {
    outcome = hooks_->HandleOperation(&ctx, request.client, *op);
    extra_cpu += outcome.cpu_cost;
  }
  if (!outcome.handled) {
    // Policy enforcement sits above the extension layer (Fig. 4).
    Status policy = CheckPolicy(*op);
    if (!policy.ok()) {
      outcome.handled = true;
      outcome.status = policy;
    } else {
      outcome = ExecuteNormal(&ctx, *op);
    }
  }

  if (!outcome.status.ok()) {
    DsReply reply;
    reply.code = outcome.status.code();
    reply.value = outcome.status.message();
    Reply(request.client, request.req_id, reply);
  } else if (!outcome.deferred) {
    DsReply reply;
    reply.value = outcome.result;
    Reply(request.client, request.req_id, reply);
  }

  ProcessEvents(&ctx, &extra_cpu);
  return BftExecOutcome{extra_cpu};
}

DsExecOutcome DsServer::ExecuteNormal(DsExecContext* ctx, const DsOp& op) {
  DsExecOutcome outcome;
  outcome.handled = true;
  outcome.has_result = true;
  switch (op.type) {
    case DsOpType::kOut:
      outcome.status = ctx->Out(op.tuple, op.lease);
      break;
    case DsOpType::kRdp: {
      auto t = ctx->Rdp(op.templ);
      if (!t.ok()) {
        outcome.status = t.status();  // kNoNode = client-visible miss
        break;
      }
      DsReply reply;
      reply.tuples.push_back(*t);
      Reply(ctx->client(), ctx->req_id(), reply);
      outcome.deferred = true;  // reply already sent, with payload
      break;
    }
    case DsOpType::kInp: {
      auto t = ctx->Inp(op.templ);
      if (t.ok()) {
        DsReply reply;
        reply.tuples.push_back(*t);
        Reply(ctx->client(), ctx->req_id(), reply);
        outcome.deferred = true;
        outcome.status = Status::Ok();
      } else {
        outcome.status = t.status();
      }
      break;
    }
    case DsOpType::kRd:
    case DsOpType::kIn: {
      bool consume = op.type == DsOpType::kIn;
      // ACL check up front so a denied client cannot park waiters.
      if (auto s = CheckAccess(ctx->client(), op.type, nullptr, &op.templ); !s.ok()) {
        outcome.status = s;
        break;
      }
      auto existing = space_.Rdp(op.templ);
      if (existing.ok() &&
          (hooks_ == nullptr ||
           hooks_->AllowUnblock(ctx->client(), op.templ, *existing))) {
        DsTuple t = *existing;
        if (consume) {
          auto removed = ctx->Inp(op.templ);
          if (removed.ok()) {
            t = *removed;
          }
        }
        DsReply reply;
        reply.tuples.push_back(t);
        Reply(ctx->client(), ctx->req_id(), reply);
      } else {
        ctx->Block(op.templ, consume);
      }
      outcome.deferred = true;
      break;
    }
    case DsOpType::kCas:
      outcome.status = ctx->Cas(op.templ, op.tuple, op.lease);
      break;
    case DsOpType::kReplace:
      outcome.status = ctx->Replace(op.templ, op.tuple);
      break;
    case DsOpType::kRdAll: {
      auto entries = ctx->RdAll(op.templ);
      DsReply reply;
      for (DsEntry& e : entries) {
        reply.tuples.push_back(std::move(e.tuple));
      }
      Reply(ctx->client(), ctx->req_id(), reply);
      outcome.deferred = true;
      break;
    }
    case DsOpType::kRenew: {
      size_t n = ctx->Renew(op.templ, op.lease);
      outcome.result = std::to_string(n);
      break;
    }
    case DsOpType::kSetMapVersion:
      // Handled before the extension/policy layers in Execute().
      outcome.status = Status(ErrorCode::kInternal, "unreachable");
      break;
  }
  return outcome;
}

void DsServer::ProcessEvents(DsExecContext* ctx, Duration* extra_cpu) {
  for (size_t round = 0; round < options_.max_event_rounds; ++round) {
    if (ctx->events().empty()) {
      return;
    }
    std::vector<DsEvent> events = std::move(ctx->events());
    ctx->events().clear();

    // Unblock waiters on created tuples.
    for (const DsEvent& event : events) {
      if (event.type != DsEvent::Type::kCreated) {
        continue;
      }
      // rd waiters: all whose template matches (and the tuple still exists).
      auto it = waiters_.begin();
      while (it != waiters_.end()) {
        if (it->consume || !TupleMatches(it->templ, event.tuple) ||
            !space_.HasMatch(it->templ)) {
          ++it;
          continue;
        }
        if (hooks_ != nullptr && !hooks_->AllowUnblock(it->client, it->templ, event.tuple)) {
          ++it;
          continue;
        }
        DsReply reply;
        reply.tuples.push_back(event.tuple);
        Reply(it->client, it->req_id, reply);
        *extra_cpu += costs_.bft_msg_cpu;
        it = waiters_.erase(it);
      }
      // in waiter: the oldest matching one consumes the tuple.
      DsServer::Waiter* best = nullptr;
      for (Waiter& w : waiters_) {
        if (w.consume && TupleMatches(w.templ, event.tuple) &&
            (best == nullptr || w.order < best->order)) {
          best = &w;
        }
      }
      if (best != nullptr && space_.HasMatch(best->templ)) {
        if (hooks_ == nullptr || hooks_->AllowUnblock(best->client, best->templ, event.tuple)) {
          auto removed = space_.Inp(best->templ);
          if (removed.ok()) {
            ctx->events().push_back(DsEvent{DsEvent::Type::kDeleted, *removed});
            DsReply reply;
            reply.tuples.push_back(*removed);
            Reply(best->client, best->req_id, reply);
            uint64_t order = best->order;
            waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                          [order](const Waiter& w) {
                                            return w.order == order;
                                          }),
                           waiters_.end());
          }
        }
      }
    }

    // Event extensions may add further events through ctx.
    if (hooks_ != nullptr) {
      hooks_->DispatchEvents(ctx, events);
    }
  }
  if (!ctx->events().empty()) {
    EDC_LOG(kWarn) << "ds server " << id_ << ": event cascade cap reached, dropping "
                   << ctx->events().size() << " events";
    ctx->events().clear();
  }
}

}  // namespace edc
