// Shared helpers for the figure-reproduction benches.

#ifndef EDC_BENCH_COMMON_H_
#define EDC_BENCH_COMMON_H_

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "edc/harness/driver.h"
#include "edc/harness/fixture.h"
#include "edc/recipes/recipes.h"

namespace edc {

inline const std::vector<SystemKind>& AllSystems() {
  static const std::vector<SystemKind> kSystems{
      SystemKind::kZooKeeper, SystemKind::kExtensibleZooKeeper, SystemKind::kDepSpace,
      SystemKind::kExtensibleDepSpace};
  return kSystems;
}

// Paper sweep: 1-50 clients (Fig. 6/8), 2-50 (Fig. 10/12).
inline std::vector<size_t> ClientSweep(size_t first) { return {first, 10, 20, 30, 40, 50}; }

// Runs the simulator until `flag` is true (bounded); dies loudly otherwise.
inline void WaitFor(CoordFixture& fixture, const bool& flag, const char* what,
                    Duration max = Seconds(10)) {
  SimTime deadline = fixture.loop().now() + max;
  while (!flag && fixture.loop().now() < deadline) {
    fixture.Settle(Millis(100));
  }
  if (!flag) {
    std::fprintf(stderr, "FATAL: timed out waiting for %s\n", what);
    std::exit(1);
  }
}

// Builds a fixture and per-client recipe objects; runs Setup on client 0 and
// Attach on the rest.
template <typename Recipe, typename... Args>
std::vector<std::unique_ptr<Recipe>> SetupRecipe(CoordFixture& fixture, bool ext,
                                                 Args... args) {
  std::vector<std::unique_ptr<Recipe>> recipes;
  for (size_t i = 0; i < fixture.num_clients(); ++i) {
    recipes.push_back(std::make_unique<Recipe>(fixture.coord(i), ext, args...));
  }
  bool ready = false;
  recipes[0]->Setup([&](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "FATAL: setup failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    ready = true;
  });
  WaitFor(fixture, ready, "recipe setup");
  size_t attached = 1;
  bool all_attached = fixture.num_clients() == 1;
  for (size_t i = 1; i < fixture.num_clients(); ++i) {
    recipes[i]->Attach([&, i](Status s) {
      if (!s.ok()) {
        std::fprintf(stderr, "FATAL: attach %zu failed: %s\n", i, s.ToString().c_str());
        std::exit(1);
      }
      if (++attached == fixture.num_clients()) {
        all_attached = true;
      }
    });
  }
  WaitFor(fixture, all_attached, "recipe attach");
  return recipes;
}

struct SeededAverages {
  RunAggregate throughput;  // ops/s
  RunAggregate latency_ms;
  RunAggregate kb_per_op;
};

// Machine-readable bench output: one row per (system, clients, seed) run,
// written to bench_results/BENCH_<name>.json next to the human table so
// plotting and CI-trend scripts don't have to scrape stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void AddRow(SystemKind system, size_t clients, uint64_t seed, const RunStats& stats) {
    Row row;
    row.system = SystemName(system);
    row.clients = clients;
    row.seed = seed;
    row.ops_per_s = stats.ThroughputOpsPerSec();
    row.p50_ms = static_cast<double>(stats.latency.Percentile(0.5)) / 1e6;
    row.p99_ms = static_cast<double>(stats.latency.Percentile(0.99)) / 1e6;
    row.kb_per_op = stats.KbPerOp();
    rows_.push_back(row);
  }

  // Writes bench_results/BENCH_<name>.json; failures warn and continue (the
  // table on stdout is still the primary output).
  void Write() const {
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    std::string path = "bench_results/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    {\"system\": \"%s\", \"clients\": %zu, \"seed\": %llu, "
                    "\"ops_per_s\": %.3f, \"p50_ms\": %.6f, \"p99_ms\": %.6f, "
                    "\"kb_per_op\": %.6f}%s\n",
                    r.system.c_str(), r.clients, static_cast<unsigned long long>(r.seed),
                    r.ops_per_s, r.p50_ms, r.p99_ms, r.kb_per_op,
                    i + 1 < rows_.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string system;
    size_t clients = 0;
    uint64_t seed = 0;
    double ops_per_s = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double kb_per_op = 0;
  };
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace edc

#endif  // EDC_BENCH_COMMON_H_
