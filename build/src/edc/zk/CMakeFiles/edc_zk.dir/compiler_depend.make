# Empty compiler generated dependencies file for edc_zk.
# This may be replaced when dependencies are built.
