file(REMOVE_RECURSE
  "CMakeFiles/fig13_regular.dir/fig13_regular.cpp.o"
  "CMakeFiles/fig13_regular.dir/fig13_regular.cpp.o.d"
  "fig13_regular"
  "fig13_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
