#include "edc/ds/client.h"

#include <utility>

namespace edc {

DsClient::DsClient(EventLoop* loop, Network* net, NodeId id, ShardView view,
                   DsClientOptions options)
    : loop_(loop),
      net_(net),
      id_(id),
      replicas_(std::move(view.ensemble)),
      shard_id_(view.shard_id),
      map_version_(view.map_version),
      options_(options),
      jitter_rng_(JitterSeedFor(options.reconnect, id)) {
  net_->Register(id_, this);
}

void DsClient::SetObs(Obs* obs) {
  obs_ = obs;
  if (obs_ != nullptr) {
    m_retransmits_ = obs_->metrics.GetCounter("client.ds.retransmits");
    m_give_ups_ = obs_->metrics.GetCounter("client.ds.give_ups");
  } else {
    m_retransmits_ = m_give_ups_ = nullptr;
  }
}

void DsClient::Call(DsOp op, ReplyCb done) {
  if (!alive_) {
    return;
  }
  uint64_t req_id = ++next_req_;
  PendingCall call;
  call.op = std::move(op);
  if (call.op.type != DsOpType::kSetMapVersion) {
    // Stamp the routing version; kSetMapVersion carries the TARGET version in
    // the same field and must pass through untouched.
    call.op.map_version = map_version_;
  }
  call.done = std::move(done);
  call.backoff = options_.reconnect.initial_backoff;
  auto it = calls_.emplace(req_id, std::move(call)).first;
  if (observer_.on_call) {
    observer_.on_call(req_id, it->second.op);
  }
  Transmit(req_id);
  ArmRetry(req_id);
}

void DsClient::Transmit(uint64_t req_id) {
  auto it = calls_.find(req_id);
  if (it == calls_.end()) {
    return;
  }
  BftRequest req;
  req.client = id_;
  req.req_id = req_id;
  req.payload = it->second.op.Encode();
  std::vector<uint8_t> encoded = EncodeBftRequest(req);
  for (NodeId replica : replicas_.servers) {
    Packet pkt;
    pkt.src = id_;
    pkt.dst = replica;
    pkt.type = static_cast<uint32_t>(BftMsgType::kRequest);
    pkt.payload = encoded;
    net_->Send(std::move(pkt));
  }
}

void DsClient::ArmRetry(uint64_t req_id) {
  auto arm = calls_.find(req_id);
  if (arm == calls_.end()) {
    return;
  }
  Duration delay = arm->second.backoff;
  // Seeded jitter: shorten each retransmit delay by up to backoff_jitter of
  // itself so clients hit by the same fault don't retransmit in lockstep.
  if (options_.reconnect.backoff_jitter > 0.0 && delay > 0) {
    auto span = static_cast<uint64_t>(options_.reconnect.backoff_jitter *
                                      static_cast<double>(delay));
    if (span > 0) {
      delay -= static_cast<Duration>(jitter_rng_.UniformU64(span + 1));
    }
  }
  loop_->Schedule(delay, [this, req_id]() {
    auto it = calls_.find(req_id);
    if (!alive_ || it == calls_.end()) {
      return;
    }
    if (options_.reconnect.max_attempts > 0 &&
        it->second.attempts >= options_.reconnect.max_attempts) {
      ReplyCb done = std::move(it->second.done);
      calls_.erase(it);
      if (m_give_ups_ != nullptr) {
        m_give_ups_->Increment();
      }
      Result<DsReply> result{Status(ErrorCode::kConnectionLoss, "retransmit attempts exhausted")};
      if (observer_.on_reply) {
        observer_.on_reply(req_id, result);
      }
      done(std::move(result));
      return;
    }
    // Blocking rd/in legitimately wait; retransmissions are deduplicated by
    // the replicas, so retrying is harmless and covers lost packets and
    // primary failover.
    ++it->second.attempts;
    it->second.backoff = std::min(it->second.backoff * 2, options_.reconnect.max_backoff);
    if (m_retransmits_ != nullptr) {
      m_retransmits_->Increment();
    }
    Transmit(req_id);
    ArmRetry(req_id);
  });
}

void DsClient::HandlePacket(Packet&& pkt) {
  if (!alive_ || pkt.type != static_cast<uint32_t>(BftMsgType::kReply)) {
    return;
  }
  auto reply = DecodeReplyMsg(pkt.payload);
  if (!reply.ok()) {
    return;
  }
  auto it = calls_.find(reply->req_id);
  if (it == calls_.end()) {
    return;
  }
  std::string key(reply->payload.begin(), reply->payload.end());
  int votes = ++it->second.votes[key];
  if (votes < options_.f + 1) {
    return;
  }
  ReplyCb done = std::move(it->second.done);
  uint64_t req_id = reply->req_id;
  calls_.erase(it);
  Result<DsReply> result{Status(ErrorCode::kInternal, "")};
  auto decoded = DsReply::Decode(reply->payload);
  if (!decoded.ok()) {
    result = decoded.status();
  } else if (decoded->code != ErrorCode::kOk) {
    result = Status(decoded->code, decoded->value);
  } else {
    result = std::move(*decoded);
  }
  if (observer_.on_reply) {
    observer_.on_reply(req_id, result);
  }
  done(std::move(result));
}

void DsClient::Out(DsTuple tuple, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kOut;
  op.tuple = std::move(tuple);
  Call(std::move(op), std::move(done));
}

void DsClient::OutLease(DsTuple tuple, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kOut;
  op.tuple = tuple;
  op.lease = options_.lease;
  // Remember an exact template for renewals.
  DsTemplate templ;
  for (const DsField& f : tuple) {
    templ.push_back(DsTField::Exact(f));
  }
  leases_.push_back(std::move(templ));
  if (renew_timer_ == kInvalidTimer) {
    renew_timer_ = loop_->Schedule(options_.renew_interval, [this]() { RenewTick(); });
  }
  Call(std::move(op), std::move(done));
}

void DsClient::ReleaseLease(const DsTemplate& templ) {
  for (auto it = leases_.begin(); it != leases_.end(); ++it) {
    if (it->size() == templ.size()) {
      bool same = true;
      for (size_t i = 0; i < templ.size(); ++i) {
        same = same && (*it)[i].kind == templ[i].kind && (*it)[i].value == templ[i].value;
      }
      if (same) {
        leases_.erase(it);
        return;
      }
    }
  }
}

void DsClient::EnableAutoRenewAll() {
  if (auto_renew_all_) {
    return;
  }
  auto_renew_all_ = true;
  if (renew_timer_ == kInvalidTimer) {
    renew_timer_ = loop_->Schedule(options_.renew_interval, [this]() { RenewTick(); });
  }
}

void DsClient::RenewTick() {
  renew_timer_ = kInvalidTimer;
  if (!alive_ || (leases_.empty() && !auto_renew_all_)) {
    return;
  }
  if (auto_renew_all_) {
    DsOp op;
    op.type = DsOpType::kRenew;
    op.templ = DsTemplate{DsTField::Any(), DsTField::Any()};
    op.lease = options_.lease;
    Call(op, [](Result<DsReply>) {});
  } else {
    for (const DsTemplate& templ : leases_) {
      DsOp op;
      op.type = DsOpType::kRenew;
      op.templ = templ;
      op.lease = options_.lease;
      Call(op, [](Result<DsReply>) {});
    }
  }
  renew_timer_ = loop_->Schedule(options_.renew_interval, [this]() { RenewTick(); });
}

void DsClient::Rdp(DsTemplate templ, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kRdp;
  op.templ = std::move(templ);
  Call(std::move(op), std::move(done));
}

void DsClient::Inp(DsTemplate templ, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kInp;
  op.templ = std::move(templ);
  Call(std::move(op), std::move(done));
}

void DsClient::Rd(DsTemplate templ, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kRd;
  op.templ = std::move(templ);
  Call(std::move(op), std::move(done));
}

void DsClient::In(DsTemplate templ, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kIn;
  op.templ = std::move(templ);
  Call(std::move(op), std::move(done));
}

void DsClient::Cas(DsTemplate templ, DsTuple tuple, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kCas;
  op.templ = std::move(templ);
  op.tuple = std::move(tuple);
  Call(std::move(op), std::move(done));
}

void DsClient::Replace(DsTemplate templ, DsTuple tuple, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kReplace;
  op.templ = std::move(templ);
  op.tuple = std::move(tuple);
  Call(std::move(op), std::move(done));
}

void DsClient::RdAll(DsTemplate templ, ReplyCb done) {
  DsOp op;
  op.type = DsOpType::kRdAll;
  op.templ = std::move(templ);
  Call(std::move(op), std::move(done));
}

void DsClient::CallExtension(const std::string& trigger_path, const std::string& args,
                             ExtensionCb done) {
  (void)args;  // DepSpace extensions take their arguments from the tuple space
  Rd(ObjectTemplate(trigger_path), [done = std::move(done)](Result<DsReply> r) {
    if (!r.ok()) {
      done(r.status());
      return;
    }
    ExtensionResult result;
    result.intercepted = true;  // rd returned: extension result or the object
    result.exists = true;
    if (!r->tuples.empty() && r->tuples[0].size() > 1) {
      result.value = FieldToString(r->tuples[0][1]);
    } else {
      result.value = r->value;
    }
    done(result);
  });
}

void DsClient::RegisterExtension(const std::string& name, const std::string& code,
                                 ReplyCb done) {
  Out(ObjectTuple("/em/" + name, code), std::move(done));
}

void DsClient::DeregisterExtension(const std::string& name, ReplyCb done) {
  Inp(ObjectTemplate("/em/" + name), std::move(done));
}

void DsClient::AcknowledgeExtension(const std::string& name, ReplyCb done) {
  Out(ObjectTuple("/em/" + name + "/ack/" + std::to_string(id_), ""), std::move(done));
}

void DsClient::Kill() {
  alive_ = false;
  calls_.clear();
  leases_.clear();
  loop_->Cancel(renew_timer_);
}

}  // namespace edc
