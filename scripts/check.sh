#!/usr/bin/env bash
# Full local gate: configure + build, then run the test tiers the CI presets
# select — the plain suite, the chaos fault-injection scenarios, the
# model-conformance sweeps (docs/model_checking.md), the observability layer
# (docs/observability.md), the sharded coordination plane (docs/sharding.md),
# the dynamic-membership suite (docs/reconfig.md),
# the bytecode-VM conformance tier (docs/bytecode_vm.md),
# and the lint tier (docs/static_analysis.md):
# edc-lint golden tests, edc-lint over the example scripts, and clang-tidy
# when available. Any failure aborts.
#
# Usage: scripts/check.sh [--lint] [build-dir]   (default build dir: build)
#   --lint   run only the lint tier (golden tests + edc-lint + clang-tidy)

set -euo pipefail
cd "$(dirname "$0")/.."

LINT_ONLY=0
if [[ "${1:-}" == "--lint" ]]; then
  LINT_ONLY=1
  shift
fi

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_lint_tier() {
  echo "== lint: edc-lint golden tests =="
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS" --no-tests=error -L lint)
  echo "== lint: edc-lint over examples/scripts =="
  "$BUILD_DIR"/tools/edc-lint examples/scripts/queue_remove.edc \
    examples/scripts/audit_count.edc
  # The intentionally-broken example must keep exiting nonzero.
  if "$BUILD_DIR"/tools/edc-lint examples/scripts/broken_sweeper.edc >/dev/null; then
    echo "expected broken_sweeper.edc to lint with errors" >&2
    exit 1
  fi
  echo "== lint: edc-lint --format=json gate =="
  # Machine-readable pass over the clean examples: valid single-document
  # output, no error-severity findings, and every handler carrying a finite
  # inferred bound ("step_bound":null would mean the analyzer lost a bound).
  JSON_OUT="$("$BUILD_DIR"/tools/edc-lint --format=json \
    examples/scripts/queue_remove.edc examples/scripts/audit_count.edc)"
  if [[ "$JSON_OUT" != *'"files":['* || "$JSON_OUT" != *'"registry":['* ]]; then
    echo "edc-lint --format=json output missing files/registry sections" >&2
    exit 1
  fi
  if [[ "$JSON_OUT" == *'"severity":"error"'* ]]; then
    echo "edc-lint --format=json reported errors on clean examples" >&2
    exit 1
  fi
  if [[ "$JSON_OUT" == *'"step_bound":null'* ]]; then
    echo "edc-lint --format=json lost a step bound on clean examples" >&2
    exit 1
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy (script + ext) =="
    clang-tidy -p "$BUILD_DIR" --quiet \
      src/edc/script/*.cpp src/edc/script/analysis/*.cpp src/edc/ext/*.cpp
  else
    echo "== lint: clang-tidy not installed; skipping C++ tidy pass =="
  fi
}

if [[ "$LINT_ONLY" == 1 ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "$BUILD_DIR" -j "$JOBS" --target edc-lint lint_golden_test
  run_lint_tier
  echo "Lint checks passed."
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

run_lint_tier

cd "$BUILD_DIR"
echo "== tier-1 tests =="
ctest --output-on-failure -j "$JOBS" -LE 'chaos|model|obs|lint|shard|pipeline|reconfig|vm'
echo "== chaos tests =="
ctest --output-on-failure -j "$JOBS" -L chaos
echo "== model-conformance tests =="
ctest --output-on-failure -j "$JOBS" -L model
echo "== observability tests =="
ctest --output-on-failure -j "$JOBS" -L obs
echo "== sharded coordination plane tests =="
ctest --output-on-failure -j "$JOBS" --no-tests=error -L shard
echo "== pipeline determinism tests =="
ctest --output-on-failure -j "$JOBS" --no-tests=error -L pipeline
echo "== dynamic membership (reconfig) tests =="
ctest --output-on-failure -j "$JOBS" --no-tests=error -L reconfig
echo "== bytecode VM conformance tests =="
ctest --output-on-failure -j "$JOBS" --no-tests=error -L vm
# Spotlight the recovery/crash-restart families (docs/bft_recovery.md): these
# already ran inside the tiers above, but --no-tests=error makes the gate fail
# loudly if a rename or CMake edit silently drops them from discovery.
echo "== spotlight: BFT recovery + crash-restart chaos =="
ctest --output-on-failure -j "$JOBS" --no-tests=error \
  -R 'BftRecovery\.|ChaosTest\.CrashRestartEdsReplicaRejoinsViaStateTransfer'
echo "== spotlight: EDS schedule sweep (crash-restart grammar) =="
ctest --output-on-failure -j "$JOBS" --no-tests=error \
  -R 'DsScheduleSweep\.'
echo "== spotlight: observability zero-perturbation guarantee =="
ctest --output-on-failure -j "$JOBS" --no-tests=error \
  -R 'ObsDeterminismTest\.'
echo "== spotlight: snapshot-shipped join + leader removal (docs/reconfig.md) =="
ctest --output-on-failure -j "$JOBS" --no-tests=error \
  -R 'ReconfigAcceptance\.|ReconfigZabTest\.JoinerBehindLogFloorCatchesUpViaSnapshot|ReconfigServiceTest\.RollingReplacementKeepsClientConnected'
echo "== spotlight: membership-episode schedule sweep =="
ctest --output-on-failure -j "$JOBS" --no-tests=error \
  -R 'ReconfigScheduleSweep\.'
echo "All checks passed."
