file(REMOVE_RECURSE
  "CMakeFiles/wan_gains.dir/wan_gains.cpp.o"
  "CMakeFiles/wan_gains.dir/wan_gains.cpp.o.d"
  "wan_gains"
  "wan_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
