// Reproduces paper Fig. 13: impact of the queue extension on regular
// clients. 30 regular clients (15 readers / 15 writers, 256-byte objects)
// share EZK / EDS with a varying number of queue clients; reported is the
// regular clients' read and write latency against the queue throughput
// achieved.
//
// Expected shape: write latency climbs with queue throughput (both share the
// ordered update path); read latency stays essentially flat (reads take the
// fast path at the connected replica and bypass the extension machinery).

#include "bench/common.h"

namespace edc {
namespace {

constexpr Duration kWarmup = Seconds(1);
constexpr Duration kMeasure = Seconds(3);
constexpr int kSeeds = 3;
constexpr size_t kRegularClients = 30;  // 15 readers + 15 writers
const std::string kPayload(256, 'x');   // typical coordination object size

struct MixedRun {
  double queue_kops = 0;
  double read_ms = 0;
  double write_ms = 0;
  double read_p99_ms = 0;
  double write_p99_ms = 0;
  StageSums stages;
};

MixedRun RunOne(SystemKind system, size_t queue_clients, uint64_t seed) {
  FixtureOptions options;
  options.system = system;
  options.num_clients = queue_clients + kRegularClients;
  options.seed = seed;
  options.observability = true;
  CoordFixture fixture(options);
  fixture.Start();

  // Queue clients are 0..queue_clients-1.
  std::vector<std::unique_ptr<DistributedQueue>> queues;
  for (size_t i = 0; i < queue_clients; ++i) {
    queues.push_back(
        std::make_unique<DistributedQueue>(fixture.coord(i), IsExtensible(system)));
  }
  bool ready = false;
  queues[0]->Setup([&](Status s) { ready = s.ok(); });
  WaitFor(fixture, ready, "queue setup");
  size_t attached = 1;
  bool all = queue_clients == 1;
  for (size_t i = 1; i < queue_clients; ++i) {
    queues[i]->Attach([&](Status) {
      if (++attached == queue_clients) {
        all = true;
      }
    });
  }
  WaitFor(fixture, all, "queue attach");

  // Regular clients own one 256-byte object each.
  size_t created = 0;
  bool objects_ready = false;
  for (size_t r = 0; r < kRegularClients; ++r) {
    size_t idx = queue_clients + r;
    fixture.coord(idx)->Create("/reg-" + std::to_string(r), kPayload,
                               [&](Result<std::string>) {
                                 if (++created == kRegularClients) {
                                   objects_ready = true;
                                 }
                               });
  }
  WaitFor(fixture, objects_ready, "regular objects");

  Recorder read_latency;
  Recorder write_latency;
  auto queue_ops = std::make_shared<std::vector<int64_t>>(queue_clients, 0);
  ClosedLoop driver(&fixture, [&, queue_ops](size_t i, std::function<void()> done) {
    if (i < queue_clients) {
      std::string id = "c" + std::to_string(i) + "-" + std::to_string(++(*queue_ops)[i]);
      queues[i]->Add(id, "", [&, i, done = std::move(done)](Status) {
        queues[i]->Remove([done = std::move(done)](Result<std::string>) { done(); });
      });
      return;
    }
    size_t r = i - queue_clients;
    SimTime start = fixture.loop().now();
    if (r < kRegularClients / 2) {
      fixture.coord(i)->Read("/reg-" + std::to_string(r),
                             [&, start, done = std::move(done)](Result<std::string>) {
                               read_latency.Record(fixture.loop().now() - start);
                               done();
                             });
    } else {
      fixture.coord(i)->Update("/reg-" + std::to_string(r), kPayload,
                               [&, start, done = std::move(done)](Status) {
                                 write_latency.Record(fixture.loop().now() - start);
                                 done();
                               });
    }
  });
  RunStats stats = driver.Run(kWarmup, kMeasure);

  MixedRun out;
  int64_t queue_total = 0;
  for (int64_t n : *queue_ops) {
    queue_total += n;
  }
  out.queue_kops = static_cast<double>(queue_total) * 2.0 /
                   ToSeconds(kWarmup + kMeasure) / 1000.0;
  out.read_ms = read_latency.Mean() / 1e6;
  out.write_ms = write_latency.Mean() / 1e6;
  out.read_p99_ms = static_cast<double>(read_latency.Percentile(0.99)) / 1e6;
  out.write_p99_ms = static_cast<double>(write_latency.Percentile(0.99)) / 1e6;
  out.stages = stats.stages;
  return out;
}

void Main() {
  BenchTable table(
      {"system", "queue_clients", "queue_kops_per_s", "reg_read_ms", "reg_write_ms"});
  BenchJson json("fig13_regular");
  for (SystemKind system :
       {SystemKind::kExtensibleZooKeeper, SystemKind::kExtensibleDepSpace}) {
    for (size_t queue_clients : {size_t{1}, size_t{5}, size_t{10}, size_t{20},
                                 size_t{35}, size_t{50}}) {
      RunAggregate kops;
      RunAggregate read_ms;
      RunAggregate write_ms;
      for (int seed = 0; seed < kSeeds; ++seed) {
        uint64_t s = 5000 + static_cast<uint64_t>(seed);
        MixedRun run = RunOne(system, queue_clients, s);
        kops.Add(run.queue_kops);
        read_ms.Add(run.read_ms);
        write_ms.Add(run.write_ms);
        // ops/s = queue throughput; p50/p99 report the regular writers' view
        // (the latency the figure is about).
        json.AddCustomRow(SystemName(system), queue_clients, s, run.queue_kops * 1000.0,
                          run.write_ms, run.write_p99_ms, 0.0, &run.stages);
      }
      table.AddRow({SystemName(system), std::to_string(queue_clients), Fmt(kops.Mean()),
                    Fmt(read_ms.Mean(), 3), Fmt(write_ms.Mean(), 3)});
    }
  }
  std::printf("=== Fig. 13: impact of the queue extension on regular clients "
              "(avg of %d runs) ===\n",
              kSeeds);
  table.Print();
  json.Write();
}

}  // namespace
}  // namespace edc

int main() {
  edc::Main();
  return 0;
}
