// Golden-output tests for edc-lint (ctest -L lint).
//
// Lints every example script and every built-in recipe extension through the
// same LintSource path the CLI uses, and compares the full formatted report
// against the checked-in expectation in tests/script/golden/. A diagnostic
// drifting (position, wording, severity, certification verdict) fails here
// first, with the actual output printed for easy golden refresh.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "edc/recipes/scripts.h"
#include "edc/script/analysis/lint.h"

namespace edc {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string GoldenPath(const std::string& name) {
  return std::string(EDC_SOURCE_DIR) + "/tests/script/golden/" + name + ".txt";
}

void ExpectMatchesGolden(const std::string& unit, const std::string& source) {
  LintResult result = LintSource(unit, source, LintVerifierConfig());
  std::string expected = ReadFile(GoldenPath(unit));
  EXPECT_EQ(result.formatted, expected)
      << "lint output drifted for " << unit << "; actual output:\n"
      << result.formatted;
}

TEST(LintGoldenTest, ExampleQueueRemove) {
  ExpectMatchesGolden("queue_remove.edc",
                      ReadFile(std::string(EDC_SOURCE_DIR) +
                               "/examples/scripts/queue_remove.edc"));
}

TEST(LintGoldenTest, ExampleAuditCount) {
  ExpectMatchesGolden("audit_count.edc",
                      ReadFile(std::string(EDC_SOURCE_DIR) +
                               "/examples/scripts/audit_count.edc"));
}

TEST(LintGoldenTest, ExampleBrokenSweeper) {
  ExpectMatchesGolden("broken_sweeper.edc",
                      ReadFile(std::string(EDC_SOURCE_DIR) +
                               "/examples/scripts/broken_sweeper.edc"));
}

// The recipe extensions (paper Figs. 5/7/9/11) must stay lint-clean and
// fully certified: they are the scripts every benchmark registers.
TEST(LintGoldenTest, RecipeCounter) {
  ExpectMatchesGolden("recipe_counter.edc", kCounterExtension);
}

TEST(LintGoldenTest, RecipeQueue) {
  ExpectMatchesGolden("recipe_queue.edc", kQueueExtension);
}

TEST(LintGoldenTest, RecipeBarrier) {
  ExpectMatchesGolden("recipe_barrier.edc", kBarrierExtension);
}

TEST(LintGoldenTest, RecipeElection) {
  ExpectMatchesGolden("recipe_election.edc", kElectionExtension);
}

TEST(LintGoldenTest, RecipeRename) {
  ExpectMatchesGolden("recipe_rename.edc", kRenameExtension);
}

// The 2PC coordinator was the one recipe the pre-interval cost pass could
// not certify (nested foreach over split() results). The abstract domain's
// amortized accounting now proves a finite bound — the golden pins the
// "1/1 handlers certified" verdict so a soundness-motivated precision loss
// shows up here before it silently pushes 2PC back onto the metered
// interpreter.
TEST(LintGoldenTest, RecipeTwoPhase) {
  ExpectMatchesGolden("recipe_two_phase.edc", kTwoPhaseExtension);
}

}  // namespace
}  // namespace edc
