// §7 use case: a highly-available message queue (restricted
// message-oriented middleware à la ActiveMQ) built directly on the
// coordination service — practical only because the queue extension makes
// dequeue a single atomic RPC. Producers pipeline work items; consumers
// drain them; nothing is lost or delivered twice even under concurrency.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "edc/harness/fixture.h"
#include "edc/recipes/recipes.h"

using namespace edc;  // NOLINT: example brevity

namespace {

constexpr size_t kProducers = 3;
constexpr size_t kConsumers = 3;
constexpr int kMessagesPerProducer = 20;

}  // namespace

int main() {
  FixtureOptions options;
  options.system = SystemKind::kExtensibleZooKeeper;
  options.num_clients = kProducers + kConsumers;
  CoordFixture fixture(options);
  fixture.Start();

  std::vector<std::unique_ptr<DistributedQueue>> queues;
  for (size_t i = 0; i < fixture.num_clients(); ++i) {
    queues.push_back(std::make_unique<DistributedQueue>(fixture.coord(i), true));
  }
  bool ready = false;
  queues[0]->Setup([&](Status s) { ready = s.ok(); });
  while (!ready) {
    fixture.Settle(Millis(100));
  }
  int attached = 1;
  for (size_t i = 1; i < queues.size(); ++i) {
    queues[i]->Attach([&](Status) { ++attached; });
  }
  while (attached < static_cast<int>(queues.size())) {
    fixture.Settle(Millis(100));
  }

  // Producers publish their messages (pipelined adds).
  int published = 0;
  for (size_t p = 0; p < kProducers; ++p) {
    for (int n = 0; n < kMessagesPerProducer; ++n) {
      std::string id = "p" + std::to_string(p) + "-" + std::to_string(n);
      queues[p]->Add(id,
                     "msg from producer " + std::to_string(p) + " #" + std::to_string(n),
                     [&](Status s) {
                       if (s.ok()) {
                         ++published;
                       }
                     });
    }
  }
  while (published < static_cast<int>(kProducers) * kMessagesPerProducer) {
    fixture.Settle(Millis(100));
  }
  std::printf("published %d messages from %zu producers\n", published, kProducers);

  // Consumers drain concurrently; each dequeue is one atomic RPC.
  std::map<std::string, int> delivered;
  int consumed = 0;
  const int total = published;
  std::function<void(size_t)> consume = [&](size_t c) {
    if (consumed >= total) {
      return;
    }
    queues[kProducers + c]->Remove([&, c](Result<std::string> msg) {
      if (msg.ok()) {
        ++delivered[*msg];
        ++consumed;
      }
      if (consumed < total) {
        consume(c);
      }
    });
  };
  for (size_t c = 0; c < kConsumers; ++c) {
    consume(c);
  }
  while (consumed < total) {
    fixture.Settle(Millis(100));
  }

  // Exactly-once check.
  bool exactly_once = static_cast<int>(delivered.size()) == total;
  for (const auto& [msg, count] : delivered) {
    exactly_once = exactly_once && count == 1;
  }
  std::printf("consumed  %d messages across %zu consumers\n", consumed, kConsumers);
  std::printf("exactly-once delivery: %s\n", exactly_once ? "YES" : "NO (BUG!)");
  return exactly_once ? 0 : 1;
}
