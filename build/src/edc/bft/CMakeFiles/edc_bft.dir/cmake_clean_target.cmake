file(REMOVE_RECURSE
  "libedc_bft.a"
)
