// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator (network jitter, client think
// time, seed-per-run averaging) draws from an explicitly seeded Rng so that a
// given (config, seed) pair replays bit-identically. xoshiro256** seeded via
// SplitMix64, per Blackman & Vigna.

#ifndef EDC_COMMON_RNG_H_
#define EDC_COMMON_RNG_H_

#include <cstdint>

namespace edc {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t UniformU64(uint64_t n) {
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    while (true) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformU64(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Derive an independent child stream (for per-node RNGs).
  Rng Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace edc

#endif  // EDC_COMMON_RNG_H_
