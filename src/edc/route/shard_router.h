// Client-side shard routing for the coordination plane (docs/sharding.md).
//
// A router implements the same abstract client surface as a plain client
// (ZkApi / DsApi) but owns one lazily created sub-client per shard of a
// ShardMap. Every operation's CoordKey picks the shard on the consistent-hash
// ring; the op is forwarded to that shard's sub-client unchanged, so recipes
// written against the API run on a sharded deployment without edits.
//
// Map refresh: sub-clients stamp the router's map version on every request.
// When a replica that has been told a newer version rejects with
// kShardMapStale, the router pulls a fresh map from its ShardMapSource,
// raises every sub-client's stamp, re-routes the op (possibly to a different,
// newly added shard) and retries — bounded by stale_retry_limit so a router
// whose source is itself behind surfaces the error instead of spinning.
//
// Cross-shard operations: ZK Multi spanning shards is rejected with
// kInvalidArgument (atomicity across shards is the TwoPhaseMulti recipe's
// job, recipes/two_phase.h); DS ops whose first template field is a wildcard
// cannot be routed — RdAll scatter-gathers across all shards, the
// single-tuple ops reject (a scattered Inp could consume one tuple per
// shard). Extension register/deregister/acknowledge fan out to every shard so
// an extension is callable wherever its trigger subtree lands.

#ifndef EDC_ROUTE_SHARD_ROUTER_H_
#define EDC_ROUTE_SHARD_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "edc/common/client_api.h"
#include "edc/common/shard_map.h"
#include "edc/ds/api.h"
#include "edc/ds/client.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"
#include "edc/zk/api.h"
#include "edc/zk/client.h"

namespace edc {

// Pull-based map discovery: invoked on a stale rejection to fetch the current
// map (in the simulator this reads the harness's authoritative copy; a real
// deployment would ask a config service). May return a map no newer than the
// router's — the retry then only proceeds if some other path already raised
// the version.
using ShardMapSource = std::function<ShardMap()>;

struct ZkShardRouterOptions {
  ZkClientOptions client;  // applied to every per-shard sub-client
  // Give up and surface kShardMapStale after this many refresh+retry rounds.
  int stale_retry_limit = 3;
  // Sub-client node id = base_id + shard_id; callers space router base ids at
  // least this far apart and keep shard ids below it.
  uint32_t id_stride = 64;
};

class ZkShardRouter : public ZkApi {
 public:
  // `map` must be non-empty. `source` may be null (stale errors surface).
  ZkShardRouter(EventLoop* loop, Network* net, NodeId base_id, ShardMap map,
                ShardMapSource source, ZkShardRouterOptions options);
  ~ZkShardRouter() override;

  ZkShardRouter(const ZkShardRouter&) = delete;
  ZkShardRouter& operator=(const ZkShardRouter&) = delete;

  // ZkApi. Connect establishes the primary (entry 0) session — other shards'
  // sessions open on first use; ops issued before their shard is connected
  // queue and drain in order once it is.
  void Connect(VoidCb done) override;
  void Close(VoidCb done) override;
  void Create(const std::string& path, const std::string& data, bool ephemeral,
              bool sequential, StringCb done) override;
  void Delete(const std::string& path, int32_t version, VoidCb done) override;
  void Exists(const std::string& path, bool watch, ExistsCb done) override;
  void GetData(const std::string& path, bool watch, NodeCb done) override;
  void SetData(const std::string& path, const std::string& data, int32_t version,
               VoidCb done) override;
  void GetChildren(const std::string& path, bool watch, ChildrenCb done) override;
  void Multi(std::vector<ZkOp> ops, VoidCb done) override;
  void CallExtension(const std::string& trigger_path, const std::string& args,
                     ExtensionCb done) override;
  void RegisterExtension(const std::string& name, const std::string& code,
                         VoidCb done) override;
  void DeregisterExtension(const std::string& name, VoidCb done) override;
  void AcknowledgeExtension(const std::string& name, VoidCb done) override;
  void SetWatchHandler(WatchCb handler) override;
  void SetSessionEventHandler(SessionEventCb handler) override;
  bool connected() const override;
  uint64_t session() const override;  // primary sub-session (entry 0)
  NodeId id() const override { return base_id_; }

  // Administrative ensemble reconfiguration of one shard (docs/reconfig.md):
  // pass-through to that shard's sub-client. The sub-client's failover list
  // refreshes from the membership push; the shard map itself (which replicas
  // make up the shard) is the map source's business, not the router's.
  void Reconfig(size_t entry_idx, const std::string& spec, VoidCb done);

  // Topology introspection (tests, harness, benches).
  size_t shard_count() const { return map_.size(); }
  uint64_t map_version() const { return map_.version(); }
  const ShardMap& map() const { return map_; }
  // The sub-client serving `shard_id`, or null if none was created yet.
  ZkClient* shard_client(uint32_t shard_id) const;
  std::vector<NodeId> sub_client_ids() const;
  int stale_refreshes() const { return stale_refreshes_; }

  // Invoked for every sub-client at creation (and immediately for existing
  // ones when set) — the conformance harness attaches per-shard observers
  // here. Runs before the sub-client's Connect.
  void SetSubClientHook(std::function<void(uint32_t shard_id, ZkClient*)> hook);
  void SetObs(Obs* obs);

 private:
  struct Sub {
    std::unique_ptr<ZkClient> client;
    bool connected = false;
    bool connecting = false;
    std::vector<std::function<void(ZkClient*)>> waiting;
  };

  Sub& EnsureSub(size_t entry_idx);
  // Runs `fn` on the sub-client for map entry `entry_idx` once its session is
  // up (immediately if it already is).
  void WhenReady(size_t entry_idx, std::function<void(ZkClient*)> fn);
  bool RefreshMap();
  // Fan `issue` out to every shard in the current map; `done` fires once with
  // the first error (or ok) after all legs returned.
  void FanOut(std::function<void(ZkClient*, VoidCb)> issue, VoidCb done);

  template <typename T>
  static bool Stale(const Result<T>& r) {
    return !r.ok() && r.status().code() == ErrorCode::kShardMapStale;
  }
  static bool Stale(const Status& s) { return s.code() == ErrorCode::kShardMapStale; }

  // Routes `issue` to the shard owning `key`; on a stale rejection, refreshes
  // the map and re-routes (the key may now land on a different shard).
  template <typename T>
  void Issue(const CoordKey& key, std::function<void(ZkClient*, ResultCb<T>)> issue,
             ResultCb<T> done, int attempt = 0) {
    uint64_t issued = map_.version();
    WhenReady(map_.IndexFor(key),
              [this, key, issue, done, attempt, issued](ZkClient* c) {
                issue(c, [this, key, issue, done, attempt, issued](Result<T> r) {
                  if (Stale(r) && attempt < options_.stale_retry_limit &&
                      (RefreshMap() || map_.version() > issued)) {
                    Issue<T>(key, issue, done, attempt + 1);
                    return;
                  }
                  if (done) {
                    done(std::move(r));
                  }
                });
              });
  }
  void IssueV(const CoordKey& key, std::function<void(ZkClient*, VoidCb)> issue,
              VoidCb done, int attempt = 0);

  EventLoop* loop_;
  Network* net_;
  NodeId base_id_;
  ShardMap map_;
  ShardMapSource source_;
  ZkShardRouterOptions options_;
  std::map<uint32_t, Sub> subs_;  // by shard id; survives map refreshes
  WatchCb watch_handler_;
  SessionEventCb session_cb_;
  std::function<void(uint32_t, ZkClient*)> sub_hook_;
  Obs* obs_ = nullptr;
  int stale_refreshes_ = 0;
};

struct DsShardRouterOptions {
  DsClientOptions client;
  int stale_retry_limit = 3;
  uint32_t id_stride = 64;
};

class DsShardRouter : public DsApi {
 public:
  DsShardRouter(EventLoop* loop, Network* net, NodeId base_id, ShardMap map,
                ShardMapSource source, DsShardRouterOptions options);
  ~DsShardRouter() override;

  DsShardRouter(const DsShardRouter&) = delete;
  DsShardRouter& operator=(const DsShardRouter&) = delete;

  // DsApi.
  void Out(DsTuple tuple, ReplyCb done) override;
  void OutLease(DsTuple tuple, ReplyCb done) override;
  void ReleaseLease(const DsTemplate& templ) override;
  void Rdp(DsTemplate templ, ReplyCb done) override;
  void Inp(DsTemplate templ, ReplyCb done) override;
  void Rd(DsTemplate templ, ReplyCb done) override;
  void In(DsTemplate templ, ReplyCb done) override;
  void Cas(DsTemplate templ, DsTuple tuple, ReplyCb done) override;
  void Replace(DsTemplate templ, DsTuple tuple, ReplyCb done) override;
  void RdAll(DsTemplate templ, ReplyCb done) override;
  void CallExtension(const std::string& trigger_path, const std::string& args,
                     ExtensionCb done) override;
  void RegisterExtension(const std::string& name, const std::string& code,
                         ReplyCb done) override;
  void DeregisterExtension(const std::string& name, ReplyCb done) override;
  void AcknowledgeExtension(const std::string& name, ReplyCb done) override;
  void EnableAutoRenewAll() override;
  NodeId id() const override { return base_id_; }

  // Routing keys (exposed for tests): a tuple routes by its first field, a
  // template by its first field when exact/prefix (wildcard = unroutable).
  static CoordKey KeyOf(const DsTuple& tuple);
  static CoordKey KeyOf(const DsTemplate& templ);

  // Topology introspection.
  size_t shard_count() const { return map_.size(); }
  uint64_t map_version() const { return map_.version(); }
  const ShardMap& map() const { return map_; }
  DsClient* shard_client(uint32_t shard_id) const;
  std::vector<NodeId> sub_client_ids() const;
  int stale_refreshes() const { return stale_refreshes_; }
  void Kill();  // simulate process death across all sub-clients

  void SetSubClientHook(std::function<void(uint32_t shard_id, DsClient*)> hook);
  void SetObs(Obs* obs);

 private:
  DsClient* EnsureSub(size_t entry_idx);
  bool RefreshMap();

  static bool Stale(const Result<DsReply>& r) {
    // A DS stale rejection is an ordered, executed reply — it arrives as a
    // successful vote whose reply code is kShardMapStale.
    return r.ok() ? r->code == ErrorCode::kShardMapStale
                  : r.status().code() == ErrorCode::kShardMapStale;
  }
  static bool Stale(const Result<ExtensionResult>& r) {
    return !r.ok() && r.status().code() == ErrorCode::kShardMapStale;
  }

  template <typename T>
  void Issue(const CoordKey& key, std::function<void(DsClient*, ResultCb<T>)> issue,
             ResultCb<T> done, int attempt = 0) {
    uint64_t issued = map_.version();
    DsClient* c = EnsureSub(map_.IndexFor(key));
    issue(c, [this, key, issue, done, attempt, issued](Result<T> r) {
      if (Stale(r) && attempt < options_.stale_retry_limit &&
          (RefreshMap() || map_.version() > issued)) {
        Issue<T>(key, issue, done, attempt + 1);
        return;
      }
      if (done) {
        done(std::move(r));
      }
    });
  }

  EventLoop* loop_;
  Network* net_;
  NodeId base_id_;
  ShardMap map_;
  ShardMapSource source_;
  DsShardRouterOptions options_;
  std::map<uint32_t, std::unique_ptr<DsClient>> subs_;  // by shard id
  std::function<void(uint32_t, DsClient*)> sub_hook_;
  Obs* obs_ = nullptr;
  bool auto_renew_all_ = false;
  int stale_refreshes_ = 0;
};

}  // namespace edc

#endif  // EDC_ROUTE_SHARD_ROUTER_H_
