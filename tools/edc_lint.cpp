// edc-lint: static-analysis driver for CoordScript extension sources.
//
// Runs the full registration-time analyzer (structure, scoping, dataflow,
// cost bounding, determinism taint) over each input file and prints every
// diagnostic, gcc-style: "file:line:col: severity: message [EDC-Xnnn]".
//
// Usage: edc-lint [--deterministic] [--max-steps N] [--werror] file.edc...
//   --deterministic  check under active-replication rules (EDS): taint from
//                    nondeterministic calls must not reach state or replies
//   --max-steps N    certification budget (default 100000)
//   --werror         treat warnings as errors for the exit code
//
// Exit status: 0 clean, 1 diagnostics at error level (or any finding with
// --werror), 2 usage/IO failure.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "edc/script/analysis/lint.h"

namespace {

int Usage() {
  std::cerr << "usage: edc-lint [--deterministic] [--max-steps N] [--werror] "
               "file.edc...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  edc::VerifierConfig config = edc::LintVerifierConfig();
  bool werror = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--deterministic") {
      config.require_deterministic = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--max-steps") {
      if (i + 1 >= argc) {
        return Usage();
      }
      config.certify_max_steps = std::atoll(argv[++i]);
      if (config.certify_max_steps <= 0) {
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    return Usage();
  }

  bool any_error = false;
  bool any_warning = false;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "edc-lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    edc::LintResult result = edc::LintSource(file, buf.str(), config);
    std::cout << result.formatted;
    any_error = any_error || result.has_errors;
    for (const edc::Diagnostic& d : result.diagnostics) {
      any_warning = any_warning || d.severity == edc::Severity::kWarning;
    }
  }
  return (any_error || (werror && any_warning)) ? 1 : 0;
}
