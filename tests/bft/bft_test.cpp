#include "edc/bft/replica.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edc/common/rng.h"
#include "edc/sim/cpu.h"
#include "edc/sim/network.h"

namespace edc {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}
std::string Str(const std::vector<uint8_t>& b) { return std::string(b.begin(), b.end()); }

// Deterministic state machine: applies "add:<n>" requests to a counter and
// replies with the post-state, so divergence between replicas is visible to
// the voting client.
class CounterReplica : public NetworkNode, public BftCallbacks {
 public:
  CounterReplica(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> members)
      : cpu(loop, 1) {
    BftConfig cfg;
    cfg.members = std::move(members);
    cfg.self = id;
    cfg.f = 1;
    replica = std::make_unique<BftReplica>(loop, net, &cpu, CostModel{}, cfg, this);
    net->Register(id, this);
  }

  void HandlePacket(Packet&& pkt) override {
    if (IsBftPacket(pkt.type)) {
      replica->HandlePacket(std::move(pkt));
    }
  }

  BftExecOutcome Execute(uint64_t seq, SimTime ts, const BftRequest& request) override {
    EXPECT_EQ(seq, last_seq + 1);
    EXPECT_GT(ts, last_ts);
    last_seq = seq;
    last_ts = ts;
    std::string body = Str(request.payload);
    if (body.rfind("add:", 0) == 0) {
      counter += std::stoll(body.substr(4));
    }
    order.push_back(body);
    replica->SendReply(request.client, request.req_id, Bytes(std::to_string(counter)));
    return BftExecOutcome{};
  }

  CpuQueue cpu;
  std::unique_ptr<BftReplica> replica;
  int64_t counter = 0;
  uint64_t last_seq = 0;
  SimTime last_ts = -1;
  std::vector<std::string> order;
};

// Client that multicasts a request to all replicas and accepts a reply once
// f+1 matching responses arrive; retransmits on timeout.
class VotingClient : public NetworkNode {
 public:
  VotingClient(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> replicas, int f)
      : loop_(loop), net_(net), id_(id), replicas_(std::move(replicas)), f_(f) {
    net->Register(id, this);
  }

  void Send(const std::string& body, std::function<void(std::string)> done) {
    uint64_t req_id = ++next_req_;
    calls_[req_id] = Call{body, std::move(done), {}};
    Transmit(req_id);
    ArmRetry(req_id);
  }

  void HandlePacket(Packet&& pkt) override {
    if (pkt.type != static_cast<uint32_t>(BftMsgType::kReply)) {
      return;
    }
    auto reply = DecodeReplyMsg(pkt.payload);
    if (!reply.ok()) {
      return;
    }
    auto it = calls_.find(reply->req_id);
    if (it == calls_.end()) {
      return;
    }
    std::string body = Str(reply->payload);
    int votes = ++it->second.votes[body];
    if (votes >= f_ + 1) {
      auto done = std::move(it->second.done);
      calls_.erase(it);
      done(body);
    }
  }

  size_t outstanding() const { return calls_.size(); }

 private:
  struct Call {
    std::string body;
    std::function<void(std::string)> done;
    std::map<std::string, int> votes;
  };

  void Transmit(uint64_t req_id) {
    auto it = calls_.find(req_id);
    if (it == calls_.end()) {
      return;
    }
    BftRequest req;
    req.client = id_;
    req.req_id = req_id;
    req.payload = Bytes(it->second.body);
    for (NodeId r : replicas_) {
      Packet pkt;
      pkt.src = id_;
      pkt.dst = r;
      pkt.type = static_cast<uint32_t>(BftMsgType::kRequest);
      pkt.payload = EncodeBftRequest(req);
      net_->Send(std::move(pkt));
    }
  }

  void ArmRetry(uint64_t req_id) {
    loop_->Schedule(Millis(800), [this, req_id]() {
      if (calls_.count(req_id) > 0) {
        Transmit(req_id);
        ArmRetry(req_id);
      }
    });
  }

  EventLoop* loop_;
  Network* net_;
  NodeId id_;
  std::vector<NodeId> replicas_;
  int f_;
  uint64_t next_req_ = 0;
  std::map<uint64_t, Call> calls_;
};

class BftClusterTest : public ::testing::Test {
 protected:
  void Boot(int n = 4) {
    net_ = std::make_unique<Network>(&loop_, Rng(3), LinkParams{});
    std::vector<NodeId> members;
    for (int i = 1; i <= n; ++i) {
      members.push_back(static_cast<NodeId>(i));
    }
    for (NodeId id : members) {
      replicas_.push_back(std::make_unique<CounterReplica>(&loop_, net_.get(), id, members));
    }
    for (auto& r : replicas_) {
      r->replica->Start();
    }
    client_ = std::make_unique<VotingClient>(&loop_, net_.get(), 100, members, 1);
  }

  void Settle(Duration d = Seconds(2)) { loop_.RunUntil(loop_.now() + d); }

  EventLoop loop_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<CounterReplica>> replicas_;
  std::unique_ptr<VotingClient> client_;
};

TEST_F(BftClusterTest, OrdersAndExecutesOnAllReplicas) {
  Boot();
  std::vector<std::string> results;
  for (int i = 0; i < 10; ++i) {
    client_->Send("add:1", [&](std::string r) { results.push_back(r); });
  }
  Settle();
  ASSERT_EQ(results.size(), 10u);
  EXPECT_EQ(results.back(), "10");
  for (auto& r : replicas_) {
    EXPECT_EQ(r->counter, 10);
    EXPECT_EQ(r->order.size(), 10u);
    EXPECT_EQ(r->order, replicas_[0]->order);  // identical total order
  }
}

TEST_F(BftClusterTest, RepliesRequireMatchingQuorum) {
  Boot();
  bool done = false;
  client_->Send("add:5", [&](std::string r) {
    done = true;
    EXPECT_EQ(r, "5");
  });
  Settle();
  EXPECT_TRUE(done);
  EXPECT_EQ(client_->outstanding(), 0u);
}

TEST_F(BftClusterTest, DuplicateRequestExecutesOnce) {
  Boot();
  std::string result;
  client_->Send("add:1", [&](std::string r) { result = r; });
  Settle(Seconds(3));  // long enough for a client retransmission cycle
  EXPECT_EQ(result, "1");
  for (auto& r : replicas_) {
    EXPECT_EQ(r->counter, 1);
  }
}

TEST_F(BftClusterTest, ToleratesOneBackupCrash) {
  Boot();
  replicas_[3]->replica->Crash();
  net_->SetNodeUp(4, false);
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    client_->Send("add:2", [&](std::string) { ++completed; });
  }
  Settle();
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(replicas_[0]->counter, 10);
}

TEST_F(BftClusterTest, PrimaryCrashTriggersViewChange) {
  Boot();
  // Replica 1 is the view-0 primary.
  replicas_[0]->replica->Crash();
  net_->SetNodeUp(1, false);
  std::vector<std::string> results;
  for (int i = 0; i < 3; ++i) {
    client_->Send("add:1", [&](std::string r) { results.push_back(r); });
  }
  Settle(Seconds(6));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results.back(), "3");
  for (size_t i = 1; i < replicas_.size(); ++i) {
    EXPECT_GT(replicas_[i]->replica->view(), 0u);
    EXPECT_EQ(replicas_[i]->counter, 3);
  }
}

TEST_F(BftClusterTest, EquivocatingPrimaryIsReplaced) {
  Boot();
  replicas_[0]->replica->SetEquivocate(true);
  std::string result;
  client_->Send("add:7", [&](std::string r) { result = r; });
  Settle(Seconds(8));
  EXPECT_EQ(result, "7");
  // The ensemble moved past the Byzantine view-0 primary.
  EXPECT_GT(replicas_[1]->replica->view(), 0u);
  // Correct replicas agree.
  EXPECT_EQ(replicas_[1]->counter, 7);
  EXPECT_EQ(replicas_[2]->counter, 7);
  EXPECT_EQ(replicas_[3]->counter, 7);
}

TEST_F(BftClusterTest, CommittedStateSurvivesViewChange) {
  Boot();
  std::vector<std::string> results;
  client_->Send("add:1", [&](std::string r) { results.push_back(r); });
  Settle();
  ASSERT_EQ(results.size(), 1u);
  replicas_[0]->replica->Crash();
  net_->SetNodeUp(1, false);
  client_->Send("add:1", [&](std::string r) { results.push_back(r); });
  Settle(Seconds(6));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[1], "2");  // earlier commit retained
}

TEST_F(BftClusterTest, SevenReplicasF2ToleratesTwoCrashes) {
  // f=2 requires 3f+1=7 replicas; rebuild with custom f.
  net_ = std::make_unique<Network>(&loop_, Rng(9), LinkParams{});
  std::vector<NodeId> members{1, 2, 3, 4, 5, 6, 7};
  std::vector<std::unique_ptr<CounterReplica>> reps;
  std::vector<std::unique_ptr<CpuQueue>> cpus;
  struct Shell : NetworkNode, BftCallbacks {
    explicit Shell(EventLoop* l) : cpu(l, 1) {}
    void HandlePacket(Packet&& pkt) override { replica->HandlePacket(std::move(pkt)); }
    BftExecOutcome Execute(uint64_t, SimTime, const BftRequest& req) override {
      ++executed;
      replica->SendReply(req.client, req.req_id, req.payload);
      return BftExecOutcome{};
    }
    CpuQueue cpu;
    std::unique_ptr<BftReplica> replica;
    int executed = 0;
  };
  std::vector<std::unique_ptr<Shell>> shells;
  for (NodeId id : members) {
    auto shell = std::make_unique<Shell>(&loop_);
    BftConfig cfg;
    cfg.members = members;
    cfg.self = id;
    cfg.f = 2;
    shell->replica =
        std::make_unique<BftReplica>(&loop_, net_.get(), &shell->cpu, CostModel{}, cfg,
                                     shell.get());
    net_->Register(id, shell.get());
    shell->replica->Start();
    shells.push_back(std::move(shell));
  }
  VotingClient client(&loop_, net_.get(), 100, members, 2);
  shells[5]->replica->Crash();
  net_->SetNodeUp(6, false);
  shells[6]->replica->Crash();
  net_->SetNodeUp(7, false);
  bool done = false;
  client.Send("ping", [&](std::string r) {
    done = true;
    EXPECT_EQ(r, "ping");
  });
  Settle();
  EXPECT_TRUE(done);
  EXPECT_EQ(shells[0]->executed, 1);
}

}  // namespace
}  // namespace edc
