// Registration-time verification of CoordScript extensions (paper §4.1.1).
//
// An extension is accepted only if it stays inside a white list: bounded
// source size and statement count, bounded nesting, no unknown handlers, no
// calls outside the allowed-function set, and — for actively-replicated
// hosts — only deterministic functions. Because verification runs once at
// registration, execution pays none of these checks (§4.2; measured by
// bench/abl_verify).

#ifndef EDC_SCRIPT_VERIFIER_H_
#define EDC_SCRIPT_VERIFIER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "edc/common/result.h"
#include "edc/script/ast.h"

namespace edc {

struct VerifierConfig {
  size_t max_source_bytes = 8192;
  size_t max_statements = 256;   // total, across all handlers
  size_t max_nesting_depth = 8;  // blocks (if/foreach) per handler
  size_t max_handlers = 8;
  size_t max_subscriptions = 8;
  // Active replication (EDS) executes extensions on every replica and
  // therefore rejects nondeterministic values that reach replicated state or
  // the reply (flow-sensitive taint analysis; see analysis/determinism.h).
  bool require_deterministic = false;
  // Full callable white list: name -> deterministic. Must include the host
  // (service API) functions the sandbox will expose.
  std::map<std::string, bool> allowed_functions;
  // Certification threshold for metering elision: a handler whose statically
  // proven worst-case step bound is <= this is marked certified. Must match
  // the ExecBudget::max_steps the binding runs with.
  int64_t certify_max_steps = 100000;
  // Host functions returning collections whose size the sandbox caps at
  // `max_collection_items` (the cost pass relies on this cap being enforced
  // at runtime). Since the interval-domain analyzer, the cap also applies to
  // every builtin that returns a list (split, append, keys, sort_by): the
  // sandbox aborts the run if a builtin materializes a longer list, which is
  // what makes `card(split(s, sep)) <= min(len(s)+1, cap)` a sound transfer
  // function.
  std::set<std::string> collection_functions;
  size_t max_collection_items = 256;
  // Ingest cap the sandbox applies to handler arguments and host-call
  // results (element-wise for lists): no admitted value exceeds this
  // ApproxSize. Seeds the abstract-interpretation layer's input string
  // lengths, so nested foreach-over-split loops get finite step bounds.
  // Must match ExecBudget::max_input_bytes at run time.
  size_t max_input_bytes = 2048;
  // Largest intermediate value the sandbox admits; the analyzer uses it as
  // the global string-length top. Must match ExecBudget::max_value_bytes.
  size_t max_value_bytes = 64 * 1024;
  // Host functions with no replicated-state effects; empty = use the
  // analyzer's default set (see DefaultReadOnlyFunctions()).
  std::set<std::string> read_only_functions;
};

// Returns the allowed-function map for the core builtins only; bindings add
// their service API on top.
std::map<std::string, bool> CoreAllowedFunctions();

// Validates `program` against `config`. kExtensionRejected on any violation;
// the message names the first offending construct and line.
Status VerifyProgram(const Program& program, const VerifierConfig& config);

// Entry-point names the extension manager dispatches to.
bool IsKnownOpHandler(const std::string& name);
bool IsKnownEventHandler(const std::string& name);
bool IsKnownOpKind(const std::string& kind);
bool IsKnownEventKind(const std::string& kind);

}  // namespace edc

#endif  // EDC_SCRIPT_VERIFIER_H_
