// Pure (stateless) builtin functions available to CoordScript programs.
//
// This is the white list of §4.1.1: basic math, boolean, string and list
// operations, all deterministic. Service-state access (create/read/update/…)
// and environment functions (now/random, EZK-only) are *host* functions
// supplied by the sandbox, not listed here.

#ifndef EDC_SCRIPT_BUILTINS_H_
#define EDC_SCRIPT_BUILTINS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/script/value.h"

namespace edc {

using BuiltinFn = std::function<Result<Value>(std::vector<Value>&)>;

struct BuiltinInfo {
  BuiltinFn fn;
  bool deterministic = true;
};

// Name -> implementation for every core builtin.
const std::map<std::string, BuiltinInfo>& CoreBuiltins();

// Convenience for error construction inside builtins and host functions.
Status ScriptError(const std::string& message);

}  // namespace edc

#endif  // EDC_SCRIPT_BUILTINS_H_
