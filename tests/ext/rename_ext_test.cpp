// §7.2 SCFS rename extension: atomic directory rename with parent-pointer
// rewrite, on both host systems.

#include <gtest/gtest.h>

#include "edc/common/strings.h"
#include "edc/ext/ds_binding.h"
#include "edc/ext/zk_binding.h"
#include "edc/recipes/scripts.h"
#include "tests/ds/ds_cluster.h"
#include "tests/zk/zk_cluster.h"

namespace edc {
namespace {

TEST(RenameExtensionTest, AtomicRenameOnEzk) {
  ZkCluster cluster;
  std::vector<std::unique_ptr<ZkExtensionManager>> managers;
  for (auto& server : cluster.servers) {
    managers.push_back(std::make_unique<ZkExtensionManager>(server.get(), ExtensionLimits{}));
  }
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  Status reg = Status(ErrorCode::kInternal);
  client->RegisterExtension("scfs_rename", kRenameExtension, [&](Status s) { reg = s; });
  cluster.Settle();
  ASSERT_TRUE(reg.ok()) << reg.ToString();

  for (const char* path : {"/scfs-rename", "/dir"}) {
    client->Create(path, "", false, false, [](Result<std::string>) {});
  }
  cluster.Settle();
  for (const char* path : {"/dir/a", "/dir/b"}) {
    client->Create(path, std::string("data-") + BaseName(path), false, false,
                   [](Result<std::string>) {});
  }
  cluster.Settle();

  Status renamed = Status(ErrorCode::kInternal);
  client->SetData("/scfs-rename", "/dir|/moved", -1, [&](Status s) { renamed = s; });
  cluster.Settle();
  ASSERT_TRUE(renamed.ok()) << renamed.ToString();

  const DataTree& tree = cluster.Leader()->tree();
  EXPECT_FALSE(tree.Exists("/dir"));
  EXPECT_FALSE(tree.Exists("/dir/a"));
  EXPECT_TRUE(tree.Exists("/moved"));
  EXPECT_EQ(tree.Get("/moved/a")->data, "data-a");
  EXPECT_EQ(tree.Get("/moved/b")->data, "data-b");

  // Target collision is rejected with no partial state.
  client->Create("/dir2", "", false, false, [](Result<std::string>) {});
  client->Create("/exists", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  Status conflict = Status::Ok();
  client->SetData("/scfs-rename", "/dir2|/exists", -1, [&](Status s) { conflict = s; });
  cluster.Settle();
  EXPECT_EQ(conflict.code(), ErrorCode::kExtensionError);
  EXPECT_TRUE(tree.Exists("/dir2"));
}

TEST(RenameExtensionTest, AtomicRenameOnEds) {
  DsCluster cluster;
  std::vector<std::unique_ptr<DsExtensionManager>> managers;
  for (auto& server : cluster.servers) {
    managers.push_back(std::make_unique<DsExtensionManager>(server.get(), ExtensionLimits{}));
  }
  cluster.Start();
  DsClient* client = cluster.AddClient();
  Status reg = Status(ErrorCode::kInternal);
  client->RegisterExtension("scfs_rename", kRenameExtension,
                            [&](Result<DsReply> r) { reg = r.status(); });
  cluster.Settle();
  ASSERT_TRUE(reg.ok()) << reg.ToString();

  client->Out(ObjectTuple("/scfs-rename", ""), [](Result<DsReply>) {});
  client->Out(ObjectTuple("/dir", "dir"), [](Result<DsReply>) {});
  client->Out(ObjectTuple("/dir/a", "data-a"), [](Result<DsReply>) {});
  cluster.Settle();

  Status renamed = Status(ErrorCode::kInternal);
  client->Replace(ObjectTemplate("/scfs-rename"), ObjectTuple("/scfs-rename", "/dir|/moved"),
                  [&](Result<DsReply> r) { renamed = r.status(); });
  cluster.Settle();
  ASSERT_TRUE(renamed.ok()) << renamed.ToString();

  const TupleSpace& space = cluster.servers[0]->space();
  EXPECT_FALSE(space.HasMatch(ObjectTemplate("/dir")));
  EXPECT_FALSE(space.HasMatch(ObjectTemplate("/dir/a")));
  EXPECT_TRUE(space.HasMatch(ObjectTemplate("/moved")));
  auto child = space.Rdp(ObjectTemplate("/moved/a"));
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(FieldToString((*child)[1]), "data-a");
  // Deterministic across replicas.
  for (auto& server : cluster.servers) {
    EXPECT_EQ(server->space().Serialize(), space.Serialize());
  }
}

}  // namespace
}  // namespace edc
