file(REMOVE_RECURSE
  "CMakeFiles/abl_fanout.dir/abl_fanout.cpp.o"
  "CMakeFiles/abl_fanout.dir/abl_fanout.cpp.o.d"
  "abl_fanout"
  "abl_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
