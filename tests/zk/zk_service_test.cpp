#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/zk/zk_cluster.h"

namespace edc {
namespace {

TEST(ZkServiceTest, ConnectAssignsSession) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  EXPECT_TRUE(client->connected());
  EXPECT_NE(client->session(), 0u);
}

TEST(ZkServiceTest, CreateThenGetData) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  Result<std::string> created(std::string{});
  client->Create("/foo", "bar", false, false, [&](Result<std::string> r) { created = r; });
  cluster.Settle();
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(*created, "/foo");

  Result<ZkClient::NodeResult> got = Status(ErrorCode::kInternal);
  client->GetData("/foo", false, [&](Result<ZkClient::NodeResult> r) { got = r; });
  cluster.Settle();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "bar");
  EXPECT_EQ(got->stat.version, 0);
}

TEST(ZkServiceTest, WritesVisibleOnAllReplicas) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* c1 = cluster.AddClient(1);
  cluster.AddClient(2);
  c1->Create("/shared", "x", false, false, [](Result<std::string>) {});
  cluster.Settle();
  for (auto& server : cluster.servers) {
    auto node = server->tree().Get("/shared");
    ASSERT_TRUE(node.ok()) << "replica " << server->id();
    EXPECT_EQ(node->data, "x");
  }
}

TEST(ZkServiceTest, ReadsServedByConnectedReplica) {
  ZkCluster cluster;
  cluster.Start();
  ZkServer* follower = cluster.Follower();
  ASSERT_NE(follower, nullptr);
  ZkClient* client = cluster.AddClient(follower->id());
  client->Create("/r", "data", false, false, [](Result<std::string>) {});
  cluster.Settle();
  int64_t leader_busy_before = cluster.Leader()->cpu().busy_ns();
  bool read_done = false;
  client->GetData("/r", false, [&](Result<ZkClient::NodeResult> r) {
    read_done = true;
    EXPECT_TRUE(r.ok());
  });
  cluster.Settle();
  EXPECT_TRUE(read_done);
  // The leader did not serve the read (heartbeat work aside, its request
  // pipeline stayed idle: busy delta is only zab heartbeat processing).
  EXPECT_LT(cluster.Leader()->cpu().busy_ns() - leader_busy_before, Millis(1));
}

TEST(ZkServiceTest, SetDataVersionConflictUnderContention) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* a = cluster.AddClient(1);
  ZkClient* b = cluster.AddClient(2);
  a->Create("/ctr", "0", false, false, [](Result<std::string>) {});
  cluster.Settle();
  // Both clients read version 0, then both try a conditional update.
  Status sa = Status(ErrorCode::kInternal);
  Status sb = Status(ErrorCode::kInternal);
  a->SetData("/ctr", "1", 0, [&](Status s) { sa = s; });
  b->SetData("/ctr", "1", 0, [&](Status s) { sb = s; });
  cluster.Settle();
  EXPECT_TRUE(sa.ok() != sb.ok());  // exactly one wins
  EXPECT_TRUE(sa.code() == ErrorCode::kBadVersion || sb.code() == ErrorCode::kBadVersion);
}

TEST(ZkServiceTest, DeleteAndNoNodeErrors) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  Status status = Status::Ok();
  client->Delete("/ghost", -1, [&](Status s) { status = s; });
  cluster.Settle();
  EXPECT_EQ(status.code(), ErrorCode::kNoNode);
  client->Create("/x", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  client->Delete("/x", -1, [&](Status s) { status = s; });
  cluster.Settle();
  EXPECT_TRUE(status.ok());
}

TEST(ZkServiceTest, SequentialCreateThroughService) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  client->Create("/q", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  std::vector<std::string> names;
  for (int i = 0; i < 3; ++i) {
    client->Create("/q/e-", "", false, true, [&](Result<std::string> r) {
      ASSERT_TRUE(r.ok());
      names.push_back(*r);
    });
  }
  cluster.Settle();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "/q/e-0000000000");
  EXPECT_EQ(names[2], "/q/e-0000000002");
}

TEST(ZkServiceTest, MultiIsAtomic) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  client->Create("/m", "", false, false, [](Result<std::string>) {});
  cluster.Settle();

  // Failing multi: second op conflicts -> nothing applies.
  std::vector<ZkOp> bad(2);
  bad[0].type = ZkOpType::kCreate;
  bad[0].path = "/m/a";
  bad[1].type = ZkOpType::kDelete;
  bad[1].path = "/m/ghost";
  Status status = Status::Ok();
  client->Multi(bad, [&](Status s) { status = s; });
  cluster.Settle();
  EXPECT_EQ(status.code(), ErrorCode::kNoNode);
  EXPECT_FALSE(cluster.Leader()->tree().Exists("/m/a"));

  // Successful multi applies everything atomically.
  std::vector<ZkOp> good(2);
  good[0].type = ZkOpType::kCreate;
  good[0].path = "/m/a";
  good[1].type = ZkOpType::kCreate;
  good[1].path = "/m/b";
  client->Multi(good, [&](Status s) { status = s; });
  cluster.Settle();
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(cluster.Leader()->tree().Exists("/m/a"));
  EXPECT_TRUE(cluster.Leader()->tree().Exists("/m/b"));
}

TEST(ZkServiceTest, DataWatchFiresOnceOnChange) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* watcher = cluster.AddClient(1);
  ZkClient* writer = cluster.AddClient(2);
  writer->Create("/w", "v0", false, false, [](Result<std::string>) {});
  cluster.Settle();

  std::vector<ZkWatchEventMsg> events;
  watcher->SetWatchHandler([&](const ZkWatchEventMsg& ev) { events.push_back(ev); });
  watcher->GetData("/w", true, [](Result<ZkClient::NodeResult>) {});
  cluster.Settle();

  writer->SetData("/w", "v1", -1, [](Status) {});
  writer->SetData("/w", "v2", -1, [](Status) {});  // second change: no watch left
  cluster.Settle();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, ZkEventType::kNodeDataChanged);
  EXPECT_EQ(events[0].path, "/w");
}

TEST(ZkServiceTest, ExistsWatchFiresOnCreation) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* watcher = cluster.AddClient(2);
  ZkClient* writer = cluster.AddClient(3);
  std::vector<ZkWatchEventMsg> events;
  watcher->SetWatchHandler([&](const ZkWatchEventMsg& ev) { events.push_back(ev); });
  bool absent = false;
  watcher->Exists("/later", true, [&](Result<ZkClient::ExistsResult> r) {
    absent = r.ok() && !r->exists;
  });
  cluster.Settle();
  EXPECT_TRUE(absent);
  writer->Create("/later", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, ZkEventType::kNodeCreated);
}

TEST(ZkServiceTest, ChildWatchFiresOnMembershipChange) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* watcher = cluster.AddClient(1);
  ZkClient* writer = cluster.AddClient(2);
  writer->Create("/dir", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  std::vector<ZkWatchEventMsg> events;
  watcher->SetWatchHandler([&](const ZkWatchEventMsg& ev) { events.push_back(ev); });
  watcher->GetChildren("/dir", true, [](Result<std::vector<std::string>>) {});
  cluster.Settle();
  writer->Create("/dir/kid", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, ZkEventType::kNodeChildrenChanged);
  EXPECT_EQ(events[0].path, "/dir");
}

TEST(ZkServiceTest, EphemeralRemovedOnSessionClose) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* owner = cluster.AddClient(1);
  ZkClient* observer = cluster.AddClient(2);
  owner->Create("/eph", "", true, false, [](Result<std::string>) {});
  cluster.Settle();
  EXPECT_TRUE(cluster.Leader()->tree().Exists("/eph"));
  std::vector<ZkWatchEventMsg> events;
  observer->SetWatchHandler([&](const ZkWatchEventMsg& ev) { events.push_back(ev); });
  observer->Exists("/eph", true, [](Result<ZkClient::ExistsResult>) {});
  cluster.Settle();
  owner->Close([](Status) {});
  cluster.Settle();
  EXPECT_FALSE(cluster.Leader()->tree().Exists("/eph"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, ZkEventType::kNodeDeleted);
}

TEST(ZkServiceTest, SessionTimeoutExpiresEphemerals) {
  ZkCluster cluster;
  cluster.Start();
  ZkClientOptions short_session;
  short_session.session_timeout = Millis(600);
  short_session.ping_interval = Millis(200);
  ZkClient* flaky = cluster.AddClient(1, short_session);
  flaky->Create("/flaky-eph", "", true, false, [](Result<std::string>) {});
  cluster.Settle();
  ASSERT_TRUE(cluster.Leader()->tree().Exists("/flaky-eph"));
  // Simulate client process death: it stops pinging.
  cluster.net->SetNodeUp(flaky->id(), false);
  cluster.Settle(Seconds(3));
  EXPECT_FALSE(cluster.Leader()->tree().Exists("/flaky-eph"));
}

TEST(ZkServiceTest, WritesViaFollowerAreForwarded) {
  ZkCluster cluster;
  cluster.Start();
  ZkServer* follower = cluster.Follower();
  ZkClient* client = cluster.AddClient(follower->id());
  Result<std::string> created = Status(ErrorCode::kInternal);
  client->Create("/via-follower", "d", false, false,
                 [&](Result<std::string> r) { created = r; });
  cluster.Settle();
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(follower->tree().Exists("/via-follower"));
}

TEST(ZkServiceTest, ClientsSurviveLeaderFailover) {
  ZkCluster cluster;
  cluster.Start();
  ZkServer* leader = cluster.Leader();
  ZkServer* follower = cluster.Follower();
  ZkClient* client = cluster.AddClient(follower->id());
  client->Create("/before", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  cluster.CrashServer(leader);
  cluster.Settle(Seconds(3));
  // Retry loop: kNotReady during election is expected, then success.
  Status status = Status(ErrorCode::kNotReady);
  for (int attempt = 0; attempt < 10 && !status.ok(); ++attempt) {
    client->Create("/after-" + std::to_string(attempt), "", false, false,
                   [&](Result<std::string> r) { status = r.status(); });
    cluster.Settle(Seconds(1));
  }
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(follower->tree().Exists("/before"));
}

TEST(ZkServiceTest, RestartedReplicaRebuildsFullState) {
  ZkCluster cluster;
  cluster.Start();
  ZkServer* follower = cluster.Follower();
  // Connect the client to a replica that stays up.
  ZkClient* client = cluster.AddClient(cluster.Leader()->id());
  for (int i = 0; i < 5; ++i) {
    client->Create("/n" + std::to_string(i), "v" + std::to_string(i), false, false,
                   [](Result<std::string>) {});
  }
  cluster.Settle();
  cluster.CrashServer(follower);
  client->Create("/while-down", "", false, false, [](Result<std::string>) {});
  cluster.Settle();
  cluster.RestartServer(follower);
  cluster.Settle(Seconds(3));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(follower->tree().Exists("/n" + std::to_string(i)));
  }
  EXPECT_TRUE(follower->tree().Exists("/while-down"));
}

TEST(ZkServiceTest, UnknownSessionRejected) {
  ZkCluster cluster;
  cluster.Start();
  ZkClient* client = cluster.AddClient();
  // Forge a request with a bogus session by reaching into the raw API after
  // disconnect semantics: simplest is a second client that never connected.
  auto rogue = std::make_unique<ZkClient>(&cluster.loop, cluster.net.get(), 999, 1,
                                          ZkClientOptions{});
  ErrorCode code = ErrorCode::kOk;
  ZkOp op;
  op.type = ZkOpType::kGetData;
  op.path = "/";
  rogue->Request(op, [&](const ZkReplyMsg& reply) { code = reply.code; });
  cluster.Settle();
  EXPECT_EQ(code, ErrorCode::kSessionExpired);
  (void)client;
}

}  // namespace
}  // namespace edc
