#include "edc/zab/node.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "edc/common/logging.h"

namespace edc {

ZabNode::ZabNode(EventLoop* loop, Network* net, CpuQueue* cpu, LogStore* log,
                 const CostModel& costs, ZabConfig config, ZabCallbacks* callbacks)
    : loop_(loop),
      net_(net),
      cpu_(cpu),
      log_(log),
      costs_(costs),
      config_(std::move(config)),
      callbacks_(callbacks) {
  assert(!config_.members.empty());
  membership_ = BootMembership();
  ResetAdmission();
  // One cumulative ack per durable log batch (instead of one per record):
  // the LogStore tells us when a publication run finished; by then every
  // per-record callback has advanced durable_zxid_.
  log_->SetBatchDurableCallback([this]() { OnLocalBatchDurable(); });
}

ZabMembership ZabNode::BootMembership() const {
  ZabMembership m;
  for (NodeId n : config_.members) {
    if (!config_.observer || n != config_.self) {
      m.voters.push_back(n);
    }
  }
  if (config_.observer) {
    m.observers.push_back(config_.self);
  }
  return m;
}

uint64_t ZabNode::last_logged() const {
  return history_.empty() ? base_zxid_ : history_.back().zxid;
}

SimTime ZabNode::PeerLastSeen(NodeId peer) const {
  auto it = peer_last_seen_.find(peer);
  return it == peer_last_seen_.end() ? 0 : it->second;
}

void ZabNode::TouchPeer(NodeId from) {
  if (role_ == Role::kLeading) {
    peer_last_seen_[from] = loop_->now();
  }
}

void ZabNode::SendTo(NodeId dst, ZabMsgType type, std::vector<uint8_t> payload) {
  Packet pkt;
  pkt.src = config_.self;
  pkt.dst = dst;
  pkt.type = static_cast<uint32_t>(type);
  pkt.payload = std::move(payload);
  net_->Send(std::move(pkt));
}

void ZabNode::BroadcastMsg(ZabMsgType type, const std::vector<uint8_t>& payload) {
  // Observers get the full stream (proposals, commits, heartbeats) — they
  // just never count toward a quorum.
  for (NodeId peer : membership_.voters) {
    if (peer != config_.self) {
      SendTo(peer, type, payload);
    }
  }
  for (NodeId peer : membership_.observers) {
    if (peer != config_.self) {
      SendTo(peer, type, payload);
    }
  }
}

uint64_t ZabNode::PeerAckWindow(NodeId peer) const {
  auto it = acked_.find(peer);
  return it == acked_.end() ? 0 : it->second;
}

void ZabNode::ArmTimer(TimerId* slot, Duration delay, std::function<void()> fn) {
  loop_->Cancel(*slot);
  uint64_t gen = generation_;
  *slot = loop_->Schedule(delay, [this, gen, fn = std::move(fn)]() {
    if (gen != generation_ || role_ == Role::kDown) {
      return;
    }
    fn();
  });
}

void ZabNode::Start() {
  ++generation_;
  history_.clear();
  membership_ = BootMembership();
  base_zxid_ = 0;
  committed_zxid_ = 0;
  // Recover the durable snapshot first (it is the log's floor): the log
  // records are exactly the suffix after its zxid. An unusable snapshot
  // (decode failure or a service-level install failure) makes the log suffix
  // meaningless — start empty and let the sync phase re-fetch via SNAP.
  if (log_->has_snapshot()) {
    uint64_t snap_zxid = log_->snapshot_zxid();
    auto snap = DecodeZabSnapshot(log_->snapshot());
    if (snap.ok() && callbacks_->InstallSnapshot(snap_zxid, snap->state)) {
      snap->membership.version = snap_zxid;
      membership_ = std::move(snap->membership);
      base_zxid_ = snap_zxid;
      committed_zxid_ = snap_zxid;
    } else {
      EDC_LOG(kInfo) << "node " << config_.self
                     << " durable snapshot unusable; discarding log suffix";
      log_->ClearSnapshot();
      log_->Truncate(0);
    }
  }
  for (const auto& record : log_->records()) {
    Decoder dec(record);
    auto p = ZabProposal::Decode(dec);
    if (p.ok()) {
      // Latest-config rule: the newest reconfig entry in the durable log
      // governs (commit status is unknowable at boot; see membership_ docs).
      if (p->is_reconfig()) {
        auto m = DecodeZabMembership(p->txn);
        if (m.ok()) {
          m->version = p->zxid;
          membership_ = std::move(*m);
        }
      }
      history_.push_back(std::move(*p));
    }
  }
  ResetAdmission();
  current_epoch_ = history_.empty() ? ZxidEpoch(base_zxid_) : ZxidEpoch(history_.back().zxid);
  delivered_count_ = 0;
  synced_ = false;
  broadcast_active_ = false;
  acked_.clear();
  newleader_acks_.clear();
  durable_zxid_ = last_logged();  // replayed records are durable by definition
  acked_zxid_ = 0;
  EnterLooking();
}

void ZabNode::SetObs(Obs* obs) {
  obs_ = obs;
  if (obs_ != nullptr) {
    m_proposals_ = obs_->metrics.GetCounter("zab.proposals");
    m_commits_ = obs_->metrics.GetCounter("zab.commits");
    m_heartbeats_ = obs_->metrics.GetCounter("zab.heartbeats");
  } else {
    m_proposals_ = m_commits_ = m_heartbeats_ = nullptr;
  }
}

void ZabNode::Crash() {
  ++generation_;
  role_ = Role::kDown;
  proposal_trace_.clear();
  log_->DropUnsynced();
  loop_->Cancel(election_timer_);
  loop_->Cancel(heartbeat_timer_);
  loop_->Cancel(leader_timeout_timer_);
}

void ZabNode::Restart() {
  assert(role_ == Role::kDown);
  Start();
}

// ---------------------------------------------------------------- election

void ZabNode::EnterLooking() {
  role_ = Role::kLooking;
  synced_ = false;
  broadcast_active_ = false;
  leader_ = 0;
  acked_zxid_ = 0;  // a future leader must hear our acks afresh
  proposal_trace_.clear();  // contexts belong to the lost leadership term
  loop_->Cancel(heartbeat_timer_);
  loop_->Cancel(leader_timeout_timer_);
  ++election_round_;
  my_vote_ = Vote{current_epoch_, last_logged(), config_.self};
  tally_.clear();
  if (is_voter()) {
    tally_[config_.self] = my_vote_;
  } else if (!membership_.voters.empty()) {
    // Observers/learners never stand for election; they vote for some actual
    // voter purely so settled nodes answer with LeaderInfo and pull them in.
    my_vote_ = Vote{0, 0, membership_.voters.front()};
  }
  EDC_LOG(kDebug) << "node " << config_.self << " LOOKING round=" << election_round_
                  << " zxid=" << my_vote_.zxid;
  SendMyVote(0);
  ArmTimer(&election_timer_, config_.election_retry, [this]() { ElectionRetryTick(); });
  // A quorum of one (single-node ensemble) decides immediately.
  CheckElectionDecision();
}

void ZabNode::ElectionRetryTick() {
  if (role_ != Role::kLooking) {
    return;
  }
  SendMyVote(0);
  CheckElectionDecision();
  if (role_ == Role::kLooking) {
    ArmTimer(&election_timer_, config_.election_retry, [this]() { ElectionRetryTick(); });
  }
}

void ZabNode::SendMyVote(NodeId dst_or_all) {
  ElectionVote vote;
  vote.election_round = election_round_;
  vote.vote_for = my_vote_.node;
  vote.vote_zxid = my_vote_.zxid;
  vote.vote_epoch = my_vote_.epoch;
  vote.from = config_.self;
  vote.from_looking = role_ == Role::kLooking;
  auto payload = EncodeElectionVote(vote);
  if (dst_or_all == 0) {
    BroadcastMsg(ZabMsgType::kElection, payload);
  } else {
    SendTo(dst_or_all, ZabMsgType::kElection, std::move(payload));
  }
}

void ZabNode::OnElectionVote(const ElectionVote& vote, NodeId from) {
  if (role_ != Role::kLooking) {
    // Settled nodes point lookers at the current leader.
    if (vote.from_looking && leader_ != 0) {
      SendTo(from, ZabMsgType::kLeaderInfo, EncodeLeaderInfo({leader_, current_epoch_}));
    }
    return;
  }
  if (vote.election_round > election_round_) {
    election_round_ = vote.election_round;
    tally_.clear();
    if (is_voter()) {
      tally_[config_.self] = my_vote_;
    }
  } else if (vote.election_round < election_round_) {
    SendMyVote(from);
    return;
  }
  // Only voters' ballots count, and only ballots for nodes this node's
  // membership recognises as voters may be adopted — a zombie running an
  // older membership can neither elect itself nor skew a live election.
  Vote candidate{vote.vote_epoch, vote.vote_zxid, vote.vote_for};
  if (is_voter() && membership_.IsVoter(candidate.node) && candidate.BetterThan(my_vote_)) {
    my_vote_ = candidate;
    tally_[config_.self] = my_vote_;
    SendMyVote(0);
  }
  if (membership_.IsVoter(from) && membership_.IsVoter(candidate.node)) {
    tally_[from] = candidate;
  }
  CheckElectionDecision();
}

void ZabNode::CheckElectionDecision() {
  if (!is_voter()) {
    return;  // observers wait for LeaderInfo/heartbeat; they never decide
  }
  size_t agree = 0;
  uint32_t max_epoch = current_epoch_;
  for (const auto& [node, vote] : tally_) {
    if (vote.node == my_vote_.node) {
      ++agree;
    }
    max_epoch = std::max(max_epoch, vote.epoch);
  }
  if (agree >= Quorum()) {
    DecideLeader(my_vote_.node, max_epoch);
  }
}

void ZabNode::DecideLeader(NodeId leader, uint32_t max_epoch_seen) {
  loop_->Cancel(election_timer_);
  if (leader == config_.self) {
    current_epoch_ = std::max(current_epoch_, max_epoch_seen) + 1;
    BecomeLeader();
  } else {
    BecomeFollower(leader, max_epoch_seen);
  }
}

void ZabNode::OnLeaderInfo(const LeaderInfo& info) {
  if (role_ != Role::kLooking) {
    return;
  }
  if (info.leader == config_.self) {
    return;  // stale; keep looking
  }
  loop_->Cancel(election_timer_);
  BecomeFollower(info.leader, info.epoch);
}

// ----------------------------------------------------------------- leading

void ZabNode::BecomeLeader() {
  role_ = Role::kLeading;
  leader_ = config_.self;
  counter_ = 0;
  broadcast_active_ = false;
  acked_.clear();
  newleader_acks_.clear();
  newleader_acks_.insert(config_.self);
  peer_last_seen_.clear();
  // Our whole durable history counts as self-acked.
  acked_[config_.self] = last_logged();
  EDC_LOG(kInfo) << "node " << config_.self << " LEADING epoch=" << current_epoch_;
  ActivateBroadcastIfQuorum();
  SendHeartbeats();
}

void ZabNode::SendHeartbeats() {
  if (role_ != Role::kLeading) {
    return;
  }
  if (m_heartbeats_ != nullptr) {
    m_heartbeats_->Increment();
  }
  BroadcastMsg(ZabMsgType::kHeartbeat, EncodeEpochMsg({current_epoch_, committed_zxid_}));
  ArmTimer(&heartbeat_timer_, config_.heartbeat_interval, [this]() { SendHeartbeats(); });
}

void ZabNode::OnFollowerInfo(NodeId from, const FollowerInfo& info) {
  if (role_ != Role::kLeading) {
    return;
  }
  TouchPeer(from);
  uint64_t my_last = last_logged();
  if (info.last_zxid > my_last) {
    SendTo(from, ZabMsgType::kTrunc, EncodeZxidMsg({current_epoch_, my_last}));
  } else if (info.last_zxid < base_zxid_) {
    // SNAP path: our log no longer holds the entries the follower is missing
    // (they were compacted away), so ship the whole state machine plus the
    // uncommitted tail.
    SnapMsg snap;
    snap.snapshot_zxid = committed_zxid_;
    snap.epoch = current_epoch_;
    snap.snapshot = EncodeZabSnapshot({membership_, callbacks_->TakeSnapshot()});
    SendTo(from, ZabMsgType::kSnap, EncodeSnapMsg(snap));
    DiffMsg tail;
    tail.committed_zxid = committed_zxid_;
    for (const ZabProposal& p : history_) {
      if (p.zxid > committed_zxid_) {
        tail.proposals.push_back(p);
      }
    }
    SendTo(from, ZabMsgType::kDiff, EncodeDiffMsg(tail));
  } else {
    DiffMsg diff;
    diff.committed_zxid = committed_zxid_;
    for (const ZabProposal& p : history_) {
      if (p.zxid > info.last_zxid) {
        diff.proposals.push_back(p);
      }
    }
    SendTo(from, ZabMsgType::kDiff, EncodeDiffMsg(diff));
  }
  SendTo(from, ZabMsgType::kNewLeader, EncodeEpochMsg({current_epoch_, committed_zxid_}));
}

void ZabNode::OnAckNewLeader(NodeId from, const FollowerInfo& info) {
  if (role_ != Role::kLeading) {
    return;
  }
  TouchPeer(from);
  if (membership_.IsVoter(from)) {
    newleader_acks_.insert(from);
  }
  // Record every learner's window (observer promotion gates on it).
  RecordAck(from, info.last_zxid);
  ActivateBroadcastIfQuorum();
  TryCommit();
}

void ZabNode::ActivateBroadcastIfQuorum() {
  if (broadcast_active_ || newleader_acks_.size() < Quorum()) {
    return;
  }
  broadcast_active_ = true;
  TryCommit();
  callbacks_->OnRoleChange(true, config_.self, current_epoch_);
}

bool ZabNode::Broadcast(std::vector<uint8_t> txn) {
  return BroadcastInternal(std::move(txn), 0);
}

Status ZabNode::ProposeReconfig(ZabMembership next) {
  if (role_ != Role::kLeading || !broadcast_active_) {
    return Status(ErrorCode::kNotReady, "not the active leader");
  }
  if (HasPendingReconfig()) {
    return Status(ErrorCode::kNotReady, "a reconfiguration is already in flight");
  }
  Status valid = ValidateReconfig(next);
  if (!valid.ok()) {
    return valid;
  }
  if (!BroadcastInternal(EncodeZabMembership(next), kReconfigFlag)) {
    return Status(ErrorCode::kNotReady, "broadcast unavailable");
  }
  return Status();
}

bool ZabNode::HasPendingReconfig() const {
  for (size_t i = delivered_count_; i < history_.size(); ++i) {
    if (history_[i].is_reconfig()) {
      return true;
    }
  }
  return false;
}

Status ZabNode::ValidateReconfig(const ZabMembership& next) const {
  if (next.voters.empty()) {
    return Status(ErrorCode::kInvalidArgument, "reconfig needs at least one voter");
  }
  for (NodeId v : next.voters) {
    if (next.IsObserver(v)) {
      return Status(ErrorCode::kInvalidArgument, "node listed as both voter and observer");
    }
  }
  // Diff against the current membership; exactly one node may change role
  // (joining, leaving, or moving between the voter and observer tiers).
  size_t changes = 0;
  NodeId new_voter = 0;
  auto role_of = [](const ZabMembership& m, NodeId id) {
    return m.IsVoter(id) ? 2 : m.IsObserver(id) ? 1 : 0;
  };
  std::set<NodeId> all;
  for (NodeId n : membership_.voters) all.insert(n);
  for (NodeId n : membership_.observers) all.insert(n);
  for (NodeId n : next.voters) all.insert(n);
  for (NodeId n : next.observers) all.insert(n);
  for (NodeId n : all) {
    int before = role_of(membership_, n);
    int after = role_of(next, n);
    if (before == after) {
      continue;
    }
    ++changes;
    if (after == 2) {
      new_voter = n;
    }
  }
  if (changes == 0) {
    return Status(ErrorCode::kInvalidArgument, "reconfig changes nothing");
  }
  if (changes > 1) {
    return Status(ErrorCode::kInvalidArgument, "one membership change at a time");
  }
  if (new_voter != 0 && new_voter != config_.self) {
    // Promotion gate: a voter that is far behind the commit frontier would
    // stall every future quorum. Let it catch up as an observer first.
    uint64_t window = PeerAckWindow(new_voter);
    if (window + config_.promote_lag < committed_zxid_) {
      return Status(ErrorCode::kNotReady, "candidate voter lags the commit frontier");
    }
  }
  return Status();
}

bool ZabNode::BroadcastInternal(std::vector<uint8_t> txn, uint8_t flags) {
  if (role_ != Role::kLeading || !broadcast_active_) {
    return false;
  }
  ZabProposal proposal;
  proposal.zxid = MakeZxid(current_epoch_, ++counter_);
  proposal.flags = flags;
  proposal.txn = std::move(txn);
  if (obs_ != nullptr) {
    m_proposals_->Increment();
    const TraceContext& ctx = obs_->tracer.current();
    if (ctx.active()) {
      proposal_trace_[proposal.zxid] = ProposalTrace{ctx, loop_->now()};
    }
  }
  // Single-pass arena encode: the kPropose frame is built once in the reused
  // arena; the wire payload is the whole frame and the durable log record is
  // its proposal suffix (epoch header stripped), so the txn bytes are
  // serialized exactly once instead of once per consumer.
  arena_.Clear();
  EncodeProposeMsgInto({current_epoch_, proposal}, arena_);
  const std::vector<uint8_t>& frame = arena_.buffer();
  std::vector<uint8_t> record(frame.begin() + kProposeHeaderBytes, frame.end());
  uint64_t zxid = proposal.zxid;
  history_.push_back(std::move(proposal));
  BroadcastMsg(ZabMsgType::kPropose, frame);
  // The proposal streams out immediately — durability of earlier proposals
  // is NOT awaited; the LogStore pipelines this append behind any fsync
  // still in flight, and the self-ack below lands whenever its batch does.
  AppendRecordDurable(zxid, std::move(record), [this, zxid]() {
    RecordAck(config_.self, zxid);
    TryCommit();
  });
  return true;
}

void ZabNode::RecordAck(NodeId from, uint64_t zxid) {
  uint64_t& window = acked_[from];
  window = std::max(window, zxid);
}

void ZabNode::OnAck(NodeId from, const ZxidMsg& msg) {
  if (role_ != Role::kLeading || msg.epoch != current_epoch_) {
    return;
  }
  TouchPeer(from);
  RecordAck(from, msg.zxid);
  TryCommit();
}

void ZabNode::OnHeartbeatAck(NodeId from, const EpochMsg& msg) {
  if (role_ != Role::kLeading || msg.epoch != current_epoch_) {
    return;
  }
  TouchPeer(from);
}

void ZabNode::TryCommit() {
  if (role_ != Role::kLeading || !broadcast_active_) {
    return;
  }
  // Advance the commit point from the cumulative ack window: commit the next
  // undelivered zxid while a quorum's windows cover it. Acks may arrive out
  // of order across pipelined batches, but the scan is strictly in history
  // order, so a gap can never commit before everything preceding it.
  while (delivered_count_ < history_.size()) {
    uint64_t zxid = history_[delivered_count_].zxid;
    // Only voters' windows count — and because a reconfig entry swaps
    // membership_ the moment it commits (below), entries behind it in the
    // same scan are already judged against the *new* quorum, exactly the
    // pipelined-backlog semantics docs/reconfig.md specifies.
    size_t votes = 0;
    for (const auto& [node, window] : acked_) {
      if (window >= zxid && membership_.IsVoter(node)) {
        ++votes;
      }
    }
    if (votes < Quorum()) {
      break;
    }
    committed_zxid_ = zxid;
    bool reconfig = history_[delivered_count_].is_reconfig();
    // Deliver + COMMIT fanout run under the proposing operation's context so
    // the reply path (and follower commit work) stays attributed to it.
    TraceContext prev;
    bool restored = false;
    if (obs_ != nullptr) {
      m_commits_->Increment();
      auto tit = proposal_trace_.find(zxid);
      if (tit != proposal_trace_.end()) {
        obs_->tracer.RecordSpanIn(tit->second.ctx, "zab.order", Stage::kOther, config_.self,
                                  tit->second.at, loop_->now());
        prev = obs_->tracer.current();
        obs_->tracer.SetCurrent(tit->second.ctx);
        proposal_trace_.erase(tit);
        restored = true;
      }
    }
    if (!reconfig) {
      callbacks_->OnDeliver(zxid, history_[delivered_count_].txn);
    }
    ++delivered_count_;
    // The COMMIT fans out to the *old* membership on purpose: a node the
    // reconfig removes still learns its removal committed and retires
    // cleanly instead of lingering as a live zombie.
    BroadcastMsg(ZabMsgType::kCommit, EncodeZxidMsg({current_epoch_, zxid}));
    if (restored) {
      obs_->tracer.SetCurrent(prev);
    }
    if (reconfig && !ActivateMembership(zxid, history_[delivered_count_ - 1].txn)) {
      return;  // this node retired (it was removed)
    }
  }
  MaybeAutoCompact();
}

// --------------------------------------------------------------- following

void ZabNode::BecomeFollower(NodeId leader, uint32_t leader_epoch) {
  role_ = Role::kFollowing;
  leader_ = leader;
  synced_ = false;
  acked_zxid_ = 0;  // this leader has heard nothing from us yet
  current_epoch_ = std::max(current_epoch_, leader_epoch);
  EDC_LOG(kDebug) << "node " << config_.self << " FOLLOWING " << leader;
  SendTo(leader, ZabMsgType::kFollowerInfo, EncodeFollowerInfo({last_logged()}));
  ResetLeaderTimeout();
}

void ZabNode::ResetLeaderTimeout() {
  ArmTimer(&leader_timeout_timer_, config_.leader_timeout, [this]() {
    EDC_LOG(kDebug) << "node " << config_.self << " leader timeout";
    EnterLooking();
  });
}

void ZabNode::OnDiff(DiffMsg&& msg) {
  if (role_ != Role::kFollowing) {
    return;
  }
  // Re-log the whole diff through one arena buffer (one growing allocation
  // per batch, record boundaries tracked by offset) instead of a fresh
  // encoder per proposal.
  // Contiguity gate (mirrors OnPropose): cumulative acks claim everything up
  // to the acked zxid, so the log may never hold a gap. A diff whose first
  // new proposal does not extend our log contiguously — e.g. the in-flight
  // DIFF behind a SNAP whose install failed — is dropped wholesale and the
  // sync handshake restarts from our true position.
  uint64_t expect_after = last_logged();
  for (const ZabProposal& p : msg.proposals) {
    if (p.zxid <= expect_after) {
      continue;
    }
    uint64_t expected = ZxidEpoch(expect_after) == ZxidEpoch(p.zxid)
                            ? expect_after + 1
                            : MakeZxid(ZxidEpoch(p.zxid), 1);
    if (p.zxid != expected || ZxidEpoch(p.zxid) < ZxidEpoch(expect_after)) {
      synced_ = false;
      SendTo(leader_, ZabMsgType::kFollowerInfo, EncodeFollowerInfo({last_logged()}));
      ResetLeaderTimeout();
      return;
    }
    expect_after = p.zxid;
  }
  arena_.Clear();
  std::vector<uint64_t> zxids;
  std::vector<size_t> offsets;
  for (ZabProposal& p : msg.proposals) {
    if (p.zxid <= last_logged()) {
      continue;
    }
    offsets.push_back(arena_.size());
    p.Encode(arena_);
    zxids.push_back(p.zxid);
    history_.push_back(std::move(p));
  }
  offsets.push_back(arena_.size());
  const std::vector<uint8_t>& buf = arena_.buffer();
  for (size_t i = 0; i < zxids.size(); ++i) {
    std::vector<uint8_t> record(buf.begin() + static_cast<ptrdiff_t>(offsets[i]),
                                buf.begin() + static_cast<ptrdiff_t>(offsets[i + 1]));
    AppendRecordDurable(zxids[i], std::move(record), nullptr);
  }
  DeliverUpTo(msg.committed_zxid);
  if (role_ != Role::kFollowing) {
    return;  // delivering a reconfig retired this node
  }
  ResetLeaderTimeout();
}

void ZabNode::OnTrunc(const ZxidMsg& msg) {
  if (role_ != Role::kFollowing) {
    return;
  }
  size_t keep = 0;
  bool dropped_reconfig = false;
  while (keep < history_.size() && history_[keep].zxid <= msg.zxid) {
    ++keep;
  }
  for (size_t i = keep; i < history_.size(); ++i) {
    dropped_reconfig |= history_[i].is_reconfig();
  }
  history_.resize(keep);
  // The durable log may contain fewer records (unsynced appends were lost in
  // a crash) but never more than history_; align conservatively.
  if (log_->records().size() > keep) {
    log_->Truncate(keep);
  }
  if (dropped_reconfig) {
    // A never-committed reconfig we had provisionally adopted (latest-config
    // rule at boot) just left the log; fall back to the durable evidence.
    RecomputeMembershipFromLog();
  }
  ResetLeaderTimeout();
}

void ZabNode::OnSnap(SnapMsg&& msg) {
  if (role_ != Role::kFollowing) {
    return;
  }
  // Install transactionally: a decode failure (corrupt/truncated image, or a
  // crash mid-install simulated above us) must leave every bit of local
  // state untouched so the handshake can simply be re-run — the leader
  // re-offers the same snapshot to our unchanged FollowerInfo (idempotent
  // re-fetch).
  auto snap = DecodeZabSnapshot(msg.snapshot);
  if (!snap.ok() || !callbacks_->InstallSnapshot(msg.snapshot_zxid, snap->state)) {
    EDC_LOG(kInfo) << "node " << config_.self << " snapshot install failed; re-requesting sync";
    synced_ = false;
    SendTo(leader_, ZabMsgType::kFollowerInfo, EncodeFollowerInfo({last_logged()}));
    ResetLeaderTimeout();
    return;
  }
  // Persist the raw wrapper blob first (models fsync + rename-into-place of
  // the snapshot file): only after this may the log prefix be forgotten, or
  // a crash between the two would leave a suffix-only log with no base.
  log_->StoreSnapshot(msg.snapshot_zxid, std::move(msg.snapshot));
  history_.clear();
  log_->Truncate(0);
  base_zxid_ = msg.snapshot_zxid;
  committed_zxid_ = msg.snapshot_zxid;
  delivered_count_ = 0;
  snap->membership.version = msg.snapshot_zxid;
  membership_ = std::move(snap->membership);
  if (membership_.Contains(config_.self)) {
    admitted_ = true;  // exclusion stays provisional: the snapshot may predate our add
  }
  ResetLeaderTimeout();
}

void ZabNode::OnNewLeader(const EpochMsg& msg) {
  if (role_ != Role::kFollowing) {
    return;
  }
  current_epoch_ = std::max(current_epoch_, msg.epoch);
  synced_ = true;
  DeliverUpTo(msg.committed_zxid);
  if (role_ != Role::kFollowing) {
    return;  // delivering a reconfig retired this node
  }
  // AckNewLeader claims everything up to last_logged(); suppress redundant
  // cumulative acks for the same prefix.
  acked_zxid_ = last_logged();
  SendTo(leader_, ZabMsgType::kAckNewLeader, EncodeFollowerInfo({last_logged()}));
  callbacks_->OnRoleChange(false, leader_, current_epoch_);
  ResetLeaderTimeout();
}

void ZabNode::OnUpToDate(const EpochMsg& msg) {
  if (role_ == Role::kFollowing && synced_) {
    DeliverUpTo(msg.committed_zxid);
    if (role_ != Role::kFollowing) {
      return;  // delivering a reconfig retired this node
    }
    ResetLeaderTimeout();
  }
}

void ZabNode::OnPropose(const ProposeFrameView& msg) {
  if (role_ != Role::kFollowing || !synced_ || msg.epoch != current_epoch_) {
    return;
  }
  uint64_t last = last_logged();
  if (msg.zxid <= last) {
    return;  // duplicate
  }
  // Cumulative acks claim everything <= the acked zxid, so the local log
  // must never hold a gap: a non-contiguous proposal means we missed
  // traffic (e.g. across a healed partition in the same epoch) — drop it
  // and restart the sync handshake instead of logging around the hole.
  uint64_t expected = ZxidEpoch(last) == msg.epoch ? last + 1 : MakeZxid(msg.epoch, 1);
  if (msg.zxid != expected) {
    synced_ = false;
    SendTo(leader_, ZabMsgType::kFollowerInfo, EncodeFollowerInfo({last}));
    ResetLeaderTimeout();
    return;
  }
  // Zero-copy append: the durable log record is the proposal frame sliced
  // straight out of the packet payload — no re-encode on the follower.
  ZabProposal p;
  p.zxid = msg.zxid;
  p.flags = msg.flags;  // a reconfig entry must stay a reconfig entry
  p.txn.assign(msg.txn, msg.txn + msg.txn_size);
  history_.push_back(std::move(p));
  std::vector<uint8_t> record(msg.record, msg.record + msg.record_size);
  uint64_t zxid = msg.zxid;
  if (config_.ack_aggregation) {
    // OnLocalBatchDurable sends one cumulative kAck per durable batch.
    AppendRecordDurable(zxid, std::move(record), nullptr);
  } else {
    AppendRecordDurable(zxid, std::move(record), [this, zxid]() {
      if (role_ == Role::kFollowing && synced_) {
        SendTo(leader_, ZabMsgType::kAck, EncodeZxidMsg({current_epoch_, zxid}));
      }
    });
  }
  ResetLeaderTimeout();
}

void ZabNode::OnLocalBatchDurable() {
  if (!config_.ack_aggregation || role_ != Role::kFollowing || !synced_) {
    return;
  }
  if (durable_zxid_ <= acked_zxid_) {
    return;
  }
  acked_zxid_ = durable_zxid_;
  SendTo(leader_, ZabMsgType::kAck, EncodeZxidMsg({current_epoch_, acked_zxid_}));
}

void ZabNode::OnCommitMsg(const ZxidMsg& msg) {
  if (role_ != Role::kFollowing || !synced_ || msg.epoch != current_epoch_) {
    return;
  }
  DeliverUpTo(msg.zxid);
  if (role_ != Role::kFollowing) {
    return;  // delivering a reconfig retired this node
  }
  ResetLeaderTimeout();
}

void ZabNode::OnHeartbeat(NodeId from, const EpochMsg& msg) {
  // A live leader's heartbeat pulls lookers back into the ensemble and
  // demotes stale leaders after a healed partition.
  if (role_ == Role::kLeading && msg.epoch > current_epoch_) {
    EnterLooking();
    return;
  }
  if (role_ == Role::kLooking) {
    loop_->Cancel(election_timer_);
    BecomeFollower(from, msg.epoch);
    return;
  }
  if (role_ == Role::kFollowing) {
    if (from != leader_) {
      // We follow the wrong node (a stale election decision); the heartbeat
      // sender is the actual leader — realign instead of refreshing a
      // timeout that would never make progress.
      if (msg.epoch >= current_epoch_) {
        BecomeFollower(from, msg.epoch);
      }
      return;
    }
    ResetLeaderTimeout();
    if (!synced_ || msg.epoch > current_epoch_) {
      // Our FollowerInfo can race the leader's own election: it is dropped
      // while the leader is still LOOKING, leaving us permanently unsynced —
      // its heartbeats keep resetting our timeout (so we never re-look) and
      // our acks carry a stale epoch (so the leader counts us dead and
      // expires every session we host). Restart the sync handshake instead.
      synced_ = false;
      current_epoch_ = std::max(current_epoch_, msg.epoch);
      SendTo(leader_, ZabMsgType::kFollowerInfo, EncodeFollowerInfo({last_logged()}));
      return;
    }
    if (msg.epoch == current_epoch_) {
      DeliverUpTo(msg.committed_zxid);
      if (role_ != Role::kFollowing) {
        return;  // delivering a reconfig retired this node
      }
    }
    // Answer so the leader can track which replicas are alive (dead-owner
    // session expiry keys off this).
    SendTo(leader_, ZabMsgType::kHeartbeatAck,
           EncodeEpochMsg({current_epoch_, committed_zxid_}));
  }
}

// ------------------------------------------------------------------ shared

void ZabNode::DeliverUpTo(uint64_t frontier) {
  while (delivered_count_ < history_.size() &&
         history_[delivered_count_].zxid <= frontier) {
    committed_zxid_ = history_[delivered_count_].zxid;
    const ZabProposal& entry = history_[delivered_count_];
    if (entry.is_reconfig()) {
      uint64_t zxid = entry.zxid;
      std::vector<uint8_t> txn = entry.txn;  // copy: activation may mutate history_
      ++delivered_count_;
      if (!ActivateMembership(zxid, txn)) {
        return;  // this node retired (it was removed)
      }
    } else {
      callbacks_->OnDeliver(entry.zxid, entry.txn);
      ++delivered_count_;
    }
  }
  committed_zxid_ = std::max(committed_zxid_, std::min(frontier, last_logged()));
  MaybeAutoCompact();
}

void ZabNode::AppendDurable(ZabProposal proposal, std::function<void()> on_durable) {
  Encoder enc;
  uint64_t zxid = proposal.zxid;
  proposal.Encode(enc);
  AppendRecordDurable(zxid, enc.Release(), std::move(on_durable));
}

void ZabNode::AppendRecordDurable(uint64_t zxid, std::vector<uint8_t> record,
                                  std::function<void()> on_durable) {
  uint64_t gen = generation_;
  log_->Append(std::move(record), [this, gen, zxid, cb = std::move(on_durable)]() {
    if (gen != generation_) {
      return;
    }
    // The LogStore publishes durability strictly in append order, so this
    // watermark is the highest *contiguously* durable zxid.
    durable_zxid_ = std::max(durable_zxid_, zxid);
    if (cb) {
      cb();
    }
  });
}

const ZabProposal* ZabNode::FindInHistory(uint64_t zxid) const {
  for (const ZabProposal& p : history_) {
    if (p.zxid == zxid) {
      return &p;
    }
  }
  return nullptr;
}

bool ZabNode::ActivateMembership(uint64_t zxid, const std::vector<uint8_t>& txn) {
  auto next = DecodeZabMembership(txn);
  if (!next.ok()) {
    return true;  // malformed entry: leave the current membership in force
  }
  bool was_admitted = admitted_;
  next->version = zxid;
  membership_ = std::move(*next);
  if (membership_.Contains(config_.self)) {
    admitted_ = true;
  }
  EDC_LOG(kInfo) << "node " << config_.self << " membership v" << zxid << " voters="
                 << membership_.voters.size() << " observers=" << membership_.observers.size();
  callbacks_->OnMembershipChange(zxid, membership_);
  // Only an admitted member retires on exclusion: a joiner catching up
  // replays configs that predate its own add and must sail past them.
  if (was_admitted && !membership_.Contains(config_.self)) {
    Retire();
    return false;
  }
  return true;
}

void ZabNode::Retire() {
  EDC_LOG(kInfo) << "node " << config_.self << " retired by reconfig";
  ++generation_;  // kills timers and pending log callbacks, like a crash...
  role_ = Role::kDown;
  leader_ = 0;
  proposal_trace_.clear();
  // ...but the durable log is NOT dropped: retirement is an orderly exit,
  // not a crash, and the history may still serve a later re-add.
  loop_->Cancel(election_timer_);
  loop_->Cancel(heartbeat_timer_);
  loop_->Cancel(leader_timeout_timer_);
}

void ZabNode::RecomputeMembershipFromLog() {
  ZabMembership m = BootMembership();
  uint64_t version = 0;
  if (log_->has_snapshot() && log_->snapshot_zxid() == base_zxid_) {
    auto snap = DecodeZabSnapshot(log_->snapshot());
    if (snap.ok()) {
      m = std::move(snap->membership);
      version = base_zxid_;
    }
  }
  for (const ZabProposal& p : history_) {
    if (p.is_reconfig()) {
      auto nm = DecodeZabMembership(p.txn);
      if (nm.ok()) {
        m = std::move(*nm);
        version = p.zxid;
      }
    }
  }
  m.version = version;
  membership_ = std::move(m);
  ResetAdmission();
}

void ZabNode::ResetAdmission() {
  // A version-0 membership is pure boot config: voters are the bootstrap
  // ensemble (admitted by construction) while an observer's self-entry is
  // provisional. Anything with version > 0 is durable evidence and governs.
  admitted_ = membership_.version > 0 ? membership_.Contains(config_.self) : !config_.observer;
}

void ZabNode::MaybeAutoCompact() {
  if (config_.snapshot_every > 0 && delivered_count_ >= config_.snapshot_every) {
    CompactLog();
  }
}

void ZabNode::CompactLog() {
  size_t drop = 0;
  while (drop < history_.size() && history_[drop].zxid <= committed_zxid_ &&
         drop < delivered_count_) {
    ++drop;
  }
  if (drop == 0) {
    return;
  }
  // Delivery tracks the commit frontier on every role, so the dropped prefix
  // is exactly the delivered prefix and the service state machine currently
  // *is* the state at history_[drop-1].zxid: pair them in a durable snapshot
  // (with the membership in force there) before forgetting the records. A
  // restart then installs the snapshot and replays only the kept suffix, and
  // a lagging peer whose zxid predates the new base gets the SNAP path.
  ZabSnapshot snap;
  snap.membership = membership_;
  snap.state = callbacks_->TakeSnapshot();
  base_zxid_ = history_[drop - 1].zxid;
  log_->StoreSnapshot(base_zxid_, EncodeZabSnapshot(snap));
  history_.erase(history_.begin(), history_.begin() + static_cast<ptrdiff_t>(drop));
  delivered_count_ -= drop;
  log_->DropHead(drop);
}

// -------------------------------------------------------------- dispatcher

void ZabNode::HandlePacket(Packet&& pkt) {
  if (role_ == Role::kDown) {
    return;
  }
  Duration cost = costs_.rpc_decode_cpu;
  switch (static_cast<ZabMsgType>(pkt.type)) {
    case ZabMsgType::kPropose:
      cost = costs_.zab_propose_cpu;
      break;
    case ZabMsgType::kAck:
      cost = costs_.zab_ack_cpu;
      break;
    case ZabMsgType::kCommit:
      cost = costs_.zab_commit_cpu;
      break;
    default:
      break;
  }
  uint64_t gen = generation_;
  auto shared = std::make_shared<Packet>(std::move(pkt));
  cpu_->Submit(cost, [this, gen, shared]() {
    if (gen != generation_ || role_ == Role::kDown) {
      return;
    }
    Process(std::move(*shared));
  });
}

void ZabNode::Process(Packet&& pkt) {
  switch (static_cast<ZabMsgType>(pkt.type)) {
    case ZabMsgType::kElection: {
      auto m = DecodeElectionVote(pkt.payload);
      if (m.ok()) {
        OnElectionVote(*m, pkt.src);
      }
      break;
    }
    case ZabMsgType::kLeaderInfo: {
      auto m = DecodeLeaderInfo(pkt.payload);
      if (m.ok()) {
        OnLeaderInfo(*m);
      }
      break;
    }
    case ZabMsgType::kFollowerInfo: {
      auto m = DecodeFollowerInfo(pkt.payload);
      if (m.ok()) {
        OnFollowerInfo(pkt.src, *m);
      }
      break;
    }
    case ZabMsgType::kDiff: {
      auto m = DecodeDiffMsg(pkt.payload);
      if (m.ok()) {
        OnDiff(std::move(*m));
      }
      break;
    }
    case ZabMsgType::kTrunc: {
      auto m = DecodeZxidMsg(pkt.payload);
      if (m.ok()) {
        OnTrunc(*m);
      }
      break;
    }
    case ZabMsgType::kSnap: {
      auto m = DecodeSnapMsg(pkt.payload);
      if (m.ok()) {
        OnSnap(std::move(*m));
      }
      break;
    }
    case ZabMsgType::kNewLeader: {
      auto m = DecodeEpochMsg(pkt.payload);
      if (m.ok()) {
        OnNewLeader(*m);
      }
      break;
    }
    case ZabMsgType::kAckNewLeader: {
      auto m = DecodeFollowerInfo(pkt.payload);
      if (m.ok()) {
        OnAckNewLeader(pkt.src, *m);
      }
      break;
    }
    case ZabMsgType::kUpToDate: {
      auto m = DecodeEpochMsg(pkt.payload);
      if (m.ok()) {
        OnUpToDate(*m);
      }
      break;
    }
    case ZabMsgType::kPropose: {
      // Zero-copy dispatch: the view borrows pkt.payload, which stays alive
      // for the whole Process call.
      auto m = DecodeProposeMsgView(pkt.payload);
      if (m.ok()) {
        OnPropose(*m);
      }
      break;
    }
    case ZabMsgType::kAck: {
      auto m = DecodeZxidMsg(pkt.payload);
      if (m.ok()) {
        OnAck(pkt.src, *m);
      }
      break;
    }
    case ZabMsgType::kCommit: {
      auto m = DecodeZxidMsg(pkt.payload);
      if (m.ok()) {
        OnCommitMsg(*m);
      }
      break;
    }
    case ZabMsgType::kHeartbeat: {
      auto m = DecodeEpochMsg(pkt.payload);
      if (m.ok()) {
        OnHeartbeat(pkt.src, *m);
      }
      break;
    }
    case ZabMsgType::kHeartbeatAck: {
      auto m = DecodeEpochMsg(pkt.payload);
      if (m.ok()) {
        OnHeartbeatAck(pkt.src, *m);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace edc
