#include "edc/common/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "edc/common/rng.h"

namespace edc {
namespace {

TEST(CodecTest, RoundTripsScalars) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutBool(true);
  enc.PutBool(false);
  enc.PutU16(0x1234);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x1122334455667788ULL);
  enc.PutI64(-42);

  Decoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU8(), 0xab);
  EXPECT_TRUE(*dec.GetBool());
  EXPECT_FALSE(*dec.GetBool());
  EXPECT_EQ(*dec.GetU16(), 0x1234);
  EXPECT_EQ(*dec.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*dec.GetU64(), 0x1122334455667788ULL);
  EXPECT_EQ(*dec.GetI64(), -42);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, RoundTripsStringsAndBytes) {
  Encoder enc;
  enc.PutString("hello");
  enc.PutString("");
  std::vector<uint8_t> blob{0, 1, 2, 255};
  enc.PutBytes(blob);

  Decoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetString(), "hello");
  EXPECT_EQ(*dec.GetString(), "");
  EXPECT_EQ(*dec.GetBytes(), blob);
  EXPECT_TRUE(dec.AtEnd());
}

class VarintParamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintParamTest, RoundTrips) {
  Encoder enc;
  enc.PutVarint(GetParam());
  Decoder dec(enc.buffer());
  auto v = dec.GetVarint();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintParamTest,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                                           (1ULL << 32) - 1, 1ULL << 32,
                                           std::numeric_limits<uint64_t>::max()));

TEST(CodecTest, VarintIsCompact) {
  Encoder enc;
  enc.PutVarint(5);
  EXPECT_EQ(enc.size(), 1u);
  Encoder enc2;
  enc2.PutVarint(300);
  EXPECT_EQ(enc2.size(), 2u);
}

TEST(CodecTest, TruncatedScalarFails) {
  Encoder enc;
  enc.PutU32(7);
  Decoder dec(enc.buffer().data(), 2);
  auto v = dec.GetU32();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.code(), ErrorCode::kDecodeError);
}

TEST(CodecTest, TruncatedStringFails) {
  Encoder enc;
  enc.PutString("hello world");
  Decoder dec(enc.buffer().data(), 4);
  EXPECT_FALSE(dec.GetString().ok());
}

TEST(CodecTest, StringLengthLyingBeyondBufferFails) {
  Encoder enc;
  enc.PutVarint(1000);  // claims 1000 bytes follow
  enc.PutU8('x');
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.GetString().ok());
}

TEST(CodecTest, MalformedVarintFails) {
  // Eleven continuation bytes exceed the 64-bit shift budget.
  std::vector<uint8_t> bad(11, 0x80);
  Decoder dec(bad);
  EXPECT_FALSE(dec.GetVarint().ok());
}

TEST(CodecTest, EmptyBufferFailsEverything) {
  std::vector<uint8_t> empty;
  Decoder dec(empty);
  EXPECT_FALSE(dec.GetU8().ok());
  EXPECT_FALSE(dec.GetU64().ok());
  EXPECT_FALSE(dec.GetVarint().ok());
  EXPECT_FALSE(dec.GetString().ok());
}

TEST(CodecTest, FuzzRoundTripRandomSequences) {
  Rng rng(12345);
  for (int iter = 0; iter < 200; ++iter) {
    Encoder enc;
    std::vector<uint64_t> ints;
    std::vector<std::string> strs;
    int n = static_cast<int>(rng.UniformU64(20));
    for (int i = 0; i < n; ++i) {
      uint64_t v = rng.NextU64() >> rng.UniformU64(64);
      ints.push_back(v);
      enc.PutVarint(v);
      std::string s;
      size_t len = rng.UniformU64(50);
      for (size_t j = 0; j < len; ++j) {
        s += static_cast<char>(rng.UniformU64(256));
      }
      strs.push_back(s);
      enc.PutString(s);
    }
    Decoder dec(enc.buffer());
    for (int i = 0; i < n; ++i) {
      auto v = dec.GetVarint();
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, ints[static_cast<size_t>(i)]);
      auto s = dec.GetString();
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(*s, strs[static_cast<size_t>(i)]);
    }
    EXPECT_TRUE(dec.AtEnd());
  }
}

}  // namespace
}  // namespace edc
