#include "edc/script/vm/vm.h"

#include <cstdint>
#include <utility>

#include "edc/script/builtins.h"

namespace edc {

namespace {

Status RuntimeError(int line, const std::string& what) {
  return Status(ErrorCode::kExtensionError,
                "runtime error at line " + std::to_string(line) + ": " + what);
}

Status LimitError(int line, const std::string& what) {
  return Status(ErrorCode::kExtensionLimit,
                what + " at line " + std::to_string(line));
}

// Cached foreach iteration state. The snapshot Value keeps the shared list
// alive even if the loop body rebinds the source variable (lists are
// immutable, so iterating the snapshot is always safe).
struct IterSlot {
  Value snapshot;
  const ValueList* items = nullptr;
  size_t next = 0;
};

}  // namespace

Result<Value> Vm::Invoke(const std::string& name, std::vector<Value> args) {
  const CompiledHandler* handler = module_->Find(name);
  if (handler == nullptr) {
    return Status(ErrorCode::kExtensionError, "no handler '" + name + "'");
  }
  return Run(*handler, std::move(args));
}

Result<Value> Vm::Run(const CompiledHandler& handler, std::vector<Value> args) {
  std::vector<Value> regs(handler.num_registers);
  for (size_t i = 0; i < handler.num_params; ++i) {
    regs[i] = i < args.size() ? std::move(args[i]) : Value();
  }
  std::vector<IterSlot> iters(handler.num_iter_slots);
  const Instruction* code = handler.code.data();

  for (uint32_t pc = 0;; ++pc) {
    const Instruction& insn = code[pc];
    stats_.steps_used += insn.steps;
    if (budget_.metered && stats_.steps_used > budget_.max_steps) {
      // Unreachable for certified handlers (proven bound <= max_steps);
      // kept as defense in depth.
      return LimitError(insn.line, "step budget exceeded");
    }
    switch (insn.op) {
      case OpCode::kLoadConst:
        regs[insn.dst] = handler.constants[insn.aux];
        break;
      case OpCode::kLoadConstChecked: {
        const Value& v = handler.constants[insn.aux];
        if (v.ApproxSize() > budget_.max_value_bytes) {
          return LimitError(insn.line, "value size limit exceeded");
        }
        regs[insn.dst] = v;
        break;
      }
      case OpCode::kMove: {
        Value v = regs[insn.a];
        regs[insn.dst] = std::move(v);
        break;
      }
      case OpCode::kNeg: {
        const Value& v = regs[insn.a];
        if (!v.is_int()) {
          return RuntimeError(insn.line, "unary '-' on non-int");
        }
        regs[insn.dst] =
            Value(static_cast<int64_t>(0 - static_cast<uint64_t>(v.AsInt())));
        break;
      }
      case OpCode::kNot:
        regs[insn.dst] = Value(!regs[insn.a].Truthy());
        break;
      case OpCode::kAdd: {
        const Value& a = regs[insn.a];
        const Value& b = regs[insn.b];
        if (a.is_str() || b.is_str()) {
          Value out(a.ToString() + b.ToString());
          if (out.ApproxSize() > budget_.max_value_bytes) {
            return LimitError(insn.line, "value size limit exceeded");
          }
          regs[insn.dst] = std::move(out);
          break;
        }
        if (a.is_int() && b.is_int()) {
          regs[insn.dst] =
              Value(static_cast<int64_t>(static_cast<uint64_t>(a.AsInt()) +
                                         static_cast<uint64_t>(b.AsInt())));
          break;
        }
        return RuntimeError(insn.line, "'+' needs int+int or str operands");
      }
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kMod: {
        const Value& a = regs[insn.a];
        const Value& b = regs[insn.b];
        if (!a.is_int() || !b.is_int()) {
          return RuntimeError(insn.line, "arithmetic on non-int operands");
        }
        uint64_t ua = static_cast<uint64_t>(a.AsInt());
        uint64_t ub = static_cast<uint64_t>(b.AsInt());
        if (insn.op == OpCode::kSub) {
          regs[insn.dst] = Value(static_cast<int64_t>(ua - ub));
          break;
        }
        if (insn.op == OpCode::kMul) {
          regs[insn.dst] = Value(static_cast<int64_t>(ua * ub));
          break;
        }
        if (insn.op == OpCode::kDiv) {
          if (b.AsInt() == 0) {
            return RuntimeError(insn.line, "division by zero");
          }
          if (a.AsInt() == INT64_MIN && b.AsInt() == -1) {
            return RuntimeError(insn.line, "division overflow");
          }
          regs[insn.dst] = Value(a.AsInt() / b.AsInt());
          break;
        }
        if (b.AsInt() == 0) {
          return RuntimeError(insn.line, "modulo by zero");
        }
        if (a.AsInt() == INT64_MIN && b.AsInt() == -1) {
          return RuntimeError(insn.line, "modulo overflow");
        }
        regs[insn.dst] = Value(a.AsInt() % b.AsInt());
        break;
      }
      case OpCode::kEq:
        regs[insn.dst] = Value(regs[insn.a].Equals(regs[insn.b]));
        break;
      case OpCode::kNe:
        regs[insn.dst] = Value(!regs[insn.a].Equals(regs[insn.b]));
        break;
      case OpCode::kLt:
      case OpCode::kLe:
      case OpCode::kGt:
      case OpCode::kGe: {
        const Value& a = regs[insn.a];
        const Value& b = regs[insn.b];
        int cmp = 0;
        if (a.is_int() && b.is_int()) {
          cmp = a.AsInt() < b.AsInt() ? -1 : (a.AsInt() > b.AsInt() ? 1 : 0);
        } else if (a.is_str() && b.is_str()) {
          int c = a.AsStr().compare(b.AsStr());
          cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
        } else {
          return RuntimeError(insn.line, "ordering comparison on mixed types");
        }
        bool out = insn.op == OpCode::kLt   ? cmp < 0
                   : insn.op == OpCode::kLe ? cmp <= 0
                   : insn.op == OpCode::kGt ? cmp > 0
                                            : cmp >= 0;
        regs[insn.dst] = Value(out);
        break;
      }
      case OpCode::kTruthy:
        regs[insn.dst] = Value(regs[insn.a].Truthy());
        break;
      case OpCode::kJump:
        pc = insn.aux - 1;  // ++pc lands on the target
        break;
      case OpCode::kJumpIfFalse:
        if (!regs[insn.a].Truthy()) {
          pc = insn.aux - 1;
        }
        break;
      case OpCode::kJumpIfTrue:
        if (regs[insn.a].Truthy()) {
          pc = insn.aux - 1;
        }
        break;
      case OpCode::kIndex: {
        const Value& base = regs[insn.a];
        const Value& idx = regs[insn.b];
        if (base.is_list()) {
          if (!idx.is_int()) {
            return RuntimeError(insn.line, "list index must be int");
          }
          int64_t i = idx.AsInt();
          const ValueList& list = base.AsList();
          if (i < 0 || static_cast<size_t>(i) >= list.size()) {
            return RuntimeError(insn.line, "list index out of range");
          }
          Value out = list[static_cast<size_t>(i)];
          regs[insn.dst] = std::move(out);
          break;
        }
        if (base.is_map()) {
          if (!idx.is_str()) {
            return RuntimeError(insn.line, "map key must be str");
          }
          auto it = base.AsMap().find(idx.AsStr());
          Value out = it == base.AsMap().end() ? Value() : it->second;
          regs[insn.dst] = std::move(out);
          break;
        }
        if (base.is_str()) {
          if (!idx.is_int()) {
            return RuntimeError(insn.line, "string index must be int");
          }
          int64_t i = idx.AsInt();
          const std::string& s = base.AsStr();
          if (i < 0 || static_cast<size_t>(i) >= s.size()) {
            return RuntimeError(insn.line, "string index out of range");
          }
          regs[insn.dst] = Value(std::string(1, s[static_cast<size_t>(i)]));
          break;
        }
        return RuntimeError(insn.line, "indexing non-collection value");
      }
      case OpCode::kMakeList: {
        ValueList items;
        items.reserve(insn.b);
        for (uint16_t i = 0; i < insn.b; ++i) {
          items.push_back(std::move(regs[insn.a + i]));
        }
        Value out = Value::List(std::move(items));
        if (out.ApproxSize() > budget_.max_value_bytes) {
          return LimitError(insn.line, "value size limit exceeded");
        }
        regs[insn.dst] = std::move(out);
        break;
      }
      case OpCode::kCallBuiltin:
      case OpCode::kCallHost: {
        std::vector<Value> call_args;
        call_args.reserve(insn.b);
        for (uint16_t i = 0; i < insn.b; ++i) {
          call_args.push_back(std::move(regs[insn.a + i]));
        }
        Result<Value> out = [&]() -> Result<Value> {
          if (insn.op == OpCode::kCallBuiltin) {
            return BuiltinsByIndex()[insn.aux]->fn(call_args);
          }
          const std::string& fn = handler.host_names[insn.aux];
          if (host_ == nullptr || !host_->HasFunction(fn)) {
            return RuntimeError(insn.line, "unknown function '" + fn + "'");
          }
          return host_->Call(fn, call_args);
        }();
        if (!out.ok()) {
          return out;
        }
        // Builtin and host results alike obey max_value_bytes, mirroring
        // the interpreter's EvalCall.
        if (out->ApproxSize() > budget_.max_value_bytes) {
          return LimitError(insn.line, "value size limit exceeded");
        }
        if (insn.op == OpCode::kCallBuiltin) {
          // Builtin list results obey the collection cap — the runtime
          // contract behind the analyzer's split()/append cardinality
          // transfer functions (analysis/domains.cpp).
          if (out->is_list() && out->AsList().size() > budget_.max_collection_items) {
            return LimitError(insn.line, "collection size limit exceeded");
          }
        } else {
          // Host results additionally obey the element-wise ingest cap
          // (max_input_bytes), mirroring Interpreter::CheckHostResult.
          if (out->is_list()) {
            for (const Value& item : out->AsList()) {
              if (item.ApproxSize() > budget_.max_input_bytes) {
                return LimitError(insn.line, "value size limit exceeded");
              }
            }
          } else if (out->ApproxSize() > budget_.max_input_bytes) {
            return LimitError(insn.line, "value size limit exceeded");
          }
        }
        regs[insn.dst] = std::move(*out);
        break;
      }
      case OpCode::kIterInit:
      case OpCode::kIterInitList: {
        if (insn.op == OpCode::kIterInit && !regs[insn.a].is_list()) {
          return RuntimeError(insn.line, "foreach over non-list value");
        }
        IterSlot& slot = iters[insn.b];
        slot.snapshot = regs[insn.a];
        slot.items = &slot.snapshot.AsList();
        slot.next = 0;
        break;
      }
      case OpCode::kIterNext: {
        IterSlot& slot = iters[insn.b];
        if (slot.next < slot.items->size()) {
          Value out = (*slot.items)[slot.next++];
          regs[insn.dst] = std::move(out);
        } else {
          pc = insn.aux - 1;
        }
        break;
      }
      case OpCode::kReturn:
        return std::move(regs[insn.a]);
      case OpCode::kReturnNull:
        return Value();
    }
  }
}

}  // namespace edc
