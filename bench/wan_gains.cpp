// Reproduces the §6.3 discussion: with clients reaching the service over
// wide-area links, remote calls (and especially retries) get much more
// expensive, so the extension-based recipes' advantage grows beyond the LAN
// numbers.

#include "bench/common.h"

namespace edc {
namespace {

constexpr Duration kWarmup = Seconds(1);
constexpr Duration kMeasure = Seconds(4);
constexpr size_t kClients = 20;

RunStats CounterRun(SystemKind system, const LinkParams& link, uint64_t seed) {
  FixtureOptions options;
  options.system = system;
  options.num_clients = kClients;
  options.seed = seed;
  options.link = link;
  options.observability = true;
  CoordFixture fixture(options);
  fixture.Start();
  auto counters = SetupRecipe<SharedCounter>(fixture, IsExtensible(system));
  ClosedLoop driver(&fixture, [&](size_t i, std::function<void()> done) {
    counters[i]->Increment([done = std::move(done)](Result<int64_t>) { done(); });
  });
  return driver.Run(kWarmup, kMeasure);
}

void Main() {
  LinkParams lan;  // defaults: 100us
  LinkParams wan;
  wan.latency = Millis(20);
  wan.jitter = Millis(2);

  BenchTable table({"network", "system", "counter_ops_per_s"});
  BenchJson json("wan_gains");
  double thr[2][2] = {};
  const char* nets[2] = {"LAN(0.1ms)", "WAN(20ms)"};
  LinkParams links[2] = {lan, wan};
  SystemKind systems[2] = {SystemKind::kZooKeeper, SystemKind::kExtensibleZooKeeper};
  for (int n = 0; n < 2; ++n) {
    for (int s = 0; s < 2; ++s) {
      uint64_t seed = 7000 + static_cast<uint64_t>(n);
      RunStats stats = CounterRun(systems[s], links[n], seed);
      thr[n][s] = stats.ThroughputOpsPerSec();
      table.AddRow({nets[n], SystemName(systems[s]), Fmt(thr[n][s], 1)});
      // Row label carries the network so LAN and WAN rows stay apart.
      json.AddCustomRow(std::string(nets[n]) + "/" + SystemName(systems[s]), kClients,
                        seed, thr[n][s],
                        static_cast<double>(stats.latency.Percentile(0.5)) / 1e6,
                        static_cast<double>(stats.latency.Percentile(0.99)) / 1e6,
                        stats.KbPerOp(), &stats.stages);
    }
  }
  std::printf("=== §6.3: extension gains on wide-area links (shared counter, "
              "%zu clients) ===\n",
              kClients);
  table.Print();
  json.Write();
  std::printf("\nshape check: EZK/ZooKeeper speedup LAN = %.1fx, WAN = %.1fx "
              "(paper: WAN gain exceeds LAN gain)\n",
              thr[0][1] / thr[0][0], thr[1][1] / thr[1][0]);
}

}  // namespace
}  // namespace edc

int main() {
  edc::Main();
  return 0;
}
