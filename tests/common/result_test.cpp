#include "edc/common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace edc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s(ErrorCode::kBadVersion, "expected 3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kBadVersion);
  EXPECT_EQ(s.ToString(), "BAD_VERSION: expected 3");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kDecodeError); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status(ErrorCode::kNoNode, "missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNoNode);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, ImplicitFromErrorCode) {
  Result<std::string> r = ErrorCode::kTimeout;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
}

TEST(ResultTest, ValueOr) {
  Result<int> ok(7);
  Result<int> err(ErrorCode::kInternal);
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(err.value_or(0), 0);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r.value());
  EXPECT_EQ(*taken, 5);
}

}  // namespace
}  // namespace edc
