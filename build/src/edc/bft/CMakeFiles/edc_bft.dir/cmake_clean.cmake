file(REMOVE_RECURSE
  "CMakeFiles/edc_bft.dir/messages.cpp.o"
  "CMakeFiles/edc_bft.dir/messages.cpp.o.d"
  "CMakeFiles/edc_bft.dir/replica.cpp.o"
  "CMakeFiles/edc_bft.dir/replica.cpp.o.d"
  "libedc_bft.a"
  "libedc_bft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_bft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
