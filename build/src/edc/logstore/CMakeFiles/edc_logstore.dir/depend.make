# Empty dependencies file for edc_logstore.
# This may be replaced when dependencies are built.
