#include "edc/zk/txn.h"

namespace edc {

void ZkTxnOp::Encode(Encoder& enc) const {
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutString(path);
  enc.PutString(data);
  enc.PutU64(ephemeral_owner);
  enc.PutU64(session);
  enc.PutU32(session_owner);
  enc.PutU64(req_id);
}

Result<ZkTxnOp> ZkTxnOp::Decode(Decoder& dec) {
  ZkTxnOp op;
  auto type = dec.GetU8();
  if (!type.ok() || *type > static_cast<uint8_t>(ZkTxnOpType::kBlock)) {
    return ErrorCode::kDecodeError;
  }
  op.type = static_cast<ZkTxnOpType>(*type);
  auto path = dec.GetString();
  auto data = dec.GetString();
  auto owner = dec.GetU64();
  auto session = dec.GetU64();
  auto session_owner = dec.GetU32();
  auto req_id = dec.GetU64();
  if (!path.ok() || !data.ok() || !owner.ok() || !session.ok() || !session_owner.ok() ||
      !req_id.ok()) {
    return ErrorCode::kDecodeError;
  }
  op.path = std::move(*path);
  op.data = std::move(*data);
  op.ephemeral_owner = *owner;
  op.session = *session;
  op.session_owner = *session_owner;
  op.req_id = *req_id;
  return op;
}

std::vector<uint8_t> ZkTxn::Encode() const {
  Encoder enc;
  enc.PutU64(session);
  enc.PutU64(req_id);
  enc.PutI64(time);
  enc.PutBool(has_result);
  enc.PutString(result);
  enc.PutU8(ext_depth);
  enc.PutVarint(ops.size());
  for (const ZkTxnOp& op : ops) {
    op.Encode(enc);
  }
  return enc.Release();
}

Result<ZkTxn> ZkTxn::Decode(const std::vector<uint8_t>& buf) {
  Decoder dec(buf);
  ZkTxn txn;
  auto session = dec.GetU64();
  auto req_id = dec.GetU64();
  auto time = dec.GetI64();
  auto has_result = dec.GetBool();
  auto result = dec.GetString();
  auto depth = dec.GetU8();
  auto n = dec.GetVarint();
  if (!session.ok() || !req_id.ok() || !time.ok() || !has_result.ok() || !result.ok() ||
      !depth.ok() || !n.ok()) {
    return ErrorCode::kDecodeError;
  }
  txn.session = *session;
  txn.req_id = *req_id;
  txn.time = *time;
  txn.has_result = *has_result;
  txn.result = std::move(*result);
  txn.ext_depth = *depth;
  for (uint64_t i = 0; i < *n; ++i) {
    auto op = ZkTxnOp::Decode(dec);
    if (!op.ok()) {
      return op.status();
    }
    txn.ops.push_back(std::move(*op));
  }
  return txn;
}

}  // namespace edc
