#include "edc/script/lexer.h"

#include <cctype>
#include <string>
#include <unordered_map>

namespace edc {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kInt: return "integer";
    case TokenKind::kString: return "string";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kExtension: return "'extension'";
    case TokenKind::kOn: return "'on'";
    case TokenKind::kOp: return "'op'";
    case TokenKind::kEvent: return "'event'";
    case TokenKind::kFn: return "'fn'";
    case TokenKind::kLet: return "'let'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kForeach: return "'foreach'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kNull: return "'null'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, TokenKind>{
      {"extension", TokenKind::kExtension}, {"on", TokenKind::kOn},
      {"op", TokenKind::kOp},               {"event", TokenKind::kEvent},
      {"fn", TokenKind::kFn},               {"let", TokenKind::kLet},
      {"if", TokenKind::kIf},               {"else", TokenKind::kElse},
      {"foreach", TokenKind::kForeach},     {"in", TokenKind::kIn},
      {"return", TokenKind::kReturn},       {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},         {"null", TokenKind::kNull},
  };
  return *kMap;
}

Status LexError(int line, const std::string& what) {
  return Status(ErrorCode::kDecodeError, "lex error at line " + std::to_string(line) + ": " + what);
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;  // offset of the first character of the current line

  auto col_at = [&](size_t pos) { return static_cast<int>(pos - line_start) + 1; };
  auto push = [&](TokenKind kind) { out.push_back(Token{kind, "", 0, line, col_at(i)}); };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
        ++i;
      }
      Token t;
      t.kind = TokenKind::kInt;
      t.line = line;
      t.col = col_at(start);
      t.int_value = 0;
      for (size_t j = start; j < i; ++j) {
        int64_t digit = src[j] - '0';
        if (t.int_value > (INT64_MAX - digit) / 10) {
          return LexError(line, "integer literal overflow");
        }
        t.int_value = t.int_value * 10 + digit;
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_')) {
        ++i;
      }
      std::string word(src.substr(start, i - start));
      auto kw = Keywords().find(word);
      if (kw != Keywords().end()) {
        push(kw->second);
      } else {
        out.push_back(Token{TokenKind::kIdent, std::move(word), 0, line, col_at(start)});
      }
      continue;
    }
    if (c == '"') {
      size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < src.size()) {
        char d = src[i];
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\n') {
          return LexError(line, "newline in string literal");
        }
        if (d == '\\') {
          if (i + 1 >= src.size()) {
            return LexError(line, "dangling escape");
          }
          char e = src[i + 1];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default:
              return LexError(line, std::string("unknown escape '\\") + e + "'");
          }
          i += 2;
          continue;
        }
        text += d;
        ++i;
      }
      if (!closed) {
        return LexError(line, "unterminated string literal");
      }
      out.push_back(Token{TokenKind::kString, std::move(text), 0, line, col_at(start)});
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char second, TokenKind kind) -> bool {
      if (i + 1 < src.size() && src[i + 1] == second) {
        push(kind);
        i += 2;
        return true;
      }
      return false;
    };
    switch (c) {
      case '{': push(TokenKind::kLBrace); ++i; break;
      case '}': push(TokenKind::kRBrace); ++i; break;
      case '(': push(TokenKind::kLParen); ++i; break;
      case ')': push(TokenKind::kRParen); ++i; break;
      case '[': push(TokenKind::kLBracket); ++i; break;
      case ']': push(TokenKind::kRBracket); ++i; break;
      case ',': push(TokenKind::kComma); ++i; break;
      case ';': push(TokenKind::kSemicolon); ++i; break;
      case '+': push(TokenKind::kPlus); ++i; break;
      case '-': push(TokenKind::kMinus); ++i; break;
      case '*': push(TokenKind::kStar); ++i; break;
      case '/': push(TokenKind::kSlash); ++i; break;
      case '%': push(TokenKind::kPercent); ++i; break;
      case '=':
        if (!two('=', TokenKind::kEq)) {
          push(TokenKind::kAssign);
          ++i;
        }
        break;
      case '!':
        if (!two('=', TokenKind::kNe)) {
          push(TokenKind::kBang);
          ++i;
        }
        break;
      case '<':
        if (!two('=', TokenKind::kLe)) {
          push(TokenKind::kLt);
          ++i;
        }
        break;
      case '>':
        if (!two('=', TokenKind::kGe)) {
          push(TokenKind::kGt);
          ++i;
        }
        break;
      case '&':
        if (!two('&', TokenKind::kAndAnd)) {
          return LexError(line, "single '&'");
        }
        break;
      case '|':
        if (!two('|', TokenKind::kOrOr)) {
          return LexError(line, "single '|'");
        }
        break;
      default:
        return LexError(line, std::string("unexpected character '") + c + "'");
    }
  }
  out.push_back(Token{TokenKind::kEof, "", 0, line, col_at(i)});
  return out;
}

}  // namespace edc
