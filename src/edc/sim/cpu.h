// Per-host CPU model.
//
// Each simulated server owns a CpuQueue: submitted work items occupy a core
// for their service cost and complete in submission order per core. This is
// what produces realistic saturation — when offered load exceeds capacity the
// queue grows and latency climbs, exactly the regime the paper's contention
// experiments (Fig. 6/8) exercise.

#ifndef EDC_SIM_CPU_H_
#define EDC_SIM_CPU_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "edc/obs/obs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/time.h"

namespace edc {

class CpuQueue {
 public:
  // `cores` parallel workers; work is dispatched to the earliest-free core
  // (single run queue, like a work-conserving scheduler).
  CpuQueue(EventLoop* loop, int cores);

  CpuQueue(const CpuQueue&) = delete;
  CpuQueue& operator=(const CpuQueue&) = delete;

  // Runs `done` once `cost` ns of CPU time have been spent, after all
  // previously submitted work on the chosen core.
  void Submit(Duration cost, std::function<void()> done);

  // Total CPU-ns consumed so far (across cores).
  int64_t busy_ns() const { return busy_ns_; }

  // Instantaneous backlog estimate: ns until a newly submitted zero-cost item
  // would run.
  Duration QueueDelay() const;

  int cores() const { return static_cast<int>(free_at_.size()); }

  // Observability (nullable): queue-wait + run spans under the submitter's
  // trace context (both endpoints are known at Submit time), a queue-wait
  // histogram, and a cpu-ns counter. `track` is the owning node's id.
  void SetObs(Obs* obs, uint32_t track);

 private:
  EventLoop* loop_;
  std::vector<SimTime> free_at_;
  int64_t busy_ns_ = 0;
  Obs* obs_ = nullptr;
  uint32_t track_ = 0;
  Recorder* m_queue_wait_ = nullptr;
  Counter* m_busy_ = nullptr;
  Counter* m_submits_ = nullptr;
};

}  // namespace edc

#endif  // EDC_SIM_CPU_H_
