#include "edc/sim/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "edc/common/rng.h"

namespace edc {
namespace {

class Sink : public NetworkNode {
 public:
  void HandlePacket(Packet&& pkt) override { received.push_back(std::move(pkt)); }
  std::vector<Packet> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&loop_, Rng(1), LinkParams{}) {
    net_.Register(1, &a_);
    net_.Register(2, &b_);
  }

  Packet Make(NodeId src, NodeId dst, uint32_t type, size_t bytes = 10) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.type = type;
    p.payload.assign(bytes, 0x7f);
    return p;
  }

  EventLoop loop_;
  Network net_;
  Sink a_;
  Sink b_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  net_.Send(Make(1, 2, 7));
  loop_.Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].type, 7u);
  EXPECT_GE(loop_.now(), Micros(100));  // at least base latency
}

TEST_F(NetworkTest, FifoPerPairEvenWithJitter) {
  for (uint32_t i = 0; i < 50; ++i) {
    net_.Send(Make(1, 2, i));
  }
  loop_.Run();
  ASSERT_EQ(b_.received.size(), 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(b_.received[i].type, i);
  }
}

TEST_F(NetworkTest, CountsBytesIncludingFrameOverhead) {
  net_.Send(Make(1, 2, 0, 100));
  loop_.Run();
  EXPECT_EQ(net_.StatsFor(1).bytes_sent, static_cast<int64_t>(100 + kFrameOverheadBytes));
  EXPECT_EQ(net_.StatsFor(1).packets_sent, 1);
  EXPECT_EQ(net_.StatsFor(2).bytes_received, static_cast<int64_t>(100 + kFrameOverheadBytes));
}

TEST_F(NetworkTest, PartitionDropsBothDirections) {
  net_.Disconnect(1, 2);
  net_.Send(Make(1, 2, 0));
  net_.Send(Make(2, 1, 0));
  loop_.Run();
  EXPECT_TRUE(a_.received.empty());
  EXPECT_TRUE(b_.received.empty());
  net_.Reconnect(1, 2);
  net_.Send(Make(1, 2, 0));
  loop_.Run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetworkTest, DownNodeNeitherSendsNorReceives) {
  net_.SetNodeUp(2, false);
  net_.Send(Make(1, 2, 0));
  net_.Send(Make(2, 1, 0));
  loop_.Run();
  EXPECT_TRUE(a_.received.empty());
  EXPECT_TRUE(b_.received.empty());
  net_.SetNodeUp(2, true);
  net_.Send(Make(1, 2, 0));
  loop_.Run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetworkTest, InFlightPacketLostIfReceiverCrashes) {
  net_.Send(Make(1, 2, 0));
  net_.SetNodeUp(2, false);  // crash while packet in flight
  loop_.Run();
  EXPECT_TRUE(b_.received.empty());
}

TEST_F(NetworkTest, CrashClearsStaleFifoFloor) {
  // Regression: the per-pair FIFO floor must die with the connection when a
  // node crashes. A packet sent over a very slow link pushes the (1,2) floor
  // far into the future; after 2 crashes and restarts, fresh packets belong
  // to a NEW connection and must arrive at normal link latency instead of
  // being held behind the dead connection's floor.
  LinkParams slow;
  slow.latency = 0;
  slow.jitter = 0;
  slow.extra_delay = Seconds(30);
  net_.SetLink(1, 2, slow);
  net_.Send(Make(1, 2, 1));   // floors (1,2) delivery near t=30s
  net_.SetNodeUp(2, false);   // crash tears down the connection + its floor
  net_.SetNodeUp(2, true);    // restart
  net_.ClearLink(1, 2);       // restarted node talks over a normal link

  SimTime delivered = 0;
  net_.SetDeliverySink([&](SimTime at, const Packet& pkt) {
    if (pkt.type == 2) {
      delivered = at;
    }
  });
  net_.Send(Make(1, 2, 2));
  loop_.Run();
  // The post-restart packet must arrive at normal latency, ahead of the
  // pre-crash straggler — not held >= 30s behind the stale floor.
  ASSERT_FALSE(b_.received.empty());
  EXPECT_EQ(b_.received[0].type, 2u);
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, Seconds(1));
}

TEST_F(NetworkTest, UnregisterClearsStaleFifoFloor) {
  LinkParams slow;
  slow.latency = 0;
  slow.jitter = 0;
  slow.extra_delay = Seconds(30);
  net_.SetLink(1, 2, slow);
  net_.Send(Make(1, 2, 1));
  net_.Unregister(2);
  Sink b2;
  net_.Register(2, &b2);
  net_.ClearLink(1, 2);

  SimTime delivered = 0;
  net_.SetDeliverySink([&](SimTime at, const Packet& pkt) {
    if (pkt.type == 2) {
      delivered = at;
    }
  });
  net_.Send(Make(1, 2, 2));
  loop_.Run();
  ASSERT_FALSE(b2.received.empty());
  EXPECT_EQ(b2.received[0].type, 2u);
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, Seconds(1));
}

TEST_F(NetworkTest, DropProbabilityOneLosesEverything) {
  LinkParams lossy;
  lossy.drop_probability = 1.0;
  net_.SetLink(1, 2, lossy);
  for (int i = 0; i < 10; ++i) {
    net_.Send(Make(1, 2, 0));
  }
  loop_.Run();
  EXPECT_TRUE(b_.received.empty());
  // Bytes still counted as sent (the sender paid for them).
  EXPECT_EQ(net_.StatsFor(1).packets_sent, 10);
}

TEST_F(NetworkTest, BandwidthAddsSerializationDelay) {
  LinkParams slow;
  slow.latency = 0;
  slow.jitter = 0;
  slow.bandwidth_bps = 8000.0;  // 1000 bytes/s
  net_.SetLink(1, 2, slow);
  net_.Send(Make(1, 2, 0, 1000 - kFrameOverheadBytes));  // 1000 wire bytes
  loop_.Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_NEAR(static_cast<double>(loop_.now()), 1e9, 1e7);  // ~1 simulated second
}

TEST_F(NetworkTest, LinkOverrideAppliesSymmetrically) {
  LinkParams wan;
  wan.latency = Millis(20);
  wan.jitter = 0;
  net_.SetLink(1, 2, wan);
  net_.Send(Make(2, 1, 0));
  loop_.Run();
  EXPECT_GE(loop_.now(), Millis(20));
}

}  // namespace
}  // namespace edc
