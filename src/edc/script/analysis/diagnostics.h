// Multi-diagnostic reporting for the CoordScript static analyzer.
//
// Unlike the legacy verifier's first-error Reject, analysis passes accumulate
// every finding with a severity, a stable code (EDC-Exxx / EDC-Wxxx), the
// source position and the enclosing handler, so `edc-lint` can print a full
// report and the registry can still reject on the first error.

#ifndef EDC_SCRIPT_ANALYSIS_DIAGNOSTICS_H_
#define EDC_SCRIPT_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

namespace edc {

enum class Severity { kError, kWarning, kNote };

// Diagnostic codes. Errors reject the program at registration; warnings are
// surfaced by edc-lint / AnalyzeProgram but do not reject.
inline constexpr char kDiagSourceTooLarge[] = "EDC-E001";
inline constexpr char kDiagTooManyHandlers[] = "EDC-E002";
inline constexpr char kDiagTooManySubscriptions[] = "EDC-E003";
inline constexpr char kDiagNoSubscriptions[] = "EDC-E004";
inline constexpr char kDiagUnknownKind[] = "EDC-E005";
inline constexpr char kDiagBadPattern[] = "EDC-E006";
inline constexpr char kDiagUnknownEntryPoint[] = "EDC-E007";
inline constexpr char kDiagTooManyStatements[] = "EDC-E008";
inline constexpr char kDiagNestingTooDeep[] = "EDC-E009";
inline constexpr char kDiagAssignUndeclared[] = "EDC-E010";
inline constexpr char kDiagUseUndeclared[] = "EDC-E011";
inline constexpr char kDiagNotWhitelisted[] = "EDC-E012";
inline constexpr char kDiagNondeterminism[] = "EDC-E013";
inline constexpr char kDiagSubWithoutHandler[] = "EDC-E014";
inline constexpr char kDiagUnusedVariable[] = "EDC-W001";
inline constexpr char kDiagDeadStore[] = "EDC-W002";
inline constexpr char kDiagUnreachableCode[] = "EDC-W003";
inline constexpr char kDiagUseBeforeDef[] = "EDC-W004";
inline constexpr char kDiagCostUnbounded[] = "EDC-W005";
inline constexpr char kDiagCostOverBudget[] = "EDC-W006";
// Precision diagnostics from the interval/length abstract domain (cost.cpp).
inline constexpr char kDiagDivByZero[] = "EDC-W007";
inline constexpr char kDiagIndexOutOfRange[] = "EDC-W008";
inline constexpr char kDiagDeadBranch[] = "EDC-W009";
// Whole-registry lint (registry_lint.cpp): cross-extension trigger analysis.
inline constexpr char kDiagShadowedSubscription[] = "EDC-W010";
inline constexpr char kDiagUnmatchableSubscription[] = "EDC-W011";
inline constexpr char kDiagConflictingWrites[] = "EDC-W012";

struct Diagnostic {
  std::string code;  // e.g. "EDC-W003"
  Severity severity = Severity::kError;
  int line = 0;
  int col = 0;
  std::string handler;  // enclosing handler name; empty for program-level
  std::string message;
};

const char* SeverityName(Severity severity);

// "unit:line:col: error: message [EDC-E012]"
std::string FormatDiagnostic(const std::string& unit, const Diagnostic& diag);

bool HasErrors(const std::vector<Diagnostic>& diags);

// Stable presentation order: line, then column, then code.
void SortDiagnostics(std::vector<Diagnostic>* diags);

}  // namespace edc

#endif  // EDC_SCRIPT_ANALYSIS_DIAGNOSTICS_H_
