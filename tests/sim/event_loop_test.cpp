#include "edc/sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace edc {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(Millis(3), [&] { order.push_back(3); });
  loop.Schedule(Millis(1), [&] { order.push_back(1); });
  loop.Schedule(Millis(2), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), Millis(3));
}

TEST(EventLoopTest, SameTimeFifoBySchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(Millis(5), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(Millis(1), [&] {
    loop.Schedule(Millis(1), [&] {
      ++fired;
      EXPECT_EQ(loop.now(), Millis(2));
    });
  });
  loop.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  TimerId id = loop.Schedule(Millis(1), [&] { ran = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, CancelAfterFireIsNoop) {
  EventLoop loop;
  int runs = 0;
  TimerId id = loop.Schedule(Millis(1), [&] { ++runs; });
  loop.Run();
  loop.Cancel(id);  // must not crash or affect later timers
  loop.Schedule(Millis(1), [&] { ++runs; });
  loop.Run();
  EXPECT_EQ(runs, 2);
}

TEST(EventLoopTest, RunUntilAdvancesClockToDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(Millis(10), [&] { ++fired; });
  loop.Schedule(Millis(30), [&] { ++fired; });
  loop.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), Millis(20));
  loop.RunUntil(Millis(40));
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, StopHaltsRun) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(Millis(1), [&] {
    ++fired;
    loop.Stop();
  });
  loop.Schedule(Millis(2), [&] { ++fired; });
  loop.Run();
  EXPECT_EQ(fired, 1);
  loop.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.Schedule(Millis(5), [&] {
    loop.Schedule(-Millis(10), [&] { EXPECT_EQ(loop.now(), Millis(5)); });
  });
  loop.Run();
}

TEST(EventLoopTest, PendingCountExcludesCancelled) {
  EventLoop loop;
  TimerId a = loop.Schedule(Millis(1), [] {});
  loop.Schedule(Millis(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

}  // namespace
}  // namespace edc
