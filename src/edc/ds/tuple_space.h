// Deterministic tuple-space state machine.
//
// Every mutation happens at an ordered timestamp supplied by the BFT layer,
// so all replicas hold identical spaces. Matching is by insertion order
// (deterministic); entries carry creation time (for the recipes' "lowest
// creation timestamp" selections) and an optional lease deadline — lease
// tuples are DepSpace's client-failure-detection primitive (monitor in
// Table 2): a tuple whose owner stops renewing it expires and disappears.

#ifndef EDC_DS_TUPLE_SPACE_H_
#define EDC_DS_TUPLE_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/ds/types.h"
#include "edc/sim/network.h"

namespace edc {

struct DsEntry {
  DsTuple tuple;
  uint64_t seq = 0;       // insertion order, unique
  SimTime ctime = 0;      // ordered timestamp of the out
  SimTime deadline = 0;   // 0 = no lease
  NodeId owner = 0;       // client that inserted it (lease renewal rights)
};

class TupleSpace {
 public:
  // Inserts; duplicates are allowed (a tuple space is a multiset).
  void Out(DsTuple tuple, SimTime now, NodeId owner, Duration lease);

  // First match in insertion order, not removed. Null status kNoNode if none.
  Result<DsTuple> Rdp(const DsTemplate& templ) const;
  // First match, removed.
  Result<DsTuple> Inp(const DsTemplate& templ);
  // All matches in insertion order.
  std::vector<DsEntry> RdAll(const DsTemplate& templ) const;

  // DepSpace cas: insert `tuple` iff nothing matches `templ`. Returns
  // kNodeExists with the blocking tuple otherwise.
  Status Cas(const DsTemplate& templ, DsTuple tuple, SimTime now, NodeId owner,
             Duration lease);

  // Atomic inp(templ)+out(tuple). If `expected_data` is set, the match's
  // second field must equal it (conditional replace, Table 2's cas(o,cc,nc)).
  // kNoNode if nothing matches, kBadVersion if the condition fails.
  Status Replace(const DsTemplate& templ, DsTuple tuple, SimTime now, NodeId owner,
                 DsTuple* removed);

  // Extends the deadline of matching lease tuples owned by `owner`.
  size_t Renew(const DsTemplate& templ, NodeId owner, SimTime now, Duration lease);

  // Removes tuples whose lease expired at `now`; returns them (the server
  // turns them into deletion events).
  std::vector<DsTuple> Expire(SimTime now);

  bool HasMatch(const DsTemplate& templ) const;
  size_t size() const { return entries_.size(); }
  const std::vector<DsEntry>& entries() const { return entries_; }

  std::vector<uint8_t> Serialize() const;
  Status Load(const std::vector<uint8_t>& snapshot);

  // Order-sensitive fingerprint of the whole space (FNV-1a over the
  // serialized form). Replicas that executed the same ordered history agree
  // on it; invariant checkers compare it across replicas after heal.
  uint64_t Digest() const;

 private:
  std::vector<DsEntry> entries_;
  uint64_t next_seq_ = 1;
};

}  // namespace edc

#endif  // EDC_DS_TUPLE_SPACE_H_
