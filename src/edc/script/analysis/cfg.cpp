#include "edc/script/analysis/cfg.h"

#include <algorithm>
#include <utility>

namespace edc {

namespace {

// ---- Name resolution ----

class Resolver {
 public:
  explicit Resolver(ResolvedNames* out) : out_(out) {}

  void Run(const Handler& handler) {
    scopes_.emplace_back();
    for (const std::string& param : handler.params) {
      int id = NewVar(param, /*is_param=*/true, /*is_loop=*/false,
                      handler.line, handler.col);
      scopes_.back()[param] = id;
      out_->param_ids.push_back(id);
    }
    WalkBlock(handler.body, handler.name);
    scopes_.pop_back();
  }

 private:
  void WalkBlock(const Block& block, const std::string& handler_name) {
    scopes_.emplace_back();
    for (const StmtPtr& stmt : block) {
      WalkStmt(*stmt, handler_name);
    }
    scopes_.pop_back();
  }

  void WalkStmt(const Stmt& stmt, const std::string& handler_name) {
    switch (stmt.kind) {
      case Stmt::Kind::kLet: {
        WalkExpr(*stmt.expr, handler_name);
        int id = NewVar(stmt.name, false, false, stmt.line, stmt.col);
        scopes_.back()[stmt.name] = id;
        out_->def_ids[&stmt] = id;
        return;
      }
      case Stmt::Kind::kAssign: {
        WalkExpr(*stmt.expr, handler_name);
        int id = Lookup(stmt.name);
        if (id < 0) {
          out_->diags.push_back(Diagnostic{
              kDiagAssignUndeclared, Severity::kError, stmt.line, stmt.col,
              handler_name,
              "assignment to undeclared variable '" + stmt.name + "' in handler '" +
                  handler_name + "'"});
          id = NewVar(stmt.name, false, false, stmt.line, stmt.col);
          scopes_.back()[stmt.name] = id;
        }
        out_->def_ids[&stmt] = id;
        return;
      }
      case Stmt::Kind::kIf: {
        WalkExpr(*stmt.expr, handler_name);
        WalkBlock(stmt.body, handler_name);
        WalkBlock(stmt.else_body, handler_name);
        return;
      }
      case Stmt::Kind::kForEach: {
        WalkExpr(*stmt.expr, handler_name);
        scopes_.emplace_back();
        int id = NewVar(stmt.name, false, /*is_loop=*/true, stmt.line, stmt.col);
        scopes_.back()[stmt.name] = id;
        out_->def_ids[&stmt] = id;
        WalkBlock(stmt.body, handler_name);
        scopes_.pop_back();
        return;
      }
      case Stmt::Kind::kReturn:
        if (stmt.expr) {
          WalkExpr(*stmt.expr, handler_name);
        }
        return;
      case Stmt::Kind::kExpr:
        WalkExpr(*stmt.expr, handler_name);
        return;
    }
  }

  void WalkExpr(const Expr& expr, const std::string& handler_name) {
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        return;
      case Expr::Kind::kVar: {
        int id = Lookup(expr.name);
        if (id < 0) {
          out_->diags.push_back(Diagnostic{
              kDiagUseUndeclared, Severity::kError, expr.line, expr.col,
              handler_name,
              "use of undeclared variable '" + expr.name + "' in handler '" +
                  handler_name + "'"});
          id = NewVar(expr.name, false, false, expr.line, expr.col);
          scopes_.back()[expr.name] = id;
        }
        out_->use_ids[&expr] = id;
        return;
      }
      case Expr::Kind::kUnary:
        WalkExpr(*expr.lhs, handler_name);
        return;
      case Expr::Kind::kBinary:
      case Expr::Kind::kIndex:
        WalkExpr(*expr.lhs, handler_name);
        WalkExpr(*expr.rhs, handler_name);
        return;
      case Expr::Kind::kCall:
      case Expr::Kind::kListLit:
        for (const ExprPtr& arg : expr.args) {
          WalkExpr(*arg, handler_name);
        }
        return;
    }
  }

  int NewVar(const std::string& name, bool is_param, bool is_loop, int line, int col) {
    out_->vars.push_back(VarInfo{name, is_param, is_loop, line, col});
    return static_cast<int>(out_->vars.size()) - 1;
  }

  int Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return found->second;
      }
    }
    return -1;
  }

  ResolvedNames* out_;
  std::vector<std::map<std::string, int>> scopes_;
};

// ---- CFG construction ----

class CfgBuilder {
 public:
  explicit CfgBuilder(Cfg* cfg, const std::string& handler_name)
      : cfg_(cfg), handler_(handler_name) {
    cfg_->nodes.push_back(CfgNode{CfgNode::Kind::kEntry, nullptr, {}, {}});
    cfg_->nodes.push_back(CfgNode{CfgNode::Kind::kExit, nullptr, {}, {}});
  }

  void Run(const Block& body) {
    std::vector<int> frontier = BuildBlock(body, {cfg_->entry});
    for (int n : frontier) {
      Edge(n, cfg_->exit);
    }
    ComputeReachability();
  }

 private:
  // Builds nodes for `block` with control entering from `frontier`; returns
  // the nodes whose control falls out the bottom (empty if all paths return).
  std::vector<int> BuildBlock(const Block& block, std::vector<int> frontier) {
    bool dead_reported = false;
    for (const StmtPtr& stmt_ptr : block) {
      const Stmt& stmt = *stmt_ptr;
      if (frontier.empty() && !dead_reported) {
        cfg_->diags.push_back(Diagnostic{
            kDiagUnreachableCode, Severity::kWarning, stmt.line, stmt.col, handler_,
            "unreachable code after return in handler '" + handler_ + "'"});
        dead_reported = true;
      }
      switch (stmt.kind) {
        case Stmt::Kind::kLet:
        case Stmt::Kind::kAssign:
        case Stmt::Kind::kExpr: {
          int n = NewNode(CfgNode::Kind::kStmt, &stmt);
          Link(frontier, n);
          frontier = {n};
          break;
        }
        case Stmt::Kind::kReturn: {
          int n = NewNode(CfgNode::Kind::kStmt, &stmt);
          Link(frontier, n);
          Edge(n, cfg_->exit);
          frontier.clear();
          break;
        }
        case Stmt::Kind::kIf: {
          int branch = NewNode(CfgNode::Kind::kBranch, &stmt);
          Link(frontier, branch);
          std::vector<int> out = BuildBlock(stmt.body, {branch});
          if (stmt.else_body.empty()) {
            out.push_back(branch);  // condition false falls through
          } else {
            std::vector<int> eout = BuildBlock(stmt.else_body, {branch});
            out.insert(out.end(), eout.begin(), eout.end());
          }
          frontier = std::move(out);
          break;
        }
        case Stmt::Kind::kForEach: {
          int head = NewNode(CfgNode::Kind::kLoopHead, &stmt);
          Link(frontier, head);
          std::vector<int> body_out = BuildBlock(stmt.body, {head});
          for (int n : body_out) {
            Edge(n, head);  // back edge
          }
          frontier = {head};  // zero or more iterations exit from the head
          break;
        }
      }
    }
    return frontier;
  }

  int NewNode(CfgNode::Kind kind, const Stmt* stmt) {
    cfg_->nodes.push_back(CfgNode{kind, stmt, {}, {}});
    return static_cast<int>(cfg_->nodes.size()) - 1;
  }

  void Edge(int from, int to) {
    cfg_->nodes[from].succs.push_back(to);
    cfg_->nodes[to].preds.push_back(from);
  }

  void Link(const std::vector<int>& frontier, int to) {
    for (int n : frontier) {
      Edge(n, to);
    }
  }

  void ComputeReachability() {
    cfg_->reachable.assign(cfg_->nodes.size(), false);
    std::vector<int> stack{cfg_->entry};
    cfg_->reachable[cfg_->entry] = true;
    while (!stack.empty()) {
      int n = stack.back();
      stack.pop_back();
      for (int s : cfg_->nodes[n].succs) {
        if (!cfg_->reachable[s]) {
          cfg_->reachable[s] = true;
          stack.push_back(s);
        }
      }
    }
  }

  Cfg* cfg_;
  std::string handler_;
};

}  // namespace

ResolvedNames ResolveNames(const Handler& handler) {
  ResolvedNames out;
  Resolver resolver(&out);
  resolver.Run(handler);
  return out;
}

Cfg BuildCfg(const Handler& handler) {
  Cfg cfg;
  CfgBuilder builder(&cfg, handler.name);
  builder.Run(handler.body);
  return cfg;
}

}  // namespace edc
