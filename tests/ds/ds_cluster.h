// Shared in-simulator DepSpace cluster fixture for ds/ext/recipes tests.

#ifndef EDC_TESTS_DS_DS_CLUSTER_H_
#define EDC_TESTS_DS_DS_CLUSTER_H_

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "edc/common/rng.h"
#include "edc/ds/client.h"
#include "edc/ds/server.h"
#include "edc/sim/costs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"

namespace edc {

class DsCluster {
 public:
  explicit DsCluster(uint64_t seed = 21, DsServerOptions options = DsServerOptions{}) {
    net = std::make_unique<Network>(&loop, Rng(seed), LinkParams{});
    for (NodeId id = 1; id <= 4; ++id) {
      members.push_back(id);
    }
    for (NodeId id : members) {
      auto server =
          std::make_unique<DsServer>(&loop, net.get(), id, members, CostModel{}, options);
      net->Register(id, server.get());
      servers.push_back(std::move(server));
    }
  }

  void Start() {
    for (auto& s : servers) {
      s->Start();
    }
  }

  DsClient* AddClient(DsClientOptions options = DsClientOptions{}) {
    NodeId id = next_client_id++;
    auto client = std::make_unique<DsClient>(
        &loop, net.get(), id, ShardView::Standalone(ServerList{members}), options);
    DsClient* raw = client.get();
    clients.push_back(std::move(client));
    return raw;
  }

  void Settle(Duration d = Millis(500)) { loop.RunUntil(loop.now() + d); }

  EventLoop loop;
  std::unique_ptr<Network> net;
  std::vector<NodeId> members;
  std::vector<std::unique_ptr<DsServer>> servers;
  std::vector<std::unique_ptr<DsClient>> clients;
  NodeId next_client_id = 100;
};

}  // namespace edc

#endif  // EDC_TESTS_DS_DS_CLUSTER_H_
