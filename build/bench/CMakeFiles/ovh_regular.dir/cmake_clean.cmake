file(REMOVE_RECURSE
  "CMakeFiles/ovh_regular.dir/ovh_regular.cpp.o"
  "CMakeFiles/ovh_regular.dir/ovh_regular.cpp.o.d"
  "ovh_regular"
  "ovh_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovh_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
