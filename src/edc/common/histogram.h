// Sample recorders for the benchmark harness.
//
// Recorder keeps raw samples (latencies in nanoseconds, byte counts, ...) and
// answers mean/percentile queries; Counter accumulates monotonic totals
// (ops completed, bytes sent). Both are cheap enough to live on simulated hot
// paths.

#ifndef EDC_COMMON_HISTOGRAM_H_
#define EDC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace edc {

class Recorder {
 public:
  void Record(int64_t value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  int64_t Min() const;
  int64_t Max() const;
  // q in [0,1]; linear interpolation between the neighbouring order
  // statistics of the sorted samples (truncated to int64). Returns 0 when
  // empty.
  int64_t Percentile(double q) const;
  double StdDev() const;

  // "mean=1.23ms p50=... p99=..." with values interpreted as nanoseconds.
  std::string SummaryNs() const;

 private:
  void Sort() const;

  mutable std::vector<int64_t> samples_;
  mutable bool sorted_ = false;
};

class Counter {
 public:
  void Add(int64_t delta) { total_ += delta; }
  void Increment() { ++total_; }
  int64_t total() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  int64_t total_ = 0;
};

// Aggregates per-seed scalar results (e.g. throughput of one run) and reports
// mean and standard deviation across runs, mirroring the paper's
// "average of five runs" methodology.
class RunAggregate {
 public:
  void Add(double value) { values_.push_back(value); }
  size_t count() const { return values_.size(); }
  double Mean() const;
  double StdDev() const;

 private:
  std::vector<double> values_;
};

}  // namespace edc

#endif  // EDC_COMMON_HISTOGRAM_H_
