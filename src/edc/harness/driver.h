// Closed-loop workload driver and table output for the figure benches.
//
// Mirrors the paper's methodology (§6): every client continuously re-issues
// the operation under test (at most one outstanding request per client);
// measurements cover a window after warmup; each configuration is run with
// several seeds and averaged.

#ifndef EDC_HARNESS_DRIVER_H_
#define EDC_HARNESS_DRIVER_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "edc/common/histogram.h"
#include "edc/harness/fixture.h"

namespace edc {

// Per-stage latency attribution accumulated across the ops of one run
// (populated only when the fixture runs with observability on).
struct StageSums {
  int64_t ns[kStageCount] = {};
  int64_t traced_ops = 0;

  void Add(const StageBreakdown& b) {
    for (size_t i = 0; i < kStageCount; ++i) {
      ns[i] += b.ns[i];
    }
    ++traced_ops;
  }
  double MeanMs(Stage stage) const {
    return traced_ops > 0 ? static_cast<double>(ns[static_cast<size_t>(stage)]) / 1e6 /
                                static_cast<double>(traced_ops)
                          : 0.0;
  }
};

struct RunStats {
  int64_t ops = 0;             // completed in the measure window
  Recorder latency;            // per-op latency, ns
  int64_t client_bytes = 0;    // bytes sent by clients during the window
  Duration window = 0;
  StageSums stages;            // queue/cpu/network/fsync/other attribution

  double ThroughputOpsPerSec() const {
    return window > 0 ? static_cast<double>(ops) / ToSeconds(window) : 0.0;
  }
  double MeanLatencyMs() const { return latency.Mean() / 1e6; }
  double KbPerOp() const {
    return ops > 0 ? static_cast<double>(client_bytes) / 1024.0 /
                         static_cast<double>(ops)
                   : 0.0;
  }
};

class ClosedLoop {
 public:
  // `op` must invoke its completion callback exactly once (success or not).
  using OpFn = std::function<void(size_t client, std::function<void()> done)>;

  ClosedLoop(CoordFixture* fixture, OpFn op) : fixture_(fixture), op_(std::move(op)) {}

  RunStats Run(Duration warmup, Duration measure) {
    // All mutable state lives behind a shared_ptr: straggler completions that
    // fire after Run() returns keep it alive instead of touching dead stack.
    struct Ctx {
      CoordFixture* fixture = nullptr;
      OpFn op;
      RunStats stats;
      SimTime measure_start = 0;
      SimTime measure_end = 0;
      int64_t bytes_at_start = 0;
      std::function<void(size_t)> issue;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->fixture = fixture_;
    ctx->op = op_;
    ctx->stats.window = measure;
    ctx->measure_start = fixture_->loop().now() + warmup;
    ctx->measure_end = ctx->measure_start + measure;

    // Weak self-reference breaks the ctx->issue->ctx ownership cycle.
    std::weak_ptr<Ctx> weak = ctx;
    ctx->issue = [weak](size_t i) {
      auto self = weak.lock();
      if (!self) {
        return;
      }
      SimTime issued = self->fixture->loop().now();
      if (issued >= self->measure_end) {
        return;
      }
      // Open a trace per operation; everything the op causally triggers
      // (packets, cpu, fsync) lands under it via the event-loop hooks.
      Tracer& tracer = self->fixture->obs().tracer;
      TraceContext prev = tracer.current();
      TraceContext root;
      if (tracer.enabled()) {
        root = tracer.BeginTrace("client.op",
                                 static_cast<uint32_t>(self->fixture->client_node(i)),
                                 issued);
      }
      self->op(i, [weak, i, issued, root]() {
        auto inner = weak.lock();
        if (!inner) {
          return;
        }
        SimTime done_at = inner->fixture->loop().now();
        StageBreakdown breakdown;
        if (root.active()) {
          breakdown = inner->fixture->obs().tracer.FinishTrace(root, done_at);
        }
        if (issued >= inner->measure_start && done_at <= inner->measure_end) {
          inner->stats.latency.Record(done_at - issued);
          ++inner->stats.ops;
          if (root.active()) {
            inner->stats.stages.Add(breakdown);
          }
        }
        inner->issue(i);
      });
      if (root.active()) {
        tracer.SetCurrent(prev);
      }
    };

    // Snapshot byte counters exactly at the measure boundary.
    fixture_->loop().ScheduleAt(ctx->measure_start, [ctx]() {
      ctx->bytes_at_start = ctx->fixture->ClientBytesSent();
    });

    for (size_t i = 0; i < fixture_->num_clients(); ++i) {
      ctx->issue(i);
    }
    fixture_->loop().RunUntil(ctx->measure_end);
    ctx->stats.client_bytes = fixture_->ClientBytesSent() - ctx->bytes_at_start;
    RunStats out = ctx->stats;
    // Let stragglers drain so the fixture can be reused.
    fixture_->loop().RunUntil(ctx->measure_end + Seconds(2));
    return out;
  }

 private:
  CoordFixture* fixture_;
  OpFn op_;
};

// Fixed-width table printer for paper-style output.
class BenchTable {
 public:
  explicit BenchTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(headers_, widths);
    std::string sep;
    for (size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < cells.size() && c < widths.size(); ++c) {
      line += cells[c];
      line += std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace edc

#endif  // EDC_HARNESS_DRIVER_H_
