#include "edc/check/ds_model.h"

#include <algorithm>
#include <variant>

namespace edc {

namespace {

bool PathIsEm(const DsField& f) {
  return std::holds_alternative<std::string>(f) &&
         std::get<std::string>(f).rfind("/em", 0) == 0;
}

}  // namespace

Status DsModel::CheckAccess(const DsTuple* tuple, const DsTemplate* templ) {
  if (tuple != nullptr && !tuple->empty() && PathIsEm((*tuple)[0])) {
    return Status(ErrorCode::kAccessDenied, "extension-manager namespace");
  }
  if (templ != nullptr && !templ->empty()) {
    const DsTField& tf = (*templ)[0];
    if (tf.kind != DsTField::Kind::kAny && PathIsEm(tf.value)) {
      return Status(ErrorCode::kAccessDenied, "extension-manager namespace");
    }
  }
  return Status::Ok();
}

bool DsModel::HasMatch(const DsTemplate& templ) const { return FindMatch(templ) >= 0; }

int DsModel::FindMatch(const DsTemplate& templ) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (TupleMatches(templ, entries_[i].tuple)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void DsModel::Expire(SimTime ts) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [ts](const Entry& e) {
                                  return e.deadline != 0 && e.deadline <= ts;
                                }),
                 entries_.end());
}

void DsModel::Unblock(const DsTuple& created, std::vector<DsModelReply>* replies) {
  // All non-consuming (rd) waiters whose template matches, in list order; the
  // reply carries the created tuple itself, as long as some match remains.
  auto it = waiters_.begin();
  while (it != waiters_.end()) {
    if (it->consume || !TupleMatches(it->templ, created) || !HasMatch(it->templ)) {
      ++it;
      continue;
    }
    DsReply reply;
    reply.tuples.push_back(created);
    replies->push_back(DsModelReply{it->client, it->req_id, std::move(reply)});
    it = waiters_.erase(it);
  }
  // The single oldest consuming (in) waiter; it removes the first tuple its
  // own template matches, which may differ from the created one.
  Waiter* best = nullptr;
  for (Waiter& w : waiters_) {
    if (w.consume && TupleMatches(w.templ, created) &&
        (best == nullptr || w.order < best->order)) {
      best = &w;
    }
  }
  if (best == nullptr) {
    return;
  }
  int idx = FindMatch(best->templ);
  if (idx < 0) {
    return;
  }
  DsReply reply;
  reply.tuples.push_back(entries_[static_cast<size_t>(idx)].tuple);
  replies->push_back(DsModelReply{best->client, best->req_id, std::move(reply)});
  entries_.erase(entries_.begin() + idx);
  uint64_t order = best->order;
  waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                [order](const Waiter& w) { return w.order == order; }),
                 waiters_.end());
}

std::vector<DsModelReply> DsModel::Execute(SimTime ts, NodeId client, uint64_t req_id,
                                           const std::vector<uint8_t>& payload) {
  std::vector<DsModelReply> replies;
  auto reply_error = [&](const Status& s) {
    DsReply reply;
    reply.code = s.code();
    reply.value = s.message();
    replies.push_back(DsModelReply{client, req_id, std::move(reply)});
  };
  auto reply_ok = [&](DsReply reply) {
    replies.push_back(DsModelReply{client, req_id, std::move(reply)});
  };

  Expire(ts);

  auto op = DsOp::Decode(payload);
  if (!op.ok()) {
    reply_error(Status(ErrorCode::kDecodeError));
    return replies;
  }

  // Map-version protocol — mirror of the replicated check in
  // DsServer::Execute (docs/sharding.md).
  if (op->type == DsOpType::kSetMapVersion) {
    if (op->map_version > map_version_) {
      map_version_ = op->map_version;
    }
    DsReply reply;
    reply.value = std::to_string(map_version_);
    reply_ok(std::move(reply));
    return replies;
  }
  if (map_version_ > 0 && op->map_version < map_version_) {
    DsReply reply;
    reply.code = ErrorCode::kShardMapStale;
    reply.value = std::to_string(map_version_);
    replies.push_back(DsModelReply{client, req_id, std::move(reply)});
    return replies;
  }

  switch (op->type) {
    case DsOpType::kOut: {
      if (auto s = CheckAccess(&op->tuple, nullptr); !s.ok()) {
        reply_error(s);
        break;
      }
      DsTuple created = op->tuple;
      entries_.push_back(Entry{op->tuple, op->lease > 0 ? ts + op->lease : 0, client});
      reply_ok(DsReply{});
      Unblock(created, &replies);
      break;
    }
    case DsOpType::kRdp: {
      if (auto s = CheckAccess(nullptr, &op->templ); !s.ok()) {
        reply_error(s);
        break;
      }
      int idx = FindMatch(op->templ);
      if (idx < 0) {
        reply_error(Status(ErrorCode::kNoNode, "no matching tuple"));
        break;
      }
      DsReply reply;
      reply.tuples.push_back(entries_[static_cast<size_t>(idx)].tuple);
      reply_ok(std::move(reply));
      break;
    }
    case DsOpType::kInp: {
      if (auto s = CheckAccess(nullptr, &op->templ); !s.ok()) {
        reply_error(s);
        break;
      }
      int idx = FindMatch(op->templ);
      if (idx < 0) {
        reply_error(Status(ErrorCode::kNoNode, "no matching tuple"));
        break;
      }
      DsReply reply;
      reply.tuples.push_back(entries_[static_cast<size_t>(idx)].tuple);
      entries_.erase(entries_.begin() + idx);
      reply_ok(std::move(reply));
      break;
    }
    case DsOpType::kRd:
    case DsOpType::kIn: {
      bool consume = op->type == DsOpType::kIn;
      if (auto s = CheckAccess(nullptr, &op->templ); !s.ok()) {
        reply_error(s);
        break;
      }
      int idx = FindMatch(op->templ);
      if (idx >= 0) {
        DsReply reply;
        reply.tuples.push_back(entries_[static_cast<size_t>(idx)].tuple);
        if (consume) {
          entries_.erase(entries_.begin() + idx);
        }
        reply_ok(std::move(reply));
      } else {
        waiters_.push_back(Waiter{op->templ, client, req_id, consume, next_waiter_order_++});
      }
      break;
    }
    case DsOpType::kCas: {
      if (auto s = CheckAccess(&op->tuple, &op->templ); !s.ok()) {
        reply_error(s);
        break;
      }
      if (HasMatch(op->templ)) {
        reply_error(Status(ErrorCode::kNodeExists, "template already matched"));
        break;
      }
      DsTuple created = op->tuple;
      entries_.push_back(Entry{op->tuple, op->lease > 0 ? ts + op->lease : 0, client});
      reply_ok(DsReply{});
      Unblock(created, &replies);
      break;
    }
    case DsOpType::kReplace: {
      if (auto s = CheckAccess(&op->tuple, &op->templ); !s.ok()) {
        reply_error(s);
        break;
      }
      int idx = FindMatch(op->templ);
      if (idx < 0) {
        reply_error(Status(ErrorCode::kNoNode, "no matching tuple"));
        break;
      }
      entries_.erase(entries_.begin() + idx);
      // Replacement tuples carry no lease and raise a "changed" event, which
      // never unblocks waiters (see DsExecContext::Replace).
      entries_.push_back(Entry{op->tuple, 0, client});
      reply_ok(DsReply{});
      break;
    }
    case DsOpType::kRdAll: {
      DsReply reply;
      if (CheckAccess(nullptr, &op->templ).ok()) {
        for (const Entry& e : entries_) {
          if (TupleMatches(op->templ, e.tuple)) {
            reply.tuples.push_back(e.tuple);
          }
        }
      }
      // ACL denial yields an empty OK reply (DsExecContext::RdAll swallows
      // the status); mirror the quirk.
      reply_ok(std::move(reply));
      break;
    }
    case DsOpType::kSetMapVersion:
      break;  // handled above, before the switch
    case DsOpType::kRenew: {
      size_t count = 0;
      for (Entry& e : entries_) {
        if (e.deadline != 0 && e.owner == client && TupleMatches(op->templ, e.tuple)) {
          e.deadline = ts + op->lease;
          ++count;
        }
      }
      DsReply reply;
      reply.value = std::to_string(count);
      reply_ok(std::move(reply));
      break;
    }
  }
  return replies;
}

}  // namespace edc
