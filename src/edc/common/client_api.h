// Shared client-side API surface for the two coordination clients.
//
// ZkClient and DsClient historically grew their own callback aliases,
// connection bookkeeping and reply decoding; everything a recipe or a
// failover layer needs from "a coordination client" now lives here once:
// Result<T>-based callback aliases, the typed ErrorCode (common/result.h)
// that travels unchanged from server internals to these callbacks, the
// server-list + reconnect policy both clients consume, and the typed
// extension-invocation result that replaces raw reply-struct poking.

#ifndef EDC_COMMON_CLIENT_API_H_
#define EDC_COMMON_CLIENT_API_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/sim/network.h"
#include "edc/sim/time.h"

namespace edc {

// Callback alias set. All client completions are Result<T>-based; errors are
// always a typed ErrorCode (never a raw reply integer).
using StatusCb = std::function<void(Status)>;
template <typename T>
using ResultCb = std::function<void(Result<T>)>;
using StringResultCb = ResultCb<std::string>;

// The replica ensemble a client may talk to. ZooKeeper-family clients hold a
// session against one replica at a time and fail over along this list;
// DepSpace-family clients multicast to the whole list.
struct ServerList {
  std::vector<NodeId> servers;
  size_t preferred = 0;  // index of the replica to try first

  ServerList() = default;
  explicit ServerList(std::vector<NodeId> s, size_t pref = 0)
      : servers(std::move(s)), preferred(pref) {}
  ServerList(std::initializer_list<NodeId> s) : servers(s) {}

  bool empty() const { return servers.empty(); }
  size_t size() const { return servers.size(); }
  NodeId at(size_t i) const { return servers[i % servers.size()]; }
};

// Reconnect/failover policy shared by both clients: exponential backoff
// between attempts, rotating through the ServerList.
struct ReconnectOptions {
  Duration initial_backoff = Millis(200);
  Duration max_backoff = Seconds(2);
  // 0 = retry forever. Counted per disconnect, reset on success.
  int max_attempts = 0;
  // Deterministic, seeded jitter: each backoff delay is shortened by a
  // uniform draw from [0, backoff_jitter * delay]. Without it the simulator's
  // determinism makes every client disconnected by the same fault retry in
  // perfect lockstep, hammering the recovering replica with synchronized
  // bursts. 0 disables jitter (tests that pin exact timings use this). Each
  // client seeds its private stream from jitter_seed mixed with its own node
  // id, so runs stay replayable per seed while clients decorrelate.
  double backoff_jitter = 0.5;
  uint64_t jitter_seed = 0;
};

// Mixes a ReconnectOptions jitter seed with a client's node id (splitmix-
// style odd-constant multiply) so distinct clients draw distinct, stable
// jitter streams.
inline uint64_t JitterSeedFor(const ReconnectOptions& options, NodeId id) {
  uint64_t mixed = options.jitter_seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(id) + 1));
  return mixed == 0 ? 0x9E3779B97F4A7C15ULL : mixed;
}

// Session lifecycle notifications a failover-aware application (or recipe
// layer) subscribes to. kSessionLost means volatile per-session server state
// (watches, in-flight replies) is gone; after kReconnected the application
// must re-arm watches and re-issue unacknowledged requests.
enum class SessionEvent : uint8_t {
  kConnected = 0,    // first session established
  kDisconnected = 1, // replica unreachable; failover in progress
  kSessionLost = 2,  // old session is dead (expired or replica lost it)
  kReconnected = 3,  // new session established on a (possibly new) replica
  // The ensemble reconfigured: the client refreshed its ServerList from the
  // replica's membership push, so future failovers target live members.
  kMembershipChanged = 4,
};

using SessionEventCb = std::function<void(SessionEvent)>;

// Typed result of invoking a server-side extension through its trigger
// object (§5.1.2 / §5.2.2). Replaces interpreting raw reply structs.
struct ExtensionResult {
  // True when a registered+acknowledged extension intercepted the call; the
  // extension's payload is in `value`. False = no extension fired and the
  // fields below describe the plain-operation fallback answer.
  bool intercepted = false;
  // Fallback only: whether the trigger object currently exists. When it does
  // not, ZooKeeper-family clients have armed a creation watch on it.
  bool exists = false;
  std::string value;
};

using ExtensionCb = ResultCb<ExtensionResult>;

}  // namespace edc

#endif  // EDC_COMMON_CLIENT_API_H_
