// Register bytecode for certified CoordScript handlers (ROADMAP item 3).
//
// The tree-walking interpreter pays a virtual-dispatch + scope-map toll on
// every AST node; for handlers the static analyzer has *certified* (proven
// worst-case step bound within the execution budget, docs/static_analysis.md)
// we can afford a one-time compile at registration and run a flat register
// machine on the hot path instead. The contract that makes the swap safe:
//
//   * Step accounting is instruction-for-instruction identical to the
//     interpreter. Every instruction carries the number of ExecBudget steps
//     the interpreter would have charged by the time it reaches the same
//     point (its own AST node plus any parent nodes folded into it), charged
//     *before* the instruction executes — so steps_used agrees with the
//     interpreter at every observable exit: normal return, runtime error,
//     value-size abort. Replica digests and simulated timing cannot move.
//   * Error Status codes, messages and line attribution replicate the
//     interpreter byte for byte.
//   * Anything the compiler cannot lower faithfully (e.g. a variable the
//     scoping pass could not resolve) simply fails to compile; the binding
//     falls back to the interpreter. Compilation is an optimization, never a
//     semantic fork.
//
// See docs/bytecode_vm.md for the instruction-set walkthrough and the
// step-accounting equivalence argument.

#ifndef EDC_SCRIPT_VM_BYTECODE_H_
#define EDC_SCRIPT_VM_BYTECODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "edc/script/value.h"

namespace edc {

enum class OpCode : uint8_t {
  // dst = constants[aux]
  kLoadConst,
  // dst = constants[aux], then value-size check (a folded expression whose
  // interpreter counterpart ran CheckSize: string concat / list literal).
  kLoadConstChecked,
  // dst = reg[a]  (variable reads; charges the kVar node's step)
  kMove,
  // dst = -reg[a] (unsigned-wrap negation; type-checked) / !Truthy(reg[a])
  kNeg,
  kNot,
  // dst = reg[a] <op> reg[b], with the interpreter's exact type checks,
  // wrap-around arithmetic and division/modulo guards. kAdd also handles
  // string concatenation (+ size check), mirroring EvalBinary.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // dst = Truthy(reg[a]) as bool (closes short-circuit lowering).
  kTruthy,
  // pc = aux
  kJump,
  // if !Truthy(reg[a]) pc = aux
  kJumpIfFalse,
  // if Truthy(reg[a]) pc = aux
  kJumpIfTrue,
  // dst = reg[a][reg[b]] (list / map / string indexing, interpreter checks)
  kIndex,
  // dst = list(reg[a] .. reg[a + b - 1]), then value-size check
  kMakeList,
  // dst = builtins-by-index[aux](reg[a] .. reg[a + b - 1]), then size check.
  // The registry index is resolved at compile time: no per-call map lookup.
  kCallBuiltin,
  // dst = host->Call(host_names[aux], reg[a] .. reg[a + b - 1]), then size
  // check — host results obey max_value_bytes exactly like builtin results.
  kCallHost,
  // foreach header: type-check reg[a] as a list and snapshot it into
  // iterator slot b (cached data pointer + length; the snapshot keeps the
  // shared list alive even if the body rebinds the source variable).
  // aux carries the compile-time iteration bound (0 = unproven): the length
  // of a literal list, or the analyzer's collection cap for capped host
  // collection functions — certified handlers never iterate past it.
  kIterInit,
  // As kIterInit but the compiler proved reg[a] is a list (it was built by a
  // list literal), so the runtime type check is elided.
  kIterInitList,
  // if slot b has items left: dst = next element, fall through; else pc = aux
  kIterNext,
  // return reg[a] / return null (handler falls off the end or bare return)
  kReturn,
  kReturnNull,
};

struct Instruction {
  OpCode op;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint32_t aux = 0;    // constant index / jump target / builtin index / bound
  uint32_t steps = 0;  // ExecBudget steps charged before executing
  int32_t line = 0;    // source line for error attribution
};

struct CompiledHandler {
  std::string name;
  uint16_t num_params = 0;
  uint16_t num_registers = 0;
  uint16_t num_iter_slots = 0;
  std::vector<Instruction> code;
  std::vector<Value> constants;
  std::vector<std::string> host_names;  // kCallHost targets, by aux index
  int64_t step_bound = 0;               // analyzer-proven worst case
};

// All handlers of one extension that compiled successfully. Handlers that
// were not certified (or hit an unsupported construct) are simply absent and
// keep running through the interpreter.
struct CompiledModule {
  std::map<std::string, CompiledHandler> handlers;

  const CompiledHandler* Find(const std::string& name) const {
    auto it = handlers.find(name);
    return it == handlers.end() ? nullptr : &it->second;
  }
};

}  // namespace edc

#endif  // EDC_SCRIPT_VM_BYTECODE_H_
