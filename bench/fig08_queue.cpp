// Reproduces paper Fig. 8: distributed queue throughput and client data per
// operation vs number of clients (each client alternates add / remove with
// empty payloads).
//
// Expected shape: traditional remove costs grow with contention (rdAll of
// the whole queue + delete races -> retries), so KB/op climbs with clients
// while the extension variant stays flat; EZK/EDS outperform by ~17x/24x.
// DepSpace-family clients send ~4x the bytes (requests go to all replicas).

#include "bench/common.h"

namespace edc {
namespace {

constexpr Duration kWarmup = Seconds(1);
constexpr Duration kMeasure = Seconds(3);
constexpr int kSeeds = 3;

void Main() {
  BenchTable table({"system", "clients", "kops_per_s", "client_kb_per_op", "retries/op"});
  BenchJson json("fig08_queue");
  double zk50 = 0;
  double ezk50 = 0;
  double ds50 = 0;
  double eds50 = 0;
  for (SystemKind system : AllSystems()) {
    for (size_t clients : ClientSweep(1)) {
      SeededAverages avg;
      RunAggregate retries_per_op;
      for (int seed = 0; seed < kSeeds; ++seed) {
        FixtureOptions options;
        options.system = system;
        options.num_clients = clients;
        options.seed = 2000 + static_cast<uint64_t>(seed);
        options.observability = true;
        options.retain_spans = TraceExportRequested();
        CoordFixture fixture(options);
        fixture.Start();
        auto queues = SetupRecipe<DistributedQueue>(fixture, IsExtensible(system));
        // Each client repeatedly adds one element, then removes the head
        // (paper §6.1.2); elements carry an empty payload.
        auto op_counters = std::make_shared<std::vector<int64_t>>(clients, 0);
        ClosedLoop driver(&fixture, [&, op_counters](size_t i,
                                                     std::function<void()> done) {
          std::string id = "c" + std::to_string(i) + "-" +
                           std::to_string(++(*op_counters)[i]);
          queues[i]->Add(id, "", [&, i, done = std::move(done)](Status) {
            queues[i]->Remove([done = std::move(done)](Result<std::string>) { done(); });
          });
        });
        RunStats stats = driver.Run(kWarmup, kMeasure);
        json.AddRow(system, clients, options.seed, stats);
        MaybeExportTrace(fixture, "fig08_queue_" + std::string(SystemName(system)) +
                                      "_c" + std::to_string(clients) + "_s" +
                                      std::to_string(seed));
        // One completed iteration = 2 operations (add + remove).
        double ops = static_cast<double>(stats.ops) * 2.0;
        avg.throughput.Add(ops / ToSeconds(kMeasure));
        avg.kb_per_op.Add(ops > 0 ? static_cast<double>(stats.client_bytes) / 1024.0 / ops
                                  : 0.0);
        int64_t total_retries = 0;
        for (auto& queue : queues) {
          total_retries += queue->retries();
        }
        retries_per_op.Add(ops > 0 ? static_cast<double>(total_retries) / ops : 0.0);
      }
      double thr = avg.throughput.Mean();
      if (clients == 50) {
        if (system == SystemKind::kZooKeeper) zk50 = thr;
        if (system == SystemKind::kExtensibleZooKeeper) ezk50 = thr;
        if (system == SystemKind::kDepSpace) ds50 = thr;
        if (system == SystemKind::kExtensibleDepSpace) eds50 = thr;
      }
      table.AddRow({SystemName(system), std::to_string(clients), Fmt(thr / 1000.0),
                    Fmt(avg.kb_per_op.Mean(), 3), Fmt(retries_per_op.Mean())});
    }
  }
  std::printf("=== Fig. 8: distributed queue (avg of %d runs) ===\n", kSeeds);
  table.Print();
  json.Write();
  if (zk50 > 0 && ds50 > 0) {
    std::printf("\nshape check: EZK/ZooKeeper = %.1fx (paper: ~17x), "
                "EDS/DepSpace = %.1fx (paper: ~24x)\n",
                ezk50 / zk50, eds50 / ds50);
  }
}

}  // namespace
}  // namespace edc

int main() {
  edc::Main();
  return 0;
}
