// FNV-1a hashing, used for message digests inside the BFT ordering protocol.
// (A cryptographic hash in production; collision resistance is irrelevant to
// the protocol logic exercised here.)

#ifndef EDC_COMMON_HASH_H_
#define EDC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace edc {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t Fnv1a64(const std::vector<uint8_t>& data, uint64_t seed = kFnvOffset) {
  return Fnv1a64(data.data(), data.size(), seed);
}

inline uint64_t Fnv1a64(std::string_view s, uint64_t seed = kFnvOffset) {
  return Fnv1a64(reinterpret_cast<const uint8_t*>(s.data()), s.size(), seed);
}

}  // namespace edc

#endif  // EDC_COMMON_HASH_H_
