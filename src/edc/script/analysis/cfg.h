// Per-handler control-flow graph and lexical name resolution for CoordScript.
//
// CoordScript is a structured language (if/foreach/return only), so the CFG
// is built directly from the statement tree: one node per simple statement,
// one branch node per `if` condition, one loop-head node per `foreach` (the
// loop head evaluates the list, binds the loop variable, and has a back edge
// from the body). The resolver assigns every variable *occurrence* a unique
// definition id honoring the interpreter's block scoping (a name may shadow
// an outer binding), which is what makes liveness/reaching-defs precise in
// the presence of shadowing.

#ifndef EDC_SCRIPT_ANALYSIS_CFG_H_
#define EDC_SCRIPT_ANALYSIS_CFG_H_

#include <map>
#include <string>
#include <vector>

#include "edc/script/analysis/diagnostics.h"
#include "edc/script/ast.h"

namespace edc {

// ---- Name resolution ----

struct VarInfo {
  std::string name;
  bool is_param = false;
  bool is_loop_var = false;
  int decl_line = 0;
  int decl_col = 0;
};

struct ResolvedNames {
  std::vector<VarInfo> vars;                  // indexed by variable id
  std::map<const Expr*, int> use_ids;         // kVar expr -> variable id
  std::map<const Stmt*, int> def_ids;         // let/assign/foreach stmt -> target id
  std::vector<int> param_ids;
  // Undeclared-name diagnostics (EDC-E010/E011) found while resolving. A use
  // of an undeclared name still gets a fresh id so downstream passes run.
  std::vector<Diagnostic> diags;
};

// Resolves all names in `handler`, mirroring the interpreter's scope rules.
ResolvedNames ResolveNames(const Handler& handler);

// ---- Control-flow graph ----

struct CfgNode {
  enum class Kind { kEntry, kExit, kStmt, kBranch, kLoopHead };
  Kind kind = Kind::kStmt;
  const Stmt* stmt = nullptr;  // null for entry/exit
  std::vector<int> succs;
  std::vector<int> preds;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = 0;
  int exit = 1;
  // Unreachable-after-return findings (EDC-W003), discovered structurally
  // during construction: the first dead statement of each block tail.
  std::vector<Diagnostic> diags;

  // True for every node reachable from entry (unreachable statements are kept
  // as nodes so diagnostics can point at them, but dataflow skips them).
  std::vector<bool> reachable;
};

Cfg BuildCfg(const Handler& handler);

}  // namespace edc

#endif  // EDC_SCRIPT_ANALYSIS_CFG_H_
