// Reproduces the §6.2 overhead claim: with the extensibility hooks in place
// but no extension triggered, regular read and write latency in EZK/EDS is
// within a fraction of a percent of plain ZooKeeper/DepSpace (the paper
// measured < 0.4%). The cost that remains is the per-request subscription
// check, which is also charged here.

#include "bench/common.h"

namespace edc {
namespace {

constexpr Duration kWarmup = Seconds(1);
constexpr Duration kMeasure = Seconds(4);
constexpr int kSeeds = 3;
const std::string kPayload(256, 'x');

struct Latencies {
  double read_ms = 0;
  double write_ms = 0;
  RunStats stats;
};

Latencies RunOne(SystemKind system, uint64_t seed) {
  FixtureOptions options;
  options.system = system;
  options.num_clients = 20;
  options.seed = seed;
  options.observability = true;
  CoordFixture fixture(options);
  fixture.Start();
  size_t created = 0;
  bool ready = false;
  for (size_t i = 0; i < fixture.num_clients(); ++i) {
    fixture.coord(i)->Create("/o-" + std::to_string(i), kPayload,
                             [&](Result<std::string>) {
                               if (++created == fixture.num_clients()) {
                                 ready = true;
                               }
                             });
  }
  WaitFor(fixture, ready, "objects");

  Recorder read_latency;
  Recorder write_latency;
  ClosedLoop driver(&fixture, [&](size_t i, std::function<void()> done) {
    SimTime start = fixture.loop().now();
    if (i % 2 == 0) {
      fixture.coord(i)->Read("/o-" + std::to_string(i),
                             [&, start, done = std::move(done)](Result<std::string>) {
                               read_latency.Record(fixture.loop().now() - start);
                               done();
                             });
    } else {
      fixture.coord(i)->Update("/o-" + std::to_string(i), kPayload,
                               [&, start, done = std::move(done)](Status) {
                                 write_latency.Record(fixture.loop().now() - start);
                                 done();
                               });
    }
  });
  Latencies out;
  out.stats = driver.Run(kWarmup, kMeasure);
  out.read_ms = read_latency.Mean() / 1e6;
  out.write_ms = write_latency.Mean() / 1e6;
  return out;
}

void Main() {
  BenchTable table({"system", "read_ms", "write_ms"});
  BenchJson json("ovh_regular");
  double lat[4][2] = {};
  int row = 0;
  for (SystemKind system : AllSystems()) {
    RunAggregate read_ms;
    RunAggregate write_ms;
    for (int seed = 0; seed < kSeeds; ++seed) {
      uint64_t s = 6000 + static_cast<uint64_t>(seed);
      Latencies l = RunOne(system, s);
      read_ms.Add(l.read_ms);
      write_ms.Add(l.write_ms);
      json.AddRow(system, 20, s, l.stats);
    }
    lat[row][0] = read_ms.Mean();
    lat[row][1] = write_ms.Mean();
    ++row;
    table.AddRow({SystemName(system), Fmt(read_ms.Mean(), 4), Fmt(write_ms.Mean(), 4)});
  }
  std::printf("=== §6.2: regular-operation overhead of extensibility hooks "
              "(no extensions registered) ===\n");
  table.Print();
  json.Write();
  auto pct = [](double base, double ext) {
    return base > 0 ? (ext - base) / base * 100.0 : 0.0;
  };
  std::printf("\nshape check (paper: < 0.4%% overhead):\n");
  std::printf("  EZK vs ZooKeeper: read %+.2f%%, write %+.2f%%\n", pct(lat[0][0], lat[1][0]),
              pct(lat[0][1], lat[1][1]));
  std::printf("  EDS vs DepSpace:  read %+.2f%%, write %+.2f%%\n", pct(lat[2][0], lat[3][0]),
              pct(lat[2][1], lat[3][1]));
}

}  // namespace
}  // namespace edc

int main() {
  edc::Main();
  return 0;
}
