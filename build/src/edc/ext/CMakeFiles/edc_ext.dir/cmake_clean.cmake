file(REMOVE_RECURSE
  "CMakeFiles/edc_ext.dir/ds_binding.cpp.o"
  "CMakeFiles/edc_ext.dir/ds_binding.cpp.o.d"
  "CMakeFiles/edc_ext.dir/registry.cpp.o"
  "CMakeFiles/edc_ext.dir/registry.cpp.o.d"
  "CMakeFiles/edc_ext.dir/zk_binding.cpp.o"
  "CMakeFiles/edc_ext.dir/zk_binding.cpp.o.d"
  "libedc_ext.a"
  "libedc_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
