#include "edc/common/strings.h"

#include <cstdio>
#include <cstdlib>

namespace edc {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

Status ValidatePath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status(ErrorCode::kInvalidArgument, "path must be absolute");
  }
  if (path == "/") {
    return Status::Ok();
  }
  if (path.back() == '/') {
    return Status(ErrorCode::kInvalidArgument, "path must not end with '/'");
  }
  size_t start = 1;
  while (start <= path.size()) {
    size_t pos = path.find('/', start);
    std::string_view comp = (pos == std::string_view::npos) ? path.substr(start)
                                                            : path.substr(start, pos - start);
    if (comp.empty()) {
      return Status(ErrorCode::kInvalidArgument, "empty path component");
    }
    if (comp == "." || comp == "..") {
      return Status(ErrorCode::kInvalidArgument, "relative path component");
    }
    if (pos == std::string_view::npos) {
      break;
    }
    start = pos + 1;
  }
  return Status::Ok();
}

std::string ParentPath(std::string_view path) {
  if (path == "/" || path.empty()) {
    return "";
  }
  size_t pos = path.rfind('/');
  if (pos == 0) {
    return "/";
  }
  return std::string(path.substr(0, pos));
}

std::string BaseName(std::string_view path) {
  if (path == "/" || path.empty()) {
    return "";
  }
  size_t pos = path.rfind('/');
  return std::string(path.substr(pos + 1));
}

bool PathIsUnder(std::string_view path, std::string_view prefix) {
  if (prefix == "/") {
    return !path.empty() && path[0] == '/';
  }
  if (path == prefix) {
    return true;
  }
  return path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
         path[prefix.size()] == '/';
}

std::string SequenceSuffix(uint64_t n) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%010llu", static_cast<unsigned long long>(n));
  return buf;
}

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty integer");
  }
  std::string owned(text);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return Status(ErrorCode::kInvalidArgument, "bad integer: " + owned);
  }
  return static_cast<int64_t>(v);
}

}  // namespace edc
