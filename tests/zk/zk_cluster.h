// Shared in-simulator ZooKeeper cluster fixture for zk/ext/recipes tests.

#ifndef EDC_TESTS_ZK_ZK_CLUSTER_H_
#define EDC_TESTS_ZK_ZK_CLUSTER_H_

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "edc/common/rng.h"
#include "edc/sim/costs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"
#include "edc/zk/client.h"
#include "edc/zk/server.h"

namespace edc {

class ZkCluster {
 public:
  // Server NodeIds are 1..n; clients get ids from 100 up.
  explicit ZkCluster(size_t n = 3, uint64_t seed = 11) {
    net = std::make_unique<Network>(&loop, Rng(seed), LinkParams{});
    std::vector<NodeId> members;
    for (size_t i = 1; i <= n; ++i) {
      members.push_back(static_cast<NodeId>(i));
    }
    for (NodeId id : members) {
      auto server = std::make_unique<ZkServer>(&loop, net.get(), id, members, CostModel{},
                                               ZkServerOptions{});
      net->Register(id, server.get());
      servers.push_back(std::move(server));
    }
  }

  void Start() {
    for (auto& s : servers) {
      s->Start();
    }
    Settle(Seconds(2));
  }

  ZkServer* Leader() {
    for (auto& s : servers) {
      if (s->IsLeader()) {
        return s.get();
      }
    }
    return nullptr;
  }

  ZkServer* Follower() {
    for (auto& s : servers) {
      if (s->running() && !s->IsLeader()) {
        return s.get();
      }
    }
    return nullptr;
  }

  // Creates and connects a client against `server` (default: first server).
  ZkClient* AddClient(NodeId server = 1, ZkClientOptions options = ZkClientOptions{}) {
    NodeId id = next_client_id++;
    auto client = std::make_unique<ZkClient>(&loop, net.get(), id, server, options);
    ZkClient* raw = client.get();
    clients.push_back(std::move(client));
    bool connected = false;
    raw->Connect([&](Status s) { connected = s.ok(); });
    Settle(Seconds(1));
    EXPECT_TRUE(connected) << "client failed to connect";
    return raw;
  }

  void Settle(Duration d = Millis(500)) { loop.RunUntil(loop.now() + d); }

  void CrashServer(ZkServer* s) {
    s->Crash();
    net->SetNodeUp(s->id(), false);
  }

  void RestartServer(ZkServer* s) {
    net->SetNodeUp(s->id(), true);
    s->Restart();
  }

  EventLoop loop;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<ZkServer>> servers;
  std::vector<std::unique_ptr<ZkClient>> clients;
  NodeId next_client_id = 100;
};

}  // namespace edc

#endif  // EDC_TESTS_ZK_ZK_CLUSTER_H_
