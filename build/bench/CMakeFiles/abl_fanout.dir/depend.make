# Empty dependencies file for abl_fanout.
# This may be replaced when dependencies are built.
