#include "edc/ext/ds_binding.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tests/ds/ds_cluster.h"

namespace edc {
namespace {

constexpr char kCounterExt[] = R"(
extension ctr_increment {
  on op read "/ctr-increment";
  fn read(oid) {
    let obj = read_object("/ctr");
    if (obj == null) { return error("no counter"); }
    let c = parse_int(get(obj, "data"));
    update("/ctr", str(c + 1));
    return c + 1;
  }
}
)";

constexpr char kQueueExt[] = R"(
extension queue_remove {
  on op read "/queue-head";
  fn read(oid) {
    let objs = sub_objects("/queue");
    if (len(objs) == 0) { return error("empty queue"); }
    let head = min_by(objs, "ctime");
    delete_object(get(head, "path"));
    return get(head, "data");
  }
}
)";

class EdsCluster : public DsCluster {
 public:
  explicit EdsCluster(ExtensionLimits limits = ExtensionLimits{}) {
    for (auto& server : servers) {
      managers.push_back(std::make_unique<DsExtensionManager>(server.get(), limits));
    }
  }

  std::vector<std::unique_ptr<DsExtensionManager>> managers;
};

Status RegisterAndWait(EdsCluster& cluster, DsClient* client, const std::string& name,
                       const std::string& code) {
  Status status = Status(ErrorCode::kInternal);
  client->RegisterExtension(name, code, [&](Result<DsReply> r) { status = r.status(); });
  cluster.Settle();
  return status;
}

Result<std::string> Increment(EdsCluster& cluster, DsClient* client) {
  Result<std::string> result = Status(ErrorCode::kInternal);
  client->Rdp(ObjectTemplate("/ctr-increment"), [&](Result<DsReply> r) {
    if (!r.ok()) {
      result = r.status();
    } else {
      result = r->value;
    }
  });
  cluster.Settle();
  return result;
}

TEST(EdsExtensionTest, RegistersAndExecutesCounterOnAllReplicas) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  client->Out(ObjectTuple("/ctr", "0"), [](Result<DsReply>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "ctr_increment", kCounterExt).ok());
  for (auto& mgr : cluster.managers) {
    EXPECT_TRUE(mgr->registry().Contains("ctr_increment"));
  }
  auto r1 = Increment(cluster, client);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(*r1, "1");
  EXPECT_EQ(*Increment(cluster, client), "2");
  // Deterministic execution: all four replicas converge.
  auto reference = cluster.servers[0]->space().Serialize();
  for (auto& server : cluster.servers) {
    EXPECT_EQ(server->space().Serialize(), reference);
  }
}

TEST(EdsExtensionTest, NondeterministicExtensionRejected) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  // now() is fine in EZK but must be rejected by the EDS verifier (§4.1.1:
  // active replication demands a deterministic white list).
  Status s = RegisterAndWait(cluster, client, "stamps", R"(
    extension stamps { on op read "/stamp"; fn read(oid) { return now(); } })");
  EXPECT_EQ(s.code(), ErrorCode::kExtensionRejected);
}

TEST(EdsExtensionTest, MalformedExtensionRejected) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  Status s = RegisterAndWait(cluster, client, "bad", "not a program");
  EXPECT_EQ(s.code(), ErrorCode::kExtensionRejected);
  for (auto& mgr : cluster.managers) {
    EXPECT_FALSE(mgr->registry().Contains("bad"));
  }
}

TEST(EdsExtensionTest, DuplicateRegistrationRejected) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "ctr_increment", kCounterExt).ok());
  Status again = RegisterAndWait(cluster, client, "ctr_increment", kCounterExt);
  EXPECT_EQ(again.code(), ErrorCode::kNodeExists);
}

TEST(EdsExtensionTest, AcknowledgmentGatesTriggering) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* owner = cluster.AddClient();
  DsClient* other = cluster.AddClient();
  owner->Out(ObjectTuple("/ctr", "0"), [](Result<DsReply>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, owner, "ctr_increment", kCounterExt).ok());
  // Unacknowledged: plain rdp -> kNoNode (no /ctr-increment tuple exists).
  EXPECT_EQ(Increment(cluster, other).code(), ErrorCode::kNoNode);
  Status ack = Status(ErrorCode::kInternal);
  other->AcknowledgeExtension("ctr_increment", [&](Result<DsReply> r) { ack = r.status(); });
  cluster.Settle();
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(*Increment(cluster, other), "1");
}

TEST(EdsExtensionTest, DeregistrationByOwnerOnly) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* owner = cluster.AddClient();
  DsClient* other = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, owner, "ctr_increment", kCounterExt).ok());
  Status denied = Status(ErrorCode::kInternal);
  other->DeregisterExtension("ctr_increment", [&](Result<DsReply> r) { denied = r.status(); });
  cluster.Settle();
  EXPECT_EQ(denied.code(), ErrorCode::kAccessDenied);
  Status ok = Status(ErrorCode::kInternal);
  owner->DeregisterExtension("ctr_increment", [&](Result<DsReply> r) { ok = r.status(); });
  cluster.Settle();
  EXPECT_TRUE(ok.ok());
  for (auto& mgr : cluster.managers) {
    EXPECT_FALSE(mgr->registry().Contains("ctr_increment"));
  }
}

TEST(EdsExtensionTest, QueueExtensionFifo) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "queue_remove", kQueueExt).ok());
  for (int i = 0; i < 3; ++i) {
    client->Out(ObjectTuple("/queue/e" + std::to_string(i), "p" + std::to_string(i)),
                [](Result<DsReply>) {});
    cluster.Settle(Millis(100));  // distinct ordered timestamps
  }
  cluster.Settle();
  for (int i = 0; i < 3; ++i) {
    std::string data;
    client->Rdp(ObjectTemplate("/queue-head"), [&](Result<DsReply> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      data = r->value;
    });
    cluster.Settle();
    EXPECT_EQ(data, "p" + std::to_string(i));
  }
  ErrorCode code = ErrorCode::kOk;
  client->Rdp(ObjectTemplate("/queue-head"), [&](Result<DsReply> r) { code = r.code(); });
  cluster.Settle();
  EXPECT_EQ(code, ErrorCode::kExtensionError);  // empty queue
}

TEST(EdsExtensionTest, ExtensionWritesRespectAccessControl) {
  // The state ops an extension performs pass through the access-control
  // layer above the EM (Fig. 4): a client that may not write cannot gain
  // privileges by invoking an extension (§4.1.2).
  DsServerOptions options;
  options.access.check = [](NodeId client, DsOpType type, const DsTuple*,
                            const DsTemplate*) -> Status {
    if (client == 100 && (type == DsOpType::kOut || type == DsOpType::kReplace ||
                          type == DsOpType::kCas || type == DsOpType::kInp)) {
      return Status(ErrorCode::kAccessDenied, "read-only client");
    }
    return Status::Ok();
  };
  EdsCluster cluster;
  // Rebuild servers with the restrictive ACL.
  cluster.servers.clear();
  cluster.managers.clear();
  for (NodeId id : cluster.members) {
    auto server = std::make_unique<DsServer>(&cluster.loop, cluster.net.get(), id,
                                             cluster.members, CostModel{}, options);
    cluster.net->Register(id, server.get());
    cluster.servers.push_back(std::move(server));
  }
  for (auto& server : cluster.servers) {
    cluster.managers.push_back(
        std::make_unique<DsExtensionManager>(server.get(), ExtensionLimits{}));
  }
  cluster.Start();
  DsClient* readonly = cluster.AddClient();  // id 100
  DsClient* writer = cluster.AddClient();    // id 101
  writer->Out(ObjectTuple("/ctr", "0"), [](Result<DsReply>) {});
  cluster.Settle();
  ASSERT_TRUE(RegisterAndWait(cluster, readonly, "ctr_increment", kCounterExt).ok());
  auto result = Increment(cluster, readonly);
  EXPECT_EQ(result.code(), ErrorCode::kExtensionError);  // update() was denied
  // Counter unchanged.
  EXPECT_EQ(FieldToString(
                (*cluster.servers[0]->space().Rdp(ObjectTemplate("/ctr")))[1]),
            "0");
}

TEST(EdsExtensionTest, BlockingExtensionDefersReply) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* waiter = cluster.AddClient();
  DsClient* creator = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, waiter, "gate", R"(
    extension gate {
      on op block "/gate/*";
      fn block(oid) {
        block("/gate-open");
        return null;
      }
    })").ok());
  bool unblocked = false;
  waiter->Rd(ObjectTemplate("/gate/w1"), [&](Result<DsReply> r) { unblocked = r.ok(); });
  cluster.Settle();
  EXPECT_FALSE(unblocked);
  creator->Out(ObjectTuple("/gate-open", ""), [](Result<DsReply>) {});
  cluster.Settle();
  EXPECT_TRUE(unblocked);
}

TEST(EdsExtensionTest, EventExtensionReactsToLeaseExpiry) {
  EdsCluster cluster;
  cluster.Start();
  DsClientOptions mortal_opts;
  mortal_opts.lease = Millis(400);
  mortal_opts.renew_interval = Millis(150);
  DsClient* mortal = cluster.AddClient(mortal_opts);
  DsClient* observer = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, observer, "obituary", R"(
    extension obituary {
      on event deleted "/alive/*";
      fn on_deleted(oid) {
        create("/dead" + substr(oid, 6, len(oid) - 6), "");
        return null;
      }
    })").ok());
  mortal->OutLease(ObjectTuple("/alive/m", ""), [](Result<DsReply>) {});
  cluster.Settle(Seconds(1));
  mortal->Kill();
  // Observer polling drives deterministic expiry and the event extension.
  for (int i = 0; i < 10; ++i) {
    observer->Rdp(ObjectTemplate("/dead/m"), [](Result<DsReply>) {});
    cluster.Settle(Millis(200));
  }
  EXPECT_TRUE(cluster.servers[0]->space().HasMatch(ObjectTemplate("/dead/m")));
  EXPECT_FALSE(cluster.servers[0]->space().HasMatch(ObjectTemplate("/alive/m")));
}

TEST(EdsExtensionTest, UnblockedVetoReblocksOperation) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* waiter = cluster.AddClient();
  DsClient* writer = cluster.AddClient();
  // Veto unblocks while a /hold marker exists.
  ASSERT_TRUE(RegisterAndWait(cluster, waiter, "traffic_light", R"(
    extension traffic_light {
      on event unblocked "/work/*";
      fn on_unblocked(oid) {
        if (exists("/hold")) { return false; }
        return true;
      }
    })").ok());
  writer->Out(ObjectTuple("/hold", ""), [](Result<DsReply>) {});
  cluster.Settle();
  bool done = false;
  waiter->Rd(ObjectTemplate("/work/item"), [&](Result<DsReply> r) { done = r.ok(); });
  cluster.Settle();
  writer->Out(ObjectTuple("/work/item", ""), [](Result<DsReply>) {});
  cluster.Settle();
  EXPECT_FALSE(done);  // vetoed: /hold exists
  writer->Inp(ObjectTemplate("/hold"), [](Result<DsReply>) {});
  cluster.Settle();
  // Releasing the hold alone does not re-trigger; the next matching out does.
  writer->Out(ObjectTuple("/work/item", "2"), [](Result<DsReply>) {});
  cluster.Settle();
  EXPECT_TRUE(done);
}

TEST(EdsExtensionTest, ExtensionsReloadAfterFullClusterRestart) {
  EdsCluster cluster;
  cluster.Start();
  DsClient* client = cluster.AddClient();
  ASSERT_TRUE(RegisterAndWait(cluster, client, "ctr_increment", kCounterExt).ok());
  // NOTE: DS replicas have no state transfer (documented scope); restart the
  // whole ensemble to exercise OnStateReloaded from an empty space, then
  // re-register.
  for (auto& server : cluster.servers) {
    server->Crash();
  }
  for (auto& server : cluster.servers) {
    server->Restart();
  }
  for (auto& mgr : cluster.managers) {
    EXPECT_FALSE(mgr->registry().Contains("ctr_increment"));
  }
  ASSERT_TRUE(RegisterAndWait(cluster, client, "ctr_increment", kCounterExt).ok());
  for (auto& mgr : cluster.managers) {
    EXPECT_TRUE(mgr->registry().Contains("ctr_increment"));
  }
}

}  // namespace
}  // namespace edc
