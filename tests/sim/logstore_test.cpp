#include "edc/logstore/logstore.h"

#include <gtest/gtest.h>

namespace edc {
namespace {

std::vector<uint8_t> Rec(uint8_t tag, size_t n = 8) { return std::vector<uint8_t>(n, tag); }

TEST(LogStoreTest, AppendBecomesDurableAfterFsync) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  bool durable = false;
  log.Append(Rec(1), [&] { durable = true; });
  EXPECT_FALSE(durable);
  EXPECT_TRUE(log.records().empty());
  loop.Run();
  EXPECT_TRUE(durable);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0], Rec(1));
}

TEST(LogStoreTest, GroupCommitBatchesConcurrentAppends) {
  EventLoop loop;
  LogStoreConfig cfg;
  cfg.group_commit_window = Micros(100);
  LogStore log(&loop, cfg);
  int durable = 0;
  for (int i = 0; i < 10; ++i) {
    log.Append(Rec(static_cast<uint8_t>(i)), [&] { ++durable; });
  }
  loop.Run();
  EXPECT_EQ(durable, 10);
  EXPECT_EQ(log.syncs(), 1);  // one shared fsync
}

TEST(LogStoreTest, SeparatedAppendsSyncSeparately) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  log.Append(Rec(1), nullptr);
  loop.Run();
  log.Append(Rec(2), nullptr);
  loop.Run();
  EXPECT_EQ(log.syncs(), 2);
  EXPECT_EQ(log.records().size(), 2u);
}

TEST(LogStoreTest, DurabilityOrderMatchesAppendOrder) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  std::vector<int> order;
  log.Append(Rec(1), [&] { order.push_back(1); });
  log.Append(Rec(2), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(log.records()[0], Rec(1));
  EXPECT_EQ(log.records()[1], Rec(2));
}

TEST(LogStoreTest, DropUnsyncedLosesPendingAppends) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  bool durable = false;
  log.Append(Rec(1), [&] { durable = true; });
  log.DropUnsynced();  // crash before fsync
  loop.Run();
  EXPECT_FALSE(durable);
  EXPECT_TRUE(log.records().empty());
}

TEST(LogStoreTest, TruncateDropsTail) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  for (uint8_t i = 0; i < 5; ++i) {
    log.Append(Rec(i), nullptr);
  }
  loop.Run();
  log.Truncate(2);
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[1], Rec(1));
}

TEST(LogStoreTest, DropHeadCompacts) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  for (uint8_t i = 0; i < 5; ++i) {
    log.Append(Rec(i), nullptr);
  }
  loop.Run();
  log.DropHead(3);
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0], Rec(3));
  log.DropHead(99);
  EXPECT_TRUE(log.records().empty());
}

TEST(LogStoreTest, AppendAfterCrashStartsFreshBatch) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  log.Append(Rec(1), nullptr);
  log.DropUnsynced();
  bool durable = false;
  log.Append(Rec(2), [&] { durable = true; });
  loop.Run();
  EXPECT_TRUE(durable);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0], Rec(2));
}

// Builds a durable log with records of varying sizes and returns it.
void FillLog(EventLoop* loop, LogStore* log, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    log->Append(Rec(static_cast<uint8_t>(i + 1), 3 + 2 * i), nullptr);
  }
  loop->Run();
}

TEST(LogStoreTest, ImageRoundTrips) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  FillLog(&loop, &log, 4);
  std::vector<uint8_t> image = log.SerializeImage();

  EventLoop loop2;
  LogStore restored(&loop2, LogStoreConfig{});
  Result<size_t> n = restored.RestoreImage(image);
  ASSERT_TRUE(n.status().ok()) << n.status().ToString();
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(restored.records(), log.records());
}

TEST(LogStoreTest, EmptyImageRestoresEmptyLog) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  FillLog(&loop, &log, 2);
  Result<size_t> n = log.RestoreImage({});
  ASSERT_TRUE(n.status().ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_TRUE(log.records().empty());
}

// Crash-point sweep: truncate the serialized image at EVERY byte boundary
// within the last record (header and payload alike) and assert recovery
// always lands on the clean three-record prefix — a torn trailing write must
// never surface a partial record or reject the intact history before it.
TEST(LogStoreTest, TruncatedImageRecoversCleanPrefixAtEveryByte) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  FillLog(&loop, &log, 4);
  std::vector<uint8_t> image = log.SerializeImage();

  // Size of the image up to (not including) the last record's frame.
  EventLoop loop3;
  LogStore prefix_log(&loop3, LogStoreConfig{});
  FillLog(&loop3, &prefix_log, 3);
  size_t prefix_bytes = prefix_log.SerializeImage().size();
  ASSERT_LT(prefix_bytes, image.size());

  std::vector<std::vector<uint8_t>> expected(log.records().begin(),
                                             log.records().begin() + 3);
  for (size_t cut = prefix_bytes; cut < image.size(); ++cut) {
    std::vector<uint8_t> torn(image.begin(), image.begin() + static_cast<ptrdiff_t>(cut));
    EventLoop loop2;
    LogStore restored(&loop2, LogStoreConfig{});
    Result<size_t> n = restored.RestoreImage(torn);
    ASSERT_TRUE(n.status().ok()) << "cut at byte " << cut << ": " << n.status().ToString();
    EXPECT_EQ(*n, 3u) << "cut at byte " << cut;
    EXPECT_EQ(restored.records(), expected) << "cut at byte " << cut;
  }

  // The untruncated image still restores all four.
  EventLoop loop4;
  LogStore full(&loop4, LogStoreConfig{});
  Result<size_t> n = full.RestoreImage(image);
  ASSERT_TRUE(n.status().ok());
  EXPECT_EQ(*n, 4u);
}

// A complete record whose payload was corrupted (not truncated) must be
// rejected outright with kDecodeError, leaving the store untouched.
TEST(LogStoreTest, CorruptedImageRejectedCleanly) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  FillLog(&loop, &log, 3);
  std::vector<uint8_t> image = log.SerializeImage();
  image.back() ^= 0xff;  // flip a payload byte of the last (complete) record

  EventLoop loop2;
  LogStore restored(&loop2, LogStoreConfig{});
  FillLog(&loop2, &restored, 1);
  std::vector<std::vector<uint8_t>> before = restored.records();
  Result<size_t> n = restored.RestoreImage(image);
  ASSERT_FALSE(n.status().ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kDecodeError);
  EXPECT_EQ(restored.records(), before);  // store unchanged on rejection
}

// Corrupting a length header either tears the tail (length now runs past the
// image) or breaks the checksum; both paths must stay clean — no crash, no
// partial record, store contents either the clean prefix or unchanged.
TEST(LogStoreTest, CorruptedLengthHeaderHandledCleanly) {
  EventLoop loop;
  LogStore log(&loop, LogStoreConfig{});
  FillLog(&loop, &log, 3);
  std::vector<uint8_t> image = log.SerializeImage();

  // First record frame starts at 0; corrupt its length's high byte so the
  // declared length exceeds the image.
  std::vector<uint8_t> oversized = image;
  oversized[3] = 0xff;
  EventLoop loop2;
  LogStore a(&loop2, LogStoreConfig{});
  Result<size_t> na = a.RestoreImage(oversized);
  ASSERT_TRUE(na.status().ok());  // torn tail: clean (empty) prefix
  EXPECT_EQ(*na, 0u);

  // Corrupt the low byte so the first record's payload is misframed; the
  // checksum catches it.
  std::vector<uint8_t> misframed = image;
  misframed[0] ^= 0x01;
  EventLoop loop3;
  LogStore b(&loop3, LogStoreConfig{});
  Result<size_t> nb = b.RestoreImage(misframed);
  if (nb.status().ok()) {
    // Only acceptable if the misframing happened to look like a torn tail.
    EXPECT_LT(*nb, 3u);
  } else {
    EXPECT_EQ(nb.status().code(), ErrorCode::kDecodeError);
  }
}

}  // namespace
}  // namespace edc
