# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("edc/common")
subdirs("edc/sim")
subdirs("edc/logstore")
subdirs("edc/script")
subdirs("edc/zab")
subdirs("edc/bft")
subdirs("edc/zk")
subdirs("edc/ds")
subdirs("edc/ext")
subdirs("edc/recipes")
subdirs("edc/harness")
