// §7.2 use case: file-system metadata on a coordination service (SCFS).
// Objects are files/directories; renaming a directory must atomically update
// the directory object and every child's parent pointer — POSIX rename
// semantics that are impossible to retain with client-side operations alone.
// The scfs_rename extension performs the whole move in one RPC (instead of
// k+1 RPCs for k children, and atomically).
//
// Runs on EXTENSIBLE DEPSPACE, matching the paper's SCFS deployment.

#include <cstdio>
#include <string>

#include "edc/harness/fixture.h"
#include "edc/recipes/scripts.h"

using namespace edc;  // NOLINT: example brevity

namespace {

void Await(CoordFixture& fixture, const bool& flag) {
  while (!flag) {
    fixture.Settle(Millis(100));
  }
}

}  // namespace

int main() {
  FixtureOptions options;
  options.system = SystemKind::kExtensibleDepSpace;
  options.num_clients = 1;
  CoordFixture fixture(options);
  fixture.Start();
  CoordClient* fs = fixture.coord(0);

  // Register the rename hook (the modification SCFS needed DepSpace source
  // changes for; here it is a dynamically loaded extension).
  bool registered = false;
  fs->RegisterExtension("scfs_rename", kRenameExtension, [&](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    registered = true;
  });
  Await(fixture, registered);

  // Build a small directory tree: /home/alice with three files, plus the
  // rename trigger object.
  int created = 0;
  auto mk = [&](const std::string& path, const std::string& data) {
    fs->Create(path, data, [&](Result<std::string>) { ++created; });
  };
  mk("/scfs-rename", "");
  mk("/home", "dir");
  mk("/home/alice", "dir");
  mk("/home/alice/notes.txt", "todo: run benchmarks");
  mk("/home/alice/paper.tex", "\\documentclass{article}");
  mk("/home/alice/data.csv", "a,b,c");
  while (created < 6) {
    fixture.Settle(Millis(100));
  }
  std::printf("created /home/alice with 3 files\n");

  // POSIX rename: mv /home/alice /home/bob — ONE update RPC, atomic.
  bool renamed = false;
  fs->Update("/scfs-rename", "/home/alice|/home/bob", [&](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "rename failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    renamed = true;
  });
  Await(fixture, renamed);
  std::printf("renamed /home/alice -> /home/bob in one atomic RPC\n\n");

  // Verify: old names gone, new names carry the data.
  struct Check {
    const char* path;
    bool expect;
  };
  Check checks[] = {
      {"/home/alice", false},          {"/home/alice/notes.txt", false},
      {"/home/bob", true},             {"/home/bob/notes.txt", true},
      {"/home/bob/paper.tex", true},   {"/home/bob/data.csv", true},
  };
  int verified = 0;
  for (const Check& check : checks) {
    fs->Read(check.path, [&, check](Result<std::string> r) {
      bool exists = r.ok();
      std::printf("  %-24s %s\n", check.path, exists ? "exists" : "gone");
      if (exists == check.expect) {
        ++verified;
      }
    });
  }
  while (verified < 6) {
    fixture.Settle(Millis(100));
  }
  std::printf("\nPOSIX rename semantics retained; RPCs: 1 instead of k+1=4.\n");
  return 0;
}
