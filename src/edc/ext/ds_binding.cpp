#include "edc/ext/ds_binding.h"

#include <utility>

#include "edc/common/logging.h"
#include "edc/common/strings.h"
#include "edc/script/builtins.h"
#include "edc/script/parser.h"

namespace edc {

namespace {

constexpr char kEmRoot[] = "/em";
constexpr Duration kMonitorLease = Seconds(2);

// EDS service-API white list: strictly deterministic (§4.1.1).
const std::map<std::string, bool>& DsHostFunctions() {
  static const auto* kFns = new std::map<std::string, bool>{
      {"create", true},        {"create_ephemeral", true}, {"delete_object", true},
      {"update", true},        {"cas", true},              {"read_object", true},
      {"exists", true},        {"children", true},         {"sub_objects", true},
      {"block", true},         {"monitor", true},          {"client_id", true},
  };
  return *kFns;
}

Status HostArity(const std::string& name, const std::vector<Value>& args, size_t n) {
  if (args.size() != n) {
    return ScriptError(name + " expects " + std::to_string(n) + " argument(s)");
  }
  return Status::Ok();
}

Status HostWantStr(const std::string& name, const Value& v) {
  if (!v.is_str()) {
    return ScriptError(name + ": expected str argument");
  }
  return Status::Ok();
}

std::string TuplePath(const DsTuple& tuple) {
  if (!tuple.empty() && std::holds_alternative<std::string>(tuple[0])) {
    return std::get<std::string>(tuple[0]);
  }
  return "";
}

Value EntryToValue(const DsEntry& entry) {
  std::string data;
  if (entry.tuple.size() > 1) {
    data = FieldToString(entry.tuple[1]);
  }
  return Value::Map({{"path", Value(TuplePath(entry.tuple))},
                     {"data", Value(std::move(data))},
                     {"ctime", Value(entry.ctime)},
                     {"owner", Value(static_cast<int64_t>(entry.owner))}});
}

// State proxy over a DsExecContext: access control is enforced by the upper
// layers the context calls through (Fig. 4), plus sandbox resource budgets.
class DsScriptHost : public ScriptHost {
 public:
  DsScriptHost(DsExecContext* ctx, const ExtensionLimits& limits)
      : ctx_(ctx), limits_(limits) {}

  bool blocked() const { return blocked_; }

  bool HasFunction(const std::string& name) const override {
    return DsHostFunctions().count(name) > 0;
  }

  Result<Value> Call(const std::string& name, std::vector<Value>& args) override {
    if (name == "client_id") {
      return Value(std::to_string(ctx_->client()));
    }
    if (ctx_->state_ops() >= limits_.max_state_ops) {
      return Status(ErrorCode::kExtensionLimit, "state-operation budget exceeded");
    }
    if (name == "read_object") {
      if (auto s = Check1Path(name, args); !s.ok()) {
        return s;
      }
      auto entries = ctx_->RdAll(ObjectTemplate(args[0].AsStr()));
      if (entries.empty()) {
        return Value();
      }
      return EntryToValue(entries.front());
    }
    if (name == "exists") {
      if (auto s = Check1Path(name, args); !s.ok()) {
        return s;
      }
      return Value(!ctx_->RdAll(ObjectTemplate(args[0].AsStr())).empty());
    }
    if (name == "sub_objects") {
      if (auto s = Check1Path(name, args); !s.ok()) {
        return s;
      }
      // Collection cap (§4.1.2): the static cost pass bounds foreach loops
      // over these results by max_collection_items, so the runtime must
      // never hand back more.
      ValueList objs;
      for (const DsEntry& e : ctx_->RdAll(ObjectPrefixTemplate(args[0].AsStr()))) {
        if (objs.size() >= limits_.max_collection_items) {
          break;
        }
        objs.push_back(EntryToValue(e));
      }
      return Value::List(std::move(objs));
    }
    if (name == "children") {
      if (auto s = Check1Path(name, args); !s.ok()) {
        return s;
      }
      const std::string& parent = args[0].AsStr();
      ValueList names;
      for (const DsEntry& e : ctx_->RdAll(ObjectPrefixTemplate(parent))) {
        if (names.size() >= limits_.max_collection_items) {
          break;
        }
        std::string path = TuplePath(e.tuple);
        if (ParentPath(path) == parent) {
          names.emplace_back(BaseName(path));
        }
      }
      return Value::List(std::move(names));
    }
    if (name == "create" || name == "create_ephemeral" || name == "monitor") {
      bool is_monitor = name == "monitor";
      if (auto s = HostArity(name, args, 2); !s.ok()) {
        return s;
      }
      const size_t path_arg = is_monitor ? 1 : 0;
      if (auto s = HostWantStr(name, args[path_arg]); !s.ok()) {
        return s;
      }
      if (auto s = CheckCreateBudget(); !s.ok()) {
        return s;
      }
      const std::string& path = args[path_arg].AsStr();
      if (PathIsUnder(path, kEmRoot)) {
        return ScriptError("extensions may not touch the /em namespace");
      }
      std::string data = args[is_monitor ? 0 : 1].ToString();
      Duration lease =
          (name == "create_ephemeral" || is_monitor) ? kMonitorLease : Duration{0};
      Status s = ctx_->Cas(ObjectTemplate(path), ObjectTuple(path, data), lease);
      if (!s.ok()) {
        return ScriptError(s.ToString());
      }
      ++created_;
      return Value(path);
    }
    if (name == "delete_object") {
      if (auto s = Check1Path(name, args); !s.ok()) {
        return s;
      }
      if (PathIsUnder(args[0].AsStr(), kEmRoot)) {
        return ScriptError("extensions may not touch the /em namespace");
      }
      auto removed = ctx_->Inp(ObjectTemplate(args[0].AsStr()));
      if (!removed.ok()) {
        return ScriptError(removed.status().ToString());
      }
      return Value(true);
    }
    if (name == "update") {
      if (auto s = HostArity(name, args, 2); !s.ok()) {
        return s;
      }
      if (auto s = HostWantStr(name, args[0]); !s.ok()) {
        return s;
      }
      const std::string& path = args[0].AsStr();
      if (PathIsUnder(path, kEmRoot)) {
        return ScriptError("extensions may not touch the /em namespace");
      }
      Status s = ctx_->Replace(ObjectTemplate(path), ObjectTuple(path, args[1].ToString()));
      if (!s.ok()) {
        return ScriptError(s.ToString());
      }
      return Value(true);
    }
    if (name == "cas") {
      if (auto s = HostArity(name, args, 3); !s.ok()) {
        return s;
      }
      if (auto s = HostWantStr(name, args[0]); !s.ok()) {
        return s;
      }
      const std::string& path = args[0].AsStr();
      DsTemplate expect{DsTField::Exact(DsField{path}),
                        DsTField::Exact(DsField{args[1].ToString()})};
      Status s = ctx_->Replace(expect, ObjectTuple(path, args[2].ToString()));
      return Value(s.ok());
    }
    if (name == "block") {
      if (auto s = Check1Path(name, args); !s.ok()) {
        return s;
      }
      const std::string& path = args[0].AsStr();
      auto entries = ctx_->RdAll(ObjectTemplate(path));
      if (!entries.empty()) {
        return EntryToValue(entries.front());
      }
      ctx_->Block(ObjectTemplate(path), /*consume=*/false);
      blocked_ = true;
      return Value();
    }
    return ScriptError("unknown host function '" + name + "'");
  }

 private:
  Status Check1Path(const std::string& name, const std::vector<Value>& args) const {
    if (auto s = HostArity(name, args, 1); !s.ok()) {
      return s;
    }
    return HostWantStr(name, args[0]);
  }

  Status CheckCreateBudget() const {
    if (created_ >= limits_.max_created_objects) {
      return Status(ErrorCode::kExtensionLimit, "object-creation budget exceeded");
    }
    return Status::Ok();
  }

  DsExecContext* ctx_;
  const ExtensionLimits& limits_;
  size_t created_ = 0;
  bool blocked_ = false;
};

// Read-only host for on_unblocked veto handlers: no state mutation allowed.
class DsReadOnlyHost : public ScriptHost {
 public:
  DsReadOnlyHost(const TupleSpace* space, NodeId client, size_t max_items)
      : space_(space), client_(client), max_items_(max_items) {}

  bool HasFunction(const std::string& name) const override {
    return name == "read_object" || name == "exists" || name == "sub_objects" ||
           name == "children" || name == "client_id";
  }

  Result<Value> Call(const std::string& name, std::vector<Value>& args) override {
    if (name == "client_id") {
      return Value(std::to_string(client_));
    }
    if (args.size() != 1 || !args[0].is_str()) {
      return ScriptError(name + ": expected one str argument");
    }
    const std::string& path = args[0].AsStr();
    if (name == "read_object") {
      auto entries = space_->RdAll(ObjectTemplate(path));
      return entries.empty() ? Value() : EntryToValue(entries.front());
    }
    if (name == "exists") {
      return Value(space_->HasMatch(ObjectTemplate(path)));
    }
    ValueList out;
    for (const DsEntry& e : space_->RdAll(ObjectPrefixTemplate(path))) {
      if (out.size() >= max_items_) {
        break;
      }
      if (name == "children") {
        std::string p = TuplePath(e.tuple);
        if (ParentPath(p) == path) {
          out.emplace_back(BaseName(p));
        }
      } else {
        out.push_back(EntryToValue(e));
      }
    }
    return Value::List(std::move(out));
  }

 private:
  const TupleSpace* space_;
  NodeId client_;
  size_t max_items_;
};

Status CheckSubscriptionsOutsideEm(const Program& program) {
  for (const Subscription& sub : program.subscriptions) {
    if (sub.pattern == kEmRoot || PathIsUnder(sub.pattern, kEmRoot)) {
      return Status(ErrorCode::kExtensionRejected,
                    "subscriptions may not target the /em namespace");
    }
  }
  return Status::Ok();
}

}  // namespace

DsExtensionManager::DsExtensionManager(DsServer* server, ExtensionLimits limits)
    : server_(server), limits_(limits) {
  verifier_config_.allowed_functions = CoreAllowedFunctions();
  for (const auto& [name, deterministic] : DsHostFunctions()) {
    verifier_config_.allowed_functions[name] = deterministic;
  }
  // Active replication: every replica executes every extension, so the white
  // list must be fully deterministic (§4.1.1).
  verifier_config_.require_deterministic = true;
  // Certification (§4.2): proven-bounded handlers run with metering elided.
  verifier_config_.certify_max_steps = limits_.max_steps;
  verifier_config_.collection_functions = {"children", "sub_objects"};
  verifier_config_.max_collection_items = limits_.max_collection_items;
  // Seed the analyzer's input/value-size assumptions from the actual runtime
  // limits (see zk_binding.cpp for the rationale).
  verifier_config_.max_input_bytes = limits_.max_input_bytes;
  verifier_config_.max_value_bytes = limits_.max_value_bytes;
  server_->SetHooks(this);
}

std::string DsExtensionManager::KindOf(const DsOp& op) {
  switch (op.type) {
    case DsOpType::kRdp:
    case DsOpType::kRdAll:
      return "read";
    case DsOpType::kRd:
    case DsOpType::kIn:
      return "block";
    case DsOpType::kOut:
    case DsOpType::kCas:
      return "create";
    case DsOpType::kInp:
      return "delete";
    case DsOpType::kReplace: {
      // A replace whose template pins the old content is the conditional
      // update (Table 2's cas); otherwise it is a plain update.
      if (op.templ.size() > 1 && op.templ[1].kind == DsTField::Kind::kExact) {
        return "cas";
      }
      return "update";
    }
    case DsOpType::kRenew:
    case DsOpType::kSetMapVersion:
      return "";
  }
  return "";
}

std::string DsExtensionManager::PathOf(const DsOp& op) {
  std::string path = TuplePath(op.tuple);
  if (!path.empty()) {
    return path;
  }
  if (!op.templ.empty() && op.templ[0].kind != DsTField::Kind::kAny &&
      std::holds_alternative<std::string>(op.templ[0].value)) {
    return std::get<std::string>(op.templ[0].value);
  }
  return "";
}

bool DsExtensionManager::MatchesOperation(NodeId client, const DsOp& op) const {
  std::string path = PathOf(op);
  if (PathIsUnder(path, kEmRoot)) {
    return true;  // extension-manager traffic is always ours
  }
  std::string kind = KindOf(op);
  if (kind.empty() || path.empty()) {
    return false;
  }
  return registry_.MatchOperation(client, kind, path) != nullptr;
}

DsExecOutcome DsExtensionManager::HandleOperation(DsExecContext* ctx, NodeId client,
                                                  const DsOp& op) {
  std::string path = PathOf(op);
  if (PathIsUnder(path, kEmRoot)) {
    return HandleEmTraffic(ctx, client, op);
  }
  const LoadedExtension* ext = registry_.MatchOperation(client, KindOf(op), path);
  if (ext == nullptr) {
    return DsExecOutcome{};
  }
  return RunOperationExtension(*ext, ctx, client, op);
}

DsExecOutcome DsExtensionManager::HandleEmTraffic(DsExecContext* ctx, NodeId client,
                                                  const DsOp& op) {
  DsExecOutcome outcome;
  outcome.handled = true;
  std::string path = PathOf(op);

  if (op.type == DsOpType::kOut && ParentPath(path) == kEmRoot) {
    // Registration.
    std::string source = op.tuple.size() > 1 ? FieldToString(op.tuple[1]) : "";
    outcome.cpu_cost += static_cast<Duration>(source.size()) *
                        CostModel{}.ext_verify_cpu_per_byte;
    if (server_->space().HasMatch(ObjectTemplate(path))) {
      outcome.status = Status(ErrorCode::kNodeExists, path);
      return outcome;
    }
    auto program = ParseProgram(source);
    if (!program.ok()) {
      outcome.status = program.status();
      return outcome;
    }
    if (auto s = VerifyProgram(**program, verifier_config_); !s.ok()) {
      outcome.status = s;
      return outcome;
    }
    if (auto s = CheckSubscriptionsOutsideEm(**program); !s.ok()) {
      outcome.status = s;
      return outcome;
    }
    ctx->PrivilegedOut(ObjectTuple(path, EncodeRegistration(client, source)));
    Status s = registry_.Load(BaseName(path), client, source, verifier_config_);
    if (!s.ok()) {
      outcome.status = s;
      return outcome;
    }
    if (Obs* obs = server_->obs()) {
      LoadedExtension* loaded = registry_.Find(BaseName(path));
      if (loaded != nullptr && loaded->compiled != nullptr) {
        obs->metrics.GetCounter("ext.compiled")
            ->Add(static_cast<int64_t>(loaded->compiled->handlers.size()));
      }
    }
    outcome.has_result = true;
    return outcome;
  }

  if (op.type == DsOpType::kOut && BaseName(ParentPath(path)) == "ack") {
    // Acknowledgment: /em/<name>/ack/<client>.
    std::string name = BaseName(ParentPath(ParentPath(path)));
    if (registry_.Find(name) == nullptr) {
      outcome.status = Status(ErrorCode::kNoNode, "no extension '" + name + "'");
      return outcome;
    }
    ctx->PrivilegedOut(ObjectTuple(path, std::to_string(client)));
    registry_.RecordAck(name, client);
    outcome.has_result = true;
    return outcome;
  }

  if (op.type == DsOpType::kInp && ParentPath(path) == kEmRoot) {
    // Deregistration: owner only.
    std::string name = BaseName(path);
    LoadedExtension* ext = registry_.Find(name);
    if (ext == nullptr) {
      outcome.status = Status(ErrorCode::kNoNode, path);
      return outcome;
    }
    if (ext->owner != client) {
      outcome.status =
          Status(ErrorCode::kAccessDenied, "only the registering client may deregister");
      return outcome;
    }
    (void)ctx->PrivilegedInp(ObjectTemplate(path));
    while (ctx->PrivilegedInp(ObjectPrefixTemplate(path)).ok()) {
    }
    registry_.Unload(name);
    outcome.has_result = true;
    return outcome;
  }

  outcome.status = Status(ErrorCode::kAccessDenied, "extension-manager namespace");
  return outcome;
}

DsExecOutcome DsExtensionManager::RunOperationExtension(const LoadedExtension& ext,
                                                        DsExecContext* ctx, NodeId client,
                                                        const DsOp& op) {
  DsExecOutcome outcome;
  outcome.handled = true;

  std::string kind = KindOf(op);
  std::string path = PathOf(op);
  const char* handler = OpHandlerFor(kind);
  std::string handler_name;
  std::vector<Value> args;
  if (handler != nullptr && ext.program->handlers.count(handler) > 0) {
    handler_name = handler;
    args.emplace_back(path);
    if (kind == "create" || kind == "update" || kind == "cas") {
      args.emplace_back(op.tuple.size() > 1 ? FieldToString(op.tuple[1]) : "");
    }
  } else {
    handler_name = "handle_op";
    args.push_back(Value::Map({{"type", Value(kind)},
                               {"path", Value(path)},
                               {"data", Value(op.tuple.size() > 1
                                                  ? FieldToString(op.tuple[1])
                                                  : "")}}));
  }

  DsScriptHost host(ctx, limits_);
  HandlerRun run = RunExtensionHandler(ext, handler_name, std::move(args), &host, limits_);
  const Result<Value>& result = run.result;

  CostModel costs;
  outcome.cpu_cost = costs.ext_invoke_cpu + run.steps_used * costs.ext_step_cpu;
  if (Obs* obs = server_->obs()) {
    obs->metrics.GetCounter("ext.invocations")->Increment();
    obs->metrics.GetCounter("ext.steps")->Add(run.steps_used);
    if (run.certified) {
      obs->metrics.GetCounter("ext.certified")->Increment();
    }
    if (!run.metered) {
      obs->metrics.GetCounter("ext.metering_elided")->Increment();
    }
    if (run.vm_dispatched) {
      obs->metrics.GetCounter("ext.vm_dispatches")->Increment();
    }
  }

  if (!result.ok()) {
    outcome.status = result.status();
    if (registry_.RecordStrike(ext.name, limits_.strike_limit)) {
      // Deterministic eviction: every replica executes this identically.
      std::string em_path = std::string(kEmRoot) + "/" + ext.name;
      (void)ctx->PrivilegedInp(ObjectTemplate(em_path));
      while (ctx->PrivilegedInp(ObjectPrefixTemplate(em_path)).ok()) {
      }
      registry_.Unload(ext.name);
      EDC_LOG(kWarn) << "evicted misbehaving extension '" << ext.name << "'";
    }
    return outcome;
  }
  if (host.blocked()) {
    outcome.deferred = true;
  } else {
    outcome.has_result = true;
    outcome.result = result->is_null() ? "" : result->ToString();
  }
  return outcome;
}

void DsExtensionManager::DispatchEvents(DsExecContext* ctx,
                                        const std::vector<DsEvent>& events) {
  for (const DsEvent& event : events) {
    std::string path = TuplePath(event.tuple);
    if (path.empty() || PathIsUnder(path, kEmRoot)) {
      continue;
    }
    std::string kind;
    switch (event.type) {
      case DsEvent::Type::kCreated:
        kind = "created";
        break;
      case DsEvent::Type::kDeleted:
        kind = "deleted";
        break;
      case DsEvent::Type::kChanged:
        kind = "changed";
        break;
    }
    for (LoadedExtension* ext : registry_.MatchEvent(kind, path)) {
      RunEventExtension(ext, ctx, kind, path);
    }
  }
}

void DsExtensionManager::RunEventExtension(LoadedExtension* ext, DsExecContext* ctx,
                                           const std::string& kind, const std::string& path) {
  const char* handler = EventHandlerFor(kind);
  std::string handler_name =
      (handler != nullptr && ext->program->handlers.count(handler) > 0) ? handler
                                                                        : "handle_event";
  if (ext->program->handlers.count(handler_name) == 0) {
    return;
  }
  DsScriptHost host(ctx, limits_);
  std::vector<Value> args;
  args.emplace_back(path);
  HandlerRun run = RunExtensionHandler(*ext, handler_name, std::move(args), &host, limits_);
  const Result<Value>& result = run.result;
  if (Obs* obs = server_->obs()) {
    obs->metrics.GetCounter("ext.invocations")->Increment();
    obs->metrics.GetCounter("ext.steps")->Add(run.steps_used);
    if (run.certified) {
      obs->metrics.GetCounter("ext.certified")->Increment();
    }
    if (!run.metered) {
      obs->metrics.GetCounter("ext.metering_elided")->Increment();
    }
    if (run.vm_dispatched) {
      obs->metrics.GetCounter("ext.vm_dispatches")->Increment();
    }
  }
  if (!result.ok()) {
    EDC_LOG(kDebug) << "event extension '" << ext->name
                    << "' failed: " << result.status().ToString();
    registry_.RecordStrike(ext->name, limits_.strike_limit);
  }
}

bool DsExtensionManager::AllowUnblock(NodeId client, const DsTemplate& templ,
                                      const DsTuple& tuple) {
  (void)templ;
  std::string path = TuplePath(tuple);
  if (path.empty()) {
    return true;
  }
  auto matches = registry_.MatchEvent("unblocked", path);
  for (LoadedExtension* ext : matches) {
    if (ext->program->handlers.count("on_unblocked") == 0) {
      continue;
    }
    DsReadOnlyHost host(&server_->space(), client, limits_.max_collection_items);
    std::vector<Value> args;
    args.emplace_back(path);
    HandlerRun run = RunExtensionHandler(*ext, "on_unblocked", std::move(args), &host, limits_);
    // Convention: a falsy return re-blocks the operation (§5.2.2).
    if (run.result.ok() && !run.result->Truthy()) {
      return false;
    }
  }
  return true;
}

void DsExtensionManager::OnStateReloaded() {
  registry_.Clear();
  for (const DsEntry& e : server_->space().RdAll(ObjectPrefixTemplate(kEmRoot))) {
    std::string path = TuplePath(e.tuple);
    if (ParentPath(path) == kEmRoot) {
      auto reg = DecodeRegistration(e.tuple.size() > 1 ? FieldToString(e.tuple[1]) : "");
      if (reg.ok()) {
        (void)registry_.Load(BaseName(path), reg->first, reg->second, verifier_config_);
      }
    }
  }
  // Second pass: acknowledgments (extensions must already be loaded).
  for (const DsEntry& e : server_->space().RdAll(ObjectPrefixTemplate(kEmRoot))) {
    std::string path = TuplePath(e.tuple);
    if (BaseName(ParentPath(path)) == "ack") {
      auto cid = ParseInt64(BaseName(path));
      if (cid.ok()) {
        registry_.RecordAck(BaseName(ParentPath(ParentPath(path))),
                            static_cast<uint64_t>(*cid));
      }
    }
  }
}

}  // namespace edc
