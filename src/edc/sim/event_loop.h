// Deterministic discrete-event loop.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant run in the order they were scheduled — this, plus the
// seeded Rng, is what makes whole-cluster runs replayable.

#ifndef EDC_SIM_EVENT_LOOP_H_
#define EDC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "edc/sim/time.h"

namespace edc {

using TimerId = uint64_t;
constexpr TimerId kInvalidTimer = 0;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `cb` to run `delay` ns from now. Returns an id usable with
  // Cancel(). Negative delays are clamped to zero.
  TimerId Schedule(Duration delay, Callback cb);
  TimerId ScheduleAt(SimTime at, Callback cb);

  // Cancels a pending timer; no-op if it already fired or was cancelled.
  void Cancel(TimerId id);

  // Runs until no events remain or Stop() is called. Returns events processed.
  uint64_t Run();

  // Runs events with timestamp <= deadline, then advances now() to deadline.
  uint64_t RunUntil(SimTime deadline);

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // Causal-context propagation (observability): `capture` runs at
  // Schedule()/ScheduleAt() time and its result is stored with the event;
  // `activate` runs with that value right before the event's callback and
  // with a default EventContext right after, restoring ambient state around
  // every hop of the event graph. The loop itself never interprets the
  // payload. Hooks must not schedule events — they exist precisely so that
  // tracing cannot perturb the simulation.
  struct EventContext {
    uint64_t a = 0;
    uint64_t b = 0;
  };
  using ContextCapture = std::function<EventContext()>;
  using ContextActivate = std::function<void(const EventContext&)>;
  void SetContextHooks(ContextCapture capture, ContextActivate activate) {
    capture_ = std::move(capture);
    activate_ = std::move(activate);
  }

  size_t pending() const { return queue_.size() - cancelled_.size(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    TimerId id;
    Callback cb;
    EventContext ctx;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  bool PopAndRun();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  TimerId next_id_ = 1;
  bool stopped_ = false;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<TimerId> cancelled_;
  ContextCapture capture_;
  ContextActivate activate_;
};

}  // namespace edc

#endif  // EDC_SIM_EVENT_LOOP_H_
