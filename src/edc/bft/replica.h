// PBFT-style Byzantine fault-tolerant state machine replication.
//
// 3f+1 replicas; clients multicast requests to all of them and accept a
// result once f+1 replicas sent matching replies. The primary of view v
// (members[v mod n]) assigns sequence numbers and deterministic timestamps in
// PRE-PREPARE; replicas exchange PREPARE (2f+1 matching, counting the
// primary's pre-prepare) and COMMIT (2f+1) before executing in sequence
// order.
//
// View change (simplified but quorum-sound): a backup that buffers a client
// request and sees no execution within `request_timeout` broadcasts
// VIEW-CHANGE carrying its prepared entries; on 2f+1 such messages the new
// primary re-proposes the union of prepared entries (gaps padded with no-ops)
// in a NEW-VIEW, then re-proposes any still-unordered buffered requests.
// Because every committed entry is prepared at 2f+1 replicas, it appears in
// any 2f+1-message view-change quorum, so committed state survives primary
// failure. Fault injection for tests: SetEquivocate() makes a Byzantine
// primary stamp different timestamps per backup, which prevents agreement and
// drives the ensemble through a view change.
//
// Checkpoints, log GC and state transfer (docs/bft_recovery.md): every
// `checkpoint_interval` executed sequence numbers a replica fingerprints its
// full state (service snapshot + bounded request-dedup summary) and
// broadcasts CHECKPOINT(seq, digest). On 2f+1 matching digests the
// checkpoint is stable: the low watermark advances to it, entries at or
// below it are garbage-collected, and pre-prepares outside
// (low, low + watermark_window] are rejected. A replica that detects f+1
// peers vouching for a checkpoint above its own execution point (after a
// restart, or having slept through a partition) fetches the state with
// STATE-REQUEST/STATE-RESPONSE, verifies the payload hash against the f+1
// votes, installs it, and resumes ordered execution from there. Checkpoint
// messages also carry the sender's view, so a rejoining replica adopts any
// view that f+1 peers claim.
//
// Omitted relative to full PBFT (documented scope): MACs/signatures
// (authenticated point-to-point links are assumed, as in the simulator).

#ifndef EDC_BFT_REPLICA_H_
#define EDC_BFT_REPLICA_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "edc/bft/messages.h"
#include "edc/obs/obs.h"
#include "edc/sim/cpu.h"
#include "edc/sim/costs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"

namespace edc {

// Outcome of executing one ordered request at the service layer.
struct BftExecOutcome {
  // Extra CPU the execution consumed (extension steps etc.); the replica
  // occupies its core for this long before processing further messages.
  Duration cpu_cost = 0;
};

class BftCallbacks {
 public:
  virtual ~BftCallbacks() = default;
  // Deterministic execution of the request ordered at (seq, ts). The service
  // sends client replies itself via BftReplica::SendReply.
  virtual BftExecOutcome Execute(uint64_t seq, SimTime ts, const BftRequest& request) = 0;

  // Serializes the full service state machine. Must be a pure function of
  // the executed history (all replicas at the same sequence number return
  // identical bytes), since the checkpoint digest hashes it. Defaults model
  // a stateless service so protocol-only tests need no snapshot plumbing.
  virtual std::vector<uint8_t> TakeSnapshot() { return {}; }
  // Replaces the service state machine with a transferred snapshot.
  virtual Status RestoreSnapshot(const std::vector<uint8_t>& snapshot) {
    (void)snapshot;
    return Status::Ok();
  }
};

struct BftConfig {
  std::vector<NodeId> members;  // size 3f+1
  NodeId self = 0;
  int f = 1;
  Duration request_timeout = Millis(300);
  // Checkpoint every K executed sequence numbers...
  uint64_t checkpoint_interval = 8;
  // ...and accept pre-prepares only within (low, low + window]. Must be a
  // multiple of checkpoint_interval and at least 2x it, or ordering can
  // wedge with no checkpoint boundary inside the window.
  uint64_t watermark_window = 32;
  // Per-client executed-request-id memory: ids more than this far below the
  // client's newest executed id are treated as already executed (GC'd at
  // checkpoint boundaries so the dedup map stays bounded).
  uint64_t dedup_window = 64;
};

class BftReplica {
 public:
  BftReplica(EventLoop* loop, Network* net, CpuQueue* cpu, const CostModel& costs,
             BftConfig config, BftCallbacks* callbacks);

  BftReplica(const BftReplica&) = delete;
  BftReplica& operator=(const BftReplica&) = delete;

  void Start();
  void Crash();
  void Restart();  // Rejoins with empty state and probes peers for the
                   // latest stable checkpoint (state transfer), so a
                   // restarted replica catches up even in an idle cluster.

  void HandlePacket(Packet&& pkt);
  void SendReply(NodeId client, uint64_t req_id, std::vector<uint8_t> payload);

  bool running() const { return running_; }
  uint64_t view() const { return view_; }
  bool is_primary() const { return running_ && PrimaryOf(view_) == config_.self; }
  uint64_t last_executed() const { return last_executed_; }

  // Checkpoint/GC observability (harness invariants and recovery tests).
  uint64_t low_watermark() const { return low_watermark_; }
  uint64_t watermark_window() const { return config_.watermark_window; }
  size_t log_entries() const { return entries_.size(); }
  uint64_t min_entry_seq() const { return entries_.empty() ? 0 : entries_.begin()->first; }
  size_t dedup_ids() const;       // total request ids tracked across clients
  int64_t state_transfers() const { return state_transfers_; }

  // Fault injection: primary stamps a different timestamp per backup.
  void SetEquivocate(bool on) { equivocate_ = on; }

  // Observability (nullable): prepare/commit/checkpoint/state-transfer
  // counters, plus request trace propagation — the context active when a
  // client request first arrives is remembered per (client, req_id) and
  // restored around Execute, so the ordered execution and the reply stay
  // attributed to the originating operation.
  void SetObs(Obs* obs);

 private:
  struct Entry {
    uint64_t view = 0;
    SimTime ts = 0;
    uint64_t digest = 0;
    bool has_request = false;
    BftRequest request;
    std::set<NodeId> prepares;
    std::set<NodeId> commits;
    bool sent_commit = false;
    bool executed = false;
  };

  // Bounded per-client dedup: ids <= floor are treated as executed; ids
  // above it are tracked exactly. GC'd at checkpoint boundaries (a
  // deterministic point of the execution stream, so snapshots of replicas at
  // the same sequence number are byte-identical).
  struct ClientDedup {
    uint64_t floor = 0;
    std::set<uint64_t> ids;
  };

  size_t PrepareQuorum() const { return static_cast<size_t>(2 * config_.f + 1); }
  size_t CommitQuorum() const { return static_cast<size_t>(2 * config_.f + 1); }
  NodeId PrimaryOf(uint64_t view) const {
    return config_.members[view % config_.members.size()];
  }
  bool InWindow(uint64_t seq) const {
    return seq > low_watermark_ && seq <= low_watermark_ + config_.watermark_window;
  }

  void SendTo(NodeId dst, BftMsgType type, std::vector<uint8_t> payload);
  void BroadcastToReplicas(BftMsgType type, const std::vector<uint8_t>& payload);
  void Process(Packet&& pkt);

  void OnRequest(BftRequest&& req);
  void ProposePending();
  void Propose(BftRequest req);
  void OnPrePrepare(NodeId from, PrePrepareMsg&& msg);
  void OnPrepare(NodeId from, const PhaseMsg& msg);
  void OnCommit(NodeId from, const PhaseMsg& msg);
  void CheckPrepared(uint64_t seq);
  void CheckCommitted(uint64_t seq);
  void TryExecute();

  void ArmRequestTimer();
  void OnRequestTimeout();
  void StartViewChange(uint64_t new_view);
  void OnViewChange(NodeId from, ViewChangeMsg&& msg);
  void OnNewView(NewViewMsg&& msg);
  void AdoptEntry(const PreparedEntry& e, uint64_t view);

  bool AlreadyOrdered(const BftRequest& req) const;
  void MarkExecuted(NodeId client, uint64_t req_id);

  // ---- checkpointing / GC / state transfer ----
  std::vector<uint8_t> ComposeCheckpoint();  // state at last_executed_
  void TakeLocalCheckpoint();                // every checkpoint_interval execs
  void GcDedup();
  void OnCheckpoint(NodeId from, const CheckpointMsg& msg);
  void OnStateRequest(NodeId from, const StateRequestMsg& msg);
  void OnStateResponse(NodeId from, StateResponseMsg&& msg);
  void AddCheckpointVote(NodeId from, uint64_t seq, uint64_t digest,
                         uint64_t claimed_view);
  void MaybeAdoptView();
  void MakeStable(uint64_t seq);
  void MaybeInstallState();
  bool InstallCheckpoint(uint64_t seq, const std::vector<uint8_t>& state);
  void ScheduleCatchupProbe();

  EventLoop* loop_;
  Network* net_;
  CpuQueue* cpu_;
  CostModel costs_;
  BftConfig config_;
  BftCallbacks* callbacks_;

  bool running_ = false;
  uint64_t generation_ = 0;
  bool equivocate_ = false;

  uint64_t view_ = 0;
  bool view_changing_ = false;
  uint64_t vc_target_ = 0;  // highest view we have demanded a change to
  uint64_t next_seq_ = 0;  // primary only
  uint64_t last_executed_ = 0;
  SimTime last_ts_ = 0;
  SimTime last_exec_ts_ = 0;  // ts of the last executed entry (checkpointed)

  std::map<uint64_t, Entry> entries_;  // by seq, within the watermark window
  std::deque<BftRequest> pending_;     // buffered, not yet pre-prepared
  std::map<NodeId, ClientDedup> executed_reqs_;  // bounded dedup

  std::map<uint64_t, std::map<NodeId, ViewChangeMsg>> view_changes_;  // by new_view

  // Checkpoint protocol state.
  uint64_t low_watermark_ = 0;  // latest stable checkpoint
  std::map<uint64_t, uint64_t> own_checkpoints_;  // seq -> our digest
  std::map<uint64_t, std::map<NodeId, uint64_t>> checkpoint_votes_;  // seq -> node -> digest
  // seq -> digest -> payload whose hash matches that digest (a Byzantine
  // responder can only add a bogus digest entry, never displace an honest one).
  std::map<uint64_t, std::map<uint64_t, std::vector<uint8_t>>> offered_states_;
  std::map<NodeId, uint64_t> claimed_views_;  // newest view each peer reported
  uint64_t own_state_seq_ = 0;          // seq of our latest composed checkpoint
  std::vector<uint8_t> own_state_;      // its bytes (served to lagging peers)
  uint64_t fetch_target_ = 0;  // checkpoint seq currently being fetched (0 = none)
  int probe_budget_ = 0;       // remaining catch-up probes after a restart
  int64_t state_transfers_ = 0;

  // Observability.
  struct RequestTrace {
    TraceContext ctx;
    SimTime at = 0;
  };
  Obs* obs_ = nullptr;
  Counter* m_prepares_ = nullptr;
  Counter* m_commits_ = nullptr;
  Counter* m_checkpoints_ = nullptr;
  Counter* m_state_transfers_ = nullptr;
  std::map<std::pair<NodeId, uint64_t>, RequestTrace> request_trace_;
  static constexpr size_t kMaxTrackedCheckpoints = 64;  // Byzantine spam bound

  TimerId request_timer_ = kInvalidTimer;
  uint64_t exec_at_arm_ = 0;  // progress marker: last_executed_ when armed
};

}  // namespace edc

#endif  // EDC_BFT_REPLICA_H_
