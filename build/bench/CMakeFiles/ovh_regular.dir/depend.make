# Empty dependencies file for ovh_regular.
# This may be replaced when dependencies are built.
