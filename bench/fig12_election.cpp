// Reproduces paper Fig. 12: leader-election stress — a newly appointed
// leader immediately abdicates. Reports leader changes per second and the
// signaling latency from abdication to the successor learning of its
// election.
//
// Expected shape: EZK/EDS avoid the post-event confirmation RPC (the new
// leader is unblocked directly), so they sustain more changes/s with ~25%
// (ZK) / ~45% (DS) lower signaling latency; DepSpace trails everyone because
// it has no deletion notifications (clients poll).

#include "bench/common.h"

namespace edc {
namespace {

constexpr Duration kWarmup = Seconds(1);
constexpr Duration kMeasure = Seconds(4);
constexpr int kSeeds = 3;

struct ElectionRun {
  double changes_per_sec = 0;
  double signal_latency_ms = 0;
  double signal_latency_p99_ms = 0;
  StageSums stages;
};

ElectionRun RunOne(SystemKind system, size_t clients, uint64_t seed) {
  FixtureOptions options;
  options.system = system;
  options.num_clients = clients;
  options.seed = seed;
  options.observability = true;
  CoordFixture fixture(options);
  fixture.Start();
  auto elections = SetupRecipe<LeaderElection>(fixture, IsExtensible(system));

  struct Ctx {
    CoordFixture* fixture;
    std::vector<std::unique_ptr<LeaderElection>>* elections;
    SimTime measure_start = 0;
    SimTime measure_end = 0;
    SimTime last_abdicated = -1;
    int64_t changes = 0;
    Recorder signal_latency;
    StageSums stages;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->fixture = &fixture;
  ctx->elections = &elections;
  ctx->measure_start = fixture.loop().now() + kWarmup;
  ctx->measure_end = ctx->measure_start + kMeasure;

  // Every candidate loops: becomeLeader -> (on election) abdicate -> repeat.
  std::function<void(size_t)> campaign = [ctx, &campaign](size_t i) {
    // One trace per candidacy: covers issue -> elected.
    Tracer& tracer = ctx->fixture->obs().tracer;
    TraceContext prev = tracer.current();
    TraceContext root;
    if (tracer.enabled()) {
      root = tracer.BeginTrace("election.become_leader",
                               static_cast<uint32_t>(ctx->fixture->client_node(i)),
                               ctx->fixture->loop().now());
    }
    (*ctx->elections)[i]->BecomeLeader([ctx, &campaign, i, root](Status s) {
      SimTime now = ctx->fixture->loop().now();
      StageBreakdown breakdown;
      if (root.active()) {
        breakdown = ctx->fixture->obs().tracer.FinishTrace(root, now);
      }
      if (!s.ok()) {
        return;  // shutting down
      }
      if (now >= ctx->measure_start && now <= ctx->measure_end) {
        ++ctx->changes;
        if (ctx->last_abdicated >= 0) {
          ctx->signal_latency.Record(now - ctx->last_abdicated);
        }
        if (root.active()) {
          ctx->stages.Add(breakdown);
        }
      }
      if (now >= ctx->measure_end) {
        return;
      }
      ctx->last_abdicated = now;
      (*ctx->elections)[i]->Abdicate([ctx, &campaign, i](Status) {
        if (ctx->fixture->loop().now() < ctx->measure_end) {
          campaign(i);
        }
      });
    });
    if (root.active()) {
      tracer.SetCurrent(prev);
    }
  };
  for (size_t i = 0; i < clients; ++i) {
    campaign(i);
  }
  fixture.loop().RunUntil(ctx->measure_end);
  ElectionRun out;
  out.changes_per_sec = static_cast<double>(ctx->changes) / ToSeconds(kMeasure);
  out.signal_latency_ms = ctx->signal_latency.Mean() / 1e6;
  out.signal_latency_p99_ms =
      static_cast<double>(ctx->signal_latency.Percentile(0.99)) / 1e6;
  out.stages = ctx->stages;
  fixture.loop().RunUntil(ctx->measure_end + Seconds(2));
  return out;
}

void Main() {
  BenchTable table({"system", "clients", "changes_per_s", "signal_lat_ms"});
  BenchJson json("fig12_election");
  for (SystemKind system : AllSystems()) {
    for (size_t clients : ClientSweep(2)) {
      RunAggregate changes;
      RunAggregate latency;
      for (int seed = 0; seed < kSeeds; ++seed) {
        uint64_t s = 4000 + static_cast<uint64_t>(seed);
        ElectionRun run = RunOne(system, clients, s);
        changes.Add(run.changes_per_sec);
        latency.Add(run.signal_latency_ms);
        json.AddCustomRow(SystemName(system), clients, s, run.changes_per_sec,
                          run.signal_latency_ms, run.signal_latency_p99_ms, 0.0,
                          &run.stages);
      }
      table.AddRow({SystemName(system), std::to_string(clients), Fmt(changes.Mean(), 1),
                    Fmt(latency.Mean())});
    }
  }
  std::printf("=== Fig. 12: leader election stress (avg of %d runs) ===\n", kSeeds);
  table.Print();
  json.Write();
}

}  // namespace
}  // namespace edc

int main() {
  edc::Main();
  return 0;
}
