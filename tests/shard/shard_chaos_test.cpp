// Shard-map-change chaos: bump the shard map mid-traffic (AddShard) and
// assert no operation is lost or duplicated. Every router sub-client and
// every replica feeds a per-shard HistoryRecorder (histories are
// per-ensemble; cross-shard comparisons are meaningless), and each shard's
// history must pass the model-conformance checker — a stale rejection that
// nevertheless committed, a double apply after a router retry, or a lost
// acknowledged write would all surface as violations. A rerun with the same
// seed must produce byte-identical per-shard applied logs.
//
// Data is NOT migrated when the map changes (docs/sharding.md): a key that
// moves to the new shard reads as absent there afterwards. The tests
// partition keys into moved/unmoved via the before/after maps and assert
// both classes behave exactly as specified — unmoved keys keep their data,
// moved keys miss deterministically, nothing hangs or double-fires.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "edc/check/conformance.h"
#include "edc/check/history.h"
#include "edc/harness/fixture.h"
#include "edc/route/shard_router.h"

namespace edc {
namespace {

constexpr size_t kMaxShards = 3;  // 2 at boot + 1 added mid-run

bool Unmoved(const ShardMap& before, const ShardMap& after, const CoordKey& key) {
  return before.entry(before.IndexFor(key)).shard_id ==
         after.entry(after.IndexFor(key)).shard_id;
}

// FNV-1a over one shard's per-replica applied logs: replica boundaries and
// (zxid, txn-hash) pairs all feed the digest, so any reordering, loss or
// duplication anywhere in the shard changes it.
uint64_t ZkShardDigest(const std::vector<ZkServer*>& servers) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (ZkServer* server : servers) {
    mix(0xb0a7ull);  // replica boundary
    mix(server->id());
    for (const auto& [zxid, txn_hash] : server->applied_log()) {
      mix(zxid);
      mix(txn_hash);
    }
  }
  return h;
}

struct ZkChaosOutcome {
  int writes_issued = 0;
  int writes_completed = 0;
  int writes_ok = 0;
  int reads_issued = 0;
  int reads_completed = 0;
  int read_hits = 0;    // unmoved keys that returned their data
  int read_misses = 0;  // moved keys that read as absent on the new shard
  int expected_hits = 0;
  int expected_misses = 0;
  int stale_refreshes = 0;
  uint64_t final_map_version = 0;
  uint64_t fixture_map_version = 0;
  std::vector<uint64_t> shard_digests;
  std::vector<std::string> violations;
  std::array<size_t, kMaxShards> calls_per_shard{};
};

// One full scenario: 2 clients drive keyed creates/reads against a 2-shard
// deployment, the map grows to 3 shards mid-traffic, traffic continues.
ZkChaosOutcome RunZkChaos(uint64_t seed) {
  FixtureOptions options;
  options.system = SystemKind::kZooKeeper;
  options.num_clients = 2;
  options.num_shards = 2;
  options.seed = seed;
  CoordFixture fixture(options);
  fixture.Start();

  std::array<HistoryRecorder, kMaxShards> recs;
  EventLoop* loop = &fixture.loop();
  for (size_t i = 0; i < 2; ++i) {
    fixture.zk_router(i)->SetSubClientHook([&recs, loop](uint32_t shard, ZkClient* c) {
      ASSERT_LT(shard, kMaxShards);
      recs[shard].AttachZkClient(loop, c);
    });
  }
  for (uint32_t s = 0; s < 2; ++s) {
    for (ZkServer* server : fixture.ZkShardServers(s)) {
      recs[s].AttachZkServer(server);
    }
  }

  ZkChaosOutcome out;
  auto write = [&](size_t client, const std::string& path, const std::string& data) {
    ++out.writes_issued;
    fixture.zk_router(client)->Create(path, data, false, false,
                                      [&out](Result<std::string> r) {
                                        ++out.writes_completed;
                                        out.writes_ok += r.ok();
                                      });
  };

  // Phase 1: both clients write 20 keys each against the 2-shard map.
  for (size_t c = 0; c < 2; ++c) {
    for (int i = 0; i < 20; ++i) {
      write(c, "/cx" + std::to_string(c) + "-" + std::to_string(i), "p1");
    }
  }
  fixture.Settle(Seconds(3));
  EXPECT_EQ(out.writes_completed, out.writes_issued);

  // Mid-traffic topology change: a third ensemble joins, every old replica
  // starts rejecting version-stamped traffic as stale.
  ShardMap before = fixture.shard_map();
  fixture.AddShard();
  ShardMap after = fixture.shard_map();
  for (ZkServer* server : fixture.ZkShardServers(2)) {
    recs[2].AttachZkServer(server);
  }

  // Phase 2, immediately (new shard is still electing): re-read phase-1 keys
  // and write 20 more per client. Keys on old shards bounce once with
  // kShardMapStale and retry after the refresh; keys that now route to shard
  // 2 queue behind its sub-client's session and read as absent there.
  for (size_t c = 0; c < 2; ++c) {
    for (int i = 0; i < 20; ++i) {
      std::string path = "/cx" + std::to_string(c) + "-" + std::to_string(i);
      bool stays = Unmoved(before, after, CoordKey::ForPath(path));
      (stays ? out.expected_hits : out.expected_misses) += 1;
      ++out.reads_issued;
      fixture.zk_router(c)->GetData(path, false,
                                    [&out, stays](Result<ZkApi::NodeResult> r) {
                                      ++out.reads_completed;
                                      if (r.ok() && stays) {
                                        ++out.read_hits;
                                      } else if (!r.ok() && !stays &&
                                                 r.status().code() == ErrorCode::kNoNode) {
                                        ++out.read_misses;
                                      }
                                    });
      write(c, "/cx" + std::to_string(c) + "-" + std::to_string(20 + i), "p2");
    }
  }
  fixture.Settle(Seconds(15));  // election + failover budget for the new shard

  for (size_t i = 0; i < 2; ++i) {
    ZkShardRouter* router = fixture.zk_router(i);
    out.stale_refreshes += router->stale_refreshes();
    out.final_map_version = router->map_version();
    EXPECT_EQ(router->shard_count(), 3u);
  }
  out.fixture_map_version = fixture.shard_map().version();
  for (uint32_t s = 0; s < kMaxShards; ++s) {
    out.shard_digests.push_back(ZkShardDigest(fixture.ZkShardServers(s)));
    out.calls_per_shard[s] = recs[s].zk_calls.size();
    CheckReport report = CheckZkHistory(recs[s]);
    for (const std::string& v : report.violations) {
      out.violations.push_back("shard " + std::to_string(s) + ": " + v);
    }
  }
  return out;
}

TEST(ShardChaosTest, MapBumpMidTrafficLosesNothing) {
  ZkChaosOutcome out = RunZkChaos(11);

  // No lost or duplicated completions: every issued op calls back exactly
  // once (a duplicate callback would push completed past issued).
  EXPECT_EQ(out.writes_completed, out.writes_issued);
  EXPECT_EQ(out.writes_ok, out.writes_issued);  // stale bounces retried internally
  EXPECT_EQ(out.reads_completed, out.reads_issued);

  // Unmoved keys keep their data; moved keys miss on the new shard — and
  // every read falls in exactly one of the two classes.
  EXPECT_EQ(out.read_hits, out.expected_hits);
  EXPECT_EQ(out.read_misses, out.expected_misses);
  EXPECT_GT(out.expected_misses, 0);  // the change really moved keys

  // The routers really went through the stale-refresh protocol and ended on
  // the fixture's current map.
  EXPECT_GE(out.stale_refreshes, 1);
  EXPECT_EQ(out.final_map_version, out.fixture_map_version);

  // Per-shard histories conform to the sequential model.
  std::string all;
  for (const std::string& v : out.violations) {
    all += v + "\n";
  }
  EXPECT_TRUE(out.violations.empty()) << all;

  // The new shard actually took traffic.
  EXPECT_GT(out.calls_per_shard[2], 0u);
}

TEST(ShardChaosTest, SameSeedSamePerShardDigests) {
  ZkChaosOutcome a = RunZkChaos(23);
  ZkChaosOutcome b = RunZkChaos(23);
  ASSERT_EQ(a.shard_digests.size(), b.shard_digests.size());
  for (size_t s = 0; s < a.shard_digests.size(); ++s) {
    EXPECT_EQ(a.shard_digests[s], b.shard_digests[s]) << "shard " << s;
  }
  EXPECT_EQ(a.writes_ok, b.writes_ok);
  EXPECT_EQ(a.read_hits, b.read_hits);

  // A different seed must still conform but may schedule differently.
  ZkChaosOutcome c = RunZkChaos(29);
  EXPECT_TRUE(c.violations.empty());
}

// --- DepSpace variant ----------------------------------------------------

TEST(ShardChaosTest, DsMapBumpMidTrafficConforms) {
  FixtureOptions options;
  options.system = SystemKind::kDepSpace;
  options.num_clients = 2;
  options.num_shards = 2;
  options.seed = 17;
  CoordFixture fixture(options);
  fixture.Start();

  std::array<HistoryRecorder, kMaxShards> recs;
  EventLoop* loop = &fixture.loop();
  for (size_t i = 0; i < 2; ++i) {
    fixture.ds_router(i)->SetSubClientHook([&recs, loop](uint32_t shard, DsClient* c) {
      ASSERT_LT(shard, kMaxShards);
      recs[shard].AttachDsClient(loop, c);
    });
  }
  for (uint32_t s = 0; s < 2; ++s) {
    for (DsServer* server : fixture.DsShardServers(s)) {
      recs[s].AttachDsServer(server);
    }
  }

  int issued = 0;
  int completed = 0;
  int out_ok = 0;
  int rd_hits = 0;
  int rd_misses = 0;
  int expected_hits = 0;
  int expected_misses = 0;
  auto out_op = [&](size_t client, const std::string& key) {
    ++issued;
    fixture.ds_router(client)->Out(DsTuple{DsField{key}, DsField{"v"}},
                                   [&](Result<DsReply> r) {
                                     ++completed;
                                     out_ok += r.ok() && r->code == ErrorCode::kOk;
                                   });
  };

  for (size_t c = 0; c < 2; ++c) {
    for (int i = 0; i < 15; ++i) {
      out_op(c, "dk" + std::to_string(c) + "-" + std::to_string(i));
    }
  }
  fixture.Settle(Seconds(3));
  ASSERT_EQ(completed, issued);

  ShardMap before = fixture.shard_map();
  fixture.AddShard();
  ShardMap after = fixture.shard_map();
  for (DsServer* server : fixture.DsShardServers(2)) {
    recs[2].AttachDsServer(server);
  }

  for (size_t c = 0; c < 2; ++c) {
    for (int i = 0; i < 15; ++i) {
      std::string key = "dk" + std::to_string(c) + "-" + std::to_string(i);
      bool stays = Unmoved(before, after, CoordKey::ForField(key));
      (stays ? expected_hits : expected_misses) += 1;
      ++issued;
      // A present tuple comes back as an ok reply carrying it; a miss (the
      // moved key's tuple was never migrated) surfaces as kNoNode.
      fixture.ds_router(c)->Rdp(DsTemplate{DsTField::Exact(key), DsTField::Any()},
                                [&, stays](Result<DsReply> r) {
                                  ++completed;
                                  if (stays && r.ok() && r->code == ErrorCode::kOk &&
                                      r->tuples.size() == 1) {
                                    ++rd_hits;
                                  } else if (!stays && !r.ok() &&
                                             r.status().code() == ErrorCode::kNoNode) {
                                    ++rd_misses;
                                  }
                                });
      out_op(c, "dk" + std::to_string(c) + "-" + std::to_string(15 + i));
    }
  }
  fixture.Settle(Seconds(8));

  EXPECT_EQ(completed, issued);
  EXPECT_EQ(out_ok, 2 * 30);  // every Out (both phases) acknowledged once
  EXPECT_EQ(rd_hits, expected_hits);
  EXPECT_EQ(rd_misses, expected_misses);

  int refreshes = 0;
  for (size_t i = 0; i < 2; ++i) {
    refreshes += fixture.ds_router(i)->stale_refreshes();
    EXPECT_EQ(fixture.ds_router(i)->map_version(), fixture.shard_map().version());
  }
  EXPECT_GE(refreshes, 1);

  for (uint32_t s = 0; s < kMaxShards; ++s) {
    CheckReport report = CheckDsHistory(recs[s]);
    EXPECT_TRUE(report.ok()) << "shard " << s << ":\n" << report.ToString();
  }
  // Replica groups stay internally consistent after the change.
  std::string why;
  EXPECT_TRUE(fixture.CheckEdsInvariants(&why)) << why;
}

}  // namespace
}  // namespace edc
