#include "edc/check/explorer.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "edc/check/history.h"
#include "edc/common/rng.h"
#include "edc/harness/invariants.h"

namespace edc {

namespace {

constexpr Duration kOpTimeout = Millis(2000);
constexpr Duration kWorkloadDeadline = Seconds(15);
constexpr Duration kDrainTime = Seconds(3);

std::string MillisStr(Duration d) { return std::to_string(d / 1000000) + "ms"; }

// Drives one client through a seeded sequence of operations. Each operation
// is raced against a timeout: a pending ZK call can legitimately hang
// forever (parked across a reconnect, or a blocking DS read with no matching
// tuple), and the workload must keep making progress through fault windows.
// The generation counter makes whichever of {completion, timeout} fires
// first claim the advance; the loser becomes a no-op.
class Worker {
 public:
  Worker(EventLoop* loop, uint64_t seed, size_t ops)
      : loop_(loop), rng_(seed), remaining_(ops) {}
  virtual ~Worker() = default;

  void Start() { Next(); }
  bool done() const { return done_; }

  // Quiesces the worker: every timer callback still queued in the loop
  // (op timeouts, rescheduled Next calls) becomes a no-op. The worker must
  // stay alive until the loop stops running — its callbacks capture `this`.
  void Stop() {
    remaining_ = 0;
    ++gen_;
  }

 protected:
  virtual void Issue(std::function<void()> done) = 0;

  EventLoop* loop_;
  Rng rng_;

 private:
  void Next() {
    if (remaining_ == 0) {
      done_ = true;
      return;
    }
    --remaining_;
    uint64_t cur = ++gen_;
    auto advance = [this, cur] {
      if (cur != gen_) {
        return;
      }
      ++gen_;  // claim; the other of {completion, timeout} is now a no-op
      loop_->Schedule(Millis(5 + rng_.UniformU64(40)), [this] { Next(); });
    };
    loop_->Schedule(kOpTimeout, advance);
    Issue(std::move(advance));
  }

  size_t remaining_;
  uint64_t gen_ = 0;
  bool done_ = false;
};

class ZkWorker : public Worker {
 public:
  ZkWorker(EventLoop* loop, ZkClient* client, uint64_t seed, size_t ops)
      : Worker(loop, seed, ops), client_(client) {}

 protected:
  void Issue(std::function<void()> done) override {
    if (!made_root_) {
      made_root_ = true;
      client_->Create("/w", "", false, false, [done](Result<std::string>) { done(); });
      return;
    }
    static const char* kNames[] = {"a", "b", "c", "d", "e", "f"};
    std::string path = std::string("/w/") + kNames[rng_.UniformU64(6)];
    std::string data = "v" + std::to_string(rng_.UniformU64(1000));
    bool watch = rng_.UniformU64(2) == 0;
    uint64_t pick = rng_.UniformU64(100);
    if (pick < 25) {
      bool ephemeral = rng_.UniformU64(4) == 0;
      bool sequential = rng_.UniformU64(4) == 0;
      client_->Create(path, data, ephemeral, sequential,
                      [done](Result<std::string>) { done(); });
    } else if (pick < 40) {
      client_->SetData(path, data, -1, [done](Status) { done(); });
    } else if (pick < 50) {
      client_->Delete(path, -1, [done](Status) { done(); });
    } else if (pick < 65) {
      client_->Exists(path, watch, [done](Result<ZkClient::ExistsResult>) { done(); });
    } else if (pick < 80) {
      client_->GetData(path, watch, [done](Result<ZkClient::NodeResult>) { done(); });
    } else if (pick < 90) {
      client_->GetChildren(rng_.UniformU64(2) == 0 ? "/w" : path, watch,
                           [done](Result<std::vector<std::string>>) { done(); });
    } else {
      ZkOp create;
      create.type = ZkOpType::kCreate;
      create.path = path + "/m";
      create.data = data;
      ZkOp set;
      set.type = ZkOpType::kSetData;
      set.path = path;
      set.data = data + "m";
      client_->Multi({create, set}, [done](Status) { done(); });
    }
  }

 private:
  ZkClient* client_;
  bool made_root_ = false;
};

class DsWorker : public Worker {
 public:
  DsWorker(EventLoop* loop, DsClient* client, uint64_t seed, size_t ops)
      : Worker(loop, seed, ops), client_(client) {}

 protected:
  void Issue(std::function<void()> done) override {
    std::string key = "k" + std::to_string(rng_.UniformU64(4));
    DsTuple tuple{DsField{std::string("/w")}, DsField{key},
                  DsField{static_cast<int64_t>(rng_.UniformU64(100))}};
    DsTemplate exact{DsTField::Exact(std::string("/w")), DsTField::Exact(key),
                     DsTField::Any()};
    DsTemplate broad{DsTField::Prefix("/w"), DsTField::Any(), DsTField::Any()};
    auto cb = [done](Result<DsReply>) { done(); };
    uint64_t pick = rng_.UniformU64(100);
    if (pick < 30) {
      if (rng_.UniformU64(4) == 0) {
        DsOp op;
        op.type = DsOpType::kOut;
        op.tuple = tuple;
        op.lease = Seconds(2);
        client_->Call(std::move(op), cb);
      } else {
        client_->Out(tuple, cb);
      }
    } else if (pick < 45) {
      client_->Rdp(exact, cb);
    } else if (pick < 58) {
      client_->Inp(exact, cb);
    } else if (pick < 70) {
      client_->RdAll(broad, cb);
    } else if (pick < 80) {
      client_->Cas(exact, tuple, cb);
    } else if (pick < 88) {
      client_->Replace(exact, tuple, cb);
    } else if (pick < 94) {
      DsOp op;
      op.type = DsOpType::kRenew;
      op.templ = broad;
      op.lease = Seconds(2);
      client_->Call(std::move(op), cb);
    } else if (pick < 97) {
      client_->Rd(exact, cb);  // blocks until a match appears
    } else {
      client_->In(exact, cb);
    }
  }

 private:
  DsClient* client_;
};

// Deterministic two-client sequence: create /w, arm an exists-watch on
// /w/flag from client 0, create it from client 1. With an honest server this
// fires the watch exactly once; a double-firing server is caught by the
// checker's one-shot accounting.
void RunWatchPair(CoordFixture& fx) {
  ZkClient* armer = fx.zk_client(0);
  ZkClient* creator = fx.zk_client(1);
  bool finished = false;
  creator->Create("/w", "", false, false, [&](Result<std::string>) {
    armer->Exists("/w/flag", true, [&](Result<ZkClient::ExistsResult>) {
      creator->Create("/w/flag", "x", false, false,
                      [&](Result<std::string>) { finished = true; });
    });
  });
  SimTime deadline = fx.loop().now() + Seconds(10);
  while (!finished && fx.loop().now() < deadline) {
    fx.Settle(Millis(100));
  }
}

bool IsMembershipEpisode(EpisodeKind kind) {
  return kind == EpisodeKind::kJoin || kind == EpisodeKind::kRemoveFollower ||
         kind == EpisodeKind::kRemoveLeader || kind == EpisodeKind::kObserverPromote;
}

// Executes one membership episode against a running ZK fixture. Reconfig
// failures (no quorum inside an overlapping fault window, leader churn) are
// tolerated: the sweep asserts safety after the drain, not reconfig liveness.
void RunMembershipEpisode(CoordFixture& fx, const PlanEpisode& ep) {
  auto leader_of = [&fx]() -> ZkServer* {
    for (const auto& s : fx.zk_servers) {
      if (s->running() && s->zab().is_leader()) {
        return s.get();
      }
    }
    return nullptr;
  };
  auto retryable = [](const Status& s) {
    return s.code() == ErrorCode::kNotReady || s.code() == ErrorCode::kTimeout ||
           s.code() == ErrorCode::kConnectionLoss;
  };
  switch (ep.kind) {
    case EpisodeKind::kJoin:
      fx.JoinReplica(ep.node, Seconds(20));
      break;
    case EpisodeKind::kObserverPromote: {
      // Two-phase: register + boot the observer now, promote after the
      // episode's duration of commit-stream tailing.
      if (fx.ZkServerById(ep.node) == nullptr) {
        fx.BootExtraZkReplica(ep.node);
      }
      std::string id = std::to_string(ep.node);
      if (!fx.AdminReconfig("add_observer " + id).ok()) {
        break;
      }
      fx.Settle(ep.duration);
      SimTime deadline = fx.loop().now() + Seconds(10);
      Status s;
      do {
        s = fx.AdminReconfig("promote " + id);
        if (s.ok() || !retryable(s)) {
          break;
        }
        fx.Settle(Millis(200));
      } while (fx.loop().now() < deadline);
      break;
    }
    case EpisodeKind::kRemoveFollower: {
      ZkServer* leader = leader_of();
      for (NodeId v : fx.CurrentZkVoters()) {
        if (leader != nullptr && v == leader->id()) {
          continue;
        }
        ZkServer* srv = fx.ZkServerById(v);
        if (srv == nullptr || !srv->running()) {
          continue;
        }
        fx.RemoveReplica(v);
        break;
      }
      break;
    }
    case EpisodeKind::kRemoveLeader: {
      if (ZkServer* leader = leader_of()) {
        fx.RemoveReplica(leader->id());
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

FaultPlan PlanSpec::Build(SimTime base) const {
  FaultPlan plan;
  for (const PlanEpisode& ep : episodes) {
    SimTime at = base + ep.start;
    SimTime end = at + ep.duration;
    switch (ep.kind) {
      case EpisodeKind::kCrashRestart:
        plan.CrashAt(at, ep.node);
        plan.RestartAt(end, ep.node);
        break;
      case EpisodeKind::kPartition:
        plan.PartitionAt(at, ep.group_a, ep.group_b);
        plan.HealAt(end);
        break;
      case EpisodeKind::kLinkDelay:
        plan.LinkFaultsAt(at, ep.link_a, ep.link_b, LinkFaults{0.0, 0.0, ep.delay});
        plan.ClearLinkFaultsAt(end, ep.link_a, ep.link_b);
        break;
      case EpisodeKind::kLinkDup:
        plan.LinkFaultsAt(at, ep.link_a, ep.link_b,
                          LinkFaults{0.0, ep.dup_probability, 0});
        plan.ClearLinkFaultsAt(end, ep.link_a, ep.link_b);
        break;
      case EpisodeKind::kJoin:
      case EpisodeKind::kRemoveFollower:
      case EpisodeKind::kRemoveLeader:
      case EpisodeKind::kObserverPromote:
        // Membership episodes are executed by RunSchedule's drive loop, not
        // scheduled as fault steps (see explorer.h).
        break;
    }
  }
  return plan;
}

std::string PlanSpec::ToString() const {
  if (episodes.empty()) {
    return "(no fault episodes)";
  }
  std::ostringstream os;
  for (const PlanEpisode& ep : episodes) {
    os << "  ";
    switch (ep.kind) {
      case EpisodeKind::kCrashRestart:
        os << "crash-restart node=" << ep.node;
        break;
      case EpisodeKind::kPartition: {
        os << "partition {";
        for (size_t i = 0; i < ep.group_a.size(); ++i) {
          os << (i ? "," : "") << ep.group_a[i];
        }
        os << "}|{";
        for (size_t i = 0; i < ep.group_b.size(); ++i) {
          os << (i ? "," : "") << ep.group_b[i];
        }
        os << "}";
        break;
      }
      case EpisodeKind::kLinkDelay:
        os << "link-delay " << ep.link_a << "<->" << ep.link_b << " +"
           << MillisStr(ep.delay);
        break;
      case EpisodeKind::kLinkDup:
        os << "link-dup " << ep.link_a << "<->" << ep.link_b
           << " p=" << ep.dup_probability;
        break;
      case EpisodeKind::kJoin:
        os << "join node=" << ep.node;
        break;
      case EpisodeKind::kRemoveFollower:
        os << "remove-follower";
        break;
      case EpisodeKind::kRemoveLeader:
        os << "remove-leader";
        break;
      case EpisodeKind::kObserverPromote:
        os << "observer-promote node=" << ep.node;
        break;
    }
    os << " start=+" << MillisStr(ep.start) << " dur=" << MillisStr(ep.duration) << "\n";
  }
  return os.str();
}

PlanSpec GeneratePlan(SystemKind system, uint64_t seed) {
  bool zk = IsZkFamily(system);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + (zk ? 1 : 2));
  PlanSpec spec;
  size_t count = 1 + rng.UniformU64(3);
  SimTime cursor = Millis(500 + rng.UniformU64(500));
  for (size_t i = 0; i < count; ++i) {
    PlanEpisode ep;
    ep.start = cursor;
    ep.duration = Millis(300 + rng.UniformU64(900));
    if (zk) {
      // Servers are {1,2,3}. No drops/dups between Zab peers (see header).
      switch (rng.UniformU64(3)) {
        case 0: {
          ep.kind = EpisodeKind::kCrashRestart;
          ep.node = static_cast<NodeId>(1 + rng.UniformU64(3));
          break;
        }
        case 1: {
          ep.kind = EpisodeKind::kPartition;
          NodeId lone = static_cast<NodeId>(1 + rng.UniformU64(3));
          ep.group_a = {lone};
          for (NodeId n = 1; n <= 3; ++n) {
            if (n != lone) {
              ep.group_b.push_back(n);
            }
          }
          break;
        }
        default: {
          ep.kind = EpisodeKind::kLinkDelay;
          ep.link_a = static_cast<NodeId>(1 + rng.UniformU64(3));
          do {
            ep.link_b = static_cast<NodeId>(1 + rng.UniformU64(3));
          } while (ep.link_b == ep.link_a);
          ep.delay = Millis(20 + rng.UniformU64(100));
          break;
        }
      }
    } else {
      // Servers are {1,2,3,4}, f=1 (quorum 3): a 2-2 split stalls ordering
      // entirely and must heal cleanly. Crash/restart exercises PBFT
      // checkpointing + state transfer; episodes are sequential (the cursor
      // advances past each episode's end), so at most one replica (= f) is
      // ever down at a time.
      switch (rng.UniformU64(4)) {
        case 0: {
          ep.kind = EpisodeKind::kCrashRestart;
          ep.node = static_cast<NodeId>(1 + rng.UniformU64(4));
          break;
        }
        case 1: {
          ep.kind = EpisodeKind::kPartition;
          NodeId mate = static_cast<NodeId>(2 + rng.UniformU64(3));
          ep.group_a = {1, mate};
          for (NodeId n = 2; n <= 4; ++n) {
            if (n != mate) {
              ep.group_b.push_back(n);
            }
          }
          break;
        }
        case 2: {
          ep.kind = EpisodeKind::kLinkDelay;
          ep.link_a = static_cast<NodeId>(1 + rng.UniformU64(4));
          do {
            ep.link_b = static_cast<NodeId>(1 + rng.UniformU64(4));
          } while (ep.link_b == ep.link_a);
          ep.delay = Millis(20 + rng.UniformU64(100));
          break;
        }
        default: {
          ep.kind = EpisodeKind::kLinkDup;
          ep.link_a = static_cast<NodeId>(1 + rng.UniformU64(4));
          do {
            ep.link_b = static_cast<NodeId>(1 + rng.UniformU64(4));
          } while (ep.link_b == ep.link_a);
          ep.dup_probability = 0.2 + 0.1 * static_cast<double>(rng.UniformU64(5));
          break;
        }
      }
    }
    cursor = ep.start + ep.duration + Millis(200 + rng.UniformU64(600));
    spec.episodes.push_back(std::move(ep));
  }
  return spec;
}

PlanSpec GenerateReconfigPlan(SystemKind system, uint64_t seed) {
  PlanSpec spec = GeneratePlan(system, seed);
  if (!IsZkFamily(system)) {
    return spec;  // DepSpace has no reconfig path
  }
  // Separate Rng stream: the fault half of the plan stays identical to
  // GeneratePlan's draw for the same seed.
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 3);
  SimTime cursor = 0;
  for (const PlanEpisode& ep : spec.episodes) {
    cursor = std::max(cursor, ep.start + ep.duration);
  }
  cursor += Millis(300 + rng.UniformU64(700));
  size_t count = 1 + rng.UniformU64(2);
  // Fresh replica ids: the base ensemble is {1,2,3}.
  NodeId next_joiner = 4;
  for (size_t i = 0; i < count; ++i) {
    PlanEpisode ep;
    ep.start = cursor;
    ep.duration = Millis(400 + rng.UniformU64(800));
    switch (rng.UniformU64(4)) {
      case 0:
        ep.kind = EpisodeKind::kJoin;
        ep.node = next_joiner++;
        break;
      case 1:
        ep.kind = EpisodeKind::kRemoveFollower;
        break;
      case 2:
        ep.kind = EpisodeKind::kRemoveLeader;
        break;
      default:
        ep.kind = EpisodeKind::kObserverPromote;
        ep.node = next_joiner++;
        break;
    }
    cursor = ep.start + ep.duration + Millis(500 + rng.UniformU64(1500));
    spec.episodes.push_back(std::move(ep));
  }
  return spec;
}

ScheduleResult RunSchedule(const ExplorerOptions& options, const PlanSpec& plan) {
  ScheduleResult result;
  result.plan = plan;

  FixtureOptions fo;
  fo.system = options.system;
  fo.num_clients = std::max<size_t>(
      options.workload == ExplorerOptions::Workload::kWatchPair ? 2 : 1,
      options.num_clients);
  fo.seed = options.seed;
  fo.zk_server = options.zk_server;
  fo.zk_server.test_double_fire_watches = options.double_fire_bug;
  // Fast failover so a schedule's fault windows are survivable within the
  // run: short session timeout, frequent pings, quick reconnect.
  fo.zk_client.session_timeout = Millis(1500);
  fo.zk_client.ping_interval = Millis(300);
  fo.zk_client.reconnect = ReconnectOptions{Millis(200), Seconds(1), 0};
  fo.ds_client.reconnect = ReconnectOptions{Millis(300), Seconds(2), 0};

  HistoryRecorder recorder;  // outlives the fixture: observers capture it
  CoordFixture fx(fo);
  fx.Start();
  recorder.Attach(fx);

  SimTime base = fx.loop().now();
  fx.RunPlan(plan.Build(base));
  SimTime plan_end = base;
  for (const PlanEpisode& ep : plan.episodes) {
    plan_end = std::max(plan_end, base + ep.start + ep.duration);
  }

  bool zk = IsZkFamily(options.system);
  // Membership episodes run inline from the drive loop (their actions block
  // on catch-up / activation replies, advancing sim time themselves).
  std::vector<PlanEpisode> membership;
  if (zk) {
    for (const PlanEpisode& ep : plan.episodes) {
      if (IsMembershipEpisode(ep.kind)) {
        membership.push_back(ep);
      }
    }
  }
  size_t next_membership = 0;
  auto run_due_membership = [&] {
    while (next_membership < membership.size() &&
           fx.loop().now() >= base + membership[next_membership].start) {
      RunMembershipEpisode(fx, membership[next_membership]);
      ++next_membership;
    }
  };
  // Declared at function scope: worker timer callbacks capture raw worker
  // pointers and may still be queued in the loop during the drain settles
  // below, so the workers must outlive every Settle call.
  std::vector<std::unique_ptr<Worker>> workers;
  if (options.workload == ExplorerOptions::Workload::kWatchPair) {
    RunWatchPair(fx);
  } else {
    for (size_t i = 0; i < fo.num_clients; ++i) {
      uint64_t wseed = options.seed * 7919 + i + 1;
      if (zk) {
        workers.push_back(std::make_unique<ZkWorker>(&fx.loop(), fx.zk_client(i), wseed,
                                                     options.ops_per_client));
      } else {
        workers.push_back(std::make_unique<DsWorker>(&fx.loop(), fx.ds_client(i), wseed,
                                                     options.ops_per_client));
      }
    }
    for (auto& w : workers) {
      w->Start();
    }
    SimTime deadline = std::max(base + kWorkloadDeadline, plan_end);
    auto all_done = [&workers] {
      for (const auto& w : workers) {
        if (!w->done()) {
          return false;
        }
      }
      return true;
    };
    while (fx.loop().now() < deadline &&
           (!all_done() || next_membership < membership.size())) {
      run_due_membership();
      fx.Settle(Millis(100));
    }
    for (auto& w : workers) {
      w->Stop();  // drain below completes in-flight ops, issues nothing new
    }
  }
  if (fx.loop().now() < plan_end) {
    fx.Settle(plan_end - fx.loop().now());
  }
  run_due_membership();  // anything the deadline cut off still executes once
  fx.faults().Heal();
  fx.Settle(kDrainTime);
  if (!membership.empty()) {
    fx.Settle(Seconds(2));  // re-elections after a leader removal
  }

  CheckReport report = zk ? CheckZkHistory(recorder) : CheckDsHistory(recorder);
  result.num_calls = zk ? recorder.zk_calls.size() : recorder.ds_calls.size();
  result.num_responses = zk ? recorder.zk_responses.size() : recorder.ds_responses.size();
  result.num_commits = zk ? recorder.zk_commits.size() : recorder.ds_execs.size();
  result.violations = std::move(report.violations);
  if (zk) {
    std::string why;
    if (!PrefixConsistentLogs(fx.zk_servers, &why)) {
      result.violations.push_back("prefix-consistent logs violated: " + why);
    }
    // Membership agreement: after the drain, every running replica that is
    // still a member holds the same activated configuration. Removed
    // replicas retire (running() == false) and are excluded.
    if (!membership.empty()) {
      ZkServer* ref = nullptr;
      for (const auto& s : fx.zk_servers) {
        if (!s->running() || !s->zab().membership().Contains(s->id())) {
          continue;
        }
        if (ref == nullptr) {
          ref = s.get();
          continue;
        }
        const ZabMembership& a = ref->zab().membership();
        const ZabMembership& b = s->zab().membership();
        if (a.voters != b.voters || a.observers != b.observers) {
          result.violations.push_back(
              "membership diverges: node " + std::to_string(ref->id()) + " vs node " +
              std::to_string(s->id()));
        }
      }
    }
  } else {
    std::string why;
    if (!EdsDigestsMatch(fx.ds_servers, &why)) {
      result.violations.push_back("EDS digests diverge: " + why);
    }
    if (!EdsLogBounded(fx.ds_servers, &why)) {
      result.violations.push_back("EDS log unbounded: " + why);
    }
  }
  result.passed = result.violations.empty();
  return result;
}

PlanSpec ShrinkPlan(const ExplorerOptions& options, const PlanSpec& plan) {
  auto still_fails = [&options](const PlanSpec& candidate) {
    return !RunSchedule(options, candidate).passed;
  };
  PlanSpec current = plan;
  // Pass 1: greedily drop whole episodes.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < current.episodes.size(); ++i) {
      PlanSpec candidate = current;
      candidate.episodes.erase(candidate.episodes.begin() + i);
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  // Pass 2: halve durations and delays of what remains (two rounds).
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < current.episodes.size(); ++i) {
      if (current.episodes[i].duration < Millis(100)) {
        continue;
      }
      PlanSpec candidate = current;
      candidate.episodes[i].duration /= 2;
      candidate.episodes[i].delay /= 2;
      if (still_fails(candidate)) {
        current = std::move(candidate);
      }
    }
  }
  return current;
}

ScheduleResult ExploreOne(const ExplorerOptions& options) {
  PlanSpec plan = GeneratePlan(options.system, options.seed);
  ScheduleResult result = RunSchedule(options, plan);
  if (!result.passed) {
    PlanSpec shrunk = ShrinkPlan(options, plan);
    result = RunSchedule(options, shrunk);
    result.plan = shrunk;
    if (result.passed) {
      // Shrinking must preserve failure by construction; if the final rerun
      // passes, report the original so the caller still sees the violation.
      result = RunSchedule(options, plan);
      result.plan = plan;
    }
  }
  return result;
}

}  // namespace edc
