// Membership-episode schedule sweeps (docs/reconfig.md): 200 distinct seeded
// schedules drawn from the reconfig grammar — the base fault episodes plus
// join / remove-follower / remove-leader / observer-promote episodes executed
// live against the fixture — each checked post-drain for model conformance,
// prefix-consistent logs and membership agreement. Eight shards of 25 so
// ctest -j parallelizes the sweep.

#include <gtest/gtest.h>

#include <string>

#include "edc/check/explorer.h"

namespace edc {
namespace {

void RunReconfigSeeds(uint64_t lo, uint64_t hi) {
  for (uint64_t seed = lo; seed < hi; ++seed) {
    ExplorerOptions options;
    // Alternate plain/extensible, and alternate compaction so both the
    // full-log-replay and the snapshot-ship catch-up paths are swept.
    options.system =
        seed % 2 == 0 ? SystemKind::kZooKeeper : SystemKind::kExtensibleZooKeeper;
    options.seed = seed;
    options.ops_per_client = 16;
    if (seed % 3 == 0) {
      options.zk_server.zab_snapshot_every = 10;
    }
    PlanSpec plan = GenerateReconfigPlan(options.system, options.seed);
    ScheduleResult result = RunSchedule(options, plan);
    std::string violations;
    for (const std::string& v : result.violations) {
      violations += "  " + v + "\n";
    }
    EXPECT_TRUE(result.passed) << "seed " << seed << " violations:\n"
                               << violations << "plan:\n"
                               << result.plan.ToString();
    EXPECT_GT(result.num_calls, 20u) << "seed " << seed;
    EXPECT_GT(result.num_commits, 5u) << "seed " << seed;
  }
}

TEST(ReconfigScheduleSweep, Seeds001To025) { RunReconfigSeeds(1, 26); }
TEST(ReconfigScheduleSweep, Seeds026To050) { RunReconfigSeeds(26, 51); }
TEST(ReconfigScheduleSweep, Seeds051To075) { RunReconfigSeeds(51, 76); }
TEST(ReconfigScheduleSweep, Seeds076To100) { RunReconfigSeeds(76, 101); }
TEST(ReconfigScheduleSweep, Seeds101To125) { RunReconfigSeeds(101, 126); }
TEST(ReconfigScheduleSweep, Seeds126To150) { RunReconfigSeeds(126, 151); }
TEST(ReconfigScheduleSweep, Seeds151To175) { RunReconfigSeeds(151, 176); }
TEST(ReconfigScheduleSweep, Seeds176To200) { RunReconfigSeeds(176, 201); }

// The grammar actually draws membership episodes: across the sweep's seeds
// every membership kind appears at least once.
TEST(ReconfigScheduleSweep, GrammarCoversEveryMembershipKind) {
  bool join = false, remove_follower = false, remove_leader = false, promote = false;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    PlanSpec plan = GenerateReconfigPlan(SystemKind::kZooKeeper, seed);
    for (const PlanEpisode& ep : plan.episodes) {
      join = join || ep.kind == EpisodeKind::kJoin;
      remove_follower = remove_follower || ep.kind == EpisodeKind::kRemoveFollower;
      remove_leader = remove_leader || ep.kind == EpisodeKind::kRemoveLeader;
      promote = promote || ep.kind == EpisodeKind::kObserverPromote;
    }
  }
  EXPECT_TRUE(join);
  EXPECT_TRUE(remove_follower);
  EXPECT_TRUE(remove_leader);
  EXPECT_TRUE(promote);
}

// Same seed, same plan, same outcome: the membership-episode path preserves
// the explorer's replayability guarantee.
TEST(ReconfigScheduleSweep, SameSeedSameSchedule) {
  ExplorerOptions options;
  options.system = SystemKind::kZooKeeper;
  options.seed = 17;
  options.zk_server.zab_snapshot_every = 10;
  PlanSpec plan_a = GenerateReconfigPlan(options.system, options.seed);
  PlanSpec plan_b = GenerateReconfigPlan(options.system, options.seed);
  EXPECT_EQ(plan_a.ToString(), plan_b.ToString());
  ScheduleResult a = RunSchedule(options, plan_a);
  ScheduleResult b = RunSchedule(options, plan_b);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.num_calls, b.num_calls);
  EXPECT_EQ(a.num_responses, b.num_responses);
  EXPECT_EQ(a.num_commits, b.num_commits);
}

}  // namespace
}  // namespace edc
