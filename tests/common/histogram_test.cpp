#include "edc/common/histogram.h"

#include <gtest/gtest.h>

namespace edc {
namespace {

TEST(RecorderTest, EmptyIsSafe) {
  Recorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Mean(), 0.0);
  EXPECT_EQ(r.Min(), 0);
  EXPECT_EQ(r.Max(), 0);
  EXPECT_EQ(r.Percentile(0.5), 0);
  EXPECT_EQ(r.StdDev(), 0.0);
}

TEST(RecorderTest, BasicStats) {
  Recorder r;
  for (int64_t v : {1, 2, 3, 4, 5}) {
    r.Record(v);
  }
  EXPECT_EQ(r.count(), 5u);
  EXPECT_DOUBLE_EQ(r.Mean(), 3.0);
  EXPECT_EQ(r.Min(), 1);
  EXPECT_EQ(r.Max(), 5);
  EXPECT_EQ(r.Percentile(0.5), 3);
  EXPECT_NEAR(r.StdDev(), 1.5811, 1e-3);
}

TEST(RecorderTest, PercentileEdges) {
  Recorder r;
  for (int64_t i = 1; i <= 100; ++i) {
    r.Record(i);
  }
  EXPECT_EQ(r.Percentile(0.0), 1);
  EXPECT_EQ(r.Percentile(1.0), 100);
  EXPECT_NEAR(static_cast<double>(r.Percentile(0.99)), 99.0, 1.0);
}

TEST(RecorderTest, RecordAfterQueryResorts) {
  Recorder r;
  r.Record(10);
  EXPECT_EQ(r.Max(), 10);
  r.Record(20);
  EXPECT_EQ(r.Max(), 20);
  r.Record(5);
  EXPECT_EQ(r.Min(), 5);
}

TEST(RecorderTest, SummaryMentionsCount) {
  Recorder r;
  r.Record(1000000);
  EXPECT_NE(r.SummaryNs().find("n=1"), std::string::npos);
}

TEST(RunAggregateTest, MeanAndStdDev) {
  RunAggregate agg;
  agg.Add(10.0);
  agg.Add(20.0);
  agg.Add(30.0);
  EXPECT_DOUBLE_EQ(agg.Mean(), 20.0);
  EXPECT_NEAR(agg.StdDev(), 10.0, 1e-9);
  EXPECT_EQ(agg.count(), 3u);
}

TEST(RunAggregateTest, SingleValueHasZeroDev) {
  RunAggregate agg;
  agg.Add(5.0);
  EXPECT_DOUBLE_EQ(agg.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(agg.StdDev(), 0.0);
}

}  // namespace
}  // namespace edc
