// Unit tests for the causal tracer: span bookkeeping, the priority-sweep
// stage breakdown (buckets must partition the measured latency exactly), and
// Chrome trace_event export.

#include "edc/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace edc {
namespace {

int64_t SumBuckets(const StageBreakdown& b) {
  int64_t sum = 0;
  for (size_t i = 0; i < kStageCount; ++i) {
    sum += b.ns[i];
  }
  return sum;
}

TEST(TracerTest, DisabledTracerNoOps) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  TraceContext ctx = tracer.BeginTrace("op", 1, 0);
  EXPECT_FALSE(ctx.active());
  EXPECT_EQ(tracer.BeginSpanIn(ctx, "child", Stage::kCpu, 1, 10), 0u);
  StageBreakdown b = tracer.FinishTrace(ctx, 100);
  EXPECT_EQ(b.total, 0);
  EXPECT_EQ(tracer.live_traces(), 0u);
}

TEST(TracerTest, BreakdownPartitionsTotal) {
  Tracer tracer;
  tracer.Enable();
  TraceContext root = tracer.BeginTrace("op", 1, 0);
  ASSERT_TRUE(root.active());
  tracer.RecordSpanIn(root, "net", Stage::kNetwork, 2, 10, 30);
  tracer.RecordSpanIn(root, "wait", Stage::kQueue, 2, 30, 40);
  tracer.RecordSpanIn(root, "run", Stage::kCpu, 2, 40, 60);
  tracer.RecordSpanIn(root, "fsync", Stage::kFsync, 2, 60, 90);
  StageBreakdown b = tracer.FinishTrace(root, 100);
  EXPECT_EQ(b.total, 100);
  EXPECT_EQ(b.of(Stage::kNetwork), 20);
  EXPECT_EQ(b.of(Stage::kQueue), 10);
  EXPECT_EQ(b.of(Stage::kCpu), 20);
  EXPECT_EQ(b.of(Stage::kFsync), 30);
  // Root keeps kOther active: uncovered [0,10) and [90,100) fall there.
  EXPECT_EQ(b.of(Stage::kOther), 20);
  EXPECT_EQ(SumBuckets(b), b.total);
}

TEST(TracerTest, OverlapResolvedByStagePriority) {
  Tracer tracer;
  tracer.Enable();
  TraceContext root = tracer.BeginTrace("op", 1, 0);
  // A cpu span inside a network span: cpu (priority 3) owns the overlap.
  tracer.RecordSpanIn(root, "net", Stage::kNetwork, 2, 0, 40);
  tracer.RecordSpanIn(root, "run", Stage::kCpu, 2, 10, 30);
  StageBreakdown b = tracer.FinishTrace(root, 40);
  EXPECT_EQ(b.total, 40);
  EXPECT_EQ(b.of(Stage::kCpu), 20);
  EXPECT_EQ(b.of(Stage::kNetwork), 20);
  EXPECT_EQ(b.of(Stage::kOther), 0);
  EXPECT_EQ(SumBuckets(b), b.total);
}

TEST(TracerTest, SpansClippedToRootInterval) {
  Tracer tracer;
  tracer.Enable();
  TraceContext root = tracer.BeginTrace("op", 1, 10);
  // Work that outlives the reply is clipped to the root interval.
  tracer.RecordSpanIn(root, "late", Stage::kCpu, 2, 40, 500);
  // Work entirely after the reply is clipped away.
  tracer.RecordSpanIn(root, "gone", Stage::kFsync, 2, 200, 300);
  StageBreakdown b = tracer.FinishTrace(root, 50);
  EXPECT_EQ(b.total, 40);
  EXPECT_EQ(b.of(Stage::kCpu), 10);
  EXPECT_EQ(b.of(Stage::kFsync), 0);
  EXPECT_EQ(SumBuckets(b), b.total);
}

TEST(TracerTest, OpenSpansClosedAtFinish) {
  Tracer tracer;
  tracer.Enable();
  TraceContext root = tracer.BeginTrace("op", 1, 0);
  SpanId open = tracer.BeginSpanIn(root, "queued", Stage::kQueue, 2, 20);
  EXPECT_NE(open, 0u);
  // Never EndSpan'd (request cut short): FinishTrace closes it at `now`.
  StageBreakdown b = tracer.FinishTrace(root, 50);
  EXPECT_EQ(b.total, 50);
  EXPECT_EQ(b.of(Stage::kQueue), 30);
  EXPECT_EQ(SumBuckets(b), b.total);
}

TEST(TracerTest, FinishReleasesSpansUnlessRetained) {
  Tracer tracer;
  tracer.Enable(/*retain_spans=*/false);
  TraceContext root = tracer.BeginTrace("op", 1, 0);
  tracer.RecordSpanIn(root, "net", Stage::kNetwork, 2, 0, 10);
  EXPECT_EQ(tracer.live_traces(), 1u);
  tracer.FinishTrace(root, 20);
  EXPECT_EQ(tracer.live_traces(), 0u);
  EXPECT_EQ(tracer.retained_spans(), 0u);

  tracer.SetRetain(true);
  TraceContext r2 = tracer.BeginTrace("op", 1, 100);
  tracer.RecordSpanIn(r2, "net", Stage::kNetwork, 2, 100, 110);
  tracer.FinishTrace(r2, 120);
  EXPECT_EQ(tracer.retained_spans(), 2u);  // root + child
}

TEST(TracerTest, StragglerSpanAfterFinishIgnored) {
  Tracer tracer;
  tracer.Enable();
  TraceContext root = tracer.BeginTrace("op", 1, 0);
  tracer.FinishTrace(root, 10);
  // The context still names the finished trace; instrumentation must no-op.
  EXPECT_EQ(tracer.BeginSpanIn(root, "late", Stage::kCpu, 2, 20), 0u);
  tracer.RecordSpanIn(root, "late", Stage::kNetwork, 2, 20, 30);
  EXPECT_EQ(tracer.live_traces(), 0u);
}

TEST(TracerTest, CurrentContextClearedByFinish) {
  Tracer tracer;
  tracer.Enable();
  TraceContext root = tracer.BeginTrace("op", 1, 0);
  EXPECT_EQ(tracer.current().trace, root.trace);
  tracer.FinishTrace(root, 10);
  EXPECT_FALSE(tracer.current().active());
}

TEST(TracerTest, ExportJsonWritesTraceEvents) {
  Tracer tracer;
  tracer.Enable(/*retain_spans=*/true);
  TraceContext root = tracer.BeginTrace("client.op", 100, 0);
  tracer.RecordSpanIn(root, "net.pkt", Stage::kNetwork, 1, 0, 1000);
  tracer.FinishTrace(root, 2000);

  std::string path = ::testing::TempDir() + "/edc_trace_test.json";
  ASSERT_TRUE(tracer.ExportJson(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string body = ss.str();
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"client.op\""), std::string::npos);
  EXPECT_NE(body.find("\"net.pkt\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(body.find("\"cat\": \"network\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TracerTest, BreakdownAccumulates) {
  StageBreakdown a;
  a.ns[static_cast<size_t>(Stage::kCpu)] = 5;
  a.total = 5;
  StageBreakdown b;
  b.ns[static_cast<size_t>(Stage::kCpu)] = 7;
  b.ns[static_cast<size_t>(Stage::kFsync)] = 3;
  b.total = 10;
  a += b;
  EXPECT_EQ(a.of(Stage::kCpu), 12);
  EXPECT_EQ(a.of(Stage::kFsync), 3);
  EXPECT_EQ(a.total, 15);
}

}  // namespace
}  // namespace edc
