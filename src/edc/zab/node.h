// Zab-style primary-backup atomic broadcast (the replication kernel under the
// ZooKeeper-like service, cf. Junqueira et al., "Zab: High-performance
// broadcast for primary-backup systems").
//
// Protocol phases implemented:
//   * Leader election — simplified fast leader election: LOOKING nodes
//     exchange votes carrying (currentEpoch, lastZxid, nodeId); the highest
//     credential wins once a quorum agrees. Settled nodes answer lookers with
//     LEADERINFO so recovering replicas converge quickly.
//   * Synchronization — a follower announces its last zxid (FOLLOWERINFO);
//     the leader responds with TRUNC (follower ahead), DIFF (missing tail) or
//     SNAP+DIFF (the compacted log no longer covers the gap), followed by
//     NEWLEADER. The leader activates broadcast after a quorum acks.
//   * Broadcast — leader assigns zxids (epoch<<32|counter), appends durably,
//     sends PROPOSE; followers append durably and ACK; quorum acks commit
//     in zxid order; COMMIT/heartbeats move the followers' commit frontier.
//     Since PR 7 this phase is pipelined: the leader streams proposals
//     without waiting for earlier batches' durability (the LogStore keeps
//     several fsync batches in flight), followers ack as their local batches
//     become durable — by default one cumulative ACK per durable batch
//     instead of one per record (ZabConfig::ack_aggregation) — and the
//     leader's commit point advances from a per-member cumulative ack window
//     (highest contiguously-durable zxid) rather than per-zxid ack sets.
//     Commits remain strictly zxid-ordered; see docs/replication_pipeline.md.
//
// Crash/recovery: Crash() wipes volatile state (the durable LogStore
// survives); Restart() reloads the log and re-enters election. Delivery
// replays from zxid 0 (or from the durable snapshot's zxid when the LogStore
// holds one), so the owning service must reset its state machine on restart
// and rebuild via OnDeliver/InstallSnapshot.
//
// Membership (docs/reconfig.md): the ensemble is dynamic. A reconfiguration
// is an ordinary proposal flagged kReconfigFlag whose txn encodes the *full*
// next membership; it commits under the quorum of the membership in force
// when it was proposed and activates at commit, on each node independently,
// the moment the entry's position in the log is reached — so activation
// respects the pipelined cumulative-ack windows by construction. Observers
// receive the proposal/commit stream, append, ack (so the leader can track
// their catch-up lag) and serve as learners, but never count toward any
// quorum and never stand for election. A node that activates a membership
// excluding itself retires (role kDown). A follower whose requested sync
// zxid predates the leader's log floor (base_zxid_, i.e. the compacted
// prefix) receives a SNAP carrying a ZabSnapshot wrapper — service state
// plus the membership at the snapshot frontier — which it persists in the
// LogStore's durable snapshot section before truncating its log, so the
// installed state survives its own later crashes. A failed install mutates
// nothing and re-requests sync (idempotent re-fetch).

#ifndef EDC_ZAB_NODE_H_
#define EDC_ZAB_NODE_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "edc/logstore/logstore.h"
#include "edc/obs/obs.h"
#include "edc/sim/cpu.h"
#include "edc/sim/costs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"
#include "edc/zab/messages.h"

namespace edc {

class ZabCallbacks {
 public:
  virtual ~ZabCallbacks() = default;
  // Committed transactions, strictly in zxid order. Reconfiguration entries
  // are consumed by the protocol layer and never reach this hook.
  virtual void OnDeliver(uint64_t zxid, const std::vector<uint8_t>& txn) = 0;
  // Role transitions (leader elected, lost leadership, new epoch).
  virtual void OnRoleChange(bool leader, NodeId leader_id, uint32_t epoch) = 0;
  // State transfer hooks. InstallSnapshot must be transactional: on any
  // decode failure it returns false having mutated nothing (the protocol
  // layer then re-requests the snapshot), and only a true return means the
  // state machine now reflects everything up to `zxid`.
  virtual std::vector<uint8_t> TakeSnapshot() = 0;
  virtual bool InstallSnapshot(uint64_t zxid, const std::vector<uint8_t>& snapshot) = 0;
  // A reconfiguration committed and activated: `membership` is now in force
  // (`zxid` is the reconfig entry). Fired after quorum/broadcast bookkeeping
  // switched over, and before the node retires if it was removed.
  virtual void OnMembershipChange(uint64_t zxid, const ZabMembership& membership) {
    (void)zxid;
    (void)membership;
  }
};

struct ZabConfig {
  std::vector<NodeId> members;
  NodeId self = 0;
  Duration heartbeat_interval = Millis(50);
  Duration leader_timeout = Millis(250);
  Duration election_retry = Millis(120);
  // Followers send one cumulative kAck per durable log batch instead of one
  // per record. Off reproduces the legacy per-record ack stream packet for
  // packet (the pipeline determinism suite uses that for trace-digest
  // comparisons across pipeline depths).
  bool ack_aggregation = true;
  // This node boots as a non-voting observer: `members` is its contact list
  // of voters (self is NOT a voter until a reconfig promotes it). Voting
  // nodes list themselves in `members` and leave this false.
  bool observer = false;
  // Promotion gate: a reconfig adding a voter is rejected unless the
  // candidate's cumulative ack window is within this many zxids of the
  // commit frontier (a voter that is far behind would stall every quorum).
  uint64_t promote_lag = 32;
  // When > 0, automatically compact the log (snapshot + DropHead) whenever
  // the delivered prefix reaches this many entries. 0 = manual CompactLog()
  // only (the legacy behaviour every pre-reconfig test assumes).
  size_t snapshot_every = 0;
};

class ZabNode {
 public:
  ZabNode(EventLoop* loop, Network* net, CpuQueue* cpu, LogStore* log, const CostModel& costs,
          ZabConfig config, ZabCallbacks* callbacks);

  ZabNode(const ZabNode&) = delete;
  ZabNode& operator=(const ZabNode&) = delete;

  // Initial boot (empty volatile state; durable log may contain history).
  void Start();
  // Simulated process crash: volatile state lost, unsynced log appends drop.
  void Crash();
  // Reboot after Crash(): reload the durable log and rejoin the ensemble.
  void Restart();

  // Leader-only: order `txn`. Returns false when this node cannot currently
  // broadcast (not leader, or sync phase still in progress).
  bool Broadcast(std::vector<uint8_t> txn);

  // Leader-only: replicate a membership change. Exactly one change relative
  // to the current membership is allowed per reconfig (add/remove one voter,
  // add/remove one observer, or promote one observer to voter); the change
  // activates on every node when the entry commits. Fails with kNotReady
  // when this node is not the active leader or another reconfig is still in
  // flight, kInvalidArgument on a malformed delta, and kNotReady when a
  // voter candidate's ack window lags the commit frontier by more than
  // config.promote_lag (let it catch up as an observer first and retry).
  Status ProposeReconfig(ZabMembership next);
  // An appended-but-not-yet-activated reconfig entry exists in the log.
  bool HasPendingReconfig() const;

  const ZabMembership& membership() const { return membership_; }
  bool is_voter() const { return membership_.IsVoter(config_.self); }
  // Whether any activated (version > 0) membership — or the bootstrap voter
  // config — includes this node. A joining observer stays un-admitted while
  // it catches up past configs that predate its add; only an admitted node
  // retires on exclusion. Inside OnMembershipChange this still reports the
  // pre-change value for an excluding config, so service layers can decide
  // whether the exclusion retires them or is just history sailing past.
  bool admitted() const { return admitted_; }
  // Leader-side catch-up introspection: highest contiguously durable zxid
  // `peer` has acked this leadership term (0 = nothing yet).
  uint64_t PeerAckWindow(NodeId peer) const;

  // Routes a Zab-range packet into the protocol (charges CPU internally).
  void HandlePacket(Packet&& pkt);

  bool running() const { return role_ != Role::kDown; }
  bool is_leader() const { return role_ == Role::kLeading && broadcast_active_; }
  bool is_active_follower() const { return role_ == Role::kFollowing && synced_; }
  NodeId leader() const { return leader_; }
  uint32_t epoch() const { return current_epoch_; }
  uint64_t last_committed() const { return committed_zxid_; }
  uint64_t last_logged() const;

  // Leader-side peer liveness: sim time we last heard anything protocol-level
  // from `peer` this leadership term (heartbeat acks, proposal acks, sync
  // traffic). 0 = not heard from since this node became leader. The service
  // layer uses it to expire sessions owned by dead replicas (§5.1).
  SimTime PeerLastSeen(NodeId peer) const;

  // Testing/ablation: forget log entries up to the current commit frontier,
  // keeping a snapshot, to force the SNAP path for lagging followers.
  void CompactLog();

  // Observability (nullable): proposal/commit/heartbeat counters, plus
  // leader-side trace propagation — the context active at Broadcast() is
  // remembered per zxid and restored around OnDeliver + the COMMIT fanout,
  // so a committed transaction's delivery (and the follower work the COMMIT
  // packets trigger) stays attributed to the originating client operation.
  void SetObs(Obs* obs);

 private:
  enum class Role { kDown, kLooking, kFollowing, kLeading };

  struct Vote {
    uint32_t epoch = 0;
    uint64_t zxid = 0;
    NodeId node = 0;

    bool BetterThan(const Vote& o) const {
      if (epoch != o.epoch) {
        return epoch > o.epoch;
      }
      if (zxid != o.zxid) {
        return zxid > o.zxid;
      }
      return node > o.node;
    }
    bool operator==(const Vote& o) const {
      return epoch == o.epoch && zxid == o.zxid && node == o.node;
    }
  };

  size_t Quorum() const { return membership_.voters.size() / 2 + 1; }
  void SendTo(NodeId dst, ZabMsgType type, std::vector<uint8_t> payload);
  void BroadcastMsg(ZabMsgType type, const std::vector<uint8_t>& payload);

  void Process(Packet&& pkt);

  // Membership.
  ZabMembership BootMembership() const;
  Status ValidateReconfig(const ZabMembership& next) const;
  // Decodes and installs the membership carried by a committed reconfig
  // entry, fires OnMembershipChange, and retires this node when the new
  // membership drops it. Returns false exactly when the node retired (the
  // caller must stop touching state).
  bool ActivateMembership(uint64_t zxid, const std::vector<uint8_t>& txn);
  // Re-derives membership from durable evidence (snapshot + the last
  // reconfig entry still in the log) after a truncation discarded entries.
  void RecomputeMembershipFromLog();
  // Re-derives admitted_ from the membership in force (see its doc).
  void ResetAdmission();
  void Retire();
  void MaybeAutoCompact();

  // Election.
  void EnterLooking();
  void ElectionRetryTick();
  void SendMyVote(NodeId dst_or_all);
  void OnElectionVote(const ElectionVote& vote, NodeId from);
  void OnLeaderInfo(const LeaderInfo& info);
  void CheckElectionDecision();
  void DecideLeader(NodeId leader, uint32_t leader_epoch);

  // Leading.
  void BecomeLeader();
  void OnFollowerInfo(NodeId from, const FollowerInfo& info);
  void OnAckNewLeader(NodeId from, const FollowerInfo& info);
  void OnAck(NodeId from, const ZxidMsg& msg);
  void OnHeartbeatAck(NodeId from, const EpochMsg& msg);
  void TouchPeer(NodeId from);
  void RecordAck(NodeId from, uint64_t zxid);
  void TryCommit();
  void ActivateBroadcastIfQuorum();
  void SendHeartbeats();
  bool BroadcastInternal(std::vector<uint8_t> txn, uint8_t flags);

  // Following.
  void BecomeFollower(NodeId leader, uint32_t leader_epoch);
  void OnPropose(const ProposeFrameView& msg);
  void OnLocalBatchDurable();
  void OnCommitMsg(const ZxidMsg& msg);
  void OnDiff(DiffMsg&& msg);
  void OnTrunc(const ZxidMsg& msg);
  void OnSnap(SnapMsg&& msg);
  void OnNewLeader(const EpochMsg& msg);
  void OnUpToDate(const EpochMsg& msg);
  void OnHeartbeat(NodeId from, const EpochMsg& msg);
  void ResetLeaderTimeout();

  // Shared.
  void DeliverUpTo(uint64_t frontier);
  void AppendDurable(ZabProposal proposal, std::function<void()> on_durable);
  // Appends pre-encoded proposal-frame bytes (the hot path: the frame was
  // already built once for the wire) and tracks the local durable watermark.
  void AppendRecordDurable(uint64_t zxid, std::vector<uint8_t> record,
                           std::function<void()> on_durable);
  const ZabProposal* FindInHistory(uint64_t zxid) const;
  void ArmTimer(TimerId* slot, Duration delay, std::function<void()> fn);

  EventLoop* loop_;
  Network* net_;
  CpuQueue* cpu_;
  LogStore* log_;
  CostModel costs_;
  ZabConfig config_;
  ZabCallbacks* callbacks_;

  Role role_ = Role::kDown;
  uint64_t generation_ = 0;  // invalidates timers/log-callbacks across crashes
  uint32_t current_epoch_ = 0;
  NodeId leader_ = 0;

  // The membership in force: quorums are majorities of membership_.voters;
  // BroadcastMsg fans out to voters and observers alike. Rebuilt on every
  // Start/Restart from boot config + durable snapshot + the log's last
  // reconfig entry (latest-wins, Raft-style — commit status of a logged
  // reconfig is unknowable at boot and single-change memberships have
  // pairwise-intersecting quorums, so acting on the newest is safe).
  ZabMembership membership_;
  // Whether a membership actually admitted this node. A bootstrap voter is
  // admitted by construction; a joining observer's self-entry in its boot
  // config is provisional — it becomes real only once an activated (or
  // durably logged) config with version > 0 includes the node. Retirement
  // requires admission first: otherwise a joiner replaying historical
  // reconfig entries that predate its own add would retire itself before
  // ever reaching the entry that admits it.
  bool admitted_ = false;

  // Log state. `history_` mirrors the durable log plus in-flight appends;
  // entries at index i have zxid history_[i].zxid, all > base_zxid_.
  std::vector<ZabProposal> history_;
  uint64_t base_zxid_ = 0;  // zxid covered by the latest installed snapshot
  uint64_t committed_zxid_ = 0;
  size_t delivered_count_ = 0;  // prefix of history_ already delivered

  // Election state.
  uint64_t election_round_ = 0;
  Vote my_vote_;
  std::map<NodeId, Vote> tally_;

  // Leader state.
  uint32_t counter_ = 0;
  bool broadcast_active_ = false;
  // Cumulative ack window: highest zxid each member has made contiguously
  // durable this leadership term. An ack for zxid z covers everything <= z —
  // sound because followers append strictly in zxid order (OnPropose rejects
  // gaps and forces a resync) and the LogStore publishes durability in
  // append order. TryCommit advances the commit point while a quorum's
  // window covers the next undelivered zxid, which tolerates acks arriving
  // out of order across pipelined batches without ever committing a gap.
  std::map<NodeId, uint64_t> acked_;
  std::set<NodeId> newleader_acks_;
  std::map<NodeId, SimTime> peer_last_seen_;  // reset each leadership term

  // Follower state.
  bool synced_ = false;
  uint64_t durable_zxid_ = 0;  // highest zxid locally durable this boot
  uint64_t acked_zxid_ = 0;    // highest zxid acked to the current leader

  // Reused per-batch encode arena for the proposal hot path (leader frame
  // build + follower DIFF re-logging): one growing buffer per batch instead
  // of one allocation per message.
  Encoder arena_;

  TimerId election_timer_ = kInvalidTimer;
  TimerId heartbeat_timer_ = kInvalidTimer;
  TimerId leader_timeout_timer_ = kInvalidTimer;

  // Observability.
  struct ProposalTrace {
    TraceContext ctx;
    SimTime at = 0;
  };
  Obs* obs_ = nullptr;
  Counter* m_proposals_ = nullptr;
  Counter* m_commits_ = nullptr;
  Counter* m_heartbeats_ = nullptr;
  std::map<uint64_t, ProposalTrace> proposal_trace_;  // leader-term scoped
};

}  // namespace edc

#endif  // EDC_ZAB_NODE_H_
