#include "edc/sim/event_loop.h"

#include <cassert>
#include <utility>

namespace edc {

TimerId EventLoop::Schedule(Duration delay, Callback cb) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(cb));
}

TimerId EventLoop::ScheduleAt(SimTime at, Callback cb) {
  assert(cb && "null callback scheduled");
  if (at < now_) {
    at = now_;
  }
  TimerId id = next_id_++;
  Event ev{at, next_seq_++, id, std::move(cb), EventContext{}};
  if (capture_) {
    ev.ctx = capture_();
  }
  queue_.push(std::move(ev));
  return id;
}

void EventLoop::Cancel(TimerId id) {
  if (id != kInvalidTimer) {
    cancelled_.insert(id);
  }
}

bool EventLoop::PopAndRun() {
  // const_cast to move the callback out: priority_queue::top() is const, but
  // we pop immediately after, so the move never breaks heap invariants.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  auto it = cancelled_.find(ev.id);
  if (it != cancelled_.end()) {
    cancelled_.erase(it);
    return false;
  }
  assert(ev.at >= now_);
  now_ = ev.at;
  if (activate_) {
    activate_(ev.ctx);
    ev.cb();
    activate_(EventContext{});
  } else {
    ev.cb();
  }
  ++events_processed_;
  return true;
}

uint64_t EventLoop::Run() {
  stopped_ = false;
  uint64_t n = 0;
  while (!queue_.empty() && !stopped_) {
    if (PopAndRun()) {
      ++n;
    }
  }
  return n;
}

uint64_t EventLoop::RunUntil(SimTime deadline) {
  stopped_ = false;
  uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().at <= deadline) {
    if (PopAndRun()) {
      ++n;
    }
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

}  // namespace edc
