// Leader-side request preprocessing (ZooKeeper's PrepRequestProcessor).
//
// Between proposing a transaction and committing it, the leader's tree does
// not yet reflect it; a second request prepped in that window must still see
// the first one's effects or compare-and-swap pipelines would miss updates.
// ZooKeeper solves this with an "outstanding changes" overlay; PrepSession is
// that overlay. Reads consult (current txn delta) -> (outstanding deltas,
// newest first) -> committed tree; mutations validate against the same view
// and record both the deterministic ZkTxnOp and the delta.
//
// The extension sandbox's state proxy drives the same PrepSession, which is
// what makes an extension's operation sequence atomic: all of its ops land in
// one multi-transaction.

#ifndef EDC_ZK_PREP_H_
#define EDC_ZK_PREP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "edc/common/result.h"
#include "edc/zk/data_tree.h"
#include "edc/zk/txn.h"

namespace edc {

// Effects of one outstanding (proposed, uncommitted) transaction.
struct PendingDelta {
  struct NodeState {
    bool exists = false;
    std::string data;
    int32_t version = 0;
    uint64_t ephemeral_owner = 0;
    SimTime ctime = 0;
  };
  uint64_t session = 0;  // correlation key for retiring the delta on commit
  uint64_t req_id = 0;
  std::map<std::string, NodeState> nodes;
  std::map<std::string, uint64_t> next_seq;
  std::map<std::string, std::set<std::string>> children_added;
  std::map<std::string, std::set<std::string>> children_removed;
};

// View of a node through the overlay.
struct PrepNode {
  std::string data;
  int32_t version = 0;
  uint64_t ephemeral_owner = 0;
  SimTime ctime = 0;
};

class PrepSession {
 public:
  // `outstanding` are previously prepped, not-yet-committed deltas (oldest
  // first). The session id is used as ephemeral owner for ephemeral creates.
  PrepSession(const DataTree* tree, const std::deque<PendingDelta>* outstanding,
              uint64_t session, uint64_t req_id, SimTime now);

  // Reads through the overlay.
  bool Exists(const std::string& path) const;
  Result<PrepNode> Get(const std::string& path) const;
  Result<std::vector<std::string>> Children(const std::string& path) const;

  // Mutations: validate against the view, then record op + delta.
  Result<std::string> Create(const std::string& path, const std::string& data, bool ephemeral,
                             bool sequential);
  Status Delete(const std::string& path, int32_t version);
  Status SetData(const std::string& path, const std::string& data, int32_t version);
  // Registers a server-side unblock: the owner replica replies to
  // (session, req_id) once `path` is created. Caller checks existence first.
  void Block(const std::string& path);
  void CreateSession(uint64_t session, uint32_t owner_replica, Duration timeout);
  void CloseSession(uint64_t session);

  // Accumulated transaction ops (empty if the request was read-only).
  std::vector<ZkTxnOp>& ops() { return ops_; }
  const std::vector<ZkTxnOp>& ops() const { return ops_; }
  uint64_t session() const { return delta_.session; }
  uint64_t req_id() const { return delta_.req_id; }
  PendingDelta TakeDelta();

  size_t state_ops_performed() const { return state_ops_; }

 private:
  // nullptr => unknown in overlays, fall through to tree.
  const PendingDelta::NodeState* OverlayNode(const std::string& path) const;

  const DataTree* tree_;
  const std::deque<PendingDelta>* outstanding_;
  uint64_t session_;
  SimTime now_;
  PendingDelta delta_;
  std::vector<ZkTxnOp> ops_;
  size_t state_ops_ = 0;
};

}  // namespace edc

#endif  // EDC_ZK_PREP_H_
