#include "edc/script/analysis/domains.h"

#include <algorithm>

namespace edc {

namespace {

// True iff lo <= a*b <= hi never leaves int64 (checked in 128-bit).
bool MulFits(int64_t a, int64_t b, int64_t* out) {
  __int128 p = static_cast<__int128>(a) * static_cast<__int128>(b);
  if (p < static_cast<__int128>(INT64_MIN) || p > static_cast<__int128>(INT64_MAX)) {
    return false;
  }
  *out = static_cast<int64_t>(p);
  return true;
}

bool AddFits(int64_t a, int64_t b, int64_t* out) {
  __int128 s = static_cast<__int128>(a) + static_cast<__int128>(b);
  if (s < static_cast<__int128>(INT64_MIN) || s > static_cast<__int128>(INT64_MAX)) {
    return false;
  }
  *out = static_cast<int64_t>(s);
  return true;
}

// Longest decimal rendering of an int64 ("-9223372036854775808").
constexpr int64_t kIntStrLen = 20;

// |v| as int64; callers guard v != INT64_MIN.
int64_t Abs64(int64_t v) { return v < 0 ? -v : v; }

}  // namespace

int64_t AbsSatAdd(int64_t a, int64_t b) {
  if (a >= kAbsInf || b >= kAbsInf || a >= kAbsInf - b) {
    return kAbsInf;
  }
  return a + b;
}

int64_t AbsSatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  if (a >= kAbsInf || b >= kAbsInf || a >= kAbsInf / b) {
    return kAbsInf;
  }
  return a * b;
}

// ---- Interval ----

Interval Interval::Join(const Interval& a, const Interval& b) {
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval Interval::Add(const Interval& a, const Interval& b) {
  Interval out;
  if (a.IsTop() || b.IsTop() || !AddFits(a.lo, b.lo, &out.lo) ||
      !AddFits(a.hi, b.hi, &out.hi)) {
    return Top();  // runtime addition wraps: an overflow can be anything
  }
  return out;
}

Interval Interval::Sub(const Interval& a, const Interval& b) {
  Interval out;
  if (a.IsTop() || b.IsTop() || !AddFits(a.lo, b.hi == INT64_MIN ? INT64_MAX : -b.hi, &out.lo) ||
      !AddFits(a.hi, b.lo == INT64_MIN ? INT64_MAX : -b.lo, &out.hi)) {
    return Top();
  }
  if (b.hi == INT64_MIN || b.lo == INT64_MIN) {
    return Top();  // negation of INT64_MIN wraps
  }
  return out;
}

Interval Interval::Mul(const Interval& a, const Interval& b) {
  if (a.IsTop() || b.IsTop()) {
    return Top();
  }
  int64_t cand[4];
  if (!MulFits(a.lo, b.lo, &cand[0]) || !MulFits(a.lo, b.hi, &cand[1]) ||
      !MulFits(a.hi, b.lo, &cand[2]) || !MulFits(a.hi, b.hi, &cand[3])) {
    return Top();
  }
  return Interval{*std::min_element(cand, cand + 4), *std::max_element(cand, cand + 4)};
}

Interval Interval::Div(const Interval& a, const Interval& b) {
  if (a.IsTop() || b.IsTop()) {
    return Top();
  }
  // INT64_MIN / -1 wraps at runtime; bail near the edge.
  if (a.lo == INT64_MIN || b.lo == INT64_MIN) {
    return Top();
  }
  // |a/b| <= |a| for |b| >= 1 (the divisor is nonzero on the success path).
  int64_t m = std::max(Abs64(a.lo), Abs64(a.hi));
  return Interval{-m, m};
}

Interval Interval::Mod(const Interval& a, const Interval& b) {
  if (b.IsTop() || b.lo == INT64_MIN) {
    if (a.IsTop() || a.lo == INT64_MIN) {
      return Top();
    }
    int64_t m = std::max(Abs64(a.lo), Abs64(a.hi));
    return Interval{-m, m};  // |a % b| <= |a|
  }
  int64_t mb = std::max(Abs64(b.lo), Abs64(b.hi));
  if (mb == 0) {
    return Top();  // divisor interval is exactly {0}: runtime error path
  }
  // |a % b| < |b|; additionally <= |a| when a is known.
  int64_t m = mb - 1;
  if (!a.IsTop() && a.lo != INT64_MIN) {
    m = std::min(m, std::max(Abs64(a.lo), Abs64(a.hi)));
  }
  return Interval{-m, m};
}

Interval Interval::Neg(const Interval& a) {
  if (a.IsTop() || a.lo == INT64_MIN) {
    return Top();
  }
  return Interval{-a.hi, -a.lo};
}

// ---- AffBound ----

AffBound AffBound::Add(const AffBound& a, const AffBound& b) {
  if (a.IsInf() || b.IsInf()) {
    return Inf();
  }
  return AffBound{AbsSatAdd(a.c, b.c), AbsSatAdd(a.k, b.k)};
}

AffBound AffBound::AddConst(const AffBound& a, int64_t d) {
  if (a.IsInf()) {
    return Inf();
  }
  return AffBound{AbsSatAdd(a.c, d), a.k};
}

AffBound AffBound::Max(const AffBound& a, const AffBound& b) {
  if (a.IsInf() || b.IsInf()) {
    return Inf();
  }
  return AffBound{std::max(a.c, b.c), std::max(a.k, b.k)};
}

AffBound AffBound::MinConst(const AffBound& a, int64_t m) {
  if (a.k == 0) {
    return Const(std::min(a.c, m));
  }
  return a;  // the affine form is still a sound upper bound
}

AffBound AffBound::Mul(const AffBound& a, const AffBound& b) {
  if (a.IsInf() || b.IsInf() || (a.k > 0 && b.k > 0)) {
    return Inf();  // quadratic in the symbol: not representable
  }
  return AffBound{AbsSatMul(a.c, b.c),
                  AbsSatAdd(AbsSatMul(a.c, b.k), AbsSatMul(a.k, b.c))};
}

AffBound AffBound::PickMin(const AffBound& a, const AffBound& b, int64_t at) {
  if (a.IsInf()) {
    return b;
  }
  if (b.IsInf()) {
    return a;
  }
  if (a.c <= b.c && a.k <= b.k) {
    return a;
  }
  if (b.c <= a.c && b.k <= a.k) {
    return b;
  }
  return a.EvalAt(at) <= b.EvalAt(at) ? a : b;
}

int64_t AffBound::EvalAt(int64_t s) const {
  if (IsInf()) {
    return kAbsInf;
  }
  return AbsSatAdd(c, AbsSatMul(k, s));
}

// ---- AbsValue ----

AbsValue AbsValue::Any() { return AbsValue{}; }

AbsValue AbsValue::OfType(unsigned type_mask) {
  AbsValue v;
  v.types = type_mask;
  return v;
}

AbsValue AbsValue::Bool() {
  AbsValue v = OfType(kTBool);
  v.num = Interval::Range(0, 1);
  return v;
}

AbsValue AbsValue::BoolExact(bool b) {
  AbsValue v = OfType(kTBool);
  v.num = Interval::Exact(b ? 1 : 0);
  return v;
}

AbsValue AbsValue::Int(Interval iv) {
  AbsValue v = OfType(kTInt);
  v.num = iv;
  return v;
}

AbsValue AbsValue::Str(AffBound len) {
  AbsValue v = OfType(kTStr);
  v.str_len = len;
  return v;
}

AbsValue AbsValue::OfLiteral(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      return OfType(kTNull);
    case Value::Type::kBool:
      return BoolExact(v.AsBool());
    case Value::Type::kInt:
      return Int(Interval::Exact(v.AsInt()));
    case Value::Type::kStr:
      return Str(AffBound::Const(static_cast<int64_t>(v.AsStr().size())));
    case Value::Type::kList:
    case Value::Type::kMap:
      // The grammar has no list/map literals beyond kListLit (handled by the
      // cost pass directly); stay conservative.
      return Any();
  }
  return Any();
}

AbsValue AbsValue::Join(const AbsValue& a, const AbsValue& b) {
  AbsValue out;
  out.types = a.types | b.types;
  out.num = Interval::Join(a.num, b.num);
  out.str_len = AffBound::Max(a.str_len, b.str_len);
  out.card = AffBound::Max(a.card, b.card);
  out.elem_len = AffBound::Max(a.elem_len, b.elem_len);
  out.total_len = AffBound::Max(a.total_len, b.total_len);
  return out;
}

AbsValue AbsValue::Widened(int64_t max_value_bytes) {
  // Widening target: any type, any int, but string lengths still obey the
  // global materialization cap (every value a variable can hold passed a
  // max_value_bytes check or is an input/literal below it). Cardinality and
  // totals stay unbounded: a variable can be rebound to a raw parameter
  // list, which no cap governs.
  AbsValue v;
  v.str_len = AffBound::Const(max_value_bytes);
  v.elem_len = AffBound::Const(max_value_bytes);
  return v;
}

// ---- Transfer helpers ----

AffBound StrishLen(const AbsValue& v, const DomainContext& ctx) {
  AffBound out = AffBound::Const(0);
  if (v.May(kTNull)) {
    out = AffBound::Max(out, AffBound::Const(4));  // "null"
  }
  if (v.May(kTBool)) {
    out = AffBound::Max(out, AffBound::Const(5));  // "false"
  }
  if (v.May(kTInt)) {
    out = AffBound::Max(out, AffBound::Const(kIntStrLen));
  }
  if (v.May(kTStr)) {
    out = AffBound::Max(out, v.str_len);
  }
  if (v.May(kTList) || v.May(kTMap)) {
    // ToString of a collection serializes the whole (<= max_value_bytes)
    // value; the rendering adds brackets/quotes bounded by ~4 bytes per
    // element, all within 2x the ApproxSize footprint.
    out = AffBound::Max(out, AffBound::Const(AbsSatMul(ctx.max_value_bytes, 2)));
  }
  return out;
}

AbsValue ClampResult(AbsValue v, const DomainContext& ctx) {
  // Every builtin/host result passes a max_value_bytes ApproxSize check, so:
  // a string is at most max_value_bytes long, a collection holds at most
  // max_value_bytes/8 items (each item accounts >= 8 bytes), and no string
  // inside can exceed max_value_bytes.
  v.str_len = AffBound::MinConst(v.str_len, ctx.max_value_bytes);
  v.card = AffBound::MinConst(v.card, ctx.max_value_bytes / 8);
  v.elem_len = AffBound::MinConst(v.elem_len, ctx.max_value_bytes);
  v.total_len = AffBound::MinConst(v.total_len, ctx.max_value_bytes);
  return v;
}

AbsValue ElementOf(const AbsValue& coll, const DomainContext& ctx, bool symbolic) {
  AbsValue elem;  // elements can be anything
  AffBound len = symbolic ? AffBound::Sym() : coll.elem_len;
  // Any string reachable in the element — including the element itself when
  // it is a string, and strings nested one level down when it is a map —
  // is covered by the collection's elem_len bound.
  elem.str_len = len;
  elem.elem_len = len;
  elem.card = AffBound::MinConst(AffBound::Inf(), ctx.max_value_bytes / 8);
  elem.total_len = AffBound::MinConst(AffBound::Inf(), ctx.max_value_bytes);
  return elem;
}

AbsValue SeedParam(const DomainContext& ctx) {
  // Handler arguments pass the pre-dispatch ingest check: a non-list
  // argument fits max_input_bytes entirely; a list argument admits each
  // element up to max_input_bytes but its *cardinality is unbounded* — no
  // runtime cap governs argument lists, so a foreach over a raw parameter
  // must stay uncertified (EDC-W005).
  AbsValue v;
  v.str_len = AffBound::Const(ctx.max_input_bytes);
  v.elem_len = AffBound::Const(ctx.max_input_bytes);
  return v;
}

AbsValue TransferHost(const std::string& name, const DomainContext& ctx) {
  if (ctx.collection_functions != nullptr && ctx.collection_functions->count(name) > 0) {
    AbsValue v = AbsValue::OfType(kTList);
    v.card = AffBound::Const(ctx.collection_cap);
    v.elem_len = AffBound::Const(ctx.max_input_bytes);
    v.total_len = AffBound::Const(
        std::min(AbsSatMul(ctx.collection_cap, ctx.max_input_bytes), ctx.max_value_bytes));
    return ClampResult(v, ctx);
  }
  // Generic host result: ingest-capped. A non-list result fits
  // max_input_bytes entirely (so any string in or of it is shorter); a list
  // result admits each element up to max_input_bytes with the whole list
  // bounded by max_value_bytes.
  AbsValue v;
  v.str_len = AffBound::Const(ctx.max_input_bytes);
  v.elem_len = AffBound::Const(ctx.max_input_bytes);
  return ClampResult(v, ctx);
}

AbsValue TransferBuiltin(const std::string& name, const std::vector<AbsValue>& args,
                         const DomainContext& ctx) {
  const auto arg = [&](size_t i) -> AbsValue {
    return i < args.size() ? args[i] : AbsValue::Any();
  };

  if (name == "len") {
    AbsValue a = arg(0);
    AffBound ub = AffBound::Const(0);
    if (a.May(kTStr)) {
      ub = AffBound::Max(ub, a.str_len);
    }
    if (a.May(kTList) || a.May(kTMap)) {
      ub = AffBound::Max(ub, a.card);
    }
    Interval iv = ub.IsConst() ? Interval::Range(0, ub.c) : Interval::Range(0, INT64_MAX);
    return AbsValue::Int(iv);
  }
  if (name == "str") {
    return ClampResult(AbsValue::Str(StrishLen(arg(0), ctx)), ctx);
  }
  if (name == "parse_int") {
    return AbsValue::Int(Interval::Top());
  }
  if (name == "abs") {
    Interval a = arg(0).num;
    if (arg(0).Only(kTInt) && !a.IsTop() && a.lo != INT64_MIN) {
      int64_t m = std::max(Abs64(a.lo), Abs64(a.hi));
      return AbsValue::Int(Interval::Range(0, m));
    }
    return AbsValue::Int(Interval::Top());  // abs(INT64_MIN) wraps negative
  }
  if (name == "min" || name == "max") {
    AbsValue a = arg(0);
    AbsValue b = arg(1);
    if (a.Only(kTInt) && b.Only(kTInt)) {
      Interval iv = name == "min"
                        ? Interval::Range(std::min(a.num.lo, b.num.lo),
                                          std::min(a.num.hi, b.num.hi))
                        : Interval::Range(std::max(a.num.lo, b.num.lo),
                                          std::max(a.num.hi, b.num.hi));
      return AbsValue::Int(iv);
    }
    return ClampResult(AbsValue::Join(a, b), ctx);
  }
  if (name == "concat") {
    AffBound len = AffBound::Const(0);
    for (const AbsValue& a : args) {
      len = AffBound::Add(len, StrishLen(a, ctx));
    }
    return ClampResult(AbsValue::Str(len), ctx);
  }
  if (name == "substr") {
    AffBound len = arg(0).str_len;
    Interval count = arg(2).num;
    if (count.hi != INT64_MAX) {
      len = AffBound::PickMin(len, AffBound::Const(std::max<int64_t>(0, count.hi)),
                              ctx.max_input_bytes);
    }
    return ClampResult(AbsValue::Str(len), ctx);
  }
  if (name == "starts_with" || name == "ends_with" || name == "contains" ||
      name == "has") {
    return AbsValue::Bool();
  }
  if (name == "index_of") {
    AffBound sl = arg(0).str_len;
    Interval iv = sl.IsConst() ? Interval::Range(-1, std::max<int64_t>(0, sl.c - 1))
                               : Interval::Range(-1, INT64_MAX);
    return AbsValue::Int(iv);
  }
  if (name == "split") {
    AffBound sl = arg(0).str_len;
    AbsValue v = AbsValue::OfType(kTList);
    // A string of length L splits into at most L+1 pieces; the runtime
    // additionally aborts past the collection cap. The pieces are disjoint
    // substrings, so their lengths sum to at most L.
    v.card = AffBound::MinConst(AffBound::AddConst(sl, 1), ctx.collection_cap);
    v.elem_len = sl;
    v.total_len = sl;
    return ClampResult(v, ctx);
  }
  if (name == "append") {
    AbsValue l = arg(0);
    AffBound xl = StrishLen(arg(1), ctx);
    AbsValue v = AbsValue::OfType(kTList);
    v.card = AffBound::MinConst(AffBound::AddConst(l.card, 1), ctx.collection_cap);
    v.elem_len = AffBound::Max(l.elem_len, xl);
    v.total_len = AffBound::Add(l.total_len, xl);
    return ClampResult(v, ctx);
  }
  if (name == "get") {
    AbsValue base = arg(0);
    AbsValue elem = ElementOf(base, ctx, /*symbolic=*/false);
    if (base.May(kTMap)) {
      elem.types |= kTNull;  // missing map key yields null
    }
    return elem;
  }
  if (name == "keys") {
    AbsValue m = arg(0);
    AbsValue v = AbsValue::OfType(kTList);
    v.card = m.card;
    v.elem_len = m.elem_len;  // keys are covered by the per-item ApproxSize
    v.total_len = AffBound::Mul(m.card, m.elem_len);
    return ClampResult(v, ctx);
  }
  if (name == "min_by" || name == "max_by") {
    AbsValue elem = ElementOf(arg(0), ctx, /*symbolic=*/false);
    elem.types |= kTNull;  // empty list yields null
    return elem;
  }
  if (name == "sort_by") {
    return arg(0);  // stable permutation: all bounds preserved
  }
  if (name == "error") {
    return AbsValue::Any();  // never returns normally
  }
  return ClampResult(AbsValue::Any(), ctx);
}

}  // namespace edc
