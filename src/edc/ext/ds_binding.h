// EXTENSIBLE DEPSPACE binding (paper §5.2).
//
// The extension manager sits at the bottom of the replica stack: every
// ordered request passes it before policy enforcement and access control.
// Because the ordering protocol already executes every request on every
// replica, extensions simply run inline inside Execute — no multi-transaction
// machinery — but in exchange the verifier enforces full determinism: the
// EDS white list contains no now()/random() (§4.1.1).
//
// The /em tuple namespace is the manager's dedicated space: registrations,
// acknowledgments and deregistrations are ordinary out/inp operations on it
// (intercepted here), and the registry is rebuilt from those tuples after a
// restart (§3.8).

#ifndef EDC_EXT_DS_BINDING_H_
#define EDC_EXT_DS_BINDING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "edc/ds/hooks.h"
#include "edc/ds/server.h"
#include "edc/ext/registry.h"
#include "edc/script/interpreter.h"

namespace edc {

class DsExtensionManager : public DsServerHooks {
 public:
  DsExtensionManager(DsServer* server, ExtensionLimits limits);

  // DsServerHooks.
  bool MatchesOperation(NodeId client, const DsOp& op) const override;
  DsExecOutcome HandleOperation(DsExecContext* ctx, NodeId client, const DsOp& op) override;
  void DispatchEvents(DsExecContext* ctx, const std::vector<DsEvent>& events) override;
  bool AllowUnblock(NodeId client, const DsTemplate& templ, const DsTuple& tuple) override;
  void OnStateReloaded() override;

  const ExtensionRegistry& registry() const { return registry_; }
  const VerifierConfig& verifier_config() const { return verifier_config_; }

 private:
  static std::string KindOf(const DsOp& op);
  // Target path of the operation in the object model (<path, data> tuples).
  static std::string PathOf(const DsOp& op);

  DsExecOutcome HandleEmTraffic(DsExecContext* ctx, NodeId client, const DsOp& op);
  DsExecOutcome RunOperationExtension(const LoadedExtension& ext, DsExecContext* ctx,
                                      NodeId client, const DsOp& op);
  void RunEventExtension(LoadedExtension* ext, DsExecContext* ctx, const std::string& kind,
                         const std::string& path);

  DsServer* server_;
  ExtensionLimits limits_;
  VerifierConfig verifier_config_;
  ExtensionRegistry registry_;
};

}  // namespace edc

#endif  // EDC_EXT_DS_BINDING_H_
