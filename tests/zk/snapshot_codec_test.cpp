// Adversarial coverage of the DataTree framed snapshot codec
// (docs/reconfig.md): a snapshot image truncated or corrupted at EVERY byte
// offset must fail RestoreImage with kDecodeError and leave the target tree
// byte-identical to its pre-call state — the codec never half-applies. These
// are the images shipped to joiners during snapshot catch-up and persisted as
// the durable log-compaction blob, so a torn write or short read anywhere in
// the frame must be survivable.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "edc/zk/data_tree.h"

namespace edc {
namespace {

// A tree with enough variety that the payload exercises every field kind:
// nested paths, ephemerals, sequentials, empty and binary-ish data.
void Populate(DataTree* tree) {
  uint64_t zxid = 1;
  ASSERT_TRUE(tree->Create("/a", "alpha", 0, false, zxid++, 10000).ok());
  ASSERT_TRUE(tree->Create("/a/b", std::string("\x00\xff\x7f", 3), 0, false, zxid++,
                           20000)
                  .ok());
  ASSERT_TRUE(tree->Create("/a/b/c", "", 0, false, zxid++, 30000).ok());
  ASSERT_TRUE(tree->Create("/eph", "session-owned", 42, false, zxid++, 40000).ok());
  ASSERT_TRUE(tree->Create("/a/seq", "s", 0, true, zxid++, 50000).ok());
  ASSERT_TRUE(tree->Create("/a/seq", "s", 0, true, zxid++, 60000).ok());
  ASSERT_TRUE(tree->SetData("/a", "alpha2", -1, zxid++, 70000).ok());
}

// A different, recognizable state for the restore target, so a half-applied
// restore cannot masquerade as "unchanged".
void PopulateTarget(DataTree* tree) {
  ASSERT_TRUE(tree->Create("/target", "sentinel", 0, false, 100, 5000).ok());
  ASSERT_TRUE(tree->Create("/target/x", "y", 7, false, 101, 6000).ok());
}

class SnapshotCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Populate(&source_);
    image_ = source_.SerializeImage();
    ASSERT_GT(image_.size(), 12u);  // header + non-empty payload
  }

  DataTree source_;
  std::vector<uint8_t> image_;
};

TEST_F(SnapshotCodecTest, RoundTripRestoresIdenticalTree) {
  DataTree restored;
  PopulateTarget(&restored);  // pre-existing state must be fully replaced
  ASSERT_TRUE(restored.RestoreImage(image_).ok());
  EXPECT_EQ(restored.Serialize(), source_.Serialize());
  EXPECT_EQ(restored.node_count(), source_.node_count());
  EXPECT_FALSE(restored.Exists("/target"));
  EXPECT_EQ(restored.EphemeralsOf(42), std::vector<std::string>{"/eph"});
}

TEST_F(SnapshotCodecTest, TruncationAtEveryByteFailsCleanly) {
  for (size_t keep = 0; keep < image_.size(); ++keep) {
    std::vector<uint8_t> truncated(image_.begin(), image_.begin() + keep);
    DataTree target;
    PopulateTarget(&target);
    std::vector<uint8_t> before = target.Serialize();
    Status s = target.RestoreImage(truncated);
    ASSERT_FALSE(s.ok()) << "truncation to " << keep << " bytes was accepted";
    EXPECT_EQ(s.code(), ErrorCode::kDecodeError) << "at " << keep;
    EXPECT_EQ(target.Serialize(), before)
        << "restore from " << keep << "-byte prefix mutated the tree";
  }
}

TEST_F(SnapshotCodecTest, CorruptionAtEveryByteFailsCleanly) {
  for (size_t at = 0; at < image_.size(); ++at) {
    std::vector<uint8_t> corrupt = image_;
    corrupt[at] ^= 0x01;
    DataTree target;
    PopulateTarget(&target);
    std::vector<uint8_t> before = target.Serialize();
    Status s = target.RestoreImage(corrupt);
    ASSERT_FALSE(s.ok()) << "flipped bit at offset " << at << " was accepted";
    EXPECT_EQ(s.code(), ErrorCode::kDecodeError) << "at " << at;
    EXPECT_EQ(target.Serialize(), before)
        << "restore of image corrupted at " << at << " mutated the tree";
  }
}

TEST_F(SnapshotCodecTest, TrailingGarbageRejected) {
  std::vector<uint8_t> padded = image_;
  padded.push_back(0x00);
  DataTree target;
  EXPECT_EQ(target.RestoreImage(padded).code(), ErrorCode::kDecodeError);
  padded.push_back(0xff);
  EXPECT_EQ(target.RestoreImage(padded).code(), ErrorCode::kDecodeError);
}

TEST_F(SnapshotCodecTest, EmptyImageRejected) {
  DataTree target;
  EXPECT_EQ(target.RestoreImage({}).code(), ErrorCode::kDecodeError);
}

TEST_F(SnapshotCodecTest, FailedRestoreKeepsTargetUsable) {
  DataTree target;
  PopulateTarget(&target);
  std::vector<uint8_t> corrupt = image_;
  corrupt[corrupt.size() / 2] ^= 0xff;
  ASSERT_FALSE(target.RestoreImage(corrupt).ok());
  // The tree is not just byte-stable, it still works.
  EXPECT_TRUE(target.Create("/target/z", "w", 0, false, 200, 9000).ok());
  EXPECT_TRUE(target.Exists("/target/x"));
  // And a subsequent good restore succeeds (idempotent re-fetch path).
  ASSERT_TRUE(target.RestoreImage(image_).ok());
  EXPECT_EQ(target.Serialize(), source_.Serialize());
}

}  // namespace
}  // namespace edc
