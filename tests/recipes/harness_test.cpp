// Sanity tests for the benchmark harness itself (fixture + closed loop).

#include <gtest/gtest.h>

#include "bench/common.h"
#include "edc/harness/driver.h"
#include "edc/harness/fixture.h"

namespace edc {
namespace {

TEST(HarnessTest, FixtureBootsAllFourSystems) {
  for (SystemKind system : AllSystems()) {
    FixtureOptions options;
    options.system = system;
    options.num_clients = 3;
    CoordFixture fixture(options);
    fixture.Start();
    EXPECT_EQ(fixture.num_clients(), 3u) << SystemName(system);
    // Every client can complete one operation.
    int done = 0;
    for (size_t i = 0; i < 3; ++i) {
      fixture.coord(i)->Create("/boot-" + std::to_string(i), "x",
                               [&](Result<std::string> r) {
                                 EXPECT_TRUE(r.ok()) << r.status().ToString();
                                 ++done;
                               });
    }
    fixture.Settle(Seconds(2));
    EXPECT_EQ(done, 3) << SystemName(system);
  }
}

TEST(HarnessTest, ClosedLoopMeasuresOnlyTheWindow) {
  FixtureOptions options;
  options.system = SystemKind::kZooKeeper;
  options.num_clients = 2;
  CoordFixture fixture(options);
  fixture.Start();
  bool ready = false;
  fixture.coord(0)->Create("/x", "v", [&](Result<std::string>) { ready = true; });
  fixture.Settle(Seconds(1));
  ASSERT_TRUE(ready);

  ClosedLoop driver(&fixture, [&](size_t i, std::function<void()> done) {
    fixture.coord(i)->Read("/x", [done = std::move(done)](Result<std::string>) { done(); });
  });
  RunStats stats = driver.Run(Millis(500), Seconds(2));
  EXPECT_GT(stats.ops, 100);  // reads are sub-millisecond; thousands fit
  EXPECT_GT(stats.client_bytes, 0);
  EXPECT_GT(stats.ThroughputOpsPerSec(), 100.0);
  EXPECT_GT(stats.MeanLatencyMs(), 0.0);
  EXPECT_LT(stats.MeanLatencyMs(), 50.0);
  // Latency samples only from inside the window.
  EXPECT_EQ(static_cast<int64_t>(stats.latency.count()), stats.ops);
}

TEST(HarnessTest, ClientBytesMonotonic) {
  FixtureOptions options;
  options.system = SystemKind::kDepSpace;
  options.num_clients = 1;
  CoordFixture fixture(options);
  fixture.Start();
  int64_t before = fixture.ClientBytesSent();
  bool done = false;
  fixture.coord(0)->Create("/b", "data", [&](Result<std::string>) { done = true; });
  fixture.Settle(Seconds(1));
  ASSERT_TRUE(done);
  // DepSpace clients multicast to all 4 replicas: 4 request frames at least.
  int64_t delta = fixture.ClientBytesSent() - before;
  EXPECT_GE(delta, static_cast<int64_t>(4 * kFrameOverheadBytes));
}

TEST(HarnessTest, WanLinkRaisesLatency) {
  FixtureOptions lan;
  lan.system = SystemKind::kZooKeeper;
  lan.num_clients = 1;
  FixtureOptions wan = lan;
  wan.link.latency = Millis(20);
  wan.link.jitter = 0;

  auto measure = [](FixtureOptions options) {
    CoordFixture fixture(options);
    fixture.Start();
    bool ready = false;
    fixture.coord(0)->Create("/w", "v", [&](Result<std::string>) { ready = true; });
    fixture.Settle(Seconds(2));
    EXPECT_TRUE(ready);
    SimTime start = fixture.loop().now();
    SimTime end = 0;
    bool read_done = false;
    fixture.coord(0)->Read("/w", [&](Result<std::string>) {
      end = fixture.loop().now();
      read_done = true;
    });
    fixture.Settle(Seconds(2));
    EXPECT_TRUE(read_done);
    return end - start;
  };
  Duration lan_latency = measure(lan);
  Duration wan_latency = measure(wan);
  EXPECT_GT(wan_latency, lan_latency + Millis(30));  // ~2x 20ms one-way
}

}  // namespace
}  // namespace edc
