// One observability bundle per fixture/cluster: a Tracer (causal spans) and a
// MetricsRegistry (counters/gauges/histograms). Components take a nullable
// Obs* via SetObs; null means all instrumentation compiles down to a branch.

#ifndef EDC_OBS_OBS_H_
#define EDC_OBS_OBS_H_

#include "edc/obs/metrics.h"
#include "edc/obs/trace.h"

namespace edc {

struct Obs {
  Tracer tracer;
  MetricsRegistry metrics;
};

}  // namespace edc

#endif  // EDC_OBS_OBS_H_
