# Empty dependencies file for edc_common.
# This may be replaced when dependencies are built.
