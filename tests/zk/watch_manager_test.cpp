// WatchManager semantics: one-shot delivery, deletion firing both watch
// kinds, session cleanup — plus end-to-end coverage of the connection-local
// watch lifecycle (single fire per arm, re-arm after failover, no phantom
// fires after session expiry).

#include "edc/zk/watch_manager.h"

#include <gtest/gtest.h>

#include <vector>

#include "edc/harness/fixture.h"

namespace edc {
namespace {

TEST(WatchManagerTest, DataWatchFiresOnceThenGone) {
  WatchManager wm;
  wm.AddDataWatch("/a", 7);
  EXPECT_EQ(wm.data_watch_count(), 1u);
  EXPECT_EQ(wm.Trigger(ZkEventType::kNodeDataChanged, "/a"), (std::vector<uint64_t>{7}));
  EXPECT_EQ(wm.data_watch_count(), 0u);
  EXPECT_TRUE(wm.Trigger(ZkEventType::kNodeDataChanged, "/a").empty());
}

TEST(WatchManagerTest, DeleteFiresDataAndChildWatches) {
  WatchManager wm;
  wm.AddDataWatch("/a", 1);
  wm.AddChildWatch("/a", 2);
  std::vector<uint64_t> fired = wm.Trigger(ZkEventType::kNodeDeleted, "/a");
  EXPECT_EQ(fired, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(wm.data_watch_count(), 0u);
  EXPECT_EQ(wm.child_watch_count(), 0u);
}

TEST(WatchManagerTest, EventKindsMatchWatchKinds) {
  WatchManager wm;
  wm.AddDataWatch("/a", 1);
  wm.AddChildWatch("/a", 2);
  // A membership change pops only the child watch; a data change only the
  // data watch. Neither disturbs the other registration.
  EXPECT_EQ(wm.Trigger(ZkEventType::kNodeChildrenChanged, "/a"), (std::vector<uint64_t>{2}));
  EXPECT_EQ(wm.data_watch_count(), 1u);
  EXPECT_EQ(wm.Trigger(ZkEventType::kNodeDataChanged, "/a"), (std::vector<uint64_t>{1}));
  EXPECT_EQ(wm.child_watch_count(), 0u);
}

TEST(WatchManagerTest, RemoveSessionDropsAllItsWatches) {
  WatchManager wm;
  wm.AddDataWatch("/a", 1);
  wm.AddDataWatch("/a", 2);
  wm.AddChildWatch("/b", 1);
  wm.RemoveSession(1);
  EXPECT_EQ(wm.Trigger(ZkEventType::kNodeDataChanged, "/a"), (std::vector<uint64_t>{2}));
  EXPECT_TRUE(wm.Trigger(ZkEventType::kNodeChildrenChanged, "/b").empty());
}

// ---------------------------------------------------------------------------
// End-to-end lifecycle through the service.

FixtureOptions TightOptions(size_t num_clients) {
  FixtureOptions options;
  options.system = SystemKind::kZooKeeper;
  options.num_clients = num_clients;
  options.zk_client.session_timeout = Millis(1500);
  options.zk_client.ping_interval = Millis(300);
  options.zk_client.reconnect.initial_backoff = Millis(200);
  options.zk_client.reconnect.max_backoff = Seconds(1);
  return options;
}

TEST(WatchLifecycleTest, SingleFirePerArm) {
  CoordFixture fx(TightOptions(1));
  fx.Start();
  ZkClient* client = fx.zk_client(0);
  ASSERT_NE(client, nullptr);

  std::vector<ZkWatchEventMsg> events;
  client->SetWatchHandler([&](const ZkWatchEventMsg& e) { events.push_back(e); });

  client->Create("/n", "v0", false, false, [](Result<std::string>) {});
  fx.Settle(Millis(200));
  client->GetData("/n", /*watch=*/true, [](Result<ZkClient::NodeResult>) {});
  fx.Settle(Millis(200));

  client->SetData("/n", "v1", -1, [](Status) {});
  fx.Settle(Millis(200));
  client->SetData("/n", "v2", -1, [](Status) {});
  fx.Settle(Millis(200));
  // Two changes, one armed watch: exactly one notification.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, ZkEventType::kNodeDataChanged);
  EXPECT_EQ(events[0].path, "/n");

  // Re-arming restores delivery for the next change.
  client->GetData("/n", /*watch=*/true, [](Result<ZkClient::NodeResult>) {});
  fx.Settle(Millis(200));
  client->SetData("/n", "v3", -1, [](Status) {});
  fx.Settle(Millis(200));
  EXPECT_EQ(events.size(), 2u);
}

TEST(WatchLifecycleTest, ReArmAfterFailoverDelivers) {
  CoordFixture fx(TightOptions(2));
  fx.Start();
  ZkClient* watcher = fx.zk_client(0);  // prefers server 1
  ZkClient* writer = fx.zk_client(1);   // prefers server 2
  ASSERT_NE(watcher, nullptr);
  ASSERT_NE(writer, nullptr);

  std::vector<ZkWatchEventMsg> events;
  watcher->SetWatchHandler([&](const ZkWatchEventMsg& e) { events.push_back(e); });

  writer->Create("/n", "v0", false, false, [](Result<std::string>) {});
  fx.Settle(Millis(300));
  watcher->Exists("/n", /*watch=*/true, [](Result<ZkClient::ExistsResult>) {});
  fx.Settle(Millis(300));
  ASSERT_EQ(watcher->current_server(), 1u);

  // The replica holding the watch dies; its volatile watch table dies with
  // it. The session fails over but the watch does NOT follow.
  fx.faults().Crash(1);
  fx.Settle(Seconds(5));
  ASSERT_TRUE(watcher->connected());
  ASSERT_NE(watcher->current_server(), 1u);

  // A change before re-arming is silent — there is no watch anywhere.
  writer->SetData("/n", "v1", -1, [](Status) {});
  fx.Settle(Millis(500));
  EXPECT_TRUE(events.empty());

  // Application re-arms at the new replica; the next change fires exactly
  // once.
  watcher->Exists("/n", /*watch=*/true, [](Result<ZkClient::ExistsResult>) {});
  fx.Settle(Millis(300));
  writer->SetData("/n", "v2", -1, [](Status) {});
  fx.Settle(Millis(500));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, ZkEventType::kNodeDataChanged);
  EXPECT_EQ(events[0].path, "/n");

  fx.faults().Restart(1);
  fx.Settle(Seconds(1));
}

TEST(WatchLifecycleTest, NoPhantomFireAfterSessionExpiry) {
  FixtureOptions options = TightOptions(2);
  options.zk_server.session_check_interval = Millis(100);
  // Keep the watcher from racing a successful reconnect while we arrange the
  // expiry: long backoff means the old session is judged dead first.
  options.zk_client.reconnect.initial_backoff = Seconds(4);
  options.zk_client.reconnect.max_backoff = Seconds(4);
  CoordFixture fx(options);
  fx.Start();
  ZkClient* watcher = fx.zk_client(0);
  ZkClient* writer = fx.zk_client(1);

  std::vector<ZkWatchEventMsg> events;
  watcher->SetWatchHandler([&](const ZkWatchEventMsg& e) { events.push_back(e); });

  writer->Create("/n", "v0", false, false, [](Result<std::string>) {});
  fx.Settle(Millis(300));
  watcher->GetData("/n", /*watch=*/true, [](Result<ZkClient::NodeResult>) {});
  fx.Settle(Millis(300));
  uint64_t old_session = watcher->session();
  ASSERT_NE(old_session, 0u);

  // Cut the watcher off from the whole ensemble; its session goes silent and
  // the cluster expires it (close-session commit removes its watches).
  fx.faults().Partition({fx.client_node(0)}, {1, 2, 3});
  fx.Settle(Seconds(3));

  // Heal so any erroneously surviving watch COULD be delivered, then trip
  // the watched node. The expired session must get nothing.
  fx.faults().Heal();
  fx.Settle(Millis(100));
  writer->SetData("/n", "v1", -1, [](Status) {});
  fx.Settle(Seconds(1));
  EXPECT_TRUE(events.empty());

  // The watcher eventually comes back with a fresh session — still silent.
  fx.Settle(Seconds(6));
  if (watcher->connected()) {
    EXPECT_NE(watcher->session(), old_session);
  }
  EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace edc
