// Abstract client-side surface of the ZooKeeper-like service.
//
// Everything above the transport — recipes, the extension conveniences, the
// conformance harness — programs against this interface. Two implementations
// exist: ZkClient (one session against one replica ensemble) and
// ZkShardRouter (edc/route), which fans the same surface out over a
// ShardMap's worth of per-shard ZkClients. Keeping the surface abstract is
// what lets a recipe run unchanged on a standalone ensemble and on a sharded
// deployment.

#ifndef EDC_ZK_API_H_
#define EDC_ZK_API_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "edc/common/client_api.h"
#include "edc/zk/types.h"

namespace edc {

class ZkApi {
 public:
  struct NodeResult {
    std::string data;
    ZkStat stat;
  };
  struct ExistsResult {
    bool exists = false;
    ZkStat stat;
  };

  using VoidCb = StatusCb;
  using StringCb = StringResultCb;
  using NodeCb = ResultCb<NodeResult>;
  using ExistsCb = ResultCb<ExistsResult>;
  using ChildrenCb = ResultCb<std::vector<std::string>>;
  using WatchCb = std::function<void(const ZkWatchEventMsg&)>;

  virtual ~ZkApi() = default;

  virtual void Connect(VoidCb done) = 0;
  virtual void Close(VoidCb done) = 0;

  virtual void Create(const std::string& path, const std::string& data, bool ephemeral,
                      bool sequential, StringCb done) = 0;
  virtual void Delete(const std::string& path, int32_t version, VoidCb done) = 0;
  virtual void Exists(const std::string& path, bool watch, ExistsCb done) = 0;
  virtual void GetData(const std::string& path, bool watch, NodeCb done) = 0;
  virtual void SetData(const std::string& path, const std::string& data, int32_t version,
                       VoidCb done) = 0;
  virtual void GetChildren(const std::string& path, bool watch, ChildrenCb done) = 0;
  // Atomic multi-transaction. Implementations may require all ops to live on
  // one shard (kInvalidArgument otherwise); cross-shard atomicity is the
  // TwoPhaseMulti recipe's job (docs/sharding.md).
  virtual void Multi(std::vector<ZkOp> ops, VoidCb done) = 0;

  virtual void CallExtension(const std::string& trigger_path, const std::string& args,
                             ExtensionCb done) = 0;
  virtual void RegisterExtension(const std::string& name, const std::string& code,
                                 VoidCb done) = 0;
  virtual void DeregisterExtension(const std::string& name, VoidCb done) = 0;
  virtual void AcknowledgeExtension(const std::string& name, VoidCb done) = 0;

  virtual void SetWatchHandler(WatchCb handler) = 0;
  virtual void SetSessionEventHandler(SessionEventCb handler) = 0;

  virtual bool connected() const = 0;
  // A stable session identity for path construction (recipes tag ephemeral
  // paths with it). Routers report their primary sub-session.
  virtual uint64_t session() const = 0;
  virtual NodeId id() const = 0;
};

}  // namespace edc

#endif  // EDC_ZK_API_H_
