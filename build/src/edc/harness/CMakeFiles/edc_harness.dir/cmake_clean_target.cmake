file(REMOVE_RECURSE
  "libedc_harness.a"
)
