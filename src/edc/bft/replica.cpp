#include "edc/bft/replica.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "edc/common/logging.h"

namespace edc {

BftReplica::BftReplica(EventLoop* loop, Network* net, CpuQueue* cpu, const CostModel& costs,
                       BftConfig config, BftCallbacks* callbacks)
    : loop_(loop),
      net_(net),
      cpu_(cpu),
      costs_(costs),
      config_(std::move(config)),
      callbacks_(callbacks) {
  assert(config_.members.size() >= static_cast<size_t>(3 * config_.f + 1));
}

void BftReplica::Start() {
  ++generation_;
  running_ = true;
  view_ = 0;
  view_changing_ = false;
  next_seq_ = 0;
  last_executed_ = 0;
  last_ts_ = 0;
  entries_.clear();
  pending_.clear();
  executed_reqs_.clear();
  view_changes_.clear();
}

void BftReplica::Crash() {
  ++generation_;
  running_ = false;
  loop_->Cancel(request_timer_);
}

void BftReplica::Restart() {
  // The service layer must have reset its state machine; we rejoin at view 0
  // and catch up through normal ordering (acceptable while <= f replicas
  // misbehave overall, which is what the tests exercise).
  Start();
}

void BftReplica::SendTo(NodeId dst, BftMsgType type, std::vector<uint8_t> payload) {
  Packet pkt;
  pkt.src = config_.self;
  pkt.dst = dst;
  pkt.type = static_cast<uint32_t>(type);
  pkt.payload = std::move(payload);
  net_->Send(std::move(pkt));
}

void BftReplica::BroadcastToReplicas(BftMsgType type, const std::vector<uint8_t>& payload) {
  for (NodeId peer : config_.members) {
    if (peer != config_.self) {
      SendTo(peer, type, payload);
    }
  }
}

void BftReplica::SendReply(NodeId client, uint64_t req_id, std::vector<uint8_t> payload) {
  ReplyMsg reply{req_id, view_, std::move(payload)};
  SendTo(client, BftMsgType::kReply, EncodeReplyMsg(reply));
}

void BftReplica::HandlePacket(Packet&& pkt) {
  if (!running_) {
    return;
  }
  uint64_t gen = generation_;
  auto shared = std::make_shared<Packet>(std::move(pkt));
  cpu_->Submit(costs_.bft_msg_cpu, [this, gen, shared]() {
    if (gen != generation_ || !running_) {
      return;
    }
    Process(std::move(*shared));
  });
}

void BftReplica::Process(Packet&& pkt) {
  switch (static_cast<BftMsgType>(pkt.type)) {
    case BftMsgType::kRequest: {
      auto m = DecodeBftRequest(pkt.payload);
      if (m.ok()) {
        OnRequest(std::move(*m));
      }
      break;
    }
    case BftMsgType::kPrePrepare: {
      auto m = DecodePrePrepare(pkt.payload);
      if (m.ok()) {
        OnPrePrepare(pkt.src, std::move(*m));
      }
      break;
    }
    case BftMsgType::kPrepare: {
      auto m = DecodePhaseMsg(pkt.payload);
      if (m.ok()) {
        OnPrepare(pkt.src, *m);
      }
      break;
    }
    case BftMsgType::kCommit: {
      auto m = DecodePhaseMsg(pkt.payload);
      if (m.ok()) {
        OnCommit(pkt.src, *m);
      }
      break;
    }
    case BftMsgType::kViewChange: {
      auto m = DecodeViewChange(pkt.payload);
      if (m.ok()) {
        OnViewChange(pkt.src, std::move(*m));
      }
      break;
    }
    case BftMsgType::kNewView: {
      auto m = DecodeNewView(pkt.payload);
      if (m.ok()) {
        OnNewView(std::move(*m));
      }
      break;
    }
    default:
      break;
  }
}

bool BftReplica::AlreadyOrdered(const BftRequest& req) const {
  auto it = executed_reqs_.find(req.client);
  if (it != executed_reqs_.end() && it->second.count(req.req_id) > 0) {
    return true;
  }
  for (const auto& [seq, entry] : entries_) {
    if (entry.has_request && entry.request.client == req.client &&
        entry.request.req_id == req.req_id) {
      return true;
    }
  }
  return false;
}

void BftReplica::OnRequest(BftRequest&& req) {
  if (AlreadyOrdered(req)) {
    return;
  }
  for (const BftRequest& p : pending_) {
    if (p.client == req.client && p.req_id == req.req_id) {
      return;
    }
  }
  pending_.push_back(std::move(req));
  if (is_primary() && !view_changing_) {
    ProposePending();
  } else {
    ArmRequestTimer();
  }
}

void BftReplica::ProposePending() {
  while (!pending_.empty()) {
    BftRequest req = std::move(pending_.front());
    pending_.pop_front();
    if (!AlreadyOrdered(req)) {
      Propose(std::move(req));
    }
  }
}

void BftReplica::Propose(BftRequest req) {
  uint64_t seq = ++next_seq_;
  SimTime ts = std::max(last_ts_ + 1, loop_->now());
  last_ts_ = ts;

  Entry& entry = entries_[seq];
  entry.view = view_;
  entry.ts = ts;
  entry.digest = req.Digest(seq, ts);
  entry.request = req;
  entry.has_request = true;
  entry.prepares.insert(config_.self);  // pre-prepare counts as the primary's prepare

  if (equivocate_) {
    // Byzantine primary: stamp a different timestamp for every backup, so
    // digests diverge and no backup ever collects a matching quorum.
    SimTime bogus = ts;
    for (NodeId peer : config_.members) {
      if (peer == config_.self) {
        continue;
      }
      bogus += 1;
      PrePrepareMsg msg{view_, seq, bogus, req};
      SendTo(peer, BftMsgType::kPrePrepare, EncodePrePrepare(msg));
    }
  } else {
    PrePrepareMsg msg{view_, seq, ts, req};
    BroadcastToReplicas(BftMsgType::kPrePrepare, EncodePrePrepare(msg));
  }
  CheckPrepared(seq);
}

void BftReplica::OnPrePrepare(NodeId from, PrePrepareMsg&& msg) {
  if (msg.view != view_ || from != PrimaryOf(view_) || view_changing_) {
    return;
  }
  if (msg.seq <= last_executed_) {
    return;
  }
  Entry& entry = entries_[msg.seq];
  if (entry.has_request && entry.digest != msg.request.Digest(msg.seq, msg.ts)) {
    return;  // conflicting pre-prepare; keep the first
  }
  entry.view = msg.view;
  entry.ts = msg.ts;
  entry.digest = msg.request.Digest(msg.seq, msg.ts);
  entry.request = std::move(msg.request);
  entry.has_request = true;
  entry.prepares.insert(from);          // primary's pre-prepare
  entry.prepares.insert(config_.self);  // our own prepare
  PhaseMsg prepare{view_, msg.seq, entry.digest};
  BroadcastToReplicas(BftMsgType::kPrepare, EncodePhaseMsg(prepare));
  CheckPrepared(msg.seq);
  ArmRequestTimer();
}

void BftReplica::OnPrepare(NodeId from, const PhaseMsg& msg) {
  if (msg.view != view_ || view_changing_ || msg.seq <= last_executed_) {
    return;
  }
  Entry& entry = entries_[msg.seq];
  if (entry.has_request && entry.digest != msg.digest) {
    return;  // mismatching digest (equivocating primary)
  }
  entry.prepares.insert(from);
  CheckPrepared(msg.seq);
}

void BftReplica::CheckPrepared(uint64_t seq) {
  auto it = entries_.find(seq);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  if (!entry.has_request || entry.sent_commit || entry.prepares.size() < PrepareQuorum()) {
    return;
  }
  entry.sent_commit = true;
  entry.commits.insert(config_.self);
  PhaseMsg commit{view_, seq, entry.digest};
  BroadcastToReplicas(BftMsgType::kCommit, EncodePhaseMsg(commit));
  CheckCommitted(seq);
}

void BftReplica::OnCommit(NodeId from, const PhaseMsg& msg) {
  if (msg.view != view_ || view_changing_ || msg.seq <= last_executed_) {
    return;
  }
  Entry& entry = entries_[msg.seq];
  if (entry.has_request && entry.digest != msg.digest) {
    return;
  }
  entry.commits.insert(from);
  CheckCommitted(msg.seq);
}

void BftReplica::CheckCommitted(uint64_t seq) {
  auto it = entries_.find(seq);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  if (entry.has_request && entry.sent_commit && entry.commits.size() >= CommitQuorum()) {
    TryExecute();
  }
}

void BftReplica::TryExecute() {
  while (true) {
    auto it = entries_.find(last_executed_ + 1);
    if (it == entries_.end()) {
      break;
    }
    Entry& entry = it->second;
    if (!entry.has_request || !entry.sent_commit || entry.commits.size() < CommitQuorum() ||
        entry.executed) {
      break;
    }
    entry.executed = true;
    ++last_executed_;
    if (!entry.request.is_noop()) {
      executed_reqs_[entry.request.client].insert(entry.request.req_id);
      BftExecOutcome outcome =
          callbacks_->Execute(last_executed_, entry.ts, entry.request);
      if (outcome.cpu_cost > 0) {
        cpu_->Submit(outcome.cpu_cost, []() {});  // occupy the core
      }
    }
    // Remove any matching buffered copy and disarm the timer if idle.
    for (auto p = pending_.begin(); p != pending_.end(); ++p) {
      if (p->client == entry.request.client && p->req_id == entry.request.req_id) {
        pending_.erase(p);
        break;
      }
    }
    entries_.erase(it);
  }
  if (pending_.empty() && entries_.empty()) {
    loop_->Cancel(request_timer_);
    request_timer_ = kInvalidTimer;
  } else {
    ArmRequestTimer();
  }
  if (is_primary() && !view_changing_) {
    ProposePending();
  }
}

// -------------------------------------------------------------- view change

void BftReplica::ArmRequestTimer() {
  if (request_timer_ != kInvalidTimer) {
    return;
  }
  exec_at_arm_ = last_executed_;
  uint64_t gen = generation_;
  request_timer_ = loop_->Schedule(config_.request_timeout, [this, gen]() {
    if (gen != generation_ || !running_) {
      return;
    }
    request_timer_ = kInvalidTimer;
    OnRequestTimeout();
  });
}

void BftReplica::OnRequestTimeout() {
  bool work_outstanding = !pending_.empty() || !entries_.empty();
  if (view_changing_) {
    // View change itself stalled (e.g. the would-be primary is down); move
    // to the next view.
    StartViewChange(vc_target_ + 1);
    return;
  }
  if (!work_outstanding) {
    return;
  }
  // A loaded-but-progressing primary is not a faulty primary: only suspect
  // it when no request at all executed during the whole timeout window.
  if (last_executed_ > exec_at_arm_) {
    ArmRequestTimer();
    return;
  }
  StartViewChange(view_ + 1);
}

void BftReplica::StartViewChange(uint64_t new_view) {
  view_changing_ = true;
  vc_target_ = std::max(vc_target_, new_view);
  ViewChangeMsg msg;
  msg.new_view = new_view;
  msg.last_executed = last_executed_;
  for (const auto& [seq, entry] : entries_) {
    if (entry.has_request && entry.prepares.size() >= PrepareQuorum()) {
      msg.prepared.push_back(PreparedEntry{seq, entry.ts, entry.request});
    }
  }
  EDC_LOG(kDebug) << "replica " << config_.self << " view-change to " << new_view;
  view_changes_[new_view][config_.self] = msg;
  BroadcastToReplicas(BftMsgType::kViewChange, EncodeViewChange(msg));
  ArmRequestTimer();  // keep escalating if this view change stalls
  OnViewChange(config_.self, std::move(msg));
}

void BftReplica::OnViewChange(NodeId from, ViewChangeMsg&& msg) {
  if (msg.new_view <= view_) {
    return;
  }
  auto& quorum = view_changes_[msg.new_view];
  quorum[from] = std::move(msg);
  uint64_t new_view = quorum.begin()->second.new_view;

  // Join a view change that f+1 others already back, even without a timeout.
  if (!view_changing_ && quorum.size() >= static_cast<size_t>(config_.f + 1)) {
    StartViewChange(new_view);
    return;
  }
  if (quorum.size() < static_cast<size_t>(2 * config_.f + 1) ||
      PrimaryOf(new_view) != config_.self) {
    return;
  }
  // We are the new primary: re-propose the union of prepared entries.
  std::map<uint64_t, PreparedEntry> merged;
  uint64_t min_exec = UINT64_MAX;
  for (const auto& [node, vc] : quorum) {
    min_exec = std::min(min_exec, vc.last_executed);
    for (const PreparedEntry& e : vc.prepared) {
      merged.emplace(e.seq, e);
    }
  }
  NewViewMsg nv;
  nv.new_view = new_view;
  uint64_t max_seq = last_executed_;
  for (const auto& [seq, e] : merged) {
    max_seq = std::max(max_seq, seq);
  }
  for (uint64_t seq = last_executed_ + 1; seq <= max_seq; ++seq) {
    auto it = merged.find(seq);
    if (it != merged.end()) {
      nv.reproposed.push_back(it->second);
    } else {
      // Pad ordering gaps with no-ops.
      PreparedEntry noop;
      noop.seq = seq;
      noop.ts = ++last_ts_;
      nv.reproposed.push_back(noop);
    }
  }
  BroadcastToReplicas(BftMsgType::kNewView, EncodeNewView(nv));
  OnNewView(std::move(nv));
}

void BftReplica::OnNewView(NewViewMsg&& msg) {
  if (msg.new_view <= view_) {
    return;
  }
  view_ = msg.new_view;
  view_changing_ = false;
  entries_.clear();
  view_changes_.erase(msg.new_view);
  next_seq_ = last_executed_;
  for (const PreparedEntry& e : msg.reproposed) {
    next_seq_ = std::max(next_seq_, e.seq);
    if (e.seq <= last_executed_) {
      continue;
    }
    AdoptEntry(e, view_);
  }
  last_ts_ = std::max(last_ts_, loop_->now());
  if (is_primary()) {
    ProposePending();
  } else if (!pending_.empty() || !entries_.empty()) {
    ArmRequestTimer();
  }
}

void BftReplica::AdoptEntry(const PreparedEntry& e, uint64_t view) {
  Entry& entry = entries_[e.seq];
  entry.view = view;
  entry.ts = e.ts;
  entry.digest = e.request.Digest(e.seq, e.ts);
  entry.request = e.request;
  entry.has_request = true;
  entry.prepares.insert(PrimaryOf(view));
  entry.prepares.insert(config_.self);
  PhaseMsg prepare{view, e.seq, entry.digest};
  BroadcastToReplicas(BftMsgType::kPrepare, EncodePhaseMsg(prepare));
  CheckPrepared(e.seq);
}

}  // namespace edc
