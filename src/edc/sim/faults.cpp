#include "edc/sim/faults.h"

#include <utility>

#include "edc/common/hash.h"
#include "edc/common/logging.h"

namespace edc {

FaultPlan& FaultPlan::CrashAt(SimTime at, NodeId node) {
  Step s;
  s.at = at;
  s.kind = Kind::kCrash;
  s.node = node;
  steps_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::RestartAt(SimTime at, NodeId node) {
  Step s;
  s.at = at;
  s.kind = Kind::kRestart;
  s.node = node;
  steps_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::PartitionAt(SimTime at, std::vector<NodeId> group_a,
                                  std::vector<NodeId> group_b) {
  Step s;
  s.at = at;
  s.kind = Kind::kPartition;
  s.group_a = std::move(group_a);
  s.group_b = std::move(group_b);
  steps_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::HealAt(SimTime at) {
  Step s;
  s.at = at;
  s.kind = Kind::kHeal;
  steps_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::LinkFaultsAt(SimTime at, NodeId a, NodeId b, LinkFaults faults) {
  Step s;
  s.at = at;
  s.kind = Kind::kLinkFaults;
  s.node = a;
  s.peer = b;
  s.faults = faults;
  steps_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::ClearLinkFaultsAt(SimTime at, NodeId a, NodeId b) {
  Step s;
  s.at = at;
  s.kind = Kind::kClearLinkFaults;
  s.node = a;
  s.peer = b;
  steps_.push_back(std::move(s));
  return *this;
}

void FaultInjector::RegisterProcess(NodeId id, std::function<void()> crash,
                                    std::function<void()> restart) {
  procs_[id] = Process{std::move(crash), std::move(restart)};
}

void FaultInjector::Crash(NodeId id) {
  Record("crash node=" + std::to_string(id) + " t=" + std::to_string(loop_->now()));
  auto it = procs_.find(id);
  if (it != procs_.end() && it->second.crash) {
    it->second.crash();
  } else {
    net_->SetNodeUp(id, false);
  }
}

void FaultInjector::Restart(NodeId id) {
  Record("restart node=" + std::to_string(id) + " t=" + std::to_string(loop_->now()));
  auto it = procs_.find(id);
  if (it != procs_.end() && it->second.restart) {
    it->second.restart();
  } else {
    net_->SetNodeUp(id, true);
  }
}

void FaultInjector::Partition(const std::vector<NodeId>& group_a,
                              const std::vector<NodeId>& group_b) {
  std::string line = "partition t=" + std::to_string(loop_->now()) + " a=[";
  for (NodeId n : group_a) {
    line += std::to_string(n) + ",";
  }
  line += "] b=[";
  for (NodeId n : group_b) {
    line += std::to_string(n) + ",";
  }
  line += "]";
  Record(line);
  for (NodeId a : group_a) {
    for (NodeId b : group_b) {
      net_->Disconnect(a, b);
    }
  }
}

void FaultInjector::Heal() {
  Record("heal t=" + std::to_string(loop_->now()));
  net_->HealAllPartitions();
}

void FaultInjector::SetLinkFaults(NodeId a, NodeId b, const LinkFaults& faults) {
  Record("link_faults t=" + std::to_string(loop_->now()) + " a=" + std::to_string(a) +
         " b=" + std::to_string(b) + " drop=" + std::to_string(faults.drop_probability) +
         " dup=" + std::to_string(faults.duplicate_probability) +
         " delay=" + std::to_string(faults.extra_delay));
  LinkParams params = net_->LinkFor(a, b);
  params.drop_probability = faults.drop_probability;
  params.duplicate_probability = faults.duplicate_probability;
  params.extra_delay = faults.extra_delay;
  net_->SetLink(a, b, params);
}

void FaultInjector::ClearLinkFaults(NodeId a, NodeId b) {
  Record("clear_link_faults t=" + std::to_string(loop_->now()) + " a=" + std::to_string(a) +
         " b=" + std::to_string(b));
  net_->ClearLink(a, b);
}

void FaultInjector::Run(const FaultPlan& plan) {
  for (const FaultPlan::Step& step : plan.steps_) {
    FaultPlan::Step s = step;  // own a copy in the closure
    loop_->ScheduleAt(s.at, [this, s = std::move(s)]() {
      switch (s.kind) {
        case FaultPlan::Kind::kCrash:
          Crash(s.node);
          break;
        case FaultPlan::Kind::kRestart:
          Restart(s.node);
          break;
        case FaultPlan::Kind::kPartition:
          Partition(s.group_a, s.group_b);
          break;
        case FaultPlan::Kind::kHeal:
          Heal();
          break;
        case FaultPlan::Kind::kLinkFaults:
          SetLinkFaults(s.node, s.peer, s.faults);
          break;
        case FaultPlan::Kind::kClearLinkFaults:
          ClearLinkFaults(s.node, s.peer);
          break;
      }
    });
  }
}

void FaultInjector::EnablePacketTrace() {
  if (packet_trace_) {
    return;
  }
  packet_trace_ = true;
  net_->SetDeliverySink([this](SimTime at, const Packet& pkt) {
    uint64_t h = digest_;
    h = Fnv1a64(reinterpret_cast<const uint8_t*>(&at), sizeof(at), h);
    h = Fnv1a64(reinterpret_cast<const uint8_t*>(&pkt.src), sizeof(pkt.src), h);
    h = Fnv1a64(reinterpret_cast<const uint8_t*>(&pkt.dst), sizeof(pkt.dst), h);
    h = Fnv1a64(reinterpret_cast<const uint8_t*>(&pkt.type), sizeof(pkt.type), h);
    h = Fnv1a64(pkt.payload, h);
    digest_ = h;
    // Semantic digest: same fields minus delivery time, folded commutatively
    // so it is invariant to delivery order (pipelining reshuffles timing,
    // not traffic).
    uint64_t s = Fnv1a64(reinterpret_cast<const uint8_t*>(&pkt.src), sizeof(pkt.src));
    s = Fnv1a64(reinterpret_cast<const uint8_t*>(&pkt.dst), sizeof(pkt.dst), s);
    s = Fnv1a64(reinterpret_cast<const uint8_t*>(&pkt.type), sizeof(pkt.type), s);
    s = Fnv1a64(pkt.payload, s);
    semantic_digest_ += s;
  });
}

void FaultInjector::Record(const std::string& line) {
  EDC_LOG(kDebug) << "fault: " << line;
  trace_.push_back(line);
  digest_ = Fnv1a64(line, digest_);
}

}  // namespace edc
