# Empty compiler generated dependencies file for message_queue.
# This may be replaced when dependencies are built.
