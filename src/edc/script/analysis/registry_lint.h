// Whole-registry lint: cross-extension trigger-pattern analysis.
//
// Individual programs are checked in isolation by AnalyzeProgram; this pass
// looks at the *set* of loaded extensions the way the dispatcher does
// (ExtensionRegistry::MatchOperation / MatchEvent) and reports interactions
// no single-program analysis can see:
//
//   EDC-W010  an op subscription is fully shadowed by a later-registered
//             extension's subscription (op dispatch is last-registration-wins:
//             whenever the earlier trigger matches, the later one matches too
//             and takes the operation).
//   EDC-W011  a subscription is redundant within its own extension — an
//             earlier subscription in the same program already covers it.
//   EDC-W012  two handlers write literal values of conflicting types to the
//             same literal key (create/update/cas with literal path + value).
//
// Subsumption respects the two prefix flavors exactly as SubscriptionMatches
// does: "/x*" is a plain string prefix (matches the sibling /x1), "/x/*" is a
// path subtree (PathIsUnder; matches /x itself and /x/...), and op kind "any"
// covers every op kind.

#ifndef EDC_SCRIPT_ANALYSIS_REGISTRY_LINT_H_
#define EDC_SCRIPT_ANALYSIS_REGISTRY_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "edc/script/analysis/diagnostics.h"
#include "edc/script/ast.h"

namespace edc {

struct RegistryLintUnit {
  std::string extension;  // registry name; lands in Diagnostic::handler
  uint64_t reg_order = 0;
  const Program* program = nullptr;
};

// True iff every (kind, path) the narrow subscription matches is also matched
// by the wide one. Both must be op or both event subscriptions. Exposed for
// tests pinning the "/x*"-vs-"/x/*" split.
bool SubscriptionCovers(const Subscription& wide, const Subscription& narrow);

// Runs the cross-extension passes over every loaded unit. Diagnostics carry
// the owning extension name in `handler` and the subscription/call position.
std::vector<Diagnostic> LintRegistry(const std::vector<RegistryLintUnit>& units);

}  // namespace edc

#endif  // EDC_SCRIPT_ANALYSIS_REGISTRY_LINT_H_
