// Unit tests for the bytecode compiler + register VM (ctest -L vm).
//
// The conformance suite (vm_conformance_test.cpp) sweeps whole scripts; this
// file pins the individual contracts: builtin index resolution, compile
// refusal on unlowerable constructs, step-accounting parity on success and on
// every abort path, the INT64_MIN wrap-around fixes, and the host-result
// size-limit enforcement — each checked on both engines.

#include "edc/script/vm/vm.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "edc/script/builtins.h"
#include "edc/script/interpreter.h"
#include "edc/script/parser.h"
#include "edc/script/vm/compiler.h"

namespace edc {
namespace {

// Host exposing a tiny key->string store, a call trace, and an `oversized`
// function whose result must be caught by the value-size limit.
class VmFakeHost : public ScriptHost {
 public:
  bool HasFunction(const std::string& name) const override {
    return name == "read_object" || name == "update" || name == "oversized";
  }

  Result<Value> Call(const std::string& name, std::vector<Value>& args) override {
    calls.push_back(name);
    if (name == "oversized") {
      return Value(std::string(1 << 20, 'x'));
    }
    if (name == "read_object") {
      auto it = store.find(args[0].AsStr());
      if (it == store.end()) {
        return Value();
      }
      return Value::Map({{"path", Value(it->first)}, {"data", Value(it->second)}});
    }
    if (name == "update") {
      store[args[0].AsStr()] = args[1].AsStr();
      return Value(true);
    }
    return Status(ErrorCode::kExtensionError, "unknown host fn");
  }

  std::map<std::string, std::string> store;
  std::vector<std::string> calls;
};

struct EngineRun {
  bool ok = false;
  ErrorCode code = ErrorCode::kOk;
  std::string message;
  std::string result;
  int64_t steps = 0;
  std::vector<std::string> calls;
  std::map<std::string, std::string> store;
};

CompileOptions TestCompileOptions() {
  CompileOptions opts;
  opts.collection_functions = {"children", "sub_objects"};
  opts.max_collection_items = 256;
  return opts;
}

EngineRun RunInterp(const Program& program, const std::string& handler,
                    std::vector<Value> args, ExecBudget budget) {
  VmFakeHost host;
  Interpreter interp(&program, &host, budget);
  auto out = interp.Invoke(handler, std::move(args));
  EngineRun r;
  r.ok = out.ok();
  r.code = out.ok() ? ErrorCode::kOk : out.status().code();
  r.message = out.ok() ? "" : out.status().message();
  r.result = out.ok() ? out->ToString() : "";
  r.steps = interp.stats().steps_used;
  r.calls = host.calls;
  r.store = host.store;
  return r;
}

EngineRun RunVm(const Program& program, const std::string& handler,
                std::vector<Value> args, ExecBudget budget) {
  const Handler& h = program.handlers.at(handler);
  CompiledHandler compiled;
  EXPECT_TRUE(CompileHandler(h, TestCompileOptions(), 0, &compiled))
      << "handler '" << handler << "' failed to compile";
  VmFakeHost host;
  CompiledModule module;
  module.handlers.emplace(handler, std::move(compiled));
  Vm vm(&module, &host, budget);
  auto out = vm.Invoke(handler, std::move(args));
  EngineRun r;
  r.ok = out.ok();
  r.code = out.ok() ? ErrorCode::kOk : out.status().code();
  r.message = out.ok() ? "" : out.status().message();
  r.result = out.ok() ? out->ToString() : "";
  r.steps = vm.stats().steps_used;
  r.calls = host.calls;
  r.store = host.store;
  return r;
}

// Runs `handler` through both engines and requires bit-identical outcomes:
// result, Status code + message, steps_used, host-call trace, final state.
EngineRun ExpectBothEngines(const char* src, const std::string& handler,
                            std::vector<Value> args, ExecBudget budget = ExecBudget{}) {
  auto program = ParseProgram(src);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  EngineRun a = RunInterp(**program, handler, args, budget);
  EngineRun b = RunVm(**program, handler, std::move(args), budget);
  EXPECT_EQ(a.ok, b.ok) << src;
  EXPECT_EQ(a.code, b.code) << src;
  EXPECT_EQ(a.message, b.message) << src;
  EXPECT_EQ(a.result, b.result) << src;
  EXPECT_EQ(a.steps, b.steps) << "step accounting diverged\n" << src;
  EXPECT_EQ(a.calls, b.calls) << src;
  EXPECT_EQ(a.store, b.store) << src;
  return a;
}

// ---- Builtin index resolution ----

TEST(BuiltinIndexTest, IndexRoundTripsForEveryBuiltin) {
  const auto& by_index = BuiltinsByIndex();
  ASSERT_EQ(by_index.size(), CoreBuiltins().size());
  for (const auto& [name, info] : CoreBuiltins()) {
    int idx = BuiltinIndexOf(name);
    ASSERT_GE(idx, 0) << name;
    EXPECT_EQ(by_index[static_cast<size_t>(idx)], &info) << name;
  }
  EXPECT_EQ(BuiltinIndexOf("no_such_builtin"), -1);
}

// ---- Compile refusal ----

TEST(VmCompilerTest, RefusesUnresolvableVariable) {
  auto program = ParseProgram(R"(
    extension m { on op any "/x";
      fn handle_op(r) { return missing_var; } })");
  ASSERT_TRUE(program.ok());
  CompiledHandler out;
  EXPECT_FALSE(CompileHandler((*program)->handlers.at("handle_op"),
                              TestCompileOptions(), 0, &out));
}

TEST(VmCompilerTest, RefusesAssignToUndeclared) {
  auto program = ParseProgram(R"(
    extension m { on op any "/x";
      fn handle_op(r) { ghost = 1; return 0; } })");
  ASSERT_TRUE(program.ok());
  CompiledHandler out;
  EXPECT_FALSE(CompileHandler((*program)->handlers.at("handle_op"),
                              TestCompileOptions(), 0, &out));
}

TEST(VmCompilerTest, CompilesEveryRecipeShape) {
  // Representative of every construct the recipes use: host calls, builtins,
  // foreach over a collection function, nested ifs, short-circuits, concat.
  auto program = ParseProgram(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let obj = read_object("/a");
        if (obj != null && get(obj, "data") != "") {
          update("/a", get(obj, "data") + "!");
        }
        let sum = 0;
        foreach (x in [1, 2, 3]) { sum = sum + x; }
        return str(sum) + r;
      } })");
  ASSERT_TRUE(program.ok());
  CompiledHandler out;
  EXPECT_TRUE(CompileHandler((*program)->handlers.at("handle_op"),
                             TestCompileOptions(), 0, &out));
  EXPECT_GT(out.code.size(), 0u);
}

// ---- Dual-engine semantics ----

TEST(VmParityTest, ArithmeticPrecedenceAndFolding) {
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) { return (2 + 3) * 4 - 10 / 2 % 3; } })", "handle_op", {});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.result, "18");
}

TEST(VmParityTest, ShortCircuitSkipsRhs) {
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let o = read_object("/missing");
        if (o != null && get(o, "data") == "x") { return 1; }
        if (o == null || get(o, "data") == "x") { return 2; }
        return 0;
      } })", "handle_op", {});
  EXPECT_EQ(r.result, "2");
}

TEST(VmParityTest, ForeachScopingAndShadowing) {
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let sum = 100;
        foreach (x in [1, 2, 3]) {
          let sum = x;      // shadows outer sum inside the loop body
          r = r + sum;
        }
        foreach (x in [10, 20]) { sum = sum + x; }
        return str(sum) + ":" + r;
      } })", "handle_op", {Value(static_cast<int64_t>(0))});
  EXPECT_EQ(r.result, "130:6");
}

TEST(VmParityTest, IndexingListsMapsStrings) {
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let l = [7, 8, 9];
        let s = "abc";
        let o = read_object("/k");
        return str(l[1]) + s[2] + get(o, "data");
      } })", "handle_op", {});
  EXPECT_EQ(r.code, ErrorCode::kExtensionError);  // get(null, ...) errors
}

TEST(VmParityTest, RuntimeErrorsMatchByteForByte) {
  const char* cases[] = {
      "return -\"s\";",                  // unary '-' on non-int
      "return 1 + [1];",                 // '+' needs int+int or str
      "return [1] - 2;",                 // arithmetic on non-int
      "return 1 / 0;",                   // division by zero
      "return 1 % 0;",                   // modulo by zero
      "return 1 < \"s\";",               // ordering on mixed types
      "return [1, 2][\"k\"];",           // list index must be int
      "return [1, 2][5];",               // list index out of range
      "return \"ab\"[9];",               // string index out of range
      "return 4[0];",                    // indexing non-collection
      "foreach (x in 5) { return 1; }",  // foreach over non-list
      "return nosuchfn(1);",             // unknown function
  };
  for (const char* stmt : cases) {
    std::string src = std::string(R"(
      extension m { on op any "/x";
        fn handle_op(r) { )") + stmt + " } }";
    EngineRun r = ExpectBothEngines(src.c_str(), "handle_op", {});
    EXPECT_FALSE(r.ok) << stmt;
    EXPECT_EQ(r.code, ErrorCode::kExtensionError) << stmt;
  }
}

TEST(VmParityTest, MissingParamsBecomeNullAndExtrasAreDropped) {
  const char* src = R"(
    extension m { on op any "/x";
      fn handle_op(a, b) { if (b == null) { return "null-b"; } return b; } })";
  EngineRun one = ExpectBothEngines(src, "handle_op", {Value("x")});
  EXPECT_EQ(one.result, "null-b");
  EngineRun three = ExpectBothEngines(src, "handle_op",
                                      {Value("x"), Value("y"), Value("z")});
  EXPECT_EQ(three.result, "y");
}

TEST(VmParityTest, FallOffEndReturnsNull) {
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) { let x = 1; } })", "handle_op", {});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.result, Value().ToString());
}

// ---- INT64_MIN wrap-around (the negation-UB bugfix), both engines ----

TEST(VmParityTest, UnaryNegationAtInt64MinWraps) {
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(n) { return -n; } })", "handle_op", {Value(INT64_MIN)});
  ASSERT_TRUE(r.ok);
  // Two's-complement: -INT64_MIN wraps back to INT64_MIN.
  EXPECT_EQ(r.result, std::to_string(INT64_MIN));
}

TEST(VmParityTest, FoldedNegationAtInt64MinWraps) {
  // The folded constant path (literal arithmetic) must wrap identically.
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) { return -(-9223372036854775807 - 1); } })", "handle_op", {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.result, std::to_string(INT64_MIN));
}

TEST(VmParityTest, AbsAtInt64MinWraps) {
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(n) { return abs(n); } })", "handle_op", {Value(INT64_MIN)});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.result, std::to_string(INT64_MIN));
}

TEST(VmParityTest, DivisionOverflowAtInt64MinErrors) {
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(n) { return n / -1; } })", "handle_op", {Value(INT64_MIN)});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kExtensionError);
}

// ---- Host-result size limit (the bypass bugfix), both engines ----

TEST(VmParityTest, OversizedHostResultHitsValueSizeLimit) {
  // `oversized` returns a 1 MiB string; the default 64 KiB budget must
  // reject it on the host-call path exactly like on the builtin path.
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) { let big = oversized(); return len(big); } })",
                                  "handle_op", {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kExtensionLimit);
  EXPECT_NE(r.message.find("value size limit exceeded"), std::string::npos);
}

TEST(VmParityTest, OversizedConcatHitsValueSizeLimit) {
  ExecBudget tiny;
  tiny.max_value_bytes = 32;
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) {
        let s = "0123456789abcdef";
        return s + s + s;
      } })", "handle_op", {}, tiny);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kExtensionLimit);
}

TEST(VmParityTest, FoldedConcatStillChecksSizeAtRuntime) {
  // "aa...a" folds to a constant at compile time, but the interpreter checks
  // the concat's size against the *runtime* budget — the fold must not skip
  // that abort (kLoadConstChecked).
  ExecBudget tiny;
  tiny.max_value_bytes = 24;
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(r) { return "0123456789" + "0123456789"; } })",
                                  "handle_op", {}, tiny);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kExtensionLimit);
}

// ---- Step accounting under metering ----

TEST(VmParityTest, StepsMatchAcrossEnginesOnAbortPaths) {
  // Error mid-statement: steps charged up to the abort must agree.
  EngineRun r = ExpectBothEngines(R"(
    extension m { on op any "/x";
      fn handle_op(n) {
        let a = 1 + 2;
        let b = a * n;
        let c = b / (a - 3);
        return c;
      } })", "handle_op", {Value(static_cast<int64_t>(5))});
  EXPECT_FALSE(r.ok);  // division by zero; ExpectBothEngines checked steps
}

TEST(VmParityTest, CompiledModuleOnlyContainsCertifiedHandlers) {
  auto program = ParseProgram(R"(
    extension m { on op any "/x";
      fn handle_op(r) { return 1; }
      fn read(oid) { return 2; } })");
  ASSERT_TRUE(program.ok());
  std::map<std::string, HandlerReport> reports;
  reports["handle_op"].certified = true;
  reports["handle_op"].step_bound = 10;
  reports["read"].certified = false;
  CompiledModule module = CompileProgram(**program, reports, TestCompileOptions());
  EXPECT_NE(module.Find("handle_op"), nullptr);
  EXPECT_EQ(module.Find("read"), nullptr);
  EXPECT_EQ(module.Find("handle_op")->step_bound, 10);
}

}  // namespace
}  // namespace edc
