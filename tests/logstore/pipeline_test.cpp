// Pipelined group-commit determinism + crash-point suite (ctest -L pipeline).
//
// Pins the PR 7 LogStore pipelining contract from docs/replication_pipeline.md:
//   * depth 1 + fixed window reproduces the legacy serial fsync timing exactly;
//   * deeper pipelines overlap fsyncs (a batch is submitted while earlier
//     batches' fsyncs are in flight) but publication — records(), durable
//     callbacks, the batch hook — stays strictly in submission order even
//     when channels complete out of order at the device;
//   * a crash (DropUnsynced) at ANY boundary between submitted batches
//     truncates to the published durable prefix, which round-trips through
//     SerializeImage/RestoreImage;
//   * adaptive group-commit sizing is fully deterministic: the same append
//     schedule produces the same window trajectory, sync count and callback
//     order on every run, and the same records under every pipeline depth.

#include "edc/logstore/logstore.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "edc/common/hash.h"
#include "edc/obs/obs.h"

namespace edc {
namespace {

std::vector<uint8_t> Rec(uint8_t tag, size_t n = 8) { return std::vector<uint8_t>(n, tag); }

// 8-byte record at 2e9 bits/s: 8 * 8 / 2e9 * 1e9 = 32 ns of write time.
constexpr Duration kWrite8 = 32;

TEST(PipelineLogStoreTest, DepthOneReproducesLegacySerialTiming) {
  // The legacy contract, hand-computed: flush at window expiry, durable at
  // max(now, disk_free) + fsync + write, next batch waits out the previous
  // fsync on the single channel.
  EventLoop loop;
  LogStore log(&loop, LegacyLogStoreConfig());
  std::vector<SimTime> durable_at;
  log.Append(Rec(1), [&] { durable_at.push_back(loop.now()); });
  loop.ScheduleAt(Micros(30), [&] {
    log.Append(Rec(2), [&] { durable_at.push_back(loop.now()); });
  });
  loop.Run();
  ASSERT_EQ(durable_at.size(), 2u);
  // Batch 1: submit t=20us, durable 20us + 60us + 32ns.
  EXPECT_EQ(durable_at[0], Micros(80) + kWrite8);
  // Batch 2: submit t=50us, but the single channel is busy until 80.032us:
  // durable = 80.032us + 60us + 32ns. No overlap at depth 1.
  EXPECT_EQ(durable_at[1], Micros(140) + 2 * kWrite8);
  EXPECT_EQ(log.syncs(), 2);
}

TEST(PipelineLogStoreTest, DeeperPipelineOverlapsFsyncs) {
  // Same schedule as above but with idle channels available: batch 2 starts
  // its fsync immediately at submission instead of queueing behind batch 1.
  EventLoop loop;
  LogStoreConfig cfg;
  cfg.pipeline_depth = 4;
  cfg.adaptive_window = false;
  LogStore log(&loop, cfg);
  std::vector<SimTime> durable_at;
  log.Append(Rec(1), [&] { durable_at.push_back(loop.now()); });
  loop.ScheduleAt(Micros(30), [&] {
    log.Append(Rec(2), [&] { durable_at.push_back(loop.now()); });
  });
  loop.Run();
  ASSERT_EQ(durable_at.size(), 2u);
  EXPECT_EQ(durable_at[0], Micros(80) + kWrite8);
  // Batch 2: submit t=50us on a free channel, durable 50us + 60us + 32ns —
  // 30us earlier than the depth-1 run. The fsync wall is gone.
  EXPECT_EQ(durable_at[1], Micros(110) + kWrite8);
  EXPECT_EQ(log.syncs(), 2);
}

TEST(PipelineLogStoreTest, OutOfOrderDeviceCompletionPublishesInSubmissionOrder) {
  // Batch 1 is a huge write (1 MB => 4 ms device time); batch 2 is tiny and
  // its channel finishes ~3.9 ms earlier. Publication must still be batch 1
  // first, batch 2 gated behind it, at batch 1's completion instant.
  EventLoop loop;
  LogStoreConfig cfg;
  cfg.pipeline_depth = 4;
  cfg.adaptive_window = false;
  LogStore log(&loop, cfg);
  std::vector<int> order;
  std::vector<SimTime> at;
  int batch_hook_fires = 0;
  log.SetBatchDurableCallback([&] { ++batch_hook_fires; });
  log.Append(std::vector<uint8_t>(1 << 20, 0xaa), [&] {
    order.push_back(1);
    at.push_back(loop.now());
  });
  loop.ScheduleAt(Micros(30), [&] {
    log.Append(Rec(2), [&] {
      order.push_back(2);
      at.push_back(loop.now());
    });
  });
  loop.Run();
  ASSERT_EQ(order, (std::vector<int>{1, 2}));
  // 1 MB at 2e9 bits/s = 4.194304 ms; batch 1 submit 20us, fsync 60us.
  const SimTime batch1_durable =
      Micros(80) + static_cast<Duration>((1 << 20) * 8.0 / 2e9 * 1e9);
  EXPECT_EQ(at[0], batch1_durable);
  EXPECT_EQ(at[1], batch1_durable);  // gated: published in the same run
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[1], Rec(2));
  // Both batches published in one run => one cumulative batch notification.
  EXPECT_EQ(batch_hook_fires, 1);
}

TEST(PipelineLogStoreTest, CrashLosesDeviceDurableButUnpublishedBatches) {
  // Same out-of-order shape, but the store crashes after batch 2's device
  // fsync completed and before batch 1 (and therefore batch 2) published:
  // recovery must see the empty published prefix, not batch 2.
  EventLoop loop;
  LogStoreConfig cfg;
  cfg.pipeline_depth = 4;
  cfg.adaptive_window = false;
  LogStore log(&loop, cfg);
  int durable = 0;
  log.Append(std::vector<uint8_t>(1 << 20, 0xaa), [&] { ++durable; });
  loop.ScheduleAt(Micros(30), [&] { log.Append(Rec(2), [&] { ++durable; }); });
  // Batch 2's channel is done at ~110us; batch 1 publishes at ~4.27ms.
  loop.ScheduleAt(Micros(200), [&] { log.DropUnsynced(); });
  loop.Run();
  EXPECT_EQ(durable, 0);
  EXPECT_TRUE(log.records().empty());
  // The store keeps working after the crash.
  log.Append(Rec(3), [&] { ++durable; });
  loop.Run();
  EXPECT_EQ(durable, 1);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0], Rec(3));
}

TEST(PipelineLogStoreTest, CrashAtEveryBatchBoundaryTruncatesToDurablePrefix) {
  // Six single-record batches staggered 25us apart under a depth-3 pipeline.
  // Reference run: collect each batch's publication time. Then for every
  // boundary, crash just after the j-th publication and assert the store
  // holds exactly the first j records — and that the on-disk image of that
  // state round-trips.
  LogStoreConfig cfg;
  cfg.pipeline_depth = 3;
  cfg.adaptive_window = false;
  constexpr int kBatches = 6;

  std::vector<SimTime> publish_at;
  {
    EventLoop loop;
    LogStore log(&loop, cfg);
    for (int i = 0; i < kBatches; ++i) {
      loop.ScheduleAt(Micros(25) * i, [&, i] {
        log.Append(Rec(static_cast<uint8_t>(i + 1)), [&] { publish_at.push_back(loop.now()); });
      });
    }
    loop.Run();
    ASSERT_EQ(publish_at.size(), static_cast<size_t>(kBatches));
    for (int i = 1; i < kBatches; ++i) {
      ASSERT_GE(publish_at[i], publish_at[i - 1]) << "publication must be ordered";
    }
  }

  for (int j = 0; j <= kBatches; ++j) {
    EventLoop loop;
    LogStore log(&loop, cfg);
    // Crash 1ns after the j-th publication (j=0: before any). The crash also
    // silences the writer: a crashed process stops appending.
    SimTime crash_at = j == 0 ? publish_at[0] - 1 : publish_at[j - 1] + 1;
    bool crashed = false;
    for (int i = 0; i < kBatches; ++i) {
      loop.ScheduleAt(Micros(25) * i, [&, i] {
        if (!crashed) {
          log.Append(Rec(static_cast<uint8_t>(i + 1)), nullptr);
        }
      });
    }
    loop.ScheduleAt(crash_at, [&] {
      crashed = true;
      log.DropUnsynced();
    });
    loop.Run();
    ASSERT_EQ(log.records().size(), static_cast<size_t>(j)) << "crash after batch " << j;
    for (int i = 0; i < j; ++i) {
      EXPECT_EQ(log.records()[i], Rec(static_cast<uint8_t>(i + 1)));
    }
    // Recovery truncates to this durable prefix: image round-trip.
    EventLoop loop2;
    LogStore restored(&loop2, cfg);
    auto n = restored.RestoreImage(log.SerializeImage());
    ASSERT_TRUE(n.status().ok());
    EXPECT_EQ(*n, static_cast<size_t>(j));
    EXPECT_EQ(restored.records(), log.records());
  }
}

TEST(PipelineLogStoreTest, AdaptiveWindowGrowsUnderPressureAndShrinksWhenIdle) {
  EventLoop loop;
  LogStoreConfig cfg;  // pipelined + adaptive defaults
  ASSERT_TRUE(cfg.adaptive_window);
  LogStore log(&loop, cfg);
  EXPECT_EQ(log.current_window(), Micros(20));
  // Pressure: a 10-record batch (>= window_grow_records) doubles the window.
  for (int i = 0; i < 10; ++i) {
    log.Append(Rec(static_cast<uint8_t>(i)), nullptr);
  }
  loop.Run();
  EXPECT_EQ(log.current_window(), Micros(40));
  // Still pressured: grows toward the cap.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i) {
      log.Append(Rec(1), nullptr);
    }
    loop.Run();
  }
  EXPECT_EQ(log.current_window(), Micros(160));  // clamped at max_window
  // Idle: lone appends (<= window_shrink_records) halve it back to the floor.
  std::vector<Duration> trajectory;
  for (int i = 0; i < 7; ++i) {
    log.Append(Rec(1), nullptr);
    loop.Run();
    trajectory.push_back(log.current_window());
  }
  EXPECT_EQ(trajectory, (std::vector<Duration>{Micros(80), Micros(40), Micros(20), Micros(10),
                                               Micros(5), Micros(5), Micros(5)}));
}

// Runs a fixed two-phase workload (a burst, then staggered singles) and
// returns a fingerprint of everything callers can observe: record bytes,
// callback order, sync count, window trajectory.
struct WorkloadResult {
  uint64_t records_hash = kFnvOffset;
  std::vector<int> callback_order;
  std::vector<SimTime> callback_times;
  int64_t syncs = 0;
  std::vector<Duration> windows;

  bool operator==(const WorkloadResult& o) const {
    return records_hash == o.records_hash && callback_order == o.callback_order &&
           callback_times == o.callback_times && syncs == o.syncs && windows == o.windows;
  }
};

WorkloadResult RunWorkload(const LogStoreConfig& cfg) {
  EventLoop loop;
  LogStore log(&loop, cfg);
  WorkloadResult r;
  int tag = 0;
  auto append = [&](uint8_t v) {
    int id = tag++;
    log.Append(Rec(v, 8 + v % 5), [&r, id, &loop, &log] {
      r.callback_order.push_back(id);
      r.callback_times.push_back(loop.now());
      r.windows.push_back(log.current_window());
    });
  };
  for (int i = 0; i < 12; ++i) {
    append(static_cast<uint8_t>(i));
  }
  for (int i = 0; i < 8; ++i) {
    loop.ScheduleAt(Micros(300) + Micros(40) * i,
                    [&append, i] { append(static_cast<uint8_t>(100 + i)); });
  }
  loop.Run();
  for (const auto& rec : log.records()) {
    r.records_hash = Fnv1a64(rec, r.records_hash);
  }
  r.syncs = log.syncs();
  return r;
}

TEST(PipelineLogStoreTest, AdaptiveSizingIsDeterministicAcrossRuns) {
  LogStoreConfig cfg;  // pipelined + adaptive defaults
  WorkloadResult a = RunWorkload(cfg);
  WorkloadResult b = RunWorkload(cfg);
  EXPECT_TRUE(a == b) << "same schedule must reproduce byte-identical behaviour";
  EXPECT_FALSE(a.callback_order.empty());
}

TEST(PipelineLogStoreTest, RecordsAndCallbackOrderIdenticalAcrossPipelineDepths) {
  // Timing shifts across depths, but content and order — what replication
  // feeds on — must not.
  WorkloadResult legacy = RunWorkload(LegacyLogStoreConfig());
  for (size_t depth : {size_t{2}, size_t{4}, size_t{8}}) {
    LogStoreConfig cfg;
    cfg.pipeline_depth = depth;
    cfg.adaptive_window = false;
    WorkloadResult r = RunWorkload(cfg);
    EXPECT_EQ(r.records_hash, legacy.records_hash) << "depth " << depth;
    EXPECT_EQ(r.callback_order, legacy.callback_order) << "depth " << depth;
  }
  // Adaptive sizing changes batching (sync count) but never content/order.
  WorkloadResult adaptive = RunWorkload(LogStoreConfig{});
  EXPECT_EQ(adaptive.records_hash, legacy.records_hash);
  EXPECT_EQ(adaptive.callback_order, legacy.callback_order);
}

TEST(PipelineLogStoreTest, InflightHistogramShowsPipelineDepthAboveOne) {
  // The observability contract tests rely on: "logstore.inflight" proves the
  // pipeline actually overlapped batches (no vacuous determinism pass).
  EventLoop loop;
  Obs obs;
  LogStoreConfig cfg;
  cfg.pipeline_depth = 4;
  cfg.adaptive_window = false;
  LogStore log(&loop, cfg);
  log.SetObs(&obs, 1);
  log.Append(std::vector<uint8_t>(1 << 20, 0xaa), nullptr);  // 4ms of write
  for (int i = 0; i < 3; ++i) {
    loop.ScheduleAt(Micros(30) * (i + 1), [&] { log.Append(Rec(7), nullptr); });
  }
  loop.Run();
  const Recorder* inflight = obs.metrics.Histogram("logstore.inflight");
  ASSERT_NE(inflight, nullptr);
  EXPECT_GT(inflight->Max(), 1);
  const Recorder* window = obs.metrics.Histogram("logstore.window_us");
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->count(), static_cast<size_t>(log.syncs()));
}

TEST(PipelineLogStoreTest, BatchHookFiresOncePerPublicationRun) {
  EventLoop loop;
  LogStoreConfig cfg;
  cfg.pipeline_depth = 2;
  cfg.adaptive_window = false;
  LogStore log(&loop, cfg);
  int fires = 0;
  int durable = 0;
  log.SetBatchDurableCallback([&] { ++fires; });
  // Three well-separated batches => three publication runs.
  for (int i = 0; i < 3; ++i) {
    loop.ScheduleAt(Micros(200) * i, [&] {
      log.Append(Rec(1), [&] { ++durable; });
      log.Append(Rec(2), [&] { ++durable; });
    });
  }
  loop.Run();
  EXPECT_EQ(durable, 6);
  EXPECT_EQ(fires, 3);  // cumulative: one per batch, not one per record
}

}  // namespace
}  // namespace edc
