#include "edc/logstore/logstore.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace edc {

void LogStore::Append(std::vector<uint8_t> record, DurableCallback on_durable) {
  pending_.push_back(Pending{std::move(record), std::move(on_durable)});
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    uint64_t epoch = flush_epoch_;
    loop_->Schedule(config_.group_commit_window, [this, epoch]() {
      if (epoch != flush_epoch_) {
        return;  // a crash intervened
      }
      Flush();
    });
  }
}

void LogStore::Flush() {
  flush_scheduled_ = false;
  if (pending_.empty()) {
    return;
  }
  size_t batch_bytes = 0;
  for (const Pending& p : pending_) {
    batch_bytes += p.record.size();
  }
  Duration write_time = static_cast<Duration>(static_cast<double>(batch_bytes) * 8.0 /
                                              config_.disk_bandwidth_bps * 1e9);
  SimTime start = std::max(loop_->now(), disk_free_at_);
  SimTime durable_at = start + config_.fsync_latency + write_time;
  disk_free_at_ = durable_at;
  ++syncs_;
  appended_bytes_ += static_cast<int64_t>(batch_bytes);

  auto batch = std::make_shared<std::vector<Pending>>(std::move(pending_));
  pending_.clear();
  uint64_t epoch = flush_epoch_;
  loop_->ScheduleAt(durable_at, [this, batch, epoch]() {
    if (epoch != flush_epoch_) {
      return;
    }
    for (Pending& p : *batch) {
      records_.push_back(std::move(p.record));
    }
    for (Pending& p : *batch) {
      if (p.cb) {
        p.cb();
      }
    }
  });
}

void LogStore::Truncate(size_t first_removed) {
  if (first_removed < records_.size()) {
    records_.resize(first_removed);
  }
}

void LogStore::DropHead(size_t count) {
  if (count >= records_.size()) {
    records_.clear();
  } else {
    records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(count));
  }
}

void LogStore::DropUnsynced() {
  pending_.clear();
  flush_scheduled_ = false;
  ++flush_epoch_;
}

}  // namespace edc
