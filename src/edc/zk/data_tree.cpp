#include "edc/zk/data_tree.h"

#include <utility>

#include "edc/common/hash.h"
#include "edc/common/strings.h"

namespace edc {

DataTree::DataTree() = default;

DataTree::Node* DataTree::Find(const std::string& path) {
  return const_cast<Node*>(static_cast<const DataTree*>(this)->Find(path));
}

const DataTree::Node* DataTree::Find(const std::string& path) const {
  if (path == "/") {
    return &root_;
  }
  const Node* cur = &root_;
  size_t start = 1;
  while (start <= path.size()) {
    size_t pos = path.find('/', start);
    std::string comp = pos == std::string::npos ? path.substr(start)
                                                : path.substr(start, pos - start);
    auto it = cur->children.find(comp);
    if (it == cur->children.end()) {
      return nullptr;
    }
    cur = it->second.get();
    if (pos == std::string::npos) {
      break;
    }
    start = pos + 1;
  }
  return cur;
}

DataTree::Node* DataTree::FindParent(const std::string& path, std::string* name) {
  std::string parent = ParentPath(path);
  if (parent.empty()) {
    return nullptr;
  }
  *name = BaseName(path);
  return Find(parent);
}

Result<std::string> DataTree::Create(const std::string& path, const std::string& data,
                                     uint64_t ephemeral_owner, bool sequential, uint64_t zxid,
                                     SimTime time) {
  if (auto s = ValidatePath(path); !s.ok()) {
    return s;
  }
  if (path == "/") {
    return Status(ErrorCode::kNodeExists, "/");
  }
  std::string name;
  Node* parent = FindParent(path, &name);
  if (parent == nullptr) {
    return Status(ErrorCode::kNoNode, "parent of " + path);
  }
  if (parent->stat.ephemeral_owner != 0) {
    return Status(ErrorCode::kNoChildrenForEphemerals, ParentPath(path));
  }
  std::string actual_name = name;
  if (sequential) {
    actual_name += SequenceSuffix(parent->next_seq++);
  }
  if (parent->children.count(actual_name) > 0) {
    return Status(ErrorCode::kNodeExists, path);
  }
  auto node = std::make_unique<Node>();
  node->data = data;
  node->stat.czxid = zxid;
  node->stat.mzxid = zxid;
  node->stat.ctime = time;
  node->stat.mtime = time;
  node->stat.ephemeral_owner = ephemeral_owner;
  parent->children.emplace(actual_name, std::move(node));
  parent->stat.cversion += 1;
  parent->stat.pzxid = zxid;
  parent->stat.num_children = static_cast<uint32_t>(parent->children.size());
  ++node_count_;
  return ParentPath(path) == "/" ? "/" + actual_name : ParentPath(path) + "/" + actual_name;
}

Status DataTree::Delete(const std::string& path, int32_t version, uint64_t zxid) {
  if (path == "/") {
    return Status(ErrorCode::kInvalidArgument, "cannot delete root");
  }
  std::string name;
  Node* parent = FindParent(path, &name);
  if (parent == nullptr) {
    return Status(ErrorCode::kNoNode, path);
  }
  auto it = parent->children.find(name);
  if (it == parent->children.end()) {
    return Status(ErrorCode::kNoNode, path);
  }
  Node* node = it->second.get();
  if (version != -1 && node->stat.version != version) {
    return Status(ErrorCode::kBadVersion, path);
  }
  if (!node->children.empty()) {
    return Status(ErrorCode::kNotEmpty, path);
  }
  parent->children.erase(it);
  parent->stat.cversion += 1;
  parent->stat.pzxid = zxid;
  parent->stat.num_children = static_cast<uint32_t>(parent->children.size());
  --node_count_;
  return Status::Ok();
}

Status DataTree::SetData(const std::string& path, const std::string& data, int32_t version,
                         uint64_t zxid, SimTime time) {
  Node* node = Find(path);
  if (node == nullptr) {
    return Status(ErrorCode::kNoNode, path);
  }
  if (version != -1 && node->stat.version != version) {
    return Status(ErrorCode::kBadVersion,
                  path + ": expected " + std::to_string(version) + ", have " +
                      std::to_string(node->stat.version));
  }
  node->data = data;
  node->stat.version += 1;
  node->stat.mzxid = zxid;
  node->stat.mtime = time;
  return Status::Ok();
}

bool DataTree::Exists(const std::string& path) const { return Find(path) != nullptr; }

Result<ZkNodeView> DataTree::Get(const std::string& path) const {
  const Node* node = Find(path);
  if (node == nullptr) {
    return Status(ErrorCode::kNoNode, path);
  }
  return ZkNodeView{node->data, node->stat};
}

Result<std::vector<std::string>> DataTree::GetChildren(const std::string& path) const {
  const Node* node = Find(path);
  if (node == nullptr) {
    return Status(ErrorCode::kNoNode, path);
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    names.push_back(name);
  }
  return names;
}

Result<uint64_t> DataTree::NextSequence(const std::string& parent) const {
  const Node* node = Find(parent);
  if (node == nullptr) {
    return Status(ErrorCode::kNoNode, parent);
  }
  return node->next_seq;
}

void DataTree::CollectEphemerals(const std::string& path, const Node& node, uint64_t session,
                                 std::vector<std::string>* out) {
  for (const auto& [name, child] : node.children) {
    std::string child_path = path == "/" ? "/" + name : path + "/" + name;
    if (child->stat.ephemeral_owner == session) {
      out->push_back(child_path);
    }
    CollectEphemerals(child_path, *child, session, out);
  }
}

std::vector<std::string> DataTree::EphemeralsOf(uint64_t session) const {
  std::vector<std::string> out;
  CollectEphemerals("/", root_, session, &out);
  return out;
}

void DataTree::SerializeNode(Encoder& enc, const std::string& path, const Node& node) {
  enc.PutString(path);
  enc.PutString(node.data);
  node.stat.Encode(enc);
  enc.PutU64(node.next_seq);
  for (const auto& [name, child] : node.children) {
    SerializeNode(enc, path == "/" ? "/" + name : path + "/" + name, *child);
  }
}

std::vector<uint8_t> DataTree::Serialize() const {
  Encoder enc;
  SerializeNode(enc, "/", root_);
  return enc.Release();
}

Status DataTree::LoadNode(Decoder& dec) {
  auto path = dec.GetString();
  auto data = dec.GetString();
  if (!path.ok() || !data.ok()) {
    return Status(ErrorCode::kDecodeError, "snapshot node header");
  }
  auto stat = ZkStat::Decode(dec);
  auto next_seq = stat.ok() ? dec.GetU64() : Result<uint64_t>(ErrorCode::kDecodeError);
  if (!stat.ok() || !next_seq.ok()) {
    return Status(ErrorCode::kDecodeError, "snapshot node stat");
  }
  Node* node;
  if (*path == "/") {
    node = &root_;
  } else {
    std::string name;
    Node* parent = FindParent(*path, &name);
    if (parent == nullptr) {
      return Status(ErrorCode::kDecodeError, "snapshot parent ordering");
    }
    auto fresh = std::make_unique<Node>();
    node = fresh.get();
    parent->children.emplace(name, std::move(fresh));
    ++node_count_;
  }
  node->data = std::move(*data);
  node->stat = *stat;
  node->next_seq = *next_seq;
  return Status::Ok();
}

Status DataTree::Load(const std::vector<uint8_t>& snapshot) {
  root_ = Node{};
  node_count_ = 1;
  Decoder dec(snapshot);
  while (!dec.AtEnd()) {
    if (auto s = LoadNode(dec); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

namespace {
// The frame header matches LogStore's on-disk record layout exactly:
// u32 payload length + u64 FNV-1a of the payload, both little-endian.
constexpr size_t kImageHeaderBytes = 12;
}  // namespace

std::vector<uint8_t> DataTree::SerializeImage() const {
  std::vector<uint8_t> payload = Serialize();
  std::vector<uint8_t> image;
  image.reserve(kImageHeaderBytes + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    image.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  uint64_t sum = Fnv1a64(payload.data(), payload.size());
  for (int i = 0; i < 8; ++i) {
    image.push_back(static_cast<uint8_t>(sum >> (8 * i)));
  }
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

Status DataTree::RestoreImage(const std::vector<uint8_t>& image) {
  if (image.size() < kImageHeaderBytes) {
    return Status(ErrorCode::kDecodeError, "snapshot image shorter than header");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(image[i]) << (8 * i);
  }
  uint64_t sum = 0;
  for (int i = 0; i < 8; ++i) {
    sum |= static_cast<uint64_t>(image[4 + i]) << (8 * i);
  }
  // Truncation (image ends early) and trailing garbage (image longer than the
  // frame claims) are both rejected: a snapshot file is a single frame.
  if (image.size() != kImageHeaderBytes + len) {
    return Status(ErrorCode::kDecodeError, "snapshot image length mismatch");
  }
  const uint8_t* payload = image.data() + kImageHeaderBytes;
  if (Fnv1a64(payload, len) != sum) {
    return Status(ErrorCode::kDecodeError, "snapshot image checksum mismatch");
  }
  // Decode into a scratch tree and swap only on full success, so a payload
  // that passes the checksum but fails structural decode never half-applies.
  DataTree scratch;
  std::vector<uint8_t> body(payload, payload + len);
  if (auto s = scratch.Load(body); !s.ok()) {
    return s;
  }
  root_ = std::move(scratch.root_);
  node_count_ = scratch.node_count_;
  return Status::Ok();
}

}  // namespace edc
