// Whole-registry lint tests (EDC-W010..W012) plus the SubscriptionCovers
// subsumption rules they share with the dispatcher. The prefix-flavor cases
// pin the PR-6 semantics: "/x*" is a plain string prefix (it matches the
// sibling /x1), while "/x/*" is a path subtree (it matches /x and /x/... but
// never /x1) — a lint that conflated the two would report false shadowing.

#include "edc/script/analysis/registry_lint.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "edc/ext/registry.h"
#include "edc/recipes/scripts.h"
#include "edc/script/parser.h"

namespace edc {
namespace {

std::shared_ptr<Program> Parse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().message();
  return *program;
}

// Parses a one-subscription extension and returns that subscription.
Subscription FirstSub(const std::string& trigger) {
  auto program =
      Parse("extension t { " + trigger + " fn read(oid) { return 1; } }");
  EXPECT_EQ(program->subscriptions.size(), 1u);
  return program->subscriptions[0];
}

TEST(SubscriptionCoversTest, StringPrefixCoversSiblingsAndDescendants) {
  Subscription wide = FirstSub(R"(on op read "/x*";)");
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x";)")));
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x1";)")));
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x/a";)")));
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x1*";)")));
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x/*";)")));
  EXPECT_FALSE(SubscriptionCovers(wide, FirstSub(R"(on op read "/w";)")));
}

TEST(SubscriptionCoversTest, SubtreeDoesNotCoverSiblings) {
  Subscription wide = FirstSub(R"(on op read "/x/*";)");
  // The subtree includes its own root and everything below it as paths...
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x";)")));
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x/a/b";)")));
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x/a/*";)")));
  // ...but not the sibling /x1, which the string prefix "/x*" would match.
  EXPECT_FALSE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x1";)")));
  // A string prefix rooted at /x also matches /x1 etc., so the subtree does
  // not cover it; a string prefix strictly below the root stays inside.
  EXPECT_FALSE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x*";)")));
  EXPECT_TRUE(SubscriptionCovers(wide, FirstSub(R"(on op read "/x/a*";)")));
}

TEST(SubscriptionCoversTest, OpWildcardKindAndEventSeparation) {
  // Op kind "any" covers every op kind on a covered pattern.
  EXPECT_TRUE(SubscriptionCovers(FirstSub(R"(on op any "/x/*";)"),
                                 FirstSub(R"(on op update "/x/a";)")));
  EXPECT_FALSE(SubscriptionCovers(FirstSub(R"(on op read "/x/*";)"),
                                  FirstSub(R"(on op update "/x/a";)")));
  // Op and event subscriptions live in different namespaces entirely.
  EXPECT_FALSE(SubscriptionCovers(FirstSub(R"(on op any "/x/*";)"),
                                  FirstSub(R"(on event deleted "/x/a";)")));
}

TEST(RegistryLintTest, RedundantSubscriptionWithinExtension) {
  auto program = Parse(
      "extension a {\n"
      "  on op read \"/q*\";\n"
      "  on op read \"/q/head\";\n"
      "  fn read(oid) { return 1; }\n"
      "}\n");
  std::vector<RegistryLintUnit> units = {{"a", 1, program.get()}};
  std::vector<Diagnostic> diags = LintRegistry(units);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "EDC-W011");
  EXPECT_EQ(diags[0].handler, "a");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(RegistryLintTest, LaterRegistrationShadowsEarlierOp) {
  auto first = Parse(
      R"(extension a { on op read "/q/head"; fn read(oid) { return 1; } })");
  auto second = Parse(
      R"(extension b { on op read "/q/*"; fn read(oid) { return 2; } })");
  std::vector<RegistryLintUnit> units = {{"a", 1, first.get()},
                                         {"b", 2, second.get()}};
  std::vector<Diagnostic> diags = LintRegistry(units);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "EDC-W010");
  EXPECT_EQ(diags[0].handler, "a");  // the shadowed (earlier) extension
  EXPECT_NE(diags[0].message.find("'b'"), std::string::npos);

  // Registration order decides: flip it and nothing is shadowed ("/q/head"
  // registered later just takes precedence on the paths it names).
  std::vector<RegistryLintUnit> flipped = {{"b", 1, second.get()},
                                           {"a", 2, first.get()}};
  EXPECT_TRUE(LintRegistry(flipped).empty());
}

TEST(RegistryLintTest, SubtreeDoesNotShadowSibling) {
  // "/q1" is a sibling of the "/q/*" subtree, not inside it — no shadowing.
  auto first = Parse(
      R"(extension a { on op read "/q1"; fn read(oid) { return 1; } })");
  auto second = Parse(
      R"(extension b { on op read "/q/*"; fn read(oid) { return 2; } })");
  std::vector<RegistryLintUnit> units = {{"a", 1, first.get()},
                                         {"b", 2, second.get()}};
  EXPECT_TRUE(LintRegistry(units).empty());

  // The string prefix "/q*" does match the sibling: shadowing reappears.
  auto wider = Parse(
      R"(extension b { on op read "/q*"; fn read(oid) { return 2; } })");
  std::vector<RegistryLintUnit> units2 = {{"a", 1, first.get()},
                                          {"b", 2, wider.get()}};
  std::vector<Diagnostic> diags = LintRegistry(units2);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "EDC-W010");
}

TEST(RegistryLintTest, EventSubscriptionsNeverShadow) {
  // Events fan out to every matching extension; identical event triggers in
  // two extensions are fine (only op dispatch is last-registration-wins).
  auto first = Parse(
      R"(extension a { on event deleted "/m/*"; fn on_deleted(oid) { return null; } })");
  auto second = Parse(
      R"(extension b { on event deleted "/m/*"; fn on_deleted(oid) { return null; } })");
  std::vector<RegistryLintUnit> units = {{"a", 1, first.get()},
                                         {"b", 2, second.get()}};
  EXPECT_TRUE(LintRegistry(units).empty());
}

TEST(RegistryLintTest, ConflictingTypeWritesAcrossExtensions) {
  auto first = Parse(
      R"(extension a { on op read "/a"; fn read(oid) { update("/cfg/mode", 1); return 1; } })");
  auto second = Parse(
      R"(extension b { on op read "/b"; fn read(oid) { update("/cfg/mode", "fast"); return 1; } })");
  std::vector<RegistryLintUnit> units = {{"a", 1, first.get()},
                                         {"b", 2, second.get()}};
  std::vector<Diagnostic> diags = LintRegistry(units);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "EDC-W012");
  EXPECT_EQ(diags[0].handler, "b");
  EXPECT_NE(diags[0].message.find("a/read"), std::string::npos);

  // Same-type writes to the same key are not a conflict.
  auto same = Parse(
      R"(extension b { on op read "/b"; fn read(oid) { update("/cfg/mode", 2); return 1; } })");
  std::vector<RegistryLintUnit> units2 = {{"a", 1, first.get()},
                                          {"b", 2, same.get()}};
  EXPECT_TRUE(LintRegistry(units2).empty());
}

TEST(RegistryLintTest, CasConflictUsesWrittenValueNotCompareValue) {
  // cas(path, expected, new) writes args[2]; args[1] is only compared.
  auto first = Parse(
      R"(extension a { on op update "/a"; fn update(oid) { cas("/k", 0, 1); return 1; } })");
  auto second = Parse(
      R"(extension b { on op update "/b"; fn update(oid) { cas("/k", "x", 2); return 1; } })");
  std::vector<RegistryLintUnit> units = {{"a", 1, first.get()},
                                         {"b", 2, second.get()}};
  EXPECT_TRUE(LintRegistry(units).empty());
}

// End-to-end wiring: ExtensionRegistry recomputes the lint after every
// Load/Unload and exposes it via lint_warnings().
TEST(RegistryLintTest, RegistryLoadRefreshesLintWarnings) {
  VerifierConfig cfg;
  cfg.allowed_functions = CoreAllowedFunctions();

  ExtensionRegistry registry;
  ASSERT_TRUE(
      registry
          .Load("a", 1,
                R"(extension a { on op read "/q/head"; fn read(oid) { return 1; } })",
                cfg)
          .ok());
  EXPECT_TRUE(registry.lint_warnings().empty());

  ASSERT_TRUE(
      registry
          .Load("b", 1,
                R"(extension b { on op read "/q/*"; fn read(oid) { return 2; } })",
                cfg)
          .ok());
  ASSERT_EQ(registry.lint_warnings().size(), 1u);
  EXPECT_EQ(registry.lint_warnings()[0].code, "EDC-W010");
  EXPECT_EQ(registry.lint_warnings()[0].handler, "a");

  registry.Unload("b");
  EXPECT_TRUE(registry.lint_warnings().empty());
}

TEST(RegistryLintTest, BuiltInRecipesAreCleanTogether) {
  // The six paper recipes must not shadow or conflict with one another in
  // any registration order the benchmarks use.
  ExtensionRegistry registry;
  VerifierConfig cfg;
  cfg.allowed_functions = CoreAllowedFunctions();
  for (const char* name :
       {"create", "create_ephemeral", "create_sequential", "delete_object",
        "update", "cas", "read_object", "exists", "children", "sub_objects",
        "block", "monitor", "client_id"}) {
    cfg.allowed_functions[name] = true;
  }
  cfg.collection_functions = {"children", "sub_objects"};
  ASSERT_TRUE(registry.Load("counter", 1, kCounterExtension, cfg).ok());
  ASSERT_TRUE(registry.Load("queue", 1, kQueueExtension, cfg).ok());
  ASSERT_TRUE(registry.Load("barrier", 1, kBarrierExtension, cfg).ok());
  ASSERT_TRUE(registry.Load("election", 1, kElectionExtension, cfg).ok());
  ASSERT_TRUE(registry.Load("rename", 1, kRenameExtension, cfg).ok());
  ASSERT_TRUE(registry.Load("two_phase", 1, kTwoPhaseExtension, cfg).ok());
  EXPECT_TRUE(registry.lint_warnings().empty())
      << registry.lint_warnings()[0].message;
}

}  // namespace
}  // namespace edc
