#include "edc/sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

namespace edc {
namespace {

TEST(CpuQueueTest, SingleCoreSerializesWork) {
  EventLoop loop;
  CpuQueue cpu(&loop, 1);
  std::vector<int> order;
  cpu.Submit(Micros(10), [&] {
    order.push_back(1);
    EXPECT_EQ(loop.now(), Micros(10));
  });
  cpu.Submit(Micros(5), [&] {
    order.push_back(2);
    EXPECT_EQ(loop.now(), Micros(15));
  });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(cpu.busy_ns(), Micros(15));
}

TEST(CpuQueueTest, TwoCoresRunInParallel) {
  EventLoop loop;
  CpuQueue cpu(&loop, 2);
  int done = 0;
  cpu.Submit(Micros(10), [&] { ++done; });
  cpu.Submit(Micros(10), [&] { ++done; });
  loop.Run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(loop.now(), Micros(10));  // not 20: two cores
}

TEST(CpuQueueTest, QueueDelayReflectsBacklog) {
  EventLoop loop;
  CpuQueue cpu(&loop, 1);
  EXPECT_EQ(cpu.QueueDelay(), 0);
  cpu.Submit(Micros(100), [] {});
  EXPECT_EQ(cpu.QueueDelay(), Micros(100));
  cpu.Submit(Micros(50), [] {});
  EXPECT_EQ(cpu.QueueDelay(), Micros(150));
  loop.Run();
  EXPECT_EQ(cpu.QueueDelay(), 0);
}

TEST(CpuQueueTest, ZeroAndNegativeCostRunImmediately) {
  EventLoop loop;
  CpuQueue cpu(&loop, 1);
  int runs = 0;
  cpu.Submit(0, [&] { ++runs; });
  cpu.Submit(-5, [&] { ++runs; });
  loop.Run();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(loop.now(), 0);
}

TEST(CpuQueueTest, IdleGapDoesNotAccumulateBusyTime) {
  EventLoop loop;
  CpuQueue cpu(&loop, 1);
  cpu.Submit(Micros(10), [] {});
  loop.Run();
  loop.Schedule(Millis(1), [&] { cpu.Submit(Micros(10), [] {}); });
  loop.Run();
  EXPECT_EQ(cpu.busy_ns(), Micros(20));
  // Schedule() was relative to now()==10us after the first Run().
  EXPECT_EQ(loop.now(), Millis(1) + Micros(20));
}

}  // namespace
}  // namespace edc
