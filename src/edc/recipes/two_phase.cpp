#include "edc/recipes/two_phase.h"

#include <map>
#include <memory>
#include <utility>

#include "edc/recipes/scripts.h"

namespace edc {

namespace {

constexpr char kExtName[] = "two_phase";

bool WireSafe(const std::string& s) {
  for (char c : s) {
    if (c == ':' || c == ';' || c == '|') {
      return false;
    }
  }
  return true;
}

char KindChar(TwoPhaseOp::Kind kind) {
  switch (kind) {
    case TwoPhaseOp::Kind::kCreate:
      return 'c';
    case TwoPhaseOp::Kind::kUpdate:
      return 'u';
    case TwoPhaseOp::Kind::kDelete:
      return 'd';
  }
  return 'c';
}

// One in-flight transaction: the per-shard legs with their trigger paths
// (pinned once, from the map snapshot at Multi() time) and encoded bodies.
struct Tx {
  struct Leg {
    std::string prepare_path;
    std::string commit_path;
    std::string abort_path;
    std::string body;
  };
  std::string txid;
  std::vector<Leg> legs;
  size_t remaining = 0;
  Status first_error;
  StatusCb done;
};

}  // namespace

void ZkTwoPhase::Setup(StatusCb done) {
  router_->RegisterExtension(kExtName, kTwoPhaseExtension, std::move(done));
}

void ZkTwoPhase::Attach(StatusCb done) {
  router_->AcknowledgeExtension(kExtName, std::move(done));
}

void ZkTwoPhase::Multi(std::vector<TwoPhaseOp> ops, StatusCb done) {
  if (ops.empty()) {
    if (done) {
      done(Status(ErrorCode::kInvalidArgument, "empty transaction"));
    }
    return;
  }
  for (const TwoPhaseOp& op : ops) {
    if (!WireSafe(op.path) || !WireSafe(op.data)) {
      if (done) {
        done(Status(ErrorCode::kInvalidArgument,
                    "2pc paths/data must not contain ':', ';' or '|'"));
      }
      return;
    }
  }

  // Group ops by the shard their path routes to under the current map.
  const ShardMap& map = router_->map();
  std::map<size_t, std::string> bodies;
  for (const TwoPhaseOp& op : ops) {
    size_t shard = map.IndexFor(CoordKey::ForPath(op.path));
    std::string& body = bodies[shard];
    if (!body.empty()) {
      body.push_back(';');
    }
    body.push_back(KindChar(op.kind));
    body.push_back(':');
    body += op.path;
    if (op.kind != TwoPhaseOp::Kind::kDelete) {
      body.push_back(':');
      body += op.data;
    }
  }

  auto tx = std::make_shared<Tx>();
  tx->txid = "t" + std::to_string(router_->id()) + "-" + std::to_string(++tx_counter_);
  tx->done = std::move(done);
  for (auto& [shard, body] : bodies) {
    Tx::Leg leg;
    // Each trigger is salted so its subtree hashes onto the participant
    // shard's arc; the three salts are found independently (a prepare salt
    // does not route the commit path).
    leg.prepare_path = map.SubtreeForShard("/2pc-prepare", shard);
    leg.commit_path = map.SubtreeForShard("/2pc-commit", shard);
    leg.abort_path = map.SubtreeForShard("/2pc-abort", shard);
    leg.body = std::move(body);
    tx->legs.push_back(std::move(leg));
  }

  // Phase 1: prepare every leg.
  tx->remaining = tx->legs.size();
  ZkShardRouter* router = router_;
  for (Tx::Leg& leg : tx->legs) {
    router_->SetData(leg.prepare_path, tx->txid + "|" + leg.body, -1,
                     [tx, router](Status s) {
                       if (!s.ok() && tx->first_error.ok()) {
                         tx->first_error = s;
                       }
                       if (--tx->remaining != 0) {
                         return;
                       }
                       // Phase 2: commit everywhere, or abort everywhere if
                       // any prepare failed (abort on a shard that never
                       // staged is a no-op, so blanket abort is safe).
                       bool commit = tx->first_error.ok();
                       tx->remaining = tx->legs.size();
                       for (Tx::Leg& l : tx->legs) {
                         const std::string& path = commit ? l.commit_path : l.abort_path;
                         router->SetData(path, tx->txid, -1, [tx, commit](Status s2) {
                           if (commit && !s2.ok() && tx->first_error.ok()) {
                             tx->first_error = s2;
                           }
                           if (--tx->remaining == 0 && tx->done) {
                             tx->done(tx->first_error);
                           }
                         });
                       }
                     });
  }
}

}  // namespace edc
