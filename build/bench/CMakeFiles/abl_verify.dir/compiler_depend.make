# Empty compiler generated dependencies file for abl_verify.
# This may be replaced when dependencies are built.
