file(REMOVE_RECURSE
  "CMakeFiles/ext_test.dir/ext/ds_ext_test.cpp.o"
  "CMakeFiles/ext_test.dir/ext/ds_ext_test.cpp.o.d"
  "CMakeFiles/ext_test.dir/ext/registry_test.cpp.o"
  "CMakeFiles/ext_test.dir/ext/registry_test.cpp.o.d"
  "CMakeFiles/ext_test.dir/ext/rename_ext_test.cpp.o"
  "CMakeFiles/ext_test.dir/ext/rename_ext_test.cpp.o.d"
  "CMakeFiles/ext_test.dir/ext/zk_ext_test.cpp.o"
  "CMakeFiles/ext_test.dir/ext/zk_ext_test.cpp.o.d"
  "ext_test"
  "ext_test.pdb"
  "ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
