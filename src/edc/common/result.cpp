#include "edc/common/result.h"

namespace edc {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kConnectionLoss:
      return "CONNECTION_LOSS";
    case ErrorCode::kNotReady:
      return "NOT_READY";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kNoNode:
      return "NO_NODE";
    case ErrorCode::kNodeExists:
      return "NODE_EXISTS";
    case ErrorCode::kBadVersion:
      return "BAD_VERSION";
    case ErrorCode::kNotEmpty:
      return "NOT_EMPTY";
    case ErrorCode::kNoChildrenForEphemerals:
      return "NO_CHILDREN_FOR_EPHEMERALS";
    case ErrorCode::kSessionExpired:
      return "SESSION_EXPIRED";
    case ErrorCode::kAccessDenied:
      return "ACCESS_DENIED";
    case ErrorCode::kPolicyViolation:
      return "POLICY_VIOLATION";
    case ErrorCode::kShardMapStale:
      return "SHARD_MAP_STALE";
    case ErrorCode::kExtensionRejected:
      return "EXTENSION_REJECTED";
    case ErrorCode::kExtensionError:
      return "EXTENSION_ERROR";
    case ErrorCode::kExtensionLimit:
      return "EXTENSION_LIMIT";
    case ErrorCode::kNotAcknowledged:
      return "NOT_ACKNOWLEDGED";
    case ErrorCode::kDecodeError:
      return "DECODE_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace edc
