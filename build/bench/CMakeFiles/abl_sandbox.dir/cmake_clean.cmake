file(REMOVE_RECURSE
  "CMakeFiles/abl_sandbox.dir/abl_sandbox.cpp.o"
  "CMakeFiles/abl_sandbox.dir/abl_sandbox.cpp.o.d"
  "abl_sandbox"
  "abl_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
