// Dynamic membership at the Zab layer (docs/reconfig.md): observer tier,
// single-change reconfiguration through the replicated log, snapshot-shipped
// catch-up for joiners behind the log floor, promotion gating, leader
// self-removal, and determinism of the whole flow.

#include "edc/zab/node.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "edc/common/rng.h"
#include "edc/logstore/logstore.h"
#include "edc/sim/cpu.h"
#include "edc/sim/network.h"

namespace edc {
namespace {

std::vector<uint8_t> Txn(const std::string& s) { return std::vector<uint8_t>(s.begin(), s.end()); }
std::string TxnStr(const std::vector<uint8_t>& b) { return std::string(b.begin(), b.end()); }

class Replica : public NetworkNode, public ZabCallbacks {
 public:
  Replica(EventLoop* loop, Network* net, NodeId id, ZabConfig cfg)
      : id(id), cpu(loop, 1), log(loop, LogStoreConfig{}) {
    cfg.self = id;
    zab = std::make_unique<ZabNode>(loop, net, &cpu, &log, CostModel{}, cfg, this);
    net->Register(id, this);
  }

  void HandlePacket(Packet&& pkt) override {
    if (IsZabPacket(pkt.type)) {
      zab->HandlePacket(std::move(pkt));
    }
  }

  void OnDeliver(uint64_t zxid, const std::vector<uint8_t>& txn) override {
    delivered.push_back(TxnStr(txn));
    delivered_zxids.push_back(zxid);
    state += TxnStr(txn) + ";";
  }

  void OnRoleChange(bool leader, NodeId, uint32_t) override { is_leader = leader; }

  void OnMembershipChange(uint64_t zxid, const ZabMembership& m) override {
    membership_changes.push_back({zxid, m});
  }

  std::vector<uint8_t> TakeSnapshot() override { return Txn(state); }

  bool InstallSnapshot(uint64_t zxid, const std::vector<uint8_t>& snap) override {
    if (reject_installs) {
      return false;
    }
    state = TxnStr(snap);
    last_install_zxid = zxid;
    snapshot_installs++;
    return true;
  }

  void ResetServiceState() {
    state.clear();
    delivered.clear();
    delivered_zxids.clear();
  }

  NodeId id;
  CpuQueue cpu;
  LogStore log;
  std::unique_ptr<ZabNode> zab;
  std::vector<std::string> delivered;
  std::vector<uint64_t> delivered_zxids;
  std::vector<std::pair<uint64_t, ZabMembership>> membership_changes;
  std::string state;
  bool is_leader = false;
  int snapshot_installs = 0;
  uint64_t last_install_zxid = 0;
  // Fail every install, modeling a torn image / crash mid-install; the node
  // must re-request state transfer and succeed once the flag clears.
  bool reject_installs = false;
};

class ReconfigZabTest : public ::testing::Test {
 protected:
  void Boot(size_t n, uint64_t seed = 11) {
    net_ = std::make_unique<Network>(&loop_, Rng(seed), LinkParams{});
    base_.members.clear();
    for (size_t i = 1; i <= n; ++i) {
      base_.members.push_back(static_cast<NodeId>(i));
    }
    for (NodeId id : base_.members) {
      replicas_.push_back(std::make_unique<Replica>(&loop_, net_.get(), id, base_));
    }
    for (auto& r : replicas_) {
      r->zab->Start();
    }
    Settle(Seconds(2));
  }

  // Boots a fresh node whose contact list is the current voter set. With
  // `observer` it joins as a learner; pair with ProposeAddObserver.
  Replica* AddNode(NodeId id, bool observer) {
    ZabConfig cfg = base_;
    cfg.members = Leader()->zab->membership().voters;
    cfg.observer = observer;
    replicas_.push_back(std::make_unique<Replica>(&loop_, net_.get(), id, cfg));
    Replica* raw = replicas_.back().get();
    raw->zab->Start();
    return raw;
  }

  Replica* Leader() {
    for (auto& r : replicas_) {
      if (r->zab->is_leader()) {
        return r.get();
      }
    }
    return nullptr;
  }

  Replica* ById(NodeId id) {
    for (auto& r : replicas_) {
      if (r->id == id) {
        return r.get();
      }
    }
    return nullptr;
  }

  Status ProposeAddObserver(NodeId id) {
    ZabMembership next = Leader()->zab->membership();
    next.observers.push_back(id);
    return Leader()->zab->ProposeReconfig(std::move(next));
  }

  Status ProposePromote(NodeId id) {
    ZabMembership next = Leader()->zab->membership();
    next.observers.erase(std::remove(next.observers.begin(), next.observers.end(), id),
                         next.observers.end());
    next.voters.push_back(id);
    return Leader()->zab->ProposeReconfig(std::move(next));
  }

  Status ProposeRemove(NodeId id) {
    ZabMembership next = Leader()->zab->membership();
    next.voters.erase(std::remove(next.voters.begin(), next.voters.end(), id),
                      next.voters.end());
    next.observers.erase(std::remove(next.observers.begin(), next.observers.end(), id),
                         next.observers.end());
    return Leader()->zab->ProposeReconfig(std::move(next));
  }

  void Crash(Replica* r) {
    r->zab->Crash();
    net_->SetNodeUp(r->id, false);
  }

  void Restart(Replica* r) {
    net_->SetNodeUp(r->id, true);
    r->ResetServiceState();
    r->zab->Restart();
  }

  void Settle(Duration d = Seconds(2)) { loop_.RunUntil(loop_.now() + d); }

  EventLoop loop_;
  ZabConfig base_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

TEST_F(ReconfigZabTest, AddObserverReceivesCommitStreamWithoutVoting) {
  Boot(3);
  Replica* leader = Leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(leader->zab->Broadcast(Txn("pre" + std::to_string(i))));
  }
  Settle();

  ASSERT_TRUE(ProposeAddObserver(4).ok());
  Replica* obs = AddNode(4, /*observer=*/true);
  Settle();

  // The reconfig activated everywhere; 4 is an observer, not a voter.
  for (auto& r : replicas_) {
    if (r->zab->running()) {
      EXPECT_TRUE(r->zab->membership().IsObserver(4)) << "node " << r->id;
      EXPECT_FALSE(r->zab->membership().IsVoter(4)) << "node " << r->id;
    }
  }
  EXPECT_FALSE(obs->zab->is_voter());

  // New commits reach the observer in order.
  leader = Leader();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(leader->zab->Broadcast(Txn("post" + std::to_string(i))));
  }
  Settle();
  EXPECT_EQ(obs->state, leader->state);
  ASSERT_GE(obs->delivered.size(), 5u);
  EXPECT_EQ(obs->delivered.back(), "post4");
}

TEST_F(ReconfigZabTest, ObserverNeverCountsTowardQuorum) {
  Boot(3);
  ASSERT_TRUE(ProposeAddObserver(4).ok());
  AddNode(4, true);
  Settle();

  // Take down two voters: one voter + one observer is not a quorum of the
  // three-voter configuration, so nothing may commit.
  Replica* leader = Leader();
  ASSERT_NE(leader, nullptr);
  std::vector<Replica*> downed;
  for (auto& r : replicas_) {
    if (r->id != leader->id && r->zab->membership().IsVoter(r->id) && downed.size() < 2) {
      downed.push_back(r.get());
    }
  }
  ASSERT_EQ(downed.size(), 2u);
  size_t before = leader->delivered.size();
  for (Replica* r : downed) {
    Crash(r);
  }
  leader->zab->Broadcast(Txn("stuck"));
  Settle(Seconds(1));
  EXPECT_EQ(leader->delivered.size(), before) << "committed without a voter quorum";

  // Quorum restored => the pipeline resumes and the cluster is healthy.
  for (Replica* r : downed) {
    Restart(r);
  }
  Settle(Seconds(3));
  Replica* healed = Leader();
  ASSERT_NE(healed, nullptr);
  ASSERT_TRUE(healed->zab->Broadcast(Txn("after")));
  Settle();
  ASSERT_FALSE(healed->delivered.empty());
  EXPECT_EQ(healed->delivered.back(), "after");
}

TEST_F(ReconfigZabTest, PromotedObserverVotesInQuorum) {
  Boot(3);
  ASSERT_TRUE(ProposeAddObserver(4).ok());
  Replica* obs = AddNode(4, true);
  Settle();

  ASSERT_TRUE(ProposePromote(4).ok());
  Settle();
  for (auto& r : replicas_) {
    EXPECT_TRUE(r->zab->membership().IsVoter(4)) << "node " << r->id;
  }
  EXPECT_TRUE(obs->zab->is_voter());

  // Four voters, quorum 3: with one old voter down, commits need the promoted
  // node's ack — if it weren't a real voter this would stall.
  Replica* leader = Leader();
  Replica* victim = nullptr;
  for (auto& r : replicas_) {
    if (r->id != leader->id && r->id != 4 && r->zab->membership().IsVoter(r->id)) {
      victim = r.get();
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  Crash(victim);
  ASSERT_TRUE(leader->zab->Broadcast(Txn("needs4")));
  Settle();
  EXPECT_EQ(leader->delivered.back(), "needs4");
  EXPECT_EQ(obs->delivered.back(), "needs4");
}

TEST_F(ReconfigZabTest, PromotionGatedOnCatchUpLag) {
  base_.promote_lag = 4;
  Boot(3);
  Replica* leader = Leader();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(leader->zab->Broadcast(Txn("w" + std::to_string(i))));
  }
  Settle();

  // Candidate never acked anything this term (it is not even booted):
  // promoting it must be rejected, not stall future quorums.
  ASSERT_TRUE(ProposeAddObserver(4).ok());
  Settle();
  ZabMembership next = leader->zab->membership();
  next.observers.clear();
  next.voters.push_back(4);
  Status gated = leader->zab->ProposeReconfig(next);
  EXPECT_EQ(gated.code(), ErrorCode::kNotReady) << gated.message();

  // Once the observer is up and caught up, the same promotion is accepted.
  AddNode(4, true);
  Settle();
  EXPECT_TRUE(ProposePromote(4).ok());
  Settle();
  EXPECT_TRUE(Leader()->zab->membership().IsVoter(4));
}

TEST_F(ReconfigZabTest, SingleChangeRuleEnforced) {
  Boot(3);
  Replica* leader = Leader();
  // Two changes at once (add 4 and 5) is rejected.
  ZabMembership next = leader->zab->membership();
  next.observers.push_back(4);
  next.observers.push_back(5);
  EXPECT_EQ(leader->zab->ProposeReconfig(next).code(), ErrorCode::kInvalidArgument);
  // Removing the last voter can never be expressed as a valid single change
  // from {1,2,3}, but an empty voter set is rejected outright.
  ZabMembership empty;
  EXPECT_EQ(leader->zab->ProposeReconfig(empty).code(), ErrorCode::kInvalidArgument);
  // A second reconfig while one is in flight is rejected with kNotReady.
  ZabMembership add4 = leader->zab->membership();
  add4.observers.push_back(4);
  ASSERT_TRUE(leader->zab->ProposeReconfig(add4).ok());
  ZabMembership add5 = leader->zab->membership();
  add5.observers.push_back(5);
  EXPECT_EQ(leader->zab->ProposeReconfig(add5).code(), ErrorCode::kNotReady);
}

TEST_F(ReconfigZabTest, JoinerBehindLogFloorCatchesUpViaSnapshot) {
  Boot(3);
  Replica* leader = Leader();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(leader->zab->Broadcast(Txn("t" + std::to_string(i))));
  }
  Settle();
  leader->zab->CompactLog();  // joiner's zxid 0 now predates the log floor

  ASSERT_TRUE(ProposeAddObserver(4).ok());
  Replica* joiner = AddNode(4, true);
  Settle();

  EXPECT_GE(joiner->snapshot_installs, 1) << "expected the SNAP path";
  EXPECT_EQ(joiner->state, leader->state);

  // Log suffix after the snapshot still replays incrementally.
  ASSERT_TRUE(Leader()->zab->Broadcast(Txn("tail")));
  Settle();
  EXPECT_EQ(joiner->state, Leader()->state);
}

TEST_F(ReconfigZabTest, RejectedInstallRetriesUntilItSucceeds) {
  Boot(3);
  Replica* leader = Leader();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(leader->zab->Broadcast(Txn("t" + std::to_string(i))));
  }
  Settle();
  leader->zab->CompactLog();

  ASSERT_TRUE(ProposeAddObserver(4).ok());
  Replica* joiner = AddNode(4, true);
  joiner->reject_installs = true;  // torn image / crash mid-install
  Settle(Seconds(1));
  EXPECT_EQ(joiner->snapshot_installs, 0);
  EXPECT_NE(joiner->state, leader->state);

  joiner->reject_installs = false;  // next re-fetch succeeds
  Settle(Seconds(3));
  EXPECT_GE(joiner->snapshot_installs, 1);
  EXPECT_EQ(joiner->state, Leader()->state);
}

TEST_F(ReconfigZabTest, SnapshotInstalledJoinerSurvivesItsOwnCrash) {
  Boot(3);
  Replica* leader = Leader();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(leader->zab->Broadcast(Txn("t" + std::to_string(i))));
  }
  Settle();
  leader->zab->CompactLog();

  ASSERT_TRUE(ProposeAddObserver(4).ok());
  Replica* joiner = AddNode(4, true);
  Settle();
  ASSERT_EQ(joiner->state, leader->state);
  ASSERT_TRUE(joiner->log.has_snapshot()) << "installed image must be durable";

  // The joiner reboots: the durable snapshot blob (not the leader) is the
  // recovery source for the compacted prefix.
  Crash(joiner);
  Restart(joiner);
  Settle();
  EXPECT_EQ(joiner->state, Leader()->state);
  EXPECT_TRUE(joiner->zab->membership().IsObserver(4))
      << "membership must be recovered from the snapshot + log tail";
}

TEST_F(ReconfigZabTest, RemoveFollowerShrinksQuorum) {
  Boot(3);
  Replica* leader = Leader();
  Replica* gone = nullptr;
  for (auto& r : replicas_) {
    if (r->id != leader->id) {
      gone = r.get();
      break;
    }
  }
  ASSERT_TRUE(ProposeRemove(gone->id).ok());
  Settle();

  EXPECT_FALSE(gone->zab->running()) << "removed replica must retire";
  for (auto& r : replicas_) {
    if (r->zab->running()) {
      EXPECT_FALSE(r->zab->membership().Contains(gone->id));
      EXPECT_EQ(r->zab->membership().voters.size(), 2u);
    }
  }
  // Quorum is now 2 of 2 — commits proceed without the removed node.
  ASSERT_TRUE(Leader()->zab->Broadcast(Txn("smaller")));
  Settle();
  EXPECT_EQ(Leader()->delivered.back(), "smaller");
}

TEST_F(ReconfigZabTest, RemoveLeaderStepsDownAndClusterReelects) {
  Boot(3);
  Replica* old_leader = Leader();
  ASSERT_NE(old_leader, nullptr);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(old_leader->zab->Broadcast(Txn("pre" + std::to_string(i))));
  }
  Settle();
  std::vector<std::string> committed = old_leader->delivered;

  ASSERT_TRUE(ProposeRemove(old_leader->id).ok());
  Settle(Seconds(4));  // activation + step-down + re-election

  EXPECT_FALSE(old_leader->zab->running()) << "removed leader must retire";
  Replica* new_leader = Leader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->id, old_leader->id);
  EXPECT_FALSE(new_leader->zab->membership().Contains(old_leader->id));

  // No committed write may be lost across the hand-off.
  ASSERT_GE(new_leader->delivered.size(), committed.size());
  for (size_t i = 0; i < committed.size(); ++i) {
    EXPECT_EQ(new_leader->delivered[i], committed[i]);
  }
  ASSERT_TRUE(new_leader->zab->Broadcast(Txn("after-removal")));
  Settle();
  EXPECT_EQ(new_leader->delivered.back(), "after-removal");
}

TEST_F(ReconfigZabTest, AutoCompactionKeepsJoinPathWorking) {
  base_.snapshot_every = 8;
  Boot(3);
  Replica* leader = Leader();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(leader->zab->Broadcast(Txn("t" + std::to_string(i))));
  }
  Settle();
  // Every replica compacted on its own; a fresh joiner needs the SNAP path.
  ASSERT_TRUE(ProposeAddObserver(4).ok());
  Replica* joiner = AddNode(4, true);
  Settle();
  EXPECT_GE(joiner->snapshot_installs, 1);
  EXPECT_EQ(joiner->state, Leader()->state);
}

// The full join + promote + remove-leader flow is deterministic: two runs
// with identical seeds produce identical states, zxids and memberships.
TEST(ReconfigZabDeterminism, SameSeedSameOutcome) {
  auto run = [](uint64_t seed) {
    EventLoop loop;
    auto net = std::make_unique<Network>(&loop, Rng(seed), LinkParams{});
    ZabConfig base;
    base.members = {1, 2, 3};
    std::vector<std::unique_ptr<Replica>> replicas;
    for (NodeId id : base.members) {
      replicas.push_back(std::make_unique<Replica>(&loop, net.get(), id, base));
    }
    for (auto& r : replicas) {
      r->zab->Start();
    }
    auto settle = [&](Duration d) { loop.RunUntil(loop.now() + d); };
    auto leader = [&]() -> Replica* {
      for (auto& r : replicas) {
        if (r->zab->is_leader()) {
          return r.get();
        }
      }
      return nullptr;
    };
    settle(Seconds(2));
    for (int i = 0; i < 10; ++i) {
      leader()->zab->Broadcast(Txn("w" + std::to_string(i)));
    }
    settle(Seconds(1));
    ZabMembership add = leader()->zab->membership();
    add.observers.push_back(4);
    leader()->zab->ProposeReconfig(add);
    ZabConfig joiner_cfg = base;
    joiner_cfg.members = leader()->zab->membership().voters;
    joiner_cfg.observer = true;
    replicas.push_back(std::make_unique<Replica>(&loop, net.get(), 4, joiner_cfg));
    replicas.back()->zab->Start();
    settle(Seconds(2));
    ZabMembership promote = leader()->zab->membership();
    promote.observers.clear();
    promote.voters.push_back(4);
    leader()->zab->ProposeReconfig(promote);
    settle(Seconds(2));
    NodeId removed = leader()->id;
    ZabMembership drop = leader()->zab->membership();
    drop.voters.erase(std::remove(drop.voters.begin(), drop.voters.end(), removed),
                      drop.voters.end());
    leader()->zab->ProposeReconfig(drop);
    settle(Seconds(4));
    leader()->zab->Broadcast(Txn("final"));
    settle(Seconds(2));
    std::string digest;
    for (auto& r : replicas) {
      digest += std::to_string(r->id) + "=" + r->state + "|running=" +
                (r->zab->running() ? "1" : "0") + "|";
      for (uint64_t z : r->delivered_zxids) {
        digest += std::to_string(z) + ",";
      }
      digest += "#";
    }
    return digest;
  };
  std::string a = run(42);
  std::string b = run(42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("final"), std::string::npos) << "flow did not complete:\n" << a;
}

}  // namespace
}  // namespace edc
