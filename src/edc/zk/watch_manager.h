// Per-replica one-shot watches (ZooKeeper semantics).
//
// Watches are volatile, connection-local state: they are registered by read
// operations served at this replica and fire at most once. Data watches
// (exists/getData) trigger on creation, deletion and data change of the
// watched path; child watches (getChildren) trigger on membership changes
// and on deletion of the watched node itself.

#ifndef EDC_ZK_WATCH_MANAGER_H_
#define EDC_ZK_WATCH_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "edc/zk/types.h"

namespace edc {

class WatchManager {
 public:
  void AddDataWatch(const std::string& path, uint64_t session) {
    data_watches_[path].insert(session);
  }
  void AddChildWatch(const std::string& path, uint64_t session) {
    child_watches_[path].insert(session);
  }

  // Sessions whose watch fires for this event; fired watches are removed.
  std::vector<uint64_t> Trigger(ZkEventType type, const std::string& path);

  void RemoveSession(uint64_t session);
  void Clear() {
    data_watches_.clear();
    child_watches_.clear();
  }

  size_t data_watch_count() const;
  size_t child_watch_count() const;

 private:
  static std::vector<uint64_t> Pop(std::map<std::string, std::set<uint64_t>>& watches,
                                   const std::string& path);

  std::map<std::string, std::set<uint64_t>> data_watches_;
  std::map<std::string, std::set<uint64_t>> child_watches_;
};

}  // namespace edc

#endif  // EDC_ZK_WATCH_MANAGER_H_
