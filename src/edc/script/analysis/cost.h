// Worst-case step-cost bounding for CoordScript handlers (paper §4.1.1/§4.2).
//
// The interpreter charges exactly one ExecBudget step per statement executed
// and one per expression node evaluated. This pass mirrors that accounting
// symbolically:
//
//   cost(expr)            = 1 + sum(cost(children))        (short-circuit and
//                                                           error paths only
//                                                           ever cost less)
//   cost(let/assign/expr) = 1 + cost(rhs)
//   cost(return)          = 1 + cost(value)
//   cost(if)              = 1 + cost(cond) + max(cost(then), cost(else))
//   cost(foreach)         = 1 + cost(list) + N * cost(body)
//
// where N is an upper bound on the iterated list's length, tracked through an
// abstract lattice over variables: exact(n) for list literals, capped(k) for
// host collection functions whose result size the sandbox truncates at
// `max_collection_items`, transfer functions for list-producing builtins
// (append adds one, sort_by preserves), and top (unbounded) for everything
// else. foreach bodies are analyzed to a fixpoint with widening: any variable
// whose bound grows across an iteration is widened to unbounded.
//
// A handler whose total bound is finite is `bounded`; if the bound also fits
// the execution budget it is *certified* and the interpreter may elide
// per-node limit checks (metering elision) — the certificate proves the check
// can never fire.

#ifndef EDC_SCRIPT_ANALYSIS_COST_H_
#define EDC_SCRIPT_ANALYSIS_COST_H_

#include <cstdint>
#include <set>
#include <string>

#include "edc/script/ast.h"

namespace edc {

struct CostContext {
  // Host functions returning collections whose size the sandbox caps at
  // `collection_cap` items (e.g. children, sub_objects).
  std::set<std::string> collection_functions;
  int64_t collection_cap = 256;
};

struct CostResult {
  bool bounded = false;
  int64_t steps = 0;  // valid only if bounded; saturating arithmetic
};

// Cost bounds saturate here instead of overflowing.
inline constexpr int64_t kCostCap = INT64_MAX / 4;

CostResult BoundHandlerCost(const Handler& handler, const CostContext& ctx);

}  // namespace edc

#endif  // EDC_SCRIPT_ANALYSIS_COST_H_
