file(REMOVE_RECURSE
  "CMakeFiles/edc_zk.dir/client.cpp.o"
  "CMakeFiles/edc_zk.dir/client.cpp.o.d"
  "CMakeFiles/edc_zk.dir/data_tree.cpp.o"
  "CMakeFiles/edc_zk.dir/data_tree.cpp.o.d"
  "CMakeFiles/edc_zk.dir/prep.cpp.o"
  "CMakeFiles/edc_zk.dir/prep.cpp.o.d"
  "CMakeFiles/edc_zk.dir/server.cpp.o"
  "CMakeFiles/edc_zk.dir/server.cpp.o.d"
  "CMakeFiles/edc_zk.dir/txn.cpp.o"
  "CMakeFiles/edc_zk.dir/txn.cpp.o.d"
  "CMakeFiles/edc_zk.dir/types.cpp.o"
  "CMakeFiles/edc_zk.dir/types.cpp.o.d"
  "CMakeFiles/edc_zk.dir/watch_manager.cpp.o"
  "CMakeFiles/edc_zk.dir/watch_manager.cpp.o.d"
  "libedc_zk.a"
  "libedc_zk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_zk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
