file(REMOVE_RECURSE
  "libedc_zab.a"
)
