// Replica of the ZooKeeper-like coordination service.
//
// Each server is one simulated host: a CPU queue, a durable log, a Zab node,
// the data tree, and the request-processor pipeline. Reads are served by the
// replica the client is connected to (the fast path); updates — and any
// operation matching an extension subscription — are forwarded to the Zab
// leader, prepped into a deterministic transaction there, broadcast, and
// applied by every replica. The replica owning the client's session sends
// the reply when it applies the transaction (results, including extension
// results, are piggybacked on the transaction, §5.1.2).

#ifndef EDC_ZK_SERVER_H_
#define EDC_ZK_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "edc/logstore/logstore.h"
#include "edc/sim/cpu.h"
#include "edc/sim/costs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/network.h"
#include "edc/zab/node.h"
#include "edc/zk/data_tree.h"
#include "edc/zk/hooks.h"
#include "edc/zk/prep.h"
#include "edc/zk/txn.h"
#include "edc/zk/types.h"
#include "edc/zk/watch_manager.h"

namespace edc {

struct ZkServerOptions {
  int cpu_cores = 1;
  LogStoreConfig log;
  Duration zab_heartbeat = Millis(50);
  Duration zab_leader_timeout = Millis(250);
  Duration zab_election_retry = Millis(120);
  // Followers ack once per durable log batch (cumulative) instead of once
  // per record; off = legacy per-record ack stream (ZabConfig::ack_aggregation).
  bool zab_ack_aggregation = true;
  Duration session_check_interval = Millis(200);
  // Test-only: deliver every watch notification twice. The conformance
  // checker's negative tests plant this bug to prove a single-fire violation
  // is caught and shrunk (docs/model_checking.md).
  bool test_double_fire_watches = false;
  // Boot as a non-voting observer (docs/reconfig.md): `members` is then the
  // contact list of the current voters, not a tier this replica belongs to.
  // A later "promote" reconfig turns the replica into a voter.
  bool observer = false;
  // Auto-compaction: snapshot + drop the delivered log prefix every N
  // delivered transactions (ZabConfig::snapshot_every). 0 = never (legacy);
  // joiners then always catch up by full log replay.
  size_t zab_snapshot_every = 0;
  // Commit-frontier slack a candidate voter must be within before a
  // "promote" reconfig is accepted (ZabConfig::promote_lag).
  uint64_t zab_promote_lag = 32;
};

class ZkServer : public NetworkNode, public ZabCallbacks {
 public:
  ZkServer(EventLoop* loop, Network* net, NodeId id, std::vector<NodeId> members,
           const CostModel& costs, ZkServerOptions options);
  ~ZkServer() override = default;

  // Must be set before Start() if extensions are enabled; nullptr = plain
  // ZooKeeper.
  void SetHooks(ZkServerHooks* hooks) { hooks_ = hooks; }

  // Sharded deployments (docs/sharding.md): tell the replica which shard it
  // serves and the minimum shard-map version clients must route with.
  // Requests stamped with an older version are rejected at admission with
  // kShardMapStale (pings and session closes are exempt). The version only
  // ever moves forward; 0 (the default) disables the check entirely, so
  // standalone deployments behave exactly as before. Admission-level
  // configuration, not replicated state: reads are admitted per replica
  // anyway, and writes are checked before they enter the ordering pipeline.
  void SetShardInfo(uint32_t shard_id, uint64_t expected_map_version) {
    shard_id_ = shard_id;
    if (expected_map_version > expected_map_version_) {
      expected_map_version_ = expected_map_version;
    }
  }
  uint32_t shard_id() const { return shard_id_; }
  uint64_t expected_map_version() const { return expected_map_version_; }

  // Observability (nullable): forwards to the CPU queue, the log store and
  // the Zab node, all reporting into the shared registry/tracer.
  void SetObs(Obs* obs) {
    obs_ = obs;
    cpu_.SetObs(obs, static_cast<uint32_t>(id_));
    log_.SetObs(obs, static_cast<uint32_t>(id_));
    zab_->SetObs(obs);
  }
  Obs* obs() const { return obs_; }

  void Start();
  void Crash();
  void Restart();

  // NetworkNode.
  void HandlePacket(Packet&& pkt) override;

  // ZabCallbacks.
  void OnDeliver(uint64_t zxid, const std::vector<uint8_t>& txn) override;
  void OnRoleChange(bool leader, NodeId leader_id, uint32_t epoch) override;
  std::vector<uint8_t> TakeSnapshot() override;
  // Transactional: decodes every section into temporaries and swaps only on
  // full success. Returns false — with zero state mutated — on any framing,
  // checksum or structural failure, so the Zab layer can re-request the
  // snapshot instead of running on a half-installed tree.
  bool InstallSnapshot(uint64_t zxid, const std::vector<uint8_t>& snapshot) override;
  // A reconfiguration activated at `zxid`: push the new ensemble to every
  // connected client, complete a pending admin reconfig reply, and stop
  // serving if this replica was removed.
  void OnMembershipChange(uint64_t zxid, const ZabMembership& membership) override;

  // Introspection (extension manager, tests, benches).
  NodeId id() const { return id_; }
  SimTime now() const { return loop_->now(); }
  bool IsLeader() const { return zab_->is_leader(); }
  NodeId leader() const { return zab_->leader(); }
  bool running() const { return running_; }
  const DataTree& tree() const { return tree_; }
  ZabNode& zab() { return *zab_; }
  CpuQueue& cpu() { return cpu_; }
  int64_t txns_applied() const { return txns_applied_; }
  // (zxid, FNV-1a of txn bytes) for every transaction applied since the last
  // boot/snapshot, in delivery order. Invariant checkers compare the zxid
  // overlap of these across replicas (prefix consistency).
  const std::vector<std::pair<uint64_t, uint64_t>>& applied_log() const {
    return applied_log_;
  }

  // History observation for the model-conformance checker: invoked for every
  // decoded transaction this replica applies, in delivery order (including
  // log replay after a restart — zxids repeat across the reboot, the checker
  // merges by zxid).
  using CommitObserver =
      std::function<void(uint64_t zxid, const ZkTxn& txn, uint64_t txn_hash)>;
  void SetCommitObserver(CommitObserver observer) { commit_observer_ = std::move(observer); }

  // --- services for the extension manager -------------------------------
  // Leader-only: open a prep session for an internal (event-extension)
  // transaction. `session` is the privilege context (0 = server).
  std::unique_ptr<PrepSession> BeginInternalPrep(uint64_t session);
  // Broadcast the ops accumulated in `prep` as one multi-transaction.
  // `ext_depth` tags extension-generated chains (see ZkTxn::ext_depth).
  bool ProposeFromPrep(PrepSession* prep, bool has_result, std::string result,
                       Duration extra_cpu, uint8_t ext_depth = 0);
  uint64_t AllocInternalReqId() { return ++internal_req_counter_; }

 private:
  struct SessionInfo {
    uint32_t owner = 0;
    Duration timeout = 0;
    SimTime last_seen = 0;  // meaningful on the owner replica only
  };

  bool OwnerReplicaDead(const SessionInfo& info) const;

  void StartSessionTimer();
  void CheckSessions();

  void ProcessClientPacket(Packet&& pkt);
  void OnConnect(Packet&& pkt);
  void OnClientRequest(Packet&& pkt);
  void ServeRead(uint64_t session, const ZkRequestMsg& msg, NodeId client);
  void RouteToLeader(uint32_t origin, const ZkRequestMsg& msg);
  void PrepAndPropose(uint32_t origin, ZkRequestMsg msg);
  void DoPrep(uint32_t origin, ZkRequestMsg msg);
  // Leader-side handling of an admin kReconfig request: parse the
  // single-change spec against the live membership and replicate it through
  // the Zab log. The reply is sent when the change activates (or fails).
  void DoReconfig(uint32_t origin, const ZkRequestMsg& msg);
  Status ParseReconfigSpec(const std::string& spec, ZabMembership* next) const;

  void ApplyTxn(uint64_t zxid, const ZkTxn& txn);
  static bool TxnIsDeferred(const ZkTxn& txn);

  void RouteReply(uint32_t origin, uint64_t session, ZkReplyMsg reply);
  void SendReplyToClient(uint64_t session, const ZkReplyMsg& reply);
  void SendPacket(NodeId dst, ZkMsgType type, std::vector<uint8_t> payload);

  EventLoop* loop_;
  Network* net_;
  NodeId id_;
  CostModel costs_;
  ZkServerOptions options_;
  CpuQueue cpu_;
  LogStore log_;
  std::unique_ptr<ZabNode> zab_;
  ZkServerHooks* hooks_ = nullptr;
  Obs* obs_ = nullptr;

  bool running_ = false;
  uint64_t generation_ = 0;
  uint32_t shard_id_ = 0;
  uint64_t expected_map_version_ = 0;  // survives Crash()/Restart()

  // Replicated state machine.
  DataTree tree_;
  std::map<uint64_t, SessionInfo> sessions_;
  std::map<std::string, std::vector<std::pair<uint64_t, uint64_t>>> block_table_;

  // Leader-only pipeline state.
  std::deque<PendingDelta> outstanding_;

  // Leader-only: the admin reconfig awaiting activation (at most one — Zab
  // rejects a second while one is in flight). Cleared on role change.
  struct PendingReconfig {
    bool active = false;
    uint32_t origin = 0;
    uint64_t session = 0;
    uint64_t req_id = 0;
  };
  PendingReconfig pending_reconfig_;

  // Connection-local volatile state.
  struct PendingConnect {
    NodeId client = 0;
    uint64_t old_session = 0;  // session the client held before reconnecting
  };
  WatchManager watch_mgr_;
  std::map<uint64_t, NodeId> client_nodes_;
  std::map<uint64_t, PendingConnect> pending_connects_;
  std::set<uint64_t> expiring_sessions_;
  uint64_t session_counter_ = 0;
  uint64_t internal_req_counter_ = 0;
  int64_t txns_applied_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> applied_log_;  // (zxid, txn hash)
  SimTime leader_since_ = 0;  // when this replica last became leader
  TimerId session_timer_ = kInvalidTimer;
  CommitObserver commit_observer_;
};

}  // namespace edc

#endif  // EDC_ZK_SERVER_H_
