// Microbenchmarks of the substrate data structures (real CPU time, via
// google-benchmark): data-tree operations, tuple matching, and the wire
// codec. These are the hot paths under every simulated request.

#include <benchmark/benchmark.h>

#include "bench/gbench_json.h"
#include "edc/common/codec.h"
#include "edc/ds/tuple_space.h"
#include "edc/zab/messages.h"
#include "edc/zk/data_tree.h"

namespace edc {
namespace {

void BM_DataTreeCreateDelete(benchmark::State& state) {
  DataTree tree;
  (void)tree.Create("/bench", "", 0, false, 1, 0);
  uint64_t zxid = 2;
  for (auto _ : state) {
    auto path = tree.Create("/bench/node", "payload", 0, false, zxid++, 0);
    benchmark::DoNotOptimize(path);
    (void)tree.Delete("/bench/node", -1, zxid++);
  }
}
BENCHMARK(BM_DataTreeCreateDelete);

void BM_DataTreeGetDeep(benchmark::State& state) {
  DataTree tree;
  std::string path;
  for (int depth = 0; depth < state.range(0); ++depth) {
    path += "/d" + std::to_string(depth);
    (void)tree.Create(path, "x", 0, false, 1, 0);
  }
  for (auto _ : state) {
    auto node = tree.Get(path);
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_DataTreeGetDeep)->Arg(2)->Arg(8)->Arg(32);

void BM_DataTreeGetChildren(benchmark::State& state) {
  DataTree tree;
  (void)tree.Create("/q", "", 0, false, 1, 0);
  for (int i = 0; i < state.range(0); ++i) {
    (void)tree.Create("/q/e" + std::to_string(i), "", 0, false, 2, 0);
  }
  for (auto _ : state) {
    auto children = tree.GetChildren("/q");
    benchmark::DoNotOptimize(children);
  }
}
BENCHMARK(BM_DataTreeGetChildren)->Arg(10)->Arg(100)->Arg(1000);

void BM_TreeSerialize(benchmark::State& state) {
  DataTree tree;
  (void)tree.Create("/s", "", 0, false, 1, 0);
  for (int i = 0; i < state.range(0); ++i) {
    (void)tree.Create("/s/n" + std::to_string(i), std::string(64, 'x'), 0, false, 2, 0);
  }
  for (auto _ : state) {
    auto bytes = tree.Serialize();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tree.Serialize().size()));
}
BENCHMARK(BM_TreeSerialize)->Arg(100)->Arg(1000);

void BM_TupleMatch(benchmark::State& state) {
  TupleSpace space;
  for (int i = 0; i < state.range(0); ++i) {
    space.Out(ObjectTuple("/obj/" + std::to_string(i), "data"), i, 1, 0);
  }
  DsTemplate templ = ObjectTemplate("/obj/" + std::to_string(state.range(0) - 1));
  for (auto _ : state) {
    auto match = space.Rdp(templ);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_TupleMatch)->Arg(10)->Arg(100)->Arg(1000);

void BM_TuplePrefixScan(benchmark::State& state) {
  TupleSpace space;
  for (int i = 0; i < state.range(0); ++i) {
    space.Out(ObjectTuple("/queue/e" + std::to_string(i), ""), i, 1, 0);
  }
  DsTemplate templ = ObjectPrefixTemplate("/queue");
  for (auto _ : state) {
    auto all = space.RdAll(templ);
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_TuplePrefixScan)->Arg(10)->Arg(100);

void BM_CodecEncodeDecode(benchmark::State& state) {
  std::string payload(static_cast<size_t>(state.range(0)), 'p');
  for (auto _ : state) {
    Encoder enc;
    enc.PutU64(12345);
    enc.PutString("/some/path/to/node");
    enc.PutString(payload);
    enc.PutVarint(777);
    Decoder dec(enc.buffer());
    benchmark::DoNotOptimize(dec.GetU64());
    benchmark::DoNotOptimize(dec.GetString());
    benchmark::DoNotOptimize(dec.GetString());
    benchmark::DoNotOptimize(dec.GetVarint());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CodecEncodeDecode)->Arg(64)->Arg(1024);

// --- proposal codec: per-message vs arena (docs/replication_pipeline.md) ---
//
// The replication hot path used to allocate a fresh Encoder per proposal for
// the wire frame and then a second one to re-encode the proposal for the
// log record. The arena path encodes once into a reused buffer and slices
// the log record out of the frame; these two benches measure that delta on
// the leader side, and the two below it measure the follower side
// (decode + re-encode vs borrow a view and copy the record slice).

ZabProposal MakeProposal(size_t txn_size) {
  ZabProposal p;
  p.zxid = MakeZxid(3, 12345);
  p.txn.assign(txn_size, 0xab);
  return p;
}

void BM_ProposalEncodePerMessage(benchmark::State& state) {
  ZabProposal p = MakeProposal(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    // Legacy shape: one Encoder for the wire frame, one to re-encode the
    // proposal as the log record.
    std::vector<uint8_t> frame = EncodeProposeMsg({3, p});
    Encoder rec;
    p.Encode(rec);
    std::vector<uint8_t> record = rec.Release();
    benchmark::DoNotOptimize(frame);
    benchmark::DoNotOptimize(record);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ProposalEncodePerMessage)->Arg(64)->Arg(1024);

void BM_ProposalEncodeArena(benchmark::State& state) {
  ZabProposal p = MakeProposal(static_cast<size_t>(state.range(0)));
  Encoder arena;
  for (auto _ : state) {
    arena.Clear();
    EncodeProposeMsgInto({3, p}, arena);
    const std::vector<uint8_t>& frame = arena.buffer();
    std::vector<uint8_t> record(frame.begin() + kProposeHeaderBytes, frame.end());
    benchmark::DoNotOptimize(frame.data());
    benchmark::DoNotOptimize(record);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ProposalEncodeArena)->Arg(64)->Arg(1024);

void BM_ProposalDecodeAndRelog(benchmark::State& state) {
  ZabProposal p = MakeProposal(static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> packet = EncodeProposeMsg({3, p});
  for (auto _ : state) {
    auto msg = DecodeProposeMsg(packet);
    Encoder rec;
    msg->proposal.Encode(rec);
    std::vector<uint8_t> record = rec.Release();
    benchmark::DoNotOptimize(record);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ProposalDecodeAndRelog)->Arg(64)->Arg(1024);

void BM_ProposalDecodeView(benchmark::State& state) {
  ZabProposal p = MakeProposal(static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> packet = EncodeProposeMsg({3, p});
  for (auto _ : state) {
    auto view = DecodeProposeMsgView(packet);
    std::vector<uint8_t> record(view->record, view->record + view->record_size);
    benchmark::DoNotOptimize(view->txn);
    benchmark::DoNotOptimize(record);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ProposalDecodeView)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace edc

int main(int argc, char** argv) {
  return edc::GBenchMainWithJson("micro_substrate", argc, argv);
}
