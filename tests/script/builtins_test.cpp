#include "edc/script/builtins.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace edc {
namespace {

Result<Value> Call(const std::string& name, std::vector<Value> args) {
  auto it = CoreBuiltins().find(name);
  if (it == CoreBuiltins().end()) {
    return Status(ErrorCode::kInternal, "no builtin " + name);
  }
  return it->second.fn(args);
}

Value Obj(const std::string& path, int64_t ctime) {
  return Value::Map({{"path", Value(path)}, {"ctime", Value(ctime)}});
}

TEST(BuiltinsTest, Len) {
  EXPECT_EQ(Call("len", {Value("abc")})->AsInt(), 3);
  EXPECT_EQ(Call("len", {Value::List({Value(1), Value(2)})})->AsInt(), 2);
  EXPECT_EQ(Call("len", {Value::Map({{"a", Value(1)}})})->AsInt(), 1);
  EXPECT_FALSE(Call("len", {Value(5)}).ok());
  EXPECT_FALSE(Call("len", {}).ok());
}

TEST(BuiltinsTest, StrAndParseInt) {
  EXPECT_EQ(Call("str", {Value(42)})->AsStr(), "42");
  EXPECT_EQ(Call("parse_int", {Value("42")})->AsInt(), 42);
  EXPECT_EQ(Call("parse_int", {Value("-3")})->AsInt(), -3);
  EXPECT_FALSE(Call("parse_int", {Value("4x")}).ok());
  EXPECT_FALSE(Call("parse_int", {Value(7)}).ok());
}

TEST(BuiltinsTest, MinMaxAbs) {
  EXPECT_EQ(Call("min", {Value(3), Value(5)})->AsInt(), 3);
  EXPECT_EQ(Call("max", {Value(3), Value(5)})->AsInt(), 5);
  EXPECT_EQ(Call("min", {Value("b"), Value("a")})->AsStr(), "a");
  EXPECT_EQ(Call("abs", {Value(-9)})->AsInt(), 9);
  EXPECT_FALSE(Call("min", {Value(1), Value("x")}).ok());
}

TEST(BuiltinsTest, AbsAtInt64MinWrapsInsteadOfOverflowing) {
  // -INT64_MIN is undefined in signed arithmetic; the builtin wraps via
  // unsigned negation, so abs(INT64_MIN) == INT64_MIN (two's complement).
  auto out = Call("abs", {Value(INT64_MIN)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->AsInt(), INT64_MIN);
}

TEST(BuiltinsTest, StringOps) {
  EXPECT_EQ(Call("concat", {Value("a"), Value(1), Value("b")})->AsStr(), "a1b");
  EXPECT_EQ(Call("substr", {Value("hello"), Value(1), Value(3)})->AsStr(), "ell");
  EXPECT_FALSE(Call("substr", {Value("hi"), Value(5), Value(1)}).ok());
  EXPECT_TRUE(Call("starts_with", {Value("/queue/e1"), Value("/queue/")})->AsBool());
  EXPECT_TRUE(Call("ends_with", {Value("x.txt"), Value(".txt")})->AsBool());
  EXPECT_TRUE(Call("contains", {Value("abc"), Value("b")})->AsBool());
  EXPECT_EQ(Call("index_of", {Value("abc"), Value("c")})->AsInt(), 2);
  EXPECT_EQ(Call("index_of", {Value("abc"), Value("z")})->AsInt(), -1);
}

TEST(BuiltinsTest, Split) {
  auto out = Call("split", {Value("/a/b"), Value("/")});
  ASSERT_TRUE(out.ok());
  const ValueList& parts = out->AsList();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].AsStr(), "");
  EXPECT_EQ(parts[1].AsStr(), "a");
  EXPECT_EQ(parts[2].AsStr(), "b");
  EXPECT_FALSE(Call("split", {Value("x"), Value("ab")}).ok());
}

TEST(BuiltinsTest, AppendIsFunctional) {
  Value list = Value::List({Value(1)});
  auto out = Call("append", {list, Value(2)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->AsList().size(), 2u);
  EXPECT_EQ(list.AsList().size(), 1u);  // original untouched
}

TEST(BuiltinsTest, GetHasKeys) {
  Value m = Value::Map({{"a", Value(1)}, {"b", Value(2)}});
  EXPECT_EQ(Call("get", {m, Value("a")})->AsInt(), 1);
  EXPECT_TRUE(Call("get", {m, Value("zz")})->is_null());
  EXPECT_TRUE(Call("has", {m, Value("b")})->AsBool());
  EXPECT_FALSE(Call("has", {m, Value("zz")})->AsBool());
  auto keys = Call("keys", {m});
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->AsList().size(), 2u);
  Value list = Value::List({Value("x"), Value("y")});
  EXPECT_EQ(Call("get", {list, Value(1)})->AsStr(), "y");
  EXPECT_FALSE(Call("get", {list, Value(9)}).ok());
}

TEST(BuiltinsTest, MinByMaxBySortBy) {
  Value list = Value::List({Obj("/q/b", 20), Obj("/q/a", 10), Obj("/q/c", 30)});
  EXPECT_EQ(Call("min_by", {list, Value("ctime")})->AsMap().at("path").AsStr(), "/q/a");
  EXPECT_EQ(Call("max_by", {list, Value("ctime")})->AsMap().at("path").AsStr(), "/q/c");
  auto sorted = Call("sort_by", {list, Value("ctime")});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->AsList()[0].AsMap().at("path").AsStr(), "/q/a");
  EXPECT_EQ(sorted->AsList()[2].AsMap().at("path").AsStr(), "/q/c");
  // Empty list -> null extremum, empty sort.
  Value empty = Value::List({});
  EXPECT_TRUE(Call("min_by", {empty, Value("ctime")})->is_null());
  EXPECT_EQ(Call("sort_by", {empty, Value("ctime")})->AsList().size(), 0u);
  // Missing field is an error.
  EXPECT_FALSE(Call("min_by", {list, Value("nope")}).ok());
}

TEST(BuiltinsTest, SortByIsStable) {
  Value list = Value::List({
      Value::Map({{"k", Value(1)}, {"tag", Value("first")}}),
      Value::Map({{"k", Value(1)}, {"tag", Value("second")}}),
  });
  auto sorted = Call("sort_by", {list, Value("k")});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->AsList()[0].AsMap().at("tag").AsStr(), "first");
}

TEST(BuiltinsTest, ErrorRaises) {
  auto out = Call("error", {Value("boom")});
  EXPECT_EQ(out.code(), ErrorCode::kExtensionError);
  EXPECT_NE(out.status().message().find("boom"), std::string::npos);
}

TEST(BuiltinsTest, AllBuiltinsAreDeterministic) {
  for (const auto& [name, info] : CoreBuiltins()) {
    EXPECT_TRUE(info.deterministic) << name;
  }
}

TEST(ValueTest, TruthinessTable) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_FALSE(Value(0).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_FALSE(Value::List({}).Truthy());
  EXPECT_TRUE(Value(true).Truthy());
  EXPECT_TRUE(Value(1).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
  EXPECT_TRUE(Value::List({Value(0)}).Truthy());
}

TEST(ValueTest, EqualsDeep) {
  Value a = Value::Map({{"l", Value::List({Value(1), Value("x")})}});
  Value b = Value::Map({{"l", Value::List({Value(1), Value("x")})}});
  Value c = Value::Map({{"l", Value::List({Value(2), Value("x")})}});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_FALSE(Value(1).Equals(Value("1")));
  EXPECT_TRUE(Value().Equals(Value()));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value::List({Value(1), Value("a")}).ToString(), "[1, a]");
  EXPECT_EQ(Value::Map({{"k", Value(1)}}).ToString(), "{k: 1}");
}

TEST(ValueTest, ApproxSizeGrowsWithContent) {
  EXPECT_LT(Value(1).ApproxSize(), Value(std::string(100, 'x')).ApproxSize());
  Value nested = Value::List({Value(std::string(50, 'a')), Value(std::string(50, 'b'))});
  EXPECT_GT(nested.ApproxSize(), 100u);
}

}  // namespace
}  // namespace edc
