// Conformance checking of recorded histories against sequential models.
//
// CheckZkHistory merges the per-replica commit streams (divergence at a zxid
// is itself a violation), replays them through ZkModel, and validates every
// client observation: response/commit matching for writes, per-session FIFO
// of committed writes in zxid order, read plausibility against the path's
// state history, per-(session,path) mzxid monotonicity, one-shot watch
// accounting (fires never exceed arms), and atomic apply of committed
// transactions. CheckDsHistory merges the per-replica execution streams,
// replays them through DsModel, and requires every accepted client reply to
// match the model's reply for that (client, req_id).
//
// Soundness notes (checks deliberately NOT made, because the implementation
// legitimately allows the behavior):
//  - Reads are served from the connected replica and may be stale; they are
//    validated against ANY state the path passed through, not the latest.
//  - A synthetic failure (connection loss / session expiry) says nothing
//    about whether the operation committed; such responses are exempt from
//    commit-existence checks in both directions.
//  - A model reply with no matching client response is fine — the response
//    may still be in flight (or parked) when the run stops.

#ifndef EDC_CHECK_CONFORMANCE_H_
#define EDC_CHECK_CONFORMANCE_H_

#include <string>
#include <vector>

#include "edc/check/history.h"

namespace edc {

struct CheckReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;  // newline-joined, "" when ok
};

CheckReport CheckZkHistory(const HistoryRecorder& history);
CheckReport CheckDsHistory(const HistoryRecorder& history);

}  // namespace edc

#endif  // EDC_CHECK_CONFORMANCE_H_
