// Chaos scenarios for the Zab-replicated ZooKeeper service: primary crashes
// mid-transaction, deterministic re-election, and the safety invariants of
// docs/fault_model.md checked across the whole run.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "edc/common/rng.h"
#include "edc/harness/invariants.h"
#include "edc/sim/costs.h"
#include "edc/sim/event_loop.h"
#include "edc/sim/faults.h"
#include "edc/sim/network.h"
#include "edc/zk/client.h"
#include "edc/zk/server.h"

namespace edc {
namespace {

// Three ZkServers plus a FaultInjector wired with the servers' crash/restart
// closures (crash drops the node off the network; restart replays the log and
// rejoins).
struct ChaosCluster {
  explicit ChaosCluster(uint64_t seed) {
    net = std::make_unique<Network>(&loop, Rng(seed), LinkParams{});
    faults = std::make_unique<FaultInjector>(&loop, net.get());
    std::vector<NodeId> members{1, 2, 3};
    for (NodeId id : members) {
      auto server = std::make_unique<ZkServer>(&loop, net.get(), id, members, CostModel{},
                                               ZkServerOptions{});
      net->Register(id, server.get());
      ZkServer* raw = server.get();
      Network* n = net.get();
      faults->RegisterProcess(
          id,
          [raw, n, id]() {
            raw->Crash();
            n->SetNodeUp(id, false);
          },
          [raw, n, id]() {
            n->SetNodeUp(id, true);
            raw->Restart();
          });
      servers.push_back(std::move(server));
    }
  }

  void Start() {
    for (auto& s : servers) {
      s->Start();
    }
    Settle(Seconds(2));
  }

  NodeId LeaderId() {
    for (auto& s : servers) {
      if (s->running() && s->IsLeader()) {
        return s->id();
      }
    }
    return 0;
  }

  size_t FollowerIndex() {
    for (size_t i = 0; i < servers.size(); ++i) {
      if (servers[i]->running() && !servers[i]->IsLeader()) {
        return i;
      }
    }
    return 0;
  }

  ZkClient* AddClient(size_t preferred_idx) {
    NodeId id = next_client_id++;
    auto client = std::make_unique<ZkClient>(
        &loop, net.get(), id, ShardView::Standalone(ServerList{{1, 2, 3}, preferred_idx}),
        ZkClientOptions{});
    ZkClient* raw = client.get();
    clients.push_back(std::move(client));
    bool connected = false;
    raw->Connect([&connected](Status s) { connected = s.ok(); });
    Settle(Seconds(1));
    EXPECT_TRUE(connected);
    return raw;
  }

  void Settle(Duration d) { loop.RunUntil(loop.now() + d); }

  EventLoop loop;
  std::unique_ptr<Network> net;
  std::unique_ptr<FaultInjector> faults;
  std::vector<std::unique_ptr<ZkServer>> servers;
  std::vector<std::unique_ptr<ZkClient>> clients;
  NodeId next_client_id = 100;
};

ZkOp CreateOp(const std::string& path) {
  ZkOp op;
  op.type = ZkOpType::kCreate;
  op.path = path;
  op.data = "m";
  return op;
}

// Crash the primary at several instants around an in-flight multi: whatever
// the cut point, the surviving ensemble must show all of the multi or none of
// it, and the survivors' applied logs must stay prefix-consistent.
TEST(ZabChaosTest, PrimaryCrashMidMultiNeverHalfApplies) {
  const std::vector<Duration> crash_offsets{Micros(150), Micros(400), Millis(1), Millis(5)};
  for (Duration offset : crash_offsets) {
    ChaosCluster cluster(17);
    cluster.Start();
    ZkClient* client = cluster.AddClient(cluster.FollowerIndex());
    bool parent = false;
    client->Create("/m", "", false, false,
                   [&](Result<std::string> r) { parent = r.ok(); });
    cluster.Settle(Seconds(1));
    ASSERT_TRUE(parent);

    NodeId leader = cluster.LeaderId();
    ASSERT_NE(leader, 0);
    client->Multi({CreateOp("/m/a"), CreateOp("/m/b"), CreateOp("/m/c")},
                  [](Status) {});
    cluster.loop.Schedule(offset,
                          [&cluster, leader]() { cluster.faults->Crash(leader); });
    cluster.Settle(Seconds(8));  // re-election + client failover

    for (auto& s : cluster.servers) {
      if (!s->running()) {
        continue;
      }
      bool a = s->tree().Exists("/m/a");
      bool b = s->tree().Exists("/m/b");
      bool c = s->tree().Exists("/m/c");
      EXPECT_EQ(a, b) << "half-applied multi on node " << s->id()
                      << " (crash offset " << offset << ")";
      EXPECT_EQ(b, c) << "half-applied multi on node " << s->id()
                      << " (crash offset " << offset << ")";
    }
    std::string why;
    EXPECT_TRUE(PrefixConsistentLogs(cluster.servers, &why)) << why;
    NodeId new_leader = cluster.LeaderId();
    EXPECT_NE(new_leader, 0);
    EXPECT_NE(new_leader, leader);
  }
}

// The acceptance scenario: crash the elected primary under client load,
// restart it, then briefly partition it off and heal. Two runs with one seed
// must produce byte-identical traces; the run must elect a new primary in a
// higher epoch and end with every invariant intact.
TEST(ZabChaosTest, DeterministicPrimaryCrashReelection) {
  struct Outcome {
    uint64_t digest = 0;
    NodeId old_leader = 0;
    NodeId new_leader = 0;
    uint32_t old_epoch = 0;
    uint32_t new_epoch = 0;
    bool single_primary = false;
    bool prefix_consistent = false;
    std::vector<std::string> trace;
  };
  auto run = [](uint64_t seed) {
    Outcome out;
    ChaosCluster cluster(seed);
    cluster.faults->EnablePacketTrace();
    cluster.Start();
    ZkClient* client = cluster.AddClient(cluster.FollowerIndex());

    out.old_leader = cluster.LeaderId();
    EXPECT_NE(out.old_leader, 0);
    out.old_epoch = cluster.servers[out.old_leader - 1]->zab().epoch();

    InvariantMonitor monitor(&cluster.loop, &cluster.servers);
    monitor.Start();
    SimTime t = cluster.loop.now();
    FaultPlan plan;
    plan.CrashAt(t + Millis(300), out.old_leader)
        .RestartAt(t + Seconds(4), out.old_leader)
        .PartitionAt(t + Seconds(6), {out.old_leader},
                     {out.old_leader % 3 + 1, (out.old_leader + 1) % 3 + 1})
        .HealAt(t + Seconds(7));
    cluster.faults->Run(plan);
    for (int i = 0; i < 12; ++i) {
      cluster.loop.Schedule(Millis(250) * i, [client, i]() {
        client->Create("/chaos/" + std::to_string(i), "x", false, false,
                       [](Result<std::string>) {});
      });
    }
    cluster.Settle(Seconds(10));
    monitor.Stop();

    out.new_leader = cluster.LeaderId();
    if (out.new_leader != 0) {
      out.new_epoch = cluster.servers[out.new_leader - 1]->zab().epoch();
    }
    out.single_primary = monitor.ok();
    std::string why;
    out.prefix_consistent = PrefixConsistentLogs(cluster.servers, &why);
    EXPECT_TRUE(out.prefix_consistent) << why;
    out.digest = cluster.faults->TraceDigest();
    out.trace = cluster.faults->trace();
    return out;
  };

  Outcome a = run(33);
  Outcome b = run(33);
  EXPECT_EQ(a.digest, b.digest) << "same-seed chaos runs diverged";
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_NE(a.new_leader, 0) << "no primary after crash";
  EXPECT_NE(a.new_leader, a.old_leader);
  EXPECT_EQ(a.new_leader, b.new_leader);
  EXPECT_GT(a.new_epoch, a.old_epoch) << "re-election must advance the epoch";
  EXPECT_TRUE(a.single_primary);
  EXPECT_TRUE(a.prefix_consistent);

  Outcome c = run(34);
  EXPECT_NE(c.digest, a.digest) << "different seeds should not replay the same run";
}

}  // namespace
}  // namespace edc
